// Package timing implements DARCO's timing simulator (§V-C): a
// parameterized in-order superscalar host core with decoupled front-end
// and back-end, a BTB + gshare branch predictor, scoreboarding, simple /
// complex / vector execution units, two-level cache and TLB hierarchies,
// and a stride data prefetcher. It is trace-driven: it consumes the
// retired host instruction stream the co-designed component produces.
package timing

// CacheConfig parameterises one cache level.
type CacheConfig struct {
	Sets      int // must be a power of two
	Ways      int
	LineBytes int // must be a power of two
	Latency   int // hit latency in cycles
}

// Cache is a set-associative LRU cache.
type Cache struct {
	cfg      CacheConfig
	tags     [][]uint64 // [set][way], valid bit in bit 63
	lru      [][]uint64 // recency stamps per way (higher = more recent)
	clock    []uint64   // per-set recency clock
	setMask  uint32
	lineBits uint32

	Accesses uint64
	Misses   uint64
	Prefills uint64 // lines installed by the prefetcher
}

const validBit = uint64(1) << 63

// NewCache builds a cache.
func NewCache(cfg CacheConfig) *Cache {
	c := &Cache{cfg: cfg}
	c.tags = make([][]uint64, cfg.Sets)
	c.lru = make([][]uint64, cfg.Sets)
	c.clock = make([]uint64, cfg.Sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, cfg.Ways)
		c.lru[i] = make([]uint64, cfg.Ways)
	}
	c.setMask = uint32(cfg.Sets - 1)
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// SizeBytes reports total capacity.
func (c *Cache) SizeBytes() int { return c.cfg.Sets * c.cfg.Ways * c.cfg.LineBytes }

func (c *Cache) index(addr uint32) (set uint32, tag uint64) {
	line := addr >> c.lineBits
	return line & c.setMask, uint64(line) | validBit
}

// touch promotes way w of set s to most recent.
func (c *Cache) touch(s uint32, w int) {
	c.clock[s]++
	c.lru[s][w] = c.clock[s]
}

// victim picks the least recently used way.
func (c *Cache) victim(s uint32) int {
	worst := 0
	for i, v := range c.lru[s] {
		if v < c.lru[s][worst] {
			worst = i
		}
	}
	return worst
}

// Access looks up addr, filling on miss. It reports whether it hit.
func (c *Cache) Access(addr uint32) bool {
	c.Accesses++
	s, tag := c.index(addr)
	for w, t := range c.tags[s] {
		if t == tag {
			c.touch(s, w)
			return true
		}
	}
	c.Misses++
	w := c.victim(s)
	c.tags[s][w] = tag
	c.touch(s, w)
	return false
}

// Probe looks up addr without filling or updating recency.
func (c *Cache) Probe(addr uint32) bool {
	s, tag := c.index(addr)
	for _, t := range c.tags[s] {
		if t == tag {
			return true
		}
	}
	return false
}

// Prefill installs a line without counting an access (prefetch fill).
func (c *Cache) Prefill(addr uint32) {
	s, tag := c.index(addr)
	for w, t := range c.tags[s] {
		if t == tag {
			c.touch(s, w)
			return
		}
	}
	w := c.victim(s)
	c.tags[s][w] = tag
	c.touch(s, w)
	c.Prefills++
}

// LineBytes reports the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// MissRate reports the miss ratio.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
