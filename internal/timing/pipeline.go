package timing

import (
	"time"

	"darco/internal/host"
	"darco/internal/hostvm"
	"darco/obs"
)

// DefaultPipelineBatch is how many retired instructions the pipeline
// packs into one batch before handing it to the drain goroutine.
const DefaultPipelineBatch = 1024

// pipeEvent is one retired instruction, value-copied at emit time. The
// copy is what makes the pipeline deterministic: the emulator patches
// translated code in place (EXIT becomes CHAINED when a chain is
// installed), so a late consumer dereferencing the original *host.Inst
// could observe a different instruction than the one that retired. The
// synchronous path consumes at emit time and never sees such a patch;
// copying the fields at emit time gives the drain goroutine exactly the
// same view, whatever the window depth — and removes every shared-memory
// edge between the emulator and the timing goroutine.
//
// The copy is deliberately partial: op/rd/ra/rb are the only Inst
// fields the timing model reads (opcode class, latency, and the
// register scoreboard), and the struct is kept at 16 bytes because the
// producer-side copy bandwidth is the pipeline's overhead on the
// emulator hot path. If the timing Core ever learns to read another
// Inst field, add it here — the determinism harness
// (TestTimingPipelineBitIdentical) fails loudly on the zeroed field.
type pipeEvent struct {
	pc         uint32
	target     uint32
	addr       uint32
	op         host.Op
	rd, ra, rb uint8
	taken      bool
}

// pipeBatch is one delivery on the pipeline channel: a run of events,
// a barrier token (ack non-nil), or both are never combined — barriers
// travel as their own batch so the producer can block until everything
// enqueued before the token has been consumed.
type pipeBatch struct {
	events []pipeEvent
	ack    chan struct{}
}

// Pipeline feeds a retire-event sink (the timing Core's Consume) from
// its own goroutine: the emulator pushes value-copied events into
// bounded, ordered batches, and a single drain goroutine replays them
// into the sink in exactly the retire order. Depth bounds how many
// batches may be in flight — the emulate-ahead window — so a slow
// timing model back-pressures emulation instead of buffering without
// bound.
//
// The Pipeline is single-producer: Push, Flush, Barrier, Start and
// Stop must all be called from the session goroutine. The sink runs on
// the drain goroutine while the pipeline is running; Stop (and
// Barrier) establish the happens-before edge that makes reading the
// sink's state safe afterwards.
type Pipeline struct {
	sink     func(hostvm.RetireEvent)
	depth    int
	batchCap int

	ch      chan pipeBatch
	done    chan struct{}
	free    chan []pipeEvent
	cur     []pipeEvent
	running bool

	// ctr, when non-nil, receives pipeline profiling: pushes, batch
	// hand-offs, full-window stalls, and (through its histogram sinks)
	// batch occupancy and barrier-stall time. Pushes are counted batch-
	// at-a-time in Flush, so the per-event hot path stays untouched.
	ctr *obs.EngineCounters
}

// NewPipeline builds a pipeline over sink with the given window depth
// in batches (values < 1 mean 1). The pipeline starts stopped: events
// pushed before Start are forwarded synchronously.
func NewPipeline(sink func(hostvm.RetireEvent), depth int) *Pipeline {
	if depth < 1 {
		depth = 1
	}
	return &Pipeline{
		sink:     sink,
		depth:    depth,
		batchCap: DefaultPipelineBatch,
		// One buffer per in-flight batch, plus the one being filled
		// and the one being drained.
		free: make(chan []pipeEvent, depth+2),
	}
}

// Depth reports the configured window depth in batches.
func (p *Pipeline) Depth() int { return p.depth }

// SetObsCounters attaches profiling counters (nil detaches). Like the
// rest of the producer API it must be called from the session
// goroutine, before Start.
func (p *Pipeline) SetObsCounters(c *obs.EngineCounters) { p.ctr = c }

// Start spawns the drain goroutine. Idempotent while running.
func (p *Pipeline) Start() {
	if p.running {
		return
	}
	p.ch = make(chan pipeBatch, p.depth)
	p.done = make(chan struct{})
	p.running = true
	go p.drain(p.ch, p.done)
}

// drain is the consumer goroutine: it replays batches into the sink in
// arrival order, recycles their buffers, and acknowledges barriers.
func (p *Pipeline) drain(ch chan pipeBatch, done chan struct{}) {
	defer close(done)
	// One scratch Inst reused for every replayed event: the sink consumes
	// synchronously and must not retain ev.Inst past the call (the
	// synchronous path hands it a pointer into the live code cache, so
	// that contract already holds).
	var inst host.Inst
	for b := range ch {
		for i := range b.events {
			e := &b.events[i]
			inst = host.Inst{Op: e.op, Rd: e.rd, Ra: e.ra, Rb: e.rb}
			p.sink(hostvm.RetireEvent{
				Inst:   &inst,
				PC:     e.pc,
				Taken:  e.taken,
				Target: e.target,
				Addr:   e.addr,
			})
		}
		if b.events != nil {
			select {
			case p.free <- b.events[:0]:
			default:
			}
		}
		if b.ack != nil {
			close(b.ack)
		}
	}
}

// buf returns an empty event buffer, recycling drained ones.
func (p *Pipeline) buf() []pipeEvent {
	select {
	case b := <-p.free:
		return b
	default:
		return make([]pipeEvent, 0, p.batchCap)
	}
}

// Push enqueues one retired instruction, flushing a full batch. When
// the pipeline is stopped it degrades to a synchronous call, so a push
// outside a Start/Stop window can never strand an event in the buffer.
func (p *Pipeline) Push(ev hostvm.RetireEvent) {
	if !p.running {
		p.sink(ev)
		return
	}
	if p.cur == nil {
		p.cur = p.buf()
	}
	in := ev.Inst
	p.cur = append(p.cur, pipeEvent{
		pc:     ev.PC,
		target: ev.Target,
		addr:   ev.Addr,
		op:     in.Op,
		rd:     in.Rd,
		ra:     in.Ra,
		rb:     in.Rb,
		taken:  ev.Taken,
	})
	if len(p.cur) >= p.batchCap {
		p.Flush()
	}
}

// Flush hands the partially filled batch to the drain goroutine (an
// ordering point, not a wait). The session calls it at every excursion
// boundary, so no events linger in the producer buffer while the
// controller runs outside the co-designed component.
func (p *Pipeline) Flush() {
	if !p.running || len(p.cur) == 0 {
		return
	}
	if p.ctr != nil {
		p.ctr.PipelinePushes.Add(uint64(len(p.cur)))
		p.ctr.PipelineFlushes.Add(1)
		if h := p.ctr.BatchOccupancy; h != nil {
			h.Observe(float64(len(p.cur)))
		}
		// A full window means the emulator is about to block on timing
		// back-pressure: record the stall, then push for real.
		select {
		case p.ch <- pipeBatch{events: p.cur}:
		default:
			p.ctr.PipelineStalls.Add(1)
			p.ch <- pipeBatch{events: p.cur}
		}
		p.cur = nil
		return
	}
	p.ch <- pipeBatch{events: p.cur}
	p.cur = nil
}

// Barrier flushes and then blocks until the drain goroutine has
// consumed everything enqueued before it. Synchronization events are
// barriers: when the controller mediates a sync, the timing core has
// consumed exactly the instructions retired before it — the same state
// the synchronous path would be in — so sync-sensitive readers observe
// identical cores at any depth.
func (p *Pipeline) Barrier() {
	if !p.running {
		return
	}
	p.Flush()
	ack := make(chan struct{})
	var wait time.Time
	if p.ctr != nil && p.ctr.BarrierStall != nil {
		wait = time.Now()
	}
	p.ch <- pipeBatch{ack: ack}
	<-ack
	if p.ctr != nil && p.ctr.BarrierStall != nil {
		p.ctr.BarrierStall.Observe(time.Since(wait).Seconds())
	}
}

// Stop drains the pipeline and terminates the drain goroutine. After
// Stop returns, everything pushed has been consumed and the sink's
// state may be read from the caller's goroutine. Idempotent when
// stopped; Start may be called again afterwards (the session runs the
// pipeline only while inside Step, so an abandoned session leaks no
// goroutine and cancellation leaves the timing core consistent).
func (p *Pipeline) Stop() {
	if !p.running {
		return
	}
	p.Flush()
	close(p.ch)
	<-p.done
	p.running = false
	p.ch = nil
	p.done = nil
}
