package timing

// TLBConfig parameterises one TLB level.
type TLBConfig struct {
	Entries int // must be a power of two when Ways divides it
	Ways    int
	Latency int // lookup latency in cycles
}

// TLB is a set-associative LRU translation lookaside buffer over 4 KiB
// pages.
type TLB struct {
	cfg   TLBConfig
	cache *Cache
}

// NewTLB builds a TLB.
func NewTLB(cfg TLBConfig) *TLB {
	sets := cfg.Entries / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	return &TLB{cfg: cfg, cache: NewCache(CacheConfig{
		Sets: sets, Ways: cfg.Ways, LineBytes: 4096, Latency: cfg.Latency,
	})}
}

// Access translates the page containing addr, filling on miss.
func (t *TLB) Access(addr uint32) bool { return t.cache.Access(addr) }

// Accesses reports lookups.
func (t *TLB) Accesses() uint64 { return t.cache.Accesses }

// Misses reports misses.
func (t *TLB) Misses() uint64 { return t.cache.Misses }

// Latency reports the hit latency.
func (t *TLB) Latency() int { return t.cfg.Latency }

// TLBHierarchy is the paper's two-level TLB: split L1 I/D TLBs backed by
// a shared L2 TLB and a fixed-cost page walk.
type TLBHierarchy struct {
	L1I, L1D *TLB
	L2       *TLB
	WalkLat  int

	Walks uint64
}

// Translate performs a data-side (or instruction-side) translation and
// returns the added latency beyond the L1 TLB hit path.
func (h *TLBHierarchy) Translate(addr uint32, isCode bool) int {
	l1 := h.L1D
	if isCode {
		l1 = h.L1I
	}
	if l1.Access(addr) {
		return 0
	}
	if h.L2.Access(addr) {
		return h.L2.Latency()
	}
	h.Walks++
	return h.L2.Latency() + h.WalkLat
}
