package timing

import (
	"darco/internal/host"
	"darco/internal/hostvm"
)

// Config carries every timing parameter the paper lists for the
// simulator: issue width, instruction queue size, numbers of execution
// units and latencies, physical register counts, branch predictor and
// BTB sizes, cache and TLB geometry/latencies, memory ports, and the
// SIMD vector length.
type Config struct {
	FetchWidth    int
	IssueWidth    int
	IQSize        int
	FrontendDepth int // fetch-to-issue pipeline depth
	RedirectPen   int // extra cycles on a front-end redirect

	SimpleUnits  int
	ComplexUnits int
	VectorUnits  int
	MemReadPorts int
	MemWritePts  int

	PhysIntRegs int // scalar physical registers (≥ host.NumIntRegs)
	PhysVecRegs int
	VectorLen   int // SIMD lanes

	BPred BPredConfig

	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig

	ITLB    TLBConfig
	DTLB    TLBConfig
	L2TLB   TLBConfig
	WalkLat int

	MemLatency int // L2 miss penalty

	PrefetchEntries int
	PrefetchDegree  int

	// TOLCPI models the average CPI of the TOL's own host instructions
	// when charged through AddTOL (the TOL is software on this core).
	TOLCPI float64

	// Latency overrides per opcode (0 = host ISA default).
	LatencyOverride map[host.Op]int
}

// DefaultConfig models the paper's simple in-order co-designed core:
// 2-wide, with modest caches and a stride prefetcher.
func DefaultConfig() Config {
	return Config{
		FetchWidth:      2,
		IssueWidth:      2,
		IQSize:          32,
		FrontendDepth:   4,
		RedirectPen:     6,
		SimpleUnits:     2,
		ComplexUnits:    1,
		VectorUnits:     1,
		MemReadPorts:    1,
		MemWritePts:     1,
		PhysIntRegs:     host.NumIntRegs,
		PhysVecRegs:     host.NumVecRegs,
		VectorLen:       host.VecLanes,
		BPred:           BPredConfig{GShareBits: 12, BTBEntries: 1024},
		L1I:             CacheConfig{Sets: 128, Ways: 4, LineBytes: 64, Latency: 1},
		L1D:             CacheConfig{Sets: 128, Ways: 4, LineBytes: 64, Latency: 2},
		L2:              CacheConfig{Sets: 1024, Ways: 8, LineBytes: 64, Latency: 12},
		ITLB:            TLBConfig{Entries: 64, Ways: 4, Latency: 0},
		DTLB:            TLBConfig{Entries: 64, Ways: 4, Latency: 0},
		L2TLB:           TLBConfig{Entries: 512, Ways: 4, Latency: 7},
		WalkLat:         30,
		MemLatency:      120,
		PrefetchEntries: 64,
		PrefetchDegree:  2,
		TOLCPI:          0.9,
	}
}

// Stats is the simulator's execution report.
type Stats struct {
	Cycles     uint64
	Insns      uint64 // application host instructions simulated
	TOLInsns   uint64 // TOL host instructions charged via AddTOL
	TOLCycles  uint64
	Branches   uint64
	Mispredict uint64
	Loads      uint64
	Stores     uint64

	StallOperand uint64 // cycles lost waiting on operands
	StallFU      uint64 // cycles lost waiting on execution units
	StallMem     uint64 // extra cycles from cache/TLB misses
	StallFront   uint64 // cycles lost to front-end redirects

	// ClassCount buckets simulated instructions by execution class.
	ClassCount [5]uint64
}

// IPC reports application instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insns) / float64(s.Cycles)
}

// Core is the in-order superscalar model. Feed it retired instructions
// through Consume (wire it to hostvm.VM.Retire) and TOL overhead through
// AddTOL.
type Core struct {
	Cfg Config

	BP   *BPred
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	TLBs *TLBHierarchy
	PF   *StridePrefetcher

	Stats Stats

	// Scoreboard: cycle at which each register's value is ready.
	readyI [host.NumIntRegs]uint64
	readyF [host.NumFPRegs]uint64
	readyV [host.NumVecRegs]uint64

	// Execution unit free cycles.
	simpleFree  []uint64
	complexFree []uint64
	vectorFree  []uint64

	// Per-cycle issue and port bookkeeping (in-order issue clock is
	// monotonic, so single current-cycle counters suffice).
	lastIssue  uint64
	issueCnt   int
	portCycle  uint64
	rdPortUsed int
	wrPortUsed int

	// Front-end clock.
	fetchCycle uint64
	fetchCnt   int
	lastLine   uint32

	// Instruction queue: ring of issue cycles for occupancy limits.
	iq    []uint64
	iqPos int

	tolCarry float64
}

// New builds a core.
func New(cfg Config) *Core {
	c := &Core{
		Cfg: cfg,
		BP:  NewBPred(cfg.BPred),
		L1I: NewCache(cfg.L1I),
		L1D: NewCache(cfg.L1D),
		L2:  NewCache(cfg.L2),
		PF:  NewStridePrefetcher(cfg.PrefetchEntries, cfg.PrefetchDegree),
		iq:  make([]uint64, cfg.IQSize),
	}
	c.TLBs = &TLBHierarchy{
		L1I:     NewTLB(cfg.ITLB),
		L1D:     NewTLB(cfg.DTLB),
		L2:      NewTLB(cfg.L2TLB),
		WalkLat: cfg.WalkLat,
	}
	c.simpleFree = make([]uint64, cfg.SimpleUnits)
	c.complexFree = make([]uint64, cfg.ComplexUnits)
	c.vectorFree = make([]uint64, cfg.VectorUnits)
	return c
}

func (c *Core) latency(op host.Op) int {
	if c.Cfg.LatencyOverride != nil {
		if l, ok := c.Cfg.LatencyOverride[op]; ok && l > 0 {
			return l
		}
	}
	return op.Desc().Latency
}

// srcRegs enumerates source registers of a host instruction.
func srcRegs(in *host.Inst) (ia, ib int, fa, fb int, va, vb int) {
	ia, ib, fa, fb, va, vb = -1, -1, -1, -1, -1, -1
	d := in.Op.Desc()
	switch in.Op {
	case host.NOPH, host.LI, host.FLI, host.CHKPT, host.COMMIT, host.EXIT, host.CHAINED, host.JREL,
		host.UNSPILLI, host.UNSPILLF:
	case host.MOVH, host.ADDI, host.ANDI, host.ORI, host.XORI, host.SHLI, host.SHRI, host.SARI,
		host.LD, host.LDB, host.EXITIND, host.ASSERTH, host.BEQZ, host.BNEZ, host.SPILLI:
		ia = int(in.Ra)
		if in.Op == host.SPILLI {
			ia = int(in.Rd)
		}
	case host.ADD, host.SUB, host.MUL, host.MULH, host.DIV, host.REM, host.AND, host.OR, host.XOR,
		host.SHL, host.SHR, host.SAR, host.SLT, host.SLTU, host.SEQ, host.SNE:
		ia, ib = int(in.Ra), int(in.Rb)
	case host.ST, host.STB:
		ia, ib = int(in.Ra), int(in.Rd) // address base + store data
	case host.FLDH:
		ia = int(in.Ra)
	case host.FSTH:
		ia, fb = int(in.Ra), int(in.Rd)
	case host.FMOVH, host.FSQRTH, host.FABSH, host.FNEGH, host.FCVTI:
		fa = int(in.Ra)
	case host.FCVTF:
		ia = int(in.Ra)
	case host.FADDH, host.FSUBH, host.FMULH, host.FDIVH, host.FSLT, host.FSEQ, host.FUNORD:
		fa, fb = int(in.Ra), int(in.Rb)
	case host.SPILLF:
		fa = int(in.Rd)
	case host.VFADD, host.VFMUL:
		va, vb = int(in.Ra), int(in.Rb)
	case host.VFLD:
		ia = int(in.Ra)
	case host.VFST:
		ia, va = int(in.Ra), int(in.Rd)
	}
	_ = d
	return
}

// dstReg reports the destination register and its class.
func dstReg(in *host.Inst) (reg int, class uint8) {
	switch in.Op {
	case host.LI, host.MOVH, host.ADD, host.ADDI, host.SUB, host.MUL, host.MULH, host.DIV, host.REM,
		host.AND, host.ANDI, host.OR, host.ORI, host.XOR, host.XORI, host.SHL, host.SHLI,
		host.SHR, host.SHRI, host.SAR, host.SARI, host.SLT, host.SLTU, host.SEQ, host.SNE,
		host.LD, host.LDB, host.FCVTI, host.FSLT, host.FSEQ, host.FUNORD, host.UNSPILLI:
		return int(in.Rd), 0
	case host.FLI, host.FMOVH, host.FADDH, host.FSUBH, host.FMULH, host.FDIVH, host.FSQRTH,
		host.FABSH, host.FNEGH, host.FCVTF, host.FLDH, host.UNSPILLF:
		return int(in.Rd), 1
	case host.VFADD, host.VFMUL, host.VFLD:
		return int(in.Rd), 2
	}
	return -1, 0
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Consume simulates one retired application instruction.
func (c *Core) Consume(ev hostvm.RetireEvent) {
	in := ev.Inst
	d := in.Op.Desc()
	c.Stats.Insns++
	c.Stats.ClassCount[d.Class]++

	// ---- Front end: fetch the instruction.
	line := ev.PC &^ uint32(c.L1I.LineBytes()-1)
	if line != c.lastLine {
		c.lastLine = line
		pen := c.TLBs.Translate(ev.PC, true)
		if !c.L1I.Access(ev.PC) {
			if c.L2.Access(ev.PC) {
				pen += c.Cfg.L2.Latency
			} else {
				pen += c.Cfg.L2.Latency + c.Cfg.MemLatency
			}
		}
		if pen > 0 {
			c.fetchCycle += uint64(pen)
			c.Stats.StallMem += uint64(pen)
		}
	}
	c.fetchCnt++
	if c.fetchCnt >= c.Cfg.FetchWidth {
		c.fetchCnt = 0
		c.fetchCycle++
	}
	ready := c.fetchCycle + uint64(c.Cfg.FrontendDepth)

	// ---- Instruction queue occupancy: the slot we reuse must have
	// issued already.
	if c.iq[c.iqPos] > ready {
		stall := c.iq[c.iqPos] - ready
		ready = c.iq[c.iqPos]
		// Back-pressure the front end.
		c.fetchCycle += stall
	}

	// ---- In-order issue.
	t := maxU(ready, c.lastIssue)
	if t == c.lastIssue && c.issueCnt >= c.Cfg.IssueWidth {
		t++
	}
	base := t

	// Operand readiness.
	ia, ib, fa, fb, va, vb := srcRegs(in)
	if ia >= 0 {
		t = maxU(t, c.readyI[ia])
	}
	if ib >= 0 {
		t = maxU(t, c.readyI[ib])
	}
	if fa >= 0 {
		t = maxU(t, c.readyF[fa])
	}
	if fb >= 0 {
		t = maxU(t, c.readyF[fb])
	}
	if va >= 0 {
		t = maxU(t, c.readyV[va])
	}
	if vb >= 0 {
		t = maxU(t, c.readyV[vb])
	}
	c.Stats.StallOperand += t - base
	base = t

	// Execution unit availability.
	var pool []uint64
	switch d.Class {
	case host.ClassComplex:
		pool = c.complexFree
	case host.ClassVector:
		pool = c.vectorFree
	case host.ClassSimple, host.ClassBranch, host.ClassMemory:
		pool = c.simpleFree
	}
	best := 0
	for i := range pool {
		if pool[i] < pool[best] {
			best = i
		}
	}
	t = maxU(t, pool[best])
	c.Stats.StallFU += t - base

	lat := uint64(c.latency(in.Op))

	// ---- Memory pipeline.
	if d.IsLoad || d.IsStore {
		if in.Op == host.SPILLI || in.Op == host.UNSPILLI || in.Op == host.SPILLF || in.Op == host.UNSPILLF {
			// TOL-private scratchpad: fixed latency, no cache traffic.
		} else {
			if c.portCycle != t {
				c.portCycle = t
				c.rdPortUsed, c.wrPortUsed = 0, 0
			}
			if d.IsLoad {
				c.rdPortUsed++
				if c.rdPortUsed > c.Cfg.MemReadPorts {
					t++
					c.portCycle = t
					c.rdPortUsed = 1
				}
				c.Stats.Loads++
			} else {
				c.wrPortUsed++
				if c.wrPortUsed > c.Cfg.MemWritePts {
					t++
					c.portCycle = t
					c.wrPortUsed = 1
				}
				c.Stats.Stores++
			}
			pen := uint64(c.TLBs.Translate(ev.Addr, false))
			if !c.L1D.Access(ev.Addr) {
				if c.L2.Access(ev.Addr) {
					pen += uint64(c.Cfg.L2.Latency)
				} else {
					pen += uint64(c.Cfg.L2.Latency + c.Cfg.MemLatency)
				}
			}
			if d.IsLoad {
				c.PF.Observe(ev.PC, ev.Addr, c.L1D, c.L2)
			}
			c.Stats.StallMem += pen
			lat += pen
		}
	}

	// Occupy the unit (divides and sqrt are unpipelined).
	occ := uint64(1)
	switch in.Op {
	case host.DIV, host.REM, host.FDIVH, host.FSQRTH:
		occ = lat
	}
	pool[best] = t + occ

	// ---- Branches.
	if d.Class == host.ClassBranch {
		c.Stats.Branches++
		conditional := in.Op == host.BEQZ || in.Op == host.BNEZ || in.Op == host.ASSERTH
		misp := c.BP.Predict(ev.PC, ev.Taken, ev.Target, conditional)
		if misp {
			c.Stats.Mispredict++
			redirect := t + 1 + uint64(c.Cfg.RedirectPen)
			if redirect > c.fetchCycle {
				c.Stats.StallFront += redirect - c.fetchCycle
				c.fetchCycle = redirect
				c.fetchCnt = 0
			}
		}
	}

	// ---- Writeback.
	if reg, class := dstReg(in); reg >= 0 {
		switch class {
		case 0:
			c.readyI[reg] = t + lat
		case 1:
			c.readyF[reg] = t + lat
		case 2:
			c.readyV[reg] = t + lat
		}
	}

	// Issue bookkeeping.
	if t == c.lastIssue {
		c.issueCnt++
	} else {
		c.lastIssue = t
		c.issueCnt = 1
	}
	c.iq[c.iqPos] = t
	c.iqPos = (c.iqPos + 1) % len(c.iq)
	if t+lat > c.Stats.Cycles {
		c.Stats.Cycles = t + lat
	}
}

// AddTOL charges n TOL host instructions at the configured flat CPI.
// The TOL is software executing on this same core; its instruction
// stream is modelled with an aggregate CPI rather than replayed
// instruction by instruction (DESIGN.md §2).
func (c *Core) AddTOL(n uint64) {
	c.Stats.TOLInsns += n
	c.tolCarry += float64(n) * c.Cfg.TOLCPI
	adv := uint64(c.tolCarry)
	c.tolCarry -= float64(adv)
	c.Stats.TOLCycles += adv
	c.Stats.Cycles += adv
	c.fetchCycle += adv
	c.lastIssue += adv
}
