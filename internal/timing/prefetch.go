package timing

// StridePrefetcher is the paper's stride data prefetcher: a PC-indexed
// table tracking last address and stride per load; two consecutive
// occurrences of the same stride arm the entry, after which the
// prefetcher prefills Degree lines ahead into the data cache.
type StridePrefetcher struct {
	Degree  int
	entries []strideEntry
	mask    uint32

	Trained   uint64
	Issued    uint64
	UsefulHit uint64 // accesses that hit a prefilled line
}

type strideEntry struct {
	tag    uint32
	last   uint32
	stride int32
	conf   uint8 // 0..3; >=2 armed
}

// NewStridePrefetcher builds a prefetcher with the given table size
// (power of two) and prefetch degree.
func NewStridePrefetcher(entries, degree int) *StridePrefetcher {
	return &StridePrefetcher{
		Degree:  degree,
		entries: make([]strideEntry, entries),
		mask:    uint32(entries - 1),
	}
}

// Observe trains on a demand access from load PC pc to addr and issues
// prefills into l1 (and l2) when armed.
func (p *StridePrefetcher) Observe(pc, addr uint32, l1, l2 *Cache) {
	if len(p.entries) == 0 {
		return
	}
	e := &p.entries[(pc>>2)&p.mask]
	if e.tag != pc {
		*e = strideEntry{tag: pc, last: addr}
		return
	}
	stride := int32(addr - e.last)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
			if e.conf == 2 {
				p.Trained++
			}
		}
	} else {
		e.stride = stride
		if e.conf > 0 {
			e.conf--
		}
	}
	e.last = addr
	if e.conf >= 2 && e.stride != 0 {
		next := addr
		for i := 0; i < p.Degree; i++ {
			next += uint32(e.stride)
			if !l1.Probe(next) {
				l1.Prefill(next)
				if l2 != nil {
					l2.Prefill(next)
				}
				p.Issued++
			}
		}
	}
}
