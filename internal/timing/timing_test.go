package timing

import (
	"testing"

	"darco/internal/host"
	"darco/internal/hostvm"
)

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(CacheConfig{Sets: 4, Ways: 2, LineBytes: 64, Latency: 1})
	if c.Access(0x1000) {
		t.Errorf("cold access hit")
	}
	if !c.Access(0x1000) || !c.Access(0x1004) {
		t.Errorf("warm access missed")
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Errorf("counters %d/%d", c.Accesses, c.Misses)
	}
}

// TestCacheLRUReplacement is the regression test for the recency-stamp
// bug: with 2 ways, the least recently used line must be the victim.
func TestCacheLRUReplacement(t *testing.T) {
	c := NewCache(CacheConfig{Sets: 1, Ways: 2, LineBytes: 64, Latency: 1})
	c.Access(0x0)  // miss, fill way A
	c.Access(0x40) // miss, fill way B (different line, same set)
	c.Access(0x0)  // hit: A is now most recent
	c.Access(0x80) // miss: must evict B, not A
	if !c.Access(0x0) {
		t.Fatalf("LRU evicted the most recently used line")
	}
	if c.Access(0x40) {
		t.Fatalf("evicted line still present")
	}
}

// TestCacheTwoLinesPingPong: alternating between two lines in different
// sets must hit forever after the cold misses.
func TestCacheTwoLinesPingPong(t *testing.T) {
	c := NewCache(CacheConfig{Sets: 128, Ways: 4, LineBytes: 64, Latency: 1})
	c.Access(0x0000)
	c.Access(0x5040)
	for i := 0; i < 100; i++ {
		if !c.Access(0x0000) || !c.Access(0x5040) {
			t.Fatalf("ping-pong miss at iteration %d", i)
		}
	}
	if c.Misses != 2 {
		t.Errorf("misses %d, want 2", c.Misses)
	}
}

func TestCacheProbeAndPrefill(t *testing.T) {
	c := NewCache(CacheConfig{Sets: 4, Ways: 2, LineBytes: 64, Latency: 1})
	if c.Probe(0x100) {
		t.Errorf("probe hit on empty cache")
	}
	c.Prefill(0x100)
	if !c.Probe(0x100) {
		t.Errorf("prefilled line not present")
	}
	if c.Accesses != 0 {
		t.Errorf("prefill counted as access")
	}
	if c.Prefills != 1 {
		t.Errorf("prefill count %d", c.Prefills)
	}
}

func TestTLBHierarchy(t *testing.T) {
	h := &TLBHierarchy{
		L1I:     NewTLB(TLBConfig{Entries: 4, Ways: 2, Latency: 0}),
		L1D:     NewTLB(TLBConfig{Entries: 4, Ways: 2, Latency: 0}),
		L2:      NewTLB(TLBConfig{Entries: 16, Ways: 4, Latency: 7}),
		WalkLat: 30,
	}
	// Cold data access: L1 miss, L2 miss, walk.
	if pen := h.Translate(0x10000, false); pen != 37 {
		t.Errorf("cold translation penalty %d", pen)
	}
	// Warm: free.
	if pen := h.Translate(0x10000, false); pen != 0 {
		t.Errorf("warm translation penalty %d", pen)
	}
	if h.Walks != 1 {
		t.Errorf("walks %d", h.Walks)
	}
	// Instruction side is independent at L1 but shares L2.
	if pen := h.Translate(0x10000, true); pen != 7 {
		t.Errorf("L2-hit translation penalty %d", pen)
	}
}

func TestBPredLearnsLoop(t *testing.T) {
	p := NewBPred(BPredConfig{GShareBits: 10, BTBEntries: 64})
	// A branch taken 9 times then not taken, repeated: gshare should
	// learn the pattern far better than 50%.
	misp := 0
	for rep := 0; rep < 60; rep++ {
		for i := 0; i < 10; i++ {
			taken := i != 9
			if p.Predict(0x40, taken, 0x100, true) {
				misp++
			}
		}
	}
	if acc := 1 - float64(misp)/600; acc < 0.9 {
		t.Errorf("loop pattern accuracy %.2f", acc)
	}
}

func TestBPredBTB(t *testing.T) {
	p := NewBPred(BPredConfig{GShareBits: 10, BTBEntries: 64})
	// First taken encounter installs the target; subsequent ones hit.
	p.Predict(0x80, true, 0x2000, false)
	if p.Predict(0x80, true, 0x2000, false) {
		t.Errorf("unconditional with known target mispredicted")
	}
	// Target change redirects once.
	if !p.Predict(0x80, true, 0x3000, false) {
		t.Errorf("target change not detected")
	}
}

func TestStridePrefetcher(t *testing.T) {
	l1 := NewCache(CacheConfig{Sets: 64, Ways: 4, LineBytes: 64, Latency: 1})
	pf := NewStridePrefetcher(16, 2)
	// A steady 64-byte stride from one PC trains after 2 confirmations.
	addr := uint32(0x10000)
	for i := 0; i < 8; i++ {
		pf.Observe(0x44, addr, l1, nil)
		addr += 64
	}
	if pf.Trained == 0 || pf.Issued == 0 {
		t.Fatalf("prefetcher never trained/issued (t=%d i=%d)", pf.Trained, pf.Issued)
	}
	// The next lines should already be resident.
	if !l1.Probe(addr) {
		t.Errorf("next line not prefetched")
	}
}

func mk(op host.Op, rd, ra, rb uint8) hostvm.RetireEvent {
	in := &host.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb}
	return hostvm.RetireEvent{Inst: in, PC: 0x100}
}

func TestCoreDualIssue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IssueWidth = 2
	cfg.FetchWidth = 2
	core := New(cfg)
	// Independent single-cycle instructions over a warm instruction
	// footprint: IPC should approach the 2-wide issue width.
	for i := 0; i < 4000; i++ {
		ev := mk(host.ADDI, uint8(16+i%8), 1, 0)
		ev.PC = uint32(0x1000 + 4*(i%32))
		core.Consume(ev)
	}
	if ipc := core.Stats.IPC(); ipc < 1.5 {
		t.Errorf("independent stream IPC %.2f", ipc)
	}
}

func TestCoreDependentChainSerializes(t *testing.T) {
	core := New(DefaultConfig())
	// r16 <- r16 * r16 chain: each multiply (latency 3) depends on the
	// previous one: CPI must be near the latency.
	for i := 0; i < 500; i++ {
		ev := mk(host.MUL, 16, 16, 16)
		ev.PC = uint32(0x1000 + 4*i)
		core.Consume(ev)
	}
	cpi := float64(core.Stats.Cycles) / float64(core.Stats.Insns)
	if cpi < 2.5 {
		t.Errorf("dependent multiply chain CPI %.2f, want near 3", cpi)
	}
	if core.Stats.StallOperand == 0 {
		t.Errorf("no operand stalls recorded")
	}
}

func TestCoreCacheMissCosts(t *testing.T) {
	cfg := DefaultConfig()
	core := New(cfg)
	// A pointer chase (each load feeds the next address) striding far
	// apart: every access misses and the dependence exposes the
	// latency.
	for i := 0; i < 200; i++ {
		ev := mk(host.LD, 16, 16, 0)
		ev.PC = 0x1000
		ev.Addr = uint32(i) * 8192
		core.Consume(ev)
	}
	missCPI := float64(core.Stats.Cycles) / float64(core.Stats.Insns)
	core2 := New(cfg)
	for i := 0; i < 200; i++ {
		ev := mk(host.LD, 16, 16, 0)
		ev.PC = 0x1000
		ev.Addr = 0x100 // always the same line
		core2.Consume(ev)
	}
	hitCPI := float64(core2.Stats.Cycles) / float64(core2.Stats.Insns)
	if missCPI < 4*hitCPI {
		t.Errorf("miss CPI %.1f not clearly above hit CPI %.1f", missCPI, hitCPI)
	}
}

func TestCoreMispredictPenalty(t *testing.T) {
	cfg := DefaultConfig()
	biased := New(cfg)
	random := New(cfg)
	pattern := func(i int) bool { return (i*2654435761)>>16&1 == 1 } // pseudo-random
	for i := 0; i < 2000; i++ {
		evB := mk(host.BNEZ, 0, 16, 0)
		evB.PC = 0x2000
		evB.Taken = true
		evB.Target = 0x3000
		biased.Consume(evB)
		evR := mk(host.BNEZ, 0, 16, 0)
		evR.PC = 0x2000
		evR.Taken = pattern(i)
		evR.Target = 0x3000
		random.Consume(evR)
	}
	if biased.Stats.Cycles >= random.Stats.Cycles {
		t.Errorf("random branches should cost more: %d vs %d",
			biased.Stats.Cycles, random.Stats.Cycles)
	}
}

func TestCoreAddTOL(t *testing.T) {
	core := New(DefaultConfig())
	core.AddTOL(1000)
	if core.Stats.TOLInsns != 1000 {
		t.Errorf("tol insns %d", core.Stats.TOLInsns)
	}
	want := uint64(float64(1000) * core.Cfg.TOLCPI)
	if core.Stats.TOLCycles < want-1 || core.Stats.TOLCycles > want+1 {
		t.Errorf("tol cycles %d want ~%d", core.Stats.TOLCycles, want)
	}
}

func TestCoreSpillScratchpadBypassesCache(t *testing.T) {
	core := New(DefaultConfig())
	before := core.L1D.Accesses
	ev := mk(host.SPILLI, 16, 0, 0)
	core.Consume(ev)
	ev = mk(host.UNSPILLI, 16, 0, 0)
	core.Consume(ev)
	if core.L1D.Accesses != before {
		t.Errorf("spill traffic hit the data cache")
	}
}

func TestCoreIssueWidthScales(t *testing.T) {
	run := func(width int) uint64 {
		cfg := DefaultConfig()
		cfg.IssueWidth = width
		cfg.FetchWidth = width
		cfg.SimpleUnits = width
		core := New(cfg)
		for i := 0; i < 2000; i++ {
			ev := mk(host.ADDI, uint8(16+i%16), uint8(40+i%8), 0)
			ev.PC = uint32(0x1000 + 4*(i%64))
			core.Consume(ev)
		}
		return core.Stats.Cycles
	}
	if run(4) >= run(1) {
		t.Errorf("4-wide should beat 1-wide on independent code")
	}
}
