package timing

import (
	"slices"

	"darco/internal/host"
)

// Clone returns a deep copy of the core. The copy shares no mutable
// state with the receiver, so callers can snapshot the simulator
// mid-run (e.g. to charge TOL overhead onto a result without touching
// the live core) and keep consuming instructions on the original.
func (c *Core) Clone() *Core {
	n := &Core{}
	*n = *c
	n.BP = c.BP.clone()
	n.L1I = c.L1I.clone()
	n.L1D = c.L1D.clone()
	n.L2 = c.L2.clone()
	n.TLBs = &TLBHierarchy{
		L1I:     c.TLBs.L1I.clone(),
		L1D:     c.TLBs.L1D.clone(),
		L2:      c.TLBs.L2.clone(),
		WalkLat: c.TLBs.WalkLat,
		Walks:   c.TLBs.Walks,
	}
	n.PF = c.PF.clone()
	n.simpleFree = slices.Clone(c.simpleFree)
	n.complexFree = slices.Clone(c.complexFree)
	n.vectorFree = slices.Clone(c.vectorFree)
	n.iq = slices.Clone(c.iq)
	if c.Cfg.LatencyOverride != nil {
		n.Cfg.LatencyOverride = make(map[host.Op]int, len(c.Cfg.LatencyOverride))
		for k, v := range c.Cfg.LatencyOverride {
			n.Cfg.LatencyOverride[k] = v
		}
	}
	return n
}

func (c *Cache) clone() *Cache {
	n := &Cache{}
	*n = *c
	n.tags = make([][]uint64, len(c.tags))
	n.lru = make([][]uint64, len(c.lru))
	for i := range c.tags {
		n.tags[i] = slices.Clone(c.tags[i])
		n.lru[i] = slices.Clone(c.lru[i])
	}
	n.clock = slices.Clone(c.clock)
	return n
}

func (p *BPred) clone() *BPred {
	n := &BPred{}
	*n = *p
	n.table = slices.Clone(p.table)
	n.btbTags = slices.Clone(p.btbTags)
	n.btbTargets = slices.Clone(p.btbTargets)
	return n
}

func (t *TLB) clone() *TLB {
	n := &TLB{}
	*n = *t
	n.cache = t.cache.clone()
	return n
}

func (p *StridePrefetcher) clone() *StridePrefetcher {
	n := &StridePrefetcher{}
	*n = *p
	n.entries = slices.Clone(p.entries)
	return n
}
