package timing

import (
	"testing"

	"darco/internal/host"
	"darco/internal/hostvm"
)

// pushPC pushes one event tagged with pc through the pipeline.
func pushPC(p *Pipeline, pc uint32) {
	in := host.Inst{Op: host.NOPH}
	p.Push(hostvm.RetireEvent{Inst: &in, PC: pc})
}

// TestPipelineOrderAcrossBarriers pushes a tagged sequence through
// flushes, barriers and stop/start cycles and requires the sink to see
// every event exactly once, in order.
func TestPipelineOrderAcrossBarriers(t *testing.T) {
	var got []uint32
	p := NewPipeline(func(ev hostvm.RetireEvent) { got = append(got, ev.PC) }, 2)
	p.batchCap = 3 // exercise batch boundaries with few events

	var want []uint32
	next := uint32(0)
	push := func(n int) {
		for i := 0; i < n; i++ {
			pushPC(p, next)
			want = append(want, next)
			next++
		}
	}
	p.Start()
	push(7)
	p.Flush()
	push(2)
	p.Barrier() // sync marker: everything above must be consumed now
	if len(got) != int(next) {
		t.Fatalf("after barrier: sink saw %d events, want %d", len(got), next)
	}
	push(4)
	p.Stop() // excursion/step boundary
	p.Start()
	push(5)
	p.Stop()
	push(3) // stopped pipeline degrades to synchronous delivery
	p.Barrier()

	if len(got) != len(want) {
		t.Fatalf("sink saw %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got pc %d, want %d (reordered or dropped)", i, got[i], want[i])
		}
	}
}

// TestPipelineCopiesInstAtEmit pins the determinism linchpin: the
// emulator patches translated code in place (EXIT becomes CHAINED when
// a chain is installed), so the pipeline must copy instruction fields
// at emit time — a consumer dereferencing the original pointer later
// could time a different instruction than the one that retired.
func TestPipelineCopiesInstAtEmit(t *testing.T) {
	var seen []host.Op
	p := NewPipeline(func(ev hostvm.RetireEvent) { seen = append(seen, ev.Inst.Op) }, 1)
	p.Start()
	in := host.Inst{Op: host.EXIT}
	p.Push(hostvm.RetireEvent{Inst: &in, PC: 1})
	in.Op = host.CHAINED // the TOL installing a chain after retirement
	p.Stop()
	if len(seen) != 1 || seen[0] != host.EXIT {
		t.Fatalf("sink saw %v, want [EXIT]: pipeline must copy at emit time", seen)
	}
}

// TestPipelineStopIdempotent makes sure double Stop / Stop-before-Start
// and empty barriers are safe no-ops.
func TestPipelineStopIdempotent(t *testing.T) {
	n := 0
	p := NewPipeline(func(hostvm.RetireEvent) { n++ }, 4)
	p.Stop()
	p.Barrier()
	p.Flush()
	p.Start()
	p.Barrier() // empty barrier round-trip
	p.Stop()
	p.Stop()
	if n != 0 {
		t.Fatalf("sink called %d times with nothing pushed", n)
	}
	p.Start()
	pushPC(p, 9)
	p.Stop()
	if n != 1 {
		t.Fatalf("sink saw %d events after restart, want 1", n)
	}
}
