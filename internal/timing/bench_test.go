package timing

import (
	"testing"

	"darco/internal/host"
	"darco/internal/hostvm"
)

func BenchmarkCacheAccess(b *testing.B) {
	c := NewCache(CacheConfig{Sets: 128, Ways: 4, LineBytes: 64, Latency: 2})
	for i := 0; i < b.N; i++ {
		c.Access(uint32(i*64) & 0xFFFF)
	}
}

func BenchmarkBPred(b *testing.B) {
	p := NewBPred(BPredConfig{GShareBits: 12, BTBEntries: 1024})
	for i := 0; i < b.N; i++ {
		p.Predict(uint32(i%64)*4, i%3 != 0, 0x1000, true)
	}
}

func BenchmarkCoreConsume(b *testing.B) {
	core := New(DefaultConfig())
	in := &host.Inst{Op: host.ADD, Rd: 16, Ra: 17, Rb: 18}
	ld := &host.Inst{Op: host.LD, Rd: 19, Ra: 1}
	br := &host.Inst{Op: host.BNEZ, Ra: 16, Imm: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch i % 4 {
		case 0, 1:
			core.Consume(hostvm.RetireEvent{Inst: in, PC: uint32(0x1000 + 4*(i%64))})
		case 2:
			core.Consume(hostvm.RetireEvent{Inst: ld, PC: uint32(0x1000 + 4*(i%64)), Addr: uint32(i % 8192)})
		case 3:
			core.Consume(hostvm.RetireEvent{Inst: br, PC: uint32(0x1000 + 4*(i%64)), Taken: i%5 != 0, Target: 0x2000})
		}
	}
}
