package timing

import (
	"testing"

	"darco/internal/host"
	"darco/internal/hostvm"
)

// FuzzPipelineBarriers drives the pipeline's barrier logic with random
// schedules of pushes, flushes, barriers (sync markers), stop/start
// cycles (excursion and Step boundaries) and early cancellations
// (pushes against a stopped pipeline), at random depths and batch
// sizes. Whatever the schedule, the sink must observe every pushed
// event exactly once, in push order, and the run must terminate — no
// deadlock, no drop, no reorder, no duplicate.
//
// Byte grammar: data[0] picks the window depth (1..8), data[1] the
// batch size (1..16); every following byte is one operation:
//
//	0x00..0xB3  push 1..7 events
//	0xB4..0xC7  Flush (excursion boundary)
//	0xC8..0xDB  Barrier (sync marker)
//	0xDC..0xEF  Stop+Start (step boundary / drain-and-resume)
//	0xF0..0xFF  Stop (cancellation; later pushes go synchronous)
func FuzzPipelineBarriers(f *testing.F) {
	f.Add([]byte{0x01, 0x03, 0x05, 0xC8, 0x02, 0xB4, 0x06, 0xDC, 0x01})
	f.Add([]byte{0x07, 0x01, 0xF0, 0x04, 0xC8, 0x04, 0xDC, 0xC8, 0xC8})
	f.Add([]byte{0x04, 0x10, 0x10, 0x20, 0x30, 0xB4, 0xB4, 0xC8, 0xDC, 0xF0, 0x11, 0xDC, 0x22})
	f.Add([]byte{0x02, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		depth := int(data[0]%8) + 1
		var got []uint32
		p := NewPipeline(func(ev hostvm.RetireEvent) { got = append(got, ev.PC) }, depth)
		p.batchCap = int(data[1]%16) + 1

		var want []uint32
		next := uint32(0)
		push := func(n int) {
			for i := 0; i < n; i++ {
				in := host.Inst{Op: host.NOPH}
				p.Push(hostvm.RetireEvent{Inst: &in, PC: next})
				want = append(want, next)
				next++
			}
		}
		p.Start()
		for _, b := range data[2:] {
			switch {
			case b < 0xB4:
				push(int(b%7) + 1)
			case b < 0xC8:
				p.Flush()
			case b < 0xDC:
				p.Barrier()
				if len(got) != len(want) {
					t.Fatalf("after barrier: sink saw %d events, %d pushed (dropped or buffered past a barrier)",
						len(got), len(want))
				}
			case b < 0xF0:
				p.Stop()
				p.Start()
			default:
				p.Stop()
			}
		}
		p.Stop()
		if len(got) != len(want) {
			t.Fatalf("sink saw %d events, %d pushed", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d: got pc %d, want %d (reordered)", i, got[i], want[i])
			}
		}
	})
}
