package timing

// Branch prediction: gshare direction predictor plus a branch target
// buffer, the front-end configuration the paper lists.

// BPredConfig parameterises the predictor.
type BPredConfig struct {
	GShareBits int // history / table index bits
	BTBEntries int // direct-mapped BTB entries (power of two)
}

// BPred is a gshare + BTB predictor.
type BPred struct {
	cfg     BPredConfig
	table   []uint8 // 2-bit saturating counters
	history uint32
	mask    uint32

	btbTags    []uint32
	btbTargets []uint32
	btbMask    uint32

	Lookups        uint64
	DirMispredicts uint64
	BTBMisses      uint64
}

// NewBPred builds a predictor.
func NewBPred(cfg BPredConfig) *BPred {
	size := 1 << cfg.GShareBits
	p := &BPred{
		cfg:        cfg,
		table:      make([]uint8, size),
		mask:       uint32(size - 1),
		btbTags:    make([]uint32, cfg.BTBEntries),
		btbTargets: make([]uint32, cfg.BTBEntries),
		btbMask:    uint32(cfg.BTBEntries - 1),
	}
	for i := range p.table {
		p.table[i] = 1 // weakly not taken
	}
	return p
}

// Predict processes one dynamic branch: it returns whether the front-end
// mispredicted (direction wrong, or taken with a BTB target miss).
func (p *BPred) Predict(pc uint32, taken bool, target uint32, conditional bool) bool {
	p.Lookups++
	idx := ((pc >> 2) ^ p.history) & p.mask
	pred := p.table[idx] >= 2
	if !conditional {
		pred = true // unconditional transfers predict taken
	}
	// Update direction state.
	if conditional {
		if taken && p.table[idx] < 3 {
			p.table[idx]++
		}
		if !taken && p.table[idx] > 0 {
			p.table[idx]--
		}
		p.history = (p.history << 1) | b2u32(taken)
	}
	misp := pred != taken
	if conditional && misp {
		p.DirMispredicts++
	}
	// BTB: a correctly predicted taken branch still redirects if the
	// target is unknown.
	if taken {
		b := (pc >> 2) & p.btbMask
		if p.btbTags[b] != pc || p.btbTargets[b] != target {
			if pred {
				p.BTBMisses++
				misp = true
			}
			p.btbTags[b] = pc
			p.btbTargets[b] = target
		}
	}
	if !conditional {
		return misp && taken // unconditional: only BTB can miss
	}
	return misp
}

// Accuracy reports the direction prediction accuracy.
func (p *BPred) Accuracy() float64 {
	if p.Lookups == 0 {
		return 1
	}
	return 1 - float64(p.DirMispredicts)/float64(p.Lookups)
}

func b2u32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
