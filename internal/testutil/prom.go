package testutil

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// ValidatePrometheus checks a text-format (0.0.4) metrics exposition
// for the structural invariants a Prometheus scraper relies on:
//
//   - every sample's family is declared by a # TYPE line first, and
//     each family is declared exactly once, contiguously (no samples
//     of family A, then B, then A again);
//   - metric and label names are well-formed, label values are
//     correctly quoted, sample values parse as floats;
//   - histograms are complete: a _bucket series with le="+Inf" whose
//     cumulative count equals the _count sample, buckets cumulative
//     and in ascending le order, _sum present.
//
// Both daemons' /metrics handlers and the CI smoke test run their
// output through this before asserting on individual series.
func ValidatePrometheus(exposition []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(exposition))
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	v := &promChecker{
		typed: make(map[string]string),
		hist:  make(map[string]*histCheck),
	}
	line := 0
	for sc.Scan() {
		line++
		if err := v.line(strings.TrimRight(sc.Text(), "\r")); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return v.finish()
}

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type histCheck struct {
	buckets []promBucket // in exposition order
	sum     *float64
	count   *float64
}

type promBucket struct {
	le    float64
	count float64
}

type promChecker struct {
	typed  map[string]string // family -> type
	hist   map[string]*histCheck
	family string // family of the previous sample, for contiguity
	seen   map[string]bool
}

func (v *promChecker) line(s string) error {
	switch {
	case strings.TrimSpace(s) == "":
		return nil
	case strings.HasPrefix(s, "# TYPE "):
		fields := strings.Fields(s)
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", s)
		}
		name, typ := fields[2], fields[3]
		if !promMetricRe.MatchString(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := v.typed[name]; dup {
			return fmt.Errorf("family %s declared twice", name)
		}
		v.typed[name] = typ
		if typ == "histogram" {
			v.hist[name] = &histCheck{}
		}
		return nil
	case strings.HasPrefix(s, "#"):
		return nil // HELP and comments: free-form
	}
	return v.sample(s)
}

// sample parses one "name{labels} value" line.
func (v *promChecker) sample(s string) error {
	nameEnd := strings.IndexAny(s, "{ ")
	if nameEnd < 0 {
		return fmt.Errorf("malformed sample %q", s)
	}
	name := s[:nameEnd]
	if !promMetricRe.MatchString(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	rest := s[nameEnd:]
	labels := map[string]string{}
	if rest[0] == '{' {
		end, err := parseLabels(rest, labels)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rest = rest[end:]
	}
	valStr := strings.TrimSpace(rest)
	// A timestamp may follow the value; the registry never emits one,
	// but the validator accepts the format.
	if i := strings.IndexByte(valStr, ' '); i >= 0 {
		ts := valStr[i+1:]
		valStr = valStr[:i]
		if _, err := strconv.ParseInt(strings.TrimSpace(ts), 10, 64); err != nil {
			return fmt.Errorf("%s: bad timestamp %q", name, ts)
		}
	}
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return fmt.Errorf("%s: bad value %q", name, valStr)
	}

	family := name
	suffix := ""
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, sfx)
		if base != name && v.typed[base] == "histogram" {
			family, suffix = base, sfx
			break
		}
	}
	typ, ok := v.typed[family]
	if !ok {
		return fmt.Errorf("sample %s has no preceding # TYPE %s line", name, family)
	}
	if typ == "histogram" && suffix == "" {
		return fmt.Errorf("histogram %s exposes bare sample %s (want _bucket/_sum/_count)", family, name)
	}

	// Families must be contiguous blocks.
	if v.seen == nil {
		v.seen = make(map[string]bool)
	}
	if family != v.family && v.seen[family] {
		return fmt.Errorf("family %s reappears after other families", family)
	}
	v.family = family
	v.seen[family] = true

	if h := v.hist[family]; h != nil {
		switch suffix {
		case "_bucket":
			leStr, ok := labels["le"]
			if !ok {
				return fmt.Errorf("%s_bucket sample without le label", family)
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil && leStr != "+Inf" {
				return fmt.Errorf("%s_bucket: bad le %q", family, leStr)
			}
			if leStr == "+Inf" {
				le = inf()
			}
			h.buckets = append(h.buckets, promBucket{le: le, count: val})
		case "_sum":
			h.sum = &val
		case "_count":
			h.count = &val
		}
	}
	return nil
}

func inf() float64 { v := 0.0; return 1 / v }

// parseLabels consumes a {name="value",...} block, returning the index
// just past the closing brace.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return 0, fmt.Errorf("label without '=' in %q", s)
		}
		lname := s[i : i+j]
		if !promLabelRe.MatchString(lname) {
			return 0, fmt.Errorf("invalid label name %q", lname)
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %s value not quoted", lname)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value for %s", lname)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape in label %s", lname)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c in label %s", s[i+1], lname)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		out[lname] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// finish runs the whole-exposition checks that need every line first.
func (v *promChecker) finish() error {
	for name, h := range v.hist {
		if len(h.buckets) == 0 {
			return fmt.Errorf("histogram %s has no _bucket samples", name)
		}
		last := h.buckets[len(h.buckets)-1]
		if last.le != inf() {
			return fmt.Errorf("histogram %s: last bucket le=%g, want +Inf", name, last.le)
		}
		for i := 1; i < len(h.buckets); i++ {
			if h.buckets[i].le <= h.buckets[i-1].le {
				return fmt.Errorf("histogram %s: bucket le values not ascending", name)
			}
			if h.buckets[i].count < h.buckets[i-1].count {
				return fmt.Errorf("histogram %s: bucket counts not cumulative", name)
			}
		}
		if h.count == nil {
			return fmt.Errorf("histogram %s missing _count", name)
		}
		if h.sum == nil {
			return fmt.Errorf("histogram %s missing _sum", name)
		}
		if *h.count != last.count {
			return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", name, *h.count, last.count)
		}
	}
	return nil
}
