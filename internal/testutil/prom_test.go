package testutil

import (
	"strings"
	"testing"
)

const goodExposition = `# HELP darco_jobs Campaign jobs by lifecycle state.
# TYPE darco_jobs gauge
darco_jobs{state="done"} 1
darco_jobs{state="queued"} 0
# TYPE darco_jobs_total counter
darco_jobs_total 1
# TYPE darco_wait_seconds histogram
darco_wait_seconds_bucket{le="0.1"} 2
darco_wait_seconds_bucket{le="1"} 3
darco_wait_seconds_bucket{le="+Inf"} 4
darco_wait_seconds_sum 2.5
darco_wait_seconds_count 4
# TYPE darco_build_info gauge
darco_build_info{version="0.6.0"} 1
`

func TestValidatePrometheusAccepts(t *testing.T) {
	if err := ValidatePrometheus([]byte(goodExposition)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	cases := map[string]struct{ input, wantErr string }{
		"sample before TYPE": {
			"darco_x 1\n# TYPE darco_x counter\n",
			"no preceding # TYPE",
		},
		"duplicate TYPE": {
			"# TYPE darco_x counter\ndarco_x 1\n# TYPE darco_x counter\n",
			"declared twice",
		},
		"non-contiguous family": {
			"# TYPE a gauge\n# TYPE b gauge\na{l=\"1\"} 1\nb 2\na{l=\"2\"} 3\n",
			"reappears",
		},
		"bad metric name": {
			"# TYPE 9bad counter\n",
			"invalid metric name",
		},
		"bad value": {
			"# TYPE darco_x counter\ndarco_x one\n",
			"bad value",
		},
		"unquoted label": {
			"# TYPE darco_x counter\ndarco_x{l=1} 1\n",
			"not quoted",
		},
		"histogram without +Inf": {
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"+Inf",
		},
		"histogram count mismatch": {
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n",
			"_count",
		},
		"histogram non-cumulative": {
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
			"cumulative",
		},
		"histogram missing sum": {
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"missing _sum",
		},
	}
	for name, tc := range cases {
		err := ValidatePrometheus([]byte(tc.input))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantErr)
		}
	}
}
