// Command promck validates a Prometheus text exposition read from
// stdin and exits non-zero with a diagnostic when it is malformed. The
// CI daemon smoke test pipes both daemons' /metrics output through it:
//
//	curl -s localhost:8080/metrics | go run ./internal/testutil/promck
package main

import (
	"fmt"
	"io"
	"os"

	"darco/internal/testutil"
)

func main() {
	raw, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promck: read stdin:", err)
		os.Exit(1)
	}
	if len(raw) == 0 {
		fmt.Fprintln(os.Stderr, "promck: empty exposition on stdin")
		os.Exit(1)
	}
	if err := testutil.ValidatePrometheus(raw); err != nil {
		fmt.Fprintln(os.Stderr, "promck:", err)
		os.Exit(1)
	}
}
