package testutil

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

// Slogger returns a *slog.Logger that writes every record through
// t.Logf, so daemon logs interleave with the test's own output and are
// shown only on failure (or with -v), like t.Logf itself.
func Slogger(t testing.TB) *slog.Logger {
	return slog.New(testHandler{t: t})
}

type testHandler struct {
	t     testing.TB
	attrs []slog.Attr
	group string
}

func (h testHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h testHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", r.Level, r.Message)
	write := func(a slog.Attr) {
		key := a.Key
		if h.group != "" {
			key = h.group + "." + key
		}
		fmt.Fprintf(&b, " %s=%v", key, a.Value.Resolve().Any())
	}
	for _, a := range h.attrs {
		write(a)
	}
	r.Attrs(func(a slog.Attr) bool {
		write(a)
		return true
	})
	h.t.Logf("%s", b.String())
	return nil
}

func (h testHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return h
}

func (h testHandler) WithGroup(name string) slog.Handler {
	if h.group != "" {
		name = h.group + "." + name
	}
	h.group = name
	return h
}
