// Package testutil holds the byte-comparison helpers shared by the
// golden and byte-identity tests across the repo (export goldens, serve
// and sched federated-vs-offline exports, root Stats goldens). The
// paper's claims rest on bit-identical outputs, so many packages make
// the same two assertions; this keeps the diff reporting in one place.
package testutil

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// CheckGolden compares got against the golden file at path. When update
// is true it rewrites the file (creating parent directories) instead of
// comparing — wire it to the package's -update flag. The hint names the
// command that regenerates the file, shown when it is missing or stale.
func CheckGolden(t testing.TB, path string, got []byte, update bool, hint string) {
	t.Helper()
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run `%s` to create): %v", hint, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (run `%s` if intended)\n%s",
			filepath.Base(path), hint, diffExcerpt(got, want))
	}
}

// RequireSameBytes fails the test unless got and want are byte-equal,
// reporting the first divergence with bounded excerpts of both sides.
// The label names what is being compared (e.g. "/export.csv").
func RequireSameBytes(t testing.TB, label string, got, want []byte) {
	t.Helper()
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs\n%s", label, diffExcerpt(got, want))
	}
}

// diffExcerpt locates the first differing byte and renders a bounded
// window of both sides around it, so multi-megabyte exports produce
// readable failures.
func diffExcerpt(got, want []byte) string {
	off := 0
	for off < len(got) && off < len(want) && got[off] == want[off] {
		off++
	}
	const window = 200
	lo := off - window/2
	if lo < 0 {
		lo = 0
	}
	return fmt.Sprintf("lengths %d vs %d, first difference at byte %d\ngot:  %s\nwant: %s",
		len(got), len(want), off, excerpt(got, lo, window), excerpt(want, lo, window))
}

func excerpt(b []byte, lo, n int) string {
	if lo >= len(b) {
		return fmt.Sprintf("<ends at %d>", len(b))
	}
	hi := lo + n
	tail := "..."
	if hi >= len(b) {
		hi = len(b)
		tail = ""
	}
	head := ""
	if lo > 0 {
		head = "..."
	}
	return fmt.Sprintf("%s%q%s", head, b[lo:hi], tail)
}
