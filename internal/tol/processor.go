package tol

import (
	"fmt"

	"darco/internal/codecache"
	"darco/internal/guest"
	"darco/internal/guestvm"
	"darco/internal/hostvm"
	"darco/internal/ir"
)

// Config parameterises the TOL.
type Config struct {
	BBThreshold uint32 // interpretations before a basic block is translated
	SBThreshold uint64 // BBM executions before superblock promotion
	Costs       Costs
	SB          SBConfig
	HostCfg     hostvm.Config
	CacheSize   int    // code cache capacity in host instructions
	RunFuel     uint64 // host instructions per code-cache excursion

	// MutateRegion, when non-nil, runs on every optimized region just
	// before code generation. It exists for the debug toolchain: inject
	// a translator bug here and let the debugger pinpoint it.
	MutateRegion func(*ir.Region)

	// OnTranslation, when non-nil, observes every translation the TOL
	// performs (BB translations, superblock promotions, rebuilds).
	OnTranslation func(TranslationEvent)

	// DisableChaining turns off block chaining and the IBTC (ablation).
	DisableChaining bool

	// EagerFlags materializes all five guest condition flags after
	// every flag-writing instruction instead of lazily at consumers
	// and exits (ablation of the lazy-flags emulation-cost reduction).
	EagerFlags bool
}

// DefaultConfig returns the paper-default TOL configuration.
func DefaultConfig() Config {
	return Config{
		BBThreshold: 10,
		SBThreshold: 300,
		Costs:       DefaultCosts(),
		SB:          DefaultSBConfig(),
		HostCfg:     hostvm.DefaultConfig(),
		CacheSize:   codecache.DefaultCapacity,
		RunFuel:     200_000,
	}
}

// Event is what Run pauses for.
type Event uint8

// Run events.
const (
	EvBudget   Event = iota // guest instruction budget exhausted
	EvHalt                  // guest executed HALT
	EvSyscall               // guest at a SYSCALL; controller must sync
	EvNeedPage              // first touch of a guest page; controller must transfer it
)

func (e Event) String() string {
	switch e {
	case EvBudget:
		return "budget"
	case EvHalt:
		return "halt"
	case EvSyscall:
		return "syscall"
	case EvNeedPage:
		return "need-page"
	}
	return "?"
}

// RunResult reports why Run returned.
type RunResult struct {
	Event     Event
	FaultAddr uint32 // valid for EvNeedPage
}

// Stats aggregates the execution statistics the paper's evaluation
// section reports.
type Stats struct {
	GuestInsnsIM  uint64 // dynamic guest instructions interpreted
	GuestInsnsBBM uint64 // retired from basic-block translations
	GuestInsnsSBM uint64 // retired from superblocks
	GuestBBs      uint64 // dynamic guest basic blocks retired

	HostInsnsBBM uint64 // host instructions retired in BBM blocks
	HostInsnsSBM uint64 // host instructions retired in superblocks

	Dispatches     uint64
	BBTranslations uint64
	SBTranslations uint64
	AssertRebuilds uint64
	SpecRebuilds   uint64
	SpecLoadsSched uint64 // speculative loads emitted by the scheduler
	UnrolledLoops  uint64
	InterpBBs      uint64
	Syscalls       uint64
	PageRequests   uint64
}

// GuestInsns reports total dynamic guest instructions retired.
func (s *Stats) GuestInsns() uint64 {
	return s.GuestInsnsIM + s.GuestInsnsBBM + s.GuestInsnsSBM
}

// TOL is the Translation Optimization Layer plus the co-designed
// component state it drives: the emulated guest architectural state, the
// emulated (strict, demand-paged) guest memory, the host emulator, the
// code cache and the IBTC.
type TOL struct {
	CPU   guest.CPU
	Mem   *guestvm.Memory
	VM    *hostvm.VM
	Cache *codecache.Cache
	IBTC  *IBTC

	Cfg      Config
	SBCfg    SBConfig
	Overhead Overhead
	Stats    Stats

	// BBFreq is the co-designed execution distribution (region entry
	// frequencies); the warm-up methodology correlates it across
	// configurations.
	BBFreq map[uint32]uint64

	Fetch Fetcher

	repCount    map[uint32]uint32
	noTranslate map[uint32]bool
	sbOpts      map[uint32]sbOptions
	decode      map[uint32]guest.Inst
	halted      bool
	midBB       bool

	// LastDispatch records the most recent dispatch for the debug
	// toolchain: what executed and from where.
	LastDispatch DispatchRecord
}

// MidBB reports whether execution is paused in the middle of a guest
// basic block (after a mid-block page fault or at a syscall). State
// comparison against the authoritative component is only meaningful at
// basic-block boundaries.
func (t *TOL) MidBB() bool { return t.midBB }

// ClearMidBB marks the component as block-aligned again (the controller
// calls it after completing a syscall synchronization).
func (t *TOL) ClearMidBB() { t.midBB = false }

// DispatchRecord describes one TOL dispatch.
type DispatchRecord struct {
	PC      uint32
	Mode    string // "im", "bb", "superblock"
	BlockID int    // -1 for interpretation
}

// New builds a co-designed component for a program whose initial state
// the controller will install. Memory is strict: first touches raise
// page requests.
func New(cfg Config) *TOL {
	t := &TOL{
		Mem:         guestvm.NewMemory(true),
		Cache:       codecache.New(cfg.CacheSize),
		Cfg:         cfg,
		SBCfg:       cfg.SB,
		BBFreq:      make(map[uint32]uint64),
		repCount:    make(map[uint32]uint32),
		noTranslate: make(map[uint32]bool),
		sbOpts:      make(map[uint32]sbOptions),
		decode:      make(map[uint32]guest.Inst),
	}
	t.IBTC = NewIBTC(t.Cache)
	vmCfg := cfg.HostCfg
	t.VM = hostvm.New(t.Mem, vmCfg)
	t.VM.HotThreshold = cfg.SBThreshold
	t.VM.Resolve = t.Cache.Get
	t.VM.IBTC = t.IBTC.Probe
	t.Fetch = t.fetchInst
	t.Overhead.Charge(OvOther, cfg.Costs.Init)
	return t
}

// SetThresholds changes the promotion thresholds at run time. The
// warm-up simulation methodology (§VI-E) downscales them during the TOL
// warm-up phase and restores them while collecting statistics.
func (t *TOL) SetThresholds(bb uint32, sb uint64) {
	if bb < 1 {
		bb = 1
	}
	if sb < 1 {
		sb = 1
	}
	t.Cfg.BBThreshold = bb
	t.Cfg.SBThreshold = sb
	t.VM.HotThreshold = sb
}

// Thresholds reports the active promotion thresholds.
func (t *TOL) Thresholds() (bb uint32, sb uint64) {
	return t.Cfg.BBThreshold, t.Cfg.SBThreshold
}

// Halted reports whether the guest has executed HALT or exited.
func (t *TOL) Halted() bool { return t.halted }

// SetHalted force-stops the component (controller use, on SysExit).
func (t *TOL) SetHalted() { t.halted = true }

// fetchInst decodes the guest instruction at pc from emulated memory.
func (t *TOL) fetchInst(pc uint32) (guest.Inst, error) {
	if in, ok := t.decode[pc]; ok {
		return in, nil
	}
	var raw [10]byte
	b0, err := t.Mem.Load8(pc)
	if err != nil {
		return guest.Inst{Op: guest.BAD}, err
	}
	raw[0] = b0
	op := guest.Op(b0)
	n := guest.FormLen(op.Desc().Form)
	if n == 0 {
		return guest.Inst{Op: guest.BAD}, fmt.Errorf("tol: undecodable instruction at %#x", pc)
	}
	for i := 1; i < n; i++ {
		v, err := t.Mem.Load8(pc + uint32(i))
		if err != nil {
			return guest.Inst{Op: guest.BAD}, err
		}
		raw[i] = v
	}
	in, k := guest.Decode(raw[:n])
	if k == 0 {
		return guest.Inst{Op: guest.BAD}, fmt.Errorf("tol: undecodable instruction at %#x", pc)
	}
	t.decode[pc] = in
	return in, nil
}

// Run executes up to budget guest instructions (0 = until an event).
func (t *TOL) Run(budget uint64) (RunResult, error) {
	start := t.Stats.GuestInsns()
	for !t.halted {
		if budget > 0 && t.Stats.GuestInsns()-start >= budget {
			return RunResult{Event: EvBudget}, nil
		}
		res, done, err := t.dispatch()
		if err != nil {
			return RunResult{}, err
		}
		if done {
			return res, nil
		}
	}
	return RunResult{Event: EvHalt}, nil
}

// dispatch is one iteration of the TOL main loop (paper Fig. 3).
func (t *TOL) dispatch() (RunResult, bool, error) {
	c := &t.Cfg.Costs
	t.Stats.Dispatches++
	t.Overhead.Charge(OvOther, c.DispatchLoop+c.StatsPerDispatch)
	pc := t.CPU.EIP
	t.Overhead.Charge(OvLookup, c.Lookup)
	if blk, ok := t.Cache.Lookup(pc); ok {
		return t.execBlock(blk)
	}

	in, err := t.Fetch(pc)
	if err != nil {
		return t.pageFaultResult(err)
	}
	switch in.Op {
	case guest.SYSCALL:
		t.Stats.Syscalls++
		return RunResult{Event: EvSyscall}, true, nil
	case guest.BAD:
		return RunResult{}, false, fmt.Errorf("tol: illegal guest instruction at %#x", pc)
	}
	if !translatable(in.Op) {
		// Safety net: interpret the complex instruction directly.
		return t.interpretBB(pc)
	}

	t.repCount[pc]++
	if t.repCount[pc] >= t.Cfg.BBThreshold && !t.noTranslate[pc] {
		if err := t.doBBTranslation(pc); err != nil {
			return t.pageFaultResult(err)
		}
		if !t.noTranslate[pc] {
			return RunResult{}, false, nil // next dispatch executes it
		}
	}
	return t.interpretBB(pc)
}

// doBBTranslation translates and installs the basic block at pc.
func (t *TOL) doBBTranslation(pc uint32) error {
	blk, err := t.translateBB(pc)
	if err != nil {
		return err
	}
	if blk == nil {
		t.noTranslate[pc] = true
		return nil
	}
	c := &t.Cfg.Costs
	t.Overhead.Charge(OvBBTrans, c.BBTransFixed+c.BBTransPerInsn*uint64(blk.GuestInsns))
	if t.Cache.Insert(blk) {
		t.IBTC.Flush()
	}
	t.Stats.BBTranslations++
	t.observe(TranslationEvent{Kind: TransBB, Entry: pc,
		GuestInsns: blk.GuestInsns, HostInsns: len(blk.Code)})
	return nil
}

// pageFaultResult converts a page-fault error into a controller event.
func (t *TOL) pageFaultResult(err error) (RunResult, bool, error) {
	if pf, ok := err.(*guestvm.PageFaultError); ok {
		t.Stats.PageRequests++
		return RunResult{Event: EvNeedPage, FaultAddr: pf.Addr}, true, nil
	}
	return RunResult{}, false, err
}

// interpretBB interprets one basic block starting at pc (IM).
func (t *TOL) interpretBB(pc uint32) (RunResult, bool, error) {
	c := &t.Cfg.Costs
	t.Stats.InterpBBs++
	t.BBFreq[pc]++
	t.LastDispatch = DispatchRecord{PC: pc, Mode: "im", BlockID: -1}
	for {
		in, err := t.Fetch(t.CPU.EIP)
		if err != nil {
			return t.pageFaultResult(err)
		}
		if in.Op == guest.SYSCALL {
			t.Stats.Syscalls++
			return RunResult{Event: EvSyscall}, true, nil
		}
		snapshot := t.CPU
		ev, err := guest.Step(&t.CPU, t.Mem, &in)
		if err != nil {
			t.CPU = snapshot
			return t.pageFaultResult(err)
		}
		t.Overhead.Charge(OvInterp, c.InterpPerInsn)
		t.Stats.GuestInsnsIM++
		t.midBB = true
		if in.Op.EndsBasicBlock() {
			t.Stats.GuestBBs++
			t.midBB = false
			if ev == guest.EvHalt {
				t.halted = true
				return RunResult{Event: EvHalt}, true, nil
			}
			return RunResult{}, false, nil
		}
	}
}

// execBlock runs translated code and handles its exit.
func (t *TOL) execBlock(blk *codecache.Block) (RunResult, bool, error) {
	c := &t.Cfg.Costs
	t.Overhead.Charge(OvPrologue, c.Prologue)
	t.BBFreq[blk.Entry]++
	t.LastDispatch = DispatchRecord{PC: blk.Entry, Mode: blk.Kind.String(), BlockID: blk.ID}
	t.VM.Regs.LoadGuest(&t.CPU)
	res, rstats, err := t.VM.Run(blk, t.Cfg.RunFuel)
	if err != nil {
		return RunResult{}, false, err
	}
	t.VM.Regs.StoreGuest(&t.CPU)
	t.CPU.EIP = res.NextPC
	t.Overhead.Charge(OvPrologue, c.Epilogue)

	t.Stats.GuestInsnsBBM += rstats.GuestInsnsBB
	t.Stats.GuestInsnsSBM += rstats.GuestInsnsSB
	t.Stats.GuestBBs += rstats.GuestBBs
	t.Stats.HostInsnsBBM += rstats.HostInsnsBB
	t.Stats.HostInsnsSBM += rstats.HostInsnsSB

	// Superblock promotion for blocks that crossed the hot threshold.
	for _, hot := range t.VM.DrainHot() {
		if err := t.promote(hot); err != nil {
			if _, isPF := err.(*guestvm.PageFaultError); isPF {
				// Code page not yet resident: drop the promotion; the
				// block stays hot and will be re-queued.
				continue
			}
			return RunResult{}, false, err
		}
	}

	switch res.Kind {
	case hostvm.ExitToTOL:
		if t.Cfg.DisableChaining {
			return RunResult{}, false, nil
		}
		// Attempt to chain the taken exit to an existing translation.
		t.Overhead.Charge(OvChaining, c.ChainAttempt)
		if src, ok := t.Cache.Get(res.Block.ID); ok {
			if dst, ok2 := t.Cache.Lookup(res.NextPC); ok2 {
				if err := t.Cache.Chain(src, res.ExitIdx, dst); err == nil {
					t.Overhead.Charge(OvChaining, c.ChainPatch)
				}
			}
		}
		return RunResult{}, false, nil
	case hostvm.ExitIndirect:
		if t.Cfg.DisableChaining {
			return RunResult{}, false, nil
		}
		t.Overhead.Charge(OvChaining, c.ChainAttempt)
		if dst, ok := t.Cache.Lookup(res.NextPC); ok {
			t.IBTC.Insert(res.NextPC, dst.ID)
			t.Overhead.Charge(OvChaining, c.IBTCInsert)
		}
		return RunResult{}, false, nil
	case hostvm.ExitAssertFail:
		if res.Block.Kind == codecache.KindSuperblock && res.Block.AssertFails >= t.SBCfg.AssertLimit {
			if err := t.rebuild(res.Block, func(o *sbOptions) { o.noAsserts = true }); err != nil {
				return RunResult{}, false, err
			}
			t.Stats.AssertRebuilds++
			t.observe(TranslationEvent{Kind: TransAssertRebuild, Entry: res.Block.Entry})
		}
		// Forward progress through the interpreter (§V-B1).
		return t.interpretBB(t.CPU.EIP)
	case hostvm.ExitMemSpecFail:
		if res.Block.Kind == codecache.KindSuperblock && res.Block.SpecFails >= t.SBCfg.SpecLimit {
			if err := t.rebuild(res.Block, func(o *sbOptions) { o.noMemSpec = true }); err != nil {
				return RunResult{}, false, err
			}
			t.Stats.SpecRebuilds++
			t.observe(TranslationEvent{Kind: TransSpecRebuild, Entry: res.Block.Entry})
		}
		return t.interpretBB(t.CPU.EIP)
	case hostvm.ExitPageFault:
		t.Stats.PageRequests++
		return RunResult{Event: EvNeedPage, FaultAddr: res.FaultAddr}, true, nil
	}
	return RunResult{}, false, fmt.Errorf("tol: unhandled exit kind %v", res.Kind)
}

// promote builds and installs a superblock rooted at a hot BBM block.
func (t *TOL) promote(entry uint32) error {
	plan, err := t.formSuperblock(entry)
	if err != nil {
		return err
	}
	opts := t.sbOpts[entry]
	if t.SBCfg.NoAsserts {
		opts.noAsserts = true
	}
	blk, st, err := t.translateSuperblock(plan, opts)
	if err != nil {
		return err
	}
	c := &t.Cfg.Costs
	t.Overhead.Charge(OvSBTrans, c.SBTransFixed+c.SBTransPerInsn*uint64(blk.GuestInsns))
	if t.Cache.Insert(blk) {
		t.IBTC.Flush()
	}
	t.Stats.SBTranslations++
	t.Stats.SpecLoadsSched += uint64(st.Sched.SpecLoads)
	if plan.unrolled > 1 {
		t.Stats.UnrolledLoops++
	}
	t.observe(TranslationEvent{Kind: TransSB, Entry: entry,
		GuestInsns: blk.GuestInsns, HostInsns: len(blk.Code), Unrolled: blk.Unrolled})
	return nil
}

// rebuild recreates a superblock with reduced speculation.
func (t *TOL) rebuild(blk *codecache.Block, adjust func(*sbOptions)) error {
	entry := blk.Entry
	o := t.sbOpts[entry]
	adjust(&o)
	t.sbOpts[entry] = o
	if _, ok := t.Cache.Get(blk.ID); ok {
		t.Cache.Invalidate(blk)
	}
	return t.promote(entry)
}
