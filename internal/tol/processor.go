package tol

import (
	"fmt"

	"darco/internal/codecache"
	"darco/internal/guest"
	"darco/internal/guestvm"
	"darco/internal/hostvm"
	"darco/internal/ir"
	"darco/obs"
)

// Config parameterises the TOL.
type Config struct {
	BBThreshold uint32 // interpretations before a basic block is translated
	SBThreshold uint64 // BBM executions before superblock promotion
	Costs       Costs
	SB          SBConfig
	HostCfg     hostvm.Config
	CacheSize   int    // code cache capacity in host instructions
	RunFuel     uint64 // host instructions per code-cache excursion

	// MutateRegion, when non-nil, runs on every optimized region just
	// before code generation. It exists for the debug toolchain: inject
	// a translator bug here and let the debugger pinpoint it.
	MutateRegion func(*ir.Region)

	// OnTranslation, when non-nil, observes every translation the TOL
	// performs (BB translations, superblock promotions, rebuilds).
	OnTranslation func(TranslationEvent)

	// DisableChaining turns off block chaining and the IBTC (ablation).
	DisableChaining bool

	// EagerFlags materializes all five guest condition flags after
	// every flag-writing instruction instead of lazily at consumers
	// and exits (ablation of the lazy-flags emulation-cost reduction).
	EagerFlags bool

	// Counters, when non-nil, receives hot-path profiling counts
	// (decode-cache and block-cache hit/miss, code-cache flushes).
	// Nil costs one predictable branch per instrumented site.
	Counters *obs.EngineCounters
}

// DefaultConfig returns the paper-default TOL configuration.
func DefaultConfig() Config {
	return Config{
		BBThreshold: 10,
		SBThreshold: 300,
		Costs:       DefaultCosts(),
		SB:          DefaultSBConfig(),
		HostCfg:     hostvm.DefaultConfig(),
		CacheSize:   codecache.DefaultCapacity,
		RunFuel:     200_000,
	}
}

// Event is what Run pauses for.
type Event uint8

// Run events.
const (
	EvBudget   Event = iota // guest instruction budget exhausted
	EvHalt                  // guest executed HALT
	EvSyscall               // guest at a SYSCALL; controller must sync
	EvNeedPage              // first touch of a guest page; controller must transfer it
)

func (e Event) String() string {
	switch e {
	case EvBudget:
		return "budget"
	case EvHalt:
		return "halt"
	case EvSyscall:
		return "syscall"
	case EvNeedPage:
		return "need-page"
	}
	return "?"
}

// RunResult reports why Run returned.
type RunResult struct {
	Event     Event
	FaultAddr uint32 // valid for EvNeedPage
}

// Stats aggregates the execution statistics the paper's evaluation
// section reports.
type Stats struct {
	GuestInsnsIM  uint64 // dynamic guest instructions interpreted
	GuestInsnsBBM uint64 // retired from basic-block translations
	GuestInsnsSBM uint64 // retired from superblocks
	GuestBBs      uint64 // dynamic guest basic blocks retired

	HostInsnsBBM uint64 // host instructions retired in BBM blocks
	HostInsnsSBM uint64 // host instructions retired in superblocks

	Dispatches     uint64
	BBTranslations uint64
	SBTranslations uint64
	AssertRebuilds uint64
	SpecRebuilds   uint64
	SpecLoadsSched uint64 // speculative loads emitted by the scheduler
	UnrolledLoops  uint64
	InterpBBs      uint64
	Syscalls       uint64
	PageRequests   uint64
}

// GuestInsns reports total dynamic guest instructions retired.
func (s *Stats) GuestInsns() uint64 {
	return s.GuestInsnsIM + s.GuestInsnsBBM + s.GuestInsnsSBM
}

// profEntry is the per-region-entry profiling record. The seed kept four
// parallel maps (interpretation counts, translation blacklist, rebuild
// options, execution frequencies) and paid up to four hash lookups per
// dispatch; one entry behind one lookup holds them all.
type profEntry struct {
	repCount    uint32 // interpretations since the last translation decision
	noTranslate bool   // block is untranslatable; stay in the interpreter
	sbOpts      sbOptions
	bbFreq      uint64 // region entry frequency (warm-up correlation input)
}

// TOL is the Translation Optimization Layer plus the co-designed
// component state it drives: the emulated guest architectural state, the
// emulated (strict, demand-paged) guest memory, the host emulator, the
// code cache and the IBTC.
type TOL struct {
	CPU   guest.CPU
	Mem   *guestvm.Memory
	VM    *hostvm.VM
	Cache *codecache.Cache
	IBTC  *IBTC

	Cfg      Config
	SBCfg    SBConfig
	Overhead Overhead
	Stats    Stats

	Fetch Fetcher

	// prof holds the per-entry profile records (see profEntry).
	prof map[uint32]*profEntry

	// dec memoizes guest instruction decode per code page; iblocks
	// caches whole decoded basic blocks for the interpreter. Both are
	// invalidated by InstallPage when the controller (re)writes a page.
	dec           guestvm.DecodeCache
	iblocks       map[uint32]*interpBlock
	iblocksByPage map[uint32][]uint32

	// ov accumulates overhead charges within the current dispatch; it
	// is flushed into Overhead once per dispatch by Run.
	ov [NumOverheadCats]uint64

	halted bool
	midBB  bool

	// LastDispatch records the most recent dispatch for the debug
	// toolchain: what executed and from where.
	LastDispatch DispatchRecord
}

// MidBB reports whether execution is paused in the middle of a guest
// basic block (after a mid-block page fault or at a syscall). State
// comparison against the authoritative component is only meaningful at
// basic-block boundaries.
func (t *TOL) MidBB() bool { return t.midBB }

// ClearMidBB marks the component as block-aligned again (the controller
// calls it after completing a syscall synchronization).
func (t *TOL) ClearMidBB() { t.midBB = false }

// DispatchRecord describes one TOL dispatch.
type DispatchRecord struct {
	PC      uint32
	Mode    string // "im", "bb", "superblock"
	BlockID int    // -1 for interpretation
}

// New builds a co-designed component for a program whose initial state
// the controller will install. Memory is strict: first touches raise
// page requests.
func New(cfg Config) *TOL {
	t := &TOL{
		Mem:           guestvm.NewMemory(true),
		Cache:         codecache.New(cfg.CacheSize),
		Cfg:           cfg,
		SBCfg:         cfg.SB,
		prof:          make(map[uint32]*profEntry),
		iblocks:       make(map[uint32]*interpBlock),
		iblocksByPage: make(map[uint32][]uint32),
	}
	t.IBTC = NewIBTC(t.Cache)
	vmCfg := cfg.HostCfg
	t.VM = hostvm.New(t.Mem, vmCfg)
	t.VM.HotThreshold = cfg.SBThreshold
	t.VM.Resolve = t.Cache.Get
	t.VM.IBTC = t.IBTC.Probe
	t.Fetch = t.fetchInst
	t.Overhead.Charge(OvOther, cfg.Costs.Init)
	return t
}

// InstallPage installs a page image into the emulated guest memory and
// invalidates every artifact derived from the page's previous content:
// the per-page decode cache, the cached interpreter blocks, and any
// translated code-cache blocks whose decoded guest bytes touch the page
// (along with their per-entry translation decisions — the new code may
// translate differently). The controller must install pages through
// this method, not through Mem directly: the seed decoded straight into
// an append-only map and kept serving stale instructions after a page
// was re-installed or rewritten.
//
// In the normal controller flow each page is installed exactly once,
// before any decode of its bytes can have succeeded, so the
// invalidation sweep is a no-op there and execution statistics are
// unaffected.
func (t *TOL) InstallPage(pageAddr uint32, data *[guestvm.PageSize]byte) {
	t.Mem.InstallPage(pageAddr, data)
	t.dec.InvalidatePage(pageAddr)
	t.dropInterpBlocks(pageAddr >> guestvm.PageShift)

	lo := pageAddr &^ uint32(guestvm.PageSize-1)
	hi := lo + guestvm.PageSize
	if hi < lo { // top-of-address-space page
		hi = ^uint32(0)
	}
	reset := func(entry uint32) {
		if p := t.prof[entry]; p != nil {
			p.noTranslate = false
			p.sbOpts = sbOptions{}
		}
	}
	for _, blk := range t.Cache.Blocks() {
		if blk.GuestLo < hi && lo < blk.GuestHi {
			t.Cache.Invalidate(blk)
			reset(blk.Entry)
		}
	}
	for pc := range t.prof {
		if pc >= lo && pc < hi {
			reset(pc)
		}
	}
}

// prof1 returns (allocating if needed) the profile entry for pc.
func (t *TOL) prof1(pc uint32) *profEntry {
	if p := t.prof[pc]; p != nil {
		return p
	}
	p := &profEntry{}
	t.prof[pc] = p
	return p
}

// profOpts reads the rebuild options for entry without allocating.
func (t *TOL) profOpts(pc uint32) sbOptions {
	if p := t.prof[pc]; p != nil {
		return p.sbOpts
	}
	return sbOptions{}
}

// BBFreqSnapshot returns a copy of the co-designed execution
// distribution (region entry frequencies). The warm-up methodology
// correlates it against the authoritative distribution.
func (t *TOL) BBFreqSnapshot() map[uint32]uint64 {
	out := make(map[uint32]uint64, len(t.prof))
	for pc, p := range t.prof {
		if p.bbFreq > 0 {
			out[pc] = p.bbFreq
		}
	}
	return out
}

// SetThresholds changes the promotion thresholds at run time. The
// warm-up simulation methodology (§VI-E) downscales them during the TOL
// warm-up phase and restores them while collecting statistics.
func (t *TOL) SetThresholds(bb uint32, sb uint64) {
	if bb < 1 {
		bb = 1
	}
	if sb < 1 {
		sb = 1
	}
	t.Cfg.BBThreshold = bb
	t.Cfg.SBThreshold = sb
	t.VM.HotThreshold = sb
}

// Thresholds reports the active promotion thresholds.
func (t *TOL) Thresholds() (bb uint32, sb uint64) {
	return t.Cfg.BBThreshold, t.Cfg.SBThreshold
}

// Halted reports whether the guest has executed HALT or exited.
func (t *TOL) Halted() bool { return t.halted }

// SetHalted force-stops the component (controller use, on SysExit).
func (t *TOL) SetHalted() { t.halted = true }

// fetchInst decodes the guest instruction at pc from emulated memory,
// through the per-page decode cache.
func (t *TOL) fetchInst(pc uint32) (guest.Inst, error) {
	if in, ok := t.dec.Lookup(pc); ok {
		if t.Cfg.Counters != nil {
			t.Cfg.Counters.DecodeHits.Add(1)
		}
		return in, nil
	}
	if t.Cfg.Counters != nil {
		t.Cfg.Counters.DecodeMisses.Add(1)
	}
	var raw [10]byte
	b0, err := t.Mem.Load8(pc)
	if err != nil {
		return guest.Inst{Op: guest.BAD}, err
	}
	raw[0] = b0
	op := guest.Op(b0)
	n := guest.FormLen(op.Desc().Form)
	if n == 0 {
		return guest.Inst{Op: guest.BAD}, fmt.Errorf("tol: undecodable instruction at %#x", pc)
	}
	for i := 1; i < n; i++ {
		v, err := t.Mem.Load8(pc + uint32(i))
		if err != nil {
			return guest.Inst{Op: guest.BAD}, err
		}
		raw[i] = v
	}
	in, k := guest.Decode(raw[:n])
	if k == 0 {
		return guest.Inst{Op: guest.BAD}, fmt.Errorf("tol: undecodable instruction at %#x", pc)
	}
	t.dec.Insert(pc, in)
	return in, nil
}

// flushOverhead folds the per-dispatch overhead accumulator into the
// run totals.
func (t *TOL) flushOverhead() {
	for c, v := range t.ov {
		if v != 0 {
			t.Overhead.Cat[c] += v
			t.ov[c] = 0
		}
	}
}

// Run executes up to budget guest instructions (0 = until an event).
func (t *TOL) Run(budget uint64) (RunResult, error) {
	start := t.Stats.GuestInsns()
	for !t.halted {
		if budget > 0 && t.Stats.GuestInsns()-start >= budget {
			return RunResult{Event: EvBudget}, nil
		}
		res, done, err := t.dispatch()
		t.flushOverhead()
		if err != nil {
			return RunResult{}, err
		}
		if done {
			return res, nil
		}
	}
	return RunResult{Event: EvHalt}, nil
}

// dispatch is one iteration of the TOL main loop (paper Fig. 3).
func (t *TOL) dispatch() (RunResult, bool, error) {
	c := &t.Cfg.Costs
	t.Stats.Dispatches++
	t.ov[OvOther] += c.DispatchLoop + c.StatsPerDispatch
	pc := t.CPU.EIP
	t.ov[OvLookup] += c.Lookup
	if blk, ok := t.Cache.Lookup(pc); ok {
		if t.Cfg.Counters != nil {
			t.Cfg.Counters.BlockHits.Add(1)
		}
		return t.execBlock(blk)
	}
	if t.Cfg.Counters != nil {
		t.Cfg.Counters.BlockMisses.Add(1)
	}

	in, err := t.Fetch(pc)
	if err != nil {
		return t.pageFaultResult(err)
	}
	switch in.Op {
	case guest.SYSCALL:
		t.Stats.Syscalls++
		return RunResult{Event: EvSyscall}, true, nil
	case guest.BAD:
		return RunResult{}, false, fmt.Errorf("tol: illegal guest instruction at %#x", pc)
	}
	if !translatable(in.Op) {
		// Safety net: interpret the complex instruction directly.
		return t.interpretBB(pc)
	}

	p := t.prof1(pc)
	p.repCount++
	if p.repCount >= t.Cfg.BBThreshold && !p.noTranslate {
		if err := t.doBBTranslation(pc, p); err != nil {
			return t.pageFaultResult(err)
		}
		if !p.noTranslate {
			return RunResult{}, false, nil // next dispatch executes it
		}
	}
	return t.interpretBBWith(pc, p)
}

// doBBTranslation translates and installs the basic block at pc.
func (t *TOL) doBBTranslation(pc uint32, p *profEntry) error {
	blk, err := t.translateBB(pc)
	if err != nil {
		return err
	}
	if blk == nil {
		p.noTranslate = true
		return nil
	}
	c := &t.Cfg.Costs
	t.ov[OvBBTrans] += c.BBTransFixed + c.BBTransPerInsn*uint64(blk.GuestInsns)
	if t.Cache.Insert(blk) {
		t.IBTC.Flush()
		if t.Cfg.Counters != nil {
			t.Cfg.Counters.CodeFlushes.Add(1)
		}
	}
	t.Stats.BBTranslations++
	t.observe(TranslationEvent{Kind: TransBB, Entry: pc,
		GuestInsns: blk.GuestInsns, HostInsns: len(blk.Code)})
	return nil
}

// pageFaultResult converts a page-fault error into a controller event.
func (t *TOL) pageFaultResult(err error) (RunResult, bool, error) {
	if pf, ok := err.(*guestvm.PageFaultError); ok {
		t.Stats.PageRequests++
		return RunResult{Event: EvNeedPage, FaultAddr: pf.Addr}, true, nil
	}
	return RunResult{}, false, err
}

// execBlock runs translated code and handles its exit.
func (t *TOL) execBlock(blk *codecache.Block) (RunResult, bool, error) {
	c := &t.Cfg.Costs
	t.ov[OvPrologue] += c.Prologue
	t.prof1(blk.Entry).bbFreq++
	t.LastDispatch = DispatchRecord{PC: blk.Entry, Mode: blk.Kind.String(), BlockID: blk.ID}
	t.VM.Regs.LoadGuest(&t.CPU)
	res, rstats, err := t.VM.Run(blk, t.Cfg.RunFuel)
	if err != nil {
		return RunResult{}, false, err
	}
	t.VM.Regs.StoreGuest(&t.CPU)
	t.CPU.EIP = res.NextPC
	t.ov[OvPrologue] += c.Epilogue

	t.Stats.GuestInsnsBBM += rstats.GuestInsnsBB
	t.Stats.GuestInsnsSBM += rstats.GuestInsnsSB
	t.Stats.GuestBBs += rstats.GuestBBs
	t.Stats.HostInsnsBBM += rstats.HostInsnsBB
	t.Stats.HostInsnsSBM += rstats.HostInsnsSB

	// Superblock promotion for blocks that crossed the hot threshold.
	for _, hot := range t.VM.DrainHot() {
		if err := t.promote(hot); err != nil {
			if _, isPF := err.(*guestvm.PageFaultError); isPF {
				// Code page not yet resident: drop the promotion; the
				// block stays hot and will be re-queued.
				continue
			}
			return RunResult{}, false, err
		}
	}

	switch res.Kind {
	case hostvm.ExitToTOL:
		if t.Cfg.DisableChaining {
			return RunResult{}, false, nil
		}
		// Attempt to chain the taken exit to an existing translation.
		t.ov[OvChaining] += c.ChainAttempt
		if src, ok := t.Cache.Get(res.Block.ID); ok {
			if dst, ok2 := t.Cache.Lookup(res.NextPC); ok2 {
				if err := t.Cache.Chain(src, res.ExitIdx, dst); err == nil {
					t.ov[OvChaining] += c.ChainPatch
				}
			}
		}
		return RunResult{}, false, nil
	case hostvm.ExitIndirect:
		if t.Cfg.DisableChaining {
			return RunResult{}, false, nil
		}
		t.ov[OvChaining] += c.ChainAttempt
		if dst, ok := t.Cache.Lookup(res.NextPC); ok {
			t.IBTC.Insert(res.NextPC, dst.ID)
			t.ov[OvChaining] += c.IBTCInsert
		}
		return RunResult{}, false, nil
	case hostvm.ExitAssertFail:
		if res.Block.Kind == codecache.KindSuperblock && res.Block.AssertFails >= t.SBCfg.AssertLimit {
			if err := t.rebuild(res.Block, func(o *sbOptions) { o.noAsserts = true }); err != nil {
				return RunResult{}, false, err
			}
			t.Stats.AssertRebuilds++
			t.observe(TranslationEvent{Kind: TransAssertRebuild, Entry: res.Block.Entry})
		}
		// Forward progress through the interpreter (§V-B1).
		return t.interpretBB(t.CPU.EIP)
	case hostvm.ExitMemSpecFail:
		if res.Block.Kind == codecache.KindSuperblock && res.Block.SpecFails >= t.SBCfg.SpecLimit {
			if err := t.rebuild(res.Block, func(o *sbOptions) { o.noMemSpec = true }); err != nil {
				return RunResult{}, false, err
			}
			t.Stats.SpecRebuilds++
			t.observe(TranslationEvent{Kind: TransSpecRebuild, Entry: res.Block.Entry})
		}
		return t.interpretBB(t.CPU.EIP)
	case hostvm.ExitPageFault:
		t.Stats.PageRequests++
		return RunResult{Event: EvNeedPage, FaultAddr: res.FaultAddr}, true, nil
	}
	return RunResult{}, false, fmt.Errorf("tol: unhandled exit kind %v", res.Kind)
}

// promote builds and installs a superblock rooted at a hot BBM block.
func (t *TOL) promote(entry uint32) error {
	plan, err := t.formSuperblock(entry)
	if err != nil {
		return err
	}
	opts := t.profOpts(entry)
	if t.SBCfg.NoAsserts {
		opts.noAsserts = true
	}
	blk, st, err := t.translateSuperblock(plan, opts)
	if err != nil {
		return err
	}
	c := &t.Cfg.Costs
	t.ov[OvSBTrans] += c.SBTransFixed + c.SBTransPerInsn*uint64(blk.GuestInsns)
	if t.Cache.Insert(blk) {
		t.IBTC.Flush()
		if t.Cfg.Counters != nil {
			t.Cfg.Counters.CodeFlushes.Add(1)
		}
	}
	t.Stats.SBTranslations++
	t.Stats.SpecLoadsSched += uint64(st.Sched.SpecLoads)
	if plan.unrolled > 1 {
		t.Stats.UnrolledLoops++
	}
	t.observe(TranslationEvent{Kind: TransSB, Entry: entry,
		GuestInsns: blk.GuestInsns, HostInsns: len(blk.Code), Unrolled: blk.Unrolled})
	return nil
}

// rebuild recreates a superblock with reduced speculation.
func (t *TOL) rebuild(blk *codecache.Block, adjust func(*sbOptions)) error {
	entry := blk.Entry
	p := t.prof1(entry)
	adjust(&p.sbOpts)
	if _, ok := t.Cache.Get(blk.ID); ok {
		t.Cache.Invalidate(blk)
	}
	return t.promote(entry)
}
