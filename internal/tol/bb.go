package tol

import (
	"fmt"

	"darco/internal/codecache"
	"darco/internal/guest"
	"darco/internal/ir"
)

// Fetcher decodes the guest instruction at pc from the co-designed
// component's emulated memory. It returns a page-fault error when the
// code page has not been transferred yet.
type Fetcher func(pc uint32) (guest.Inst, error)

// maxBBInsns caps decoded basic block length defensively.
const maxBBInsns = 512

// bbInfo is one decoded guest basic block.
type bbInfo struct {
	entry  uint32
	insts  []guest.Inst // body, excluding the terminator
	pcs    []uint32
	term   guest.Inst // terminating instruction
	termPC uint32
	nextPC uint32 // fall-through PC after the terminator
}

// staticLen reports the number of static guest instructions including
// the terminator when it is translatable.
func (bb *bbInfo) staticLen() int {
	n := len(bb.insts)
	if translatable(bb.term.Op) {
		n++
	}
	return n
}

// decodeBB decodes the basic block starting at pc.
func decodeBB(fetch Fetcher, pc uint32) (*bbInfo, error) {
	bb := &bbInfo{entry: pc}
	cur := pc
	for n := 0; n < maxBBInsns; n++ {
		in, err := fetch(cur)
		if err != nil {
			return nil, err
		}
		if in.Op.EndsBasicBlock() || !translatable(in.Op) {
			bb.term = in
			bb.termPC = cur
			bb.nextPC = cur + uint32(in.Len())
			return bb, nil
		}
		bb.insts = append(bb.insts, in)
		bb.pcs = append(bb.pcs, cur)
		cur += uint32(in.Len())
	}
	return nil, fmt.Errorf("tol: basic block at %#x exceeds %d instructions", pc, maxBBInsns)
}

// translateBody translates the straight-line body of a basic block.
func (x *xlate) translateBody(bb *bbInfo) error {
	for i := range bb.insts {
		if err := x.inst(bb.pcs[i], &bb.insts[i]); err != nil {
			return err
		}
	}
	return nil
}

// translateTerminator lowers a basic block terminator into region exits,
// the way both BBM blocks and the final block of a superblock end.
func (x *xlate) translateTerminator(bb *bbInfo) error {
	t := &bb.term
	x.gpc = bb.termPC
	d := t.Op.Desc()
	switch {
	case d.IsCond:
		cond := x.cond(t.Op)
		x.guestInsns++
		x.guestBBs++
		x.emitExitIf(cond, t.Target(bb.termPC), true)
		x.emitExit(bb.nextPC, false)
	case t.Op == guest.JMP:
		x.guestInsns++
		x.guestBBs++
		x.emitExit(t.Target(bb.termPC), false)
	case t.Op == guest.JMPr:
		addr := x.getGPR(t.R1)
		x.guestInsns++
		x.guestBBs++
		x.emitExitInd(addr)
	case t.Op == guest.CALL:
		x.pushValue(x.constI(bb.nextPC))
		x.guestInsns++
		x.guestBBs++
		x.emitExit(t.Target(bb.termPC), false)
	case t.Op == guest.CALLr:
		x.pushValue(x.constI(bb.nextPC))
		addr := x.getGPR(t.R1)
		x.guestInsns++
		x.guestBBs++
		x.emitExitInd(addr)
	case t.Op == guest.RET:
		sp := x.getGPR(guest.ESP)
		addr := x.emit(ir.Inst{Op: ir.Ld32, Dst: -1, A: sp})
		x.setGPR(guest.ESP, x.op2(ir.Add, sp, x.constI(4)))
		x.guestInsns++
		x.guestBBs++
		x.emitExitInd(addr)
	default:
		// Untranslatable terminator (SYSCALL, HALT, MOVS, STOS): leave
		// to the software layer at its PC. The basic block has not
		// finished — the interpreter executes the terminator and
		// retires the block.
		x.emitExit(bb.termPC, false)
	}
	return nil
}

func (x *xlate) pushValue(v ir.ValueID) {
	sp := x.op2(ir.Sub, x.getGPR(guest.ESP), x.constI(4))
	x.emit(ir.Inst{Op: ir.St32, A: sp, B: v})
	x.setGPR(guest.ESP, sp)
}

// finishRegion runs the mode-appropriate optimization pipeline and
// generates the host block.
type regionStats struct {
	Folded, CSEd, DCEd int
	MemOpt             ir.MemOptStats
	Sched              ir.SchedStats
	Spills             int
}

// OptLevel selects how much of the optimization pipeline runs; the
// debug toolchain replays translations at increasing levels to pinpoint
// the pass a divergence first appears in.
type OptLevel int

// Optimization levels, cumulative. The zero value selects LevelFull.
const (
	LevelDefault OptLevel = iota // alias for LevelFull
	LevelNone                    // straight translation, no passes
	LevelForward                 // + constant folding/propagation, copy propagation
	LevelCSE                     // + common subexpression elimination
	LevelDCE                     // + dead code elimination
	LevelMem                     // + redundant load elim, store forwarding, dead stores
	LevelSched                   // + DDG construction and list scheduling
	LevelFull                    // everything (speculative reordering per maxSpec)
)

func (l OptLevel) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelForward:
		return "forward"
	case LevelCSE:
		return "cse"
	case LevelDCE:
		return "dce"
	case LevelMem:
		return "memopt"
	case LevelSched:
		return "sched"
	}
	return "full"
}

func lowerRegion(r *ir.Region, superblock bool, maxSpec int, level OptLevel, mutate func(*ir.Region)) (*ir.GenResult, regionStats, error) {
	var st regionStats
	if level >= LevelForward {
		st.Folded = r.ForwardPass()
	}
	if superblock && level >= LevelCSE {
		st.CSEd = r.CSE()
	}
	if level >= LevelDCE {
		st.DCEd = r.DCE()
	}
	if superblock && level >= LevelMem {
		st.MemOpt = r.MemOpt()
	}
	if superblock && level >= LevelSched {
		g := r.BuildDDG()
		spec := 0
		if level >= LevelFull {
			spec = maxSpec
		}
		st.Sched = r.Schedule(g, spec)
	}
	if mutate != nil {
		mutate(r)
	}
	alloc := r.Allocate()
	gen, err := r.Generate(alloc)
	if err != nil {
		return nil, st, err
	}
	st.Spills = gen.Spills
	return gen, st, nil
}

// translateBB builds a BBM block for the basic block at pc. It returns
// nil (no error) when the block is not translatable (e.g. it begins with
// a system call or string instruction).
func (t *TOL) translateBB(pc uint32) (*codecache.Block, error) {
	bb, err := decodeBB(t.Fetch, pc)
	if err != nil {
		return nil, err
	}
	if len(bb.insts) == 0 && !translatable(bb.term.Op) {
		return nil, nil
	}
	x := newXlate(pc, false)
	x.eager = t.Cfg.EagerFlags
	if err := x.translateBody(bb); err != nil {
		return nil, err
	}
	if err := x.translateTerminator(bb); err != nil {
		return nil, err
	}
	gen, _, err := lowerRegion(x.r, false, 0, LevelDCE, t.Cfg.MutateRegion)
	if err != nil {
		return nil, err
	}
	blk := &codecache.Block{
		Entry:      pc,
		Kind:       codecache.KindBB,
		Code:       gen.Code,
		GuestInsns: bb.staticLen(),
		BBs:        []uint32{pc},
		GuestLo:    pc,
		GuestHi:    bb.nextPC,
		ExitMeta:   convertMeta(gen.ExitMeta),
	}
	return blk, nil
}

func convertMeta(m map[int]ir.ExitInfo) map[int]codecache.ExitInfo {
	out := make(map[int]codecache.ExitInfo, len(m))
	for k, v := range m {
		out[k] = codecache.ExitInfo{GuestInsns: v.GuestInsns, GuestBBs: v.GuestBBs, Taken: v.Taken}
	}
	return out
}
