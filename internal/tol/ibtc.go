package tol

import "darco/internal/codecache"

// IBTC is the Indirect Branch Translation Cache [17]: a software table
// mapping guest indirect-branch targets to their code cache blocks so
// indirect control transfers avoid a full TOL dispatch. The inline probe
// cost is modelled by the host emulator (hostvm.Config.IBTCCost).
type IBTC struct {
	table map[uint32]int // guest target PC -> block id
	cache *codecache.Cache

	Hits, Misses, Inserts, Stale uint64
}

// NewIBTC returns an empty IBTC bound to a code cache.
func NewIBTC(cache *codecache.Cache) *IBTC {
	return &IBTC{table: make(map[uint32]int), cache: cache}
}

// Probe resolves a guest target, dropping stale entries.
func (t *IBTC) Probe(target uint32) (*codecache.Block, bool) {
	id, ok := t.table[target]
	if !ok {
		t.Misses++
		return nil, false
	}
	blk, ok := t.cache.Get(id)
	if !ok || blk.Entry != target {
		delete(t.table, target)
		t.Stale++
		t.Misses++
		return nil, false
	}
	t.Hits++
	return blk, true
}

// Insert installs a mapping.
func (t *IBTC) Insert(target uint32, blockID int) {
	t.table[target] = blockID
	t.Inserts++
}

// Flush empties the table (code cache flush).
func (t *IBTC) Flush() { t.table = make(map[uint32]int) }

// Len reports resident entries.
func (t *IBTC) Len() int { return len(t.table) }
