package tol

import (
	"fmt"

	"darco/internal/guest"
	"darco/internal/ir"
)

// translatable reports whether TOL can include the opcode in translated
// code. Complex string instructions, system calls and HALT stay in the
// software layer (the interpreter is the safety net, §V-B1).
func translatable(op guest.Op) bool {
	switch op {
	case guest.SYSCALL, guest.HALT, guest.MOVS, guest.STOS, guest.BAD:
		return false
	}
	return true
}

// inst translates one non-terminator guest instruction at pc into IR and
// bumps the path retirement counter.
func (x *xlate) inst(pc uint32, in *guest.Inst) error {
	x.gpc = pc
	switch in.Op {
	case guest.NOP:

	case guest.MOVri:
		x.setGPR(in.R1, x.constI(uint32(in.Imm)))
	case guest.MOVrr:
		x.setGPR(in.R1, x.getGPR(in.R2))

	case guest.LOAD:
		v := x.emit(ir.Inst{Op: ir.Ld32, Dst: -1, A: x.getGPR(in.R2), Off: in.Imm})
		x.setGPR(in.R1, v)
	case guest.STORE:
		x.emit(ir.Inst{Op: ir.St32, A: x.getGPR(in.R2), Off: in.Imm, B: x.getGPR(in.R1)})
	case guest.LOADB:
		v := x.emit(ir.Inst{Op: ir.Ld8, Dst: -1, A: x.getGPR(in.R2), Off: in.Imm})
		x.setGPR(in.R1, v)
	case guest.STOREB:
		x.emit(ir.Inst{Op: ir.St8, A: x.getGPR(in.R2), Off: in.Imm, B: x.getGPR(in.R1)})
	case guest.LOADX:
		ea := x.indexedAddr(in)
		v := x.emit(ir.Inst{Op: ir.Ld32, Dst: -1, A: ea, Off: in.Imm})
		x.setGPR(in.R1, v)
	case guest.STOREX:
		ea := x.indexedAddr(in)
		x.emit(ir.Inst{Op: ir.St32, A: ea, Off: in.Imm, B: x.getGPR(in.R1)})
	case guest.LEA:
		ea := x.indexedAddr(in)
		x.setGPR(in.R1, x.op2(ir.Add, ea, x.constI(uint32(in.Imm))))

	case guest.ADDrr, guest.ADDri:
		a := x.getGPR(in.R1)
		b := x.aluSrc(in)
		res := x.op2(ir.Add, a, b)
		x.setAllFlags(&setter{kind: setAdd, a: a, b: b, res: res})
		x.setGPR(in.R1, res)
	case guest.SUBrr, guest.SUBri:
		a := x.getGPR(in.R1)
		b := x.aluSrc(in)
		res := x.op2(ir.Sub, a, b)
		x.setAllFlags(&setter{kind: setSub, a: a, b: b, res: res})
		x.setGPR(in.R1, res)
	case guest.CMPrr, guest.CMPri:
		a := x.getGPR(in.R1)
		b := x.aluSrc(in)
		res := x.op2(ir.Sub, a, b)
		x.setAllFlags(&setter{kind: setSub, a: a, b: b, res: res})
	case guest.ADCrr:
		cf := x.flag(fCF)
		a := x.getGPR(in.R1)
		b := x.getGPR(in.R2)
		t := x.op2(ir.Add, a, b)
		res := x.op2(ir.Add, t, cf)
		c1 := x.op2(ir.Sltu, t, a)
		c2 := x.op2(ir.Sltu, res, t)
		ncf := x.op2(ir.Or, c1, c2)
		t1 := x.op2(ir.Xor, a, res)
		t2 := x.op2(ir.Xor, b, res)
		nof := x.op2(ir.Shr, x.op2(ir.And, t1, t2), x.constI(31))
		x.setAllFlags(&setter{kind: setSZP, res: res})
		x.flags[fCF] = flagSrc{val: ncf}
		x.flags[fOF] = flagSrc{val: nof}
		x.setGPR(in.R1, res)
	case guest.SBBrr:
		cf := x.flag(fCF)
		a := x.getGPR(in.R1)
		b := x.getGPR(in.R2)
		t := x.op2(ir.Sub, a, b)
		res := x.op2(ir.Sub, t, cf)
		b1 := x.op2(ir.Sltu, a, b)
		b2 := x.op2(ir.Sltu, t, cf)
		ncf := x.op2(ir.Or, b1, b2)
		t1 := x.op2(ir.Xor, a, b)
		t2 := x.op2(ir.Xor, a, res)
		nof := x.op2(ir.Shr, x.op2(ir.And, t1, t2), x.constI(31))
		x.setAllFlags(&setter{kind: setSZP, res: res})
		x.flags[fCF] = flagSrc{val: ncf}
		x.flags[fOF] = flagSrc{val: nof}
		x.setGPR(in.R1, res)

	case guest.ANDrr, guest.ANDri:
		x.logic(in, ir.And)
	case guest.ORrr, guest.ORri:
		x.logic(in, ir.Or)
	case guest.XORrr, guest.XORri:
		x.logic(in, ir.Xor)
	case guest.TESTrr:
		a := x.getGPR(in.R1)
		b := x.getGPR(in.R2)
		res := x.op2(ir.And, a, b)
		x.setAllFlags(&setter{kind: setLogic, res: res})

	case guest.SHLri, guest.SHLrr:
		x.shift(in, ir.Shl, setShl)
	case guest.SHRri, guest.SHRrr:
		x.shift(in, ir.Shr, setShr)
	case guest.SARri:
		x.shift(in, ir.Sar, setSar)

	case guest.IMULrr, guest.IMULri:
		a := x.getGPR(in.R1)
		b := x.aluSrc(in)
		res := x.op2(ir.Mul, a, b)
		x.setAllFlags(&setter{kind: setMul, a: a, b: b, res: res})
		x.setGPR(in.R1, res)
	case guest.IDIV:
		num := x.getGPR(guest.EAX)
		den := x.getGPR(in.R1)
		q := x.op2(ir.Div, num, den)
		rem := x.op2(ir.Rem, num, den)
		x.setGPR(guest.EAX, q)
		x.setGPR(guest.EDX, rem)

	case guest.INC, guest.DEC:
		a := x.getGPR(in.R1)
		op := ir.Add
		cmp := uint32(0x7FFFFFFF)
		if in.Op == guest.DEC {
			op = ir.Sub
			cmp = 0x80000000
		}
		res := x.op2(op, a, x.constI(1))
		cfSrc := x.flags[fCF] // CF preserved
		szp := &setter{kind: setSZP, res: res}
		x.flags[fZF] = flagSrc{set: szp}
		x.flags[fSF] = flagSrc{set: szp}
		x.flags[fPF] = flagSrc{set: szp}
		x.flags[fOF] = flagSrc{set: &setter{kind: setIncOF, a: a, cmp: cmp}}
		x.flags[fCF] = cfSrc
		x.setGPR(in.R1, res)
	case guest.NEG:
		a := x.getGPR(in.R1)
		zero := x.constI(0)
		res := x.op2(ir.Sub, zero, a)
		x.setAllFlags(&setter{kind: setSub, a: zero, b: a, res: res})
		x.setGPR(in.R1, res)
	case guest.NOT:
		x.setGPR(in.R1, x.op2(ir.Xor, x.getGPR(in.R1), x.constI(0xFFFFFFFF)))

	case guest.PUSH, guest.PUSHI:
		sp := x.op2(ir.Sub, x.getGPR(guest.ESP), x.constI(4))
		var v ir.ValueID
		if in.Op == guest.PUSH {
			v = x.getGPR(in.R1)
		} else {
			v = x.constI(uint32(in.Imm))
		}
		x.emit(ir.Inst{Op: ir.St32, A: sp, B: v})
		x.setGPR(guest.ESP, sp)
	case guest.POP:
		sp := x.getGPR(guest.ESP)
		v := x.emit(ir.Inst{Op: ir.Ld32, Dst: -1, A: sp})
		x.setGPR(guest.ESP, x.op2(ir.Add, sp, x.constI(4)))
		x.setGPR(in.R1, v)

	case guest.FLD:
		v := x.emit(ir.Inst{Op: ir.LdF, Dst: -1, A: x.getGPR(in.R2), Off: in.Imm})
		x.setFPR(in.R1, v)
	case guest.FST:
		x.emit(ir.Inst{Op: ir.StF, A: x.getGPR(in.R2), Off: in.Imm, B: x.getFPR(in.R1)})
	case guest.FLDI:
		x.setFPR(in.R1, x.constF(in.F64))
	case guest.FMOV:
		x.setFPR(in.R1, x.getFPR(in.R2))
	case guest.FADD:
		x.setFPR(in.R1, x.op2(ir.Fadd, x.getFPR(in.R1), x.getFPR(in.R2)))
	case guest.FSUB:
		x.setFPR(in.R1, x.op2(ir.Fsub, x.getFPR(in.R1), x.getFPR(in.R2)))
	case guest.FMUL:
		x.setFPR(in.R1, x.op2(ir.Fmul, x.getFPR(in.R1), x.getFPR(in.R2)))
	case guest.FDIV:
		x.setFPR(in.R1, x.op2(ir.Fdiv, x.getFPR(in.R1), x.getFPR(in.R2)))
	case guest.FSQRT:
		x.setFPR(in.R1, x.op1(ir.Fsqrt, x.getFPR(in.R2)))
	case guest.FABS:
		x.setFPR(in.R1, x.op1(ir.Fabs, x.getFPR(in.R2)))
	case guest.FNEG:
		x.setFPR(in.R1, x.op1(ir.Fneg, x.getFPR(in.R2)))
	case guest.FSIN:
		x.setFPR(in.R1, x.trig(x.getFPR(in.R2), guest.SinCoef[:], true))
	case guest.FCOS:
		x.setFPR(in.R1, x.trig(x.getFPR(in.R2), guest.CosCoef[:], false))
	case guest.FCMP:
		a := x.getFPR(in.R1)
		b := x.getFPR(in.R2)
		un := x.op2(ir.Funord, a, b)
		eq := x.op2(ir.Fseq, a, b)
		lt := x.op2(ir.Fslt, a, b)
		zero := x.constI(0)
		x.flags[fZF] = flagSrc{val: x.op2(ir.Or, eq, un)}
		x.flags[fCF] = flagSrc{val: x.op2(ir.Or, lt, un)}
		x.flags[fPF] = flagSrc{val: un}
		x.flags[fSF] = flagSrc{val: zero}
		x.flags[fOF] = flagSrc{val: zero}
	case guest.CVTIF:
		x.setFPR(in.R1, x.op1(ir.Fcvtf, x.getGPR(in.R2)))
	case guest.CVTFI:
		x.setGPR(in.R1, x.op1(ir.Fcvti, x.getFPR(in.R2)))

	default:
		return fmt.Errorf("tol: untranslatable op %v at %#x", in.Op, pc)
	}
	x.guestInsns++
	return nil
}

func (x *xlate) aluSrc(in *guest.Inst) ir.ValueID {
	switch in.Op.Desc().Form {
	case guest.FormI:
		return x.constI(uint32(in.Imm))
	default:
		return x.getGPR(in.R2)
	}
}

func (x *xlate) indexedAddr(in *guest.Inst) ir.ValueID {
	idx := x.getGPR(in.R3)
	if in.Scale > 0 {
		idx = x.op2(ir.Shl, idx, x.constI(uint32(in.Scale)))
	}
	return x.op2(ir.Add, x.getGPR(in.R2), idx)
}

func (x *xlate) logic(in *guest.Inst, op ir.Op) {
	a := x.getGPR(in.R1)
	b := x.aluSrc(in)
	res := x.op2(op, a, b)
	x.setAllFlags(&setter{kind: setLogic, res: res})
	x.setGPR(in.R1, res)
}

func (x *xlate) shift(in *guest.Inst, op ir.Op, kind setKind) {
	a := x.getGPR(in.R1)
	var n ir.ValueID
	if in.Op.Desc().Form == guest.FormI {
		n = x.constI(uint32(in.Imm) & 31)
	} else {
		n = x.op2(ir.And, x.getGPR(in.R2), x.constI(31))
	}
	res := x.op2(op, a, n)
	x.setAllFlags(&setter{kind: kind, a: a, n: n, res: res})
	x.setGPR(in.R1, res)
}

// trig expands guest FSIN/FCOS into the straight-line software sequence:
// round-to-nearest range reduction by 2π followed by a Horner
// polynomial. The sequence mirrors guest.SoftSin / guest.SoftCos one
// IEEE operation per IR instruction so translated execution is
// bit-identical to interpretation (see guest.ReduceTwoPi).
func (x *xlate) trig(arg ir.ValueID, coef []float64, mulY bool) ir.ValueID {
	q := x.op2(ir.Fmul, arg, x.constF(guest.InvTwoPi))
	n := x.op1(ir.Fcvti, q)
	nf := x.op1(ir.Fcvtf, n)
	r := x.op2(ir.Fsub, q, nf)
	upI := x.op2(ir.Fslt, x.constF(0.5), r)  // r > 0.5
	dnI := x.op2(ir.Fslt, r, x.constF(-0.5)) // r < -0.5
	up := x.op1(ir.Fcvtf, upI)
	down := x.op1(ir.Fcvtf, dnI)
	n1 := x.op2(ir.Fadd, nf, up)
	n2 := x.op2(ir.Fsub, n1, down)
	m := x.op2(ir.Fmul, n2, x.constF(guest.TwoPi))
	y := x.op2(ir.Fsub, arg, m)
	y2 := x.op2(ir.Fmul, y, y)
	acc := x.constF(coef[len(coef)-1])
	for i := len(coef) - 2; i >= 0; i-- {
		t := x.op2(ir.Fmul, acc, y2)
		acc = x.op2(ir.Fadd, t, x.constF(coef[i]))
	}
	if mulY {
		acc = x.op2(ir.Fmul, acc, y)
	}
	return acc
}
