package tol

import (
	"testing"

	"darco/internal/codecache"
	"darco/internal/guest"
	"darco/internal/guestvm"
)

// setupTOL loads a program into a fresh co-designed component with its
// memory pre-populated (no controller in the loop).
func setupTOL(t *testing.T, src string, cfg Config) *TOL {
	t.Helper()
	im, err := guest.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	tl := New(cfg)
	tl.Mem.Strict = false
	if err := tl.Mem.LoadImage(im); err != nil {
		t.Fatal(err)
	}
	tl.CPU.EIP = im.Entry
	tl.CPU.R[guest.ESP] = guestvm.StackTop
	return tl
}

const loopProgram = `
.org 0x1000
.entry start
start:
    movri eax, 0
    movri ecx, 0
loop:
    addri eax, 3
    inc ecx
    cmpri ecx, 2000
    jl loop
    halt
`

func TestModesProgression(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BBThreshold = 4
	cfg.SBThreshold = 20
	tl := setupTOL(t, loopProgram, cfg)
	res, err := tl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Event != EvHalt {
		t.Fatalf("event %v", res.Event)
	}
	st := &tl.Stats
	if st.GuestInsnsIM == 0 || st.GuestInsnsBBM == 0 || st.GuestInsnsSBM == 0 {
		t.Errorf("all three modes should retire instructions: %d/%d/%d",
			st.GuestInsnsIM, st.GuestInsnsBBM, st.GuestInsnsSBM)
	}
	if st.GuestInsnsSBM < st.GuestInsnsBBM || st.GuestInsnsSBM < st.GuestInsnsIM {
		t.Errorf("hot loop should be dominated by SBM: %d/%d/%d",
			st.GuestInsnsIM, st.GuestInsnsBBM, st.GuestInsnsSBM)
	}
	if st.BBTranslations == 0 || st.SBTranslations == 0 {
		t.Errorf("translations: bb=%d sb=%d", st.BBTranslations, st.SBTranslations)
	}
	if tl.CPU.R[guest.EAX] != 6000 {
		t.Errorf("result %d", tl.CPU.R[guest.EAX])
	}
	if st.UnrolledLoops == 0 {
		t.Errorf("single-BB loop should be unrolled")
	}
}

func TestOverheadCategoriesPopulated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BBThreshold = 4
	cfg.SBThreshold = 20
	tl := setupTOL(t, loopProgram, cfg)
	if _, err := tl.Run(0); err != nil {
		t.Fatal(err)
	}
	ov := &tl.Overhead
	for _, c := range []OverheadCat{OvInterp, OvBBTrans, OvSBTrans, OvPrologue, OvLookup, OvOther} {
		if ov.Cat[c] == 0 {
			t.Errorf("overhead category %v empty", c)
		}
	}
	if ov.Total() == 0 {
		t.Errorf("no overhead accounted")
	}
}

func TestLazyFlagsBeatEagerFlags(t *testing.T) {
	run := func(eager bool) uint64 {
		cfg := DefaultConfig()
		cfg.BBThreshold = 4
		cfg.SBThreshold = 20
		cfg.EagerFlags = eager
		tl := setupTOL(t, loopProgram, cfg)
		if _, err := tl.Run(0); err != nil {
			t.Fatal(err)
		}
		return tl.VM.AppInsns
	}
	lazy := run(false)
	eager := run(true)
	if eager <= lazy {
		t.Errorf("eager flags should cost more host instructions: lazy=%d eager=%d", lazy, eager)
	}
}

func TestChainingReducesDispatches(t *testing.T) {
	run := func(disable bool) uint64 {
		cfg := DefaultConfig()
		cfg.BBThreshold = 4
		cfg.SBThreshold = 1 << 60 // keep everything in BBM so chaining matters
		cfg.DisableChaining = disable
		tl := setupTOL(t, loopProgram, cfg)
		if _, err := tl.Run(0); err != nil {
			t.Fatal(err)
		}
		return tl.Stats.Dispatches
	}
	chained := run(false)
	unchained := run(true)
	if chained >= unchained {
		t.Errorf("chaining should reduce dispatches: with=%d without=%d", chained, unchained)
	}
}

const twoBBProgram = `
.org 0x1000
.entry start
start:
    movri eax, 0
    movri ecx, 0
loop:
    addri eax, 1
    movrr esi, ecx
    andri esi, 1023
    cmpri esi, 1023
    jne skip                 ; biased not-taken (1023/1024)
    addri eax, 100
skip:
    inc ecx
    cmpri ecx, 4000
    jl loop
    halt
`

func TestSuperblockSpansBiasedBranch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BBThreshold = 4
	cfg.SBThreshold = 20
	tl := setupTOL(t, twoBBProgram, cfg)
	if _, err := tl.Run(0); err != nil {
		t.Fatal(err)
	}
	// A superblock anchored at the loop head must span multiple BBs.
	found := false
	for _, blk := range tl.Cache.Blocks() {
		if blk.Kind == codecache.KindSuperblock && len(blk.BBs) > 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no multi-BB superblock formed")
	}
	// The rare path fires 4000/1024 ≈ 3 times; asserts must have failed
	// and recovered through the interpreter.
	if tl.VM.AssertFails == 0 {
		t.Errorf("biased path never failed its assert")
	}
	if tl.CPU.R[guest.EAX] != 4000+3*100 {
		t.Errorf("result %d", tl.CPU.R[guest.EAX])
	}
}

const phaseChangeProgram = `
.org 0x1000
.entry start
start:
    movri eax, 0
    movri ecx, 0
loop:
    movrr esi, ecx
    shrri esi, 11            ; 0 for the first 2048, then 1+
    cmpri esi, 0
    je stay                  ; taken in phase 1, not taken in phase 2
    addri eax, 2
    jmp next
stay:
    addri eax, 1
next:
    inc ecx
    cmpri ecx, 6000
    jl loop
    halt
`

func TestAssertRebuildAfterPhaseChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BBThreshold = 4
	cfg.SBThreshold = 20
	cfg.SB.AssertLimit = 8
	tl := setupTOL(t, phaseChangeProgram, cfg)
	if _, err := tl.Run(0); err != nil {
		t.Fatal(err)
	}
	if tl.Stats.AssertRebuilds == 0 {
		t.Errorf("phase change should trigger an assert rebuild (fails=%d)", tl.VM.AssertFails)
	}
	want := uint32(2048*1 + (6000-2048)*2)
	if tl.CPU.R[guest.EAX] != want {
		t.Errorf("result %d want %d", tl.CPU.R[guest.EAX], want)
	}
}

func TestSetThresholds(t *testing.T) {
	tl := New(DefaultConfig())
	tl.SetThresholds(0, 0) // clamps to 1
	bb, sb := tl.Thresholds()
	if bb != 1 || sb != 1 {
		t.Errorf("clamp: %d %d", bb, sb)
	}
	tl.SetThresholds(7, 70)
	bb, sb = tl.Thresholds()
	if bb != 7 || sb != 70 || tl.VM.HotThreshold != 70 {
		t.Errorf("set: %d %d hot=%d", bb, sb, tl.VM.HotThreshold)
	}
}

func TestIBTCStaleEntryDropped(t *testing.T) {
	cache := codecache.New(0)
	ib := NewIBTC(cache)
	b := &codecache.Block{Entry: 0x1000}
	cache.Insert(b)
	ib.Insert(0x1000, b.ID)
	if got, ok := ib.Probe(0x1000); !ok || got != b {
		t.Fatalf("probe after insert failed")
	}
	cache.Invalidate(b)
	if _, ok := ib.Probe(0x1000); ok {
		t.Fatalf("stale entry returned")
	}
	if ib.Stale != 1 || ib.Len() != 0 {
		t.Errorf("stale bookkeeping: stale=%d len=%d", ib.Stale, ib.Len())
	}
}

func TestDecodeBBStopsAtTerminators(t *testing.T) {
	src := `
.org 0x1000
    movri eax, 1
    addri eax, 2
    movs
    halt
`
	tl := setupTOL(t, src, DefaultConfig())
	bb, err := decodeBB(tl.Fetch, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(bb.insts) != 2 {
		t.Errorf("body %d insns", len(bb.insts))
	}
	if bb.term.Op != guest.MOVS {
		t.Errorf("terminator %v", bb.term.Op)
	}
	if translatable(bb.term.Op) {
		t.Errorf("movs must stay in the software layer")
	}
}

func TestUntranslatableFirstInsn(t *testing.T) {
	src := `
.org 0x1000
    movri ecx, 0
    movs
    movri eax, 1
    movri ebx, 0
    syscall
    halt
`
	cfg := DefaultConfig()
	cfg.BBThreshold = 1
	tl := setupTOL(t, src, cfg)
	res, err := tl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Event != EvSyscall {
		t.Fatalf("event %v", res.Event)
	}
}

func TestStringInstructionViaSafetyNet(t *testing.T) {
	src := `
.org 0x1000
.entry start
start:
    movri esi, 0x3000
    movri edi, 0x4000
    movri eax, 0x41
    movri ecx, 16
    stos
    movri esi, 0x4000
    movri edi, 0x5000
    movri ecx, 16
    movs
    halt
`
	tl := setupTOL(t, src, DefaultConfig())
	if _, err := tl.Run(0); err != nil {
		t.Fatal(err)
	}
	v, _ := tl.Mem.Load8(0x5000 + 7)
	if v != 0x41 {
		t.Errorf("string copy byte %#x", v)
	}
	if tl.Stats.GuestInsnsBBM != 0 || tl.Stats.GuestInsnsSBM != 0 {
		t.Errorf("cold straight-line code should be interpreted")
	}
}
