// Package tol implements the Translation Optimization Layer and the
// co-designed processor built around it: the three-mode execution engine
// (interpretation, basic-block translation, superblock optimization),
// profiling, superblock formation with control speculation and loop
// unrolling, block chaining, the IBTC, and the TOL-overhead cost
// accounting the paper's evaluation is built on.
package tol

// OverheadCat buckets TOL execution into the categories of the paper's
// Fig. 7.
type OverheadCat uint8

// Overhead categories.
const (
	OvInterp   OverheadCat = iota // interpreting code before BBM promotion
	OvBBTrans                     // translating basic blocks
	OvSBTrans                     // creating, translating, optimizing superblocks
	OvPrologue                    // TOL <-> translated code transitions
	OvChaining                    // chain feasibility checks and patching
	OvLookup                      // code cache lookups at dispatch
	OvOther                       // main loop, statistics, initialization
	NumOverheadCats
)

func (c OverheadCat) String() string {
	switch c {
	case OvInterp:
		return "Interpreter"
	case OvBBTrans:
		return "BB Translator"
	case OvSBTrans:
		return "SB Translator"
	case OvPrologue:
		return "Prologue"
	case OvChaining:
		return "Chaining"
	case OvLookup:
		return "Code $ lookup"
	case OvOther:
		return "Others"
	}
	return "?"
}

// Costs is the TOL cost model: how many host instructions each TOL
// activity executes. The real TOL is compiled to the host ISA; this
// reproduction implements it in Go and charges calibrated host
// instruction counts instead (see DESIGN.md §2). Values are derived from
// the footprint of comparable software translators (interpreter dispatch
// ~tens of instructions per guest instruction; superblock optimization
// "thousands to tens of thousands of cycles" per region, §VI-E).
type Costs struct {
	InterpPerInsn    uint64 // decode + dispatch + execute, per guest instruction
	BBTransPerInsn   uint64 // BBM translation, per guest instruction
	BBTransFixed     uint64 // BBM per-block overhead (code cache bookkeeping)
	SBTransPerInsn   uint64 // SBM translation + optimization, per guest instruction
	SBTransFixed     uint64 // SBM per-region overhead (region formation, SSA, DDG)
	Prologue         uint64 // per TOL->code transition (stack management etc.)
	Epilogue         uint64 // per code->TOL transition
	ChainAttempt     uint64 // checking whether an exit can be chained
	ChainPatch       uint64 // patching a chainable exit
	IBTCInsert       uint64 // installing an IBTC entry
	Lookup           uint64 // one code cache lookup
	DispatchLoop     uint64 // TOL main-loop control per dispatch
	StatsPerDispatch uint64
	Init             uint64 // one-time TOL initialization
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() Costs {
	return Costs{
		InterpPerInsn:    52,
		BBTransPerInsn:   260,
		BBTransFixed:     700,
		SBTransPerInsn:   280,
		SBTransFixed:     1100,
		Prologue:         16,
		Epilogue:         14,
		ChainAttempt:     38,
		ChainPatch:       26,
		IBTCInsert:       34,
		Lookup:           17,
		DispatchLoop:     11,
		StatsPerDispatch: 3,
		Init:             52000,
	}
}

// Overhead accumulates TOL host instructions by category.
type Overhead struct {
	Cat [NumOverheadCats]uint64
}

// Charge adds n host instructions to category c.
func (o *Overhead) Charge(c OverheadCat, n uint64) { o.Cat[c] += n }

// Total reports total TOL overhead host instructions.
func (o *Overhead) Total() uint64 {
	var t uint64
	for _, v := range o.Cat {
		t += v
	}
	return t
}
