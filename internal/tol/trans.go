package tol

import (
	"fmt"
	"math"

	"darco/internal/guest"
	"darco/internal/ir"
)

// Guest → IR translation with lazy flag materialization.
//
// Guest ALU instructions define condition flags as a side effect. The
// translator does not compute them eagerly: each flag tracks either a
// materialized SSA value or a lazy reference to its setter (operation
// kind plus operands). Consumers synthesize exactly what they need — a
// conditional branch after a compare becomes a single host comparison —
// and only region exits materialize the full architectural flag state.
// This is the paper's "writes to the flag registers only if the written
// value is really going to be consumed" optimization.

// flagIdx indexes the five guest flags in translator tables.
type flagIdx uint8

const (
	fCF flagIdx = iota
	fZF
	fSF
	fOF
	fPF
	numFlags
)

func (f flagIdx) arch() ir.ArchReg { return ir.ArchCF + ir.ArchReg(f) }

// setKind classifies lazy flag setters.
type setKind uint8

const (
	setNone  setKind = iota
	setAdd           // CF/OF/SZP from a+b=res
	setSub           // CF/OF/SZP from a-b=res (also CMP, NEG with a=0)
	setLogic         // CF=OF=0, SZP from res
	setShl           // shift-left flags; n is the masked shift amount
	setShr
	setSar
	setSZP   // only ZF/SF/PF defined, from res
	setIncOF // OF = (a == cmp)
	setMul   // CF=OF = high half disagrees with sign extension
)

// setter is a lazy flag definition.
type setter struct {
	kind setKind
	a, b ir.ValueID
	res  ir.ValueID
	n    ir.ValueID // shift amount (already masked to 0..31)
	cmp  uint32     // comparison constant for setIncOF
}

// flagSrc is the current source of one flag: a materialized value or a
// lazy setter.
type flagSrc struct {
	val ir.ValueID
	set *setter
}

// xlate translates a guest instruction path into an ir.Region.
type xlate struct {
	r       *ir.Region
	env     map[ir.ArchReg]ir.ValueID // current arch values (written or read)
	livein  map[ir.ArchReg]ir.ValueID // entry values
	flags   [numFlags]flagSrc
	consts  map[uint32]ir.ValueID
	constsF map[uint64]ir.ValueID

	// eager disables lazy flag materialization (ablation).
	eager bool

	// Retirement accounting along the translated path.
	guestInsns int
	guestBBs   int

	gpc uint32 // guest PC of the instruction being translated
}

func newXlate(entry uint32, useAsserts bool) *xlate {
	x := &xlate{
		r:       &ir.Region{Entry: entry, UseAsserts: useAsserts},
		env:     make(map[ir.ArchReg]ir.ValueID),
		livein:  make(map[ir.ArchReg]ir.ValueID),
		consts:  make(map[uint32]ir.ValueID),
		constsF: make(map[uint64]ir.ValueID),
	}
	return x
}

// emit appends an instruction, allocating its destination value.
func (x *xlate) emit(in ir.Inst) ir.ValueID {
	if in.Dst == -1 {
		in.Dst = x.r.NewValue()
	}
	in.GPC = x.gpc
	x.r.Emit(in)
	return in.Dst
}

func (x *xlate) constI(v uint32) ir.ValueID {
	if id, ok := x.consts[v]; ok {
		return id
	}
	id := x.emit(ir.Inst{Op: ir.ConstI, Dst: -1, ImmU: v})
	x.consts[v] = id
	return id
}

func (x *xlate) constF(v float64) ir.ValueID {
	bits := f64bits(v)
	if id, ok := x.constsF[bits]; ok {
		return id
	}
	id := x.emit(ir.Inst{Op: ir.ConstF, Dst: -1, ImmF: v})
	x.constsF[bits] = id
	return id
}

func (x *xlate) op2(op ir.Op, a, b ir.ValueID) ir.ValueID {
	return x.emit(ir.Inst{Op: op, Dst: -1, A: a, B: b})
}

func (x *xlate) op1(op ir.Op, a ir.ValueID) ir.ValueID {
	return x.emit(ir.Inst{Op: op, Dst: -1, A: a})
}

// get reads the current value of an architectural register, creating its
// LiveIn on first touch.
func (x *xlate) get(a ir.ArchReg) ir.ValueID {
	if v, ok := x.env[a]; ok {
		return v
	}
	v := x.emit(ir.Inst{Op: ir.LiveIn, Dst: -1, Arch: a})
	x.livein[a] = v
	x.env[a] = v
	return v
}

// set records a new value for an architectural register.
func (x *xlate) set(a ir.ArchReg, v ir.ValueID) { x.env[a] = v }

func (x *xlate) getGPR(r uint8) ir.ValueID    { return x.get(ir.ArchReg(r)) }
func (x *xlate) setGPR(r uint8, v ir.ValueID) { x.set(ir.ArchReg(r), v) }
func (x *xlate) getFPR(r uint8) ir.ValueID    { return x.get(ir.ArchF0 + ir.ArchReg(r)) }
func (x *xlate) setFPR(r uint8, v ir.ValueID) { x.set(ir.ArchF0+ir.ArchReg(r), v) }

// getFlagLive reads a flag's entry value.
func (x *xlate) getFlagLive(f flagIdx) ir.ValueID {
	a := f.arch()
	if v, ok := x.livein[a]; ok {
		return v
	}
	v := x.emit(ir.Inst{Op: ir.LiveIn, Dst: -1, Arch: a})
	x.livein[a] = v
	if x.flags[f].val == 0 && x.flags[f].set == nil {
		x.flags[f].val = v
	}
	return v
}

// setAllFlags points every flag at one lazy setter (or, in the eager
// ablation, materializes all five immediately).
func (x *xlate) setAllFlags(s *setter) {
	for f := fCF; f < numFlags; f++ {
		x.flags[f] = flagSrc{set: s}
	}
	if x.eager {
		for f := fCF; f < numFlags; f++ {
			v := x.flag(f)
			x.emit(ir.Inst{Op: ir.SetArch, Arch: f.arch(), A: v})
		}
	}
}

// flag returns the materialized 0/1 value of a flag, computing and
// caching it if the source is lazy.
func (x *xlate) flag(f flagIdx) ir.ValueID {
	src := &x.flags[f]
	if src.val != 0 {
		return src.val
	}
	if src.set == nil {
		// Untouched: the entry value.
		v := x.getFlagLive(f)
		src.val = v
		return v
	}
	v := x.materialize(f, src.set)
	src.val = v
	return v
}

// materialize computes one flag from its lazy setter.
func (x *xlate) materialize(f flagIdx, s *setter) ir.ValueID {
	zero := func() ir.ValueID { return x.constI(0) }
	switch f {
	case fZF:
		return x.op2(ir.Seq, s.res, zero())
	case fSF:
		return x.op2(ir.Shr, s.res, x.constI(31))
	case fPF:
		// Even parity of the low result byte: the classic xor-fold.
		t := x.op2(ir.And, s.res, x.constI(0xFF))
		t4 := x.op2(ir.Shr, t, x.constI(4))
		t = x.op2(ir.Xor, t, t4)
		t2 := x.op2(ir.Shr, t, x.constI(2))
		t = x.op2(ir.Xor, t, t2)
		t1 := x.op2(ir.Shr, t, x.constI(1))
		t = x.op2(ir.Xor, t, t1)
		t = x.op2(ir.And, t, x.constI(1))
		return x.op2(ir.Xor, t, x.constI(1))
	case fCF:
		switch s.kind {
		case setAdd:
			return x.op2(ir.Sltu, s.res, s.a)
		case setSub:
			return x.op2(ir.Sltu, s.a, s.b)
		case setLogic, setSZP:
			return zero()
		case setShl:
			// CF = bit shifted out = (a >> ((32-n)&31)) & 1, for n>0.
			t := x.op2(ir.Sub, x.constI(32), s.n)
			t = x.op2(ir.And, t, x.constI(31))
			t = x.op2(ir.Shr, s.a, t)
			t = x.op2(ir.And, t, x.constI(1))
			nz := x.op2(ir.Sne, s.n, zero())
			return x.op2(ir.And, t, nz)
		case setShr, setSar:
			// CF = (a >> ((n-1)&31)) & 1, for n>0.
			t := x.op2(ir.Sub, s.n, x.constI(1))
			t = x.op2(ir.And, t, x.constI(31))
			t = x.op2(ir.Shr, s.a, t)
			t = x.op2(ir.And, t, x.constI(1))
			nz := x.op2(ir.Sne, s.n, zero())
			return x.op2(ir.And, t, nz)
		case setMul:
			return x.mulOverflow(s)
		case setIncOF:
			// INC/DEC never reach here: their CF source is inherited.
			return zero()
		}
	case fOF:
		switch s.kind {
		case setAdd:
			t1 := x.op2(ir.Xor, s.a, s.res)
			t2 := x.op2(ir.Xor, s.b, s.res)
			t := x.op2(ir.And, t1, t2)
			return x.op2(ir.Shr, t, x.constI(31))
		case setSub:
			t1 := x.op2(ir.Xor, s.a, s.b)
			t2 := x.op2(ir.Xor, s.a, s.res)
			t := x.op2(ir.And, t1, t2)
			return x.op2(ir.Shr, t, x.constI(31))
		case setLogic, setSZP, setSar:
			return zero()
		case setShl:
			// OF = top bit changed, for n>0.
			t1 := x.op2(ir.Shr, s.a, x.constI(31))
			t2 := x.op2(ir.Shr, s.res, x.constI(31))
			t := x.op2(ir.Xor, t1, t2)
			nz := x.op2(ir.Sne, s.n, x.constI(0))
			return x.op2(ir.And, t, nz)
		case setShr:
			// OF = sign bit of the source, for n>0.
			t := x.op2(ir.Shr, s.a, x.constI(31))
			nz := x.op2(ir.Sne, s.n, x.constI(0))
			return x.op2(ir.And, t, nz)
		case setMul:
			return x.mulOverflow(s)
		case setIncOF:
			return x.op2(ir.Seq, s.a, x.constI(s.cmp))
		}
	}
	return x.constI(0)
}

// mulOverflow synthesizes the IMUL CF/OF: set when the full 64-bit
// product does not fit in the 32-bit result.
func (x *xlate) mulOverflow(s *setter) ir.ValueID {
	hi := x.op2(ir.Mulh, s.a, s.b)
	sext := x.op2(ir.Sar, s.res, x.constI(31))
	return x.op2(ir.Sne, hi, sext)
}

// sharedSubSetter reports the common sub-kind setter of the flags a
// condition consults, enabling direct condition synthesis.
func (x *xlate) sharedSubSetter(fs ...flagIdx) *setter {
	var s *setter
	for _, f := range fs {
		src := x.flags[f]
		if src.set == nil || src.set.kind != setSub {
			return nil
		}
		if s == nil {
			s = src.set
		} else if s != src.set {
			return nil
		}
	}
	return s
}

// cond synthesizes the 0/1 taken condition of a guest conditional branch.
func (x *xlate) cond(op guest.Op) ir.ValueID {
	not := func(v ir.ValueID) ir.ValueID { return x.op2(ir.Xor, v, x.constI(1)) }
	switch op {
	case guest.JE, guest.JNE:
		// ZF is res==0 for every lazy setter kind.
		if s := x.flags[fZF].set; s != nil {
			v := x.op2(ir.Seq, s.res, x.constI(0))
			if op == guest.JNE {
				return not(v)
			}
			return v
		}
		v := x.flag(fZF)
		if op == guest.JNE {
			return not(v)
		}
		return v
	case guest.JL:
		if s := x.sharedSubSetter(fSF, fOF); s != nil {
			return x.op2(ir.Slt, s.a, s.b)
		}
		return x.op2(ir.Xor, x.flag(fSF), x.flag(fOF))
	case guest.JGE:
		if s := x.sharedSubSetter(fSF, fOF); s != nil {
			return not(x.op2(ir.Slt, s.a, s.b))
		}
		return not(x.op2(ir.Xor, x.flag(fSF), x.flag(fOF)))
	case guest.JG:
		if s := x.sharedSubSetter(fZF, fSF, fOF); s != nil {
			return x.op2(ir.Slt, s.b, s.a)
		}
		lt := x.op2(ir.Xor, x.flag(fSF), x.flag(fOF))
		le := x.op2(ir.Or, x.flag(fZF), lt)
		return not(le)
	case guest.JLE:
		if s := x.sharedSubSetter(fZF, fSF, fOF); s != nil {
			return not(x.op2(ir.Slt, s.b, s.a))
		}
		lt := x.op2(ir.Xor, x.flag(fSF), x.flag(fOF))
		return x.op2(ir.Or, x.flag(fZF), lt)
	case guest.JB:
		if s := x.sharedSubSetter(fCF); s != nil {
			return x.op2(ir.Sltu, s.a, s.b)
		}
		return x.flag(fCF)
	case guest.JAE:
		if s := x.sharedSubSetter(fCF); s != nil {
			return not(x.op2(ir.Sltu, s.a, s.b))
		}
		return not(x.flag(fCF))
	}
	panic(fmt.Sprintf("tol: cond on non-conditional op %v", op))
}

// exitState materializes the architectural writeback set: every register
// and flag whose current value differs from its entry value.
func (x *xlate) exitState() []ir.ArchVal {
	var st []ir.ArchVal
	for a := ir.ArchReg(0); a < ir.NumArchRegs; a++ {
		if a >= ir.ArchCF && a <= ir.ArchPF {
			continue // flags handled below
		}
		v, ok := x.env[a]
		if !ok {
			continue
		}
		if lv, isLive := x.livein[a]; isLive && lv == v {
			continue
		}
		st = append(st, ir.ArchVal{Arch: a, Val: v})
	}
	for f := fCF; f < numFlags; f++ {
		src := x.flags[f]
		if src.set == nil && src.val == 0 {
			continue // untouched
		}
		if src.set == nil && src.val == x.livein[f.arch()] {
			continue // read but unchanged
		}
		st = append(st, ir.ArchVal{Arch: f.arch(), Val: x.flag(f)})
	}
	return st
}

func (x *xlate) meta(taken bool) ir.ExitInfo {
	return ir.ExitInfo{GuestInsns: x.guestInsns, GuestBBs: x.guestBBs, Taken: taken}
}

func (x *xlate) emitExit(target uint32, taken bool) {
	x.emit(ir.Inst{Op: ir.Exit, ImmU: target, State: x.exitState(), Meta: x.meta(taken)})
}

func (x *xlate) emitExitIf(cond ir.ValueID, target uint32, taken bool) {
	x.emit(ir.Inst{Op: ir.ExitIf, A: cond, ImmU: target, State: x.exitState(), Meta: x.meta(taken)})
}

func (x *xlate) emitExitInd(addr ir.ValueID) {
	x.emit(ir.Inst{Op: ir.ExitInd, A: addr, State: x.exitState(), Meta: x.meta(false)})
}

func (x *xlate) emitAssert(cond ir.ValueID) {
	x.emit(ir.Inst{Op: ir.Assert, A: cond})
}

func f64bits(f float64) uint64 { return math.Float64bits(f) }
