package tol

import (
	"darco/internal/codecache"
	"darco/internal/guest"
	"darco/internal/ir"
)

// Superblock formation (§V-B3): starting from a hot basic block, follow
// the biased direction of branches recorded by the BBM software edge
// counters, forming a single-entry region. With control speculation
// enabled the inter-block branches become asserts (single-exit); after
// excessive assert failures the region is recreated multi-exit. Single-
// basic-block loops are unrolled.

// SBConfig parameterises superblock formation.
type SBConfig struct {
	MaxInsns     int     // superblock instruction budget
	MaxBBs       int     // superblock basic-block budget
	BiasThresh   float64 // minimum branch bias to speculate a direction
	MinReach     float64 // minimum cumulative probability to extend
	UnrollFactor int     // single-BB loop unroll factor
	MaxSpecLoads int     // speculative load budget per region
	NoAsserts    bool    // ablation: always build multi-exit superblocks
	AssertLimit  uint64  // assert failures before rebuilding multi-exit
	SpecLimit    uint64  // memory speculation failures before rebuilding
}

// DefaultSBConfig mirrors the paper's description.
func DefaultSBConfig() SBConfig {
	return SBConfig{
		MaxInsns:     200,
		MaxBBs:       16,
		BiasThresh:   0.9,
		MinReach:     0.35,
		UnrollFactor: 4,
		MaxSpecLoads: 12,
		AssertLimit:  16,
		SpecLimit:    8,
	}
}

// branchProfile is the edge profile of one translated basic block.
type branchProfile struct {
	taken, notTaken uint64
}

// profileOf extracts the edge counters from a BBM block ending in a
// conditional branch.
func (t *TOL) profileOf(entry uint32) (branchProfile, bool) {
	blk, ok := t.Cache.Lookup(entry)
	if !ok || blk.Kind != codecache.KindBB {
		return branchProfile{}, false
	}
	var p branchProfile
	found := false
	for idx, meta := range blk.ExitMeta {
		c := blk.ExitCounts[idx]
		if meta.Taken {
			p.taken += c
			found = true
		} else {
			p.notTaken += c
		}
	}
	return p, found
}

// sbStep is one basic block of a forming superblock plus the speculated
// direction of its terminator.
type sbStep struct {
	bb       *bbInfo
	dirTaken bool // speculated direction (valid for conditional terminators)
	isLast   bool
}

// sbPlan is a formed superblock prior to translation.
type sbPlan struct {
	entry    uint32
	steps    []sbStep
	unrolled int // >1 when the region is an unrolled single-BB loop
}

// formSuperblock walks the biased path from start.
func (t *TOL) formSuperblock(start uint32) (*sbPlan, error) {
	cfg := t.SBCfg
	plan := &sbPlan{entry: start}
	visited := map[uint32]bool{start: true}
	pc := start
	prob := 1.0
	insns := 0
	for {
		bb, err := decodeBB(t.Fetch, pc)
		if err != nil {
			return nil, err
		}
		step := sbStep{bb: bb}
		insns += bb.staticLen()
		d := bb.term.Op.Desc()
		stop := func() *sbPlan {
			step.isLast = true
			plan.steps = append(plan.steps, step)
			return plan
		}
		if len(plan.steps)+1 >= cfg.MaxBBs || insns >= cfg.MaxInsns {
			return stop(), nil
		}
		switch {
		case d.IsCond:
			prof, ok := t.profileOf(bb.entry)
			if !ok || prof.taken+prof.notTaken == 0 {
				return stop(), nil
			}
			pT := float64(prof.taken) / float64(prof.taken+prof.notTaken)
			var next uint32
			switch {
			case pT >= cfg.BiasThresh:
				step.dirTaken = true
				next = bb.term.Target(bb.termPC)
				prob *= pT
			case pT <= 1-cfg.BiasThresh:
				step.dirTaken = false
				next = bb.nextPC
				prob *= 1 - pT
			default:
				return stop(), nil // unbiased branch ends the superblock
			}
			if prob < cfg.MinReach {
				return stop(), nil
			}
			if next == start && len(plan.steps) == 0 && step.dirTaken && cfg.UnrollFactor > 1 {
				// Single-basic-block loop: unroll.
				step.isLast = true
				plan.steps = append(plan.steps, step)
				plan.unrolled = cfg.UnrollFactor
				return plan, nil
			}
			if visited[next] {
				return stop(), nil // larger loop: end the region
			}
			visited[next] = true
			plan.steps = append(plan.steps, step)
			pc = next
		case bb.term.Op == guest.JMP:
			next := bb.term.Target(bb.termPC)
			if visited[next] {
				return stop(), nil
			}
			visited[next] = true
			plan.steps = append(plan.steps, step)
			pc = next
		default:
			// Indirect branch, call, return, or untranslatable
			// terminator ends the superblock.
			return stop(), nil
		}
	}
}

// sbOptions records per-entry rebuild decisions after speculation
// failures.
type sbOptions struct {
	noAsserts bool // recreate without converting branches to asserts
	noMemSpec bool // recreate without speculative memory reordering
	level     OptLevel
}

// translateSuperblock lowers a plan to a code cache block.
func (t *TOL) translateSuperblock(plan *sbPlan, opts sbOptions) (*codecache.Block, regionStats, error) {
	useAsserts := !opts.noAsserts
	x, bbs, staticInsns, err := buildSuperblockIR(plan, useAsserts, t.Cfg.EagerFlags)
	if err != nil {
		return nil, regionStats{}, err
	}

	maxSpec := t.SBCfg.MaxSpecLoads
	if opts.noMemSpec {
		maxSpec = 0
	}
	level := opts.level
	if level == LevelDefault {
		level = LevelFull
	}
	gen, st, err := lowerRegion(x.r, true, maxSpec, level, t.Cfg.MutateRegion)
	if err != nil {
		return nil, st, err
	}
	lo, hi := plan.entry, plan.entry
	for _, step := range plan.steps {
		if step.bb.entry < lo {
			lo = step.bb.entry
		}
		if step.bb.nextPC > hi {
			hi = step.bb.nextPC
		}
	}
	blk := &codecache.Block{
		Entry:      plan.entry,
		Kind:       codecache.KindSuperblock,
		Code:       gen.Code,
		UseAsserts: useAsserts,
		Unrolled:   plan.unrolled,
		GuestInsns: staticInsns,
		BBs:        bbs,
		GuestLo:    lo,
		GuestHi:    hi,
		ExitMeta:   convertMeta(gen.ExitMeta),
	}
	return blk, st, nil
}

// buildSuperblockIR translates a superblock plan into an IR region.
func buildSuperblockIR(plan *sbPlan, useAsserts, eagerFlags bool) (*xlate, []uint32, int, error) {
	x := newXlate(plan.entry, useAsserts)
	x.eager = eagerFlags
	var bbs []uint32
	staticInsns := 0

	emitStep := func(step sbStep, forceAssertTerm bool) error {
		bb := step.bb
		bbs = append(bbs, bb.entry)
		staticInsns += bb.staticLen()
		if err := x.translateBody(bb); err != nil {
			return err
		}
		if step.isLast && !forceAssertTerm {
			return x.translateTerminator(bb)
		}
		// Interior conditional branch (or unrolled iteration): follow
		// the speculated direction.
		x.gpc = bb.termPC
		d := bb.term.Op.Desc()
		switch {
		case d.IsCond:
			cond := x.cond(bb.term.Op)
			if !step.dirTaken {
				cond = x.op2(ir.Xor, cond, x.constI(1))
			}
			x.guestInsns++
			x.guestBBs++
			if useAsserts {
				x.emitAssert(cond)
			} else {
				// Multi-exit superblock: off-path side exit.
				off := bb.nextPC
				if !step.dirTaken {
					off = bb.term.Target(bb.termPC)
				}
				notCond := x.op2(ir.Xor, cond, x.constI(1))
				x.emitExitIf(notCond, off, !step.dirTaken)
			}
		case bb.term.Op == guest.JMP:
			x.guestInsns++
			x.guestBBs++
		}
		return nil
	}

	if plan.unrolled > 1 {
		step := plan.steps[0]
		loopTarget := step.bb.term.Target(step.bb.termPC)
		for it := 0; it < plan.unrolled; it++ {
			last := it == plan.unrolled-1
			if !last {
				if err := emitStep(sbStep{bb: step.bb, dirTaken: true}, true); err != nil {
					return nil, nil, 0, err
				}
			} else {
				// Final unrolled iteration keeps the real branch.
				bbs = append(bbs, step.bb.entry)
				staticInsns += step.bb.staticLen()
				if err := x.translateBody(step.bb); err != nil {
					return nil, nil, 0, err
				}
				x.gpc = step.bb.termPC
				cond := x.cond(step.bb.term.Op)
				x.guestInsns++
				x.guestBBs++
				x.emitExitIf(cond, loopTarget, true)
				x.emitExit(step.bb.nextPC, false)
			}
		}
	} else {
		for _, step := range plan.steps {
			if err := emitStep(step, false); err != nil {
				return nil, nil, 0, err
			}
		}
	}
	return x, bbs, staticInsns, nil
}
