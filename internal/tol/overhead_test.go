package tol

import "testing"

func TestOverheadAccounting(t *testing.T) {
	var ov Overhead
	ov.Charge(OvInterp, 10)
	ov.Charge(OvInterp, 5)
	ov.Charge(OvChaining, 3)
	if ov.Cat[OvInterp] != 15 || ov.Cat[OvChaining] != 3 {
		t.Errorf("charges: %+v", ov.Cat)
	}
	if ov.Total() != 18 {
		t.Errorf("total %d", ov.Total())
	}
}

func TestOverheadCategoryNames(t *testing.T) {
	want := map[OverheadCat]string{
		OvInterp:   "Interpreter",
		OvBBTrans:  "BB Translator",
		OvSBTrans:  "SB Translator",
		OvPrologue: "Prologue",
		OvChaining: "Chaining",
		OvLookup:   "Code $ lookup",
		OvOther:    "Others",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d -> %q want %q", c, c.String(), name)
		}
	}
}

func TestDefaultCostsSane(t *testing.T) {
	c := DefaultCosts()
	// The paper's ordering: superblock optimization is far more
	// expensive per instruction than BB translation, which in turn is
	// far more expensive than interpretation.
	if !(c.SBTransPerInsn > c.BBTransPerInsn && c.BBTransPerInsn > c.InterpPerInsn) {
		t.Errorf("cost ordering violated: %d %d %d",
			c.InterpPerInsn, c.BBTransPerInsn, c.SBTransPerInsn)
	}
	if c.Lookup == 0 || c.Prologue == 0 || c.ChainAttempt == 0 || c.Init == 0 {
		t.Errorf("zero-cost activities: %+v", c)
	}
}
