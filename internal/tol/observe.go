package tol

// TranslationKind classifies the translations the TOL performs.
type TranslationKind uint8

// Translation event kinds.
const (
	TransBB            TranslationKind = iota // basic block translated (IM -> BBM)
	TransSB                                   // superblock created (BBM -> SBM)
	TransAssertRebuild                        // superblock rebuilt without asserts
	TransSpecRebuild                          // superblock rebuilt without memory speculation
)

func (k TranslationKind) String() string {
	switch k {
	case TransBB:
		return "bb"
	case TransSB:
		return "superblock"
	case TransAssertRebuild:
		return "assert-rebuild"
	case TransSpecRebuild:
		return "spec-rebuild"
	}
	return "?"
}

// TranslationEvent describes one translation the TOL performed. The
// rebuild kinds carry no size information: the follow-up TransSB event
// for the re-created region does.
type TranslationEvent struct {
	Kind       TranslationKind
	Entry      uint32 // guest PC of the region's single entry
	GuestInsns int    // static guest instructions covered
	HostInsns  int    // emitted host instructions
	Unrolled   int    // loop unroll factor applied (0 or 1 = none)
}

// observe reports a translation event to the configured observer.
func (t *TOL) observe(ev TranslationEvent) {
	if t.Cfg.OnTranslation != nil {
		t.Cfg.OnTranslation(ev)
	}
}
