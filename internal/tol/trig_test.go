package tol

import (
	"math"
	"testing"

	"darco/internal/codecache"
	"darco/internal/guest"
	"darco/internal/hostvm"
	"darco/internal/ir"
)

func TestTrigBitIdentical(t *testing.T) {
	inputs := []float64{0, 0.5, 1, -1, 3.9, -3.9, 6.28, 100.7, -256.1, 1e6, 1e12, -0.25, 2.25, 3.75, -3.75}
	for _, v := range inputs {
		for _, sin := range []bool{true, false} {
			x := newXlate(0x1000, false)
			arg := x.constF(v)
			coef := guest.SinCoef[:]
			if !sin {
				coef = guest.CosCoef[:]
			}
			res := x.trig(arg, coef, sin)
			x.set(ir.ArchF0, res)
			x.emitExit(0x2000, false)
			gen, _, err := lowerRegion(x.r, false, 0, LevelNone, nil)
			if err != nil {
				t.Fatal(err)
			}
			blk := &codecache.Block{Entry: 0x1000, Code: gen.Code, ExitMeta: convertMeta(gen.ExitMeta)}
			vm := hostvm.New(nil, hostvm.DefaultConfig())
			vm.Resolve = func(int) (*codecache.Block, bool) { return nil, false }
			r, _, err := vm.Run(blk, 0)
			if err != nil {
				t.Fatal(err)
			}
			_ = r
			var cpu guest.CPU
			vm.Regs.StoreGuest(&cpu)
			want := guest.SoftSin(v)
			if !sin {
				want = guest.SoftCos(v)
			}
			if math.Float64bits(cpu.F[0]) != math.Float64bits(want) {
				t.Errorf("sin=%v x=%g: translated %g (%x) vs reference %g (%x)", sin, v, cpu.F[0], math.Float64bits(cpu.F[0]), want, math.Float64bits(want))
			}
		}
	}
}
