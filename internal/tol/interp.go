package tol

import (
	"darco/internal/guest"
	"darco/internal/guestvm"
)

// The interpreter fetches whole basic blocks at once: the first
// interpretation of a block decodes it instruction by instruction (and
// records it), every later interpretation replays the cached decode with
// zero fetch work. Replay is sound because every non-terminating guest
// instruction advances EIP linearly (control transfers all end basic
// blocks) and because InstallPage drops cached blocks whose code page
// changed.

// maxInterpCacheInsns bounds a cached interpreter block; longer blocks
// execute fine but are not cached.
const maxInterpCacheInsns = 4096

// interpBlock is one cached decoded basic block: the executable body
// including the terminator, except for blocks ending at a SYSCALL,
// which stop before it (the controller synchronizes there).
type interpBlock struct {
	insts       []guest.Inst
	endsSyscall bool
	firstPN     uint32 // first guest page the block's bytes touch
	lastPN      uint32 // last guest page the block's bytes touch
}

// interpretBB interprets one basic block starting at pc (IM).
func (t *TOL) interpretBB(pc uint32) (RunResult, bool, error) {
	return t.interpretBBWith(pc, t.prof1(pc))
}

// interpretBBWith is interpretBB with the profile entry already looked
// up (the dispatch loop shares its single per-dispatch lookup).
func (t *TOL) interpretBBWith(pc uint32, p *profEntry) (RunResult, bool, error) {
	t.Stats.InterpBBs++
	p.bbFreq++
	t.LastDispatch = DispatchRecord{PC: pc, Mode: "im", BlockID: -1}
	if ib := t.iblocks[pc]; ib != nil {
		return t.runInterpBlock(ib)
	}
	return t.interpretBBRecord(pc)
}

// runInterpBlock replays a cached decoded basic block.
func (t *TOL) runInterpBlock(ib *interpBlock) (RunResult, bool, error) {
	interp := uint64(0)
	last := len(ib.insts) - 1
	for i := range ib.insts {
		in := &ib.insts[i]
		snapshot := t.CPU
		ev, err := guest.Step(&t.CPU, t.Mem, in)
		if err != nil {
			t.CPU = snapshot
			t.ov[OvInterp] += interp * t.Cfg.Costs.InterpPerInsn
			return t.pageFaultResult(err)
		}
		interp++
		t.Stats.GuestInsnsIM++
		t.midBB = true
		if i == last && !ib.endsSyscall {
			t.Stats.GuestBBs++
			t.midBB = false
			t.ov[OvInterp] += interp * t.Cfg.Costs.InterpPerInsn
			if ev == guest.EvHalt {
				t.halted = true
				return RunResult{Event: EvHalt}, true, nil
			}
			return RunResult{}, false, nil
		}
	}
	// The block ends at a system call: stop before executing it.
	t.ov[OvInterp] += interp * t.Cfg.Costs.InterpPerInsn
	t.Stats.Syscalls++
	return RunResult{Event: EvSyscall}, true, nil
}

// interpretBBRecord decodes and executes a block not yet cached,
// recording the decode for replay. A block whose decode or execution
// faults mid-way is not cached; re-interpretation after the page
// transfer records it then.
func (t *TOL) interpretBBRecord(pc uint32) (RunResult, bool, error) {
	interp := uint64(0)
	var rec []guest.Inst
	cacheable := true
	for {
		fetchPC := t.CPU.EIP
		in, err := t.Fetch(fetchPC)
		if err != nil {
			t.ov[OvInterp] += interp * t.Cfg.Costs.InterpPerInsn
			return t.pageFaultResult(err)
		}
		if in.Op == guest.SYSCALL {
			if cacheable {
				t.cacheInterpBlock(pc, fetchPC+uint32(in.Len()), rec, true)
			}
			t.ov[OvInterp] += interp * t.Cfg.Costs.InterpPerInsn
			t.Stats.Syscalls++
			return RunResult{Event: EvSyscall}, true, nil
		}
		if cacheable {
			if len(rec) < maxInterpCacheInsns {
				rec = append(rec, in)
			} else {
				cacheable = false
			}
		}
		snapshot := t.CPU
		ev, err := guest.Step(&t.CPU, t.Mem, &in)
		if err != nil {
			t.CPU = snapshot
			t.ov[OvInterp] += interp * t.Cfg.Costs.InterpPerInsn
			return t.pageFaultResult(err)
		}
		interp++
		t.Stats.GuestInsnsIM++
		t.midBB = true
		if in.Op.EndsBasicBlock() {
			t.Stats.GuestBBs++
			t.midBB = false
			if cacheable {
				t.cacheInterpBlock(pc, fetchPC+uint32(in.Len()), rec, false)
			}
			t.ov[OvInterp] += interp * t.Cfg.Costs.InterpPerInsn
			if ev == guest.EvHalt {
				t.halted = true
				return RunResult{Event: EvHalt}, true, nil
			}
			return RunResult{}, false, nil
		}
	}
}

// cacheInterpBlock installs a fully decoded block and indexes it under
// every guest page its bytes touch, so InstallPage can drop it.
func (t *TOL) cacheInterpBlock(entry, endPC uint32, insts []guest.Inst, endsSyscall bool) {
	ib := &interpBlock{
		insts:       insts,
		endsSyscall: endsSyscall,
		firstPN:     entry >> guestvm.PageShift,
		lastPN:      (endPC - 1) >> guestvm.PageShift,
	}
	t.iblocks[entry] = ib
	for pn := ib.firstPN; pn <= ib.lastPN; pn++ {
		t.iblocksByPage[pn] = append(t.iblocksByPage[pn], entry)
	}
}

// dropInterpBlocks invalidates every cached interpreter block whose
// bytes touch page pn.
func (t *TOL) dropInterpBlocks(pn uint32) {
	entries := t.iblocksByPage[pn]
	if entries == nil {
		return
	}
	delete(t.iblocksByPage, pn)
	for _, entry := range entries {
		ib := t.iblocks[entry]
		if ib == nil || pn < ib.firstPN || pn > ib.lastPN {
			continue
		}
		delete(t.iblocks, entry)
	}
}
