package tol

import (
	"darco/internal/codecache"
	"darco/internal/ir"
)

// Exported translation entry points for the debug toolchain: they
// rebuild the region for a cached block at a chosen optimization level
// without touching the live code cache, so the debugger can replay each
// pipeline stage in isolation.

// RetranslateAtLevel rebuilds the translation for a cached block with
// only the first `level` optimization stages enabled. The result is not
// inserted into the code cache.
func (t *TOL) RetranslateAtLevel(blk *codecache.Block, level OptLevel) (*codecache.Block, error) {
	if blk.Kind == codecache.KindBB {
		// BBM blocks run a fixed basic pipeline; level still applies.
		bb, err := decodeBB(t.Fetch, blk.Entry)
		if err != nil {
			return nil, err
		}
		x := newXlate(blk.Entry, false)
		if err := x.translateBody(bb); err != nil {
			return nil, err
		}
		if err := x.translateTerminator(bb); err != nil {
			return nil, err
		}
		gen, _, err := lowerRegion(x.r, false, 0, level, t.Cfg.MutateRegion)
		if err != nil {
			return nil, err
		}
		return &codecache.Block{
			Entry: blk.Entry, Kind: codecache.KindBB, Code: gen.Code,
			GuestInsns: bb.staticLen(), BBs: []uint32{blk.Entry},
			ExitMeta: convertMeta(gen.ExitMeta),
		}, nil
	}
	plan, err := t.formSuperblock(blk.Entry)
	if err != nil {
		return nil, err
	}
	opts := t.profOpts(blk.Entry)
	opts.level = level
	nb, _, err := t.translateSuperblock(plan, opts)
	return nb, err
}

// BuildRegionIR reconstructs the (unoptimized) IR region for a cached
// block, for debug listings.
func (t *TOL) BuildRegionIR(blk *codecache.Block) (*ir.Region, error) {
	if blk.Kind == codecache.KindBB {
		bb, err := decodeBB(t.Fetch, blk.Entry)
		if err != nil {
			return nil, err
		}
		x := newXlate(blk.Entry, false)
		if err := x.translateBody(bb); err != nil {
			return nil, err
		}
		if err := x.translateTerminator(bb); err != nil {
			return nil, err
		}
		return x.r, nil
	}
	plan, err := t.formSuperblock(blk.Entry)
	if err != nil {
		return nil, err
	}
	x, _, _, err := buildSuperblockIR(plan, !t.profOpts(blk.Entry).noAsserts, t.Cfg.EagerFlags)
	if err != nil {
		return nil, err
	}
	return x.r, nil
}
