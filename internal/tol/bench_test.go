package tol

import (
	"testing"

	"darco/internal/guest"
)

// BenchmarkTranslateBB measures BBM translation throughput (decode →
// IR → basic optimizations → regalloc → codegen).
func BenchmarkTranslateBB(b *testing.B) {
	tl := setupTOLB(b, loopProgram)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk, err := tl.translateBB(0x100c) // the loop body
		if err != nil || blk == nil {
			b.Fatalf("translate: %v %v", blk, err)
		}
	}
}

// BenchmarkTranslateSuperblock measures the full SBM pipeline including
// superblock formation, SSA optimization, DDG, scheduling and regalloc.
func BenchmarkTranslateSuperblock(b *testing.B) {
	tl := setupTOLB(b, loopProgram)
	// Warm the profiles so superblock formation has edge counts.
	if _, err := tl.Run(0); err != nil {
		b.Fatal(err)
	}
	plan, err := tl.formSuperblock(0x100c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tl.translateSuperblock(plan, sbOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchLoop measures end-to-end co-designed execution speed
// (guest instructions per benchmark second are the §VI-A metric).
func BenchmarkDispatchLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tl := setupTOLB(b, loopProgram)
		b.StartTimer()
		if _, err := tl.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

func setupTOLB(b *testing.B, src string) *TOL {
	b.Helper()
	cfg := DefaultConfig()
	cfg.BBThreshold = 4
	cfg.SBThreshold = 20
	im, err := guest.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	tl := New(cfg)
	tl.Mem.Strict = false
	if err := tl.Mem.LoadImage(im); err != nil {
		b.Fatal(err)
	}
	tl.CPU.EIP = im.Entry
	tl.CPU.R[4] = 0x7FF00000 // ESP
	return tl
}
