package tol

import (
	"testing"

	"darco/internal/guest"
	"darco/internal/guestvm"
)

// assemblePage renders src into the 4 KiB page containing org.
func assemblePage(t *testing.T, src string) *[guestvm.PageSize]byte {
	t.Helper()
	im, err := guest.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var page [guestvm.PageSize]byte
	for _, s := range im.Segments {
		copy(page[s.Addr&(guestvm.PageSize-1):], s.Data)
	}
	return &page
}

// TestInstallPageInvalidatesDecode pins the fix for the seed's latent
// stale-decode bug: the TOL decode cache was append-only, so when the
// controller re-installed (or a store rewrote) a code page, fetches
// kept returning instructions decoded from the page's previous content.
func TestInstallPageInvalidatesDecode(t *testing.T) {
	tl := New(DefaultConfig())

	tl.InstallPage(0x1000, assemblePage(t, `
.org 0x1000
    movri eax, 111
    halt
`))
	in, err := tl.Fetch(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != guest.MOVri || in.Imm != 111 {
		t.Fatalf("first decode: %v imm=%d", in.Op, in.Imm)
	}

	// Re-install the page with different code at the same PC.
	tl.InstallPage(0x1000, assemblePage(t, `
.org 0x1000
    movri eax, 222
    halt
`))
	in, err = tl.Fetch(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if in.Imm != 222 {
		t.Fatalf("stale decode after re-install: %v imm=%d", in.Op, in.Imm)
	}
}

// TestInstallPageInvalidatesInterpBlocks drives the interpreter over a
// block (so it is decoded and cached whole), re-installs its code page,
// and checks the re-run executes the new code — fresh decodes, fresh
// results.
func TestInstallPageInvalidatesInterpBlocks(t *testing.T) {
	run := func(tl *TOL) uint32 {
		tl.CPU = guest.CPU{EIP: 0x1000}
		tl.CPU.R[guest.ESP] = guestvm.StackTop
		if _, err := tl.Run(0); err != nil {
			t.Fatal(err)
		}
		return tl.CPU.R[guest.EAX]
	}

	cfg := DefaultConfig()
	cfg.BBThreshold = 1 << 30 // stay in the interpreter
	tl := New(cfg)
	tl.InstallPage(0x1000, assemblePage(t, `
.org 0x1000
    movri eax, 5
    addri eax, 2
    halt
`))
	if got := run(tl); got != 7 {
		t.Fatalf("first run: eax=%d", got)
	}
	// Same entry PC, different body. Without invalidation the cached
	// interpreter block replays the old instructions.
	tl.halted = false
	tl.InstallPage(0x1000, assemblePage(t, `
.org 0x1000
    movri eax, 40
    addri eax, 2
    halt
`))
	if got := run(tl); got != 42 {
		t.Fatalf("stale interp block after re-install: eax=%d", got)
	}
}

// TestInstallPageInvalidatesTranslations covers the translated path:
// a block hot enough to be translated (and promoted) must not keep
// executing host code generated from a page's previous content after
// that page is re-installed.
func TestInstallPageInvalidatesTranslations(t *testing.T) {
	program := func(addend int) string {
		return `
.org 0x1000
.entry start
start:
    movri eax, 0
    movri ecx, 0
loop:
    addri eax, ` + map[int]string{3: "3", 7: "7"}[addend] + `
    inc ecx
    cmpri ecx, 2000
    jl loop
    halt
`
	}
	cfg := DefaultConfig()
	cfg.BBThreshold = 4
	cfg.SBThreshold = 20
	tl := New(cfg)
	run := func() uint32 {
		tl.CPU = guest.CPU{EIP: 0x1000}
		tl.CPU.R[guest.ESP] = guestvm.StackTop
		tl.halted = false
		if _, err := tl.Run(0); err != nil {
			t.Fatal(err)
		}
		return tl.CPU.R[guest.EAX]
	}

	tl.InstallPage(0x1000, assemblePage(t, program(3)))
	if got := run(); got != 6000 {
		t.Fatalf("first run: eax=%d", got)
	}
	if tl.Cache.Len() == 0 {
		t.Fatal("hot loop was never translated; test is vacuous")
	}
	tl.InstallPage(0x1000, assemblePage(t, program(7)))
	if got := run(); got != 14000 {
		t.Fatalf("stale translation after re-install: eax=%d", got)
	}
}

// TestInstallPageDropsStraddlingDecode covers the page-boundary case:
// an instruction starting on the preceding page and extending into the
// installed one must be re-decoded too.
func TestInstallPageDropsStraddlingDecode(t *testing.T) {
	tl := New(DefaultConfig())
	// movri is 6 bytes (opcode + reg + imm32); start it 2 bytes before
	// the page boundary so its immediate lives in the next page.
	startPC := uint32(0x2000 - 2)

	var lo, hi [guestvm.PageSize]byte
	in := guest.Inst{Op: guest.MOVri, R1: uint8(guest.EAX), Imm: 0x11223344}
	enc := in.Encode(nil)
	copy(lo[guestvm.PageSize-2:], enc[:2])
	copy(hi[:], enc[2:])
	tl.InstallPage(0x1000, &lo)
	tl.InstallPage(0x2000, &hi)

	got, err := tl.Fetch(startPC)
	if err != nil {
		t.Fatal(err)
	}
	if got.Imm != 0x11223344 {
		t.Fatalf("straddling decode: imm=%#x", got.Imm)
	}

	// Rewrite only the second page (the immediate's upper bytes).
	in2 := guest.Inst{Op: guest.MOVri, R1: uint8(guest.EAX), Imm: 0x55667788}
	enc2 := in2.Encode(nil)
	var hi2 [guestvm.PageSize]byte
	copy(hi2[:], enc2[2:])
	tl.InstallPage(0x2000, &hi2)

	got, err = tl.Fetch(startPC)
	if err != nil {
		t.Fatal(err)
	}
	if got.Imm != 0x55667788 {
		t.Fatalf("stale straddling decode: imm=%#x", got.Imm)
	}
}
