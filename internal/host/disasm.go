package host

import "fmt"

// String renders the instruction for debug listings.
func (in *Inst) String() string {
	d := in.Op.Desc()
	spec := ""
	if in.Spec {
		spec = ".s"
	}
	r := func(x uint8) string { return fmt.Sprintf("r%d", x) }
	f := func(x uint8) string { return fmt.Sprintf("f%d", x) }
	switch in.Op {
	case NOPH, CHKPT:
		return d.Name
	case COMMIT:
		return fmt.Sprintf("commit @%#x", in.Target)
	case LI:
		return fmt.Sprintf("li %s, %d", r(in.Rd), in.Imm)
	case FLI:
		return fmt.Sprintf("fli %s, %g", f(in.Rd), in.F64)
	case MOVH:
		return fmt.Sprintf("mov %s, %s", r(in.Rd), r(in.Ra))
	case FMOVH, FABSH, FNEGH, FSQRTH:
		return fmt.Sprintf("%s %s, %s", d.Name, f(in.Rd), f(in.Ra))
	case ADDI, ANDI, ORI, XORI, SHLI, SHRI, SARI:
		return fmt.Sprintf("%s %s, %s, %d", d.Name, r(in.Rd), r(in.Ra), in.Imm)
	case ADD, SUB, MUL, DIV, REM, AND, OR, XOR, SHL, SHR, SAR, SLT, SLTU, SEQ, SNE:
		return fmt.Sprintf("%s %s, %s, %s", d.Name, r(in.Rd), r(in.Ra), r(in.Rb))
	case LD, LDB:
		return fmt.Sprintf("%s%s %s, [%s%+d]", d.Name, spec, r(in.Rd), r(in.Ra), in.Imm)
	case ST, STB:
		return fmt.Sprintf("%s%s [%s%+d], %s", d.Name, spec, r(in.Ra), in.Imm, r(in.Rd))
	case FLDH:
		return fmt.Sprintf("fld%s %s, [%s%+d]", spec, f(in.Rd), r(in.Ra), in.Imm)
	case FSTH:
		return fmt.Sprintf("fst%s [%s%+d], %s", spec, r(in.Ra), in.Imm, f(in.Rd))
	case BEQZ, BNEZ:
		return fmt.Sprintf("%s %s, %+d", d.Name, r(in.Ra), in.Imm)
	case JREL:
		return fmt.Sprintf("j %+d", in.Imm)
	case EXIT:
		return fmt.Sprintf("exit @%#x", in.Target)
	case CHAINED:
		return fmt.Sprintf("chained @%#x -> block %d", in.Target, in.Link)
	case EXITIND:
		return fmt.Sprintf("exitind %s", r(in.Ra))
	case ASSERTH:
		return fmt.Sprintf("assert %s (rollback @%#x)", r(in.Ra), in.Target)
	case FADDH, FSUBH, FMULH, FDIVH:
		return fmt.Sprintf("%s %s, %s, %s", d.Name, f(in.Rd), f(in.Ra), f(in.Rb))
	case FCVTI:
		return fmt.Sprintf("fcvti %s, %s", r(in.Rd), f(in.Ra))
	case FCVTF:
		return fmt.Sprintf("fcvtf %s, %s", f(in.Rd), r(in.Ra))
	case FSLT, FSEQ, FUNORD:
		return fmt.Sprintf("%s %s, %s, %s", d.Name, r(in.Rd), f(in.Ra), f(in.Rb))
	case VFADD, VFMUL:
		return fmt.Sprintf("%s v%d, v%d, v%d", d.Name, in.Rd, in.Ra, in.Rb)
	case VFLD:
		return fmt.Sprintf("vfld v%d, [%s%+d]", in.Rd, r(in.Ra), in.Imm)
	case VFST:
		return fmt.Sprintf("vfst [%s%+d], v%d", r(in.Ra), in.Imm, in.Rd)
	}
	return d.Name
}
