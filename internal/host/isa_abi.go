package host

// RProfile is the scratch register the translator's embedded software
// profiling counters clobber. Like RScratch it is never live across
// translated instructions.
const RProfile = 15
