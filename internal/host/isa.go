// Package host defines HISA, the PowerPC-like RISC host ISA of the
// co-designed processor: a simple fixed-format load/store ISA with a
// large register file, plus the co-design extensions the paper's TOL
// relies on — asserts, speculative memory operations, and architectural
// checkpoint/commit.
package host

// Register file geometry.
const (
	NumIntRegs = 64
	NumFPRegs  = 32
	NumVecRegs = 16
	VecLanes   = 8 // float64 lanes per vector register
)

// Software ABI of the Translation Optimization Layer. Guest architectural
// state is pinned to host registers so translated code never spills it to
// memory (one of the paper's emulation-cost reductions).
const (
	RZero     = 0 // hardwired zero
	RGuestGPR = 1 // r1..r8 hold guest EAX..EDI
	RFlagCF   = 9 // r9..r13 hold CF, ZF, SF, OF, PF as 0/1
	RFlagZF   = 10
	RFlagSF   = 11
	RFlagOF   = 12
	RFlagPF   = 13
	RScratch  = 14 // TOL prologue scratch; never live across blocks
	RTempBase = 16 // r16..r63 are allocatable temporaries

	FGuestFPR = 1 // f1..f8 hold guest F0..F7
	FTempBase = 9 // f9..f31 are allocatable temporaries
)

// Op enumerates HISA opcodes.
type Op uint8

// Opcode space.
const (
	NOPH Op = iota

	// Constants and moves.
	LI   // rd <- imm32
	MOVH // rd <- ra

	// Integer ALU, register and immediate forms.
	ADD
	ADDI
	SUB
	MUL
	DIV // deterministic: /0 yields all-ones quotient (matches guest IDIV)
	REM // deterministic: x rem 0 yields x
	AND
	ANDI
	OR
	ORI
	XOR
	XORI
	SHL
	SHLI
	SHR
	SHRI
	SAR
	SARI

	// Comparisons producing 0/1.
	SLT  // signed <
	SLTU // unsigned <
	SEQ
	SNE

	// Memory. The Spec flag on Inst marks speculatively hoisted
	// accesses that participate in the alias-check table.
	LD  // rd <- mem32[ra+imm]
	ST  // mem32[ra+imm] <- rd
	LDB // rd <- zext mem8[ra+imm]
	STB // mem8[ra+imm] <- rd low byte
	FLDH
	FSTH

	// Intra-block control flow (Imm = relative instruction offset from
	// the following instruction).
	BEQZ
	BNEZ
	JREL

	// Code cache exits. EXIT leaves to a statically known guest PC
	// (Target); after chaining it is rewritten to CHAINED with Link
	// pointing at the successor block. EXITIND leaves to the guest PC
	// held in Ra and is served by the IBTC.
	EXIT
	CHAINED
	EXITIND

	// Co-design extensions.
	ASSERTH // speculation check: fails (rollback to checkpoint) if Ra == 0
	CHKPT   // checkpoint the emulated guest architectural state
	COMMIT  // commit speculative state; Target = guest PC now architectural

	// Floating point.
	FLI
	FMOVH
	FADDH
	FSUBH
	FMULH
	FDIVH
	FSQRTH
	FABSH
	FNEGH
	FCVTI  // rd <- int32(fa), truncating, saturating like the guest
	FCVTF  // fd <- float64(int32(ra))
	FSLT   // rd <- fa < fb
	FSEQ   // rd <- fa == fb
	FUNORD // rd <- isNaN(fa) || isNaN(fb)

	// Vector (VecLanes float64 lanes).
	VFADD
	VFMUL
	VFLD // vd <- mem[ra+imm ...]
	VFST

	// High half of the signed 64-bit product (for overflow-flag
	// synthesis of the guest IMUL).
	MULH

	// Spill traffic to the TOL-private spill area (not guest memory,
	// so it never perturbs state validation).
	SPILLI   // spill[imm] <- rd
	UNSPILLI // rd <- spill[imm]
	SPILLF
	UNSPILLF

	numOps
)

// NumOps is the number of defined host opcodes.
const NumOps = int(numOps)

// Class buckets opcodes by the execution resource they occupy in the
// timing simulator.
type Class uint8

// Execution unit classes.
const (
	ClassSimple  Class = iota // 1-cycle integer ALU
	ClassComplex              // multi-cycle integer and FP
	ClassMemory
	ClassBranch
	ClassVector
)

// Inst is one host instruction. The host emulator executes slices of
// these; the timing simulator consumes the retired stream.
type Inst struct {
	Op     Op
	Rd     uint8 // destination (or store source)
	Ra     uint8
	Rb     uint8
	Imm    int32
	F64    float64 // FLI immediate
	Spec   bool    // speculatively reordered memory access
	Target uint32  // guest PC for EXIT/COMMIT; rollback PC for ASSERTH
	Link   int     // code cache block id for CHAINED
	GPC    uint32  // guest PC this instruction emulates (profiling/debug)
}

// Desc describes a host opcode.
type Desc struct {
	Name    string
	Class   Class
	Latency int // default execution latency in cycles
	IsLoad  bool
	IsStore bool
	IsFP    bool
	IsExit  bool // leaves the current block
}

// Descs indexes host opcode descriptions.
var Descs = [NumOps]Desc{
	NOPH: {Name: "nop", Class: ClassSimple, Latency: 1},
	LI:   {Name: "li", Class: ClassSimple, Latency: 1},
	MOVH: {Name: "mov", Class: ClassSimple, Latency: 1},
	ADD:  {Name: "add", Class: ClassSimple, Latency: 1},
	ADDI: {Name: "addi", Class: ClassSimple, Latency: 1},
	SUB:  {Name: "sub", Class: ClassSimple, Latency: 1},
	MUL:  {Name: "mul", Class: ClassComplex, Latency: 3},
	DIV:  {Name: "div", Class: ClassComplex, Latency: 12},
	REM:  {Name: "rem", Class: ClassComplex, Latency: 12},
	AND:  {Name: "and", Class: ClassSimple, Latency: 1},
	ANDI: {Name: "andi", Class: ClassSimple, Latency: 1},
	OR:   {Name: "or", Class: ClassSimple, Latency: 1},
	ORI:  {Name: "ori", Class: ClassSimple, Latency: 1},
	XOR:  {Name: "xor", Class: ClassSimple, Latency: 1},
	XORI: {Name: "xori", Class: ClassSimple, Latency: 1},
	SHL:  {Name: "shl", Class: ClassSimple, Latency: 1},
	SHLI: {Name: "shli", Class: ClassSimple, Latency: 1},
	SHR:  {Name: "shr", Class: ClassSimple, Latency: 1},
	SHRI: {Name: "shri", Class: ClassSimple, Latency: 1},
	SAR:  {Name: "sar", Class: ClassSimple, Latency: 1},
	SARI: {Name: "sari", Class: ClassSimple, Latency: 1},
	SLT:  {Name: "slt", Class: ClassSimple, Latency: 1},
	SLTU: {Name: "sltu", Class: ClassSimple, Latency: 1},
	SEQ:  {Name: "seq", Class: ClassSimple, Latency: 1},
	SNE:  {Name: "sne", Class: ClassSimple, Latency: 1},

	LD:   {Name: "ld", Class: ClassMemory, Latency: 2, IsLoad: true},
	ST:   {Name: "st", Class: ClassMemory, Latency: 1, IsStore: true},
	LDB:  {Name: "ldb", Class: ClassMemory, Latency: 2, IsLoad: true},
	STB:  {Name: "stb", Class: ClassMemory, Latency: 1, IsStore: true},
	FLDH: {Name: "fld", Class: ClassMemory, Latency: 2, IsLoad: true, IsFP: true},
	FSTH: {Name: "fst", Class: ClassMemory, Latency: 1, IsStore: true, IsFP: true},

	BEQZ: {Name: "beqz", Class: ClassBranch, Latency: 1},
	BNEZ: {Name: "bnez", Class: ClassBranch, Latency: 1},
	JREL: {Name: "j", Class: ClassBranch, Latency: 1},

	EXIT:    {Name: "exit", Class: ClassBranch, Latency: 1, IsExit: true},
	CHAINED: {Name: "chained", Class: ClassBranch, Latency: 1, IsExit: true},
	EXITIND: {Name: "exitind", Class: ClassBranch, Latency: 2, IsExit: true},

	ASSERTH: {Name: "assert", Class: ClassBranch, Latency: 1},
	CHKPT:   {Name: "chkpt", Class: ClassSimple, Latency: 1},
	COMMIT:  {Name: "commit", Class: ClassSimple, Latency: 1},

	FLI:    {Name: "fli", Class: ClassSimple, Latency: 1, IsFP: true},
	FMOVH:  {Name: "fmov", Class: ClassSimple, Latency: 1, IsFP: true},
	FADDH:  {Name: "fadd", Class: ClassComplex, Latency: 3, IsFP: true},
	FSUBH:  {Name: "fsub", Class: ClassComplex, Latency: 3, IsFP: true},
	FMULH:  {Name: "fmul", Class: ClassComplex, Latency: 4, IsFP: true},
	FDIVH:  {Name: "fdiv", Class: ClassComplex, Latency: 12, IsFP: true},
	FSQRTH: {Name: "fsqrt", Class: ClassComplex, Latency: 20, IsFP: true},
	FABSH:  {Name: "fabs", Class: ClassSimple, Latency: 1, IsFP: true},
	FNEGH:  {Name: "fneg", Class: ClassSimple, Latency: 1, IsFP: true},
	FCVTI:  {Name: "fcvti", Class: ClassComplex, Latency: 2, IsFP: true},
	FCVTF:  {Name: "fcvtf", Class: ClassComplex, Latency: 2, IsFP: true},
	FSLT:   {Name: "fslt", Class: ClassComplex, Latency: 2, IsFP: true},
	FSEQ:   {Name: "fseq", Class: ClassComplex, Latency: 2, IsFP: true},
	FUNORD: {Name: "funord", Class: ClassComplex, Latency: 2, IsFP: true},

	VFADD: {Name: "vfadd", Class: ClassVector, Latency: 4, IsFP: true},
	VFMUL: {Name: "vfmul", Class: ClassVector, Latency: 5, IsFP: true},
	VFLD:  {Name: "vfld", Class: ClassVector, Latency: 3, IsLoad: true, IsFP: true},
	VFST:  {Name: "vfst", Class: ClassVector, Latency: 2, IsStore: true, IsFP: true},

	MULH: {Name: "mulh", Class: ClassComplex, Latency: 3},

	SPILLI:   {Name: "spilli", Class: ClassMemory, Latency: 1, IsStore: true},
	UNSPILLI: {Name: "unspilli", Class: ClassMemory, Latency: 2, IsLoad: true},
	SPILLF:   {Name: "spillf", Class: ClassMemory, Latency: 1, IsFP: true, IsStore: true},
	UNSPILLF: {Name: "unspillf", Class: ClassMemory, Latency: 2, IsFP: true, IsLoad: true},
}

// Desc returns the description of op.
func (op Op) Desc() *Desc {
	if int(op) < NumOps {
		return &Descs[op]
	}
	return &Descs[NOPH]
}

func (op Op) String() string { return op.Desc().Name }
