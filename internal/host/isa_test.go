package host

import "testing"

// TestDescTableComplete: every opcode has a name, a class and a latency.
func TestDescTableComplete(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		d := op.Desc()
		if d.Name == "" {
			t.Errorf("op %d has no name", op)
		}
		if d.Latency <= 0 {
			t.Errorf("op %v has latency %d", op, d.Latency)
		}
	}
}

// TestClassAssignments pins the unit classes the timing simulator
// depends on.
func TestClassAssignments(t *testing.T) {
	cases := map[Op]Class{
		ADD:     ClassSimple,
		MUL:     ClassComplex,
		DIV:     ClassComplex,
		LD:      ClassMemory,
		ST:      ClassMemory,
		FLDH:    ClassMemory,
		BEQZ:    ClassBranch,
		EXIT:    ClassBranch,
		CHAINED: ClassBranch,
		EXITIND: ClassBranch,
		ASSERTH: ClassBranch,
		FADDH:   ClassComplex,
		FSQRTH:  ClassComplex,
		VFADD:   ClassVector,
		SPILLI:  ClassMemory,
	}
	for op, want := range cases {
		if got := op.Desc().Class; got != want {
			t.Errorf("%v class %v, want %v", op, got, want)
		}
	}
}

// TestLoadStoreFlags pins the IsLoad/IsStore markers.
func TestLoadStoreFlags(t *testing.T) {
	loads := []Op{LD, LDB, FLDH, VFLD, UNSPILLI, UNSPILLF}
	stores := []Op{ST, STB, FSTH, VFST, SPILLI, SPILLF}
	for _, op := range loads {
		if !op.Desc().IsLoad {
			t.Errorf("%v should be a load", op)
		}
	}
	for _, op := range stores {
		if !op.Desc().IsStore {
			t.Errorf("%v should be a store", op)
		}
	}
	if ADD.Desc().IsLoad || ADD.Desc().IsStore {
		t.Errorf("add marked as memory")
	}
}

// TestABIRegistersDisjoint: pinned guest state, scratch and temporaries
// must not overlap.
func TestABIRegistersDisjoint(t *testing.T) {
	used := map[int]string{}
	claim := func(r int, what string) {
		if prev, ok := used[r]; ok {
			t.Errorf("r%d claimed by both %s and %s", r, prev, what)
		}
		used[r] = what
	}
	claim(RZero, "zero")
	for i := 0; i < 8; i++ {
		claim(RGuestGPR+i, "guest gpr")
	}
	for r := RFlagCF; r <= RFlagPF; r++ {
		claim(r, "flag")
	}
	claim(RScratch, "scratch")
	claim(RProfile, "profile")
	for r := RTempBase; r < NumIntRegs; r++ {
		claim(r, "temp")
	}
}

// TestDisasmAllOps: the disassembler renders every opcode.
func TestDisasmAllOps(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		in := Inst{Op: op, Rd: 1, Ra: 2, Rb: 3, Imm: 4, Target: 0x1000, Link: 7}
		if s := in.String(); s == "" {
			t.Errorf("op %v renders empty", op)
		}
	}
	in := Inst{Op: LD, Rd: 5, Ra: 6, Imm: -8, Spec: true}
	if got := in.String(); got != "ld.s r5, [r6-8]" {
		t.Errorf("spec load renders %q", got)
	}
}
