// Package warmup implements the paper's case study (§VI-E): a warm-up
// simulation methodology for HW/SW co-designed processors.
//
// Sampling-based simulation must warm up the TOL's software state in
// addition to the microarchitectural state; an inaccurate TOL profiler
// state costs thousands to tens of thousands of cycles per spurious
// region translation, so naive warm-up periods must be 3–4 orders of
// magnitude longer than for conventional processors. The methodology
// downscales the TOL promotion thresholds during the warm-up phase — so
// code is promoted to the higher optimization regions quickly — and
// restores the original thresholds while collecting statistics. An
// off-line heuristic correlates the basic-block execution distribution
// of candidate (scale factor, warm-up length) configurations against
// the authoritative execution distribution and picks the best match.
package warmup

import (
	"context"
	"fmt"
	"math"

	"darco/internal/controller"
	"darco/internal/guest"
	"darco/internal/guestvm"
	"darco/internal/timing"
	"darco/internal/tol"
)

// Candidate is one (scale factor, warm-up length) configuration.
type Candidate struct {
	Scale   uint32 // promotion thresholds are divided by Scale during warm-up
	WarmLen uint64 // warm-up length in guest instructions
}

// Config parameterises a study.
type Config struct {
	TOL    tol.Config
	Timing timing.Config

	NumSamples int    // sample windows per program
	SampleLen  uint64 // detailed-simulation length per sample, guest insns

	Candidates []Candidate

	// FunctionalSpeedup is how much faster functional emulation is than
	// detailed timing simulation (the paper's Table §VI-A ratio ~9x);
	// it weights warm-up cost against detailed-simulation cost.
	FunctionalSpeedup float64
}

// DefaultConfig mirrors the case study's setup.
func DefaultConfig() Config {
	return Config{
		TOL:        tol.DefaultConfig(),
		Timing:     timing.DefaultConfig(),
		NumSamples: 3,
		SampleLen:  60_000,
		Candidates: []Candidate{
			{Scale: 1, WarmLen: 4_000},   // naive short warm-up: cold TOL
			{Scale: 1, WarmLen: 150_000}, // naive long warm-up: accurate, expensive
			{Scale: 2, WarmLen: 80_000},
			{Scale: 5, WarmLen: 40_000},
			{Scale: 10, WarmLen: 50_000},
			{Scale: 20, WarmLen: 30_000},
			{Scale: 50, WarmLen: 8_000},
		},
		FunctionalSpeedup: 9,
	}
}

// CandidateResult is the measured outcome of one candidate.
type CandidateResult struct {
	Candidate
	CPGI       float64 // estimated cycles per guest instruction
	ErrorPct   float64 // |CPGI - full CPGI| / full CPGI * 100
	CostInsns  float64 // detailed-equivalent instructions simulated
	Reduction  float64 // full cost / candidate cost
	Similarity float64 // heuristic score vs authoritative distribution
}

// StudyResult is the outcome of a warm-up study on one program.
type StudyResult struct {
	FullCPGI   float64
	FullCost   float64 // detailed-simulated host instructions, full run
	TotalGuest uint64
	Candidates []CandidateResult
	Chosen     CandidateResult // heuristic pick (best similarity)
}

// RunStudy executes the methodology on one guest program.
func RunStudy(im *guest.Image, cfg Config) (*StudyResult, error) {
	return RunStudyContext(context.Background(), im, cfg)
}

// RunStudyContext is RunStudy with cancellation: the context is checked
// between (and, through the controller, within) the candidate runs.
func RunStudyContext(ctx context.Context, im *guest.Image, cfg Config) (*StudyResult, error) {
	full, err := fullReference(ctx, im, cfg)
	if err != nil {
		return nil, err
	}
	res := &StudyResult{FullCPGI: full.cpgi, FullCost: full.cost, TotalGuest: full.guest}

	// Sample starts, evenly spaced and clear of program start/end.
	starts := make([]uint64, cfg.NumSamples)
	for i := range starts {
		starts[i] = full.guest * uint64(i+1) / uint64(cfg.NumSamples+2)
	}

	// Authoritative execution distributions at each sample point, from
	// a cheap functional run of the x86 component.
	authDist, err := authoritativeDistributions(im, starts)
	if err != nil {
		return nil, err
	}

	for _, cand := range cfg.Candidates {
		cr, err := evaluate(ctx, im, cfg, cand, starts, authDist, full.cpgi)
		if err != nil {
			return nil, err
		}
		cr.Reduction = full.cost / cr.CostInsns
		res.Candidates = append(res.Candidates, *cr)
	}

	// Heuristic: pick the candidate whose warm-up execution
	// distribution best matches the authoritative distribution;
	// among near-ties (within 2% of the best match) prefer the
	// cheapest configuration.
	best := 0
	for i := range res.Candidates {
		if res.Candidates[i].Similarity > res.Candidates[best].Similarity {
			best = i
		}
	}
	chosen := best
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if c.Similarity >= 0.98*res.Candidates[best].Similarity &&
			c.Reduction > res.Candidates[chosen].Reduction {
			chosen = i
		}
	}
	res.Chosen = res.Candidates[chosen]
	return res, nil
}

type fullRun struct {
	cpgi  float64
	cost  float64
	guest uint64
}

// fullReference performs the authoritative full detailed simulation.
func fullReference(ctx context.Context, im *guest.Image, cfg Config) (*fullRun, error) {
	ctl, err := controller.New(im, controller.Config{TOL: cfg.TOL, CheckInterval: checkInterval})
	if err != nil {
		return nil, err
	}
	core := timing.New(cfg.Timing)
	ctl.CoD.VM.Retire = core.Consume
	if err := ctl.RunContext(ctx, 0); err != nil {
		return nil, err
	}
	core.AddTOL(ctl.CoD.Overhead.Total())
	guestN := ctl.CoD.Stats.GuestInsns()
	if guestN == 0 {
		return nil, fmt.Errorf("warmup: empty program")
	}
	return &fullRun{
		cpgi:  float64(core.Stats.Cycles) / float64(guestN),
		cost:  float64(core.Stats.Insns + core.Stats.TOLInsns),
		guest: guestN,
	}, nil
}

// authoritativeDistributions collects the basic-block execution
// frequency distribution of the program prefix ending at each sample
// start.
func authoritativeDistributions(im *guest.Image, starts []uint64) ([]map[uint32]uint64, error) {
	vm, err := guestvm.New(im)
	if err != nil {
		return nil, err
	}
	vm.BBFreq = make(map[uint32]uint64)
	out := make([]map[uint32]uint64, len(starts))
	for i, s := range starts {
		if _, err := vm.Run(guestvm.RunLimits{InsnCount: s}); err != nil {
			return nil, err
		}
		snap := make(map[uint32]uint64, len(vm.BBFreq))
		for k, v := range vm.BBFreq {
			snap[k] = v
		}
		out[i] = snap
	}
	return out, nil
}

// checkInterval bounds controller excursions so a cancelled study
// returns promptly (guest instructions per cancellation check).
const checkInterval = 50_000

// evaluate measures one candidate across all samples.
func evaluate(ctx context.Context, im *guest.Image, cfg Config, cand Candidate, starts []uint64,
	authDist []map[uint32]uint64, fullCPGI float64) (*CandidateResult, error) {

	var cycles, guestInsns uint64
	var cost float64
	var sim float64

	for si, start := range starts {
		warmStart := uint64(0)
		if start > cand.WarmLen {
			warmStart = start - cand.WarmLen
		}
		// Functional fast-forward of the authoritative component.
		x86, err := guestvm.New(im)
		if err != nil {
			return nil, err
		}
		if _, err := x86.Run(guestvm.RunLimits{InsnCount: warmStart}); err != nil {
			return nil, err
		}
		// Transplant into a fresh co-designed component: cold TOL.
		ctl := controller.NewFrom(x86, controller.Config{TOL: cfg.TOL, CheckInterval: checkInterval})

		// Warm-up phase with downscaled promotion thresholds.
		bb, sb := ctl.CoD.Thresholds()
		ctl.CoD.SetThresholds(bb/cand.Scale, sb/uint64(cand.Scale))
		if err := ctl.RunContext(ctx, cand.WarmLen); err != nil {
			return nil, err
		}
		warmOverhead := ctl.CoD.Overhead.Total()
		warmApp := ctl.CoD.VM.AppInsns

		// Heuristic input: how well does the warmed TOL's execution
		// distribution match the authoritative prefix distribution?
		sim += cosine(ctl.CoD.BBFreqSnapshot(), authDist[si])

		// Measurement phase: original thresholds, timing attached.
		ctl.CoD.SetThresholds(bb, sb)
		core := timing.New(cfg.Timing)
		ctl.CoD.VM.Retire = core.Consume
		g0 := ctl.CoD.Stats.GuestInsns()
		if err := ctl.RunContext(ctx, cfg.SampleLen); err != nil {
			return nil, err
		}
		core.AddTOL(ctl.CoD.Overhead.Total() - warmOverhead)
		cycles += core.Stats.Cycles
		guestInsns += ctl.CoD.Stats.GuestInsns() - g0

		// Cost: detailed-simulated instructions plus functionally
		// executed warm-up instructions weighted by the speed ratio.
		cost += float64(core.Stats.Insns + core.Stats.TOLInsns)
		cost += float64(warmApp+warmOverhead) / cfg.FunctionalSpeedup
		cost += float64(warmStart) / (cfg.FunctionalSpeedup * 6) // guest-only fast-forward
	}

	cr := &CandidateResult{Candidate: cand, CostInsns: cost, Similarity: sim / float64(len(starts))}
	if guestInsns > 0 {
		cr.CPGI = float64(cycles) / float64(guestInsns)
	}
	if fullCPGI > 0 {
		cr.ErrorPct = math.Abs(cr.CPGI-fullCPGI) / fullCPGI * 100
	}
	return cr, nil
}

// cosine computes the cosine similarity of two sparse distributions.
func cosine(a map[uint32]uint64, b map[uint32]uint64) float64 {
	var dot, na, nb float64
	for k, va := range a {
		fa := float64(va)
		na += fa * fa
		if vb, ok := b[k]; ok {
			dot += fa * float64(vb)
		}
	}
	for _, vb := range b {
		fb := float64(vb)
		nb += fb * fb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
