package warmup

import (
	"testing"

	"darco/internal/workload"
)

func TestCosine(t *testing.T) {
	a := map[uint32]uint64{1: 10, 2: 20}
	if c := cosine(a, a); c < 0.999 {
		t.Errorf("self similarity %g", c)
	}
	b := map[uint32]uint64{3: 5}
	if c := cosine(a, b); c != 0 {
		t.Errorf("disjoint similarity %g", c)
	}
	if c := cosine(nil, a); c != 0 {
		t.Errorf("empty similarity %g", c)
	}
}

func TestStudySmall(t *testing.T) {
	p, _ := workload.ByName("462.libquantum")
	im, err := p.Scale(0.12).Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NumSamples = 2
	cfg.SampleLen = 15_000
	cfg.Candidates = []Candidate{
		{Scale: 1, WarmLen: 1_000},   // cold
		{Scale: 20, WarmLen: 20_000}, // scaled warm-up
	}
	st, err := RunStudy(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.FullCPGI <= 0 || st.FullCost <= 0 {
		t.Fatalf("reference run: %+v", st)
	}
	if len(st.Candidates) != 2 {
		t.Fatalf("candidates %d", len(st.Candidates))
	}
	cold, warm := st.Candidates[0], st.Candidates[1]
	if warm.ErrorPct >= cold.ErrorPct {
		t.Errorf("scaled warm-up (%.1f%%) should beat cold (%.1f%%)", warm.ErrorPct, cold.ErrorPct)
	}
	if warm.Similarity <= cold.Similarity {
		t.Errorf("scaled warm-up should match the authoritative distribution better: %.3f vs %.3f",
			warm.Similarity, cold.Similarity)
	}
	if st.Chosen.Scale != 20 {
		t.Errorf("heuristic picked scale %d", st.Chosen.Scale)
	}
	for _, c := range st.Candidates {
		if c.Reduction <= 1 {
			t.Errorf("scale %d warm %d: no cost reduction (%.2fx)", c.Scale, c.WarmLen, c.Reduction)
		}
	}
}
