// Package debug is DARCO's debug toolchain (§V-D). When periodic state
// validation detects a divergence between the co-designed and
// authoritative components, the debugger re-executes the program in
// lockstep — validating after every TOL dispatch — to pinpoint the
// exact region where the problem originated, then replays that region's
// translation stage by stage (plain translation, forward pass, CSE,
// DCE, memory optimization, scheduling, full speculation) to identify
// the first pipeline stage that produces wrong code.
package debug

import (
	"context"
	"fmt"
	"strings"

	"darco/internal/codecache"
	"darco/internal/controller"
	"darco/internal/guest"
	"darco/internal/guestvm"
	"darco/internal/hostvm"
	"darco/internal/tol"
)

// Report is the debugger's finding.
type Report struct {
	Mismatch *controller.MismatchError
	Suspect  tol.DispatchRecord // the dispatch after which state diverged
	Guilty   string             // first pipeline stage producing wrong results
	Detail   string             // per-stage verdicts
	Listing  string             // IR + host listing of the faulty region
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "divergence: %v\n", r.Mismatch)
	fmt.Fprintf(&b, "suspect region: %s @%#x (block %d)\n", r.Suspect.Mode, r.Suspect.PC, r.Suspect.BlockID)
	fmt.Fprintf(&b, "guilty stage: %s\n", r.Guilty)
	b.WriteString(r.Detail)
	return b.String()
}

// Locate runs the program in lockstep and pinpoints the first dispatch
// whose post-state diverges from the authoritative component, then
// replays the suspect region's translation pipeline. It returns nil if
// the program executes cleanly.
func Locate(im *guest.Image, cfg controller.Config) (*Report, error) {
	return LocateContext(context.Background(), im, cfg)
}

// LocateContext is Locate with cancellation: lockstep runs are slow, so
// the context is checked at every dispatch.
func LocateContext(ctx context.Context, im *guest.Image, cfg controller.Config) (*Report, error) {
	cfg.ValidateEveryNSyncs = 0 // we validate ourselves, every dispatch
	ctl, err := controller.New(im, cfg)
	if err != nil {
		return nil, err
	}

	var preCPU guest.CPU
	var preMem *guestvm.Memory
	for !ctl.CoD.Halted() {
		if !ctl.CoD.MidBB() {
			preCPU = ctl.CoD.CPU
			preMem = ctl.CoD.Mem.Clone()
		}
		if err := ctl.RunContext(ctx, 1); err != nil {
			if mm, ok := err.(*controller.MismatchError); ok {
				return buildReport(ctl, mm, preCPU, preMem)
			}
			return nil, err
		}
		if ctl.CoD.MidBB() {
			// Paused inside a basic block (mid-block page fault):
			// state comparison is only meaningful at block boundaries.
			continue
		}
		if err := ctl.StepValidate(); err != nil {
			if mm, ok := err.(*controller.MismatchError); ok {
				return buildReport(ctl, mm, preCPU, preMem)
			}
			return nil, err
		}
	}
	return nil, nil
}

// buildReport replays the suspect region stage by stage.
func buildReport(ctl *controller.Controller, mm *controller.MismatchError,
	preCPU guest.CPU, preMem *guestvm.Memory) (*Report, error) {

	rep := &Report{Mismatch: mm, Suspect: ctl.CoD.LastDispatch, Guilty: "unknown"}
	sus := ctl.CoD.LastDispatch
	if sus.BlockID < 0 {
		rep.Guilty = "interpreter / semantic core"
		return rep, nil
	}
	blk, ok := ctl.CoD.Cache.Get(sus.BlockID)
	if !ok {
		rep.Detail = "suspect block evicted; cannot replay\n"
		return rep, nil
	}

	// Reference: interpret from the pre-dispatch state.
	levels := []tol.OptLevel{
		tol.LevelNone, tol.LevelForward, tol.LevelCSE,
		tol.LevelDCE, tol.LevelMem, tol.LevelSched, tol.LevelFull,
	}
	var detail strings.Builder
	for _, lv := range levels {
		nb, err := ctl.CoD.RetranslateAtLevel(blk, lv)
		if err != nil {
			fmt.Fprintf(&detail, "  %-8s retranslation failed: %v\n", lv, err)
			continue
		}
		okRun, why := replayMatchesReference(nb, preCPU, preMem)
		verdict := "ok"
		if !okRun {
			verdict = "DIVERGES: " + why
		}
		fmt.Fprintf(&detail, "  %-8s %s\n", lv, verdict)
		if !okRun && rep.Guilty == "unknown" {
			if lv == tol.LevelNone {
				rep.Guilty = "base translation / code generation"
			} else {
				rep.Guilty = "pass: " + lv.String()
			}
		}
	}
	if rep.Guilty == "unknown" {
		rep.Guilty = "not reproducible in replay (chaining / runtime state)"
	}
	rep.Detail = detail.String()

	if irr, err := ctl.CoD.BuildRegionIR(blk); err == nil {
		var lst strings.Builder
		lst.WriteString(irr.String())
		lst.WriteString("host code:\n")
		for i := range blk.Code {
			fmt.Fprintf(&lst, "  %3d: %s\n", i, blk.Code[i].String())
		}
		rep.Listing = lst.String()
	}
	return rep, nil
}

// replayMatchesReference executes a translated block from a state
// snapshot and compares the result with interpreting the same retired
// instruction count.
func replayMatchesReference(blk *codecache.Block, preCPU guest.CPU, preMem *guestvm.Memory) (bool, string) {
	// Translated execution.
	tMem := preMem.Clone()
	tMem.Strict = false
	vm := hostvm.New(tMem, hostvm.DefaultConfig())
	vm.Resolve = func(id int) (*codecache.Block, bool) { return nil, false }
	tCPU := preCPU
	vm.Regs.LoadGuest(&tCPU)
	res, _, err := vm.Run(blk, 1_000_000)
	if err != nil {
		return false, fmt.Sprintf("host execution error: %v", err)
	}
	if res.Kind == hostvm.ExitAssertFail || res.Kind == hostvm.ExitMemSpecFail {
		// Rolled back: architecturally a no-op; nothing to compare.
		return true, ""
	}
	vm.Regs.StoreGuest(&tCPU)
	tCPU.EIP = res.NextPC
	meta, okm := blk.ExitMeta[res.ExitIdx]
	if !okm {
		return false, "exit without retirement metadata"
	}

	// Reference interpretation of the same instruction count.
	rMem := preMem.Clone()
	rMem.Strict = false
	rCPU := preCPU
	for k := 0; k < meta.GuestInsns; k++ {
		raw, err := rMem.ReadBytes(rCPU.EIP, 10)
		if err != nil {
			return false, fmt.Sprintf("reference fetch: %v", err)
		}
		in, n := guest.Decode(raw)
		if n == 0 {
			return false, fmt.Sprintf("reference decode failed at %#x", rCPU.EIP)
		}
		if _, err := guest.Step(&rCPU, rMem, &in); err != nil {
			return false, fmt.Sprintf("reference step: %v", err)
		}
	}

	if rCPU != tCPU {
		return false, fmt.Sprintf("cpu state: ref eip %#x vs %#x", rCPU.EIP, tCPU.EIP)
	}
	if ok, addr := rMem.Equal(tMem); !ok {
		return false, fmt.Sprintf("memory at %#x", addr)
	}
	return true, ""
}
