package debug

import (
	"strings"
	"testing"

	"darco/internal/controller"
	"darco/internal/ir"
	"darco/internal/workload"
)

// TestLocateCleanRun verifies the debugger reports nothing on a correct
// translator.
func TestLocateCleanRun(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.01).Generate()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Locate(im, controller.DefaultConfig())
	if err != nil {
		t.Fatalf("locate: %v", err)
	}
	if rep != nil {
		t.Fatalf("unexpected divergence report:\n%s", rep)
	}
}

// TestLocateInjectedBug injects a translator bug (an Add corrupted into
// a Sub in large optimized regions) and checks the debugger pinpoints
// the faulty region and stage.
func TestLocateInjectedBug(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.01).Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg := controller.DefaultConfig()
	cfg.TOL.MutateRegion = func(r *ir.Region) {
		if len(r.Code) < 40 {
			return // only corrupt superblock-sized regions
		}
		for i := range r.Code {
			in := &r.Code[i]
			if in.Op == ir.Add && in.A != 0 && in.B != 0 {
				in.Op = ir.Sub
				return
			}
		}
	}
	rep, err := Locate(im, cfg)
	if err != nil {
		t.Fatalf("locate: %v", err)
	}
	if rep == nil {
		t.Fatalf("injected bug not detected")
	}
	if rep.Suspect.Mode != "superblock" && rep.Suspect.Mode != "bb" {
		t.Errorf("suspect mode = %q, want a translated region", rep.Suspect.Mode)
	}
	if !strings.Contains(rep.Guilty, "base translation") && !strings.Contains(rep.Guilty, "pass:") {
		t.Errorf("guilty stage = %q", rep.Guilty)
	}
	if rep.Listing == "" {
		t.Errorf("expected a region listing")
	}
	t.Logf("debugger verdict:\n%s", rep)
}
