package codecache

import (
	"testing"

	"darco/internal/host"
)

func mkBlock(entry uint32, n int) *Block {
	code := make([]host.Inst, n)
	for i := 0; i < n-1; i++ {
		code[i] = host.Inst{Op: host.NOPH}
	}
	code[n-1] = host.Inst{Op: host.EXIT, Target: entry + 100}
	return &Block{Entry: entry, Kind: KindBB, Code: code}
}

func TestInsertLookup(t *testing.T) {
	c := New(1000)
	b := mkBlock(0x1000, 10)
	if c.Insert(b) {
		t.Errorf("unexpected flush")
	}
	got, ok := c.Lookup(0x1000)
	if !ok || got != b {
		t.Fatalf("lookup failed")
	}
	if _, ok := c.Lookup(0x2000); ok {
		t.Errorf("phantom lookup")
	}
	if c.Used() != 10 || c.Len() != 1 {
		t.Errorf("used=%d len=%d", c.Used(), c.Len())
	}
	g, ok := c.Get(b.ID)
	if !ok || g != b {
		t.Errorf("get by id failed")
	}
}

func TestInsertReplacesSameEntry(t *testing.T) {
	c := New(1000)
	old := mkBlock(0x1000, 10)
	c.Insert(old)
	sb := mkBlock(0x1000, 20)
	sb.Kind = KindSuperblock
	c.Insert(sb)
	got, ok := c.Lookup(0x1000)
	if !ok || got.Kind != KindSuperblock {
		t.Fatalf("superblock did not replace BB")
	}
	if _, ok := c.Get(old.ID); ok {
		t.Errorf("old block still resident")
	}
	if c.Used() != 20 {
		t.Errorf("used %d", c.Used())
	}
	if c.Invalidates != 1 {
		t.Errorf("invalidates %d", c.Invalidates)
	}
}

func TestChainAndUnchain(t *testing.T) {
	c := New(1000)
	a := mkBlock(0x1000, 5)
	b := mkBlock(0x1100, 5)
	a.Code[4].Target = 0x1100 // a's exit targets b
	c.Insert(a)
	c.Insert(b)
	sites := ExitSites(a)
	if len(sites) != 1 || sites[0] != 4 {
		t.Fatalf("exit sites %v", sites)
	}
	if err := c.Chain(a, 4, b); err != nil {
		t.Fatal(err)
	}
	if a.Code[4].Op != host.CHAINED || a.Code[4].Link != b.ID {
		t.Fatalf("chain not installed: %v", a.Code[4])
	}
	// Invalidating b must unchain a's exit.
	c.Invalidate(b)
	if a.Code[4].Op != host.EXIT {
		t.Fatalf("exit not restored: %v", a.Code[4].Op)
	}
	if c.ChainsCut != 1 {
		t.Errorf("chains cut %d", c.ChainsCut)
	}
}

func TestChainValidation(t *testing.T) {
	c := New(1000)
	a := mkBlock(0x1000, 5)
	b := mkBlock(0x2000, 5)
	c.Insert(a)
	c.Insert(b)
	// Exit targets 0x1100, block entry is 0x2000: mismatch.
	if err := c.Chain(a, 4, b); err == nil {
		t.Errorf("chain with wrong target accepted")
	}
	if err := c.Chain(a, 0, b); err == nil {
		t.Errorf("chain at non-exit accepted")
	}
}

func TestCapacityFlush(t *testing.T) {
	c := New(25)
	c.Insert(mkBlock(0x1000, 10))
	c.Insert(mkBlock(0x2000, 10))
	if c.Flushes != 0 {
		t.Fatalf("premature flush")
	}
	flushed := c.Insert(mkBlock(0x3000, 10))
	if !flushed || c.Flushes != 1 {
		t.Fatalf("expected capacity flush")
	}
	if c.Len() != 1 || c.Used() != 10 {
		t.Errorf("after flush: len=%d used=%d", c.Len(), c.Used())
	}
	if _, ok := c.Lookup(0x1000); ok {
		t.Errorf("stale entry after flush")
	}
}

func TestCountExit(t *testing.T) {
	b := mkBlock(0x1000, 5)
	b.CountExit(4)
	b.CountExit(4)
	b.CountExit(2)
	if b.ExitCounts[4] != 2 || b.ExitCounts[2] != 1 {
		t.Errorf("exit counts %v", b.ExitCounts)
	}
}

func TestBlocksEnumeration(t *testing.T) {
	c := New(1000)
	c.Insert(mkBlock(0x1000, 5))
	c.Insert(mkBlock(0x2000, 5))
	if len(c.Blocks()) != 2 {
		t.Errorf("blocks %d", len(c.Blocks()))
	}
}

func TestOversizeBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("oversized insert must panic")
		}
	}()
	c := New(5)
	c.Insert(mkBlock(0x1000, 10))
}
