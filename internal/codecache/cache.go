// Package codecache implements the translation code cache of the
// co-designed processor: translated blocks indexed by guest entry PC,
// block chaining (including unchaining on invalidation), and
// capacity-triggered flushes.
package codecache

import (
	"fmt"

	"darco/internal/host"
)

// BlockKind distinguishes the two translated region shapes.
type BlockKind uint8

// Block kinds.
const (
	KindBB BlockKind = iota
	KindSuperblock
)

func (k BlockKind) String() string {
	if k == KindSuperblock {
		return "superblock"
	}
	return "bb"
}

// Block is one translated region resident in the code cache.
type Block struct {
	ID         int
	Entry      uint32 // guest PC of the region's single entry
	Kind       BlockKind
	Code       []host.Inst
	UseAsserts bool // single-entry single-exit superblock (speculated control flow)
	Unrolled   int  // loop unroll factor applied (0 or 1 = none)

	GuestInsns int      // static guest instructions covered
	BBs        []uint32 // entry PCs of the constituent guest basic blocks

	// GuestLo/GuestHi bound the guest byte range [GuestLo, GuestHi) the
	// translation decoded (terminator included). Invalidation by code
	// page uses it; zero-range blocks are never page-invalidated.
	GuestLo uint32
	GuestHi uint32

	// ExitMeta describes each exit site (EXIT/CHAINED/EXITIND
	// instruction index) of the block: how many guest instructions and
	// guest basic blocks retire when leaving through it, and whether it
	// corresponds to the taken direction of the terminating branch.
	ExitMeta map[int]ExitInfo

	// Software profiling counters maintained by the translated code
	// (their cost is part of the emitted block, not TOL overhead).
	ExecCount   uint64
	ExitCounts  map[int]uint64 // executions leaving via each exit site
	AssertFails uint64
	SpecFails   uint64

	// incoming records chained exits from other blocks targeting this
	// block, so invalidation can unchain them.
	incoming []exitRef
}

// ExitInfo is the translator-recorded retirement metadata of one exit.
type ExitInfo struct {
	GuestInsns int  // guest instructions retired on the path to this exit
	GuestBBs   int  // guest basic blocks retired on the path to this exit
	Taken      bool // exit corresponds to the taken branch direction
}

// CountExit bumps the software exit counter for the exit at instIdx.
func (b *Block) CountExit(instIdx int) {
	if b.ExitCounts == nil {
		b.ExitCounts = make(map[int]uint64)
	}
	b.ExitCounts[instIdx]++
}

type exitRef struct {
	blockID int
	instIdx int
}

// Cache is the code cache. Capacity is expressed in host instructions;
// exceeding it flushes the whole cache (the strategy production
// translators like Dynamo use, and the simplest correct one).
type Cache struct {
	Capacity int

	// blocks[i] holds the block with ID base+i (IDs are dense and
	// monotonic; a flush advances base so IDs are never reused).
	// Get/Resolve run on every chained block transition, so they pay a
	// bounds check instead of a map probe.
	blocks  []*Block
	base    int
	nblocks int
	byEntry map[uint32]*Block
	used    int

	// Statistics.
	Inserts     uint64
	Invalidates uint64
	Flushes     uint64
	ChainsMade  uint64
	ChainsCut   uint64
}

// DefaultCapacity is the default code cache size in host instructions
// (roughly a 10 MB cache at 4 bytes per instruction).
const DefaultCapacity = 1 << 21

// New returns an empty cache with the given capacity (0 = default).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		Capacity: capacity,
		byEntry:  make(map[uint32]*Block),
	}
}

// Used reports resident host instructions.
func (c *Cache) Used() int { return c.used }

// Len reports the number of resident blocks.
func (c *Cache) Len() int { return c.nblocks }

// Lookup finds the block translated for guest PC entry.
func (c *Cache) Lookup(entry uint32) (*Block, bool) {
	b, ok := c.byEntry[entry]
	return b, ok
}

// Get returns a block by id.
func (c *Cache) Get(id int) (*Block, bool) {
	idx := id - c.base
	if idx < 0 || idx >= len(c.blocks) {
		return nil, false
	}
	b := c.blocks[idx]
	return b, b != nil
}

// Insert adds a block, replacing (and invalidating) any previous
// translation with the same guest entry — the paper's behaviour when a
// superblock supersedes the basic-block translation of its head. It
// reports whether a capacity flush occurred.
func (c *Cache) Insert(b *Block) (flushed bool) {
	if len(b.Code) > c.Capacity {
		panic(fmt.Sprintf("codecache: block of %d insns exceeds capacity %d", len(b.Code), c.Capacity))
	}
	if c.used+len(b.Code) > c.Capacity {
		c.Flush()
		flushed = true
	}
	if old, ok := c.byEntry[b.Entry]; ok {
		c.Invalidate(old)
	}
	b.ID = c.base + len(c.blocks)
	c.blocks = append(c.blocks, b)
	c.nblocks++
	c.byEntry[b.Entry] = b
	c.used += len(b.Code)
	c.Inserts++
	return flushed
}

// Invalidate removes a block and unchains every exit pointing at it.
func (c *Cache) Invalidate(b *Block) {
	if got, ok := c.Get(b.ID); !ok || got != b {
		return
	}
	for _, ref := range b.incoming {
		src, ok := c.Get(ref.blockID)
		if !ok {
			continue
		}
		in := &src.Code[ref.instIdx]
		if in.Op == host.CHAINED && in.Link == b.ID {
			in.Op = host.EXIT
			in.Link = 0
			c.ChainsCut++
		}
	}
	c.blocks[b.ID-c.base] = nil
	c.nblocks--
	if c.byEntry[b.Entry] == b {
		delete(c.byEntry, b.Entry)
	}
	c.used -= len(b.Code)
	c.Invalidates++
}

// Flush empties the cache. Block IDs are not reused: base advances past
// every ID ever issued, so the next insert continues the sequence
// (block IDs seed the synthetic host addresses the timing simulator
// sees, and reused IDs would alias old code addresses).
func (c *Cache) Flush() {
	c.base += len(c.blocks)
	for i := range c.blocks {
		c.blocks[i] = nil // release for GC; the slice itself is reused
	}
	c.blocks = c.blocks[:0]
	c.nblocks = 0
	c.byEntry = make(map[uint32]*Block)
	c.used = 0
	c.Flushes++
}

// Chain rewrites the EXIT at instIdx in src to jump directly to dst,
// recording the back-reference for later unchaining.
func (c *Cache) Chain(src *Block, instIdx int, dst *Block) error {
	in := &src.Code[instIdx]
	if in.Op != host.EXIT {
		return fmt.Errorf("codecache: instruction %d of block %d is %v, not exit", instIdx, src.ID, in.Op)
	}
	if in.Target != dst.Entry {
		return fmt.Errorf("codecache: exit targets %#x, block entry is %#x", in.Target, dst.Entry)
	}
	in.Op = host.CHAINED
	in.Link = dst.ID
	dst.incoming = append(dst.incoming, exitRef{blockID: src.ID, instIdx: instIdx})
	c.ChainsMade++
	return nil
}

// ExitSites returns the indices of chainable (static-target) exits in b.
func ExitSites(b *Block) []int {
	var out []int
	for i := range b.Code {
		if b.Code[i].Op == host.EXIT {
			out = append(out, i)
		}
	}
	return out
}

// Blocks returns all resident blocks in insertion (ID) order.
func (c *Cache) Blocks() []*Block {
	out := make([]*Block, 0, c.nblocks)
	for _, b := range c.blocks {
		if b != nil {
			out = append(out, b)
		}
	}
	return out
}
