package codecache

import (
	"math/rand"
	"testing"
)

// TestCacheInvariantsUnderRandomOps drives random insert / invalidate /
// chain / flush sequences and checks structural invariants after every
// operation:
//
//   - Used() equals the sum of resident block sizes,
//   - every Lookup result is resident under its own entry,
//   - no CHAINED instruction links to a non-resident block
//     (invalidation must unchain),
//   - Len() matches the number of resident blocks.
func TestCacheInvariantsUnderRandomOps(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		c := New(2000)
		var live []*Block

		check := func(step int) {
			t.Helper()
			sum := 0
			for _, b := range c.Blocks() {
				sum += len(b.Code)
			}
			if sum != c.Used() {
				t.Fatalf("seed %d step %d: used %d, blocks sum %d", seed, step, c.Used(), sum)
			}
			if len(c.Blocks()) != c.Len() {
				t.Fatalf("seed %d step %d: len mismatch", seed, step)
			}
			for _, b := range c.Blocks() {
				got, ok := c.Lookup(b.Entry)
				if !ok || got.ID != b.ID {
					t.Fatalf("seed %d step %d: block %d not reachable via its entry", seed, step, b.ID)
				}
				for i := range b.Code {
					in := &b.Code[i]
					if in.Op.String() == "chained" {
						if _, ok := c.Get(in.Link); !ok {
							t.Fatalf("seed %d step %d: dangling chain %d -> %d", seed, step, b.ID, in.Link)
						}
					}
				}
			}
		}

		for step := 0; step < 300; step++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3, 4: // insert
				entry := uint32(0x1000 + 0x100*r.Intn(30))
				b := mkBlock(entry, 5+r.Intn(40))
				b.Code[len(b.Code)-1].Target = uint32(0x1000 + 0x100*r.Intn(30))
				c.Insert(b)
				live = append(live, b)
			case 5, 6: // chain a random exit if possible
				if len(live) == 0 {
					break
				}
				src := live[r.Intn(len(live))]
				if _, ok := c.Get(src.ID); !ok {
					break
				}
				sites := ExitSites(src)
				if len(sites) == 0 {
					break
				}
				site := sites[r.Intn(len(sites))]
				if dst, ok := c.Lookup(src.Code[site].Target); ok {
					if err := c.Chain(src, site, dst); err != nil {
						t.Fatalf("seed %d step %d: chain: %v", seed, step, err)
					}
				}
			case 7, 8: // invalidate
				if len(live) == 0 {
					break
				}
				b := live[r.Intn(len(live))]
				if _, ok := c.Get(b.ID); ok {
					c.Invalidate(b)
				}
			case 9: // flush
				if r.Intn(4) == 0 {
					c.Flush()
				}
			}
			check(step)
		}
	}
}
