package guest

import "math"

// Software floating-point transcendentals.
//
// The host RISC ISA has no sin/cos instruction, so the translator expands
// guest FSIN/FCOS into a straight-line host sequence: range reduction via
// truncating conversion followed by a Horner evaluation of a Taylor
// polynomial. These Go functions are the reference for that sequence and
// are written one IEEE-754 operation per statement so that the emitted
// host code — executed one instruction at a time by the host emulator —
// produces bit-identical results. Keep them in lock step with
// tol/trans.go's emitTrig; the differential tests enforce the pairing.

// TwoPi and InvTwoPi are the range-reduction constants shared with the
// translator.
const (
	TwoPi    = 6.283185307179586
	InvTwoPi = 0.15915494309189535
)

// SinCoef holds Horner coefficients for sin(y)/y over (-2π, 2π):
// odd-power Taylor terms 1/1! .. -1/19!.
var SinCoef = [10]float64{
	1.0,
	-1.0 / 6,
	1.0 / 120,
	-1.0 / 5040,
	1.0 / 362880,
	-1.0 / 39916800,
	1.0 / 6227020800,
	-1.0 / 1307674368000,
	1.0 / 355687428096000,
	-1.0 / 121645100408832000,
}

// CosCoef holds Horner coefficients for cos(y) over [-π, π]:
// even-power Taylor terms 1/0! .. -1/18!.
var CosCoef = [10]float64{
	1.0,
	-1.0 / 2,
	1.0 / 24,
	-1.0 / 720,
	1.0 / 40320,
	-1.0 / 3628800,
	1.0 / 479001600,
	-1.0 / 87178291200,
	1.0 / 20922789888000,
	-1.0 / 6402373705728000,
}

// ReduceTwoPi performs the shared range reduction
// y = x - round(x/2π)·2π, leaving y in [-π, π] (for inputs whose
// quotient fits an int32; beyond that the result is deterministic but
// unreduced, matching the translated host sequence exactly). Rounding
// is expressed branch-free with comparisons so the translator emits the
// identical operation sequence.
func ReduceTwoPi(x float64) float64 {
	q := x * InvTwoPi
	n := float64(truncF64(q))
	r := q - n
	up := b2f(r > 0.5)
	down := b2f(r < -0.5)
	n1 := n + up
	n2 := n1 - down
	m := n2 * TwoPi
	y := x - m
	return y
}

// b2f mirrors the host FSLT→FCVTF sequence: a comparison producing 0/1
// converted to float64.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// SoftSin is the reference software sine matching the translated host
// sequence operation for operation.
func SoftSin(x float64) float64 {
	y := ReduceTwoPi(x)
	y2 := y * y
	acc := SinCoef[len(SinCoef)-1]
	for i := len(SinCoef) - 2; i >= 0; i-- {
		t := acc * y2
		acc = t + SinCoef[i]
	}
	r := acc * y
	return r
}

// SoftCos is the reference software cosine matching the translated host
// sequence operation for operation.
func SoftCos(x float64) float64 {
	y := ReduceTwoPi(x)
	y2 := y * y
	acc := CosCoef[len(CosCoef)-1]
	for i := len(CosCoef) - 2; i >= 0; i-- {
		t := acc * y2
		acc = t + CosCoef[i]
	}
	return acc
}

// SoftSqrt maps directly onto the host FSQRT unit.
func SoftSqrt(x float64) float64 { return math.Sqrt(x) }
