package guest

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Inst is a decoded GISA instruction. Operand meaning depends on Op:
//
//	FormR1:  R1 is the single register operand.
//	FormR:   R1 is dst (or first), R2 is src (or second). FP ops index FPRs.
//	FormI:   R1 is dst, Imm is the 32-bit immediate.
//	FormM:   R1 is the data register (GPR or FPR), R2 the base GPR, Imm disp.
//	FormMX:  R1 data reg, R2 base, R3 index, Scale in {0..3}, Imm disp.
//	FormB:   Imm is a signed displacement relative to the next instruction.
//	FormF64: R1 is the FPR, F64 the immediate.
//	FormImm: Imm is the 32-bit immediate.
type Inst struct {
	Op    Op
	R1    uint8
	R2    uint8
	R3    uint8
	Scale uint8
	Imm   int32
	F64   float64
	Size  uint8 // encoded length in bytes
}

// Len reports the encoded length of the instruction in bytes.
func (in *Inst) Len() int { return FormLen(in.Op.Desc().Form) }

// Target computes the absolute branch target of a direct branch located
// at pc. Only meaningful for FormB instructions.
func (in *Inst) Target(pc uint32) uint32 {
	return pc + uint32(in.Len()) + uint32(in.Imm)
}

// Encode appends the binary encoding of in to buf and returns the
// extended slice.
func (in *Inst) Encode(buf []byte) []byte {
	d := in.Op.Desc()
	buf = append(buf, byte(in.Op))
	switch d.Form {
	case FormN:
	case FormR1:
		buf = append(buf, in.R1)
	case FormR:
		buf = append(buf, in.R1<<4|in.R2&0xf)
	case FormI:
		buf = append(buf, in.R1)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.Imm))
	case FormM:
		buf = append(buf, in.R1<<4|in.R2&0xf)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.Imm))
	case FormMX:
		buf = append(buf, in.R1<<4|in.R2&0xf)
		buf = append(buf, in.Scale<<4|in.R3&0xf)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.Imm))
	case FormB, FormImm:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(in.Imm))
	case FormF64:
		buf = append(buf, in.R1)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(in.F64))
	}
	return buf
}

// Decode decodes one instruction from code. It returns the decoded
// instruction and the number of bytes consumed. A zero count signals an
// undecodable (truncated or illegal) instruction.
func Decode(code []byte) (Inst, int) {
	if len(code) == 0 {
		return Inst{Op: BAD}, 0
	}
	op := Op(code[0])
	if op == BAD || op >= numOps {
		return Inst{Op: BAD}, 0
	}
	d := op.Desc()
	n := FormLen(d.Form)
	if len(code) < n {
		return Inst{Op: BAD}, 0
	}
	in := Inst{Op: op, Size: uint8(n)}
	switch d.Form {
	case FormN:
	case FormR1:
		in.R1 = code[1]
		if in.R1 >= NumGPR && !d.IsFP {
			return Inst{Op: BAD}, 0
		}
	case FormR:
		in.R1 = code[1] >> 4
		in.R2 = code[1] & 0xf
		lim := uint8(NumGPR)
		if d.IsFP {
			lim = NumFPR
		}
		if in.R1 >= lim || in.R2 >= lim {
			return Inst{Op: BAD}, 0
		}
	case FormI:
		in.R1 = code[1]
		if in.R1 >= NumGPR {
			return Inst{Op: BAD}, 0
		}
		in.Imm = int32(binary.LittleEndian.Uint32(code[2:]))
	case FormM:
		in.R1 = code[1] >> 4
		in.R2 = code[1] & 0xf
		if in.R2 >= NumGPR {
			return Inst{Op: BAD}, 0
		}
		lim := uint8(NumGPR)
		if d.IsFP {
			lim = NumFPR
		}
		if in.R1 >= lim {
			return Inst{Op: BAD}, 0
		}
		in.Imm = int32(binary.LittleEndian.Uint32(code[2:]))
	case FormMX:
		in.R1 = code[1] >> 4
		in.R2 = code[1] & 0xf
		in.Scale = code[2] >> 4
		in.R3 = code[2] & 0xf
		if in.R1 >= NumGPR || in.R2 >= NumGPR || in.R3 >= NumGPR || in.Scale > 3 {
			return Inst{Op: BAD}, 0
		}
		in.Imm = int32(binary.LittleEndian.Uint32(code[3:]))
	case FormB, FormImm:
		in.Imm = int32(binary.LittleEndian.Uint32(code[1:]))
	case FormF64:
		in.R1 = code[1]
		if in.R1 >= NumFPR {
			return Inst{Op: BAD}, 0
		}
		in.F64 = math.Float64frombits(binary.LittleEndian.Uint64(code[2:]))
	}
	return in, n
}

// String renders the instruction in assembler syntax.
func (in *Inst) String() string {
	d := in.Op.Desc()
	rn := GPRName
	fn := func(r uint8) string { return fmt.Sprintf("f%d", r) }
	switch d.Form {
	case FormN:
		return d.Name
	case FormR1:
		if d.IsFP {
			return fmt.Sprintf("%s %s", d.Name, fn(in.R1))
		}
		return fmt.Sprintf("%s %s", d.Name, rn(in.R1))
	case FormR:
		if d.IsFP && in.Op != CVTIF && in.Op != CVTFI {
			return fmt.Sprintf("%s %s, %s", d.Name, fn(in.R1), fn(in.R2))
		}
		if in.Op == CVTIF {
			return fmt.Sprintf("%s %s, %s", d.Name, fn(in.R1), rn(in.R2))
		}
		if in.Op == CVTFI {
			return fmt.Sprintf("%s %s, %s", d.Name, rn(in.R1), fn(in.R2))
		}
		return fmt.Sprintf("%s %s, %s", d.Name, rn(in.R1), rn(in.R2))
	case FormI:
		return fmt.Sprintf("%s %s, %d", d.Name, rn(in.R1), in.Imm)
	case FormM:
		data := rn(in.R1)
		if d.IsFP {
			data = fn(in.R1)
		}
		if in.Op == STORE || in.Op == STOREB || in.Op == FST {
			return fmt.Sprintf("%s [%s%+d], %s", d.Name, rn(in.R2), in.Imm, data)
		}
		return fmt.Sprintf("%s %s, [%s%+d]", d.Name, data, rn(in.R2), in.Imm)
	case FormMX:
		addr := fmt.Sprintf("[%s+%s<<%d%+d]", rn(in.R2), rn(in.R3), in.Scale, in.Imm)
		if in.Op == STOREX {
			return fmt.Sprintf("%s %s, %s", d.Name, addr, rn(in.R1))
		}
		return fmt.Sprintf("%s %s, %s", d.Name, rn(in.R1), addr)
	case FormB:
		return fmt.Sprintf("%s %+d", d.Name, in.Imm)
	case FormImm:
		return fmt.Sprintf("%s %d", d.Name, in.Imm)
	case FormF64:
		return fmt.Sprintf("%s %s, %g", d.Name, fn(in.R1), in.F64)
	}
	return "bad"
}
