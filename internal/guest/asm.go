package guest

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Assemble translates GISA assembly text into a loadable Image.
//
// Syntax, one statement per line (';' starts a comment):
//
//	.org 0x1000          start a new segment at the given address
//	.entry label         set the program entry point
//	.word 1, 2, -3       emit 32-bit little-endian words
//	.byte 1, 2, 3        emit bytes
//	.f64 3.14, 2.71      emit float64 values
//	.space 256           emit zero bytes
//	label:               define a label at the current address
//	movri eax, 42        instructions, mnemonics from the opcode table
//	movri ebx, @label    '@label' is the absolute address of a label
//	load  eax, [ebx+8]   FormM memory operand
//	loadx eax, [ebx+esi<<2+8]  FormMX scaled-index operand
//	jne   label          branch to label
//
// Assembly is two-pass so forward references work.
func Assemble(src string) (*Image, error) {
	a := &asm{labels: make(map[string]uint32)}
	if err := a.run(src, true); err != nil {
		return nil, err
	}
	a.segs = nil
	a.cur = nil
	if err := a.run(src, false); err != nil {
		return nil, err
	}
	a.flush()
	im := &Image{Entry: a.entry, Segments: a.segs, Labels: a.labels}
	if !a.entrySet {
		if e, ok := a.labels["start"]; ok {
			im.Entry = e
		} else if len(im.Segments) > 0 {
			im.Entry = im.Segments[0].Addr
		}
	}
	im.Sort()
	return im, nil
}

type asm struct {
	labels   map[string]uint32
	segs     []Segment
	cur      *Segment
	pc       uint32
	entry    uint32
	entrySet bool
	pass1    bool
	line     int
}

func (a *asm) errf(format string, args ...any) error {
	return fmt.Errorf("asm: line %d: %s", a.line, fmt.Sprintf(format, args...))
}

func (a *asm) flush() {
	if a.cur != nil && len(a.cur.Data) > 0 {
		a.segs = append(a.segs, *a.cur)
	}
	a.cur = nil
}

func (a *asm) org(addr uint32) {
	a.flush()
	a.cur = &Segment{Addr: addr}
	a.pc = addr
}

func (a *asm) emit(b []byte) {
	if !a.pass1 {
		if a.cur == nil {
			a.org(a.pc)
		}
		a.cur.Data = append(a.cur.Data, b...)
	}
	a.pc += uint32(len(b))
}

func (a *asm) run(src string, pass1 bool) error {
	a.pass1 = pass1
	a.pc = 0
	a.entrySet = false
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		line := raw
		if j := strings.IndexByte(line, ';'); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// A line may carry "label: instruction".
		for {
			j := strings.IndexByte(line, ':')
			if j < 0 || strings.ContainsAny(line[:j], " \t[,") {
				break
			}
			name := line[:j]
			if pass1 {
				if _, dup := a.labels[name]; dup {
					return a.errf("duplicate label %q", name)
				}
				a.labels[name] = a.pc
			}
			line = strings.TrimSpace(line[j+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if err := a.stmt(line); err != nil {
			return err
		}
	}
	return nil
}

func (a *asm) stmt(line string) error {
	mnem := line
	rest := ""
	if j := strings.IndexAny(line, " \t"); j >= 0 {
		mnem = line[:j]
		rest = strings.TrimSpace(line[j+1:])
	}
	if strings.HasPrefix(mnem, ".") {
		return a.directive(mnem, rest)
	}
	op, ok := OpByName(mnem)
	if !ok {
		return a.errf("unknown mnemonic %q", mnem)
	}
	in, err := a.operands(op, rest)
	if err != nil {
		return err
	}
	a.emit(in.Encode(nil))
	return nil
}

func (a *asm) directive(name, rest string) error {
	switch name {
	case ".org":
		v, err := a.intVal(rest)
		if err != nil {
			return err
		}
		a.org(uint32(v))
	case ".entry":
		if !a.pass1 {
			addr, ok := a.labels[rest]
			if !ok {
				return a.errf("unknown entry label %q", rest)
			}
			a.entry = addr
		}
		a.entrySet = true
	case ".word":
		for _, f := range splitOperands(rest) {
			v, err := a.intVal(f)
			if err != nil {
				return err
			}
			var b [4]byte
			putU32(b[:], uint32(v))
			a.emit(b[:])
		}
	case ".byte":
		for _, f := range splitOperands(rest) {
			v, err := a.intVal(f)
			if err != nil {
				return err
			}
			a.emit([]byte{byte(v)})
		}
	case ".f64":
		for _, f := range splitOperands(rest) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return a.errf("bad float %q", f)
			}
			var b [8]byte
			putU64(b[:], math.Float64bits(v))
			a.emit(b[:])
		}
	case ".space":
		v, err := a.intVal(rest)
		if err != nil {
			return err
		}
		a.emit(make([]byte, v))
	default:
		return a.errf("unknown directive %q", name)
	}
	return nil
}

func (a *asm) operands(op Op, rest string) (Inst, error) {
	d := op.Desc()
	in := Inst{Op: op}
	ops := splitOperands(rest)
	need := func(n int) error {
		if len(ops) != n {
			return a.errf("%s: want %d operands, got %d", d.Name, n, len(ops))
		}
		return nil
	}
	switch d.Form {
	case FormN:
		return in, need(0)
	case FormR1:
		if err := need(1); err != nil {
			return in, err
		}
		r, err := a.gpr(ops[0])
		if err != nil {
			return in, err
		}
		in.R1 = r
		return in, nil
	case FormR:
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		in.R1, in.R2, err = a.regPair(op, ops[0], ops[1])
		return in, err
	case FormI:
		if err := need(2); err != nil {
			return in, err
		}
		r, err := a.gpr(ops[0])
		if err != nil {
			return in, err
		}
		v, err := a.immVal(ops[1])
		if err != nil {
			return in, err
		}
		in.R1, in.Imm = r, v
		return in, nil
	case FormImm:
		if err := need(1); err != nil {
			return in, err
		}
		v, err := a.immVal(ops[0])
		if err != nil {
			return in, err
		}
		in.Imm = v
		return in, nil
	case FormF64:
		if err := need(2); err != nil {
			return in, err
		}
		r, err := a.fpr(ops[0])
		if err != nil {
			return in, err
		}
		v, err := strconv.ParseFloat(ops[1], 64)
		if err != nil {
			return in, a.errf("bad float %q", ops[1])
		}
		in.R1, in.F64 = r, v
		return in, nil
	case FormB:
		if err := need(1); err != nil {
			return in, err
		}
		if a.pass1 {
			return in, nil
		}
		target, ok := a.labels[ops[0]]
		if !ok {
			v, err := a.intVal(ops[0])
			if err != nil {
				return in, a.errf("unknown label %q", ops[0])
			}
			target = uint32(v)
		}
		in.Imm = int32(target - (a.pc + uint32(FormLen(FormB))))
		return in, nil
	case FormM:
		if err := need(2); err != nil {
			return in, err
		}
		memIdx, dataIdx := 1, 0
		if op == STORE || op == STOREB || op == STOREX || op == FST {
			memIdx, dataIdx = 0, 1
		}
		var err error
		if d.IsFP {
			in.R1, err = a.fpr(ops[dataIdx])
		} else {
			in.R1, err = a.gpr(ops[dataIdx])
		}
		if err != nil {
			return in, err
		}
		base, _, _, disp, err := a.memOperand(ops[memIdx])
		if err != nil {
			return in, err
		}
		in.R2, in.Imm = base, disp
		return in, nil
	case FormMX:
		if err := need(2); err != nil {
			return in, err
		}
		memIdx, dataIdx := 1, 0
		if op == STOREX {
			memIdx, dataIdx = 0, 1
		}
		r, err := a.gpr(ops[dataIdx])
		if err != nil {
			return in, err
		}
		base, index, scale, disp, err := a.memOperand(ops[memIdx])
		if err != nil {
			return in, err
		}
		in.R1, in.R2, in.R3, in.Scale, in.Imm = r, base, index, scale, disp
		return in, nil
	}
	return in, a.errf("unsupported form for %s", d.Name)
}

func (a *asm) regPair(op Op, s1, s2 string) (r1, r2 uint8, err error) {
	d := op.Desc()
	switch {
	case op == CVTIF:
		if r1, err = a.fpr(s1); err != nil {
			return
		}
		r2, err = a.gpr(s2)
	case op == CVTFI:
		if r1, err = a.gpr(s1); err != nil {
			return
		}
		r2, err = a.fpr(s2)
	case d.IsFP:
		if r1, err = a.fpr(s1); err != nil {
			return
		}
		r2, err = a.fpr(s2)
	default:
		if r1, err = a.gpr(s1); err != nil {
			return
		}
		r2, err = a.gpr(s2)
	}
	return
}

// memOperand parses "[base]", "[base+disp]", "[base+index<<scale+disp]".
func (a *asm) memOperand(s string) (base, index, scale uint8, disp int32, err error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		err = a.errf("bad memory operand %q", s)
		return
	}
	inner := s[1 : len(s)-1]
	// Split on '+' and '-' keeping sign on displacement.
	parts := splitAddr(inner)
	if len(parts) == 0 {
		err = a.errf("empty memory operand %q", s)
		return
	}
	base, err = a.gpr(parts[0])
	if err != nil {
		return
	}
	for _, p := range parts[1:] {
		if j := strings.Index(p, "<<"); j >= 0 {
			index, err = a.gpr(p[:j])
			if err != nil {
				return
			}
			var sc int64
			sc, err = a.intVal(p[j+2:])
			if err != nil || sc < 0 || sc > 3 {
				err = a.errf("bad scale in %q", s)
				return
			}
			scale = uint8(sc)
			continue
		}
		if r, rerr := a.gprLookup(p); rerr == nil {
			index = r
			continue
		}
		var v int64
		v, err = a.intVal(p)
		if err != nil {
			return
		}
		disp += int32(v)
	}
	return
}

// splitAddr splits "ebx+esi<<2-8" into ["ebx", "esi<<2", "-8"].
func splitAddr(s string) []string {
	var out []string
	start := 0
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			out = append(out, s[start:i])
			if s[i] == '+' {
				start = i + 1
			} else {
				start = i
			}
		}
	}
	out = append(out, s[start:])
	for i := range out {
		out[i] = strings.TrimSpace(out[i])
	}
	return out
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	// Split on commas outside brackets.
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func (a *asm) gprLookup(s string) (uint8, error) {
	for i, n := range gprNames {
		if s == n {
			return uint8(i), nil
		}
	}
	return 0, fmt.Errorf("not a register")
}

func (a *asm) gpr(s string) (uint8, error) {
	r, err := a.gprLookup(s)
	if err != nil {
		return 0, a.errf("bad register %q", s)
	}
	return r, nil
}

func (a *asm) fpr(s string) (uint8, error) {
	if len(s) >= 2 && s[0] == 'f' {
		if v, err := strconv.Atoi(s[1:]); err == nil && v >= 0 && v < NumFPR {
			return uint8(v), nil
		}
	}
	return 0, a.errf("bad fp register %q", s)
}

func (a *asm) intVal(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, a.errf("bad integer %q", s)
	}
	return v, nil
}

// immVal parses an integer immediate or '@label' absolute address.
func (a *asm) immVal(s string) (int32, error) {
	if strings.HasPrefix(s, "@") {
		if a.pass1 {
			return 0, nil
		}
		addr, ok := a.labels[s[1:]]
		if !ok {
			return 0, a.errf("unknown label %q", s[1:])
		}
		return int32(addr), nil
	}
	v, err := a.intVal(s)
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint32 || v < math.MinInt32 {
		return 0, a.errf("immediate %d out of range", v)
	}
	return int32(uint32(v)), nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
