package guest

import (
	"strings"
	"testing"
)

func TestAssembleBasic(t *testing.T) {
	im, err := Assemble(`
.org 0x1000
start:
    movri eax, 42
    addri eax, -1
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if im.Entry != 0x1000 {
		t.Errorf("entry %#x", im.Entry)
	}
	if len(im.Segments) != 1 || im.Segments[0].Addr != 0x1000 {
		t.Fatalf("segments %+v", im.Segments)
	}
	in, n := Decode(im.Segments[0].Data)
	if n == 0 || in.Op != MOVri || in.R1 != EAX || in.Imm != 42 {
		t.Errorf("first inst %+v", in)
	}
}

func TestAssembleForwardBackLabels(t *testing.T) {
	im, err := Assemble(`
.org 0x1000
top:
    jmp fwd
mid:
    jmp top
fwd:
    jmp mid
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	code := im.Segments[0].Data
	// jmp fwd at 0x1000: fwd is at 0x1000+10.
	in, _ := Decode(code)
	if in.Target(0x1000) != 0x100A {
		t.Errorf("forward target %#x", in.Target(0x1000))
	}
	// jmp top at 0x1005.
	in, _ = Decode(code[5:])
	if in.Target(0x1005) != 0x1000 {
		t.Errorf("backward target %#x", in.Target(0x1005))
	}
}

func TestAssembleMemOperands(t *testing.T) {
	im, err := Assemble(`
.org 0
    load eax, [ebx+8]
    store [ebp-4], ecx
    loadx edx, [esi+edi<<2+16]
    storex [ebx+ecx<<3-8], eax
    lea eax, [ebx+esi<<1+100]
    fld f2, [ebx+24]
    fst [ebx+32], f3
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	code := im.Segments[0].Data
	in, n := Decode(code)
	if in.Op != LOAD || in.R1 != EAX || in.R2 != EBX || in.Imm != 8 {
		t.Errorf("load: %+v", in)
	}
	code = code[n:]
	in, n = Decode(code)
	if in.Op != STORE || in.R1 != ECX || in.R2 != EBP || in.Imm != -4 {
		t.Errorf("store: %+v", in)
	}
	code = code[n:]
	in, n = Decode(code)
	if in.Op != LOADX || in.R1 != EDX || in.R2 != ESI || in.R3 != EDI || in.Scale != 2 || in.Imm != 16 {
		t.Errorf("loadx: %+v", in)
	}
	code = code[n:]
	in, n = Decode(code)
	if in.Op != STOREX || in.R1 != EAX || in.R2 != EBX || in.R3 != ECX || in.Scale != 3 || in.Imm != -8 {
		t.Errorf("storex: %+v", in)
	}
	code = code[n:]
	in, n = Decode(code)
	if in.Op != LEA || in.Imm != 100 || in.Scale != 1 {
		t.Errorf("lea: %+v", in)
	}
	code = code[n:]
	in, n = Decode(code)
	if in.Op != FLD || in.R1 != 2 || in.R2 != EBX || in.Imm != 24 {
		t.Errorf("fld: %+v", in)
	}
	code = code[n:]
	in, _ = Decode(code)
	if in.Op != FST || in.R1 != 3 || in.Imm != 32 {
		t.Errorf("fst: %+v", in)
	}
}

func TestAssembleDirectives(t *testing.T) {
	im, err := Assemble(`
.org 0x2000
data:
    .word 1, -2, 0x30
    .byte 9, 10
    .f64 1.5
    .space 3
end:
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	d := im.Segments[0].Data
	if len(d) != 12+2+8+3+1 {
		t.Fatalf("data length %d", len(d))
	}
	if d[0] != 1 || d[4] != 0xFE || d[8] != 0x30 {
		t.Errorf("words: % x", d[:12])
	}
	if d[12] != 9 || d[13] != 10 {
		t.Errorf("bytes: % x", d[12:14])
	}
	if im.Labels["end"] != 0x2000+25 {
		t.Errorf("end label %#x", im.Labels["end"])
	}
}

func TestAssembleLabelImmediate(t *testing.T) {
	im, err := Assemble(`
.org 0x1000
start:
    movri eax, @target
    jmpr eax
target:
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := Decode(im.Segments[0].Data)
	if uint32(in.Imm) != im.Labels["target"] {
		t.Errorf("@label immediate %#x want %#x", in.Imm, im.Labels["target"])
	}
}

func TestAssembleEntryDirective(t *testing.T) {
	im, err := Assemble(`
.org 0x1000
first: nop
main:  halt
.entry main
`)
	if err != nil {
		t.Fatal(err)
	}
	if im.Entry != im.Labels["main"] {
		t.Errorf("entry %#x want %#x", im.Entry, im.Labels["main"])
	}
}

func TestAssembleMultipleSegments(t *testing.T) {
	im, err := Assemble(`
.org 0x5000
    .word 5
.org 0x1000
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Segments) != 2 {
		t.Fatalf("segments: %d", len(im.Segments))
	}
	// Sorted by address.
	if im.Segments[0].Addr != 0x1000 || im.Segments[1].Addr != 0x5000 {
		t.Errorf("segment order: %#x %#x", im.Segments[0].Addr, im.Segments[1].Addr)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"frob eax", "unknown mnemonic"},
		{"movri r9, 1", "bad register"},
		{"movri eax", "want 2 operands"},
		{"jmp nowhere", "unknown label"},
		{"dup: nop\ndup: nop", "duplicate label"},
		{".bogus 1", "unknown directive"},
		{"movri eax, zzz", "bad integer"},
		{"fldi f9, 1.0", "bad fp register"},
		{"load eax, ebx", "bad memory operand"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) err = %v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestAssembleCommentsAndLabelsOnOneLine(t *testing.T) {
	im, err := Assemble("start: nop ; trailing comment\n  halt ; done")
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Segments[0].Data) != 2 {
		t.Errorf("code bytes %d", len(im.Segments[0].Data))
	}
}

// TestAssembleDisassembleRoundTrip re-assembles the disassembly of
// straight-line code.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
.org 0
    movri eax, 7
    addrr eax, ebx
    subri ecx, -9
    shlri edx, 3
    push esi
    pop edi
    fadd f0, f1
    cvtif f2, eax
    cvtfi ebx, f3
    halt
`
	im, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	code := im.Segments[0].Data
	var lines []string
	for len(code) > 0 {
		in, n := Decode(code)
		if n == 0 {
			t.Fatalf("decode failed at % x", code)
		}
		lines = append(lines, in.String())
		code = code[n:]
	}
	im2, err := Assemble(".org 0\n" + strings.Join(lines, "\n"))
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, strings.Join(lines, "\n"))
	}
	if string(im2.Segments[0].Data) != string(im.Segments[0].Data) {
		t.Fatalf("roundtrip bytes differ\n%s", strings.Join(lines, "\n"))
	}
}
