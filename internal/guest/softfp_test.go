package guest

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSoftSinAccuracy bounds the polynomial error against math.Sin over
// the primary range.
func TestSoftSinAccuracy(t *testing.T) {
	for x := -20.0; x <= 20.0; x += 0.0137 {
		got := SoftSin(x)
		want := math.Sin(x)
		if math.Abs(got-want) > 1e-7 {
			t.Fatalf("SoftSin(%g) = %g, want %g (err %g)", x, got, want, got-want)
		}
	}
}

func TestSoftCosAccuracy(t *testing.T) {
	for x := -20.0; x <= 20.0; x += 0.0171 {
		got := SoftCos(x)
		want := math.Cos(x)
		if math.Abs(got-want) > 1e-7 {
			t.Fatalf("SoftCos(%g) = %g, want %g (err %g)", x, got, want, got-want)
		}
	}
}

// TestReduceTwoPiRange: reduction lands in (-2π, 2π) for finite inputs
// within the int32-quotient range.
func TestReduceTwoPiRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 1e9 {
			return true
		}
		y := ReduceTwoPi(x)
		return y >= -TwoPi/2-1e-9 && y <= TwoPi/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestSoftTrigDeterminism: repeated evaluation is bit-identical (the
// translated host sequence depends on it).
func TestSoftTrigDeterminism(t *testing.T) {
	inputs := []float64{0, 1, -1, 3.14159, 1e6, -1e6, 1e300, math.Inf(1), math.NaN(), 0.5, 123.456}
	for _, x := range inputs {
		a, b := SoftSin(x), SoftSin(x)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("SoftSin(%g) nondeterministic", x)
		}
		c, d := SoftCos(x), SoftCos(x)
		if math.Float64bits(c) != math.Float64bits(d) {
			t.Errorf("SoftCos(%g) nondeterministic", x)
		}
	}
}

func TestSoftSqrt(t *testing.T) {
	if SoftSqrt(144) != 12 {
		t.Errorf("sqrt(144) = %g", SoftSqrt(144))
	}
	if !math.IsNaN(SoftSqrt(-1)) {
		t.Errorf("sqrt(-1) should be NaN")
	}
}
