package guest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sliceMem is a trivial guest.Memory for semantic tests.
type sliceMem map[uint32]byte

func (m sliceMem) Load8(a uint32) (uint8, error)  { return m[a], nil }
func (m sliceMem) Store8(a uint32, v uint8) error { m[a] = v; return nil }
func (m sliceMem) Load32(a uint32) (uint32, error) {
	return uint32(m[a]) | uint32(m[a+1])<<8 | uint32(m[a+2])<<16 | uint32(m[a+3])<<24, nil
}
func (m sliceMem) Store32(a uint32, v uint32) error {
	m[a], m[a+1], m[a+2], m[a+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return nil
}
func (m sliceMem) Load64(a uint32) (uint64, error) {
	lo, _ := m.Load32(a)
	hi, _ := m.Load32(a + 4)
	return uint64(hi)<<32 | uint64(lo), nil
}
func (m sliceMem) Store64(a uint32, v uint64) error {
	m.Store32(a, uint32(v))
	return m.Store32(a+4, uint32(v>>32))
}

// step executes one instruction on a fresh CPU prepared by setup.
func step(t *testing.T, in Inst, setup func(*CPU, sliceMem)) (*CPU, sliceMem) {
	t.Helper()
	cpu := &CPU{EIP: 0x1000}
	cpu.R[ESP] = 0x9000
	mem := sliceMem{}
	if setup != nil {
		setup(cpu, mem)
	}
	if _, err := Step(cpu, mem, &in); err != nil {
		t.Fatalf("step %v: %v", &in, err)
	}
	return cpu, mem
}

func TestAddFlags(t *testing.T) {
	cases := []struct {
		a, b  uint32
		sum   uint32
		flags uint32
	}{
		{1, 2, 3, parity(3)},
		{0, 0, 0, FlagZF | FlagPF},
		{0xFFFFFFFF, 1, 0, FlagZF | FlagCF | FlagPF},
		{0x7FFFFFFF, 1, 0x80000000, FlagSF | FlagOF | parity(0x80000000)},
		{0x80000000, 0x80000000, 0, FlagZF | FlagCF | FlagOF | FlagPF},
		{0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFE, FlagSF | FlagCF | parity(0xFE)},
	}
	for _, c := range cases {
		cpu, _ := step(t, Inst{Op: ADDrr, R1: EAX, R2: EBX}, func(cpu *CPU, _ sliceMem) {
			cpu.R[EAX], cpu.R[EBX] = c.a, c.b
		})
		if cpu.R[EAX] != c.sum {
			t.Errorf("add %#x+%#x = %#x, want %#x", c.a, c.b, cpu.R[EAX], c.sum)
		}
		if cpu.Flags != c.flags {
			t.Errorf("add %#x+%#x flags %05b, want %05b", c.a, c.b, cpu.Flags, c.flags)
		}
	}
}

func TestSubCmpFlags(t *testing.T) {
	cases := []struct {
		a, b  uint32
		diff  uint32
		flags uint32
	}{
		{5, 3, 2, 0},
		{3, 5, 0xFFFFFFFE, FlagCF | FlagSF | parity(0xFE)},
		{0, 0, 0, FlagZF | FlagPF},
		{0x80000000, 1, 0x7FFFFFFF, FlagOF | parity(0xFF)},
		{0x7FFFFFFF, 0xFFFFFFFF, 0x80000000, FlagCF | FlagSF | FlagOF | parity(0)},
	}
	for _, c := range cases {
		cpu, _ := step(t, Inst{Op: SUBrr, R1: EAX, R2: EBX}, func(cpu *CPU, _ sliceMem) {
			cpu.R[EAX], cpu.R[EBX] = c.a, c.b
		})
		if cpu.R[EAX] != c.diff {
			t.Errorf("sub %#x-%#x = %#x, want %#x", c.a, c.b, cpu.R[EAX], c.diff)
		}
		if cpu.Flags != c.flags {
			t.Errorf("sub %#x-%#x flags %05b want %05b", c.a, c.b, cpu.Flags, c.flags)
		}
		// CMP computes the same flags without the writeback.
		cpu2, _ := step(t, Inst{Op: CMPrr, R1: EAX, R2: EBX}, func(cpu *CPU, _ sliceMem) {
			cpu.R[EAX], cpu.R[EBX] = c.a, c.b
		})
		if cpu2.R[EAX] != c.a {
			t.Errorf("cmp modified its operand")
		}
		if cpu2.Flags != c.flags {
			t.Errorf("cmp flags %05b want %05b", cpu2.Flags, c.flags)
		}
	}
}

// TestSignedCompareProperty: after CMP a,b the JL/JGE/JG/JLE conditions
// must agree with Go's signed comparison.
func TestSignedCompareProperty(t *testing.T) {
	f := func(a, b int32) bool {
		cpu := &CPU{}
		cpu.R[EAX], cpu.R[EBX] = uint32(a), uint32(b)
		in := Inst{Op: CMPrr, R1: EAX, R2: EBX}
		mem := sliceMem{}
		if _, err := Step(cpu, mem, &in); err != nil {
			return false
		}
		return CondTaken(JL, cpu.Flags) == (a < b) &&
			CondTaken(JGE, cpu.Flags) == (a >= b) &&
			CondTaken(JG, cpu.Flags) == (a > b) &&
			CondTaken(JLE, cpu.Flags) == (a <= b) &&
			CondTaken(JE, cpu.Flags) == (a == b) &&
			CondTaken(JNE, cpu.Flags) == (a != b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestUnsignedCompareProperty covers JB/JAE.
func TestUnsignedCompareProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		cpu := &CPU{}
		cpu.R[EAX], cpu.R[EBX] = a, b
		in := Inst{Op: CMPrr, R1: EAX, R2: EBX}
		if _, err := Step(cpu, sliceMem{}, &in); err != nil {
			return false
		}
		return CondTaken(JB, cpu.Flags) == (a < b) &&
			CondTaken(JAE, cpu.Flags) == (a >= b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestLogicClearsCFOF(t *testing.T) {
	cpu, _ := step(t, Inst{Op: ANDrr, R1: EAX, R2: EBX}, func(cpu *CPU, _ sliceMem) {
		cpu.Flags = FlagCF | FlagOF
		cpu.R[EAX], cpu.R[EBX] = 0xF0F0, 0x0FF0
	})
	if cpu.R[EAX] != 0x0F0 {
		t.Errorf("and = %#x", cpu.R[EAX])
	}
	if cpu.Flags&(FlagCF|FlagOF) != 0 {
		t.Errorf("logic must clear CF/OF: %05b", cpu.Flags)
	}
}

func TestShiftFlags(t *testing.T) {
	// SHL by 1 out of the top bit sets CF and OF.
	cpu, _ := step(t, Inst{Op: SHLri, R1: EAX, Imm: 1}, func(cpu *CPU, _ sliceMem) {
		cpu.R[EAX] = 0x80000001
	})
	if cpu.R[EAX] != 2 {
		t.Errorf("shl result %#x", cpu.R[EAX])
	}
	if cpu.Flags&FlagCF == 0 || cpu.Flags&FlagOF == 0 {
		t.Errorf("shl flags %05b", cpu.Flags)
	}
	// Shift by 0 computes SZP of the unchanged value with CF=OF=0.
	cpu, _ = step(t, Inst{Op: SHRri, R1: EAX, Imm: 0}, func(cpu *CPU, _ sliceMem) {
		cpu.R[EAX] = 0x80000000
		cpu.Flags = FlagCF
	})
	if cpu.Flags != FlagSF|parity(0) {
		t.Errorf("zero shift flags %05b", cpu.Flags)
	}
	// SAR keeps the sign.
	cpu, _ = step(t, Inst{Op: SARri, R1: EAX, Imm: 4}, func(cpu *CPU, _ sliceMem) {
		cpu.R[EAX] = 0xFFFFFF00
	})
	if cpu.R[EAX] != 0xFFFFFFF0 {
		t.Errorf("sar result %#x", cpu.R[EAX])
	}
	// Shift amounts are masked to 5 bits.
	cpu, _ = step(t, Inst{Op: SHLrr, R1: EAX, R2: ECX}, func(cpu *CPU, _ sliceMem) {
		cpu.R[EAX], cpu.R[ECX] = 1, 33
	})
	if cpu.R[EAX] != 2 {
		t.Errorf("shift count must mask to 5 bits: %#x", cpu.R[EAX])
	}
}

func TestIMULOverflow(t *testing.T) {
	cpu, _ := step(t, Inst{Op: IMULrr, R1: EAX, R2: EBX}, func(cpu *CPU, _ sliceMem) {
		cpu.R[EAX], cpu.R[EBX] = 0x10000, 0x10000
	})
	if cpu.R[EAX] != 0 {
		t.Errorf("imul wrap %#x", cpu.R[EAX])
	}
	if cpu.Flags&FlagCF == 0 || cpu.Flags&FlagOF == 0 {
		t.Errorf("imul overflow flags %05b", cpu.Flags)
	}
	cpu, _ = step(t, Inst{Op: IMULri, R1: EAX, Imm: -3}, func(cpu *CPU, _ sliceMem) {
		cpu.R[EAX] = 7
	})
	if int32(cpu.R[EAX]) != -21 {
		t.Errorf("imul small %d", int32(cpu.R[EAX]))
	}
	if cpu.Flags&(FlagCF|FlagOF) != 0 {
		t.Errorf("no overflow expected: %05b", cpu.Flags)
	}
}

func TestIDIVSpecialCases(t *testing.T) {
	// Normal division: EAX/r -> quotient EAX, remainder EDX.
	cpu, _ := step(t, Inst{Op: IDIV, R1: EBX}, func(cpu *CPU, _ sliceMem) {
		cpu.R[EAX], cpu.R[EBX] = 17, 5
	})
	if cpu.R[EAX] != 3 || cpu.R[EDX] != 2 {
		t.Errorf("17/5 = %d rem %d", cpu.R[EAX], cpu.R[EDX])
	}
	// Negative dividend truncates toward zero.
	cpu, _ = step(t, Inst{Op: IDIV, R1: EBX}, func(cpu *CPU, _ sliceMem) {
		neg17 := int32(-17)
		cpu.R[EAX], cpu.R[EBX] = uint32(neg17), 5
	})
	if int32(cpu.R[EAX]) != -3 || int32(cpu.R[EDX]) != -2 {
		t.Errorf("-17/5 = %d rem %d", int32(cpu.R[EAX]), int32(cpu.R[EDX]))
	}
	// Division by zero is deterministic, not a trap.
	cpu, _ = step(t, Inst{Op: IDIV, R1: EBX}, func(cpu *CPU, _ sliceMem) {
		cpu.R[EAX], cpu.R[EBX] = 42, 0
	})
	if cpu.R[EAX] != 0xFFFFFFFF || cpu.R[EDX] != 42 {
		t.Errorf("div0: q=%#x r=%d", cpu.R[EAX], cpu.R[EDX])
	}
	// MinInt32 / -1 saturates.
	cpu, _ = step(t, Inst{Op: IDIV, R1: EBX}, func(cpu *CPU, _ sliceMem) {
		cpu.R[EAX], cpu.R[EBX] = 0x80000000, 0xFFFFFFFF
	})
	if cpu.R[EAX] != 0x80000000 || cpu.R[EDX] != 0 {
		t.Errorf("minint/-1: q=%#x r=%d", cpu.R[EAX], cpu.R[EDX])
	}
}

func TestIncDecPreserveCF(t *testing.T) {
	cpu, _ := step(t, Inst{Op: INC, R1: EAX}, func(cpu *CPU, _ sliceMem) {
		cpu.Flags = FlagCF
		cpu.R[EAX] = 0x7FFFFFFF
	})
	if cpu.Flags&FlagCF == 0 {
		t.Errorf("inc must preserve CF")
	}
	if cpu.Flags&FlagOF == 0 {
		t.Errorf("inc of 0x7FFFFFFF must set OF")
	}
	cpu, _ = step(t, Inst{Op: DEC, R1: EAX}, func(cpu *CPU, _ sliceMem) {
		cpu.Flags = FlagCF
		cpu.R[EAX] = 0x80000000
	})
	if cpu.Flags&FlagCF == 0 || cpu.Flags&FlagOF == 0 {
		t.Errorf("dec flags %05b", cpu.Flags)
	}
}

func TestAdcSbbChain(t *testing.T) {
	// 64-bit add via ADD + ADC: (2^32-1,1) + (1,0) = (0, 2).
	cpu, _ := step(t, Inst{Op: ADDrr, R1: EAX, R2: EBX}, func(cpu *CPU, _ sliceMem) {
		cpu.R[EAX], cpu.R[EBX] = 0xFFFFFFFF, 1
	})
	if cpu.Flags&FlagCF == 0 {
		t.Fatalf("no carry")
	}
	in := Inst{Op: ADCrr, R1: ECX, R2: EDX}
	cpu.R[ECX], cpu.R[EDX] = 1, 0
	if _, err := Step(cpu, sliceMem{}, &in); err != nil {
		t.Fatal(err)
	}
	if cpu.R[ECX] != 2 {
		t.Errorf("adc result %d", cpu.R[ECX])
	}
	// SBB with borrow.
	cpu2, _ := step(t, Inst{Op: SUBrr, R1: EAX, R2: EBX}, func(cpu *CPU, _ sliceMem) {
		cpu.R[EAX], cpu.R[EBX] = 0, 1 // borrow out
	})
	in = Inst{Op: SBBrr, R1: ECX, R2: EDX}
	cpu2.R[ECX], cpu2.R[EDX] = 5, 2
	if _, err := Step(cpu2, sliceMem{}, &in); err != nil {
		t.Fatal(err)
	}
	if cpu2.R[ECX] != 2 { // 5 - 2 - 1
		t.Errorf("sbb result %d", cpu2.R[ECX])
	}
}

func TestNegNot(t *testing.T) {
	cpu, _ := step(t, Inst{Op: NEG, R1: EAX}, func(cpu *CPU, _ sliceMem) { cpu.R[EAX] = 5 })
	if int32(cpu.R[EAX]) != -5 || cpu.Flags&FlagCF == 0 {
		t.Errorf("neg 5: %d flags %05b", int32(cpu.R[EAX]), cpu.Flags)
	}
	cpu, _ = step(t, Inst{Op: NEG, R1: EAX}, nil)
	if cpu.R[EAX] != 0 || cpu.Flags&FlagCF != 0 {
		t.Errorf("neg 0 must clear CF")
	}
	cpu, _ = step(t, Inst{Op: NOT, R1: EAX}, func(cpu *CPU, _ sliceMem) { cpu.R[EAX] = 0xF0F0F0F0 })
	if cpu.R[EAX] != 0x0F0F0F0F {
		t.Errorf("not %#x", cpu.R[EAX])
	}
}

func TestPushPopCallRet(t *testing.T) {
	cpu, mem := step(t, Inst{Op: PUSH, R1: EAX}, func(cpu *CPU, _ sliceMem) { cpu.R[EAX] = 0xDEAD })
	if cpu.R[ESP] != 0x9000-4 {
		t.Errorf("esp %#x", cpu.R[ESP])
	}
	v, _ := mem.Load32(cpu.R[ESP])
	if v != 0xDEAD {
		t.Errorf("pushed %#x", v)
	}
	in := Inst{Op: POP, R1: EBX}
	if _, err := Step(cpu, mem, &in); err != nil {
		t.Fatal(err)
	}
	if cpu.R[EBX] != 0xDEAD || cpu.R[ESP] != 0x9000 {
		t.Errorf("pop %#x esp %#x", cpu.R[EBX], cpu.R[ESP])
	}

	// CALL pushes the return address and jumps.
	cpu, mem = step(t, Inst{Op: CALL, Imm: 0x100}, nil)
	want := uint32(0x1000 + 5 + 0x100)
	if cpu.EIP != want {
		t.Errorf("call eip %#x want %#x", cpu.EIP, want)
	}
	ret, _ := mem.Load32(cpu.R[ESP])
	if ret != 0x1005 {
		t.Errorf("return addr %#x", ret)
	}
	in = Inst{Op: RET}
	if _, err := Step(cpu, mem, &in); err != nil {
		t.Fatal(err)
	}
	if cpu.EIP != 0x1005 || cpu.R[ESP] != 0x9000 {
		t.Errorf("ret eip %#x esp %#x", cpu.EIP, cpu.R[ESP])
	}
}

func TestPopIntoESP(t *testing.T) {
	cpu, _ := step(t, Inst{Op: POP, R1: ESP}, func(cpu *CPU, mem sliceMem) {
		mem.Store32(0x9000, 0x1234)
	})
	if cpu.R[ESP] != 0x1234 {
		t.Errorf("pop esp = %#x, want popped value to win", cpu.R[ESP])
	}
}

func TestIndexedAddressing(t *testing.T) {
	cpu, mem := step(t, Inst{Op: STOREX, R1: EAX, R2: EBX, R3: ECX, Scale: 2, Imm: 8},
		func(cpu *CPU, _ sliceMem) {
			cpu.R[EAX] = 77
			cpu.R[EBX] = 0x100
			cpu.R[ECX] = 3
		})
	v, _ := mem.Load32(0x100 + 3*4 + 8)
	if v != 77 {
		t.Errorf("storex missed: %d", v)
	}
	in := Inst{Op: LOADX, R1: EDX, R2: EBX, R3: ECX, Scale: 2, Imm: 8}
	if _, err := Step(cpu, mem, &in); err != nil {
		t.Fatal(err)
	}
	if cpu.R[EDX] != 77 {
		t.Errorf("loadx %d", cpu.R[EDX])
	}
	// LEA computes without touching memory.
	cpu, _ = step(t, Inst{Op: LEA, R1: EAX, R2: EBX, R3: ECX, Scale: 3, Imm: -4},
		func(cpu *CPU, _ sliceMem) {
			cpu.R[EBX], cpu.R[ECX] = 0x1000, 2
		})
	if cpu.R[EAX] != 0x1000+16-4 {
		t.Errorf("lea %#x", cpu.R[EAX])
	}
}

func TestStringOps(t *testing.T) {
	cpu, mem := step(t, Inst{Op: MOVS}, func(cpu *CPU, mem sliceMem) {
		for i := uint32(0); i < 8; i++ {
			mem[0x200+i] = byte('a' + i)
		}
		cpu.R[ESI], cpu.R[EDI], cpu.R[ECX] = 0x200, 0x300, 8
	})
	if cpu.R[ECX] != 0 || cpu.R[ESI] != 0x208 || cpu.R[EDI] != 0x308 {
		t.Errorf("movs regs: ecx=%d esi=%#x edi=%#x", cpu.R[ECX], cpu.R[ESI], cpu.R[EDI])
	}
	for i := uint32(0); i < 8; i++ {
		if mem[0x300+i] != byte('a'+i) {
			t.Errorf("movs byte %d = %c", i, mem[0x300+i])
		}
	}
	cpu, mem = step(t, Inst{Op: STOS}, func(cpu *CPU, _ sliceMem) {
		cpu.R[EAX] = 0x5A
		cpu.R[EDI], cpu.R[ECX] = 0x400, 4
	})
	for i := uint32(0); i < 4; i++ {
		if mem[0x400+i] != 0x5A {
			t.Errorf("stos byte %d = %#x", i, mem[0x400+i])
		}
	}
	// ECX = 0 is a no-op.
	cpu, _ = step(t, Inst{Op: MOVS}, func(cpu *CPU, _ sliceMem) {
		cpu.R[ECX] = 0
		cpu.R[ESI], cpu.R[EDI] = 0x200, 0x300
	})
	if cpu.R[ESI] != 0x200 || cpu.R[EDI] != 0x300 {
		t.Errorf("movs with ecx=0 moved pointers")
	}
}

func TestFPOps(t *testing.T) {
	cpu, _ := step(t, Inst{Op: FADD, R1: 0, R2: 1}, func(cpu *CPU, _ sliceMem) {
		cpu.F[0], cpu.F[1] = 1.5, 2.25
	})
	if cpu.F[0] != 3.75 {
		t.Errorf("fadd %g", cpu.F[0])
	}
	cpu, _ = step(t, Inst{Op: FSQRT, R1: 2, R2: 3}, func(cpu *CPU, _ sliceMem) {
		cpu.F[3] = 16
	})
	if cpu.F[2] != 4 {
		t.Errorf("fsqrt %g", cpu.F[2])
	}
	// FCMP flag encodings.
	check := func(a, b float64, want uint32) {
		cpu, _ := step(t, Inst{Op: FCMP, R1: 0, R2: 1}, func(cpu *CPU, _ sliceMem) {
			cpu.F[0], cpu.F[1] = a, b
		})
		if cpu.Flags != want {
			t.Errorf("fcmp(%g,%g) flags %05b want %05b", a, b, cpu.Flags, want)
		}
	}
	check(1, 2, FlagCF)
	check(2, 1, 0)
	check(2, 2, FlagZF)
	check(math.NaN(), 1, FlagZF|FlagCF|FlagPF)
}

func TestCVTSaturation(t *testing.T) {
	cases := []struct {
		f float64
		i int32
	}{
		{1.9, 1},
		{-1.9, -1},
		{3e9, math.MinInt32},
		{-3e9, math.MinInt32},
		{math.NaN(), math.MinInt32},
		{2147483647, 2147483647},
	}
	for _, c := range cases {
		cpu, _ := step(t, Inst{Op: CVTFI, R1: EAX, R2: 1}, func(cpu *CPU, _ sliceMem) {
			cpu.F[1] = c.f
		})
		if int32(cpu.R[EAX]) != c.i {
			t.Errorf("cvtfi(%g) = %d, want %d", c.f, int32(cpu.R[EAX]), c.i)
		}
	}
	cpu, _ := step(t, Inst{Op: CVTIF, R1: 2, R2: EBX}, func(cpu *CPU, _ sliceMem) {
		neg7 := int32(-7)
		cpu.R[EBX] = uint32(neg7)
	})
	if cpu.F[2] != -7 {
		t.Errorf("cvtif %g", cpu.F[2])
	}
}

func TestCondBranches(t *testing.T) {
	for _, op := range []Op{JE, JNE, JL, JLE, JG, JGE, JB, JAE} {
		for _, taken := range []bool{true, false} {
			var flags uint32
			// Find a flag word with the desired outcome.
			found := false
			for f := uint32(0); f < 32; f++ {
				if CondTaken(op, f) == taken {
					flags = f
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%v: no flag pattern for taken=%v", op, taken)
			}
			cpu, _ := step(t, Inst{Op: op, Imm: 0x20}, func(cpu *CPU, _ sliceMem) {
				cpu.Flags = flags
			})
			want := uint32(0x1005)
			if taken {
				want = 0x1005 + 0x20
			}
			if cpu.EIP != want {
				t.Errorf("%v taken=%v: eip %#x want %#x", op, taken, cpu.EIP, want)
			}
		}
	}
}

func TestHaltSyscallEvents(t *testing.T) {
	cpu := &CPU{EIP: 0x1000}
	in := Inst{Op: HALT}
	ev, err := Step(cpu, sliceMem{}, &in)
	if err != nil || ev != EvHalt {
		t.Errorf("halt: ev=%v err=%v", ev, err)
	}
	in = Inst{Op: SYSCALL}
	ev, err = Step(cpu, sliceMem{}, &in)
	if err != nil || ev != EvSyscall {
		t.Errorf("syscall: ev=%v err=%v", ev, err)
	}
}

// TestStepDeterminism runs random instructions twice from identical
// state and requires identical results.
func TestStepDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		in := randInst(r)
		var c1, c2 CPU
		for j := range c1.R {
			c1.R[j] = r.Uint32()
		}
		c1.R[ESP] = 0x8000 + r.Uint32()%0x1000
		for j := range c1.F {
			c1.F[j] = r.Float64() * 100
		}
		c1.Flags = r.Uint32() & AllFlags
		c1.EIP = 0x1000
		if in.Op == MOVS || in.Op == STOS {
			c1.R[ECX] &= 0xFF // bounded work
		}
		c2 = c1
		m1, m2 := sliceMem{}, sliceMem{}
		_, err1 := Step(&c1, m1, &in)
		_, err2 := Step(&c2, m2, &in)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%v: error divergence", &in)
		}
		if c1 != c2 {
			t.Fatalf("%v: state divergence", &in)
		}
	}
}
