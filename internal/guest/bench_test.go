package guest

import (
	"math/rand"
	"testing"
)

func BenchmarkDecode(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var bufs [][]byte
	for i := 0; i < 256; i++ {
		in := randInst(r)
		bufs = append(bufs, in.Encode(nil))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(bufs[i%len(bufs)])
	}
}

func BenchmarkStepALU(b *testing.B) {
	cpu := &CPU{}
	cpu.R[EAX], cpu.R[EBX] = 7, 9
	mem := sliceMem{}
	in := Inst{Op: ADDrr, R1: EAX, R2: EBX}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.EIP = 0x1000
		Step(cpu, mem, &in)
	}
}

func BenchmarkStepMemory(b *testing.B) {
	cpu := &CPU{}
	cpu.R[EBX] = 0x100
	mem := sliceMem{}
	in := Inst{Op: LOAD, R1: EAX, R2: EBX, Imm: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.EIP = 0x1000
		Step(cpu, mem, &in)
	}
}

func BenchmarkSoftSin(b *testing.B) {
	x := 0.3
	for i := 0; i < b.N; i++ {
		x = SoftSin(x + 1)
	}
	_ = x
}

func BenchmarkAssemble(b *testing.B) {
	src := `
.org 0x1000
start:
    movri eax, 0
    movri ecx, 0
loop:
    addrr eax, ecx
    inc ecx
    cmpri ecx, 100
    jl loop
    halt
`
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}
