package guest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randInst builds a random valid instruction for roundtrip testing.
func randInst(r *rand.Rand) Inst {
	for {
		op := Op(1 + r.Intn(NumOps-1))
		d := op.Desc()
		if d.Name == "" {
			continue
		}
		in := Inst{Op: op}
		lim := uint8(NumGPR)
		if d.IsFP {
			lim = NumFPR
		}
		switch d.Form {
		case FormN:
		case FormR1:
			in.R1 = uint8(r.Intn(NumGPR))
		case FormR:
			in.R1 = uint8(r.Intn(int(lim)))
			in.R2 = uint8(r.Intn(int(lim)))
		case FormI:
			in.R1 = uint8(r.Intn(NumGPR))
			in.Imm = int32(r.Uint32())
		case FormM:
			in.R1 = uint8(r.Intn(int(lim)))
			in.R2 = uint8(r.Intn(NumGPR))
			in.Imm = int32(r.Uint32())
		case FormMX:
			in.R1 = uint8(r.Intn(NumGPR))
			in.R2 = uint8(r.Intn(NumGPR))
			in.R3 = uint8(r.Intn(NumGPR))
			in.Scale = uint8(r.Intn(4))
			in.Imm = int32(r.Uint32())
		case FormB, FormImm:
			in.Imm = int32(r.Uint32())
		case FormF64:
			in.R1 = uint8(r.Intn(NumFPR))
			in.F64 = math.Float64frombits(r.Uint64())
		}
		return in
	}
}

// TestEncodeDecodeRoundTrip is the encoder/decoder inverse property.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		in := randInst(r)
		buf := in.Encode(nil)
		if len(buf) != in.Len() {
			t.Fatalf("%v: encoded %d bytes, Len()=%d", &in, len(buf), in.Len())
		}
		got, n := Decode(buf)
		if n != len(buf) {
			t.Fatalf("%v: decode consumed %d of %d", &in, n, len(buf))
		}
		got.Size = 0
		want := in
		want.Size = 0
		if fEq(got.F64, want.F64) {
			got.F64, want.F64 = 0, 0
		}
		if got != want {
			t.Fatalf("roundtrip mismatch:\n in=%+v\nout=%+v", want, got)
		}
	}
}

// fEq compares float64 bit patterns (NaN-safe).
func fEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestDecodeGarbage checks the decoder never panics and rejects
// truncated or illegal input.
func TestDecodeGarbage(t *testing.T) {
	if in, n := Decode(nil); n != 0 || in.Op != BAD {
		t.Errorf("empty: got op %v n %d", in.Op, n)
	}
	if _, n := Decode([]byte{0}); n != 0 {
		t.Errorf("opcode 0 must be illegal")
	}
	if _, n := Decode([]byte{255}); n != 0 {
		t.Errorf("opcode 255 must be illegal")
	}
	// Truncated forms.
	full := (&Inst{Op: MOVri, R1: 2, Imm: -7}).Encode(nil)
	for cut := 1; cut < len(full); cut++ {
		if _, n := Decode(full[:cut]); n != 0 {
			t.Errorf("truncated to %d bytes decoded", cut)
		}
	}
	// Fuzz bytes.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		buf := make([]byte, r.Intn(12))
		r.Read(buf)
		Decode(buf) // must not panic
	}
}

// TestDecodeRejectsBadRegisters checks operand range validation.
func TestDecodeRejectsBadRegisters(t *testing.T) {
	// FormR with register 9 (> EDI) for an integer op.
	buf := []byte{byte(ADDrr), 0x9F}
	if _, n := Decode(buf); n != 0 {
		t.Errorf("register 15 accepted for addrr")
	}
	// FormR1 with register 12.
	buf = []byte{byte(INC), 12}
	if _, n := Decode(buf); n != 0 {
		t.Errorf("register 12 accepted for inc")
	}
	// FormMX with scale 4 is unencodable (2 bits), so nothing to test
	// beyond index range:
	buf = []byte{byte(LOADX), 0x1F, 0x00, 0, 0, 0, 0}
	if _, n := Decode(buf); n != 0 {
		t.Errorf("base register 15 accepted for loadx")
	}
}

// TestFormLenTotals pins the encoding lengths.
func TestFormLenTotals(t *testing.T) {
	want := map[Form]int{
		FormN: 1, FormR1: 2, FormR: 2, FormI: 6, FormM: 6,
		FormMX: 7, FormB: 5, FormImm: 5, FormF64: 10,
	}
	for f, n := range want {
		if FormLen(f) != n {
			t.Errorf("FormLen(%d) = %d, want %d", f, FormLen(f), n)
		}
	}
}

// TestBranchTarget checks relative target arithmetic.
func TestBranchTarget(t *testing.T) {
	in := Inst{Op: JMP, Imm: -5} // jump to itself
	if got := in.Target(0x1000); got != 0x1000 {
		t.Errorf("self jump target %#x", got)
	}
	in = Inst{Op: JE, Imm: 100}
	if got := in.Target(0x2000); got != 0x2000+5+100 {
		t.Errorf("forward target %#x", got)
	}
}

// TestOpByName resolves every named opcode and rejects unknowns.
func TestOpByName(t *testing.T) {
	for op := Op(1); int(op) < NumOps; op++ {
		name := op.Desc().Name
		if name == "" {
			continue
		}
		got, ok := OpByName(name)
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v", name, got, ok)
		}
	}
	if _, ok := OpByName("frobnicate"); ok {
		t.Errorf("unknown mnemonic resolved")
	}
}

// TestEndsBasicBlock pins the BB-terminator set.
func TestEndsBasicBlock(t *testing.T) {
	enders := []Op{JMP, JE, JNE, JL, JLE, JG, JGE, JB, JAE, JMPr, CALL, CALLr, RET, HALT, SYSCALL, MOVS, STOS}
	for _, op := range enders {
		if !op.EndsBasicBlock() {
			t.Errorf("%v should end a basic block", op)
		}
	}
	for _, op := range []Op{NOP, MOVri, ADDrr, LOAD, STORE, FADD, FSIN, PUSH, POP, IDIV} {
		if op.EndsBasicBlock() {
			t.Errorf("%v should not end a basic block", op)
		}
	}
}

// TestInstStringNoPanic exercises the disassembler on random
// instructions.
func TestInstStringNoPanic(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInst(r)
		return (&in).String() != ""
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
