// Package guest defines GISA, the synthetic CISC guest ISA that stands in
// for x86 in this DARCO reproduction, together with its encoder, decoder,
// assembler, disassembler and single-instruction semantic core.
//
// GISA keeps the x86 properties that drive DARCO's published results:
// condition-flag side effects on nearly every ALU instruction,
// variable-length instruction encoding, complex string instructions that a
// co-designed processor pushes into the software layer, and trigonometric
// instructions that must be emulated in software on a RISC host.
package guest

// General purpose register indices. Names mirror IA-32 so that workload
// listings read like the paper's environment.
const (
	EAX = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	NumGPR
)

// NumFPR is the number of guest floating point registers (F0..F7).
const NumFPR = 8

// Flag bits in the guest FLAGS register.
const (
	FlagCF uint32 = 1 << iota // carry / borrow
	FlagZF                    // zero
	FlagSF                    // sign
	FlagOF                    // signed overflow
	FlagPF                    // parity of low result byte
)

// AllFlags is the mask of every architecturally defined flag bit.
const AllFlags = FlagCF | FlagZF | FlagSF | FlagOF | FlagPF

// GPRName reports the assembly name of a general purpose register.
func GPRName(r uint8) string {
	if int(r) < len(gprNames) {
		return gprNames[r]
	}
	return "r?"
}

var gprNames = [...]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

// Op enumerates GISA opcodes.
type Op uint8

// Opcode space. The order is frozen: the byte value of an Op is its
// encoding, so appending is safe but reordering is not.
const (
	BAD Op = iota // illegal instruction

	NOP
	HALT

	// Data movement.
	MOVri  // dst <- imm
	MOVrr  // dst <- src
	LOAD   // dst <- mem32[base+disp]
	STORE  // mem32[base+disp] <- src
	LOADX  // dst <- mem32[base + index<<scale + disp]
	STOREX // mem32[base + index<<scale + disp] <- src
	LOADB  // dst <- zeroext mem8[base+disp]
	STOREB // mem8[base+disp] <- low byte of src
	LEA    // dst <- base + index<<scale + disp (no memory access, no flags)

	// Integer ALU, register-register and register-immediate forms.
	ADDrr
	ADDri
	ADCrr // add with carry-in
	SUBrr
	SUBri
	SBBrr // subtract with borrow-in
	ANDrr
	ANDri
	ORrr
	ORri
	XORrr
	XORri
	CMPrr
	CMPri
	TESTrr
	SHLri
	SHRri
	SARri
	SHLrr
	SHRrr
	IMULrr
	IMULri
	IDIV // EAX <- EAX / src; EDX <- EAX mod src (deterministic on zero)
	INC
	DEC
	NEG
	NOT

	// Stack.
	PUSH
	POP
	PUSHI

	// Control flow.
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB
	JAE
	JMPr  // indirect jump through register
	CALL  // direct call, pushes return EIP
	CALLr // indirect call through register
	RET

	// Floating point (x87-flavoured, on F0..F7).
	FLD   // fdst <- mem64[base+disp]
	FST   // mem64[base+disp] <- fsrc
	FLDI  // fdst <- float64 immediate
	FMOV  // fdst <- fsrc
	FADD  // fdst <- fdst + fsrc
	FSUB  // fdst <- fdst - fsrc
	FMUL  // fdst <- fdst * fsrc
	FDIV  // fdst <- fdst / fsrc
	FSIN  // fdst <- sin(fsrc)   (software emulated on the host)
	FCOS  // fdst <- cos(fsrc)   (software emulated on the host)
	FSQRT // fdst <- sqrt(fsrc)  (software emulated on the host)
	FABS
	FNEG
	FCMP  // compare fdst, fsrc; sets ZF/CF like x86 FCOMI, PF on unordered
	CVTIF // fdst <- float64(int32(src GPR))
	CVTFI // dst GPR <- int32(fsrc), truncating

	// Complex string instructions (handled by the software layer; a
	// co-designed processor keeps these out of the translated hot path).
	MOVS // while ECX>0: mem8[EDI] <- mem8[ESI]; ESI++; EDI++; ECX--
	STOS // while ECX>0: mem8[EDI] <- AL; EDI++; ECX--

	SYSCALL // service number in EAX; arguments in EBX, ECX, EDX

	numOps
)

// NumOps is the count of defined opcodes, for table sizing.
const NumOps = int(numOps)

// Form describes the operand encoding shape of an instruction.
type Form uint8

// Encoding forms. Lengths include the opcode byte.
const (
	FormN   Form = iota // [op]                              1 byte
	FormR1              // [op][reg]                         2 bytes
	FormR               // [op][dst<<4|src]                  2 bytes
	FormI               // [op][dst][imm32]                  6 bytes
	FormM               // [op][reg<<4|base][disp32]         6 bytes
	FormMX              // [op][reg<<4|base][scl<<4|idx][disp32] 7 bytes
	FormB               // [op][rel32]                       5 bytes
	FormF64             // [op][freg][imm64]                 10 bytes
	FormImm             // [op][imm32]                       5 bytes
)

// FormLen reports the encoded length in bytes of each form.
func FormLen(f Form) int {
	switch f {
	case FormN:
		return 1
	case FormR1, FormR:
		return 2
	case FormI, FormM:
		return 6
	case FormMX:
		return 7
	case FormB, FormImm:
		return 5
	case FormF64:
		return 10
	}
	return 0
}

// Desc is the static description of an opcode.
type Desc struct {
	Name       string
	Form       Form
	FlagsW     uint32 // flags written
	FlagsR     uint32 // flags read
	IsBranch   bool   // conditional or unconditional control transfer
	IsCond     bool   // conditional branch
	IsIndirect bool   // target not statically known
	IsCall     bool
	IsRet      bool
	IsMem      bool // touches data memory
	IsFP       bool
	IsString   bool // complex string instruction
	Trig       bool // needs software emulation on the host (sin/cos/sqrt)
}

// arith is the flag set written by add/sub-family instructions.
const arith = FlagCF | FlagZF | FlagSF | FlagOF | FlagPF

// logicW is the flag set written by logic instructions (CF and OF cleared).
const logicW = FlagCF | FlagZF | FlagSF | FlagOF | FlagPF

// Descs indexes opcode descriptions by Op.
var Descs = [NumOps]Desc{
	BAD:  {Name: "bad", Form: FormN},
	NOP:  {Name: "nop", Form: FormN},
	HALT: {Name: "halt", Form: FormN},

	MOVri:  {Name: "movri", Form: FormI},
	MOVrr:  {Name: "movrr", Form: FormR},
	LOAD:   {Name: "load", Form: FormM, IsMem: true},
	STORE:  {Name: "store", Form: FormM, IsMem: true},
	LOADX:  {Name: "loadx", Form: FormMX, IsMem: true},
	STOREX: {Name: "storex", Form: FormMX, IsMem: true},
	LOADB:  {Name: "loadb", Form: FormM, IsMem: true},
	STOREB: {Name: "storeb", Form: FormM, IsMem: true},
	LEA:    {Name: "lea", Form: FormMX},

	ADDrr:  {Name: "addrr", Form: FormR, FlagsW: arith},
	ADDri:  {Name: "addri", Form: FormI, FlagsW: arith},
	ADCrr:  {Name: "adcrr", Form: FormR, FlagsW: arith, FlagsR: FlagCF},
	SUBrr:  {Name: "subrr", Form: FormR, FlagsW: arith},
	SUBri:  {Name: "subri", Form: FormI, FlagsW: arith},
	SBBrr:  {Name: "sbbrr", Form: FormR, FlagsW: arith, FlagsR: FlagCF},
	ANDrr:  {Name: "andrr", Form: FormR, FlagsW: logicW},
	ANDri:  {Name: "andri", Form: FormI, FlagsW: logicW},
	ORrr:   {Name: "orrr", Form: FormR, FlagsW: logicW},
	ORri:   {Name: "orri", Form: FormI, FlagsW: logicW},
	XORrr:  {Name: "xorrr", Form: FormR, FlagsW: logicW},
	XORri:  {Name: "xorri", Form: FormI, FlagsW: logicW},
	CMPrr:  {Name: "cmprr", Form: FormR, FlagsW: arith},
	CMPri:  {Name: "cmpri", Form: FormI, FlagsW: arith},
	TESTrr: {Name: "testrr", Form: FormR, FlagsW: logicW},
	SHLri:  {Name: "shlri", Form: FormI, FlagsW: arith},
	SHRri:  {Name: "shrri", Form: FormI, FlagsW: arith},
	SARri:  {Name: "sarri", Form: FormI, FlagsW: arith},
	SHLrr:  {Name: "shlrr", Form: FormR, FlagsW: arith},
	SHRrr:  {Name: "shrrr", Form: FormR, FlagsW: arith},
	IMULrr: {Name: "imulrr", Form: FormR, FlagsW: arith},
	IMULri: {Name: "imulri", Form: FormI, FlagsW: arith},
	IDIV:   {Name: "idiv", Form: FormR1},
	INC:    {Name: "inc", Form: FormR1, FlagsW: FlagZF | FlagSF | FlagOF | FlagPF},
	DEC:    {Name: "dec", Form: FormR1, FlagsW: FlagZF | FlagSF | FlagOF | FlagPF},
	NEG:    {Name: "neg", Form: FormR1, FlagsW: arith},
	NOT:    {Name: "not", Form: FormR1},

	PUSH:  {Name: "push", Form: FormR1, IsMem: true},
	POP:   {Name: "pop", Form: FormR1, IsMem: true},
	PUSHI: {Name: "pushi", Form: FormImm, IsMem: true},

	JMP: {Name: "jmp", Form: FormB, IsBranch: true},
	JE:  {Name: "je", Form: FormB, IsBranch: true, IsCond: true, FlagsR: FlagZF},
	JNE: {Name: "jne", Form: FormB, IsBranch: true, IsCond: true, FlagsR: FlagZF},
	JL:  {Name: "jl", Form: FormB, IsBranch: true, IsCond: true, FlagsR: FlagSF | FlagOF},
	JLE: {Name: "jle", Form: FormB, IsBranch: true, IsCond: true, FlagsR: FlagZF | FlagSF | FlagOF},
	JG:  {Name: "jg", Form: FormB, IsBranch: true, IsCond: true, FlagsR: FlagZF | FlagSF | FlagOF},
	JGE: {Name: "jge", Form: FormB, IsBranch: true, IsCond: true, FlagsR: FlagSF | FlagOF},
	JB:  {Name: "jb", Form: FormB, IsBranch: true, IsCond: true, FlagsR: FlagCF},
	JAE: {Name: "jae", Form: FormB, IsBranch: true, IsCond: true, FlagsR: FlagCF},

	JMPr:  {Name: "jmpr", Form: FormR1, IsBranch: true, IsIndirect: true},
	CALL:  {Name: "call", Form: FormB, IsBranch: true, IsCall: true, IsMem: true},
	CALLr: {Name: "callr", Form: FormR1, IsBranch: true, IsCall: true, IsIndirect: true, IsMem: true},
	RET:   {Name: "ret", Form: FormN, IsBranch: true, IsRet: true, IsIndirect: true, IsMem: true},

	FLD:   {Name: "fld", Form: FormM, IsMem: true, IsFP: true},
	FST:   {Name: "fst", Form: FormM, IsMem: true, IsFP: true},
	FLDI:  {Name: "fldi", Form: FormF64, IsFP: true},
	FMOV:  {Name: "fmov", Form: FormR, IsFP: true},
	FADD:  {Name: "fadd", Form: FormR, IsFP: true},
	FSUB:  {Name: "fsub", Form: FormR, IsFP: true},
	FMUL:  {Name: "fmul", Form: FormR, IsFP: true},
	FDIV:  {Name: "fdiv", Form: FormR, IsFP: true},
	FSIN:  {Name: "fsin", Form: FormR, IsFP: true, Trig: true},
	FCOS:  {Name: "fcos", Form: FormR, IsFP: true, Trig: true},
	FSQRT: {Name: "fsqrt", Form: FormR, IsFP: true},
	FABS:  {Name: "fabs", Form: FormR, IsFP: true},
	FNEG:  {Name: "fneg", Form: FormR, IsFP: true},
	FCMP:  {Name: "fcmp", Form: FormR, IsFP: true, FlagsW: arith},
	CVTIF: {Name: "cvtif", Form: FormR, IsFP: true},
	CVTFI: {Name: "cvtfi", Form: FormR, IsFP: true},

	MOVS: {Name: "movs", Form: FormN, IsMem: true, IsString: true},
	STOS: {Name: "stos", Form: FormN, IsMem: true, IsString: true},

	SYSCALL: {Name: "syscall", Form: FormN},
}

// OpByName resolves an assembler mnemonic to its opcode.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(1); op < numOps; op++ {
		d := Descs[op]
		if d.Name != "" {
			m[d.Name] = op
		}
	}
	return m
}()

// EndsBasicBlock reports whether op terminates a basic block. Complex
// string instructions end blocks because the software layer keeps them
// out of translations (they execute in the interpreter safety net).
func (op Op) EndsBasicBlock() bool {
	d := &Descs[op]
	return d.IsBranch || d.IsString || op == HALT || op == SYSCALL
}

// Desc returns the static description of op.
func (op Op) Desc() *Desc {
	if int(op) < NumOps {
		return &Descs[op]
	}
	return &Descs[BAD]
}

func (op Op) String() string {
	d := op.Desc()
	if d.Name == "" {
		return "op?"
	}
	return d.Name
}
