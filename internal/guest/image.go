package guest

import "sort"

// Segment is a contiguous range of initialised guest memory.
type Segment struct {
	Addr uint32
	Data []byte
}

// Image is a loadable guest program: an entry point plus initialised
// segments. It is what the assembler produces and what both functional
// emulators load.
type Image struct {
	Entry    uint32
	Segments []Segment
	Labels   map[string]uint32 // assembler symbol table, for tooling
}

// Sort orders segments by address; loaders rely on it.
func (im *Image) Sort() {
	sort.Slice(im.Segments, func(i, j int) bool {
		return im.Segments[i].Addr < im.Segments[j].Addr
	})
}

// CodeAt returns the segment containing addr, if any.
func (im *Image) CodeAt(addr uint32) (Segment, bool) {
	for _, s := range im.Segments {
		if addr >= s.Addr && addr < s.Addr+uint32(len(s.Data)) {
			return s, true
		}
	}
	return Segment{}, false
}
