package guest

import "testing"

func TestImageSortAndCodeAt(t *testing.T) {
	im := &Image{Segments: []Segment{
		{Addr: 0x5000, Data: make([]byte, 16)},
		{Addr: 0x1000, Data: make([]byte, 32)},
	}}
	im.Sort()
	if im.Segments[0].Addr != 0x1000 {
		t.Fatalf("sort failed")
	}
	if _, ok := im.CodeAt(0x1010); !ok {
		t.Errorf("address inside segment not found")
	}
	if _, ok := im.CodeAt(0x1020); ok {
		t.Errorf("address past segment end found")
	}
	if _, ok := im.CodeAt(0x500f); !ok {
		t.Errorf("last byte of second segment not found")
	}
	if _, ok := im.CodeAt(0x9000); ok {
		t.Errorf("unmapped address found")
	}
}
