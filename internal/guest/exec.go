package guest

import (
	"fmt"
	"math"
	"math/bits"
)

// CPU holds the guest architectural register state.
type CPU struct {
	R     [NumGPR]uint32
	F     [NumFPR]float64
	EIP   uint32
	Flags uint32
}

// Memory abstracts guest data memory. The authoritative emulator and the
// co-designed component's emulated memory both implement it; the
// co-designed side additionally returns page-fault errors on first touch
// so the controller can transfer pages.
type Memory interface {
	Load8(addr uint32) (uint8, error)
	Store8(addr uint32, v uint8) error
	Load32(addr uint32) (uint32, error)
	Store32(addr uint32, v uint32) error
	Load64(addr uint32) (uint64, error)
	Store64(addr uint32, v uint64) error
}

// Event classifies what a Step produced beyond plain register updates.
type Event uint8

// Step events.
const (
	EvNone    Event = iota // fall through or branch handled internally
	EvHalt                 // HALT retired; program complete
	EvSyscall              // SYSCALL retired; environment must service it
)

// Step executes one instruction on cpu against mem and advances EIP.
// It implements the authoritative GISA semantics shared by the x86
// component, TOL's interpreter and (via translation correctness tests)
// the translated code paths.
func Step(cpu *CPU, mem Memory, in *Inst) (Event, error) {
	// Decoded instructions carry their encoded size; recomputing it
	// through the form tables costs two table walks per executed
	// instruction. Hand-built Inst values (Size zero) still work.
	size := uint32(in.Size)
	if size == 0 {
		size = uint32(in.Len())
	}
	next := cpu.EIP + size
	switch in.Op {
	case NOP:
	case HALT:
		cpu.EIP = next
		return EvHalt, nil
	case SYSCALL:
		cpu.EIP = next
		return EvSyscall, nil

	case MOVri:
		cpu.R[in.R1] = uint32(in.Imm)
	case MOVrr:
		cpu.R[in.R1] = cpu.R[in.R2]
	case LOAD:
		v, err := mem.Load32(cpu.R[in.R2] + uint32(in.Imm))
		if err != nil {
			return EvNone, err
		}
		cpu.R[in.R1] = v
	case STORE:
		if err := mem.Store32(cpu.R[in.R2]+uint32(in.Imm), cpu.R[in.R1]); err != nil {
			return EvNone, err
		}
	case LOADB:
		v, err := mem.Load8(cpu.R[in.R2] + uint32(in.Imm))
		if err != nil {
			return EvNone, err
		}
		cpu.R[in.R1] = uint32(v)
	case STOREB:
		if err := mem.Store8(cpu.R[in.R2]+uint32(in.Imm), uint8(cpu.R[in.R1])); err != nil {
			return EvNone, err
		}
	case LOADX:
		addr := cpu.R[in.R2] + cpu.R[in.R3]<<in.Scale + uint32(in.Imm)
		v, err := mem.Load32(addr)
		if err != nil {
			return EvNone, err
		}
		cpu.R[in.R1] = v
	case STOREX:
		addr := cpu.R[in.R2] + cpu.R[in.R3]<<in.Scale + uint32(in.Imm)
		if err := mem.Store32(addr, cpu.R[in.R1]); err != nil {
			return EvNone, err
		}
	case LEA:
		cpu.R[in.R1] = cpu.R[in.R2] + cpu.R[in.R3]<<in.Scale + uint32(in.Imm)

	case ADDrr:
		cpu.R[in.R1] = addFlags(cpu, cpu.R[in.R1], cpu.R[in.R2], 0)
	case ADDri:
		cpu.R[in.R1] = addFlags(cpu, cpu.R[in.R1], uint32(in.Imm), 0)
	case ADCrr:
		cin := cpu.Flags & FlagCF
		cpu.R[in.R1] = addFlags(cpu, cpu.R[in.R1], cpu.R[in.R2], cin)
	case SUBrr:
		cpu.R[in.R1] = subFlags(cpu, cpu.R[in.R1], cpu.R[in.R2], 0)
	case SUBri:
		cpu.R[in.R1] = subFlags(cpu, cpu.R[in.R1], uint32(in.Imm), 0)
	case SBBrr:
		bin := cpu.Flags & FlagCF
		cpu.R[in.R1] = subFlags(cpu, cpu.R[in.R1], cpu.R[in.R2], bin)
	case ANDrr:
		cpu.R[in.R1] = logicFlags(cpu, cpu.R[in.R1]&cpu.R[in.R2])
	case ANDri:
		cpu.R[in.R1] = logicFlags(cpu, cpu.R[in.R1]&uint32(in.Imm))
	case ORrr:
		cpu.R[in.R1] = logicFlags(cpu, cpu.R[in.R1]|cpu.R[in.R2])
	case ORri:
		cpu.R[in.R1] = logicFlags(cpu, cpu.R[in.R1]|uint32(in.Imm))
	case XORrr:
		cpu.R[in.R1] = logicFlags(cpu, cpu.R[in.R1]^cpu.R[in.R2])
	case XORri:
		cpu.R[in.R1] = logicFlags(cpu, cpu.R[in.R1]^uint32(in.Imm))
	case CMPrr:
		subFlags(cpu, cpu.R[in.R1], cpu.R[in.R2], 0)
	case CMPri:
		subFlags(cpu, cpu.R[in.R1], uint32(in.Imm), 0)
	case TESTrr:
		logicFlags(cpu, cpu.R[in.R1]&cpu.R[in.R2])
	case SHLri:
		cpu.R[in.R1] = shlFlags(cpu, cpu.R[in.R1], uint32(in.Imm)&31)
	case SHRri:
		cpu.R[in.R1] = shrFlags(cpu, cpu.R[in.R1], uint32(in.Imm)&31)
	case SARri:
		cpu.R[in.R1] = sarFlags(cpu, cpu.R[in.R1], uint32(in.Imm)&31)
	case SHLrr:
		cpu.R[in.R1] = shlFlags(cpu, cpu.R[in.R1], cpu.R[in.R2]&31)
	case SHRrr:
		cpu.R[in.R1] = shrFlags(cpu, cpu.R[in.R1], cpu.R[in.R2]&31)
	case IMULrr:
		cpu.R[in.R1] = mulFlags(cpu, cpu.R[in.R1], cpu.R[in.R2])
	case IMULri:
		cpu.R[in.R1] = mulFlags(cpu, cpu.R[in.R1], uint32(in.Imm))
	case IDIV:
		// Deterministic division: divide-by-zero yields all-ones
		// quotient and the dividend as remainder instead of faulting,
		// so differential tests never need to special-case traps.
		den := int32(cpu.R[in.R1])
		num := int32(cpu.R[EAX])
		if den == 0 {
			cpu.R[EDX] = cpu.R[EAX]
			cpu.R[EAX] = 0xFFFFFFFF
		} else if num == math.MinInt32 && den == -1 {
			cpu.R[EAX] = 0x80000000
			cpu.R[EDX] = 0
		} else {
			cpu.R[EAX] = uint32(num / den)
			cpu.R[EDX] = uint32(num % den)
		}
	case INC:
		v := cpu.R[in.R1] + 1
		setIncFlags(cpu, v, cpu.R[in.R1] == 0x7FFFFFFF)
		cpu.R[in.R1] = v
	case DEC:
		v := cpu.R[in.R1] - 1
		setIncFlags(cpu, v, cpu.R[in.R1] == 0x80000000)
		cpu.R[in.R1] = v
	case NEG:
		src := cpu.R[in.R1]
		v := subFlags(cpu, 0, src, 0)
		cpu.R[in.R1] = v
	case NOT:
		cpu.R[in.R1] = ^cpu.R[in.R1]

	case PUSH:
		sp := cpu.R[ESP] - 4
		if err := mem.Store32(sp, cpu.R[in.R1]); err != nil {
			return EvNone, err
		}
		cpu.R[ESP] = sp
	case PUSHI:
		sp := cpu.R[ESP] - 4
		if err := mem.Store32(sp, uint32(in.Imm)); err != nil {
			return EvNone, err
		}
		cpu.R[ESP] = sp
	case POP:
		v, err := mem.Load32(cpu.R[ESP])
		if err != nil {
			return EvNone, err
		}
		cpu.R[ESP] += 4
		cpu.R[in.R1] = v

	case JMP:
		cpu.EIP = next + uint32(in.Imm)
		return EvNone, nil
	case JE, JNE, JL, JLE, JG, JGE, JB, JAE:
		if CondTaken(in.Op, cpu.Flags) {
			cpu.EIP = next + uint32(in.Imm)
		} else {
			cpu.EIP = next
		}
		return EvNone, nil
	case JMPr:
		cpu.EIP = cpu.R[in.R1]
		return EvNone, nil
	case CALL:
		sp := cpu.R[ESP] - 4
		if err := mem.Store32(sp, next); err != nil {
			return EvNone, err
		}
		cpu.R[ESP] = sp
		cpu.EIP = next + uint32(in.Imm)
		return EvNone, nil
	case CALLr:
		sp := cpu.R[ESP] - 4
		if err := mem.Store32(sp, next); err != nil {
			return EvNone, err
		}
		cpu.R[ESP] = sp
		cpu.EIP = cpu.R[in.R1]
		return EvNone, nil
	case RET:
		v, err := mem.Load32(cpu.R[ESP])
		if err != nil {
			return EvNone, err
		}
		cpu.R[ESP] += 4
		cpu.EIP = v
		return EvNone, nil

	case FLD:
		v, err := mem.Load64(cpu.R[in.R2] + uint32(in.Imm))
		if err != nil {
			return EvNone, err
		}
		cpu.F[in.R1] = math.Float64frombits(v)
	case FST:
		if err := mem.Store64(cpu.R[in.R2]+uint32(in.Imm), math.Float64bits(cpu.F[in.R1])); err != nil {
			return EvNone, err
		}
	case FLDI:
		cpu.F[in.R1] = in.F64
	case FMOV:
		cpu.F[in.R1] = cpu.F[in.R2]
	case FADD:
		cpu.F[in.R1] += cpu.F[in.R2]
	case FSUB:
		cpu.F[in.R1] -= cpu.F[in.R2]
	case FMUL:
		cpu.F[in.R1] *= cpu.F[in.R2]
	case FDIV:
		cpu.F[in.R1] /= cpu.F[in.R2]
	case FSIN:
		cpu.F[in.R1] = SoftSin(cpu.F[in.R2])
	case FCOS:
		cpu.F[in.R1] = SoftCos(cpu.F[in.R2])
	case FSQRT:
		cpu.F[in.R1] = SoftSqrt(cpu.F[in.R2])
	case FABS:
		cpu.F[in.R1] = math.Abs(cpu.F[in.R2])
	case FNEG:
		cpu.F[in.R1] = -cpu.F[in.R2]
	case FCMP:
		a, b := cpu.F[in.R1], cpu.F[in.R2]
		f := uint32(0)
		switch {
		case math.IsNaN(a) || math.IsNaN(b):
			f = FlagZF | FlagCF | FlagPF // unordered, x86 FCOMI style
		case a == b:
			f = FlagZF
		case a < b:
			f = FlagCF
		}
		cpu.Flags = f
	case CVTIF:
		cpu.F[in.R1] = float64(int32(cpu.R[in.R2]))
	case CVTFI:
		cpu.R[in.R1] = uint32(truncF64(cpu.F[in.R2]))

	case MOVS:
		for cpu.R[ECX] > 0 {
			b, err := mem.Load8(cpu.R[ESI])
			if err != nil {
				return EvNone, err
			}
			if err := mem.Store8(cpu.R[EDI], b); err != nil {
				return EvNone, err
			}
			cpu.R[ESI]++
			cpu.R[EDI]++
			cpu.R[ECX]--
		}
	case STOS:
		al := uint8(cpu.R[EAX])
		for cpu.R[ECX] > 0 {
			if err := mem.Store8(cpu.R[EDI], al); err != nil {
				return EvNone, err
			}
			cpu.R[EDI]++
			cpu.R[ECX]--
		}

	default:
		return EvNone, fmt.Errorf("guest: illegal instruction %v at %#x", in.Op, cpu.EIP)
	}
	cpu.EIP = next
	return EvNone, nil
}

// CondTaken evaluates a conditional branch opcode against a flag word.
func CondTaken(op Op, flags uint32) bool {
	zf := flags&FlagZF != 0
	cf := flags&FlagCF != 0
	sf := flags&FlagSF != 0
	of := flags&FlagOF != 0
	switch op {
	case JE:
		return zf
	case JNE:
		return !zf
	case JL:
		return sf != of
	case JLE:
		return zf || sf != of
	case JG:
		return !zf && sf == of
	case JGE:
		return sf == of
	case JB:
		return cf
	case JAE:
		return !cf
	}
	return false
}

// truncF64 converts a float64 to int32 with x86 CVTTSD2SI-like saturation
// semantics made deterministic: NaN and out-of-range map to MinInt32.
func truncF64(f float64) int32 {
	if math.IsNaN(f) || f >= float64(math.MaxInt32)+1 || f < float64(math.MinInt32) {
		return math.MinInt32
	}
	return int32(f)
}

func parity(v uint32) uint32 {
	if bits.OnesCount8(uint8(v))%2 == 0 {
		return FlagPF
	}
	return 0
}

func szpFlags(v uint32) uint32 {
	f := parity(v)
	if v == 0 {
		f |= FlagZF
	}
	if int32(v) < 0 {
		f |= FlagSF
	}
	return f
}

func addFlags(cpu *CPU, a, b, cin uint32) uint32 {
	r64 := uint64(a) + uint64(b) + uint64(cin)
	r := uint32(r64)
	f := szpFlags(r)
	if r64 > math.MaxUint32 {
		f |= FlagCF
	}
	// Signed overflow: operands same sign, result differs.
	if (a^r)&(b^r)&0x80000000 != 0 {
		f |= FlagOF
	}
	cpu.Flags = f
	return r
}

func subFlags(cpu *CPU, a, b, bin uint32) uint32 {
	r64 := uint64(a) - uint64(b) - uint64(bin)
	r := uint32(r64)
	f := szpFlags(r)
	if uint64(a) < uint64(b)+uint64(bin) {
		f |= FlagCF
	}
	if (a^b)&(a^r)&0x80000000 != 0 {
		f |= FlagOF
	}
	cpu.Flags = f
	return r
}

func logicFlags(cpu *CPU, r uint32) uint32 {
	cpu.Flags = szpFlags(r) // CF and OF cleared
	return r
}

func shlFlags(cpu *CPU, a, n uint32) uint32 {
	if n == 0 {
		cpu.Flags = szpFlags(a)
		return a
	}
	r := a << n
	f := szpFlags(r)
	if a&(1<<(32-n)) != 0 {
		f |= FlagCF
	}
	if (a>>31)&1 != (r>>31)&1 {
		f |= FlagOF
	}
	cpu.Flags = f
	return r
}

func shrFlags(cpu *CPU, a, n uint32) uint32 {
	if n == 0 {
		cpu.Flags = szpFlags(a)
		return a
	}
	r := a >> n
	f := szpFlags(r)
	if a&(1<<(n-1)) != 0 {
		f |= FlagCF
	}
	if a&0x80000000 != 0 {
		f |= FlagOF
	}
	cpu.Flags = f
	return r
}

func sarFlags(cpu *CPU, a, n uint32) uint32 {
	if n == 0 {
		cpu.Flags = szpFlags(a)
		return a
	}
	r := uint32(int32(a) >> n)
	f := szpFlags(r)
	if a&(1<<(n-1)) != 0 {
		f |= FlagCF
	}
	cpu.Flags = f
	return r
}

func mulFlags(cpu *CPU, a, b uint32) uint32 {
	full := int64(int32(a)) * int64(int32(b))
	r := uint32(full)
	f := szpFlags(r)
	if full != int64(int32(r)) {
		f |= FlagCF | FlagOF
	}
	cpu.Flags = f
	return r
}

func setIncFlags(cpu *CPU, r uint32, overflow bool) {
	f := cpu.Flags & FlagCF // CF preserved by INC/DEC
	f |= szpFlags(r)
	if overflow {
		f |= FlagOF
	}
	cpu.Flags = f
}
