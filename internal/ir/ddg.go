package ir

// Memory disambiguation and the data dependence graph (DDG).
//
// The DDG phase of the paper's optimizer: memory disambiguation
// classifies every pair of accesses as never/must/may alias; redundant
// load elimination and store forwarding remove memory operations whose
// value is already known; dead stores overwritten before any observation
// are dropped; and the resulting dependence graph feeds the list
// scheduler, with may-alias store→load edges marked breakable so the
// scheduler can hoist loads speculatively (converting them to
// speculative memory operations checked by the alias table at runtime).

// AliasClass is the result of memory disambiguation on an access pair.
type AliasClass uint8

// Alias classes.
const (
	AliasNever AliasClass = iota
	AliasMust             // identical address and width
	AliasMay
)

type memRef struct {
	base  ValueID // 0 when the address is an absolute constant
	abs   uint32  // absolute address when base == 0
	off   int32
	width uint8
}

func (r *Region) memRefOf(in *Inst, constOf map[ValueID]uint32) memRef {
	ref := memRef{base: in.A, off: in.Off, width: in.MemWidth()}
	if v, ok := constOf[in.A]; ok {
		ref.base = 0
		ref.abs = v + uint32(in.Off)
		ref.off = 0
	}
	return ref
}

// classify disambiguates two memory references.
func classify(a, b memRef) AliasClass {
	if a.base == b.base {
		lo1 := int64(a.off)
		hi1 := lo1 + int64(a.width)
		lo2 := int64(b.off)
		hi2 := lo2 + int64(b.width)
		if a.base == 0 {
			lo1, hi1 = int64(a.abs), int64(a.abs)+int64(a.width)
			lo2, hi2 = int64(b.abs), int64(b.abs)+int64(b.width)
		}
		switch {
		case lo1 == lo2 && a.width == b.width:
			return AliasMust
		case hi1 <= lo2 || hi2 <= lo1:
			return AliasNever
		default:
			return AliasMay
		}
	}
	// Distinct symbolic bases may be anything.
	return AliasMay
}

// constMap gathers ConstI definitions for absolute-address reasoning.
func (r *Region) constMap() map[ValueID]uint32 {
	m := make(map[ValueID]uint32)
	for i := range r.Code {
		if r.Code[i].Op == ConstI {
			m[r.Code[i].Dst] = r.Code[i].ImmU
		}
	}
	return m
}

// MemOptStats reports what the DDG memory phase removed.
type MemOptStats struct {
	LoadsEliminated  int // redundant load elimination + store forwarding
	StoresEliminated int // dead stores overwritten before observation
}

// MemOpt performs redundant load elimination, store-to-load forwarding
// and dead store elimination in one forward scan.
func (r *Region) MemOpt() MemOptStats {
	constOf := r.constMap()
	type availEntry struct {
		ref memRef
		val ValueID
	}
	var avail []availEntry
	type storeEntry struct {
		ref      memRef
		idx      int
		observed bool // an exit or may-alias load occurred after it
	}
	var stores []storeEntry
	resolve := make([]ValueID, r.NumValues+1)
	res := func(v ValueID) ValueID {
		for v != 0 && resolve[v] != 0 {
			v = resolve[v]
		}
		return v
	}
	var st MemOptStats

	observeAll := func() {
		for j := range stores {
			stores[j].observed = true
		}
	}

	for i := range r.Code {
		in := &r.Code[i]
		in.A = res(in.A)
		in.B = res(in.B)
		for j := range in.State {
			in.State[j].Val = res(in.State[j].Val)
		}
		switch {
		case in.IsLoad():
			ref := r.memRefOf(in, constOf)
			hit := false
			for _, e := range avail {
				if classify(e.ref, ref) == AliasMust {
					resolve[in.Dst] = e.val
					in.Op = Nop
					in.Dst, in.A = 0, 0
					st.LoadsEliminated++
					hit = true
					break
				}
			}
			if hit {
				break
			}
			for j := range stores {
				if classify(stores[j].ref, ref) != AliasNever {
					stores[j].observed = true
				}
			}
			avail = append(avail, availEntry{ref: ref, val: in.Dst})
		case in.IsStore():
			ref := r.memRefOf(in, constOf)
			// Dead store elimination: a prior unobserved store to the
			// exact location is overwritten.
			for j := range stores {
				if !stores[j].observed && classify(stores[j].ref, ref) == AliasMust {
					dead := &r.Code[stores[j].idx]
					dead.Op = Nop
					dead.A, dead.B = 0, 0
					st.StoresEliminated++
					stores[j] = storeEntry{ref: ref, idx: i}
					goto recorded
				}
			}
			stores = append(stores, storeEntry{ref: ref, idx: i})
		recorded:
			// Kill may-aliasing availability; record the stored value.
			kept := avail[:0]
			for _, e := range avail {
				if classify(e.ref, ref) == AliasNever {
					kept = append(kept, e)
				}
			}
			avail = append(kept, availEntry{ref: ref, val: in.B})
		case in.IsExit():
			// A (possible) commit makes every buffered store
			// architecturally observable.
			observeAll()
		}
	}
	// Compact Nops.
	out := r.Code[:0]
	for i := range r.Code {
		if r.Code[i].Op != Nop {
			out = append(out, r.Code[i])
		}
	}
	r.Code = out
	return st
}

// Edge is one dependence in the DDG.
type Edge struct {
	From, To  int
	Breakable bool // may-alias store→load order; scheduler may hoist speculatively
}

// DDG is the data dependence graph over the region's instructions.
type DDG struct {
	N     int
	Succs [][]Edge
	Preds [][]Edge

	// edges collects the graph during construction; finish() buckets it
	// into the Succs/Preds adjacency views, which share two arenas
	// instead of paying one allocation per node's first edge.
	edges []Edge
}

func (g *DDG) addEdge(from, to int, breakable bool) {
	if from == to {
		return
	}
	g.edges = append(g.edges, Edge{From: from, To: to, Breakable: breakable})
}

// finish builds the adjacency views from the collected edge list,
// preserving insertion order within each node.
func (g *DDG) finish() {
	n := g.N
	sOff := make([]int, n+1)
	pOff := make([]int, n+1)
	for _, e := range g.edges {
		sOff[e.From+1]++
		pOff[e.To+1]++
	}
	for i := 0; i < n; i++ {
		sOff[i+1] += sOff[i]
		pOff[i+1] += pOff[i]
	}
	sArena := make([]Edge, len(g.edges))
	pArena := make([]Edge, len(g.edges))
	sPos := make([]int, n)
	pPos := make([]int, n)
	for _, e := range g.edges {
		sArena[sOff[e.From]+sPos[e.From]] = e
		sPos[e.From]++
		pArena[pOff[e.To]+pPos[e.To]] = e
		pPos[e.To]++
	}
	g.Succs = make([][]Edge, n)
	g.Preds = make([][]Edge, n)
	for i := 0; i < n; i++ {
		g.Succs[i] = sArena[sOff[i]:sOff[i+1]:sOff[i+1]]
		g.Preds[i] = pArena[pOff[i]:pOff[i+1]:pOff[i+1]]
	}
	g.edges = nil
}

// BuildDDG constructs the dependence graph: true data dependences,
// memory ordering edges from disambiguation, and control edges that pin
// asserts and exits.
func (r *Region) BuildDDG() *DDG {
	n := len(r.Code)
	g := &DDG{N: n}
	defIdx := make([]int, r.NumValues+1)
	for i := range defIdx {
		defIdx[i] = -1
	}
	constOf := r.constMap()

	var memIdx []int  // loads and stores in order
	var exitIdx []int // exits in order
	var ctlIdx []int  // asserts and exits in order
	lastExit := -1

	for i := range r.Code {
		in := &r.Code[i]
		// Data edges.
		in.Uses(func(v ValueID) {
			if d := defIdx[v]; d >= 0 {
				g.addEdge(d, i, false)
			}
		})
		if in.Dst != 0 {
			defIdx[in.Dst] = i
		}

		switch {
		case in.IsLoad():
			ref := r.memRefOf(in, constOf)
			for _, m := range memIdx {
				prev := &r.Code[m]
				if !prev.IsStore() {
					continue
				}
				pref := r.memRefOf(prev, constOf)
				switch classify(pref, ref) {
				case AliasMust:
					g.addEdge(m, i, false) // should have been forwarded; keep order
				case AliasMay:
					g.addEdge(m, i, true) // breakable: speculative hoist allowed
				}
			}
			if !r.UseAsserts && lastExit >= 0 {
				g.addEdge(lastExit, i, false)
			}
			memIdx = append(memIdx, i)
		case in.IsStore():
			ref := r.memRefOf(in, constOf)
			for _, m := range memIdx {
				prev := &r.Code[m]
				pref := r.memRefOf(prev, constOf)
				if prev.IsStore() {
					if classify(pref, ref) != AliasNever {
						g.addEdge(m, i, false)
					}
				} else {
					// Anti dependence: the store may not move above a
					// preceding load it may alias with.
					if classify(pref, ref) != AliasNever {
						g.addEdge(m, i, false)
					}
				}
			}
			if !r.UseAsserts && lastExit >= 0 {
				g.addEdge(lastExit, i, false)
			}
			memIdx = append(memIdx, i)
		case in.Op == Assert:
			// Asserts keep their relative order and precede every exit.
			if len(ctlIdx) > 0 {
				g.addEdge(ctlIdx[len(ctlIdx)-1], i, false)
			}
			ctlIdx = append(ctlIdx, i)
		case in.IsExit():
			// Exits are barriers: every earlier memory op and control
			// op must complete first; later memory ops stay after.
			for _, m := range memIdx {
				g.addEdge(m, i, false)
			}
			if len(ctlIdx) > 0 {
				g.addEdge(ctlIdx[len(ctlIdx)-1], i, false)
			}
			ctlIdx = append(ctlIdx, i)
			exitIdx = append(exitIdx, i)
			lastExit = i
		}
	}
	_ = exitIdx
	g.finish()
	return g
}
