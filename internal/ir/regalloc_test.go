package ir

import (
	"math/rand"
	"testing"

	"darco/internal/host"
)

func TestPinnedHostRegMapping(t *testing.T) {
	reg, fp := PinnedHostReg(ArchEAX)
	if reg != host.RGuestGPR || fp {
		t.Errorf("eax -> r%d fp=%v", reg, fp)
	}
	reg, fp = PinnedHostReg(ArchEDI)
	if reg != host.RGuestGPR+7 || fp {
		t.Errorf("edi -> r%d", reg)
	}
	reg, fp = PinnedHostReg(ArchCF)
	if reg != host.RFlagCF || fp {
		t.Errorf("cf -> r%d", reg)
	}
	reg, fp = PinnedHostReg(ArchPF)
	if reg != host.RFlagPF {
		t.Errorf("pf -> r%d", reg)
	}
	reg, fp = PinnedHostReg(ArchF0 + 3)
	if reg != host.FGuestFPR+3 || !fp {
		t.Errorf("f3 -> f%d fp=%v", reg, fp)
	}
}

func TestAllocateLiveInsArePinned(t *testing.T) {
	b := newRB(false)
	x := b.livein(ArchEAX)
	f := b.emit(Inst{Op: LiveIn, Dst: -1, Arch: ArchF0})
	s := b.op2(Add, x, x)
	fs := b.op2(Fadd, f, f)
	b.exit(0x2000, ArchVal{Arch: ArchEBX, Val: s}, ArchVal{Arch: ArchF0 + 1, Val: fs})
	a := b.r.Allocate()
	if a.Loc[x].Kind != LocPinned || a.Loc[x].N != host.RGuestGPR {
		t.Errorf("livein eax loc %v", a.Loc[x])
	}
	if a.Loc[f].Kind != LocPinned || !a.Loc[f].FP {
		t.Errorf("livein f0 loc %v", a.Loc[f])
	}
	if a.Loc[s].Kind != LocReg || a.Loc[s].N < host.RTempBase {
		t.Errorf("temp loc %v", a.Loc[s])
	}
	if err := a.Verify(b.r); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateImmediateFolding(t *testing.T) {
	b := newRB(false)
	x := b.livein(ArchEAX)
	c := b.consti(42) // used only as the B operand of Add
	s := b.op2(Add, x, c)
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: s})
	a := b.r.Allocate()
	if a.Loc[c].Kind != LocImm {
		t.Errorf("foldable const got %v", a.Loc[c])
	}
	// A const used as a divisor needs a register (no DIVI form).
	b2 := newRB(false)
	x2 := b2.livein(ArchEAX)
	c2 := b2.consti(7)
	d := b2.op2(Div, x2, c2)
	b2.exit(0x2000, ArchVal{Arch: ArchEAX, Val: d})
	a2 := b2.r.Allocate()
	if a2.Loc[c2].Kind != LocReg {
		t.Errorf("div const got %v", a2.Loc[c2])
	}
}

func TestAllocateSpillsUnderPressure(t *testing.T) {
	b := newRB(false)
	x := b.livein(ArchEAX)
	one := b.consti(1)
	// Create more simultaneously-live values than allocatable registers.
	var vals []ValueID
	for i := 0; i < 60; i++ {
		v := b.op2(Add, x, one)
		x = v
		vals = append(vals, v)
	}
	// Keep them all live until the end: fold into one sum.
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = b.op2(Xor, acc, v)
	}
	// Hmm: xor chain kills values as it goes. Force long ranges by
	// using early values late:
	for i := 0; i < 20; i++ {
		acc = b.op2(Add, acc, vals[i])
	}
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: acc})
	a := b.r.Allocate()
	if err := a.Verify(b.r); err != nil {
		t.Fatal(err)
	}
}

// TestAllocateRandomRegionsVerify: allocation never assigns overlapping
// live ranges to the same register.
func TestAllocateRandomRegionsVerify(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed + 1000))
		reg := randomRegion(r)
		reg.ForwardPass()
		reg.CSE()
		reg.DCE()
		a := reg.Allocate()
		if err := a.Verify(reg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGenerateSimpleBlock(t *testing.T) {
	b := newRB(false)
	x := b.livein(ArchEAX)
	c := b.consti(5)
	s := b.op2(Add, x, c)
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: s})
	a := b.r.Allocate()
	gen, err := b.r.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	// Expect CHKPT, ADDI (folded imm), MOVH to pinned, COMMIT, EXIT.
	ops := make([]host.Op, len(gen.Code))
	for i := range gen.Code {
		ops[i] = gen.Code[i].Op
	}
	if ops[0] != host.CHKPT {
		t.Errorf("first op %v", ops[0])
	}
	hasADDI := false
	for _, op := range ops {
		if op == host.ADDI {
			hasADDI = true
		}
		if op == host.LI {
			t.Errorf("constant not folded into ADDI: %v", ops)
		}
	}
	if !hasADDI {
		t.Errorf("no ADDI emitted: %v", ops)
	}
	last := gen.Code[len(gen.Code)-1]
	if last.Op != host.EXIT || last.Target != 0x2000 {
		t.Errorf("last op %v", last)
	}
	if gen.Code[len(gen.Code)-2].Op != host.COMMIT {
		t.Errorf("no commit before exit")
	}
	if _, ok := gen.ExitMeta[len(gen.Code)-1]; !ok {
		t.Errorf("exit meta missing")
	}
}

func TestGenerateExitIfSkipsWritebacks(t *testing.T) {
	b := newRB(false)
	x := b.livein(ArchEAX)
	y := b.livein(ArchEBX)
	cond := b.op2(Slt, x, y)
	s := b.op2(Add, x, y)
	b.emit(Inst{Op: ExitIf, A: cond, ImmU: 0x3000, State: []ArchVal{{Arch: ArchEAX, Val: s}}})
	b.exit(0x2000, ArchVal{Arch: ArchEBX, Val: s})
	a := b.r.Allocate()
	gen, err := b.r.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	// Find the BEQZ guarding the conditional exit; its target must land
	// after that exit's EXIT instruction.
	beqz := -1
	for i := range gen.Code {
		if gen.Code[i].Op == host.BEQZ {
			beqz = i
			break
		}
	}
	if beqz < 0 {
		t.Fatalf("no BEQZ for conditional exit")
	}
	landing := beqz + 1 + int(gen.Code[beqz].Imm)
	exitSeen := false
	for i := beqz + 1; i < landing; i++ {
		if gen.Code[i].Op == host.EXIT {
			exitSeen = true
		}
	}
	if !exitSeen {
		t.Errorf("BEQZ does not skip over the exit sequence")
	}
}
