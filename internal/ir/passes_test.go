package ir

import (
	"math"
	"math/rand"
	"testing"
)

// rb is a small region builder for tests.
type rb struct{ r *Region }

func newRB(asserts bool) *rb {
	return &rb{r: &Region{Entry: 0x1000, UseAsserts: asserts}}
}

func (b *rb) emit(in Inst) ValueID {
	if in.Dst == -1 {
		in.Dst = b.r.NewValue()
	}
	b.r.Emit(in)
	return in.Dst
}

func (b *rb) livein(a ArchReg) ValueID { return b.emit(Inst{Op: LiveIn, Dst: -1, Arch: a}) }
func (b *rb) consti(v uint32) ValueID  { return b.emit(Inst{Op: ConstI, Dst: -1, ImmU: v}) }
func (b *rb) op2(op Op, a, c ValueID) ValueID {
	return b.emit(Inst{Op: op, Dst: -1, A: a, B: c})
}
func (b *rb) exit(pc uint32, st ...ArchVal) {
	b.emit(Inst{Op: Exit, ImmU: pc, State: st})
}

func TestVerifyDetectsBadSSA(t *testing.T) {
	b := newRB(false)
	v := b.consti(1)
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: v})
	if err := b.r.Verify(); err != nil {
		t.Fatalf("valid region rejected: %v", err)
	}
	// Redefinition.
	bad := newRB(false)
	x := bad.consti(1)
	bad.r.Emit(Inst{Op: ConstI, Dst: x, ImmU: 2})
	bad.exit(0)
	if bad.r.Verify() == nil {
		t.Errorf("redefinition accepted")
	}
	// Use before def.
	bad2 := newRB(false)
	bad2.r.NumValues = 2
	bad2.r.Emit(Inst{Op: Add, Dst: 1, A: 2, B: 2})
	bad2.r.Emit(Inst{Op: ConstI, Dst: 2, ImmU: 0})
	bad2.exit(0)
	if bad2.r.Verify() == nil {
		t.Errorf("use-before-def accepted")
	}
	// Class mismatch: int into fadd.
	bad3 := newRB(false)
	i := bad3.consti(1)
	f := bad3.emit(Inst{Op: ConstF, Dst: -1, ImmF: 1})
	bad3.op2(Fadd, f, i)
	bad3.exit(0)
	if bad3.r.Verify() == nil {
		t.Errorf("class mismatch accepted")
	}
}

func TestForwardPassConstantFolding(t *testing.T) {
	b := newRB(false)
	c3 := b.consti(3)
	c4 := b.consti(4)
	sum := b.op2(Add, c3, c4)
	prod := b.op2(Mul, sum, c4) // 28
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: prod})
	b.r.ForwardPass()
	b.r.DCE()
	// Everything folds to one constant feeding the exit.
	var consts int
	var lastVal uint32
	for i := range b.r.Code {
		if b.r.Code[i].Op == ConstI {
			consts++
			lastVal = b.r.Code[i].ImmU
		}
		switch b.r.Code[i].Op {
		case Add, Mul:
			t.Errorf("arith survived folding: %v", b.r.Code[i].Op)
		}
	}
	if lastVal != 28 {
		t.Errorf("folded value %d, want 28", lastVal)
	}
	if consts == 0 {
		t.Errorf("no constant left")
	}
}

func TestForwardPassIdentities(t *testing.T) {
	b := newRB(false)
	x := b.livein(ArchEAX)
	z := b.consti(0)
	one := b.consti(1)
	allOnes := b.consti(0xFFFFFFFF)
	a1 := b.op2(Add, x, z)        // x
	a2 := b.op2(Mul, a1, one)     // x
	a3 := b.op2(And, a2, allOnes) // x
	a4 := b.op2(Or, a3, z)        // x
	a5 := b.op2(Shl, a4, z)       // x
	b.exit(0x2000, ArchVal{Arch: ArchEBX, Val: a5})
	b.r.ForwardPass()
	b.r.DCE()
	// The exit state must reference the livein directly.
	last := b.r.Code[len(b.r.Code)-1]
	if last.Op != Exit || last.State[0].Val != x {
		t.Fatalf("identities not collapsed: state=%v want v%d\n%s", last.State, x, b.r)
	}
}

func TestCopyPropagation(t *testing.T) {
	b := newRB(false)
	x := b.livein(ArchECX)
	m1 := b.emit(Inst{Op: Mov, Dst: -1, A: x})
	m2 := b.emit(Inst{Op: Mov, Dst: -1, A: m1})
	s := b.op2(Add, m2, m2)
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: s})
	b.r.ForwardPass()
	b.r.DCE()
	for i := range b.r.Code {
		if b.r.Code[i].Op == Mov {
			t.Errorf("mov survived copy propagation")
		}
		if b.r.Code[i].Op == Add && (b.r.Code[i].A != x || b.r.Code[i].B != x) {
			t.Errorf("add operands not propagated: %+v", b.r.Code[i])
		}
	}
}

func TestCSE(t *testing.T) {
	b := newRB(false)
	x := b.livein(ArchEAX)
	y := b.livein(ArchEBX)
	a1 := b.op2(Add, x, y)
	a2 := b.op2(Add, y, x) // commutative duplicate
	s := b.op2(Xor, a1, a2)
	b.exit(0x2000, ArchVal{Arch: ArchECX, Val: s})
	n := b.r.CSE()
	if n != 1 {
		t.Errorf("CSE removed %d, want 1", n)
	}
	b.r.ForwardPass() // xor x,x doesn't fold (not const) but adds resolve
	// After CSE the xor's operands are the same value.
	for i := range b.r.Code {
		if b.r.Code[i].Op == Xor && b.r.Code[i].A != b.r.Code[i].B {
			t.Errorf("xor operands differ after CSE")
		}
	}
}

func TestCSEDoesNotMergeLoads(t *testing.T) {
	b := newRB(false)
	addr := b.livein(ArchEBX)
	l1 := b.emit(Inst{Op: Ld32, Dst: -1, A: addr})
	l2 := b.emit(Inst{Op: Ld32, Dst: -1, A: addr})
	s := b.op2(Add, l1, l2)
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: s})
	if n := b.r.CSE(); n != 0 {
		t.Errorf("CSE touched loads (%d)", n)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	b := newRB(false)
	addr := b.livein(ArchEBX)
	dead := b.op2(Add, addr, addr)
	_ = dead
	v := b.consti(7)
	b.emit(Inst{Op: St32, A: addr, B: v})
	b.exit(0x2000)
	removed := b.r.DCE()
	if removed != 1 {
		t.Errorf("DCE removed %d, want 1 (the dead add)", removed)
	}
	hasStore := false
	for i := range b.r.Code {
		if b.r.Code[i].Op == St32 {
			hasStore = true
		}
	}
	if !hasStore {
		t.Errorf("DCE removed a store")
	}
}

func TestMemOptRedundantLoad(t *testing.T) {
	b := newRB(false)
	addr := b.livein(ArchEBX)
	l1 := b.emit(Inst{Op: Ld32, Dst: -1, A: addr, Off: 8})
	l2 := b.emit(Inst{Op: Ld32, Dst: -1, A: addr, Off: 8}) // redundant
	s := b.op2(Add, l1, l2)
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: s})
	st := b.r.MemOpt()
	if st.LoadsEliminated != 1 {
		t.Errorf("RLE eliminated %d, want 1", st.LoadsEliminated)
	}
}

func TestMemOptStoreForwarding(t *testing.T) {
	b := newRB(false)
	addr := b.livein(ArchEBX)
	v := b.livein(ArchECX)
	b.emit(Inst{Op: St32, A: addr, Off: 4, B: v})
	l := b.emit(Inst{Op: Ld32, Dst: -1, A: addr, Off: 4})
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: l})
	st := b.r.MemOpt()
	if st.LoadsEliminated != 1 {
		t.Fatalf("store forwarding eliminated %d", st.LoadsEliminated)
	}
	// The exit must now reference the stored value directly.
	last := b.r.Code[len(b.r.Code)-1]
	if last.State[0].Val != v {
		t.Errorf("forwarded value %d want %d", last.State[0].Val, v)
	}
}

func TestMemOptDeadStore(t *testing.T) {
	b := newRB(false)
	addr := b.livein(ArchEBX)
	v1 := b.consti(1)
	v2 := b.consti(2)
	b.emit(Inst{Op: St32, A: addr, B: v1}) // dead: overwritten
	b.emit(Inst{Op: St32, A: addr, B: v2})
	b.exit(0x2000)
	st := b.r.MemOpt()
	if st.StoresEliminated != 1 {
		t.Errorf("dead stores eliminated %d, want 1", st.StoresEliminated)
	}
}

func TestMemOptExitBlocksDeadStore(t *testing.T) {
	b := newRB(false)
	addr := b.livein(ArchEBX)
	cond := b.livein(ArchECX)
	v1 := b.consti(1)
	v2 := b.consti(2)
	b.emit(Inst{Op: St32, A: addr, B: v1})
	b.emit(Inst{Op: ExitIf, A: cond, ImmU: 0x3000}) // store observable here
	b.emit(Inst{Op: St32, A: addr, B: v2})
	b.exit(0x2000)
	st := b.r.MemOpt()
	if st.StoresEliminated != 0 {
		t.Errorf("store before a possible exit eliminated")
	}
}

func TestMemOptMayAliasBlocksRLE(t *testing.T) {
	b := newRB(false)
	a1 := b.livein(ArchEBX)
	a2 := b.livein(ArchESI) // unknown relation to a1
	v := b.livein(ArchECX)
	l1 := b.emit(Inst{Op: Ld32, Dst: -1, A: a1})
	b.emit(Inst{Op: St32, A: a2, B: v}) // may alias a1
	l2 := b.emit(Inst{Op: Ld32, Dst: -1, A: a1})
	s := b.op2(Add, l1, l2)
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: s})
	st := b.r.MemOpt()
	if st.LoadsEliminated != 0 {
		t.Errorf("RLE across may-alias store")
	}
}

func TestAliasClassification(t *testing.T) {
	cases := []struct {
		a, b memRef
		want AliasClass
	}{
		{memRef{base: 1, off: 0, width: 4}, memRef{base: 1, off: 0, width: 4}, AliasMust},
		{memRef{base: 1, off: 0, width: 4}, memRef{base: 1, off: 4, width: 4}, AliasNever},
		{memRef{base: 1, off: 0, width: 4}, memRef{base: 1, off: 2, width: 4}, AliasMay},
		{memRef{base: 1, off: 0, width: 4}, memRef{base: 2, off: 0, width: 4}, AliasMay},
		{memRef{base: 0, abs: 0x100, width: 4}, memRef{base: 0, abs: 0x104, width: 4}, AliasNever},
		{memRef{base: 0, abs: 0x100, width: 4}, memRef{base: 0, abs: 0x100, width: 4}, AliasMust},
		{memRef{base: 0, abs: 0x100, width: 8}, memRef{base: 0, abs: 0x104, width: 4}, AliasMay},
	}
	for _, c := range cases {
		if got := classify(c.a, c.b); got != c.want {
			t.Errorf("classify(%+v,%+v) = %v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestScheduleRespectsDependences(t *testing.T) {
	b := newRB(true)
	x := b.livein(ArchEAX)
	c1 := b.consti(1)
	a1 := b.op2(Add, x, c1)
	a2 := b.op2(Add, a1, c1)
	a3 := b.op2(Add, a2, c1)
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: a3})
	g := b.r.BuildDDG()
	b.r.Schedule(g, 0)
	if err := b.r.Verify(); err != nil {
		t.Fatalf("schedule broke SSA order: %v", err)
	}
}

func TestScheduleHoistsSpeculativeLoad(t *testing.T) {
	b := newRB(true)
	a1 := b.livein(ArchEBX)
	a2 := b.livein(ArchESI)
	v := b.livein(ArchECX)
	// Long dependent chain on the store address, then a store, then a
	// load that may alias: hoisting the load is profitable.
	c1 := b.consti(3)
	ch := b.op2(Mul, v, c1)
	ch = b.op2(Mul, ch, c1)
	ch = b.op2(Add, ch, a2)
	b.emit(Inst{Op: St32, A: ch, B: v})
	l := b.emit(Inst{Op: Ld32, Dst: -1, A: a1})
	s := b.op2(Add, l, v)
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: s})
	g := b.r.BuildDDG()
	st := b.r.Schedule(g, 8)
	if st.SpecLoads != 1 {
		t.Fatalf("spec loads %d, want 1", st.SpecLoads)
	}
	// The load must now precede the store and carry the Spec mark.
	loadIdx, storeIdx := -1, -1
	for i := range b.r.Code {
		if b.r.Code[i].Op == Ld32 {
			loadIdx = i
			if !b.r.Code[i].Spec {
				t.Errorf("hoisted load not marked speculative")
			}
		}
		if b.r.Code[i].Op == St32 {
			storeIdx = i
		}
	}
	if loadIdx > storeIdx {
		t.Errorf("load not hoisted (load@%d store@%d)", loadIdx, storeIdx)
	}
}

func TestScheduleNoSpecBudgetKeepsOrder(t *testing.T) {
	b := newRB(true)
	a1 := b.livein(ArchEBX)
	a2 := b.livein(ArchESI)
	v := b.livein(ArchECX)
	b.emit(Inst{Op: St32, A: a2, B: v})
	l := b.emit(Inst{Op: Ld32, Dst: -1, A: a1})
	b.exit(0x2000, ArchVal{Arch: ArchEAX, Val: l})
	g := b.r.BuildDDG()
	st := b.r.Schedule(g, 0)
	if st.SpecLoads != 0 {
		t.Fatalf("speculation without budget")
	}
	loadIdx, storeIdx := -1, -1
	for i := range b.r.Code {
		if b.r.Code[i].Op == Ld32 {
			loadIdx = i
		}
		if b.r.Code[i].Op == St32 {
			storeIdx = i
		}
	}
	if loadIdx < storeIdx {
		t.Errorf("load reordered without speculation budget")
	}
}

// TestPassesPreserveSemantics is the central IR property test: random
// regions evaluate identically before and after the full pipeline.
func TestPassesPreserveSemantics(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		reg := randomRegion(r)
		arch, archF, mem := randomState(r)

		ref := newEval(arch, archF, mem)
		if err := ref.run(reg); err != nil {
			t.Fatalf("seed %d: reference eval: %v", seed, err)
		}

		opt := cloneRegion(reg)
		opt.ForwardPass()
		opt.CSE()
		opt.DCE()
		opt.MemOpt()
		g := opt.BuildDDG()
		opt.Schedule(g, 4)
		if err := opt.Verify(); err != nil {
			t.Fatalf("seed %d: optimized region invalid: %v\n%s", seed, err, opt)
		}
		got := newEval(arch, archF, mem)
		if err := got.run(opt); err != nil {
			t.Fatalf("seed %d: optimized eval: %v\n%s", seed, err, opt)
		}
		// Speculative loads may execute early but the evaluator runs in
		// order, so results are directly comparable.
		if ref.exitPC != got.exitPC {
			t.Fatalf("seed %d: exit pc %#x vs %#x", seed, ref.exitPC, got.exitPC)
		}
		for a, v := range ref.final {
			if got.final[a] != v {
				t.Fatalf("seed %d: arch %v = %#x vs %#x\noriginal:\n%s\noptimized:\n%s",
					seed, a, got.final[a], v, reg, opt)
			}
		}
		for a, v := range ref.finalF {
			if math.Float64bits(got.finalF[a]) != math.Float64bits(v) {
				t.Fatalf("seed %d: arch %v = %g vs %g", seed, a, got.finalF[a], v)
			}
		}
		for addr, v := range ref.mem {
			if got.mem[addr] != v {
				t.Fatalf("seed %d: mem[%#x] = %#x vs %#x", seed, addr, got.mem[addr], v)
			}
		}
	}
}

// randomRegion builds a random well-formed region: straight-line integer
// and FP computation over liveins with loads, stores, conditional exits
// and a final exit carrying full state.
func randomRegion(r *rand.Rand) *Region {
	b := newRB(false)
	var ints []ValueID
	var fps []ValueID
	for _, a := range []ArchReg{ArchEAX, ArchEBX, ArchECX, ArchESI} {
		ints = append(ints, b.livein(a))
	}
	fps = append(fps, b.emit(Inst{Op: LiveIn, Dst: -1, Arch: ArchF0}))
	// Two disjoint memory bases as constants.
	base1 := b.consti(0x1000)
	base2 := b.consti(0x2000)
	bases := []ValueID{base1, base2, ints[1]}
	pickI := func() ValueID { return ints[r.Intn(len(ints))] }
	pickF := func() ValueID { return fps[r.Intn(len(fps))] }

	n := 10 + r.Intn(40)
	for i := 0; i < n; i++ {
		switch r.Intn(12) {
		case 0, 1, 2, 3:
			ops := []Op{Add, Sub, Mul, And, Or, Xor, Slt, Sltu, Seq, Sne, Shl, Shr, Sar, Div, Rem, Mulh}
			op := ops[r.Intn(len(ops))]
			ints = append(ints, b.op2(op, pickI(), pickI()))
		case 4:
			ints = append(ints, b.consti(r.Uint32()))
		case 5:
			addr := bases[r.Intn(len(bases))]
			ints = append(ints, b.emit(Inst{Op: Ld32, Dst: -1, A: addr, Off: int32(4 * r.Intn(8))}))
		case 6:
			addr := bases[r.Intn(len(bases))]
			b.emit(Inst{Op: St32, A: addr, Off: int32(4 * r.Intn(8)), B: pickI()})
		case 7:
			fop := []Op{Fadd, Fsub, Fmul}[r.Intn(3)]
			fps = append(fps, b.op2(fop, pickF(), pickF()))
		case 8:
			fps = append(fps, b.emit(Inst{Op: ConstF, Dst: -1, ImmF: r.NormFloat64()}))
		case 9:
			ints = append(ints, b.op2(Fslt, pickF(), pickF()))
		case 10:
			fps = append(fps, b.emit(Inst{Op: Fcvtf, Dst: -1, A: pickI()}))
		case 11:
			// Conditional side exit (multi-exit region).
			cond := b.op2(Seq, pickI(), pickI())
			b.emit(Inst{Op: ExitIf, A: cond, ImmU: uint32(0x3000 + i),
				State: []ArchVal{{Arch: ArchEAX, Val: pickI()}, {Arch: ArchF0 + 1, Val: pickF()}}})
		}
	}
	b.exit(0x2000,
		ArchVal{Arch: ArchEAX, Val: pickI()},
		ArchVal{Arch: ArchEBX, Val: pickI()},
		ArchVal{Arch: ArchECX, Val: pickI()},
		ArchVal{Arch: ArchF0, Val: pickF()},
	)
	return b.r
}

func randomState(r *rand.Rand) (map[ArchReg]uint64, map[ArchReg]float64, map[uint32]byte) {
	arch := map[ArchReg]uint64{
		ArchEAX: uint64(r.Uint32()), ArchEBX: 0x4000 + uint64(r.Uint32()%64)*4,
		ArchECX: uint64(r.Uint32()), ArchESI: uint64(r.Uint32()),
	}
	archF := map[ArchReg]float64{ArchF0: r.NormFloat64() * 10}
	mem := map[uint32]byte{}
	for i := 0; i < 256; i++ {
		mem[uint32(0x1000+i)] = byte(r.Uint32())
		mem[uint32(0x2000+i)] = byte(r.Uint32())
		mem[uint32(0x4000+i)] = byte(r.Uint32())
	}
	return arch, archF, mem
}

func cloneRegion(r *Region) *Region {
	cp := &Region{Entry: r.Entry, NumValues: r.NumValues, UseAsserts: r.UseAsserts}
	cp.Code = make([]Inst, len(r.Code))
	copy(cp.Code, r.Code)
	for i := range cp.Code {
		if len(r.Code[i].State) > 0 {
			cp.Code[i].State = append([]ArchVal(nil), r.Code[i].State...)
		}
	}
	return cp
}
