// Package ir implements the Translation Optimization Layer's
// intermediate representation and optimization pipeline: SSA-form linear
// regions, a forward pass of classic single-pass optimizations (constant
// folding/propagation, copy propagation, common subexpression
// elimination), backward dead code elimination, data dependence graph
// construction with memory disambiguation, redundant load elimination
// and store forwarding, list scheduling, linear-scan register
// allocation, and host code generation.
package ir

import "fmt"

// ValueID names an SSA value. 0 is "no value".
type ValueID int32

// ArchReg names a guest architectural location the IR reads at region
// entry and writes back at region exits: 0..7 guest GPRs, 8..12 the
// flags CF ZF SF OF PF as 0/1 values, 13..20 guest FP registers.
type ArchReg uint8

// Architectural register space.
const (
	ArchEAX ArchReg = iota
	ArchECX
	ArchEDX
	ArchEBX
	ArchESP
	ArchEBP
	ArchESI
	ArchEDI
	ArchCF
	ArchZF
	ArchSF
	ArchOF
	ArchPF
	ArchF0      // ArchF0+i is guest FP register i
	NumArchRegs = ArchF0 + 8
)

// IsFP reports whether the architectural location holds a float64.
func (a ArchReg) IsFP() bool { return a >= ArchF0 }

func (a ArchReg) String() string {
	switch {
	case a < ArchCF:
		return [...]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}[a]
	case a == ArchCF:
		return "cf"
	case a == ArchZF:
		return "zf"
	case a == ArchSF:
		return "sf"
	case a == ArchOF:
		return "of"
	case a == ArchPF:
		return "pf"
	default:
		return fmt.Sprintf("f%d", a-ArchF0)
	}
}

// Op enumerates IR operations.
type Op uint8

// IR operation space.
const (
	Nop Op = iota

	LiveIn // Dst <- entry value of architectural register Arch
	ConstI // Dst <- ImmU
	ConstF // Dst <- ImmF
	Mov    // Dst <- A (integer)
	FMov   // Dst <- A (float)

	Add
	Sub
	Mul
	Mulh // high 32 bits of signed 64-bit product
	Div  // deterministic semantics shared with guest IDIV and host DIV
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Sar
	Slt
	Sltu
	Seq
	Sne

	Ld32 // Dst <- mem32[A+Off]
	Ld8  // Dst <- zext mem8[A+Off]
	LdF  // Dst <- mem64[A+Off]
	St32 // mem32[A+Off] <- B
	St8  // mem8[A+Off] <- B
	StF  // mem64[A+Off] <- B

	Fadd
	Fsub
	Fmul
	Fdiv
	Fsqrt
	Fabs
	Fneg
	Fcvti  // int <- float, truncating/saturating
	Fcvtf  // float <- int32
	Fslt   // int 0/1 <- A < B (floats)
	Fseq   // int 0/1 <- A == B (floats)
	Funord // int 0/1 <- isNaN(A) || isNaN(B)

	Exit    // leave region to guest PC ImmU; State holds the arch snapshot
	ExitIf  // if A != 0 leave region to guest PC ImmU
	ExitInd // leave region to guest PC held in A
	Assert  // speculation check: rollback if A == 0
	SetArch // eagerly write A into the pinned host register of Arch

	numOps
)

// NumOps is the number of IR operations.
const NumOps = int(numOps)

var opNames = [NumOps]string{
	Nop: "nop", LiveIn: "livein", ConstI: "consti", ConstF: "constf",
	Mov: "mov", FMov: "fmov",
	Add: "add", Sub: "sub", Mul: "mul", Mulh: "mulh", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr", Sar: "sar",
	Slt: "slt", Sltu: "sltu", Seq: "seq", Sne: "sne",
	Ld32: "ld32", Ld8: "ld8", LdF: "ldf", St32: "st32", St8: "st8", StF: "stf",
	Fadd: "fadd", Fsub: "fsub", Fmul: "fmul", Fdiv: "fdiv", Fsqrt: "fsqrt",
	Fabs: "fabs", Fneg: "fneg", Fcvti: "fcvti", Fcvtf: "fcvtf",
	Fslt: "fslt", Fseq: "fseq", Funord: "funord",
	Exit: "exit", ExitIf: "exitif", ExitInd: "exitind", Assert: "assert",
	SetArch: "setarch",
}

func (op Op) String() string {
	if int(op) < NumOps && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// ArchVal binds an architectural register to the SSA value that must be
// written back when leaving through an exit.
type ArchVal struct {
	Arch ArchReg
	Val  ValueID
}

// ExitInfo is retirement metadata the translator attaches to exits; it
// flows through to the code cache block unchanged.
type ExitInfo struct {
	GuestInsns int
	GuestBBs   int
	Taken      bool
}

// Inst is one IR instruction.
type Inst struct {
	Op   Op
	Dst  ValueID
	A, B ValueID
	Arch ArchReg // LiveIn source
	ImmU uint32  // ConstI value; Exit/ExitIf guest target PC
	Off  int32   // memory displacement for loads and stores
	ImmF float64 // ConstF value
	GPC  uint32  // guest PC this instruction derives from
	Spec bool    // speculatively hoisted memory access

	// State is the architectural writeback set of Exit/ExitIf/ExitInd.
	State []ArchVal
	// Meta is exit retirement metadata.
	Meta ExitInfo
}

// IsExit reports whether the instruction leaves the region.
func (in *Inst) IsExit() bool {
	return in.Op == Exit || in.Op == ExitIf || in.Op == ExitInd
}

// IsLoad reports whether the instruction reads data memory.
func (in *Inst) IsLoad() bool { return in.Op == Ld32 || in.Op == Ld8 || in.Op == LdF }

// IsStore reports whether the instruction writes data memory.
func (in *Inst) IsStore() bool { return in.Op == St32 || in.Op == St8 || in.Op == StF }

// MemWidth reports the access width in bytes of a load or store.
func (in *Inst) MemWidth() uint8 {
	switch in.Op {
	case Ld8, St8:
		return 1
	case Ld32, St32:
		return 4
	case LdF, StF:
		return 8
	}
	return 0
}

// HasSideEffect reports whether the instruction must be kept regardless
// of value liveness.
func (in *Inst) HasSideEffect() bool {
	return in.IsStore() || in.IsExit() || in.Op == Assert || in.Op == SetArch
}

// Uses calls f for every value the instruction reads.
func (in *Inst) Uses(f func(ValueID)) {
	if in.A != 0 {
		f(in.A)
	}
	if in.B != 0 {
		f(in.B)
	}
	for _, av := range in.State {
		if av.Val != 0 {
			f(av.Val)
		}
	}
}

// FPResult reports whether Dst holds a float64.
func (in *Inst) FPResult() bool {
	switch in.Op {
	case ConstF, FMov, Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fabs, Fneg, Fcvtf, LdF:
		return true
	case LiveIn:
		return in.Arch.IsFP()
	}
	return false
}

// Region is a single-entry linear region of SSA IR: the translation unit
// of both BBM and SBM. Side exits make it multi-exit; with UseAsserts
// the region is single-entry single-exit and control speculation is
// expressed with Assert instructions.
type Region struct {
	Entry      uint32 // guest entry PC
	Code       []Inst
	NumValues  int // values are 1..NumValues
	UseAsserts bool
}

// NewValue allocates a fresh SSA value.
func (r *Region) NewValue() ValueID {
	r.NumValues++
	return ValueID(r.NumValues)
}

// Emit appends an instruction and returns its index.
func (r *Region) Emit(in Inst) int {
	r.Code = append(r.Code, in)
	return len(r.Code) - 1
}

// String renders the region as a debug listing.
func (r *Region) String() string {
	s := fmt.Sprintf("region @%#x (%d values, asserts=%v)\n", r.Entry, r.NumValues, r.UseAsserts)
	for i := range r.Code {
		in := &r.Code[i]
		s += fmt.Sprintf("  %3d: %s\n", i, in.debugString())
	}
	return s
}

func (in *Inst) debugString() string {
	switch in.Op {
	case LiveIn:
		return fmt.Sprintf("v%d = livein %s", in.Dst, in.Arch)
	case ConstI:
		return fmt.Sprintf("v%d = const %#x", in.Dst, in.ImmU)
	case ConstF:
		return fmt.Sprintf("v%d = constf %g", in.Dst, in.ImmF)
	case Mov, FMov:
		return fmt.Sprintf("v%d = %s v%d", in.Dst, in.Op, in.A)
	case Ld32, Ld8, LdF:
		spec := ""
		if in.Spec {
			spec = ".s"
		}
		return fmt.Sprintf("v%d = %s%s [v%d%+d]", in.Dst, in.Op, spec, in.A, in.Off)
	case St32, St8, StF:
		return fmt.Sprintf("%s [v%d%+d] = v%d", in.Op, in.A, in.Off, in.B)
	case Exit:
		return fmt.Sprintf("exit @%#x %s", in.ImmU, stateString(in.State))
	case ExitIf:
		return fmt.Sprintf("exitif v%d @%#x %s", in.A, in.ImmU, stateString(in.State))
	case ExitInd:
		return fmt.Sprintf("exitind v%d %s", in.A, stateString(in.State))
	case Assert:
		return fmt.Sprintf("assert v%d", in.A)
	case SetArch:
		return fmt.Sprintf("setarch %s = v%d", in.Arch, in.A)
	case Fsqrt, Fabs, Fneg, Fcvti, Fcvtf:
		return fmt.Sprintf("v%d = %s v%d", in.Dst, in.Op, in.A)
	default:
		if in.B != 0 {
			return fmt.Sprintf("v%d = %s v%d, v%d", in.Dst, in.Op, in.A, in.B)
		}
		return fmt.Sprintf("v%d = %s v%d", in.Dst, in.Op, in.A)
	}
}

func stateString(st []ArchVal) string {
	if len(st) == 0 {
		return "{}"
	}
	s := "{"
	for i, av := range st {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=v%d", av.Arch, av.Val)
	}
	return s + "}"
}
