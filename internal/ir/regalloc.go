package ir

import (
	"fmt"
	"sort"

	"darco/internal/host"
)

// Linear scan register allocation over the scheduled linear region.
//
// Guest architectural state is pinned (LiveIn values read host registers
// r1..r13 / f1..f8 directly and are never reallocated); every other
// value gets a temporary from r16..r61 / f9..f29 or, under pressure, a
// spill slot serviced through reserved scratch registers.

// Allocatable register pools and scratch registers.
const (
	intTempLo = host.RTempBase // 16
	intTempHi = 61             // inclusive
	IntScr1   = 62
	IntScr2   = 63

	fpTempLo = host.FTempBase // 9
	fpTempHi = 29             // inclusive
	FPScr1   = 30
	FPScr2   = 31
)

// LocKind classifies where a value lives.
type LocKind uint8

// Location kinds.
const (
	LocNone   LocKind = iota // dead or never materialised
	LocImm                   // constant folded into immediates at use sites
	LocPinned                // guest architectural host register
	LocReg                   // allocated temporary register
	LocSlot                  // spill slot
)

// Loc is the allocated location of one SSA value.
type Loc struct {
	Kind LocKind
	N    int  // register number or slot index
	FP   bool // float64 class
}

func (l Loc) String() string {
	switch l.Kind {
	case LocImm:
		return "imm"
	case LocPinned, LocReg:
		if l.FP {
			return fmt.Sprintf("f%d", l.N)
		}
		return fmt.Sprintf("r%d", l.N)
	case LocSlot:
		return fmt.Sprintf("slot%d", l.N)
	}
	return "-"
}

// Alloc is the result of register allocation.
type Alloc struct {
	Loc      []Loc // indexed by ValueID
	IntSlots int
	FPSlots  int
	Spills   int
	ConstI   map[ValueID]uint32
	ConstF   map[ValueID]float64
}

// PinnedHostReg maps an architectural register to its pinned host register.
func PinnedHostReg(a ArchReg) (reg uint8, fp bool) {
	switch {
	case a < ArchCF:
		return uint8(host.RGuestGPR + int(a)), false
	case a <= ArchPF:
		return uint8(host.RFlagCF + int(a-ArchCF)), false
	default:
		return uint8(host.FGuestFPR + int(a-ArchF0)), true
	}
}

// immUsable reports whether value v used as the B operand of in can be
// folded into a host immediate form.
func immUsable(in *Inst, v ValueID) bool {
	switch in.Op {
	case Add, Sub, And, Or, Xor, Shl, Shr, Sar:
		return v == in.B
	}
	return false
}

// Allocate assigns a location to every value in the region.
func (r *Region) Allocate() *Alloc {
	n := len(r.Code)
	a := &Alloc{
		Loc:    make([]Loc, r.NumValues+1),
		ConstI: make(map[ValueID]uint32),
		ConstF: make(map[ValueID]float64),
	}

	defIdx := make([]int, r.NumValues+1)
	lastUse := make([]int, r.NumValues+1)
	needReg := make([]bool, r.NumValues+1)
	isConst := make([]bool, r.NumValues+1)
	isFP := make([]bool, r.NumValues+1)
	for i := range defIdx {
		defIdx[i] = -1
		lastUse[i] = -1
	}

	for i := 0; i < n; i++ {
		in := &r.Code[i]
		if in.Dst != 0 {
			defIdx[in.Dst] = i
			isFP[in.Dst] = in.FPResult()
			switch in.Op {
			case ConstI:
				isConst[in.Dst] = true
				a.ConstI[in.Dst] = in.ImmU
			case ConstF:
				isConst[in.Dst] = true
				a.ConstF[in.Dst] = in.ImmF
			}
		}
		mark := func(v ValueID, reg bool) {
			if v == 0 {
				return
			}
			lastUse[v] = i
			if reg && !isConst[v] {
				needReg[v] = true
			}
			if reg && isConst[v] && !immUsable(in, v) && !isExitStateUse(in, v) {
				needReg[v] = true
			}
		}
		if in.A != 0 {
			mark(in.A, true)
		}
		if in.B != 0 {
			mark(in.B, true)
		}
		for _, av := range in.State {
			mark(av.Val, true) // isExitStateUse handles const exemption
		}
	}

	// Pinned LiveIn values.
	for i := 0; i < n; i++ {
		in := &r.Code[i]
		if in.Op == LiveIn {
			reg, fp := PinnedHostReg(in.Arch)
			a.Loc[in.Dst] = Loc{Kind: LocPinned, N: int(reg), FP: fp}
		}
	}

	// Constants that never need a register are immediates.
	for v := ValueID(1); int(v) <= r.NumValues; v++ {
		if isConst[v] && !needReg[v] {
			a.Loc[v] = Loc{Kind: LocImm, FP: isFP[v]}
		}
	}

	// Linear scan over the remaining values.
	type interval struct {
		v          ValueID
		start, end int
		fp         bool
	}
	var ivs []interval
	for v := ValueID(1); int(v) <= r.NumValues; v++ {
		if a.Loc[v].Kind != LocNone || defIdx[v] < 0 {
			continue
		}
		end := lastUse[v]
		if end < defIdx[v] {
			end = defIdx[v]
		}
		ivs = append(ivs, interval{v: v, start: defIdx[v], end: end, fp: isFP[v]})
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].v < ivs[j].v
	})

	alloc := func(fp bool, lo, hi int, slots *int) {
		free := make([]int, 0, hi-lo+1)
		for reg := lo; reg <= hi; reg++ {
			free = append(free, reg)
		}
		type activeIv struct {
			end int
			v   ValueID
			reg int
		}
		var active []activeIv
		for _, iv := range ivs {
			if iv.fp != fp {
				continue
			}
			// Expire.
			kept := active[:0]
			for _, ac := range active {
				if ac.end < iv.start {
					free = append(free, ac.reg)
				} else {
					kept = append(kept, ac)
				}
			}
			active = kept
			if len(free) > 0 {
				reg := free[len(free)-1]
				free = free[:len(free)-1]
				a.Loc[iv.v] = Loc{Kind: LocReg, N: reg, FP: fp}
				active = append(active, activeIv{end: iv.end, v: iv.v, reg: reg})
				continue
			}
			// Spill the active interval with the furthest end, or the
			// current one if it ends last.
			far := -1
			for k, ac := range active {
				if far < 0 || ac.end > active[far].end {
					far = k
				}
			}
			if far >= 0 && active[far].end > iv.end {
				victim := active[far]
				a.Loc[victim.v] = Loc{Kind: LocSlot, N: *slots, FP: fp}
				*slots++
				a.Spills++
				a.Loc[iv.v] = Loc{Kind: LocReg, N: victim.reg, FP: fp}
				active[far] = activeIv{end: iv.end, v: iv.v, reg: victim.reg}
			} else {
				a.Loc[iv.v] = Loc{Kind: LocSlot, N: *slots, FP: fp}
				*slots++
				a.Spills++
			}
		}
	}
	alloc(false, intTempLo, intTempHi, &a.IntSlots)
	alloc(true, fpTempLo, fpTempHi, &a.FPSlots)
	return a
}

// isExitStateUse reports whether v is used by in only as exit-state
// writeback (where constants can be materialised by the move itself).
func isExitStateUse(in *Inst, v ValueID) bool {
	if !in.IsExit() {
		return false
	}
	if in.A == v || in.B == v {
		return false
	}
	for _, av := range in.State {
		if av.Val == v {
			return true
		}
	}
	return false
}

// Verify checks that no two simultaneously-live values share a register.
func (a *Alloc) Verify(r *Region) error {
	lastUse := make([]int, r.NumValues+1)
	defIdx := make([]int, r.NumValues+1)
	for i := range lastUse {
		lastUse[i] = -1
		defIdx[i] = -1
	}
	for i := range r.Code {
		in := &r.Code[i]
		if in.Dst != 0 {
			defIdx[in.Dst] = i
		}
		in.Uses(func(v ValueID) { lastUse[v] = i })
	}
	for v1 := ValueID(1); int(v1) <= r.NumValues; v1++ {
		l1 := a.Loc[v1]
		if l1.Kind != LocReg || defIdx[v1] < 0 {
			continue
		}
		for v2 := v1 + 1; int(v2) <= r.NumValues; v2++ {
			l2 := a.Loc[v2]
			if l2.Kind != LocReg || l1.N != l2.N || l1.FP != l2.FP || defIdx[v2] < 0 {
				continue
			}
			s1, e1 := defIdx[v1], lastUse[v1]
			s2, e2 := defIdx[v2], lastUse[v2]
			if e1 < s1 {
				e1 = s1
			}
			if e2 < s2 {
				e2 = s2
			}
			if s1 < e2 && s2 < e1 {
				return fmt.Errorf("ir: values v%d [%d,%d] and v%d [%d,%d] share %s",
					v1, s1, e1, v2, s2, e2, l1)
			}
		}
	}
	return nil
}
