package ir

// List scheduler. Orders region instructions by critical-path priority
// subject to the DDG, optionally breaking may-alias store→load edges by
// converting the hoisted load into a speculative memory operation (the
// paper's conversion of reordered accesses into speculative loads
// checked against the hardware alias table).

// SchedStats reports what scheduling did.
type SchedStats struct {
	SpecLoads int // loads hoisted speculatively above may-alias stores
	Length    int // schedule makespan in cycles (unit-width estimate)
}

// latencyOf estimates issue-to-result latency per IR op for priority
// computation, mirroring the host ISA's default latencies.
func latencyOf(op Op) int {
	switch op {
	case Mul, Mulh:
		return 3
	case Div, Rem:
		return 12
	case Ld32, Ld8, LdF:
		return 2
	case Fadd, Fsub:
		return 3
	case Fmul:
		return 4
	case Fdiv:
		return 12
	case Fsqrt:
		return 20
	case Fcvti, Fcvtf, Fslt, Fseq, Funord:
		return 2
	default:
		return 1
	}
}

// Schedule reorders the region in place. maxSpec bounds the number of
// speculative loads (the runtime alias table is finite); pass 0 to
// forbid speculation entirely.
func (r *Region) Schedule(g *DDG, maxSpec int) SchedStats {
	n := len(r.Code)
	if n == 0 {
		return SchedStats{}
	}

	// Critical-path height (including breakable edges: speculation is
	// opportunistic, priorities assume edges hold).
	height := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		h := latencyOf(r.Code[i].Op)
		for _, e := range g.Succs[i] {
			if v := height[e.To] + latencyOf(r.Code[i].Op); v > h {
				h = v
			}
		}
		height[i] = h
	}

	hardPreds := make([]int, n) // unscheduled non-breakable preds
	softPreds := make([]int, n) // unscheduled breakable preds
	for i := 0; i < n; i++ {
		for _, e := range g.Preds[i] {
			if e.Breakable {
				softPreds[i]++
			} else {
				hardPreds[i]++
			}
		}
	}

	ready := make([]int, 0, n) // hard-ready instructions
	for i := 0; i < n; i++ {
		if hardPreds[i] == 0 {
			ready = append(ready, i)
		}
	}

	readyTime := make([]int, n)
	scheduled := make([]bool, n)
	order := make([]int, 0, n)
	var st SchedStats
	specUsed := 0

	time := 0
	// better orders candidates by earliest readiness, then by critical
	// path height.
	better := func(i, j int) bool {
		if j < 0 {
			return true
		}
		if readyTime[i] != readyTime[j] {
			return readyTime[i] < readyTime[j]
		}
		return height[i] > height[j]
	}
	pick := func() int {
		bestNS, bestS := -1, -1
		for _, i := range ready {
			if scheduled[i] {
				continue
			}
			if softPreds[i] > 0 {
				if specUsed < maxSpec && r.Code[i].IsLoad() && better(i, bestS) {
					bestS = i
				}
				continue
			}
			if better(i, bestNS) {
				bestNS = i
			}
		}
		// Speculatively hoist a load only when it can issue now and the
		// best in-order candidate would stall the pipeline.
		if bestS >= 0 && readyTime[bestS] <= time &&
			(bestNS < 0 || readyTime[bestNS] > time) {
			specUsed++
			st.SpecLoads++
			r.Code[bestS].Spec = true
			return bestS
		}
		return bestNS
	}

	for len(order) < n {
		i := pick()
		if i < 0 {
			// Unreachable with a well-formed DAG: the topologically
			// first unscheduled instruction always has every pred
			// scheduled and is therefore pickable without speculation.
			// Fall back to the original order defensively, clearing
			// any speculation marks already made (a Spec flag without
			// the corresponding hoist would livelock at runtime).
			for j := range r.Code {
				r.Code[j].Spec = false
			}
			return SchedStats{Length: n}
		}
		scheduled[i] = true
		if readyTime[i] > time {
			time = readyTime[i]
		}
		done := time + latencyOf(r.Code[i].Op)
		order = append(order, i)
		time++
		for _, e := range g.Succs[i] {
			if e.Breakable {
				softPreds[e.To]--
			} else {
				hardPreds[e.To]--
			}
			if done > readyTime[e.To] {
				readyTime[e.To] = done
			}
			if hardPreds[e.To] == 0 && !scheduled[e.To] {
				ready = append(ready, e.To)
			}
		}
		if time > st.Length {
			st.Length = time
		}
	}
	newCode := make([]Inst, n)
	for pos, idx := range order {
		newCode[pos] = r.Code[idx]
	}
	r.Code = newCode
	return st
}
