package ir

import (
	"fmt"
	"math"
)

// evalState is a reference evaluator for linear IR regions, used to
// check that optimization passes preserve semantics.
type evalState struct {
	vals   map[ValueID]uint64 // raw 64-bit storage; ints in low 32 bits
	fvals  map[ValueID]float64
	arch   map[ArchReg]uint64 // int arch regs
	archF  map[ArchReg]float64
	mem    map[uint32]byte
	exited bool
	exitPC uint32
	final  map[ArchReg]uint64
	finalF map[ArchReg]float64
}

func newEval(arch map[ArchReg]uint64, archF map[ArchReg]float64, mem map[uint32]byte) *evalState {
	cp := make(map[uint32]byte, len(mem))
	for k, v := range mem {
		cp[k] = v
	}
	return &evalState{
		vals: make(map[ValueID]uint64), fvals: make(map[ValueID]float64),
		arch: arch, archF: archF, mem: cp,
		final: make(map[ArchReg]uint64), finalF: make(map[ArchReg]float64),
	}
}

func (e *evalState) ld(addr uint32, w uint8) uint64 {
	var v uint64
	for i := uint8(0); i < w; i++ {
		v |= uint64(e.mem[addr+uint32(i)]) << (8 * i)
	}
	return v
}

func (e *evalState) st(addr uint32, w uint8, v uint64) {
	for i := uint8(0); i < w; i++ {
		e.mem[addr+uint32(i)] = byte(v >> (8 * i))
	}
}

// run evaluates the region. Exit state snapshots land in final/finalF.
// Asserts must hold (the evaluator does not model rollback); the random
// generator never emits Assert.
func (e *evalState) run(r *Region) error {
	iv := func(v ValueID) uint32 { return uint32(e.vals[v]) }
	fv := func(v ValueID) float64 { return e.fvals[v] }
	for i := range r.Code {
		in := &r.Code[i]
		switch in.Op {
		case Nop:
		case LiveIn:
			if in.Arch.IsFP() {
				e.fvals[in.Dst] = e.archF[in.Arch]
			} else {
				e.vals[in.Dst] = e.arch[in.Arch]
			}
		case ConstI:
			e.vals[in.Dst] = uint64(in.ImmU)
		case ConstF:
			e.fvals[in.Dst] = in.ImmF
		case Mov:
			e.vals[in.Dst] = e.vals[in.A]
		case FMov:
			e.fvals[in.Dst] = e.fvals[in.A]
		case Add, Sub, Mul, Mulh, Div, Rem, And, Or, Xor, Shl, Shr, Sar, Slt, Sltu, Seq, Sne:
			v, ok := foldInt(in.Op, iv(in.A), iv(in.B), true, true)
			if !ok {
				return fmt.Errorf("eval: unfoldable %v", in.Op)
			}
			e.vals[in.Dst] = uint64(v)
		case Ld32:
			e.vals[in.Dst] = e.ld(iv(in.A)+uint32(in.Off), 4)
		case Ld8:
			e.vals[in.Dst] = e.ld(iv(in.A)+uint32(in.Off), 1)
		case LdF:
			e.fvals[in.Dst] = math.Float64frombits(e.ld(iv(in.A)+uint32(in.Off), 8))
		case St32:
			e.st(iv(in.A)+uint32(in.Off), 4, uint64(iv(in.B)))
		case St8:
			e.st(iv(in.A)+uint32(in.Off), 1, uint64(iv(in.B)))
		case StF:
			e.st(iv(in.A)+uint32(in.Off), 8, math.Float64bits(fv(in.B)))
		case Fadd:
			e.fvals[in.Dst] = fv(in.A) + fv(in.B)
		case Fsub:
			e.fvals[in.Dst] = fv(in.A) - fv(in.B)
		case Fmul:
			e.fvals[in.Dst] = fv(in.A) * fv(in.B)
		case Fdiv:
			e.fvals[in.Dst] = fv(in.A) / fv(in.B)
		case Fsqrt:
			e.fvals[in.Dst] = math.Sqrt(fv(in.A))
		case Fabs:
			e.fvals[in.Dst] = math.Abs(fv(in.A))
		case Fneg:
			e.fvals[in.Dst] = -fv(in.A)
		case Fcvti:
			e.vals[in.Dst] = uint64(uint32(truncF64(fv(in.A))))
		case Fcvtf:
			e.fvals[in.Dst] = float64(int32(iv(in.A)))
		case Fslt:
			e.vals[in.Dst] = uint64(b2u(fv(in.A) < fv(in.B)))
		case Fseq:
			e.vals[in.Dst] = uint64(b2u(fv(in.A) == fv(in.B)))
		case Funord:
			e.vals[in.Dst] = uint64(b2u(math.IsNaN(fv(in.A)) || math.IsNaN(fv(in.B))))
		case Exit:
			e.snapshot(in)
			e.exited = true
			e.exitPC = in.ImmU
			return nil
		case ExitIf:
			if iv(in.A) != 0 {
				e.snapshot(in)
				e.exited = true
				e.exitPC = in.ImmU
				return nil
			}
		case ExitInd:
			e.snapshot(in)
			e.exited = true
			e.exitPC = iv(in.A)
			return nil
		case Assert:
			if iv(in.A) == 0 {
				return fmt.Errorf("eval: assert failed at %d", i)
			}
		case SetArch:
			// Architectural write of a value the exit state also
			// carries; no observable effect at region granularity.
		default:
			return fmt.Errorf("eval: unhandled op %v", in.Op)
		}
	}
	return fmt.Errorf("eval: fell off region end")
}

func (e *evalState) snapshot(in *Inst) {
	for _, av := range in.State {
		if av.Arch.IsFP() {
			e.finalF[av.Arch] = e.fvals[av.Val]
		} else {
			e.final[av.Arch] = e.vals[av.Val]
		}
	}
}
