package ir

import (
	"math/rand"
	"testing"
)

func benchRegion(seed int64) *Region {
	r := rand.New(rand.NewSource(seed))
	return randomRegion(r)
}

func BenchmarkOptimizePipeline(b *testing.B) {
	base := benchRegion(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := cloneRegion(base)
		reg.ForwardPass()
		reg.CSE()
		reg.DCE()
		reg.MemOpt()
		g := reg.BuildDDG()
		reg.Schedule(g, 8)
	}
}

func BenchmarkRegisterAllocation(b *testing.B) {
	base := benchRegion(43)
	base.ForwardPass()
	base.DCE()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := cloneRegion(base)
		reg.Allocate()
	}
}

func BenchmarkCodegen(b *testing.B) {
	reg := benchRegion(44)
	reg.ForwardPass()
	reg.DCE()
	alloc := reg.Allocate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Generate(alloc); err != nil {
			b.Fatal(err)
		}
	}
}
