package ir

import (
	"fmt"
	"math"
)

// Verify checks SSA invariants: every value is defined exactly once,
// every use is dominated by its definition (defined earlier in the
// linear region), and operand classes (int/float) are consistent.
func (r *Region) Verify() error {
	defAt := make([]int, r.NumValues+1)
	for i := range defAt {
		defAt[i] = -1
	}
	isFP := make([]bool, r.NumValues+1)
	for i := range r.Code {
		in := &r.Code[i]
		var err error
		in.Uses(func(v ValueID) {
			if err != nil {
				return
			}
			if v <= 0 || int(v) > r.NumValues {
				err = fmt.Errorf("ir: inst %d uses out-of-range value v%d", i, v)
			} else if defAt[v] < 0 {
				err = fmt.Errorf("ir: inst %d uses v%d before definition", i, v)
			}
		})
		if err != nil {
			return err
		}
		if in.Dst != 0 {
			if in.Dst <= 0 || int(in.Dst) > r.NumValues {
				return fmt.Errorf("ir: inst %d defines out-of-range value v%d", i, in.Dst)
			}
			if defAt[in.Dst] >= 0 {
				return fmt.Errorf("ir: value v%d redefined at inst %d (first at %d)", in.Dst, i, defAt[in.Dst])
			}
			defAt[in.Dst] = i
			isFP[in.Dst] = in.FPResult()
		}
	}
	// Class consistency on float-consuming ops.
	for i := range r.Code {
		in := &r.Code[i]
		wantF := func(v ValueID) error {
			if v != 0 && !isFP[v] {
				return fmt.Errorf("ir: inst %d (%s) consumes int value v%d as float", i, in.Op, v)
			}
			return nil
		}
		switch in.Op {
		case Fadd, Fsub, Fmul, Fdiv, Fslt, Fseq, Funord:
			if err := wantF(in.A); err != nil {
				return err
			}
			if err := wantF(in.B); err != nil {
				return err
			}
		case Fsqrt, Fabs, Fneg, Fcvti, FMov, StF:
			v := in.A
			if in.Op == StF {
				v = in.B
			}
			if err := wantF(v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Optimize runs the paper's forward pass (constant folding, constant and
// copy propagation, common subexpression elimination) followed by the
// backward dead code elimination pass. Returns per-pass removal counts.
func (r *Region) Optimize() (folded, csed, dce int) {
	folded = r.ForwardPass()
	csed = r.CSE()
	dce = r.DCE()
	return
}

// ForwardPass performs constant folding, constant propagation and copy
// propagation in one forward scan, rewriting uses through a resolution
// map. It returns the number of instructions reduced to simpler forms.
func (r *Region) ForwardPass() int {
	resolve := make([]ValueID, r.NumValues+1)
	constI := make(map[ValueID]uint32)
	constF := make(map[ValueID]float64)
	changed := 0

	res := func(v ValueID) ValueID {
		for v != 0 && resolve[v] != 0 {
			v = resolve[v]
		}
		return v
	}

	for i := range r.Code {
		in := &r.Code[i]
		in.A = res(in.A)
		in.B = res(in.B)
		for j := range in.State {
			in.State[j].Val = res(in.State[j].Val)
		}
		switch in.Op {
		case ConstI:
			constI[in.Dst] = in.ImmU
		case ConstF:
			constF[in.Dst] = in.ImmF
		case Mov, FMov:
			// Copy propagation: all later uses see the source.
			resolve[in.Dst] = in.A
			in.Op = Nop
			in.Dst, in.A = 0, 0
			changed++
		default:
			if in.Dst == 0 {
				continue
			}
			ca, aok := constI[in.A]
			cb, bok := constI[in.B]
			fa, faok := constF[in.A]
			fb, fbok := constF[in.B]
			if v, ok := foldInt(in.Op, ca, cb, aok, bok); ok {
				in.Op = ConstI
				in.ImmU = v
				in.A, in.B = 0, 0
				constI[in.Dst] = v
				changed++
				continue
			}
			if v, isInt, iv, ok := foldFloat(in.Op, fa, fb, faok, fbok); ok {
				if isInt {
					in.Op = ConstI
					in.ImmU = iv
				} else {
					in.Op = ConstF
					in.ImmF = v
				}
				in.A, in.B = 0, 0
				if isInt {
					constI[in.Dst] = iv
				} else {
					constF[in.Dst] = v
				}
				changed++
				continue
			}
			// Algebraic identities with one constant operand.
			if nv, ok := foldIdentity(in, ca, cb, aok, bok); ok {
				resolve[in.Dst] = nv
				in.Op = Nop
				in.Dst, in.A, in.B = 0, 0, 0
				changed++
			}
		}
	}
	return changed
}

// foldInt evaluates integer ops with constant operands, sharing the
// deterministic division semantics of the guest and host ISAs.
func foldInt(op Op, a, b uint32, aok, bok bool) (uint32, bool) {
	if !aok || (!bok && op != Nop) {
		return 0, false
	}
	switch op {
	case Add:
		return a + b, true
	case Sub:
		return a - b, true
	case Mul:
		return uint32(int32(a) * int32(b)), true
	case Mulh:
		return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32), true
	case Div:
		switch {
		case int32(b) == 0:
			return 0xFFFFFFFF, true
		case int32(a) == math.MinInt32 && int32(b) == -1:
			return 0x80000000, true
		default:
			return uint32(int32(a) / int32(b)), true
		}
	case Rem:
		switch {
		case int32(b) == 0:
			return a, true
		case int32(a) == math.MinInt32 && int32(b) == -1:
			return 0, true
		default:
			return uint32(int32(a) % int32(b)), true
		}
	case And:
		return a & b, true
	case Or:
		return a | b, true
	case Xor:
		return a ^ b, true
	case Shl:
		return a << (b & 31), true
	case Shr:
		return a >> (b & 31), true
	case Sar:
		return uint32(int32(a) >> (b & 31)), true
	case Slt:
		return b2u(int32(a) < int32(b)), true
	case Sltu:
		return b2u(a < b), true
	case Seq:
		return b2u(a == b), true
	case Sne:
		return b2u(a != b), true
	}
	return 0, false
}

// foldFloat evaluates FP ops with constant operands. Comparison results
// are integer constants.
func foldFloat(op Op, a, b float64, aok, bok bool) (fv float64, isInt bool, iv uint32, ok bool) {
	un := aok
	bin := aok && bok
	switch op {
	case Fadd:
		if bin {
			return a + b, false, 0, true
		}
	case Fsub:
		if bin {
			return a - b, false, 0, true
		}
	case Fmul:
		if bin {
			return a * b, false, 0, true
		}
	case Fdiv:
		if bin {
			return a / b, false, 0, true
		}
	case Fsqrt:
		if un {
			return math.Sqrt(a), false, 0, true
		}
	case Fabs:
		if un {
			return math.Abs(a), false, 0, true
		}
	case Fneg:
		if un {
			return -a, false, 0, true
		}
	case Fcvti:
		if un {
			return 0, true, uint32(truncF64(a)), true
		}
	case Fslt:
		if bin {
			return 0, true, b2u(a < b), true
		}
	case Fseq:
		if bin {
			return 0, true, b2u(a == b), true
		}
	case Funord:
		if bin {
			return 0, true, b2u(math.IsNaN(a) || math.IsNaN(b)), true
		}
	}
	return 0, false, 0, false
}

// foldIdentity simplifies x+0, x|0, x^0, x&-1, x*1, x<<0 and friends to
// a copy of the surviving operand.
func foldIdentity(in *Inst, ca, cb uint32, aok, bok bool) (ValueID, bool) {
	switch in.Op {
	case Add, Or, Xor:
		if bok && cb == 0 {
			return in.A, true
		}
		if aok && ca == 0 {
			return in.B, true
		}
	case Sub, Shl, Shr, Sar:
		if bok && cb == 0 {
			return in.A, true
		}
	case And:
		if bok && cb == 0xFFFFFFFF {
			return in.A, true
		}
		if aok && ca == 0xFFFFFFFF {
			return in.B, true
		}
	case Mul:
		if bok && cb == 1 {
			return in.A, true
		}
		if aok && ca == 1 {
			return in.B, true
		}
	}
	return 0, false
}

// CSE performs local value numbering over pure instructions: identical
// (op, operands, immediate) pairs collapse to the first occurrence.
// Memory and control instructions are untouched (redundant loads are the
// DDG phase's job).
func (r *Region) CSE() int {
	type key struct {
		op   Op
		a, b ValueID
		immu uint32
		immf float64
	}
	seen := make(map[key]ValueID)
	resolve := make([]ValueID, r.NumValues+1)
	res := func(v ValueID) ValueID {
		for v != 0 && resolve[v] != 0 {
			v = resolve[v]
		}
		return v
	}
	removed := 0
	for i := range r.Code {
		in := &r.Code[i]
		in.A = res(in.A)
		in.B = res(in.B)
		for j := range in.State {
			in.State[j].Val = res(in.State[j].Val)
		}
		if in.Dst == 0 || in.IsLoad() || in.HasSideEffect() || in.Op == LiveIn {
			continue
		}
		k := key{op: in.Op, a: in.A, b: in.B, immu: in.ImmU, immf: in.ImmF}
		if commutative(in.Op) && in.B < in.A {
			k.a, k.b = in.B, in.A
		}
		if prev, ok := seen[k]; ok {
			resolve[in.Dst] = prev
			in.Op = Nop
			in.Dst, in.A, in.B = 0, 0, 0
			removed++
			continue
		}
		seen[k] = in.Dst
	}
	return removed
}

func commutative(op Op) bool {
	switch op {
	case Add, Mul, Mulh, And, Or, Xor, Seq, Sne, Fadd, Fmul, Fseq, Funord:
		return true
	}
	return false
}

// DCE removes instructions whose results are never used, scanning
// backwards from side-effecting roots (stores, exits, asserts).
func (r *Region) DCE() int {
	live := make([]bool, r.NumValues+1)
	for i := len(r.Code) - 1; i >= 0; i-- {
		in := &r.Code[i]
		if in.Op == Nop {
			continue
		}
		if in.HasSideEffect() || (in.Dst != 0 && live[in.Dst]) {
			in.Uses(func(v ValueID) { live[v] = true })
		}
	}
	removed := 0
	for i := range r.Code {
		in := &r.Code[i]
		if in.Op == Nop {
			removed++
			continue
		}
		if in.Dst != 0 && !live[in.Dst] && !in.HasSideEffect() {
			in.Op = Nop
			in.Dst, in.A, in.B = 0, 0, 0
			removed++
		}
	}
	// Compact away the Nops.
	out := r.Code[:0]
	for i := range r.Code {
		if r.Code[i].Op != Nop {
			out = append(out, r.Code[i])
		}
	}
	r.Code = out
	return removed
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func truncF64(f float64) int32 {
	if math.IsNaN(f) || f >= float64(math.MaxInt32)+1 || f < float64(math.MinInt32) {
		return math.MinInt32
	}
	return int32(f)
}
