package ir

import (
	"fmt"

	"darco/internal/host"
)

// Code generation: scheduled, register-allocated IR → host instructions.
//
// Layout of an emitted block:
//
//	CHKPT                       architectural checkpoint
//	<body>                      computation in temporaries
//	...at each exit site:
//	   [BEQZ cond, skip]        only for conditional exits
//	   <parallel moves>         dirty architectural state → pinned regs
//	   COMMIT                   drain the gated store buffer
//	   EXIT/EXITIND             leave to guest PC
//	   skip:
//
// Pinned registers are written only on taken exit paths, so the fall-
// through continuation always sees intact architectural state.

// GenResult is the output of code generation.
type GenResult struct {
	Code     []host.Inst
	ExitMeta map[int]ExitInfo // host instruction index → retirement metadata
	Spills   int
}

type gen struct {
	r    *Region
	a    *Alloc
	out  []host.Inst
	meta map[int]ExitInfo
	err  error
}

// Generate lowers the region to host code.
func (r *Region) Generate(a *Alloc) (*GenResult, error) {
	g := &gen{r: r, a: a, meta: make(map[int]ExitInfo)}
	g.emit(host.Inst{Op: host.CHKPT, Target: r.Entry, GPC: r.Entry})
	for i := range r.Code {
		g.inst(&r.Code[i])
		if g.err != nil {
			return nil, g.err
		}
	}
	return &GenResult{Code: g.out, ExitMeta: g.meta, Spills: a.Spills}, nil
}

func (g *gen) emit(in host.Inst) int {
	g.out = append(g.out, in)
	return len(g.out) - 1
}

func (g *gen) fail(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf("codegen: "+format, args...)
	}
}

// readInt materialises an integer value into a register, using scr for
// slot and immediate sources.
func (g *gen) readInt(v ValueID, scr uint8, gpc uint32) uint8 {
	l := g.a.Loc[v]
	switch l.Kind {
	case LocPinned, LocReg:
		if l.FP {
			g.fail("float value v%d read as int", v)
			return scr
		}
		return uint8(l.N)
	case LocSlot:
		g.emit(host.Inst{Op: host.UNSPILLI, Rd: scr, Imm: int32(l.N), GPC: gpc})
		return scr
	case LocImm:
		g.emit(host.Inst{Op: host.LI, Rd: scr, Imm: int32(g.a.ConstI[v]), GPC: gpc})
		return scr
	}
	g.fail("value v%d has no location", v)
	return scr
}

// readFP materialises a float value into an FP register.
func (g *gen) readFP(v ValueID, scr uint8, gpc uint32) uint8 {
	l := g.a.Loc[v]
	switch l.Kind {
	case LocPinned, LocReg:
		if !l.FP {
			g.fail("int value v%d read as float", v)
			return scr
		}
		return uint8(l.N)
	case LocSlot:
		g.emit(host.Inst{Op: host.UNSPILLF, Rd: scr, Imm: int32(l.N), GPC: gpc})
		return scr
	case LocImm:
		g.emit(host.Inst{Op: host.FLI, Rd: scr, F64: g.a.ConstF[v], GPC: gpc})
		return scr
	}
	g.fail("value v%d has no location", v)
	return scr
}

// dstInt returns the register to compute an integer result into and a
// function that stores it to a spill slot if needed.
func (g *gen) dstInt(v ValueID, gpc uint32) (uint8, func()) {
	l := g.a.Loc[v]
	switch l.Kind {
	case LocReg:
		return uint8(l.N), func() {}
	case LocSlot:
		slot := int32(l.N)
		return IntScr1, func() {
			g.emit(host.Inst{Op: host.SPILLI, Rd: IntScr1, Imm: slot, GPC: gpc})
		}
	case LocNone:
		// Dead result (possible when DCE is disabled in ablations).
		return IntScr1, func() {}
	}
	g.fail("bad destination location %v for v%d", l, v)
	return IntScr1, func() {}
}

func (g *gen) dstFP(v ValueID, gpc uint32) (uint8, func()) {
	l := g.a.Loc[v]
	switch l.Kind {
	case LocReg:
		return uint8(l.N), func() {}
	case LocSlot:
		slot := int32(l.N)
		return FPScr1, func() {
			g.emit(host.Inst{Op: host.SPILLF, Rd: FPScr1, Imm: slot, GPC: gpc})
		}
	case LocNone:
		return FPScr1, func() {}
	}
	g.fail("bad destination location %v for v%d", l, v)
	return FPScr1, func() {}
}

// immOf reports the foldable immediate for value v, if it has one.
func (g *gen) immOf(v ValueID) (int32, bool) {
	if g.a.Loc[v].Kind == LocImm {
		if c, ok := g.a.ConstI[v]; ok {
			return int32(c), true
		}
	}
	return 0, false
}

var intOpMap = map[Op]host.Op{
	Add: host.ADD, Sub: host.SUB, Mul: host.MUL, Mulh: host.MULH,
	Div: host.DIV, Rem: host.REM, And: host.AND, Or: host.OR, Xor: host.XOR,
	Shl: host.SHL, Shr: host.SHR, Sar: host.SAR,
	Slt: host.SLT, Sltu: host.SLTU, Seq: host.SEQ, Sne: host.SNE,
}

var immOpMap = map[Op]host.Op{
	Add: host.ADDI, And: host.ANDI, Or: host.ORI, Xor: host.XORI,
	Shl: host.SHLI, Shr: host.SHRI, Sar: host.SARI,
}

var fpOpMap = map[Op]host.Op{
	Fadd: host.FADDH, Fsub: host.FSUBH, Fmul: host.FMULH, Fdiv: host.FDIVH,
}

func (g *gen) inst(in *Inst) {
	gpc := in.GPC
	switch in.Op {
	case Nop, LiveIn:
		// LiveIn values live in pinned registers; nothing to emit.
	case ConstI:
		if g.a.Loc[in.Dst].Kind == LocImm {
			return
		}
		rd, fin := g.dstInt(in.Dst, gpc)
		g.emit(host.Inst{Op: host.LI, Rd: rd, Imm: int32(in.ImmU), GPC: gpc})
		fin()
	case ConstF:
		if g.a.Loc[in.Dst].Kind == LocImm {
			return
		}
		fd, fin := g.dstFP(in.Dst, gpc)
		g.emit(host.Inst{Op: host.FLI, Rd: fd, F64: in.ImmF, GPC: gpc})
		fin()
	case Mov:
		ra := g.readInt(in.A, IntScr1, gpc)
		rd, fin := g.dstInt(in.Dst, gpc)
		g.emit(host.Inst{Op: host.MOVH, Rd: rd, Ra: ra, GPC: gpc})
		fin()
	case FMov:
		fa := g.readFP(in.A, FPScr1, gpc)
		fd, fin := g.dstFP(in.Dst, gpc)
		g.emit(host.Inst{Op: host.FMOVH, Rd: fd, Ra: fa, GPC: gpc})
		fin()

	case Add, Sub, Mul, Mulh, Div, Rem, And, Or, Xor, Shl, Shr, Sar, Slt, Sltu, Seq, Sne:
		ra := g.readInt(in.A, IntScr1, gpc)
		rd, fin := g.dstInt(in.Dst, gpc)
		if imm, ok := g.immOf(in.B); ok {
			if hop, ok2 := immOpMap[in.Op]; ok2 {
				g.emit(host.Inst{Op: hop, Rd: rd, Ra: ra, Imm: imm, GPC: gpc})
				fin()
				return
			}
			if in.Op == Sub {
				g.emit(host.Inst{Op: host.ADDI, Rd: rd, Ra: ra, Imm: -imm, GPC: gpc})
				fin()
				return
			}
		}
		rb := g.readInt(in.B, IntScr2, gpc)
		g.emit(host.Inst{Op: intOpMap[in.Op], Rd: rd, Ra: ra, Rb: rb, GPC: gpc})
		fin()

	case Ld32, Ld8:
		ra := g.readInt(in.A, IntScr1, gpc)
		rd, fin := g.dstInt(in.Dst, gpc)
		hop := host.LD
		if in.Op == Ld8 {
			hop = host.LDB
		}
		g.emit(host.Inst{Op: hop, Rd: rd, Ra: ra, Imm: in.Off, Spec: in.Spec, GPC: gpc})
		fin()
	case LdF:
		ra := g.readInt(in.A, IntScr1, gpc)
		fd, fin := g.dstFP(in.Dst, gpc)
		g.emit(host.Inst{Op: host.FLDH, Rd: fd, Ra: ra, Imm: in.Off, Spec: in.Spec, GPC: gpc})
		fin()
	case St32, St8:
		ra := g.readInt(in.A, IntScr1, gpc)
		rb := g.readInt(in.B, IntScr2, gpc)
		hop := host.ST
		if in.Op == St8 {
			hop = host.STB
		}
		g.emit(host.Inst{Op: hop, Rd: rb, Ra: ra, Imm: in.Off, Spec: in.Spec, GPC: gpc})
	case StF:
		ra := g.readInt(in.A, IntScr1, gpc)
		fb := g.readFP(in.B, FPScr2, gpc)
		g.emit(host.Inst{Op: host.FSTH, Rd: fb, Ra: ra, Imm: in.Off, Spec: in.Spec, GPC: gpc})

	case Fadd, Fsub, Fmul, Fdiv:
		fa := g.readFP(in.A, FPScr1, gpc)
		fb := g.readFP(in.B, FPScr2, gpc)
		fd, fin := g.dstFP(in.Dst, gpc)
		g.emit(host.Inst{Op: fpOpMap[in.Op], Rd: fd, Ra: fa, Rb: fb, GPC: gpc})
		fin()
	case Fsqrt, Fabs, Fneg:
		fa := g.readFP(in.A, FPScr1, gpc)
		fd, fin := g.dstFP(in.Dst, gpc)
		hop := host.FSQRTH
		if in.Op == Fabs {
			hop = host.FABSH
		} else if in.Op == Fneg {
			hop = host.FNEGH
		}
		g.emit(host.Inst{Op: hop, Rd: fd, Ra: fa, GPC: gpc})
		fin()
	case Fcvti:
		fa := g.readFP(in.A, FPScr1, gpc)
		rd, fin := g.dstInt(in.Dst, gpc)
		g.emit(host.Inst{Op: host.FCVTI, Rd: rd, Ra: fa, GPC: gpc})
		fin()
	case Fcvtf:
		ra := g.readInt(in.A, IntScr1, gpc)
		fd, fin := g.dstFP(in.Dst, gpc)
		g.emit(host.Inst{Op: host.FCVTF, Rd: fd, Ra: ra, GPC: gpc})
		fin()
	case Fslt, Fseq, Funord:
		fa := g.readFP(in.A, FPScr1, gpc)
		fb := g.readFP(in.B, FPScr2, gpc)
		rd, fin := g.dstInt(in.Dst, gpc)
		hop := host.FSLT
		if in.Op == Fseq {
			hop = host.FSEQ
		} else if in.Op == Funord {
			hop = host.FUNORD
		}
		g.emit(host.Inst{Op: hop, Rd: rd, Ra: fa, Rb: fb, GPC: gpc})
		fin()

	case Assert:
		ra := g.readInt(in.A, IntScr1, gpc)
		g.emit(host.Inst{Op: host.ASSERTH, Ra: ra, Target: g.r.Entry, GPC: gpc})

	case SetArch:
		// Eager architectural update (EagerFlags ablation): write the
		// value straight into its pinned host register.
		dst, fp := PinnedHostReg(in.Arch)
		if fp {
			fa := g.readFP(in.A, FPScr1, gpc)
			g.emit(host.Inst{Op: host.FMOVH, Rd: dst, Ra: fa, GPC: gpc})
		} else {
			ra := g.readInt(in.A, IntScr1, gpc)
			g.emit(host.Inst{Op: host.MOVH, Rd: dst, Ra: ra, GPC: gpc})
		}

	case Exit:
		g.exitSeq(in, 0, false, gpc)
	case ExitIf:
		cond := g.readInt(in.A, IntScr1, gpc)
		br := g.emit(host.Inst{Op: host.BEQZ, Ra: cond, GPC: gpc})
		g.exitSeq(in, 0, false, gpc)
		g.out[br].Imm = int32(len(g.out) - br - 1)
	case ExitInd:
		// Copy the target out of harm's way before the moves clobber
		// pinned registers.
		tl := g.a.Loc[in.A]
		var tgt uint8
		switch tl.Kind {
		case LocReg:
			tgt = uint8(tl.N)
		case LocPinned:
			g.emit(host.Inst{Op: host.MOVH, Rd: IntScr2, Ra: uint8(tl.N), GPC: gpc})
			tgt = IntScr2
		case LocSlot:
			g.emit(host.Inst{Op: host.UNSPILLI, Rd: IntScr2, Imm: int32(tl.N), GPC: gpc})
			tgt = IntScr2
		case LocImm:
			g.emit(host.Inst{Op: host.LI, Rd: IntScr2, Imm: int32(g.a.ConstI[in.A]), GPC: gpc})
			tgt = IntScr2
		default:
			g.fail("exitind target v%d has no location", in.A)
			return
		}
		g.exitSeq(in, tgt, true, gpc)

	default:
		g.fail("unhandled IR op %v", in.Op)
	}
}

// exitSeq emits the writeback moves, COMMIT, and the exit instruction.
func (g *gen) exitSeq(in *Inst, indirectReg uint8, indirect bool, gpc uint32) {
	g.parallelMoves(in.State, gpc)
	g.emit(host.Inst{Op: host.COMMIT, Target: in.ImmU, GPC: gpc})
	var idx int
	if indirect {
		idx = g.emit(host.Inst{Op: host.EXITIND, Ra: indirectReg, GPC: gpc})
	} else {
		idx = g.emit(host.Inst{Op: host.EXIT, Target: in.ImmU, GPC: gpc})
	}
	g.meta[idx] = in.Meta
}

// move is one pending architectural writeback.
type move struct {
	dst    uint8 // pinned register
	fp     bool
	srcLoc Loc
	srcVal ValueID
}

// parallelMoves writes the exit state into the pinned registers,
// breaking pinned→pinned cycles with the scratch register.
func (g *gen) parallelMoves(state []ArchVal, gpc uint32) {
	var pending []move
	for _, av := range state {
		dst, fp := PinnedHostReg(av.Arch)
		l := g.a.Loc[av.Val]
		if l.Kind == LocPinned && uint8(l.N) == dst && l.FP == fp {
			continue // value unchanged
		}
		pending = append(pending, move{dst: dst, fp: fp, srcLoc: l, srcVal: av.Val})
	}
	emitMove := func(m move, srcOverride int) {
		switch {
		case srcOverride >= 0:
			if m.fp {
				g.emit(host.Inst{Op: host.FMOVH, Rd: m.dst, Ra: uint8(srcOverride), GPC: gpc})
			} else {
				g.emit(host.Inst{Op: host.MOVH, Rd: m.dst, Ra: uint8(srcOverride), GPC: gpc})
			}
		case m.srcLoc.Kind == LocImm && !m.fp:
			g.emit(host.Inst{Op: host.LI, Rd: m.dst, Imm: int32(g.a.ConstI[m.srcVal]), GPC: gpc})
		case m.srcLoc.Kind == LocImm && m.fp:
			g.emit(host.Inst{Op: host.FLI, Rd: m.dst, F64: g.a.ConstF[m.srcVal], GPC: gpc})
		case m.srcLoc.Kind == LocSlot && !m.fp:
			g.emit(host.Inst{Op: host.UNSPILLI, Rd: m.dst, Imm: int32(m.srcLoc.N), GPC: gpc})
		case m.srcLoc.Kind == LocSlot && m.fp:
			g.emit(host.Inst{Op: host.UNSPILLF, Rd: m.dst, Imm: int32(m.srcLoc.N), GPC: gpc})
		case m.fp:
			g.emit(host.Inst{Op: host.FMOVH, Rd: m.dst, Ra: uint8(m.srcLoc.N), GPC: gpc})
		default:
			g.emit(host.Inst{Op: host.MOVH, Rd: m.dst, Ra: uint8(m.srcLoc.N), GPC: gpc})
		}
	}
	// redirected maps a pinned source register that was saved to scratch.
	redirect := map[[2]interface{}]int{}
	srcIsPinnedReg := func(m move, reg uint8, fp bool) bool {
		return m.srcLoc.Kind == LocPinned && uint8(m.srcLoc.N) == reg && m.srcLoc.FP == fp
	}
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); i++ {
			m := pending[i]
			blocked := false
			for j := range pending {
				if j == i {
					continue
				}
				if srcIsPinnedReg(pending[j], m.dst, m.fp) {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			ov := -1
			if k, ok := redirect[[2]interface{}{m.srcLoc, m.fp}]; ok && m.srcLoc.Kind == LocPinned {
				ov = k
			}
			emitMove(m, ov)
			pending = append(pending[:i], pending[i+1:]...)
			progress = true
			i--
		}
		if !progress {
			// Cycle among pinned→pinned moves: save one destination's
			// current value to scratch and retry.
			m := pending[0]
			scr := IntScr1
			op := host.MOVH
			if m.fp {
				scr = FPScr1
				op = host.FMOVH
			}
			// Every other move reading m.dst must now read scratch.
			g.emit(host.Inst{Op: op, Rd: uint8(scr), Ra: m.dst, GPC: gpc})
			redirect[[2]interface{}{Loc{Kind: LocPinned, N: int(m.dst), FP: m.fp}, m.fp}] = scr
			emitMove(m, -1)
			pending = pending[1:]
		}
	}
}
