// Package workload provides deterministic synthetic guest programs
// standing in for the paper's SPEC CPU2006 and Physicsbench binaries
// (DESIGN.md §2). Each benchmark is generated from a Profile whose knobs
// reproduce the characteristics the paper identifies as driving its
// results: basic block size, dynamic-to-static instruction ratio, branch
// bias, and the floating-point / trigonometric instruction mix.
package workload

import (
	"fmt"
	"strings"

	"darco/internal/guest"
)

// Profile parameterises one synthetic benchmark.
type Profile struct {
	Name  string
	Suite string

	Funcs      int     // distinct functions: static code volume
	BBSize     int     // average work-segment (basic block) size in instructions
	SegsPerBB  int     // work segments per inner-loop body
	InnerTrip  int     // hot inner loop trip count
	OuterIters int     // outer repetitions: dynamic/static ratio driver
	FPFrac     float64 // fraction of work segments that are floating point
	TrigFrac   float64 // fraction of FP segments using sin/cos
	RareBits   int     // interior branch bias: taken 1/2^RareBits of the time
	Unbiased   bool    // add a 50/50 interior branch per function
	Indirect   bool    // call some functions through a pointer table
	Strings    bool    // include MOVS/STOS memcpy segments
	Seed       uint64
}

// Scale returns a copy with the dynamic work multiplied by f.
func (p Profile) Scale(f float64) Profile {
	q := p
	q.OuterIters = int(float64(p.OuterIters)*f + 0.5)
	if q.OuterIters < 1 {
		q.OuterIters = 1
	}
	return q
}

// rng is a splitmix64 deterministic generator.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

const (
	dataBase  = 0x0010_0000 // per-function data slabs
	slabSize  = 0x4000
	tableBase = 0x000F_0000 // indirect call pointer table
	outBase   = 0x000E_0000 // checksum output buffer
)

// Generate builds the guest program image.
func (p Profile) Generate() (*guest.Image, error) {
	src := p.Source()
	im, err := guest.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", p.Name, err)
	}
	return im, nil
}

// Source renders the benchmark's assembly text.
func (p Profile) Source() string {
	r := &rng{s: p.Seed ^ 0xDA5C0}
	var b strings.Builder
	w := func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}

	w("; synthetic benchmark %s (%s)", p.Name, p.Suite)
	w(".org 0x1000")
	w(".entry start")
	w("start:")
	w("    movri ebx, %d", int32(p.Seed&0x7FFFFFFF)) // checksum accumulator
	w("    movri edx, %d", p.OuterIters)
	w("outer:")
	for f := 0; f < p.Funcs; f++ {
		if p.Indirect && f%3 == 2 {
			// Indirect call through the pointer table.
			w("    movri eax, %d", tableBase+4*f)
			w("    load eax, [eax+0]")
			w("    callr eax")
		} else {
			w("    call func%d", f)
		}
	}
	w("    dec edx")
	w("    cmpri edx, 0")
	w("    jg outer")
	// Emit the checksum and exit.
	w("    movri eax, %d", outBase)
	w("    store [eax+0], ebx")
	w("    movri eax, 4") // SysWrite
	w("    movri ecx, %d", outBase)
	w("    movri edx, 4")
	w("    movri ebx, 1")
	w("    syscall")
	w("    movri eax, 1") // SysExit
	w("    movri ebx, 0")
	w("    syscall")
	w("    halt")

	for f := 0; f < p.Funcs; f++ {
		p.genFunc(&b, r, f)
	}

	// Indirect call table.
	w(".org %d", tableBase)
	for f := 0; f < p.Funcs; f++ {
		w("    .word 0") // patched below via labels; assembler lacks .word @label
	}
	// Data slabs initialised with deterministic values.
	w(".org %d", dataBase)
	for i := 0; i < 64; i++ {
		w("    .word %d", int32(r.next()))
	}
	src := b.String()
	// Replace the pointer table with label references (two-pass trick:
	// the assembler supports '@label' immediates, so emit loader code
	// instead). Simpler: build the table at startup.
	return p.patchTable(src)
}

// patchTable rewrites the program so the indirect-call table is filled
// by startup code (the assembler's .word directive cannot reference
// labels).
func (p Profile) patchTable(src string) string {
	if !p.Indirect {
		return src
	}
	var fill strings.Builder
	fill.WriteString("start:\n")
	for f := 0; f < p.Funcs; f++ {
		if f%3 == 2 {
			fmt.Fprintf(&fill, "    movri eax, @func%d\n", f)
			fmt.Fprintf(&fill, "    movri ecx, %d\n", tableBase+4*f)
			fmt.Fprintf(&fill, "    store [ecx+0], eax\n")
		}
	}
	return strings.Replace(src, "start:\n", fill.String(), 1)
}

// genFunc emits one function: an inner loop over work segments with
// biased interior branches, memory traffic on a private slab, and the
// profile's FP/trig mix.
func (p Profile) genFunc(b *strings.Builder, r *rng, f int) {
	w := func(format string, args ...any) {
		fmt.Fprintf(b, format, args...)
		b.WriteByte('\n')
	}
	slab := dataBase + (f%32)*slabSize
	w("func%d:", f)
	w("    push ecx")
	w("    push edx")
	w("    push ebp")
	w("    movri ebp, %d", slab)
	w("    movri ecx, %d", p.InnerTrip)
	w("f%d_loop:", f)

	segs := p.SegsPerBB
	if segs < 1 {
		segs = 1
	}
	for s := 0; s < segs; s++ {
		isFP := r.f64() < p.FPFrac
		if isFP {
			p.genFPSegment(b, r, f, s)
		} else {
			p.genIntSegment(b, r, f, s)
		}
		// Interior biased branch: taken 1/2^RareBits of the time.
		if p.RareBits > 0 && s+1 < segs {
			mask := (1 << p.RareBits) - 1
			w("    movrr eax, ecx")
			w("    andri eax, %d", mask)
			w("    cmpri eax, 0")
			w("    jne f%d_cont%d", f, s)
			// Rare path: extra checksum stir.
			w("    addri ebx, %d", int32(r.next()&0xFFFF))
			w("    xorri ebx, %d", int32(r.next()&0xFFFF))
			w("f%d_cont%d:", f, s)
		}
	}
	if p.Unbiased {
		// 50/50 branch on the loop counter's parity.
		w("    movrr eax, ecx")
		w("    andri eax, 1")
		w("    cmpri eax, 0")
		w("    je f%d_even", f)
		w("    addri ebx, 13")
		w("    jmp f%d_join", f)
		w("f%d_even:", f)
		w("    subri ebx, 7")
		w("f%d_join:", f)
	}
	if p.Strings && f%4 == 1 {
		// memcpy-like segment through the string safety net, guarded
		// so it fires on a fraction of iterations. MOVS consumes ECX,
		// so the loop counter is preserved on the stack.
		w("    movrr eax, ecx")
		w("    andri eax, 15")
		w("    cmpri eax, 0")
		w("    jne f%d_nostr", f)
		w("    push ecx")
		w("    movri esi, %d", slab)
		w("    movri edi, %d", slab+2048)
		w("    movri ecx, 64")
		w("    movs")
		w("    pop ecx")
		w("f%d_nostr:", f)
	}

	w("    dec ecx")
	w("    cmpri ecx, 0")
	w("    jg f%d_loop", f)
	w("    pop ebp")
	w("    pop edx")
	w("    pop ecx")
	w("    ret")
}

// genIntSegment emits ~BBSize integer instructions with loads/stores.
func (p Profile) genIntSegment(b *strings.Builder, r *rng, f, s int) {
	w := func(format string, args ...any) {
		fmt.Fprintf(b, format, args...)
		b.WriteByte('\n')
	}
	n := p.BBSize
	w("    movrr esi, ecx")
	w("    andri esi, 255")
	w("    loadx eax, [ebp+esi<<2+%d]", (s%4)*1024)
	emitted := 3
	for emitted < n-2 {
		switch r.intn(8) {
		case 0:
			w("    addri eax, %d", int32(r.next()&0xFFFF))
		case 1:
			w("    imulri eax, %d", 3+r.intn(13))
		case 2:
			w("    xorri eax, %d", int32(r.next()&0xFFFFFF))
		case 3:
			w("    shlri eax, %d", 1+r.intn(5))
		case 4:
			w("    shrri eax, %d", 1+r.intn(5))
		case 5:
			w("    addrr eax, esi")
		case 6:
			w("    orri eax, %d", int32(r.next()&0xFFFF))
		case 7:
			w("    subri eax, %d", int32(r.next()&0xFFFF))
		}
		emitted++
	}
	w("    storex [ebp+esi<<2+%d], eax", (s%4)*1024)
	w("    xorrr ebx, eax")
}

// genFPSegment emits a floating point work segment; a TrigFrac subset
// uses the software-emulated sin/cos.
func (p Profile) genFPSegment(b *strings.Builder, r *rng, f, s int) {
	w := func(format string, args ...any) {
		fmt.Fprintf(b, format, args...)
		b.WriteByte('\n')
	}
	off := 2048 + (s%4)*512
	w("    movrr esi, ecx")
	w("    andri esi, 63")
	w("    shlri esi, 3")
	w("    addrr esi, ebp")
	w("    fld f0, [esi+%d]", off)
	n := p.BBSize
	emitted := 5
	useTrig := r.f64() < p.TrigFrac
	w("    fldi f1, %.6f", 0.25+r.f64())
	emitted++
	for emitted < n-3 {
		switch r.intn(5) {
		case 0:
			w("    fadd f0, f1")
		case 1:
			w("    fmul f0, f1")
		case 2:
			w("    fsub f0, f1")
		case 3:
			w("    fabs f2, f0")
			w("    fadd f0, f2")
			emitted++
		case 4:
			w("    fldi f2, %.6f", 0.5+r.f64())
			w("    fmul f1, f2")
			emitted++
		}
		emitted++
	}
	if useTrig {
		w("    fsin f2, f0")
		w("    fadd f0, f2")
		w("    fcos f2, f1")
		w("    fadd f0, f2")
	}
	// Keep magnitudes bounded and fold into the checksum.
	w("    fldi f3, 4096.0")
	w("    fcmp f0, f3")
	w("    jb f%d_s%d_ok", f, s)
	w("    fldi f0, 1.5")
	w("f%d_s%d_ok:", f, s)
	w("    fst [esi+%d], f0", off)
	w("    cvtfi eax, f0")
	w("    xorrr ebx, eax")
}
