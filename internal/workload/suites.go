package workload

// The paper's benchmark roster: 11 SPECINT2006, 13 SPECFP2006 and 7
// Physicsbench applications. Per-benchmark parameters follow the traits
// the paper attributes to each suite:
//
//   - SPECINT: small basic blocks, branch-heavy, very high dynamic-to-
//     static ratio (TOL overhead amortises to ~16%), some indirect
//     control flow and string traffic.
//   - SPECFP: large basic blocks, FP-dominated, the highest dyn/static
//     ratio (~13% overhead, 96% SBM coverage, lowest emulation cost).
//   - Physicsbench: much lower dynamic instruction count and dyn/static
//     ratio (overhead not amortised: ~41%), trigonometric functions
//     emulated in software (raising emulation cost), with `continuous`,
//     `periodic` and `ragdoll` so short that little code is promoted to
//     SBM (large BBM share in Fig. 4).

// Suite names.
const (
	SuiteINT     = "SPECINT2006"
	SuiteFP      = "SPECFP2006"
	SuitePhysics = "Physicsbench"
)

func intProfile(name string, seed uint64, funcs, bbSize, inner, outer int) Profile {
	return Profile{
		Name: name, Suite: SuiteINT,
		Funcs: funcs, BBSize: bbSize, SegsPerBB: 5,
		InnerTrip: inner, OuterIters: outer,
		FPFrac: 0.02, TrigFrac: 0,
		RareBits: 4, Unbiased: false,
		Seed: seed,
	}
}

func fpProfile(name string, seed uint64, funcs, bbSize, inner, outer int) Profile {
	return Profile{
		Name: name, Suite: SuiteFP,
		Funcs: funcs, BBSize: bbSize, SegsPerBB: 2,
		InnerTrip: inner, OuterIters: outer,
		FPFrac: 0.7, TrigFrac: 0.02,
		RareBits: 5,
		Seed:     seed,
	}
}

func physProfile(name string, seed uint64, funcs, inner, outer int, trig float64) Profile {
	return Profile{
		Name: name, Suite: SuitePhysics,
		Funcs: funcs, BBSize: 8, SegsPerBB: 2,
		InnerTrip: inner, OuterIters: outer,
		FPFrac: 0.55, TrigFrac: trig,
		RareBits: 4,
		Seed:     seed,
	}
}

// Suites returns the full 31-benchmark roster in the paper's order.
func Suites() []Profile {
	list := []Profile{
		// SPECINT2006 — branchy integer codes.
		intProfile("400.perlbench", 400, 14, 4, 40, 160),
		intProfile("401.bzip2", 401, 8, 5, 64, 220),
		intProfile("403.gcc", 403, 20, 4, 32, 120),
		intProfile("429.mcf", 429, 6, 4, 80, 260),
		intProfile("445.gobmk", 445, 16, 4, 36, 130),
		intProfile("458.sjeng", 458, 12, 4, 48, 170),
		intProfile("462.libquantum", 462, 5, 6, 96, 320),
		intProfile("464.h264ref", 464, 10, 7, 56, 200),
		intProfile("471.omnetpp", 471, 14, 4, 40, 140),
		intProfile("473.astar", 473, 7, 5, 72, 240),
		intProfile("483.xalancbmk", 483, 18, 4, 32, 130),

		// SPECFP2006 — large-block floating point codes.
		fpProfile("410.bwaves", 410, 6, 22, 90, 200),
		fpProfile("433.milc", 433, 7, 18, 80, 190),
		fpProfile("434.zeusmp", 434, 8, 20, 76, 180),
		fpProfile("435.gromacs", 435, 8, 16, 70, 170),
		fpProfile("436.cactusADM", 436, 6, 24, 90, 210),
		fpProfile("437.leslie3d", 437, 7, 21, 84, 190),
		fpProfile("444.namd", 444, 8, 18, 80, 190),
		fpProfile("450.soplex", 450, 10, 14, 60, 150),
		fpProfile("453.povray", 453, 12, 13, 56, 140),
		fpProfile("454.calculix", 454, 9, 17, 70, 170),
		fpProfile("459.GemsFDTD", 459, 7, 22, 86, 200),
		fpProfile("470.lbm", 470, 5, 26, 100, 240),
		fpProfile("482.sphinx3", 482, 9, 16, 66, 160),

		// Physicsbench — short runs, software trig, low dyn/static.
		physProfile("breakable", 901, 36, 28, 80, 0.17),
		physProfile("continuous", 902, 48, 10, 55, 0.26),
		physProfile("deformable", 903, 34, 28, 80, 0.15),
		physProfile("explosions", 904, 30, 30, 80, 0.19),
		physProfile("highspeed", 905, 32, 28, 78, 0.17),
		physProfile("periodic", 906, 44, 9, 60, 0.26),
		physProfile("ragdoll", 907, 46, 10, 52, 0.24),
	}
	// Suite-specific extras.
	for i := range list {
		switch list[i].Name {
		case "400.perlbench", "403.gcc", "458.sjeng", "471.omnetpp", "483.xalancbmk":
			list[i].Indirect = true
		case "401.bzip2", "464.h264ref":
			list[i].Strings = true
		case "445.gobmk", "473.astar":
			list[i].Unbiased = true
		}
	}
	return list
}

// ByName finds a profile.
func ByName(name string) (Profile, bool) {
	for _, p := range Suites() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// SuiteOf returns the profiles of one suite.
func SuiteOf(suite string) []Profile {
	var out []Profile
	for _, p := range Suites() {
		if p.Suite == suite {
			out = append(out, p)
		}
	}
	return out
}
