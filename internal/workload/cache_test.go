package workload

import "testing"

func TestCachedImageMemoizes(t *testing.T) {
	p, ok := ByName("429.mcf")
	if !ok {
		t.Fatal("roster missing 429.mcf")
	}
	a, err := CachedImage(p.Scale(0.5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedImage(p.Scale(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same profile+scale must return the memoized image")
	}
	c, err := CachedImage(p.Scale(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different scales must not share an image")
	}
	// The cached image matches a fresh generation exactly.
	fresh, err := p.Scale(0.5).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if a.Entry != fresh.Entry || len(a.Segments) != len(fresh.Segments) {
		t.Fatalf("cached image diverges from fresh generation")
	}
	for i := range a.Segments {
		if a.Segments[i].Addr != fresh.Segments[i].Addr ||
			string(a.Segments[i].Data) != string(fresh.Segments[i].Data) {
			t.Fatalf("segment %d differs", i)
		}
	}
}
