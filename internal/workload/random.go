package workload

import (
	"fmt"
	"strings"

	"darco/internal/guest"
)

// RandomProgram generates a random but always-terminating guest program
// for differential testing: the full co-designed pipeline must produce
// exactly the architectural and memory state of the authoritative
// emulator on every one. Programs mix straight-line ALU/FP/memory code,
// bounded counted loops (hot enough to promote through BBM into SBM),
// calls, indirect jumps, string instructions and system calls.
func RandomProgram(seed uint64) (*guest.Image, error) {
	src := RandomProgramSource(seed)
	im, err := guest.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("random program %d: %w\n%s", seed, err, src)
	}
	return im, nil
}

// RandomProgramSource renders the assembly text for RandomProgram.
func RandomProgramSource(seed uint64) string {
	r := &rng{s: seed*0x9E3779B9 + 0xB7E15162}
	var b strings.Builder
	w := func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}
	const dataAt = 0x200000
	nFuncs := 2 + r.intn(4)

	w(".org 0x1000")
	w(".entry start")
	w("start:")
	w("    movri ebp, %d", dataAt)
	w("    movri ebx, %d", int32(seed))
	// Call every function a loop-count that promotes hot code.
	w("    movri edx, %d", 2+r.intn(3))
	w("outer:")
	for f := 0; f < nFuncs; f++ {
		if r.intn(4) == 0 {
			// Indirect call through a register.
			w("    movri eax, @rfunc%d", f)
			w("    callr eax")
		} else {
			w("    call rfunc%d", f)
		}
	}
	w("    dec edx")
	w("    cmpri edx, 0")
	w("    jg outer")
	w("    movri eax, 1")
	w("    movri ebx, 0")
	w("    syscall")
	w("    halt")

	for f := 0; f < nFuncs; f++ {
		emitRandomFunc(&b, r, f, dataAt)
	}
	return b.String()
}

// emitRandomFunc emits a function with a bounded loop of random work.
func emitRandomFunc(b *strings.Builder, r *rng, f int, dataAt int) {
	w := func(format string, args ...any) {
		fmt.Fprintf(b, format, args...)
		b.WriteByte('\n')
	}
	w("rfunc%d:", f)
	w("    push ecx")
	w("    push edx")
	// Loop trip count large enough to reach SBM on some functions.
	trip := []int{8, 40, 150, 400}[r.intn(4)]
	w("    movri ecx, %d", trip)
	w("rf%d_loop:", f)

	n := 3 + r.intn(18)
	regs := []string{"eax", "esi", "edi"}
	pick := func() string { return regs[r.intn(len(regs))] }
	for i := 0; i < n; i++ {
		switch r.intn(20) {
		case 0:
			w("    movri %s, %d", pick(), int32(r.next()))
		case 1:
			w("    addrr %s, %s", pick(), pick())
		case 2:
			w("    subri %s, %d", pick(), int32(r.next()&0xFFFFF))
		case 3:
			w("    imulri %s, %d", pick(), int32(r.next()&0xFF))
		case 4:
			w("    xorrr ebx, %s", pick())
		case 5:
			w("    shlri %s, %d", pick(), r.intn(31))
		case 6:
			w("    shrrr %s, %s", pick(), pick())
		case 7:
			w("    sarri %s, %d", pick(), r.intn(31))
		case 8:
			// Memory traffic on the shared slab.
			w("    movrr esi, ecx")
			w("    andri esi, 127")
			w("    storex [ebp+esi<<2+%d], %s", 256*r.intn(4), pick())
		case 9:
			w("    movrr esi, ecx")
			w("    andri esi, 127")
			w("    loadx %s, [ebp+esi<<2+%d]", pick(), 256*r.intn(4))
		case 10:
			w("    push %s", pick())
			w("    pop %s", pick())
		case 11:
			// Flag consumers on random flag state.
			w("    cmprr %s, %s", pick(), pick())
			w("    jle rf%d_s%d", f, i)
			w("    addri ebx, %d", r.intn(1000))
			w("rf%d_s%d:", f, i)
		case 12:
			w("    testrr %s, %s", pick(), pick())
			w("    je rf%d_t%d", f, i)
			w("    xorri ebx, %d", int32(r.next()&0xFFFF))
			w("rf%d_t%d:", f, i)
		case 13:
			w("    adcrr %s, %s", pick(), pick())
		case 14:
			w("    sbbrr %s, %s", pick(), pick())
		case 15:
			w("    movrr eax, %s", pick())
			w("    idiv edi")
		case 16:
			// FP segment.
			w("    cvtif f0, %s", pick())
			w("    fldi f1, %.4f", 0.5+r.f64()*3)
			switch r.intn(5) {
			case 0:
				w("    fadd f0, f1")
			case 1:
				w("    fmul f0, f1")
			case 2:
				w("    fsin f2, f1")
				w("    fadd f0, f2")
			case 3:
				w("    fcos f2, f0")
				w("    fadd f0, f2")
			case 4:
				w("    fabs f2, f0")
				w("    fsqrt f3, f2")
				w("    fadd f0, f3")
			}
			w("    fcmp f0, f1")
			w("    jae rf%d_f%d", f, i)
			w("    fst [ebp+%d], f0", 2048+8*r.intn(16))
			w("rf%d_f%d:", f, i)
			w("    cvtfi esi, f0")
			w("    xorrr ebx, esi")
		case 17:
			// String op through the interpreter safety net.
			w("    push ecx")
			w("    movri esi, %d", dataAt)
			w("    movri edi, %d", dataAt+4096)
			w("    movri ecx, %d", 4+r.intn(28))
			if r.intn(2) == 0 {
				w("    movs")
			} else {
				w("    stos")
			}
			w("    pop ecx")
		case 18:
			w("    neg %s", pick())
		case 19:
			w("    inc %s", pick())
			w("    dec %s", pick())
		}
	}
	w("    dec ecx")
	w("    cmpri ecx, 0")
	w("    jg rf%d_loop", f)
	w("    pop edx")
	w("    pop ecx")
	w("    ret")
}
