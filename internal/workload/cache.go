package workload

import (
	"sync"

	"darco/internal/guest"
)

// imageCache memoizes generated workload images by their full profile
// (Profile is a comparable value type, so the profile itself — scale
// already folded in — is the key). Generation is deterministic, and a
// loaded image is read-only, so one image can back any number of
// concurrent sessions. Campaign sweeps and the benchmark harness
// regenerate identical images constantly; this drops that cost to one
// Generate per distinct profile per process.
var imageCache sync.Map // Profile -> *guest.Image

// CachedImage returns the generated image for p, generating it at most
// once per process. Callers must treat the image as immutable.
func CachedImage(p Profile) (*guest.Image, error) {
	if im, ok := imageCache.Load(p); ok {
		return im.(*guest.Image), nil
	}
	im, err := p.Generate()
	if err != nil {
		return nil, err
	}
	actual, _ := imageCache.LoadOrStore(p, im)
	return actual.(*guest.Image), nil
}
