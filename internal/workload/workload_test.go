package workload

import (
	"strings"
	"testing"

	"darco/internal/guest"
	"darco/internal/guestvm"
)

func TestSuiteRoster(t *testing.T) {
	ps := Suites()
	if len(ps) != 31 {
		t.Fatalf("roster has %d benchmarks, want 31", len(ps))
	}
	counts := map[string]int{}
	for _, p := range ps {
		counts[p.Suite]++
	}
	if counts[SuiteINT] != 11 || counts[SuiteFP] != 13 || counts[SuitePhysics] != 7 {
		t.Errorf("suite sizes: %v", counts)
	}
}

func TestAllProfilesAssemble(t *testing.T) {
	for _, p := range Suites() {
		if _, err := p.Scale(0.02).Generate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	p, _ := ByName("429.mcf")
	a := p.Source()
	b := p.Source()
	if a != b {
		t.Fatalf("generation not deterministic")
	}
}

func TestProgramsTerminateAndWriteChecksum(t *testing.T) {
	for _, name := range []string{"429.mcf", "470.lbm", "ragdoll", "401.bzip2", "400.perlbench"} {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		im, err := p.Scale(0.02).Generate()
		if err != nil {
			t.Fatal(err)
		}
		vm, err := guestvm.New(im)
		if err != nil {
			t.Fatal(err)
		}
		reason, err := vm.Run(guestvm.RunLimits{InsnCount: 50_000_000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if reason != guestvm.StopHalt {
			t.Fatalf("%s did not terminate: %v", name, reason)
		}
		if len(vm.Env.Output) != 4 {
			t.Errorf("%s wrote %d bytes", name, len(vm.Env.Output))
		}
		if !vm.Env.Exited || vm.Env.ExitCode != 0 {
			t.Errorf("%s exit %v/%d", name, vm.Env.Exited, vm.Env.ExitCode)
		}
	}
}

func TestScale(t *testing.T) {
	p, _ := ByName("429.mcf")
	half := p.Scale(0.5)
	if half.OuterIters != p.OuterIters/2 {
		t.Errorf("scale 0.5: %d vs %d", half.OuterIters, p.OuterIters)
	}
	tiny := p.Scale(0.0001)
	if tiny.OuterIters < 1 {
		t.Errorf("scale floor violated")
	}
}

func TestSuiteCharacteristics(t *testing.T) {
	intBB, fpBB := 0.0, 0.0
	for _, p := range SuiteOf(SuiteINT) {
		intBB += float64(p.BBSize)
	}
	intBB /= float64(len(SuiteOf(SuiteINT)))
	for _, p := range SuiteOf(SuiteFP) {
		fpBB += float64(p.BBSize)
	}
	fpBB /= float64(len(SuiteOf(SuiteFP)))
	if intBB >= fpBB {
		t.Errorf("SPECINT blocks (%.1f) must be smaller than SPECFP (%.1f)", intBB, fpBB)
	}
	for _, p := range SuiteOf(SuitePhysics) {
		if p.TrigFrac == 0 {
			t.Errorf("%s: physics benchmarks use trig", p.Name)
		}
	}
	for _, p := range SuiteOf(SuiteINT) {
		if p.FPFrac > 0.1 {
			t.Errorf("%s: integer benchmark with %.0f%% FP", p.Name, 100*p.FPFrac)
		}
	}
}

func TestDynStaticRatioOrdering(t *testing.T) {
	// Physicsbench dynamic/static ratio must be well below SPEC's: that
	// is what drives the paper's Fig. 6 overhead gap.
	ratio := func(p Profile) float64 {
		im, err := p.Scale(0.1).Generate()
		if err != nil {
			t.Fatal(err)
		}
		vm, _ := guestvm.New(im)
		if _, err := vm.Run(guestvm.RunLimits{InsnCount: 10_000_000}); err != nil {
			t.Fatal(err)
		}
		static := 0
		for _, s := range im.Segments {
			static += len(s.Data)
		}
		return float64(vm.InsnCount) / float64(static)
	}
	mcf, _ := ByName("429.mcf")
	rag, _ := ByName("ragdoll")
	if ratio(mcf) <= 2*ratio(rag) {
		t.Errorf("dyn/static: mcf %.1f should far exceed ragdoll %.1f", ratio(mcf), ratio(rag))
	}
}

func TestRandomProgramsAssembleAndTerminate(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		im, err := RandomProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		vm, err := guestvm.New(im)
		if err != nil {
			t.Fatal(err)
		}
		reason, err := vm.Run(guestvm.RunLimits{InsnCount: 20_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if reason != guestvm.StopHalt {
			t.Fatalf("seed %d did not halt (%v after %d insns)", seed, reason, vm.InsnCount)
		}
	}
}

func TestRandomProgramDeterministic(t *testing.T) {
	if RandomProgramSource(5) != RandomProgramSource(5) {
		t.Fatalf("random program generation not deterministic")
	}
	if RandomProgramSource(5) == RandomProgramSource(6) {
		t.Fatalf("seeds should differ")
	}
}

func TestIndirectProfileUsesCallr(t *testing.T) {
	p, _ := ByName("403.gcc")
	if !p.Indirect {
		t.Skip("gcc not indirect?")
	}
	if !strings.Contains(p.Source(), "callr eax") {
		t.Errorf("indirect profile emits no callr")
	}
	_ = guest.CALLr
}
