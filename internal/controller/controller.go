// Package controller implements DARCO's Controller: the user-facing
// component that launches the x86 (authoritative) and co-designed
// components, mediates the Initialization / Execution / Synchronization
// phases, services the co-designed component's data requests (page
// transfers), executes system calls on the authoritative side, and
// validates the emulated architectural and memory state against the
// authoritative state (§V-A, §V-D).
package controller

import (
	"context"
	"fmt"
	"math"

	"darco/internal/guest"
	"darco/internal/guestvm"
	"darco/internal/tol"
)

// SyncKind classifies the synchronization events the controller
// mediates between the co-designed and authoritative components.
type SyncKind uint8

// Synchronization event kinds.
const (
	SyncSyscall      SyncKind = iota // syscall executed authoritatively, state forwarded
	SyncValidation                   // full state comparison passed
	SyncPageTransfer                 // guest page copied on first co-designed touch
	SyncFinal                        // end of application, final validation passed
)

func (k SyncKind) String() string {
	switch k {
	case SyncSyscall:
		return "syscall"
	case SyncValidation:
		return "validation"
	case SyncPageTransfer:
		return "page-transfer"
	case SyncFinal:
		return "final"
	}
	return "?"
}

// SyncEvent describes one synchronization the controller performed.
type SyncEvent struct {
	Kind       SyncKind
	GuestInsns uint64 // dynamic guest instructions retired so far
	GuestBBs   uint64 // dynamic guest basic blocks retired so far
	Addr       uint32 // page address (SyncPageTransfer only)
}

// MismatchError reports a divergence between the co-designed and
// authoritative states detected during validation.
type MismatchError struct {
	What     string // "register", "flags", "memory", "eip"
	Detail   string
	GuestBBs uint64 // dynamic basic blocks at detection
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("state mismatch after %d BBs: %s: %s", e.GuestBBs, e.What, e.Detail)
}

// Config parameterises a run.
type Config struct {
	TOL tol.Config
	// ValidateEveryNSyncs additionally compares full state at every
	// N-th synchronization (0 = only at end of application).
	ValidateEveryNSyncs int
	// MaxGuestInsns aborts runaway programs (0 = unlimited).
	MaxGuestInsns uint64

	// CheckInterval bounds one co-designed excursion to at most N guest
	// instructions, so RunContext observes cancellation and reports
	// progress between excursions even when the guest runs long without
	// a natural synchronization (0 = unbounded excursions).
	CheckInterval uint64

	// OnSync, when non-nil, observes every synchronization event.
	OnSync func(SyncEvent)
	// OnTick, when non-nil, runs after every CheckInterval-bounded
	// excursion that did not end the run (a progress heartbeat).
	OnTick func()
	// OnExcursion, when non-nil, runs every time a co-designed
	// excursion returns control to the controller — before the
	// synchronization (or error) that ended it is processed. The
	// session layer flushes its retire-stream batch here, so buffered
	// instruction events are always delivered ahead of the sync events
	// that follow them in retire order, and no events linger in the
	// buffer while the controller is outside the co-designed component.
	OnExcursion func()
}

// DefaultConfig returns the default controller configuration.
func DefaultConfig() Config {
	return Config{TOL: tol.DefaultConfig(), ValidateEveryNSyncs: 1}
}

// Controller owns one application execution.
type Controller struct {
	X86 *guestvm.VM // authoritative full-system component
	CoD *tol.TOL    // co-designed component

	Cfg Config

	// Statistics.
	PageTransfers uint64
	SyscallSyncs  uint64
	Validations   uint64

	syncs int
	// bbOffset is the authoritative component's basic-block count at
	// the moment the co-designed component was attached (non-zero when
	// a sampling methodology transplants mid-program state).
	bbOffset uint64
}

// New performs the Initialization phase: it launches both components,
// loads the image into the authoritative component, and transfers the
// initial architectural state to the co-designed component.
func New(im *guest.Image, cfg Config) (*Controller, error) {
	x86, err := guestvm.New(im)
	if err != nil {
		return nil, err
	}
	return NewFrom(x86, cfg), nil
}

// NewFrom attaches a fresh co-designed component to an authoritative
// component that may already have made progress: the sampling warm-up
// methodology fast-forwards the x86 component functionally and
// transplants its state as the co-designed initial state.
func NewFrom(x86 *guestvm.VM, cfg Config) *Controller {
	cod := tol.New(cfg.TOL)
	// The process tracker pauses the x86 component (the EXECVE
	// analogue) and the controller forwards the initial state.
	cod.CPU = x86.CPU
	return &Controller{X86: x86, CoD: cod, Cfg: cfg, bbOffset: x86.BBCount}
}

// notify reports a synchronization event to the configured observer.
func (c *Controller) notify(kind SyncKind, addr uint32) {
	if c.Cfg.OnSync == nil {
		return
	}
	c.Cfg.OnSync(SyncEvent{
		Kind:       kind,
		GuestInsns: c.CoD.Stats.GuestInsns(),
		GuestBBs:   c.CoD.Stats.GuestBBs,
		Addr:       addr,
	})
}

// transferPage services a data request: the x86 component first catches
// up to the co-designed component's progress point, then the page is
// copied over.
func (c *Controller) transferPage(addr uint32) error {
	if err := c.catchUp(); err != nil {
		return err
	}
	page, err := c.X86.Mem.PageData(addr)
	if err != nil {
		return err
	}
	c.CoD.InstallPage(addr&^uint32(guestvm.PageSize-1), page)
	c.PageTransfers++
	c.notify(SyncPageTransfer, addr&^uint32(guestvm.PageSize-1))
	return nil
}

// catchUp advances the authoritative component to the co-designed
// component's dynamic basic-block count.
func (c *Controller) catchUp() error {
	target := c.bbOffset + c.CoD.Stats.GuestBBs
	if c.X86.BBCount >= target {
		return nil
	}
	reason, err := c.X86.Run(guestvm.RunLimits{BBCount: target})
	if err != nil {
		return err
	}
	if reason != guestvm.StopBBLimit && reason != guestvm.StopHalt {
		return fmt.Errorf("controller: unexpected stop %v during catch-up", reason)
	}
	if c.X86.BBCount != target {
		return fmt.Errorf("controller: catch-up overshoot: x86 at %d BBs, co-designed at %d",
			c.X86.BBCount, target)
	}
	return nil
}

// syncSyscall executes the pending system call on the authoritative
// component and copies the resulting architectural state to the
// co-designed component (system calls are executed only by the x86
// component, §V-A).
func (c *Controller) syncSyscall() error {
	if err := c.catchUp(); err != nil {
		return err
	}
	// The co-designed component sits mid-basic-block at the SYSCALL;
	// advance the authoritative side through the partial block to the
	// same point.
	if reason, err := c.X86.Run(guestvm.RunLimits{StopAtSys: true, BBCount: c.bbOffset + c.CoD.Stats.GuestBBs + 1}); err != nil {
		return err
	} else if reason != guestvm.StopSyscall {
		return &MismatchError{What: "eip", GuestBBs: c.CoD.Stats.GuestBBs,
			Detail: fmt.Sprintf("x86 stopped for %v instead of reaching the syscall", reason)}
	}
	// Both components sit at the SYSCALL instruction: validate here if
	// configured, then execute it authoritatively.
	c.syncs++
	if c.Cfg.ValidateEveryNSyncs > 0 && c.syncs%c.Cfg.ValidateEveryNSyncs == 0 {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	in, err := c.X86.Fetch(c.X86.CPU.EIP)
	if err != nil {
		return err
	}
	if in.Op != guest.SYSCALL {
		return &MismatchError{What: "eip", GuestBBs: c.CoD.Stats.GuestBBs,
			Detail: fmt.Sprintf("co-designed at syscall, x86 at %#x (%v)", c.X86.CPU.EIP, in.Op)}
	}
	if err := c.X86.ServiceSyscallAt(); err != nil {
		return err
	}
	c.SyscallSyncs++
	// Transfer the post-syscall architectural state. Syscall-written
	// memory is transferred lazily through the normal data-request
	// path (current syscalls write registers only).
	c.CoD.CPU = c.X86.CPU
	c.CoD.Stats.GuestInsnsIM++ // the syscall instruction retires
	c.CoD.Stats.GuestBBs++
	c.CoD.ClearMidBB()
	if c.X86.Halted {
		c.CoD.SetHalted()
	}
	c.notify(SyncSyscall, 0)
	return nil
}

// StepValidate catches the authoritative component up to the
// co-designed progress point and validates the full state. The debug
// toolchain calls it after every dispatch in lockstep mode.
func (c *Controller) StepValidate() error {
	if err := c.catchUp(); err != nil {
		return err
	}
	return c.Validate()
}

// Validate compares the full co-designed architectural and memory state
// against the authoritative state.
func (c *Controller) Validate() error {
	c.Validations++
	bbs := c.CoD.Stats.GuestBBs
	a, b := &c.X86.CPU, &c.CoD.CPU
	if a.EIP != b.EIP {
		return &MismatchError{What: "eip", GuestBBs: bbs,
			Detail: fmt.Sprintf("x86 %#x, co-designed %#x", a.EIP, b.EIP)}
	}
	for i := 0; i < guest.NumGPR; i++ {
		if a.R[i] != b.R[i] {
			return &MismatchError{What: "register", GuestBBs: bbs,
				Detail: fmt.Sprintf("%s: x86 %#x, co-designed %#x", guest.GPRName(uint8(i)), a.R[i], b.R[i])}
		}
	}
	if a.Flags&guest.AllFlags != b.Flags&guest.AllFlags {
		return &MismatchError{What: "flags", GuestBBs: bbs,
			Detail: fmt.Sprintf("x86 %#05b, co-designed %#05b", a.Flags, b.Flags)}
	}
	for i := 0; i < guest.NumFPR; i++ {
		if f64bits(a.F[i]) != f64bits(b.F[i]) {
			return &MismatchError{What: "register", GuestBBs: bbs,
				Detail: fmt.Sprintf("f%d: x86 %g, co-designed %g", i, a.F[i], b.F[i])}
		}
	}
	// Memory: every co-designed page must match the authoritative
	// content (the co-designed side holds a subset of pages).
	for _, pageAddr := range c.CoD.Mem.Pages() {
		cp, err := c.CoD.Mem.PageData(pageAddr)
		if err != nil {
			return err
		}
		ap, err := c.X86.Mem.PageData(pageAddr)
		if err != nil {
			return err
		}
		if *cp != *ap {
			off := 0
			for i := range cp {
				if cp[i] != ap[i] {
					off = i
					break
				}
			}
			return &MismatchError{What: "memory", GuestBBs: bbs,
				Detail: fmt.Sprintf("addr %#x: x86 %#02x, co-designed %#02x",
					pageAddr+uint32(off), ap[off], cp[off])}
		}
	}
	c.notify(SyncValidation, 0)
	return nil
}

// Run drives the Execution phase to completion (or for up to budget
// guest instructions when budget > 0), mediating every synchronization.
func (c *Controller) Run(budget uint64) error {
	return c.RunContext(context.Background(), budget)
}

// RunContext is Run with cancellation: the context is checked before
// every co-designed excursion, and Cfg.CheckInterval bounds how many
// guest instructions one excursion may retire before control returns
// here, so cancellation is observed within one interval even when the
// guest computes without synchronizing. State stays consistent on
// cancellation: a later RunContext call resumes where this one stopped.
func (c *Controller) RunContext(ctx context.Context, budget uint64) error {
	start := c.CoD.Stats.GuestInsns()
	for !c.CoD.Halted() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if c.Cfg.MaxGuestInsns > 0 && c.CoD.Stats.GuestInsns() > c.Cfg.MaxGuestInsns {
			return fmt.Errorf("controller: guest instruction limit exceeded")
		}
		step := uint64(0)
		if budget > 0 {
			used := c.CoD.Stats.GuestInsns() - start
			if used >= budget {
				return nil
			}
			step = budget - used
		}
		if iv := c.Cfg.CheckInterval; iv > 0 && (step == 0 || step > iv) {
			step = iv
		}
		res, err := c.CoD.Run(step)
		if c.Cfg.OnExcursion != nil {
			c.Cfg.OnExcursion()
		}
		if err != nil {
			return err
		}
		switch res.Event {
		case tol.EvBudget:
			if budget > 0 && c.CoD.Stats.GuestInsns()-start >= budget {
				return nil
			}
			// Interval tick only: report progress, then loop back to the
			// cancellation check.
			if c.Cfg.OnTick != nil {
				c.Cfg.OnTick()
			}
		case tol.EvHalt:
			// End of application: final synchronization and validation.
			if err := c.catchUp(); err != nil {
				return err
			}
			if !c.X86.Halted {
				if _, err := c.X86.Run(guestvm.RunLimits{BBCount: c.bbOffset + c.CoD.Stats.GuestBBs}); err != nil {
					return err
				}
			}
			if err := c.Validate(); err != nil {
				return err
			}
			c.notify(SyncFinal, 0)
			return nil
		case tol.EvSyscall:
			if err := c.syncSyscall(); err != nil {
				return err
			}
		case tol.EvNeedPage:
			if err := c.transferPage(res.FaultAddr); err != nil {
				return err
			}
		}
	}
	// Halted through the exit syscall: the syscall synchronization
	// already validated the final state.
	c.notify(SyncFinal, 0)
	return nil
}

// Output returns the program's syscall output (authoritative side).
func (c *Controller) Output() []byte { return c.X86.Env.Output }

func f64bits(f float64) uint64 { return math.Float64bits(f) }
