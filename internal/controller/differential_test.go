package controller

import (
	"testing"

	"darco/internal/tol"
	"darco/internal/workload"
)

// TestRandomProgramsDifferential is the central correctness property of
// the whole infrastructure: for random guest programs, the co-designed
// component — interpreter, basic-block translator, and aggressively
// optimized superblocks with control and data speculation — must
// produce exactly the architectural and memory state of the
// authoritative emulator at every synchronization point.
func TestRandomProgramsDifferential(t *testing.T) {
	n := uint64(60)
	if testing.Short() {
		n = 15
	}
	for seed := uint64(0); seed < n; seed++ {
		seed := seed
		im, err := workload.RandomProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := DefaultConfig()
		// Aggressive promotion so random programs exercise SBM.
		cfg.TOL.BBThreshold = 2
		cfg.TOL.SBThreshold = 6
		cfg.MaxGuestInsns = 30_000_000
		c, err := New(im, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := c.Run(0); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, workload.RandomProgramSource(seed))
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: final state: %v", seed, err)
		}
	}
}

// TestRandomProgramsDifferentialMultiExit repeats the property with
// control speculation disabled (multi-exit superblocks), covering the
// other superblock shape.
func TestRandomProgramsDifferentialMultiExit(t *testing.T) {
	n := uint64(25)
	if testing.Short() {
		n = 8
	}
	for seed := uint64(100); seed < 100+n; seed++ {
		im, err := workload.RandomProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := DefaultConfig()
		cfg.TOL.BBThreshold = 2
		cfg.TOL.SBThreshold = 6
		cfg.TOL.SB.NoAsserts = true
		cfg.MaxGuestInsns = 30_000_000
		c, err := New(im, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := c.Run(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRandomProgramsDifferentialEagerFlags covers the eager-flags
// ablation path of the translator.
func TestRandomProgramsDifferentialEagerFlags(t *testing.T) {
	for seed := uint64(200); seed < 215; seed++ {
		im, err := workload.RandomProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := DefaultConfig()
		cfg.TOL.BBThreshold = 2
		cfg.TOL.SBThreshold = 6
		cfg.TOL.EagerFlags = true
		cfg.MaxGuestInsns = 30_000_000
		c, err := New(im, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := c.Run(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRandomProgramsTinyCache forces continual code cache flushes,
// unchaining and retranslation.
func TestRandomProgramsTinyCache(t *testing.T) {
	for seed := uint64(300); seed < 312; seed++ {
		im, err := workload.RandomProgram(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := DefaultConfig()
		cfg.TOL.BBThreshold = 2
		cfg.TOL.SBThreshold = 6
		cfg.TOL.CacheSize = 1500 // a handful of blocks
		cfg.MaxGuestInsns = 30_000_000
		c, err := New(im, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := c.Run(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if c.CoD.Cache.Flushes == 0 {
			t.Logf("seed %d: no flush triggered (program too small)", seed)
		}
	}
}

// TestValidationCatchesInjectedCorruption checks the correctness
// machinery itself: corrupting the co-designed state must be detected.
func TestValidationCatchesInjectedCorruption(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.02).Generate()
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(im, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte of co-designed memory.
	pages := c.CoD.Mem.Pages()
	if len(pages) == 0 {
		t.Fatal("no pages")
	}
	b, _ := c.CoD.Mem.Load8(pages[0] + 5)
	c.CoD.Mem.Store8(pages[0]+5, b^0xFF)
	err = c.Validate()
	mm, ok := err.(*MismatchError)
	if !ok {
		t.Fatalf("corruption not detected: %v", err)
	}
	if mm.What != "memory" {
		t.Errorf("mismatch kind %q", mm.What)
	}
	// Register corruption too.
	c.CoD.Mem.Store8(pages[0]+5, b)
	c.CoD.CPU.R[3] ^= 1
	if err := c.Validate(); err == nil {
		t.Errorf("register corruption not detected")
	}
	_ = tol.EvHalt // keep the import for documentation links
}
