package controller

import (
	"testing"

	"darco/internal/guestvm"
	"darco/internal/workload"
)

// TestTransplantMidProgram covers the sampling methodology's entry
// point: fast-forward the authoritative component functionally, attach
// a fresh (cold) co-designed component to its state, and run the rest
// of the program with full validation.
func TestTransplantMidProgram(t *testing.T) {
	p, _ := workload.ByName("462.libquantum")
	im, err := p.Scale(0.03).Generate()
	if err != nil {
		t.Fatal(err)
	}

	// Total length from a plain functional run.
	ref, err := guestvm.New(im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(guestvm.RunLimits{}); err != nil {
		t.Fatal(err)
	}
	total := ref.InsnCount

	// Fast-forward to the middle, transplant, finish co-designed.
	x86, err := guestvm.New(im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x86.Run(guestvm.RunLimits{InsnCount: total / 2}); err != nil {
		t.Fatal(err)
	}
	ctl := NewFrom(x86, DefaultConfig())
	if err := ctl.Run(0); err != nil {
		t.Fatalf("transplanted run: %v", err)
	}
	if err := ctl.Validate(); err != nil {
		t.Fatalf("final validation: %v", err)
	}
	if !ctl.X86.Halted {
		t.Errorf("authoritative side did not finish")
	}
	// The co-designed side only executed the second half.
	if ctl.CoD.Stats.GuestInsns() >= total {
		t.Errorf("co-designed executed %d of %d", ctl.CoD.Stats.GuestInsns(), total)
	}
}

// TestTransplantBudgetedRuns drives a transplanted pair in small budget
// slices (the warm-up methodology's access pattern).
func TestTransplantBudgetedRuns(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.02).Generate()
	if err != nil {
		t.Fatal(err)
	}
	x86, err := guestvm.New(im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x86.Run(guestvm.RunLimits{InsnCount: 5000}); err != nil {
		t.Fatal(err)
	}
	ctl := NewFrom(x86, DefaultConfig())
	for i := 0; i < 10 && !ctl.CoD.Halted(); i++ {
		if err := ctl.Run(2000); err != nil {
			t.Fatalf("slice %d: %v", i, err)
		}
	}
	if ctl.CoD.Stats.GuestInsns() == 0 {
		t.Errorf("no progress in budget slices")
	}
}
