package controller

import (
	"testing"

	"darco/internal/workload"
)

// TestAllWorkloadsValidate runs every paper benchmark (scaled down)
// through the full co-designed stack and validates the final
// architectural and memory state against the authoritative emulator.
func TestAllWorkloadsValidate(t *testing.T) {
	scale := 0.05
	if testing.Short() {
		scale = 0.02
	}
	for _, p := range workload.Suites() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			im, err := p.Scale(scale).Generate()
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			cfg := DefaultConfig()
			cfg.MaxGuestInsns = 200_000_000
			c, err := New(im, cfg)
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			if err := c.Run(0); err != nil {
				t.Fatalf("run: %v", err)
			}
			st := &c.CoD.Stats
			if st.GuestInsns() == 0 {
				t.Fatalf("no instructions retired")
			}
			if len(c.Output()) != 4 {
				t.Fatalf("expected 4 checksum bytes, got %d", len(c.Output()))
			}
			t.Logf("%-16s insns=%d IM/BBM/SBM=%.1f%%/%.1f%%/%.1f%% ov=%.1f%%",
				p.Name, st.GuestInsns(),
				100*float64(st.GuestInsnsIM)/float64(st.GuestInsns()),
				100*float64(st.GuestInsnsBBM)/float64(st.GuestInsns()),
				100*float64(st.GuestInsnsSBM)/float64(st.GuestInsns()),
				100*float64(c.CoD.Overhead.Total())/float64(c.CoD.Overhead.Total()+c.CoD.VM.AppInsns))
		})
	}
}
