package controller

import (
	"testing"

	"darco/internal/guest"
)

// smokeProgram exercises loops hot enough to reach SBM, memory traffic,
// calls, FP and flag-dependent control flow.
const smokeProgram = `
.org 0x1000
start:
    movri ebp, 0x100000      ; data base
    movri ecx, 0             ; i = 0
    movri ebx, 0             ; sum
loop:
    movrr eax, ecx
    imulri eax, 3
    addri eax, 7
    addrr ebx, eax           ; sum += 3i+7
    storex [ebp+ecx<<2+0], eax
    inc ecx
    cmpri ecx, 500
    jl loop

    ; checksum pass over the array
    movri esi, 0
    movri edx, 0
chk:
    loadx eax, [ebp+esi<<2+0]
    xorrr edx, eax
    inc esi
    cmpri esi, 500
    jl chk

    ; a call/ret pair
    movrr eax, edx
    call double
    movrr edx, eax

    ; some FP including software-emulated trig
    fldi f0, 0.5
    fldi f1, 0.0
    movri edi, 0
floop:
    fsin f2, f0
    fadd f1, f2
    fadd f0, f0
    fsqrt f3, f1
    inc edi
    cmpri edi, 40
    jl floop

    ; store fp result and exit
    fst [ebp+4096], f1
    movri eax, 1             ; SysExit
    movri ebx, 0
    syscall
    halt

double:
    addrr eax, eax
    ret
`

func TestSmokeEndToEnd(t *testing.T) {
	im, err := guest.Assemble(smokeProgram)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	cfg := DefaultConfig()
	cfg.MaxGuestInsns = 10_000_000
	c, err := New(im, cfg)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := c.Run(0); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("final validate: %v", err)
	}
	st := &c.CoD.Stats
	t.Logf("guest insns: IM=%d BBM=%d SBM=%d", st.GuestInsnsIM, st.GuestInsnsBBM, st.GuestInsnsSBM)
	t.Logf("translations: BB=%d SB=%d rebuilds(assert=%d spec=%d) unrolled=%d",
		st.BBTranslations, st.SBTranslations, st.AssertRebuilds, st.SpecRebuilds, st.UnrolledLoops)
	if st.SBTranslations == 0 {
		t.Errorf("expected superblock promotions, got none")
	}
	if st.GuestInsnsSBM == 0 {
		t.Errorf("expected SBM retirement, got none")
	}
}
