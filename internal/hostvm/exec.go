package hostvm

import (
	"fmt"
	"math"

	"darco/internal/codecache"
	"darco/internal/host"
)

// pageFaulter is implemented by the co-designed memory's fault error.
type pageFaulter interface{ PageFaultAddr() uint32 }

// faultAddr extracts the faulting address if err is a guest page fault.
func faultAddr(err error) (uint32, bool) {
	if pf, ok := err.(pageFaulter); ok {
		return pf.PageFaultAddr(), true
	}
	return 0, false
}

// RunStats carries per-dispatch retirement attribution back to the TOL.
type RunStats struct {
	GuestInsnsBB uint64 // guest instructions retired from BBM blocks
	GuestInsnsSB uint64 // guest instructions retired from superblocks
	GuestBBs     uint64 // guest basic blocks retired
	HostInsnsBB  uint64 // host instructions retired in BBM blocks
	HostInsnsSB  uint64 // host instructions retired in superblocks
}

// Run executes translated code starting at block, following chains and
// IBTC hits, until control must return to the TOL. fuel bounds retired
// host instructions, checked at block boundaries (0 = unlimited).
func (vm *VM) Run(block *codecache.Block, fuel uint64) (Result, RunStats, error) {
	var st RunStats
	cur := block
	start := vm.AppInsns
	for {
		vm.BlocksRun++
		cur.ExecCount++
		if cur.Kind == codecache.KindBB && vm.HotThreshold > 0 && cur.ExecCount == vm.HotThreshold {
			vm.hotQueue = append(vm.hotQueue, cur.Entry)
		}
		if cur.Kind == codecache.KindBB {
			// Software execution-frequency counter embedded in the
			// translated basic block.
			vm.chargeSynthetic(vm.Cfg.ProfileCost)
		}
		before := vm.AppInsns
		res, err := vm.runBlock(cur)
		retired := vm.AppInsns - before
		if cur.Kind == codecache.KindBB {
			st.HostInsnsBB += retired
		} else {
			st.HostInsnsSB += retired
		}
		if err != nil {
			return Result{}, st, err
		}
		// Attribute guest retirement for non-rollback exits.
		if res.Kind == ExitToTOL || res.Kind == ExitIndirect {
			if meta, ok := cur.ExitMeta[res.ExitIdx]; ok {
				if cur.Kind == codecache.KindBB {
					st.GuestInsnsBB += uint64(meta.GuestInsns)
				} else {
					st.GuestInsnsSB += uint64(meta.GuestInsns)
				}
				st.GuestBBs += uint64(meta.GuestBBs)
			}
			cur.CountExit(res.ExitIdx)
			if cur.Kind == codecache.KindBB {
				// Software edge counter bump.
				vm.chargeSynthetic(vm.Cfg.ProfileCost)
			}
		}
		// A software profiling counter crossing the hot threshold
		// branches back into the TOL for promotion, ending the
		// excursion like the real embedded counter check would.
		stop := len(vm.hotQueue) > 0 || (fuel > 0 && vm.AppInsns-start >= fuel)
		switch res.Kind {
		case ExitToTOL:
			// Follow a chain installed by a previous dispatch.
			in := &cur.Code[res.ExitIdx]
			if in.Op == host.CHAINED {
				if next, ok := vm.Resolve(in.Link); ok {
					vm.ChainFollows++
					if stop {
						res.NextPC = next.Entry
						return res, st, nil
					}
					cur = next
					continue
				}
			}
			return res, st, nil
		case ExitIndirect:
			if vm.IBTC != nil {
				if next, ok := vm.IBTC(res.NextPC); ok {
					vm.IBTCHits++
					vm.chargeSynthetic(vm.Cfg.IBTCCost)
					if stop {
						return res, st, nil
					}
					cur = next
					continue
				}
			}
			vm.IBTCMisses++
			return res, st, nil
		default:
			return res, st, nil
		}
	}
}

// runBlock executes one block body from its first instruction to an
// exit, assert failure, speculation failure, or page fault.
func (vm *VM) runBlock(b *codecache.Block) (Result, error) {
	code := b.Code
	r := &vm.Regs
	i := 0
	for i < len(code) {
		in := &code[i]
		if host.Descs[in.Op].Class != host.ClassBranch {
			vm.AppInsns++
			if vm.Retire != nil {
				vm.retireEvent(in, blockPC(b.ID, i), false, 0)
			}
		}
		switch in.Op {
		case host.NOPH:
		case host.LI:
			r.R[in.Rd] = uint32(in.Imm)
		case host.MOVH:
			r.R[in.Rd] = r.R[in.Ra]
		case host.ADD:
			r.R[in.Rd] = r.R[in.Ra] + r.R[in.Rb]
		case host.ADDI:
			r.R[in.Rd] = r.R[in.Ra] + uint32(in.Imm)
		case host.SUB:
			r.R[in.Rd] = r.R[in.Ra] - r.R[in.Rb]
		case host.MUL:
			r.R[in.Rd] = uint32(int32(r.R[in.Ra]) * int32(r.R[in.Rb]))
		case host.DIV:
			den := int32(r.R[in.Rb])
			num := int32(r.R[in.Ra])
			switch {
			case den == 0:
				r.R[in.Rd] = 0xFFFFFFFF
			case num == math.MinInt32 && den == -1:
				r.R[in.Rd] = 0x80000000
			default:
				r.R[in.Rd] = uint32(num / den)
			}
		case host.REM:
			den := int32(r.R[in.Rb])
			num := int32(r.R[in.Ra])
			switch {
			case den == 0:
				r.R[in.Rd] = r.R[in.Ra]
			case num == math.MinInt32 && den == -1:
				r.R[in.Rd] = 0
			default:
				r.R[in.Rd] = uint32(num % den)
			}
		case host.AND:
			r.R[in.Rd] = r.R[in.Ra] & r.R[in.Rb]
		case host.ANDI:
			r.R[in.Rd] = r.R[in.Ra] & uint32(in.Imm)
		case host.OR:
			r.R[in.Rd] = r.R[in.Ra] | r.R[in.Rb]
		case host.ORI:
			r.R[in.Rd] = r.R[in.Ra] | uint32(in.Imm)
		case host.XOR:
			r.R[in.Rd] = r.R[in.Ra] ^ r.R[in.Rb]
		case host.XORI:
			r.R[in.Rd] = r.R[in.Ra] ^ uint32(in.Imm)
		case host.SHL:
			r.R[in.Rd] = r.R[in.Ra] << (r.R[in.Rb] & 31)
		case host.SHLI:
			r.R[in.Rd] = r.R[in.Ra] << (uint32(in.Imm) & 31)
		case host.SHR:
			r.R[in.Rd] = r.R[in.Ra] >> (r.R[in.Rb] & 31)
		case host.SHRI:
			r.R[in.Rd] = r.R[in.Ra] >> (uint32(in.Imm) & 31)
		case host.SAR:
			r.R[in.Rd] = uint32(int32(r.R[in.Ra]) >> (r.R[in.Rb] & 31))
		case host.SARI:
			r.R[in.Rd] = uint32(int32(r.R[in.Ra]) >> (uint32(in.Imm) & 31))
		case host.MULH:
			r.R[in.Rd] = uint32(uint64(int64(int32(r.R[in.Ra]))*int64(int32(r.R[in.Rb]))) >> 32)
		case host.SPILLI:
			vm.spillI[in.Imm] = r.R[in.Rd]
		case host.UNSPILLI:
			r.R[in.Rd] = vm.spillI[in.Imm]
		case host.SPILLF:
			vm.spillF[in.Imm] = r.F[in.Rd]
		case host.UNSPILLF:
			r.F[in.Rd] = vm.spillF[in.Imm]
		case host.SLT:
			r.R[in.Rd] = b2u(int32(r.R[in.Ra]) < int32(r.R[in.Rb]))
		case host.SLTU:
			r.R[in.Rd] = b2u(r.R[in.Ra] < r.R[in.Rb])
		case host.SEQ:
			r.R[in.Rd] = b2u(r.R[in.Ra] == r.R[in.Rb])
		case host.SNE:
			r.R[in.Rd] = b2u(r.R[in.Ra] != r.R[in.Rb])

		case host.LD, host.LDB:
			width := uint8(4)
			if in.Op == host.LDB {
				width = 1
			}
			addr := r.R[in.Ra] + uint32(in.Imm)
			v, ok, err := vm.bufLoad(addr, width)
			if err != nil {
				if fa, isPF := faultAddr(err); isPF {
					return vm.fault(b, fa), nil
				}
				if err == errPartialForward {
					return vm.specFail(b), nil
				}
				return Result{}, err
			}
			if !ok {
				return vm.specFail(b), nil
			}
			if in.Spec && !vm.recordSpecLoad(addr, width) {
				return vm.specFail(b), nil
			}
			r.R[in.Rd] = uint32(v)
		case host.FLDH:
			addr := r.R[in.Ra] + uint32(in.Imm)
			v, ok, err := vm.bufLoad(addr, 8)
			if err != nil {
				if fa, isPF := faultAddr(err); isPF {
					return vm.fault(b, fa), nil
				}
				if err == errPartialForward {
					return vm.specFail(b), nil
				}
				return Result{}, err
			}
			if !ok {
				return vm.specFail(b), nil
			}
			if in.Spec && !vm.recordSpecLoad(addr, 8) {
				return vm.specFail(b), nil
			}
			r.F[in.Rd] = math.Float64frombits(v)

		case host.ST, host.STB:
			width := uint8(4)
			if in.Op == host.STB {
				width = 1
			}
			addr := r.R[in.Ra] + uint32(in.Imm)
			if vm.probeStore(addr, width) {
				return vm.specFail(b), nil
			}
			// Probe residency so COMMIT cannot fault.
			if _, err := vm.Mem.Load8(addr); err != nil {
				if fa, isPF := faultAddr(err); isPF {
					return vm.fault(b, fa), nil
				}
				return Result{}, err
			}
			if width == 4 && addr&(0xFFF) > 0xFFC {
				if _, err := vm.Mem.Load8(addr + 3); err != nil {
					if fa, isPF := faultAddr(err); isPF {
						return vm.fault(b, fa), nil
					}
					return Result{}, err
				}
			}
			vm.stbuf = append(vm.stbuf, pendingStore{addr: addr, width: width, val: uint64(r.R[in.Rd])})
		case host.FSTH:
			addr := r.R[in.Ra] + uint32(in.Imm)
			if vm.probeStore(addr, 8) {
				return vm.specFail(b), nil
			}
			if _, err := vm.Mem.Load8(addr); err != nil {
				if fa, isPF := faultAddr(err); isPF {
					return vm.fault(b, fa), nil
				}
				return Result{}, err
			}
			if addr&0xFFF > 0xFF8 {
				if _, err := vm.Mem.Load8(addr + 7); err != nil {
					if fa, isPF := faultAddr(err); isPF {
						return vm.fault(b, fa), nil
					}
					return Result{}, err
				}
			}
			vm.stbuf = append(vm.stbuf, pendingStore{addr: addr, width: 8, val: math.Float64bits(r.F[in.Rd])})

		case host.BEQZ:
			taken := r.R[in.Ra] == 0
			vm.AppInsns++
			if vm.Retire != nil {
				vm.retireEvent(in, blockPC(b.ID, i), taken, blockPC(b.ID, i+1+int(in.Imm)))
			}
			if taken {
				i += 1 + int(in.Imm)
				continue
			}
		case host.BNEZ:
			taken := r.R[in.Ra] != 0
			vm.AppInsns++
			if vm.Retire != nil {
				vm.retireEvent(in, blockPC(b.ID, i), taken, blockPC(b.ID, i+1+int(in.Imm)))
			}
			if taken {
				i += 1 + int(in.Imm)
				continue
			}
		case host.JREL:
			vm.AppInsns++
			if vm.Retire != nil {
				vm.retireEvent(in, blockPC(b.ID, i), true, blockPC(b.ID, i+1+int(in.Imm)))
			}
			i += 1 + int(in.Imm)
			continue

		case host.EXIT:
			vm.retire(in, blockPC(b.ID, i), true, TOLDispatchPC)
			return Result{Kind: ExitToTOL, NextPC: in.Target, Block: b, ExitIdx: i}, nil
		case host.CHAINED:
			vm.retire(in, blockPC(b.ID, i), true, blockPC(in.Link, 0))
			return Result{Kind: ExitToTOL, NextPC: in.Target, Block: b, ExitIdx: i}, nil
		case host.EXITIND:
			next := r.R[in.Ra]
			// Indirect targets get a synthetic address derived from the
			// guest PC so the BTB sees stable per-target addresses.
			vm.retire(in, blockPC(b.ID, i), true, 0x8000_0000|next)
			return Result{Kind: ExitIndirect, NextPC: next, Block: b, ExitIdx: i}, nil

		case host.ASSERTH:
			failed := r.R[in.Ra] == 0
			// A failing assert behaves like a mispredicted branch that
			// flushes to the TOL's recovery path.
			vm.retire(in, blockPC(b.ID, i), failed, TOLDispatchPC)
			if failed {
				vm.AssertFails++
				b.AssertFails++
				vm.rollback()
				return Result{Kind: ExitAssertFail, NextPC: in.Target, Block: b, ExitIdx: i}, nil
			}
		case host.CHKPT:
			vm.checkpoint()
		case host.COMMIT:
			if err := vm.commit(); err != nil {
				return Result{}, fmt.Errorf("hostvm: commit failed: %w", err)
			}

		case host.FLI:
			r.F[in.Rd] = in.F64
		case host.FMOVH:
			r.F[in.Rd] = r.F[in.Ra]
		case host.FADDH:
			r.F[in.Rd] = r.F[in.Ra] + r.F[in.Rb]
		case host.FSUBH:
			r.F[in.Rd] = r.F[in.Ra] - r.F[in.Rb]
		case host.FMULH:
			r.F[in.Rd] = r.F[in.Ra] * r.F[in.Rb]
		case host.FDIVH:
			r.F[in.Rd] = r.F[in.Ra] / r.F[in.Rb]
		case host.FSQRTH:
			r.F[in.Rd] = math.Sqrt(r.F[in.Ra])
		case host.FABSH:
			r.F[in.Rd] = math.Abs(r.F[in.Ra])
		case host.FNEGH:
			r.F[in.Rd] = -r.F[in.Ra]
		case host.FCVTI:
			r.R[in.Rd] = uint32(truncF64(r.F[in.Ra]))
		case host.FCVTF:
			r.F[in.Rd] = float64(int32(r.R[in.Ra]))
		case host.FSLT:
			r.R[in.Rd] = b2u(r.F[in.Ra] < r.F[in.Rb])
		case host.FSEQ:
			r.R[in.Rd] = b2u(r.F[in.Ra] == r.F[in.Rb])
		case host.FUNORD:
			r.R[in.Rd] = b2u(math.IsNaN(r.F[in.Ra]) || math.IsNaN(r.F[in.Rb]))

		case host.VFADD:
			for l := 0; l < host.VecLanes; l++ {
				r.V[in.Rd][l] = r.V[in.Ra][l] + r.V[in.Rb][l]
			}
		case host.VFMUL:
			for l := 0; l < host.VecLanes; l++ {
				r.V[in.Rd][l] = r.V[in.Ra][l] * r.V[in.Rb][l]
			}
		case host.VFLD:
			base := r.R[in.Ra] + uint32(in.Imm)
			for l := 0; l < host.VecLanes; l++ {
				v, ok, err := vm.bufLoad(base+uint32(l*8), 8)
				if err != nil {
					if fa, isPF := faultAddr(err); isPF {
						return vm.fault(b, fa), nil
					}
					return Result{}, err
				}
				if !ok {
					return vm.specFail(b), nil
				}
				r.V[in.Rd][l] = math.Float64frombits(v)
			}
		case host.VFST:
			base := r.R[in.Ra] + uint32(in.Imm)
			for l := 0; l < host.VecLanes; l++ {
				addr := base + uint32(l*8)
				if vm.probeStore(addr, 8) {
					return vm.specFail(b), nil
				}
				if _, err := vm.Mem.Load8(addr); err != nil {
					if fa, isPF := faultAddr(err); isPF {
						return vm.fault(b, fa), nil
					}
					return Result{}, err
				}
				vm.stbuf = append(vm.stbuf, pendingStore{addr: addr, width: 8, val: math.Float64bits(r.V[in.Rd][l])})
			}

		default:
			return Result{}, fmt.Errorf("hostvm: illegal host op %v in block %d at %d", in.Op, b.ID, i)
		}
		i++
	}
	return Result{}, fmt.Errorf("hostvm: block %d fell off the end (guest entry %#x)", b.ID, b.Entry)
}

func (vm *VM) specFail(b *codecache.Block) Result {
	vm.MemSpecFails++
	b.SpecFails++
	vm.rollback()
	return Result{Kind: ExitMemSpecFail, NextPC: b.Entry, Block: b}
}

func (vm *VM) fault(b *codecache.Block, addr uint32) Result {
	vm.rollback()
	return Result{Kind: ExitPageFault, NextPC: b.Entry, FaultAddr: addr, Block: b}
}
