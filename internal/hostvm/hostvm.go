// Package hostvm is the host-ISA functional emulator of the co-designed
// component. It executes translated blocks from the code cache against
// the emulated guest state, implementing the co-design hardware
// extensions: architectural checkpointing, a gated (speculative) store
// buffer, assert-triggered rollback, and the alias-check table for
// speculatively reordered memory operations.
package hostvm

import (
	"fmt"
	"math"

	"darco/internal/codecache"
	"darco/internal/guest"
	"darco/internal/host"
)

// Regs is the host register file. Guest architectural state is pinned:
// r1..r8 hold the guest GPRs, r9..r13 the guest flags as 0/1 values,
// f1..f8 the guest FP registers.
type Regs struct {
	R [host.NumIntRegs]uint32
	F [host.NumFPRegs]float64
	V [host.NumVecRegs][host.VecLanes]float64
}

// LoadGuest packs guest architectural state into the pinned registers.
func (r *Regs) LoadGuest(cpu *guest.CPU) {
	for i := 0; i < guest.NumGPR; i++ {
		r.R[host.RGuestGPR+i] = cpu.R[i]
	}
	flag := func(bit uint32) uint32 {
		if cpu.Flags&bit != 0 {
			return 1
		}
		return 0
	}
	r.R[host.RFlagCF] = flag(guest.FlagCF)
	r.R[host.RFlagZF] = flag(guest.FlagZF)
	r.R[host.RFlagSF] = flag(guest.FlagSF)
	r.R[host.RFlagOF] = flag(guest.FlagOF)
	r.R[host.RFlagPF] = flag(guest.FlagPF)
	for i := 0; i < guest.NumFPR; i++ {
		r.F[host.FGuestFPR+i] = cpu.F[i]
	}
}

// StoreGuest unpacks the pinned registers back into guest state.
// EIP is owned by the dispatch loop and not touched here.
func (r *Regs) StoreGuest(cpu *guest.CPU) {
	for i := 0; i < guest.NumGPR; i++ {
		cpu.R[i] = r.R[host.RGuestGPR+i]
	}
	var f uint32
	if r.R[host.RFlagCF] != 0 {
		f |= guest.FlagCF
	}
	if r.R[host.RFlagZF] != 0 {
		f |= guest.FlagZF
	}
	if r.R[host.RFlagSF] != 0 {
		f |= guest.FlagSF
	}
	if r.R[host.RFlagOF] != 0 {
		f |= guest.FlagOF
	}
	if r.R[host.RFlagPF] != 0 {
		f |= guest.FlagPF
	}
	cpu.Flags = f
	for i := 0; i < guest.NumFPR; i++ {
		cpu.F[i] = r.F[host.FGuestFPR+i]
	}
}

// ExitKind classifies why block execution returned to software.
type ExitKind uint8

// Exit kinds.
const (
	ExitToTOL       ExitKind = iota // unchained EXIT; NextPC is static
	ExitIndirect                    // EXITIND with IBTC miss; NextPC from register
	ExitAssertFail                  // assert failed; state rolled back to checkpoint
	ExitMemSpecFail                 // alias table hit; state rolled back to checkpoint
	ExitPageFault                   // guest page fault; state rolled back to checkpoint
)

func (k ExitKind) String() string {
	switch k {
	case ExitToTOL:
		return "exit"
	case ExitIndirect:
		return "exit-indirect"
	case ExitAssertFail:
		return "assert-fail"
	case ExitMemSpecFail:
		return "memspec-fail"
	case ExitPageFault:
		return "page-fault"
	}
	return "?"
}

// Result reports how a Run ended.
type Result struct {
	Kind      ExitKind
	NextPC    uint32 // guest PC to continue at
	FaultAddr uint32 // valid for ExitPageFault
	Block     *codecache.Block
	ExitIdx   int // index of the EXIT instruction, for chaining
}

// Config parameterises the co-design hardware the emulator models.
type Config struct {
	AliasTableSize int // entries in the speculative-load alias table
	IBTCCost       int // host instructions charged per inline IBTC probe
	ProfileCost    int // host instructions per software profile counter bump
}

// DefaultConfig mirrors the paper's modelled hardware.
func DefaultConfig() Config {
	return Config{AliasTableSize: 32, IBTCCost: 6, ProfileCost: 3}
}

// VM executes translated blocks. It owns the host register file and the
// speculative machinery but not the dispatch policy — the TOL drives it.
type VM struct {
	Regs Regs
	Mem  guest.Memory
	Cfg  Config

	// Resolve maps a block id to its block, following CHAINED links.
	Resolve func(id int) (*codecache.Block, bool)
	// IBTC probes the indirect-branch translation cache. It returns
	// the block translated for the guest target, if cached.
	IBTC func(target uint32) (*codecache.Block, bool)
	// Retire, when non-nil, observes every retired host instruction
	// (the timing simulator's instruction feed).
	Retire func(ev RetireEvent)

	// Statistics.
	AppInsns     uint64 // retired host instructions emulating the guest
	BlocksRun    uint64
	ChainFollows uint64
	IBTCHits     uint64
	IBTCMisses   uint64
	AssertFails  uint64
	MemSpecFails uint64
	Rollbacks    uint64

	// HotThreshold is the execution count at which a BBM block becomes
	// a superblock promotion candidate; crossings are queued for the
	// TOL to drain after the excursion.
	HotThreshold uint64
	hotQueue     []uint32

	// Checkpoint state.
	ckptRegs Regs

	// Gated store buffer: program-ordered pending stores.
	stbuf []pendingStore

	// Alias table for speculatively hoisted loads.
	alias []aliasEntry

	// TOL-private spill area serviced by SPILLI/UNSPILLI; invisible to
	// guest memory and therefore to state validation.
	spillI [MaxSpillSlots]uint32
	spillF [MaxSpillSlots]float64
}

// MaxSpillSlots bounds per-region register spilling.
const MaxSpillSlots = 4096

// DrainHot returns and clears the queued superblock promotion
// candidates (guest entry PCs of BBM blocks that crossed HotThreshold).
func (vm *VM) DrainHot() []uint32 {
	out := vm.hotQueue
	vm.hotQueue = nil
	return out
}

type pendingStore struct {
	addr  uint32
	width uint8 // 1, 4 or 8
	val   uint64
}

type aliasEntry struct {
	addr  uint32
	width uint8
}

// New returns a VM bound to the co-designed component's emulated memory.
func New(mem guest.Memory, cfg Config) *VM {
	return &VM{Mem: mem, Cfg: cfg}
}

// RetireEvent is one retired host instruction with the control-flow
// outcome the timing simulator's branch predictors need. PC and Target
// are synthetic host addresses (block id and instruction index packed).
type RetireEvent struct {
	Inst   *host.Inst
	PC     uint32
	Taken  bool
	Target uint32
	Addr   uint32 // effective address for loads and stores
}

// TOLDispatchPC is the synthetic host address of the TOL dispatch loop,
// the target of unchained exits.
const TOLDispatchPC = 0xF000_0000

// TeeRetire composes retire consumers into a single hook for the VM's
// Retire slot: the returned function forwards every event to each
// non-nil sink in order. Nil sinks are dropped, so TeeRetire() and
// TeeRetire(nil) return nil — preserving the no-consumer fast path —
// and a single surviving sink is returned unwrapped, so attaching only
// the timing simulator costs exactly what it did before this hook
// existed.
func TeeRetire(sinks ...func(RetireEvent)) func(RetireEvent) {
	live := sinks[:0]
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	fan := append([]func(RetireEvent){}, live...)
	return func(ev RetireEvent) {
		for _, s := range fan {
			s(ev)
		}
	}
}

// blockPC packs a synthetic host address for instruction idx of block
// id. The per-block stride is deliberately not a multiple of typical
// cache set spans so consecutive blocks spread across icache sets the
// way contiguously allocated code-cache regions do.
func blockPC(id, idx int) uint32 {
	return uint32(id)*4160 + uint32(idx)*4
}

var retireNop = host.Inst{Op: host.NOPH}

func (vm *VM) retire(in *host.Inst, pc uint32, taken bool, target uint32) {
	vm.AppInsns++
	if vm.Retire != nil {
		vm.retireEvent(in, pc, taken, target)
	}
}

// retireEvent builds and delivers the retire event for the timing
// simulator. Kept out of the retirement fast path: without a consumer,
// runBlock only bumps AppInsns and never materializes events or
// synthetic PCs.
func (vm *VM) retireEvent(in *host.Inst, pc uint32, taken bool, target uint32) {
	ev := RetireEvent{Inst: in, PC: pc, Taken: taken, Target: target}
	d := in.Op.Desc()
	if d.IsLoad || d.IsStore {
		ev.Addr = vm.Regs.R[in.Ra] + uint32(in.Imm)
	}
	vm.Retire(ev)
}

// chargeSynthetic accounts host instructions that exist in the real
// machine's code stream but are modelled as fixed-cost sequences (IBTC
// probes, profiling counter bumps). Without a retire consumer the
// per-instruction events are unobservable, so only the counter moves.
func (vm *VM) chargeSynthetic(n int) {
	if vm.Retire == nil {
		vm.AppInsns += uint64(n)
		return
	}
	for i := 0; i < n; i++ {
		vm.retire(&retireNop, 0, false, 0)
	}
}

// checkpoint snapshots the register file and clears speculative state.
func (vm *VM) checkpoint() {
	vm.ckptRegs = vm.Regs
	vm.stbuf = vm.stbuf[:0]
	vm.alias = vm.alias[:0]
}

// rollback restores the checkpoint and discards speculative state.
func (vm *VM) rollback() {
	vm.Regs = vm.ckptRegs
	vm.stbuf = vm.stbuf[:0]
	vm.alias = vm.alias[:0]
	vm.Rollbacks++
}

// commit drains the store buffer to memory. The controller guarantees
// pages are resident before commit because every buffered store address
// was probed at execute time.
func (vm *VM) commit() error {
	for _, s := range vm.stbuf {
		var err error
		switch s.width {
		case 1:
			err = vm.Mem.Store8(s.addr, uint8(s.val))
		case 4:
			err = vm.Mem.Store32(s.addr, uint32(s.val))
		case 8:
			err = vm.Mem.Store64(s.addr, s.val)
		}
		if err != nil {
			return err
		}
	}
	vm.stbuf = vm.stbuf[:0]
	vm.alias = vm.alias[:0]
	return nil
}

func overlap(a uint32, aw uint8, b uint32, bw uint8) bool {
	return a < b+uint32(bw) && b < a+uint32(aw)
}

// bufLoad reads width bytes at addr, forwarding from the newest
// overlapping buffered store when it covers the access exactly;
// a partial overlap conservatively fails speculation.
func (vm *VM) bufLoad(addr uint32, width uint8) (uint64, bool, error) {
	for i := len(vm.stbuf) - 1; i >= 0; i-- {
		s := vm.stbuf[i]
		if s.addr == addr && s.width == width {
			return s.val, true, nil
		}
		if overlap(addr, width, s.addr, s.width) {
			return 0, false, errPartialForward
		}
	}
	var v uint64
	var err error
	switch width {
	case 1:
		var b uint8
		b, err = vm.Mem.Load8(addr)
		v = uint64(b)
	case 4:
		var w uint32
		w, err = vm.Mem.Load32(addr)
		v = uint64(w)
	case 8:
		v, err = vm.Mem.Load64(addr)
	}
	return v, true, err
}

var errPartialForward = fmt.Errorf("hostvm: partial store-to-load forward")

// probeStore checks a store against the alias table (speculatively
// hoisted loads that executed earlier but are younger in program order).
func (vm *VM) probeStore(addr uint32, width uint8) bool {
	for _, e := range vm.alias {
		if overlap(addr, width, e.addr, e.width) {
			return true
		}
	}
	return false
}

func (vm *VM) recordSpecLoad(addr uint32, width uint8) bool {
	if len(vm.alias) >= vm.Cfg.AliasTableSize {
		return false // table overflow: conservative failure
	}
	vm.alias = append(vm.alias, aliasEntry{addr: addr, width: width})
	return true
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func truncF64(f float64) int32 {
	if math.IsNaN(f) || f >= float64(math.MaxInt32)+1 || f < float64(math.MinInt32) {
		return math.MinInt32
	}
	return int32(f)
}
