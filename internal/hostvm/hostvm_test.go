package hostvm

import (
	"math"
	"math/rand"
	"testing"

	"darco/internal/codecache"
	"darco/internal/guest"
	"darco/internal/guestvm"
	"darco/internal/host"
)

// block wraps code into a runnable block ending at the given exit meta.
func block(code []host.Inst) *codecache.Block {
	return &codecache.Block{Entry: 0x1000, Kind: codecache.KindSuperblock,
		Code: code, ExitMeta: map[int]codecache.ExitInfo{len(code) - 1: {GuestInsns: 1, GuestBBs: 1}}}
}

func newVM() *VM {
	vm := New(guestvm.NewMemory(false), DefaultConfig())
	vm.Resolve = func(int) (*codecache.Block, bool) { return nil, false }
	return vm
}

func run(t *testing.T, vm *VM, b *codecache.Block) Result {
	t.Helper()
	res, _, err := vm.Run(b, 0)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestRegsPackUnpackRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		var cpu guest.CPU
		for j := range cpu.R {
			cpu.R[j] = r.Uint32()
		}
		for j := range cpu.F {
			cpu.F[j] = r.NormFloat64()
		}
		cpu.Flags = r.Uint32() & guest.AllFlags
		var regs Regs
		regs.LoadGuest(&cpu)
		var out guest.CPU
		regs.StoreGuest(&out)
		out.EIP = cpu.EIP
		if out != cpu {
			t.Fatalf("roundtrip mismatch:\n%+v\n%+v", cpu, out)
		}
	}
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		op   host.Op
		a, b uint32
		want uint32
	}{
		{host.ADD, 3, 4, 7},
		{host.SUB, 3, 4, 0xFFFFFFFF},
		{host.MUL, 0xFFFFFFFF, 2, 0xFFFFFFFE},
		{host.MULH, 0x40000000, 4, 1},
		{host.DIV, 17, 5, 3},
		{host.DIV, 17, 0, 0xFFFFFFFF},
		{host.DIV, 0x80000000, 0xFFFFFFFF, 0x80000000},
		{host.REM, 17, 5, 2},
		{host.REM, 17, 0, 17},
		{host.REM, 0x80000000, 0xFFFFFFFF, 0},
		{host.AND, 0xFF0F, 0x0FF0, 0x0F00},
		{host.OR, 0xF000, 0x000F, 0xF00F},
		{host.XOR, 0xFFFF, 0x0F0F, 0xF0F0},
		{host.SHL, 1, 35, 8}, // masked shift
		{host.SHR, 0x80000000, 31, 1},
		{host.SAR, 0x80000000, 31, 0xFFFFFFFF},
		{host.SLT, 0xFFFFFFFF, 0, 1}, // -1 < 0 signed
		{host.SLTU, 0xFFFFFFFF, 0, 0},
		{host.SEQ, 5, 5, 1},
		{host.SNE, 5, 5, 0},
	}
	for _, c := range cases {
		vm := newVM()
		vm.Regs.R[20], vm.Regs.R[21] = c.a, c.b
		code := []host.Inst{
			{Op: host.CHKPT},
			{Op: c.op, Rd: 22, Ra: 20, Rb: 21},
			{Op: host.COMMIT},
			{Op: host.EXIT, Target: 0x2000},
		}
		run(t, vm, block(code))
		if vm.Regs.R[22] != c.want {
			t.Errorf("%v(%#x,%#x) = %#x, want %#x", c.op, c.a, c.b, vm.Regs.R[22], c.want)
		}
	}
}

func TestStoreBufferGatesUntilCommit(t *testing.T) {
	vm := newVM()
	vm.Regs.R[20] = 0x100 // address
	vm.Regs.R[21] = 42
	code := []host.Inst{
		{Op: host.CHKPT},
		{Op: host.ST, Rd: 21, Ra: 20},
		{Op: host.LD, Rd: 22, Ra: 20}, // forwarded from the buffer
		{Op: host.COMMIT},
		{Op: host.EXIT, Target: 0x2000},
	}
	run(t, vm, block(code))
	if vm.Regs.R[22] != 42 {
		t.Errorf("store-to-load forward got %d", vm.Regs.R[22])
	}
	v, _ := vm.Mem.Load32(0x100)
	if v != 42 {
		t.Errorf("commit did not drain: %d", v)
	}
}

func TestAssertRollbackDiscardsState(t *testing.T) {
	vm := newVM()
	vm.Mem.Store32(0x100, 7)
	vm.Regs.R[20] = 0x100
	vm.Regs.R[host.RGuestGPR] = 5 // pinned guest EAX
	code := []host.Inst{
		{Op: host.CHKPT},
		{Op: host.LI, Rd: 21, Imm: 99},
		{Op: host.ST, Rd: 21, Ra: 20},                // buffered store
		{Op: host.LI, Rd: host.RGuestGPR, Imm: 1234}, // clobber pinned reg
		{Op: host.LI, Rd: 22, Imm: 0},                // failing condition
		{Op: host.ASSERTH, Ra: 22, Target: 0x1000},   // fails
		{Op: host.COMMIT},
		{Op: host.EXIT, Target: 0x2000},
	}
	res := run(t, vm, block(code))
	if res.Kind != ExitAssertFail || res.NextPC != 0x1000 {
		t.Fatalf("result %v next %#x", res.Kind, res.NextPC)
	}
	if vm.Regs.R[host.RGuestGPR] != 5 {
		t.Errorf("pinned register not rolled back: %d", vm.Regs.R[host.RGuestGPR])
	}
	v, _ := vm.Mem.Load32(0x100)
	if v != 7 {
		t.Errorf("buffered store leaked: %d", v)
	}
	if vm.Rollbacks != 1 || vm.AssertFails != 1 {
		t.Errorf("counters: rb=%d af=%d", vm.Rollbacks, vm.AssertFails)
	}
}

func TestAssertPassContinues(t *testing.T) {
	vm := newVM()
	code := []host.Inst{
		{Op: host.CHKPT},
		{Op: host.LI, Rd: 22, Imm: 1},
		{Op: host.ASSERTH, Ra: 22, Target: 0x1000},
		{Op: host.LI, Rd: 23, Imm: 77},
		{Op: host.COMMIT},
		{Op: host.EXIT, Target: 0x2000},
	}
	res := run(t, vm, block(code))
	if res.Kind != ExitToTOL || vm.Regs.R[23] != 77 {
		t.Fatalf("assert pass: %v r23=%d", res.Kind, vm.Regs.R[23])
	}
}

func TestSpeculativeLoadAliasDetection(t *testing.T) {
	vm := newVM()
	vm.Mem.Store32(0x100, 1)
	vm.Regs.R[20] = 0x100 // load address
	vm.Regs.R[21] = 0x100 // store address (same: alias)
	vm.Regs.R[23] = 9
	code := []host.Inst{
		{Op: host.CHKPT},
		{Op: host.LD, Rd: 22, Ra: 20, Spec: true}, // hoisted above the store
		{Op: host.ST, Rd: 23, Ra: 21},             // aliases: must fail
		{Op: host.COMMIT},
		{Op: host.EXIT, Target: 0x2000},
	}
	res := run(t, vm, block(code))
	if res.Kind != ExitMemSpecFail {
		t.Fatalf("want memspec fail, got %v", res.Kind)
	}
	if vm.MemSpecFails != 1 {
		t.Errorf("spec fail counter %d", vm.MemSpecFails)
	}
	// Different addresses: no failure.
	vm2 := newVM()
	vm2.Regs.R[20] = 0x100
	vm2.Regs.R[21] = 0x200
	vm2.Regs.R[23] = 9
	res = run(t, vm2, block(code))
	if res.Kind != ExitToTOL {
		t.Fatalf("disjoint spec: %v", res.Kind)
	}
}

func TestAliasTableOverflowFails(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AliasTableSize = 2
	vm := New(guestvm.NewMemory(false), cfg)
	vm.Resolve = func(int) (*codecache.Block, bool) { return nil, false }
	code := []host.Inst{{Op: host.CHKPT}}
	for i := 0; i < 3; i++ {
		vm.Regs.R[20+uint8(i)] = uint32(0x100 + 16*i)
		code = append(code, host.Inst{Op: host.LD, Rd: 25, Ra: uint8(20 + i), Spec: true})
	}
	code = append(code, host.Inst{Op: host.COMMIT}, host.Inst{Op: host.EXIT, Target: 0x2000})
	res := run(t, vm, block(code))
	if res.Kind != ExitMemSpecFail {
		t.Fatalf("overflow should fail conservatively: %v", res.Kind)
	}
}

func TestPageFaultRollsBack(t *testing.T) {
	vm := New(guestvm.NewMemory(true), DefaultConfig()) // strict memory
	vm.Resolve = func(int) (*codecache.Block, bool) { return nil, false }
	vm.Regs.R[20] = 0x5000
	vm.Regs.R[host.RGuestGPR] = 3
	code := []host.Inst{
		{Op: host.CHKPT},
		{Op: host.LI, Rd: host.RGuestGPR, Imm: 999},
		{Op: host.LD, Rd: 21, Ra: 20}, // faults
		{Op: host.COMMIT},
		{Op: host.EXIT, Target: 0x2000},
	}
	res := run(t, vm, block(code))
	if res.Kind != ExitPageFault || res.FaultAddr != 0x5000 {
		t.Fatalf("fault result %v addr %#x", res.Kind, res.FaultAddr)
	}
	if vm.Regs.R[host.RGuestGPR] != 3 {
		t.Errorf("state not rolled back on fault")
	}
}

func TestChainFollowing(t *testing.T) {
	vm := newVM()
	b2 := &codecache.Block{ID: 2, Entry: 0x1100, Kind: codecache.KindSuperblock, Code: []host.Inst{
		{Op: host.CHKPT},
		{Op: host.LI, Rd: 21, Imm: 5},
		{Op: host.COMMIT},
		{Op: host.EXIT, Target: 0x1200},
	}, ExitMeta: map[int]codecache.ExitInfo{3: {GuestInsns: 2, GuestBBs: 1}}}
	b1 := &codecache.Block{ID: 1, Entry: 0x1000, Kind: codecache.KindSuperblock, Code: []host.Inst{
		{Op: host.CHKPT},
		{Op: host.LI, Rd: 20, Imm: 4},
		{Op: host.COMMIT},
		{Op: host.CHAINED, Target: 0x1100, Link: 2},
	}, ExitMeta: map[int]codecache.ExitInfo{3: {GuestInsns: 3, GuestBBs: 1}}}
	vm.Resolve = func(id int) (*codecache.Block, bool) {
		if id == 2 {
			return b2, true
		}
		return nil, false
	}
	res, st, err := vm.Run(b1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ExitToTOL || res.NextPC != 0x1200 {
		t.Fatalf("chain result %v %#x", res.Kind, res.NextPC)
	}
	if vm.Regs.R[20] != 4 || vm.Regs.R[21] != 5 {
		t.Errorf("both blocks must execute")
	}
	if vm.ChainFollows != 1 {
		t.Errorf("chain follows %d", vm.ChainFollows)
	}
	if st.GuestInsnsSB != 5 || st.GuestBBs != 2 {
		t.Errorf("retirement attribution: %+v", st)
	}
}

func TestIBTCHitAndMiss(t *testing.T) {
	vm := newVM()
	target := &codecache.Block{ID: 9, Entry: 0x3000, Code: []host.Inst{
		{Op: host.CHKPT},
		{Op: host.LI, Rd: 24, Imm: 8},
		{Op: host.COMMIT},
		{Op: host.EXIT, Target: 0x4000},
	}, ExitMeta: map[int]codecache.ExitInfo{3: {GuestInsns: 1, GuestBBs: 1}}}
	vm.IBTC = func(pc uint32) (*codecache.Block, bool) {
		if pc == 0x3000 {
			return target, true
		}
		return nil, false
	}
	src := &codecache.Block{ID: 8, Entry: 0x1000, Code: []host.Inst{
		{Op: host.CHKPT},
		{Op: host.LI, Rd: 20, Imm: 0x3000},
		{Op: host.COMMIT},
		{Op: host.EXITIND, Ra: 20},
	}, ExitMeta: map[int]codecache.ExitInfo{3: {GuestInsns: 1, GuestBBs: 1}}}
	res := run(t, vm, src)
	if res.Kind != ExitToTOL || vm.Regs.R[24] != 8 {
		t.Fatalf("ibtc hit should continue into target: %v", res.Kind)
	}
	if vm.IBTCHits != 1 {
		t.Errorf("ibtc hits %d", vm.IBTCHits)
	}
	// Miss path.
	vm2 := newVM()
	vm2.IBTC = func(uint32) (*codecache.Block, bool) { return nil, false }
	res = run(t, vm2, src)
	if res.Kind != ExitIndirect || res.NextPC != 0x3000 {
		t.Fatalf("ibtc miss: %v %#x", res.Kind, res.NextPC)
	}
}

func TestSpillOps(t *testing.T) {
	vm := newVM()
	code := []host.Inst{
		{Op: host.CHKPT},
		{Op: host.LI, Rd: 20, Imm: 1234},
		{Op: host.SPILLI, Rd: 20, Imm: 7},
		{Op: host.LI, Rd: 20, Imm: 0},
		{Op: host.UNSPILLI, Rd: 21, Imm: 7},
		{Op: host.FLI, Rd: 10, F64: 2.5},
		{Op: host.SPILLF, Rd: 10, Imm: 3},
		{Op: host.FLI, Rd: 10, F64: 0},
		{Op: host.UNSPILLF, Rd: 11, Imm: 3},
		{Op: host.COMMIT},
		{Op: host.EXIT, Target: 0x2000},
	}
	run(t, vm, block(code))
	if vm.Regs.R[21] != 1234 {
		t.Errorf("int spill roundtrip %d", vm.Regs.R[21])
	}
	if vm.Regs.F[11] != 2.5 {
		t.Errorf("fp spill roundtrip %g", vm.Regs.F[11])
	}
}

func TestBranchesWithinBlock(t *testing.T) {
	vm := newVM()
	code := []host.Inst{
		{Op: host.CHKPT},
		{Op: host.LI, Rd: 20, Imm: 0},
		{Op: host.BEQZ, Ra: 20, Imm: 1}, // taken: skip next
		{Op: host.LI, Rd: 21, Imm: 111}, // skipped
		{Op: host.LI, Rd: 22, Imm: 222},
		{Op: host.BNEZ, Ra: 20, Imm: 1}, // not taken
		{Op: host.LI, Rd: 23, Imm: 333},
		{Op: host.JREL, Imm: 1},         // skip next
		{Op: host.LI, Rd: 24, Imm: 444}, // skipped
		{Op: host.COMMIT},
		{Op: host.EXIT, Target: 0x2000},
	}
	run(t, vm, block(code))
	if vm.Regs.R[21] != 0 || vm.Regs.R[22] != 222 || vm.Regs.R[23] != 333 || vm.Regs.R[24] != 0 {
		t.Errorf("branch semantics: %v", vm.Regs.R[20:25])
	}
}

func TestFPOpsAndConversion(t *testing.T) {
	vm := newVM()
	code := []host.Inst{
		{Op: host.CHKPT},
		{Op: host.FLI, Rd: 10, F64: -6.25},
		{Op: host.FABSH, Rd: 11, Ra: 10},
		{Op: host.FNEGH, Rd: 12, Ra: 11},
		{Op: host.FSQRTH, Rd: 13, Ra: 11},
		{Op: host.FCVTI, Rd: 20, Ra: 10},
		{Op: host.FCVTF, Rd: 14, Ra: 20},
		{Op: host.FSLT, Rd: 21, Ra: 10, Rb: 11},
		{Op: host.FSEQ, Rd: 22, Ra: 11, Rb: 11},
		{Op: host.FUNORD, Rd: 23, Ra: 10, Rb: 11},
		{Op: host.COMMIT},
		{Op: host.EXIT, Target: 0x2000},
	}
	run(t, vm, block(code))
	if vm.Regs.F[11] != 6.25 || vm.Regs.F[12] != -6.25 || vm.Regs.F[13] != 2.5 {
		t.Errorf("fp ops: %v", vm.Regs.F[10:14])
	}
	if int32(vm.Regs.R[20]) != -6 || vm.Regs.F[14] != -6 {
		t.Errorf("conversions: %d %g", int32(vm.Regs.R[20]), vm.Regs.F[14])
	}
	if vm.Regs.R[21] != 1 || vm.Regs.R[22] != 1 || vm.Regs.R[23] != 0 {
		t.Errorf("fp compares: %v", vm.Regs.R[21:24])
	}
}

func TestVectorOps(t *testing.T) {
	vm := newVM()
	base := uint32(0x800)
	for l := 0; l < host.VecLanes; l++ {
		vm.Mem.Store64(base+uint32(8*l), math.Float64bits(float64(l)))
	}
	vm.Regs.R[20] = base
	code := []host.Inst{
		{Op: host.CHKPT},
		{Op: host.VFLD, Rd: 1, Ra: 20},
		{Op: host.VFADD, Rd: 2, Ra: 1, Rb: 1},
		{Op: host.VFMUL, Rd: 3, Ra: 2, Rb: 1},
		{Op: host.VFST, Rd: 3, Ra: 20, Imm: 256},
		{Op: host.COMMIT},
		{Op: host.EXIT, Target: 0x2000},
	}
	run(t, vm, block(code))
	for l := 0; l < host.VecLanes; l++ {
		want := 2 * float64(l) * float64(l)
		bits, _ := vm.Mem.Load64(base + 256 + uint32(8*l))
		if math.Float64frombits(bits) != want {
			t.Errorf("lane %d: %g want %g", l, math.Float64frombits(bits), want)
		}
	}
}

func TestFuelStopsAtBlockBoundary(t *testing.T) {
	vm := newVM()
	self := &codecache.Block{ID: 5, Entry: 0x1000, Code: []host.Inst{
		{Op: host.CHKPT},
		{Op: host.ADDI, Rd: 20, Ra: 20, Imm: 1},
		{Op: host.COMMIT},
		{Op: host.CHAINED, Target: 0x1000, Link: 5},
	}, ExitMeta: map[int]codecache.ExitInfo{3: {GuestInsns: 1, GuestBBs: 1}}}
	vm.Resolve = func(id int) (*codecache.Block, bool) {
		if id == 5 {
			return self, true
		}
		return nil, false
	}
	res, _, err := vm.Run(self, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.NextPC != 0x1000 {
		t.Errorf("fuel stop next pc %#x", res.NextPC)
	}
	if vm.AppInsns < 100 || vm.AppInsns > 120 {
		t.Errorf("fuel: executed %d", vm.AppInsns)
	}
}

func TestHotQueue(t *testing.T) {
	vm := newVM()
	vm.HotThreshold = 3
	b := &codecache.Block{ID: 1, Entry: 0x1000, Kind: codecache.KindBB, Code: []host.Inst{
		{Op: host.CHKPT},
		{Op: host.COMMIT},
		{Op: host.EXIT, Target: 0x2000},
	}, ExitMeta: map[int]codecache.ExitInfo{2: {GuestInsns: 1, GuestBBs: 1}}}
	for i := 0; i < 5; i++ {
		run(t, vm, b)
	}
	hot := vm.DrainHot()
	if len(hot) != 1 || hot[0] != 0x1000 {
		t.Fatalf("hot queue %v", hot)
	}
	if len(vm.DrainHot()) != 0 {
		t.Errorf("drain not idempotent")
	}
}
