// Package power is the reproduction's stand-in for McPAT: an
// event-energy model for the co-designed host core. Like McPAT in
// DARCO, it is an optional consumer of the timing simulator's activity
// counts and does not affect the functionality of the rest of the
// infrastructure. Per-event energies are representative of a low-power
// in-order core at 28 nm and matter only in ratio, not absolutely.
package power

import (
	"fmt"
	"maps"
	"slices"

	"darco/internal/host"
	"darco/internal/timing"
)

// Energies is the per-event dynamic energy table, in picojoules.
type Energies struct {
	FetchPerInsn  float64
	DecodePerInsn float64
	IssuePerInsn  float64
	RegRead       float64
	RegWrite      float64

	SimpleOp  float64
	ComplexOp float64
	VectorOp  float64
	BranchOp  float64
	MemoryOp  float64

	L1IAccess float64
	L1DAccess float64
	L2Access  float64
	DRAMRead  float64
	TLBAccess float64
	BPLookup  float64

	// Static power in milliwatts per component group.
	LeakCoreMW  float64
	LeakCacheMW float64
}

// DefaultEnergies returns the calibrated table.
func DefaultEnergies() Energies {
	return Energies{
		FetchPerInsn:  3.1,
		DecodePerInsn: 1.8,
		IssuePerInsn:  2.2,
		RegRead:       0.9,
		RegWrite:      1.3,
		SimpleOp:      2.4,
		ComplexOp:     9.6,
		VectorOp:      14.8,
		BranchOp:      1.9,
		MemoryOp:      3.0,
		L1IAccess:     8.2,
		L1DAccess:     10.4,
		L2Access:      38.0,
		DRAMRead:      640.0,
		TLBAccess:     1.1,
		BPLookup:      1.4,
		LeakCoreMW:    55.0,
		LeakCacheMW:   30.0,
	}
}

// Report is the power/energy breakdown for one simulation.
type Report struct {
	DynamicJ  float64 // total dynamic energy, joules
	StaticJ   float64 // leakage energy, joules
	TotalJ    float64
	AvgPowerW float64
	Seconds   float64

	ByComponent map[string]float64 // dynamic joules per component
}

// Model computes a power report from a finished timing simulation.
type Model struct {
	E       Energies
	FreqMHz float64
}

// New builds a model (freq 0 = 1000 MHz).
func New(e Energies, freqMHz float64) *Model {
	if freqMHz <= 0 {
		freqMHz = 1000
	}
	return &Model{E: e, FreqMHz: freqMHz}
}

// Analyze converts core activity into energy and power.
func (m *Model) Analyze(c *timing.Core) *Report {
	pj := func(n uint64, e float64) float64 { return float64(n) * e * 1e-12 }
	st := &c.Stats
	comp := make(map[string]float64)

	comp["frontend"] = pj(st.Insns, m.E.FetchPerInsn+m.E.DecodePerInsn) +
		pj(c.BP.Lookups, m.E.BPLookup) +
		pj(c.L1I.Accesses, m.E.L1IAccess)
	comp["issue+regfile"] = pj(st.Insns, m.E.IssuePerInsn) +
		pj(2*st.Insns, m.E.RegRead) + pj(st.Insns, m.E.RegWrite)
	comp["alu"] = pj(st.ClassCount[host.ClassSimple], m.E.SimpleOp) +
		pj(st.ClassCount[host.ClassComplex], m.E.ComplexOp) +
		pj(st.ClassCount[host.ClassVector], m.E.VectorOp) +
		pj(st.ClassCount[host.ClassBranch], m.E.BranchOp)
	comp["lsu"] = pj(st.ClassCount[host.ClassMemory], m.E.MemoryOp) +
		pj(c.L1D.Accesses, m.E.L1DAccess) +
		pj(c.TLBs.L1D.Accesses()+c.TLBs.L1I.Accesses()+c.TLBs.L2.Accesses(), m.E.TLBAccess)
	comp["l2"] = pj(c.L2.Accesses, m.E.L2Access)
	comp["dram"] = pj(c.L2.Misses, m.E.DRAMRead)
	// The TOL's own instructions burn core energy too.
	comp["tol"] = pj(st.TOLInsns, m.E.FetchPerInsn+m.E.DecodePerInsn+m.E.IssuePerInsn+m.E.SimpleOp)

	// Sum in sorted key order: float addition is order-sensitive and map
	// iteration is randomized, so ranging over comp made DynamicJ
	// nondeterministic across identical runs.
	var dyn float64
	for _, k := range slices.Sorted(maps.Keys(comp)) {
		dyn += comp[k]
	}
	secs := float64(st.Cycles) / (m.FreqMHz * 1e6)
	static := (m.E.LeakCoreMW + m.E.LeakCacheMW) * 1e-3 * secs
	total := dyn + static
	rep := &Report{
		DynamicJ:    dyn,
		StaticJ:     static,
		TotalJ:      total,
		Seconds:     secs,
		ByComponent: comp,
	}
	if secs > 0 {
		rep.AvgPowerW = total / secs
	}
	return rep
}

// String renders the report.
func (r *Report) String() string {
	return fmt.Sprintf("energy %.4g J (dyn %.4g + leak %.4g), avg power %.3f W over %.4g s",
		r.TotalJ, r.DynamicJ, r.StaticJ, r.AvgPowerW, r.Seconds)
}
