package power

import (
	"testing"

	"darco/internal/host"
	"darco/internal/hostvm"
	"darco/internal/timing"
)

func loadedCore(n int) *timing.Core {
	core := timing.New(timing.DefaultConfig())
	for i := 0; i < n; i++ {
		in := &host.Inst{Op: host.ADD, Rd: 16, Ra: 17, Rb: 18}
		core.Consume(hostvm.RetireEvent{Inst: in, PC: uint32(0x1000 + 4*(i%32))})
	}
	return core
}

func TestAnalyzeBasics(t *testing.T) {
	m := New(DefaultEnergies(), 1000)
	rep := m.Analyze(loadedCore(10000))
	if rep.DynamicJ <= 0 || rep.StaticJ <= 0 || rep.TotalJ <= rep.DynamicJ {
		t.Errorf("energy accounting: %+v", rep)
	}
	if rep.AvgPowerW <= 0 || rep.Seconds <= 0 {
		t.Errorf("power: %+v", rep)
	}
	var sum float64
	for _, v := range rep.ByComponent {
		sum += v
	}
	if diff := sum - rep.DynamicJ; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("components (%g) do not sum to dynamic (%g)", sum, rep.DynamicJ)
	}
	if rep.String() == "" {
		t.Errorf("empty report string")
	}
}

func TestMoreWorkMoreEnergy(t *testing.T) {
	m := New(DefaultEnergies(), 1000)
	small := m.Analyze(loadedCore(1000))
	big := m.Analyze(loadedCore(10000))
	if big.DynamicJ <= small.DynamicJ {
		t.Errorf("10x work should cost more energy: %g vs %g", big.DynamicJ, small.DynamicJ)
	}
}

func TestFrequencyAffectsPowerNotEnergy(t *testing.T) {
	slow := New(DefaultEnergies(), 500).Analyze(loadedCore(5000))
	fast := New(DefaultEnergies(), 2000).Analyze(loadedCore(5000))
	if slow.DynamicJ != fast.DynamicJ {
		t.Errorf("dynamic energy should be frequency independent")
	}
	if fast.AvgPowerW <= slow.AvgPowerW {
		t.Errorf("higher frequency should raise average power")
	}
	// Leakage integrates over time: the slow run leaks more.
	if slow.StaticJ <= fast.StaticJ {
		t.Errorf("longer runtime should leak more: %g vs %g", slow.StaticJ, fast.StaticJ)
	}
}

func TestTOLEnergyCharged(t *testing.T) {
	core := loadedCore(1000)
	m := New(DefaultEnergies(), 1000)
	before := m.Analyze(core).ByComponent["tol"]
	core.AddTOL(50_000)
	after := m.Analyze(core).ByComponent["tol"]
	if after <= before {
		t.Errorf("TOL energy not charged: %g -> %g", before, after)
	}
}
