package guestvm

import (
	"fmt"

	"darco/internal/guest"
)

// StackTop is where the guest stack begins (grows down).
const StackTop = 0x7FF0_0000

// StopReason tells a caller why VM.Run returned.
type StopReason uint8

// Stop reasons.
const (
	StopHalt    StopReason = iota // program executed HALT or SysExit
	StopSyscall                   // paused before servicing a syscall
	StopBBLimit                   // reached the requested basic-block count
	StopInsnLimit
	StopError
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopSyscall:
		return "syscall"
	case StopBBLimit:
		return "bb-limit"
	case StopInsnLimit:
		return "insn-limit"
	}
	return "error"
}

// VM is the authoritative guest functional emulator. It executes the
// unmodified guest binary and owns the authoritative architectural and
// memory state the controller validates the co-designed component
// against.
type VM struct {
	CPU guest.CPU
	Mem *Memory
	Env *Env

	Halted bool

	// Statistics.
	InsnCount uint64 // dynamic guest instructions retired
	BBCount   uint64 // dynamic basic blocks retired

	// BBFreq, when non-nil, accumulates per-basic-block execution
	// frequencies (keyed by BB entry PC). The warm-up methodology uses
	// it as the authoritative execution distribution.
	BBFreq map[uint32]uint64

	decode  map[uint32]guest.Inst
	bbStart uint32
	inBB    bool
}

// New creates a VM, loads the image, and prepares the stack.
func New(im *guest.Image) (*VM, error) {
	vm := &VM{Mem: NewMemory(false), Env: NewEnv(), decode: make(map[uint32]guest.Inst)}
	if err := vm.Mem.LoadImage(im); err != nil {
		return nil, err
	}
	vm.CPU.EIP = im.Entry
	vm.CPU.R[guest.ESP] = StackTop
	return vm, nil
}

// Fetch decodes the instruction at pc, through a decode cache.
// Self-modifying code is out of scope for the reproduction (the paper's
// workloads do not exercise it either).
func (vm *VM) Fetch(pc uint32) (guest.Inst, error) {
	if in, ok := vm.decode[pc]; ok {
		return in, nil
	}
	var raw [10]byte
	for i := range raw {
		v, err := vm.Mem.Load8(pc + uint32(i))
		if err != nil {
			break
		}
		raw[i] = v
	}
	in, n := guest.Decode(raw[:])
	if n == 0 {
		return in, fmt.Errorf("guestvm: undecodable instruction at %#x", pc)
	}
	vm.decode[pc] = in
	return in, nil
}

// Step executes exactly one instruction, servicing syscalls inline.
func (vm *VM) Step() (guest.Event, error) {
	in, err := vm.Fetch(vm.CPU.EIP)
	if err != nil {
		return guest.EvNone, err
	}
	if !vm.inBB {
		vm.inBB = true
		vm.bbStart = vm.CPU.EIP
	}
	ev, err := guest.Step(&vm.CPU, vm.Mem, &in)
	if err != nil {
		return ev, err
	}
	vm.InsnCount++
	if in.Op.EndsBasicBlock() {
		vm.BBCount++
		vm.inBB = false
		if vm.BBFreq != nil {
			vm.BBFreq[vm.bbStart]++
		}
	}
	switch ev {
	case guest.EvHalt:
		vm.Halted = true
	case guest.EvSyscall:
		if err := vm.Env.Service(&vm.CPU, vm.Mem); err != nil {
			return ev, err
		}
		if vm.Env.Exited {
			vm.Halted = true
		}
	}
	return ev, nil
}

// RunLimits bounds a Run call. Zero fields mean unlimited.
type RunLimits struct {
	BBCount   uint64 // stop when vm.BBCount reaches this value
	InsnCount uint64 // stop when vm.InsnCount reaches this value
	StopAtSys bool   // pause *before* servicing the next syscall
}

// Run executes until a limit is reached or the program halts. With
// StopAtSys, the VM pauses with EIP at the SYSCALL instruction so the
// controller can orchestrate the synchronization phase.
func (vm *VM) Run(lim RunLimits) (StopReason, error) {
	for !vm.Halted {
		if lim.BBCount > 0 && vm.BBCount >= lim.BBCount {
			return StopBBLimit, nil
		}
		if lim.InsnCount > 0 && vm.InsnCount >= lim.InsnCount {
			return StopInsnLimit, nil
		}
		if lim.StopAtSys {
			in, err := vm.Fetch(vm.CPU.EIP)
			if err != nil {
				return StopError, err
			}
			if in.Op == guest.SYSCALL {
				return StopSyscall, nil
			}
		}
		if _, err := vm.Step(); err != nil {
			return StopError, err
		}
	}
	return StopHalt, nil
}

// ServiceSyscallAt executes the SYSCALL instruction the VM is paused at
// and services it. The controller calls this during synchronization.
func (vm *VM) ServiceSyscallAt() error {
	in, err := vm.Fetch(vm.CPU.EIP)
	if err != nil {
		return err
	}
	if in.Op != guest.SYSCALL {
		return fmt.Errorf("guestvm: not at a syscall (eip=%#x, op=%v)", vm.CPU.EIP, in.Op)
	}
	_, err = vm.Step()
	return err
}
