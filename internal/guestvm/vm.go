package guestvm

import (
	"fmt"

	"darco/internal/guest"
)

// StackTop is where the guest stack begins (grows down).
const StackTop = 0x7FF0_0000

// StopReason tells a caller why VM.Run returned.
type StopReason uint8

// Stop reasons.
const (
	StopHalt    StopReason = iota // program executed HALT or SysExit
	StopSyscall                   // paused before servicing a syscall
	StopBBLimit                   // reached the requested basic-block count
	StopInsnLimit
	StopError
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopSyscall:
		return "syscall"
	case StopBBLimit:
		return "bb-limit"
	case StopInsnLimit:
		return "insn-limit"
	}
	return "error"
}

// VM is the authoritative guest functional emulator. It executes the
// unmodified guest binary and owns the authoritative architectural and
// memory state the controller validates the co-designed component
// against.
type VM struct {
	CPU guest.CPU
	Mem *Memory
	Env *Env

	Halted bool

	// Statistics.
	InsnCount uint64 // dynamic guest instructions retired
	BBCount   uint64 // dynamic basic blocks retired

	// BBFreq, when non-nil, accumulates per-basic-block execution
	// frequencies (keyed by BB entry PC). The warm-up methodology uses
	// it as the authoritative execution distribution.
	BBFreq map[uint32]uint64

	decode  DecodeCache
	bbStart uint32
	inBB    bool

	// bbcache holds fully decoded basic blocks: Run executes them
	// without per-instruction fetch or bookkeeping dispatch. Blocks are
	// recorded by Step on their first complete execution.
	// Self-modifying code is out of scope (see Fetch), so entries are
	// never invalidated.
	bbcache   map[uint32]*cachedBB
	rec       []guest.Inst
	recNext   uint32
	recording bool
}

// cachedBB is one decoded basic block, terminator included.
type cachedBB struct {
	insts       []guest.Inst
	endsSyscall bool // terminator is SYSCALL (StopAtSys pauses before it)
}

// maxRecordInsns bounds a recorded basic block; longer blocks execute
// through the incremental path every time.
const maxRecordInsns = 4096

// New creates a VM, loads the image, and prepares the stack.
func New(im *guest.Image) (*VM, error) {
	vm := &VM{Mem: NewMemory(false), Env: NewEnv(), bbcache: make(map[uint32]*cachedBB)}
	if err := vm.Mem.LoadImage(im); err != nil {
		return nil, err
	}
	vm.CPU.EIP = im.Entry
	vm.CPU.R[guest.ESP] = StackTop
	return vm, nil
}

// Fetch decodes the instruction at pc, through a decode cache.
// Self-modifying code is out of scope for the reproduction (the paper's
// workloads do not exercise it either).
func (vm *VM) Fetch(pc uint32) (guest.Inst, error) {
	if in, ok := vm.decode.Lookup(pc); ok {
		return in, nil
	}
	var raw [10]byte
	for i := range raw {
		v, err := vm.Mem.Load8(pc + uint32(i))
		if err != nil {
			break
		}
		raw[i] = v
	}
	in, n := guest.Decode(raw[:])
	if n == 0 {
		return in, fmt.Errorf("guestvm: undecodable instruction at %#x", pc)
	}
	vm.decode.Insert(pc, in)
	return in, nil
}

// Step executes exactly one instruction, servicing syscalls inline.
// Complete basic blocks stepped through from their entry are recorded
// into the block cache for Run's fast path.
func (vm *VM) Step() (guest.Event, error) {
	pc := vm.CPU.EIP
	in := vm.decode.LookupPtr(pc)
	if in == nil {
		if _, err := vm.Fetch(pc); err != nil {
			vm.recording = false
			return guest.EvNone, err
		}
		in = vm.decode.LookupPtr(pc)
	}
	if !vm.inBB {
		vm.inBB = true
		vm.bbStart = pc
		if vm.bbcache != nil {
			if _, known := vm.bbcache[pc]; !known {
				vm.recording = true
				vm.rec = vm.rec[:0]
			} else {
				vm.recording = false
			}
		}
	} else if vm.recording && pc != vm.recNext {
		// Control arrived somewhere unexpected mid-block: stop recording.
		vm.recording = false
	}
	if vm.recording {
		if len(vm.rec) < maxRecordInsns {
			vm.rec = append(vm.rec, *in)
			vm.recNext = pc + uint32(in.Size)
		} else {
			vm.recording = false
		}
	}
	ev, err := guest.Step(&vm.CPU, vm.Mem, in)
	if err != nil {
		vm.recording = false
		return ev, err
	}
	vm.InsnCount++
	if in.Op.EndsBasicBlock() {
		vm.BBCount++
		vm.inBB = false
		if vm.recording {
			vm.bbcache[vm.bbStart] = &cachedBB{
				insts:       append([]guest.Inst(nil), vm.rec...),
				endsSyscall: in.Op == guest.SYSCALL,
			}
			vm.recording = false
		}
		if vm.BBFreq != nil {
			vm.BBFreq[vm.bbStart]++
		}
	}
	switch ev {
	case guest.EvHalt:
		vm.Halted = true
	case guest.EvSyscall:
		if err := vm.Env.Service(&vm.CPU, vm.Mem); err != nil {
			return ev, err
		}
		if vm.Env.Exited {
			vm.Halted = true
		}
	}
	return ev, nil
}

// runCachedBB executes one cached basic block from its entry. It
// mirrors Step's bookkeeping exactly, minus the per-instruction fetch
// and dispatch. The caller has verified the instruction-count limit
// cannot trigger inside the block. It reports whether Run must stop.
func (vm *VM) runCachedBB(bb *cachedBB, stopAtSys bool) (stop bool, reason StopReason, err error) {
	insts := bb.insts
	last := len(insts) - 1
	vm.inBB = true
	vm.bbStart = vm.CPU.EIP
	for i := 0; i <= last; i++ {
		if i == last && bb.endsSyscall && stopAtSys {
			// Pause with EIP at the SYSCALL, body retired.
			return true, StopSyscall, nil
		}
		in := &insts[i]
		ev, err := guest.Step(&vm.CPU, vm.Mem, in)
		if err != nil {
			return true, StopError, err
		}
		vm.InsnCount++
		if i == last { // terminator: EndsBasicBlock by construction
			vm.BBCount++
			vm.inBB = false
			if vm.BBFreq != nil {
				vm.BBFreq[vm.bbStart]++
			}
		}
		switch ev {
		case guest.EvHalt:
			vm.Halted = true
		case guest.EvSyscall:
			if err := vm.Env.Service(&vm.CPU, vm.Mem); err != nil {
				return true, StopError, err
			}
			if vm.Env.Exited {
				vm.Halted = true
			}
		}
	}
	return false, 0, nil
}

// RunLimits bounds a Run call. Zero fields mean unlimited.
type RunLimits struct {
	BBCount   uint64 // stop when vm.BBCount reaches this value
	InsnCount uint64 // stop when vm.InsnCount reaches this value
	StopAtSys bool   // pause *before* servicing the next syscall
}

// Run executes until a limit is reached or the program halts. With
// StopAtSys, the VM pauses with EIP at the SYSCALL instruction so the
// controller can orchestrate the synchronization phase.
func (vm *VM) Run(lim RunLimits) (StopReason, error) {
	for !vm.Halted {
		if lim.BBCount > 0 && vm.BBCount >= lim.BBCount {
			return StopBBLimit, nil
		}
		if lim.InsnCount > 0 && vm.InsnCount >= lim.InsnCount {
			return StopInsnLimit, nil
		}
		// Fast path: at a block boundary with a cached decode and no
		// chance of the instruction limit triggering mid-block, execute
		// the whole block at once. A SYSCALL can only terminate a block,
		// so the per-instruction StopAtSys probe is unnecessary here.
		if !vm.inBB {
			if bb := vm.bbcache[vm.CPU.EIP]; bb != nil &&
				(lim.InsnCount == 0 || vm.InsnCount+uint64(len(bb.insts)) <= lim.InsnCount) {
				stop, reason, err := vm.runCachedBB(bb, lim.StopAtSys)
				if err != nil {
					return StopError, err
				}
				if stop {
					return reason, nil
				}
				continue
			}
		}
		if lim.StopAtSys {
			in, err := vm.Fetch(vm.CPU.EIP)
			if err != nil {
				return StopError, err
			}
			if in.Op == guest.SYSCALL {
				return StopSyscall, nil
			}
		}
		if _, err := vm.Step(); err != nil {
			return StopError, err
		}
	}
	return StopHalt, nil
}

// ServiceSyscallAt executes the SYSCALL instruction the VM is paused at
// and services it. The controller calls this during synchronization.
func (vm *VM) ServiceSyscallAt() error {
	in, err := vm.Fetch(vm.CPU.EIP)
	if err != nil {
		return err
	}
	if in.Op != guest.SYSCALL {
		return fmt.Errorf("guestvm: not at a syscall (eip=%#x, op=%v)", vm.CPU.EIP, in.Op)
	}
	_, err = vm.Step()
	return err
}
