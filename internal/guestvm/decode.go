package guestvm

import "darco/internal/guest"

// DecodeCache memoizes instruction decoding per code page: decoded
// instructions are stored in a flat per-page array indexed by the page
// offset of their first byte, fronted by a one-entry MRU page cache.
// Both functional emulators fetch through one — the seed paid a Go map
// lookup per interpreted instruction instead.
//
// The cache only stores; the owner decodes (the two emulators differ in
// how they read instruction bytes and report faults). The zero value is
// ready to use.
type DecodeCache struct {
	pages map[uint32]*decodedPage

	mruPN uint32
	mru   *decodedPage
}

// decodedPage holds the decoded instructions starting inside one guest
// page. An instruction may extend into the following page; it is cached
// under the page its first byte lives in, which is why invalidating a
// page must also drop the preceding page's entries.
type decodedPage struct {
	valid [PageSize]bool
	insts [PageSize]guest.Inst
}

// Lookup returns the cached decode of the instruction at pc.
func (d *DecodeCache) Lookup(pc uint32) (guest.Inst, bool) {
	pn := pc >> PageShift
	pd := d.mru
	if pd == nil || d.mruPN != pn {
		pd = d.pages[pn]
		if pd == nil {
			return guest.Inst{}, false
		}
		d.mruPN, d.mru = pn, pd
	}
	off := pc & (PageSize - 1)
	if !pd.valid[off] {
		return guest.Inst{}, false
	}
	return pd.insts[off], true
}

// LookupPtr returns a pointer to the cached decode of the instruction
// at pc, or nil when absent. The pointee must not be mutated.
func (d *DecodeCache) LookupPtr(pc uint32) *guest.Inst {
	pn := pc >> PageShift
	pd := d.mru
	if pd == nil || d.mruPN != pn {
		pd = d.pages[pn]
		if pd == nil {
			return nil
		}
		d.mruPN, d.mru = pn, pd
	}
	off := pc & (PageSize - 1)
	if !pd.valid[off] {
		return nil
	}
	return &pd.insts[off]
}

// Insert caches the decode of the instruction at pc.
func (d *DecodeCache) Insert(pc uint32, in guest.Inst) {
	pn := pc >> PageShift
	pd := d.mru
	if pd == nil || d.mruPN != pn {
		if d.pages == nil {
			d.pages = make(map[uint32]*decodedPage)
		}
		pd = d.pages[pn]
		if pd == nil {
			pd = new(decodedPage)
			d.pages[pn] = pd
		}
		d.mruPN, d.mru = pn, pd
	}
	off := pc & (PageSize - 1)
	pd.insts[off] = in
	pd.valid[off] = true
}

// InvalidatePage drops every cached decode for the page containing addr
// and for the preceding page (whose final instructions may straddle into
// the invalidated one). The co-designed component calls it when the
// controller installs or rewrites a page.
func (d *DecodeCache) InvalidatePage(addr uint32) {
	pn := addr >> PageShift
	delete(d.pages, pn)
	delete(d.pages, pn-1)
	d.mru = nil
}
