package guestvm

import (
	"math/rand"
	"testing"
)

// refMemory is the seed's map-based memory, kept as the executable
// specification the two-level implementation is tested against.
type refMemory struct {
	pages  map[uint32]*[PageSize]byte
	strict bool
}

func newRefMemory(strict bool) *refMemory {
	return &refMemory{pages: make(map[uint32]*[PageSize]byte), strict: strict}
}

func (m *refMemory) page(addr uint32) (*[PageSize]byte, bool) {
	pn := addr >> PageShift
	if p, ok := m.pages[pn]; ok {
		return p, true
	}
	if m.strict {
		return nil, false
	}
	p := new([PageSize]byte)
	m.pages[pn] = p
	return p, true
}

func (m *refMemory) load8(addr uint32) (uint8, bool) {
	p, ok := m.page(addr)
	if !ok {
		return 0, false
	}
	return p[addr&(PageSize-1)], true
}

func (m *refMemory) store8(addr uint32, v uint8) bool {
	p, ok := m.page(addr)
	if !ok {
		return false
	}
	p[addr&(PageSize-1)] = v
	return true
}

func (m *refMemory) install(pageAddr uint32, data *[PageSize]byte) {
	cp := *data
	m.pages[pageAddr>>PageShift] = &cp
}

// TestMemoryMatchesMapReference drives the two-level memory and the
// map-based reference through random load/store/straddle/install
// sequences in both strictness modes and requires observational
// equality, including fault behaviour and page accounting.
func TestMemoryMatchesMapReference(t *testing.T) {
	for _, strict := range []bool{false, true} {
		rng := rand.New(rand.NewSource(0xDA5C0))
		m := NewMemory(strict)
		ref := newRefMemory(strict)

		// Addresses cluster around a few page-straddling hot spots so
		// straddles and MRU switches happen constantly.
		bases := []uint32{0x0, 0x1000 - 2, 0x7FF0_0000 - 4, 0xFFFF_F000, 0x0010_0000}
		addr := func() uint32 {
			b := bases[rng.Intn(len(bases))]
			return b + uint32(rng.Intn(3*PageSize)) - PageSize/2
		}

		for i := 0; i < 200_000; i++ {
			a := addr()
			switch rng.Intn(10) {
			case 0, 1:
				got, err := m.Load8(a)
				want, ok := ref.load8(a)
				if (err == nil) != ok || got != want {
					t.Fatalf("strict=%v op %d: Load8(%#x) = %v,%v want %v,%v", strict, i, a, got, err, want, ok)
				}
			case 2, 3:
				v := uint8(rng.Intn(256))
				err := m.Store8(a, v)
				ok := ref.store8(a, v)
				if (err == nil) != ok {
					t.Fatalf("strict=%v op %d: Store8(%#x) err=%v ref ok=%v", strict, i, a, err, ok)
				}
			case 4:
				got, err := m.Load32(a)
				var want uint32
				ok := true
				for k := 3; k >= 0; k-- {
					b, o := ref.load8(a + uint32(k))
					if !o {
						ok = false
						break
					}
					want = want<<8 | uint32(b)
				}
				if (err == nil) != ok || (ok && got != want) {
					t.Fatalf("strict=%v op %d: Load32(%#x) = %#x,%v want %#x,%v", strict, i, a, got, err, want, ok)
				}
				if err != nil {
					pf := err.(*PageFaultError)
					if pf.Addr>>PageShift != pf.Page>>PageShift {
						t.Fatalf("fault addr %#x outside page %#x", pf.Addr, pf.Page)
					}
				}
			case 5:
				v := rng.Uint32()
				err := m.Store32(a, v)
				// The reference applies byte stores until the first fault,
				// mirroring the straddle semantics of the real memory.
				ok := true
				if a&(PageSize-1) <= PageSize-4 {
					if _, o := ref.load8(a); !o {
						ok = false
					} else {
						for k := 0; k < 4; k++ {
							ref.store8(a+uint32(k), uint8(v>>(8*k)))
						}
					}
				} else {
					for k := 0; k < 4; k++ {
						if !ref.store8(a+uint32(k), uint8(v>>(8*k))) {
							ok = false
							break
						}
					}
				}
				if (err == nil) != ok {
					t.Fatalf("strict=%v op %d: Store32(%#x) err=%v ref ok=%v", strict, i, a, err, ok)
				}
			case 6:
				got, err := m.Load64(a)
				var want uint64
				ok := true
				for k := 7; k >= 0; k-- {
					b, o := ref.load8(a + uint32(k))
					if !o {
						ok = false
						break
					}
					want = want<<8 | uint64(b)
				}
				if (err == nil) != ok || (ok && got != want) {
					t.Fatalf("strict=%v op %d: Load64(%#x) = %#x,%v want %#x,%v", strict, i, a, got, err, want, ok)
				}
			case 7:
				var page [PageSize]byte
				for k := 0; k < 16; k++ {
					page[rng.Intn(PageSize)] = uint8(rng.Intn(256))
				}
				pa := a &^ uint32(PageSize-1)
				m.InstallPage(pa, &page)
				ref.install(pa, &page)
			case 8:
				if m.HasPage(a) != func() bool { _, ok := ref.pages[a>>PageShift]; return ok }() {
					t.Fatalf("strict=%v op %d: HasPage(%#x) mismatch", strict, i, a)
				}
			case 9:
				if m.PageCount() != len(ref.pages) {
					t.Fatalf("strict=%v op %d: PageCount %d want %d", strict, i, m.PageCount(), len(ref.pages))
				}
			}
		}

		// Final sweep: all mapped pages byte-identical, page list sorted.
		pages := m.Pages()
		if len(pages) != len(ref.pages) {
			t.Fatalf("strict=%v: %d pages want %d", strict, len(pages), len(ref.pages))
		}
		for i := 1; i < len(pages); i++ {
			if pages[i-1] >= pages[i] {
				t.Fatalf("Pages() not sorted: %#x >= %#x", pages[i-1], pages[i])
			}
		}
		for _, pa := range pages {
			rp, ok := ref.pages[pa>>PageShift]
			if !ok {
				t.Fatalf("strict=%v: page %#x not in reference", strict, pa)
			}
			mp, err := m.PageData(pa)
			if err != nil {
				t.Fatal(err)
			}
			if *mp != *rp {
				t.Fatalf("strict=%v: page %#x content mismatch", strict, pa)
			}
		}

		// Clone equality and independence.
		cl := m.Clone()
		if ok, at := cl.Equal(m); !ok {
			t.Fatalf("strict=%v: clone differs at %#x", strict, at)
		}
		if len(pages) > 0 {
			target := pages[0]
			v, _ := cl.Load8(target)
			cl.Store8(target, v+1)
			if ok, _ := cl.Equal(m); ok {
				t.Fatalf("strict=%v: clone aliases original", strict)
			}
		}
	}
}
