package guestvm

import (
	"fmt"

	"darco/internal/guest"
)

// Guest system call numbers (passed in EAX).
const (
	SysExit   = 1  // EBX: exit code
	SysWrite  = 4  // EBX: fd, ECX: buf, EDX: len; returns len in EAX
	SysTime   = 13 // returns a deterministic monotonic tick in EAX
	SysGetPID = 20 // returns a fixed pid in EAX
	SysBrk    = 45 // EBX: requested break (0 queries); returns break in EAX
)

// FixedPID is the deterministic pid reported by SysGetPID; it doubles as
// the process-tracker identity (the paper's CR3 analogue).
const FixedPID = 0x1000

// InitialBrk is the initial program break.
const InitialBrk = 0x0200_0000

// Env is the deterministic operating-system surface the authoritative
// emulator exposes. Only the x86 component interacts with it; the
// co-designed component receives the resulting state through the
// controller, mirroring the paper's user-level-only co-designed model.
type Env struct {
	Output   []byte // bytes written to any fd via SysWrite
	Exited   bool
	ExitCode int32
	Brk      uint32
	Ticks    uint64 // SysTime counter

	// SyscallCount counts serviced syscalls by number.
	SyscallCount map[uint32]uint64
}

// NewEnv returns a fresh environment.
func NewEnv() *Env {
	return &Env{Brk: InitialBrk, SyscallCount: make(map[uint32]uint64)}
}

// Service handles the syscall selected by cpu state. It mutates only
// EAX (result), the environment, and — for none of the current calls —
// guest memory, which keeps co-designed synchronization to a register
// copy. The instruction itself must already have been retired.
func (e *Env) Service(cpu *guest.CPU, mem guest.Memory) error {
	num := cpu.R[guest.EAX]
	e.SyscallCount[num]++
	switch num {
	case SysExit:
		e.Exited = true
		e.ExitCode = int32(cpu.R[guest.EBX])
		cpu.R[guest.EAX] = 0
	case SysWrite:
		buf := cpu.R[guest.ECX]
		n := cpu.R[guest.EDX]
		if n > 1<<20 {
			return fmt.Errorf("guestvm: write of %d bytes exceeds limit", n)
		}
		for i := uint32(0); i < n; i++ {
			b, err := mem.Load8(buf + i)
			if err != nil {
				return err
			}
			e.Output = append(e.Output, b)
		}
		cpu.R[guest.EAX] = n
	case SysTime:
		e.Ticks++
		cpu.R[guest.EAX] = uint32(e.Ticks)
	case SysGetPID:
		cpu.R[guest.EAX] = FixedPID
	case SysBrk:
		req := cpu.R[guest.EBX]
		if req > e.Brk && req < StackTop {
			e.Brk = req
		}
		cpu.R[guest.EAX] = e.Brk
	default:
		return fmt.Errorf("guestvm: unknown syscall %d at eip %#x", num, cpu.EIP)
	}
	return nil
}
