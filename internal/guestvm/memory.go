// Package guestvm implements the paper's "x86 component": the
// authoritative guest functional emulator. It runs the unmodified guest
// binary, owns the authoritative architectural and memory state, services
// system calls, and answers the controller's page requests so the
// co-designed component can lazily populate its emulated memory.
package guestvm

import (
	"encoding/binary"
	"fmt"

	"darco/internal/guest"
)

// PageSize is the guest page granularity used for controller transfers.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// The 20-bit page number space is resolved through a two-level table:
// the top groupBits select a lazily allocated group of groupSize page
// pointers. Index arithmetic replaces the per-access map hashing the
// seed paid on every guest byte touched.
const (
	groupBits = 10
	groupSize = 1 << groupBits
	groupMask = groupSize - 1
	numGroups = 1 << (32 - PageShift - groupBits)
)

// PageFaultError reports an access to a page the memory does not hold.
// The co-designed component surfaces it to the controller as a data
// request; the authoritative memory never returns it (it allocates
// zero-filled pages on demand).
type PageFaultError struct {
	Addr uint32
	Page uint32
}

func (e *PageFaultError) Error() string {
	return fmt.Sprintf("page fault at %#x (page %#x)", e.Addr, e.Page)
}

// PageFaultAddr lets the host emulator classify the fault without
// importing this package's concrete type.
func (e *PageFaultError) PageFaultAddr() uint32 { return e.Addr }

// Memory is a sparse paged guest memory. The zero value is ready to use.
// With Strict unset, touching an unmapped page allocates it zero-filled
// (authoritative behaviour). With Strict set, loads and stores to
// unmapped pages return *PageFaultError (co-designed behaviour).
//
// Pages live in a two-level table (group directory of page-pointer
// slabs) fronted by a one-entry MRU cache, so the emulation hot loops
// pay index arithmetic instead of map hashing per access.
type Memory struct {
	groups [numGroups][]*[PageSize]byte
	count  int

	// MRU page cache: mru is nil when the cache is empty, so page
	// number 0 needs no sentinel.
	mruPN uint32
	mru   *[PageSize]byte

	Strict bool
}

// NewMemory returns an empty memory.
func NewMemory(strict bool) *Memory {
	return &Memory{Strict: strict}
}

// page returns the page containing addr, faulting or allocating per mode.
func (m *Memory) page(addr uint32) (*[PageSize]byte, error) {
	pn := addr >> PageShift
	if m.mru != nil && m.mruPN == pn {
		return m.mru, nil
	}
	return m.pageSlow(addr, pn)
}

// pageSlow is the two-level walk behind the MRU cache.
func (m *Memory) pageSlow(addr, pn uint32) (*[PageSize]byte, error) {
	g := m.groups[pn>>groupBits]
	if g != nil {
		if p := g[pn&groupMask]; p != nil {
			m.mruPN, m.mru = pn, p
			return p, nil
		}
	}
	if m.Strict {
		return nil, &PageFaultError{Addr: addr, Page: pn << PageShift}
	}
	p := new([PageSize]byte)
	m.setPage(pn, p)
	m.mruPN, m.mru = pn, p
	return p, nil
}

// setPage installs p as page pn, allocating its group on demand.
func (m *Memory) setPage(pn uint32, p *[PageSize]byte) {
	g := m.groups[pn>>groupBits]
	if g == nil {
		g = make([]*[PageSize]byte, groupSize)
		m.groups[pn>>groupBits] = g
	}
	if g[pn&groupMask] == nil {
		m.count++
	}
	g[pn&groupMask] = p
}

// lookupPage returns page pn if mapped, without allocating or faulting.
func (m *Memory) lookupPage(pn uint32) *[PageSize]byte {
	g := m.groups[pn>>groupBits]
	if g == nil {
		return nil
	}
	return g[pn&groupMask]
}

// forEachPage visits every mapped page in ascending page-number order.
func (m *Memory) forEachPage(f func(pn uint32, p *[PageSize]byte)) {
	for gi := range m.groups {
		g := m.groups[gi]
		if g == nil {
			continue
		}
		for pi, p := range g {
			if p != nil {
				f(uint32(gi)<<groupBits|uint32(pi), p)
			}
		}
	}
}

// Clone deep-copies the memory (debug toolchain replay).
func (m *Memory) Clone() *Memory {
	out := NewMemory(m.Strict)
	m.forEachPage(func(pn uint32, p *[PageSize]byte) {
		cp := *p
		out.setPage(pn, &cp)
	})
	return out
}

// InstallPage maps a page image at the page containing addr. An already
// mapped page is overwritten in place.
func (m *Memory) InstallPage(pageAddr uint32, data *[PageSize]byte) {
	pn := pageAddr >> PageShift
	if p := m.lookupPage(pn); p != nil {
		*p = *data
		return
	}
	cp := *data
	m.setPage(pn, &cp)
}

// PageData returns a copy of the page containing addr, allocating it if
// the memory is non-strict.
func (m *Memory) PageData(addr uint32) (*[PageSize]byte, error) {
	p, err := m.page(addr)
	if err != nil {
		return nil, err
	}
	cp := *p
	return &cp, nil
}

// HasPage reports whether the page containing addr is mapped.
func (m *Memory) HasPage(addr uint32) bool {
	return m.lookupPage(addr>>PageShift) != nil
}

// PageCount reports the number of mapped pages.
func (m *Memory) PageCount() int { return m.count }

// Pages returns the sorted list of mapped page base addresses.
func (m *Memory) Pages() []uint32 {
	out := make([]uint32, 0, m.count)
	m.forEachPage(func(pn uint32, _ *[PageSize]byte) {
		out = append(out, pn<<PageShift)
	})
	return out
}

// Load8 implements guest.Memory.
func (m *Memory) Load8(addr uint32) (uint8, error) {
	p, err := m.page(addr)
	if err != nil {
		return 0, err
	}
	return p[addr&(PageSize-1)], nil
}

// Store8 implements guest.Memory.
func (m *Memory) Store8(addr uint32, v uint8) error {
	p, err := m.page(addr)
	if err != nil {
		return err
	}
	p[addr&(PageSize-1)] = v
	return nil
}

// Load32 implements guest.Memory. Accesses may straddle pages.
func (m *Memory) Load32(addr uint32) (uint32, error) {
	if addr&(PageSize-1) <= PageSize-4 {
		p, err := m.page(addr)
		if err != nil {
			return 0, err
		}
		off := addr & (PageSize - 1)
		return binary.LittleEndian.Uint32(p[off : off+4]), nil
	}
	var b [4]byte
	for i := range b {
		v, err := m.Load8(addr + uint32(i))
		if err != nil {
			return 0, err
		}
		b[i] = v
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// Store32 implements guest.Memory.
func (m *Memory) Store32(addr uint32, v uint32) error {
	if addr&(PageSize-1) <= PageSize-4 {
		p, err := m.page(addr)
		if err != nil {
			return err
		}
		off := addr & (PageSize - 1)
		binary.LittleEndian.PutUint32(p[off:off+4], v)
		return nil
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	for i := range b {
		if err := m.Store8(addr+uint32(i), b[i]); err != nil {
			return err
		}
	}
	return nil
}

// Load64 implements guest.Memory.
func (m *Memory) Load64(addr uint32) (uint64, error) {
	lo, err := m.Load32(addr)
	if err != nil {
		return 0, err
	}
	hi, err := m.Load32(addr + 4)
	if err != nil {
		return 0, err
	}
	return uint64(hi)<<32 | uint64(lo), nil
}

// Store64 implements guest.Memory.
func (m *Memory) Store64(addr uint32, v uint64) error {
	if err := m.Store32(addr, uint32(v)); err != nil {
		return err
	}
	return m.Store32(addr+4, uint32(v>>32))
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		v, err := m.Load8(addr + uint32(i))
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) error {
	for i, v := range b {
		if err := m.Store8(addr+uint32(i), v); err != nil {
			return err
		}
	}
	return nil
}

// LoadImage installs every segment of an image.
func (m *Memory) LoadImage(im *guest.Image) error {
	for _, s := range im.Segments {
		if err := m.WriteBytes(s.Addr, s.Data); err != nil {
			return err
		}
	}
	return nil
}

// Equal reports whether two memories hold identical content, treating
// unmapped pages as zero. It returns the first differing address when
// not equal.
func (m *Memory) Equal(o *Memory) (bool, uint32) {
	check := func(a, b *Memory) (ok bool, diff uint32) {
		ok = true
		a.forEachPage(func(pn uint32, p *[PageSize]byte) {
			if !ok {
				return
			}
			q := b.lookupPage(pn)
			if q == nil {
				for i, v := range p {
					if v != 0 {
						ok, diff = false, pn<<PageShift+uint32(i)
						return
					}
				}
				return
			}
			if *p != *q {
				for i := range p {
					if p[i] != q[i] {
						ok, diff = false, pn<<PageShift+uint32(i)
						return
					}
				}
			}
		})
		return ok, diff
	}
	if ok, addr := check(m, o); !ok {
		return false, addr
	}
	return check(o, m)
}
