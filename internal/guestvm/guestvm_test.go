package guestvm

import (
	"testing"

	"darco/internal/guest"
)

func TestMemoryBasics(t *testing.T) {
	m := NewMemory(false)
	if err := m.Store32(0x1000, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load32(0x1000)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("load32 %#x %v", v, err)
	}
	b, _ := m.Load8(0x1001)
	if b != 0xBE {
		t.Errorf("little endian byte %#x", b)
	}
	if m.PageCount() != 1 {
		t.Errorf("pages %d", m.PageCount())
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory(false)
	addr := uint32(PageSize - 2) // straddles pages 0 and 1
	if err := m.Store32(addr, 0x11223344); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load32(addr)
	if err != nil || v != 0x11223344 {
		t.Fatalf("straddle load %#x %v", v, err)
	}
	if m.PageCount() != 2 {
		t.Errorf("straddle should touch 2 pages, got %d", m.PageCount())
	}
	if err := m.Store64(2*PageSize-4, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	w, err := m.Load64(2*PageSize - 4)
	if err != nil || w != 0x1122334455667788 {
		t.Fatalf("straddle load64 %#x %v", w, err)
	}
}

func TestStrictMemoryFaults(t *testing.T) {
	m := NewMemory(true)
	_, err := m.Load32(0x5000)
	pf, ok := err.(*PageFaultError)
	if !ok {
		t.Fatalf("want page fault, got %v", err)
	}
	if pf.Addr != 0x5000 || pf.PageFaultAddr() != 0x5000 {
		t.Errorf("fault addr %#x", pf.Addr)
	}
	// Install the page; access now works.
	var page [PageSize]byte
	page[0] = 0xAB
	m.InstallPage(0x5000, &page)
	b, err := m.Load8(0x5000)
	if err != nil || b != 0xAB {
		t.Fatalf("after install: %#x %v", b, err)
	}
	// A store to an unmapped page also faults.
	if err := m.Store8(0x9000, 1); err == nil {
		t.Errorf("store to unmapped page must fault")
	}
}

func TestMemoryEqualAndClone(t *testing.T) {
	a := NewMemory(false)
	b := NewMemory(false)
	a.Store32(0x100, 7)
	b.Store32(0x100, 7)
	if ok, _ := a.Equal(b); !ok {
		t.Errorf("equal memories reported different")
	}
	b.Store8(0x101, 9)
	ok, addr := a.Equal(b)
	if ok || addr != 0x101 {
		t.Errorf("difference at %#x ok=%v", addr, ok)
	}
	// A mapped all-zero page equals an unmapped one.
	c := NewMemory(false)
	c.Load8(0x2000) // allocates zero page
	d := NewMemory(false)
	if ok, _ := c.Equal(d); !ok {
		t.Errorf("zero page should equal unmapped")
	}
	// Clone is deep.
	cl := a.Clone()
	cl.Store8(0x100, 99)
	v, _ := a.Load8(0x100)
	if v == 99 {
		t.Errorf("clone aliases original")
	}
}

func mustVM(t *testing.T, src string) *VM {
	t.Helper()
	im, err := guest.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := New(im)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestVMRunToHalt(t *testing.T) {
	vm := mustVM(t, `
.org 0x1000
    movri eax, 10
    movri ebx, 0
loop:
    addrr ebx, eax
    dec eax
    cmpri eax, 0
    jg loop
    halt
`)
	reason, err := vm.Run(RunLimits{})
	if err != nil || reason != StopHalt {
		t.Fatalf("run: %v %v", reason, err)
	}
	if vm.CPU.R[guest.EBX] != 55 {
		t.Errorf("sum %d", vm.CPU.R[guest.EBX])
	}
	if vm.InsnCount == 0 || vm.BBCount == 0 {
		t.Errorf("counters: %d insns %d bbs", vm.InsnCount, vm.BBCount)
	}
}

func TestVMSyscalls(t *testing.T) {
	vm := mustVM(t, `
.org 0x1000
    movri eax, 20       ; getpid
    syscall
    movrr esi, eax
    movri eax, 13       ; time
    syscall
    movri eax, 13
    syscall
    movrr edi, eax      ; second tick
    movri eax, 45       ; brk query
    movri ebx, 0
    syscall
    movrr ebp, eax
    movri eax, 4        ; write
    movri ebx, 1
    movri ecx, 0x1000
    movri edx, 3
    syscall
    movri eax, 1        ; exit(7)
    movri ebx, 7
    syscall
    halt
`)
	reason, err := vm.Run(RunLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if reason != StopHalt {
		t.Fatalf("reason %v", reason)
	}
	if vm.CPU.R[guest.ESI] != FixedPID {
		t.Errorf("pid %d", vm.CPU.R[guest.ESI])
	}
	if vm.CPU.R[guest.EDI] != 2 {
		t.Errorf("tick %d", vm.CPU.R[guest.EDI])
	}
	if vm.CPU.R[guest.EBP] != InitialBrk {
		t.Errorf("brk %#x", vm.CPU.R[guest.EBP])
	}
	if len(vm.Env.Output) != 3 {
		t.Errorf("output %d bytes", len(vm.Env.Output))
	}
	if !vm.Env.Exited || vm.Env.ExitCode != 7 {
		t.Errorf("exit %v %d", vm.Env.Exited, vm.Env.ExitCode)
	}
}

func TestVMRunLimits(t *testing.T) {
	src := `
.org 0x1000
loop:
    addri eax, 1
    cmpri eax, 1000000
    jl loop
    halt
`
	vm := mustVM(t, src)
	reason, err := vm.Run(RunLimits{InsnCount: 100})
	if err != nil || reason != StopInsnLimit {
		t.Fatalf("insn limit: %v %v", reason, err)
	}
	if vm.InsnCount < 100 || vm.InsnCount > 103 {
		t.Errorf("insn count %d", vm.InsnCount)
	}
	vm2 := mustVM(t, src)
	reason, err = vm2.Run(RunLimits{BBCount: 5})
	if err != nil || reason != StopBBLimit {
		t.Fatalf("bb limit: %v %v", reason, err)
	}
	if vm2.BBCount != 5 {
		t.Errorf("bb count %d", vm2.BBCount)
	}
}

func TestVMStopAtSyscall(t *testing.T) {
	vm := mustVM(t, `
.org 0x1000
    movri eax, 20
    syscall
    halt
`)
	reason, err := vm.Run(RunLimits{StopAtSys: true})
	if err != nil || reason != StopSyscall {
		t.Fatalf("stop-at-sys: %v %v", reason, err)
	}
	in, err := vm.Fetch(vm.CPU.EIP)
	if err != nil || in.Op != guest.SYSCALL {
		t.Fatalf("paused at %v", in.Op)
	}
	if err := vm.ServiceSyscallAt(); err != nil {
		t.Fatal(err)
	}
	if vm.CPU.R[guest.EAX] != FixedPID {
		t.Errorf("pid %d", vm.CPU.R[guest.EAX])
	}
}

func TestVMBBFreq(t *testing.T) {
	vm := mustVM(t, `
.org 0x1000
    movri eax, 3
loop:
    dec eax
    cmpri eax, 0
    jg loop
    halt
`)
	vm.BBFreq = make(map[uint32]uint64)
	if _, err := vm.Run(RunLimits{}); err != nil {
		t.Fatal(err)
	}
	// The first iteration belongs to the entry basic block (no label
	// breaks it); the loop BB proper runs on iterations 2 and 3.
	loopPC := uint32(0x1000 + 6)
	if vm.BBFreq[loopPC] != 2 {
		t.Errorf("loop bb freq %d (map %v)", vm.BBFreq[loopPC], vm.BBFreq)
	}
	if vm.BBFreq[0x1000] != 1 {
		t.Errorf("entry bb freq %d", vm.BBFreq[0x1000])
	}
}

func TestUnknownSyscallErrors(t *testing.T) {
	vm := mustVM(t, `
.org 0x1000
    movri eax, 999
    syscall
    halt
`)
	if _, err := vm.Run(RunLimits{}); err == nil {
		t.Fatalf("unknown syscall must error")
	}
}

func TestEnvWriteBounds(t *testing.T) {
	env := NewEnv()
	cpu := &guest.CPU{}
	cpu.R[guest.EAX] = SysWrite
	cpu.R[guest.EDX] = 1 << 21 // over the write limit
	if err := env.Service(cpu, NewMemory(false)); err == nil {
		t.Errorf("oversized write must error")
	}
}
