package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	darco "darco"
	"darco/internal/workload"
	"darco/obs"
	"darco/perf"
)

// BenchEntry and BenchSnapshot are the BENCH_<n>.json schema, owned by
// darco/perf (the regression gate and trend dashboard read the same
// types); this package keeps the collection side — actually running
// the benches with profiling counters attached.
type (
	BenchEntry    = perf.Bench
	BenchSnapshot = perf.Snapshot
)

// NextBenchPath returns the path of the next BENCH_<n>.json in dir.
func NextBenchPath(dir string) (string, error) { return perf.NextBenchPath(dir) }

// BenchPipelineDepth is the timing-pipeline window depth the perf
// snapshots and speed benches measure (deep enough that the emulator
// rarely blocks on the timing drain, small enough to bound buffering).
const BenchPipelineDepth = 8

// measure runs f once and reports its wall time and allocation cost.
func measure(f func() error) (perf.Bench, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := f()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return perf.Bench{
		NsPerOp:     float64(wall.Nanoseconds()),
		AllocsPerOp: float64(after.Mallocs - before.Mallocs),
		BytesPerOp:  float64(after.TotalAlloc - before.TotalAlloc),
	}, err
}

// CollectBenchSnapshot measures the Table-Speed benches and the
// Figs. 4–7 suite campaign at the given workload scale, writing the
// schema-2 snapshot shape: every measured row carries its engine
// profiling-counter snapshot (the machine-independent signals the
// darco-perf gate compares exactly), and the four figure rows record
// cost_shared = "SuiteCampaign" instead of duplicating the one
// measured campaign cost.
func CollectBenchSnapshot(ctx context.Context, scale float64) (*perf.Snapshot, error) {
	snap := &perf.Snapshot{
		Schema:    perf.SchemaVersion,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scale:     scale,
		Benches:   make(map[string]perf.Bench),
	}

	p, ok := workload.ByName("429.mcf")
	if !ok {
		return nil, fmt.Errorf("experiments: 429.mcf missing from roster")
	}
	im, err := workload.CachedImage(p.Scale(scale))
	if err != nil {
		return nil, err
	}

	speed := func(name string, timing bool, opts ...darco.Option) error {
		ctrs := &obs.EngineCounters{}
		opts = append(append([]darco.Option(nil), opts...), darco.WithObsCounters(ctrs))
		var res *darco.Result
		entry, err := measure(func() error {
			eng, err := darco.NewEngine(opts...)
			if err != nil {
				return err
			}
			res, err = eng.Run(ctx, im)
			return err
		})
		if err != nil {
			return err
		}
		if timing {
			entry.Metrics = map[string]float64{
				"guest-KIPS": res.GuestMIPS * 1000,
				"host-MIPS":  res.HostMIPS,
			}
		} else {
			entry.Metrics = map[string]float64{
				"guest-MIPS": res.GuestMIPS,
				"host-MIPS":  res.HostMIPS,
			}
		}
		entry.Counters = res.Obs
		snap.Benches[name] = entry
		return nil
	}
	if err := speed("TableSpeedFunctional", false, darco.WithConfig(darco.DefaultConfig())); err != nil {
		return nil, err
	}
	if err := speed("TableSpeedTiming", true, darco.WithConfig(darco.TimingConfig())); err != nil {
		return nil, err
	}
	// The decoupled timing pipeline at the default bench depth: counters
	// are bit-identical to TableSpeedTiming (the determinism harness pins
	// that), so the ns/op ratio between the two is the pipeline's win.
	if err := speed("TableSpeedTimingPipelined", true,
		darco.WithConfig(darco.TimingConfig()), darco.WithTimingPipeline(BenchPipelineDepth)); err != nil {
		return nil, err
	}

	// One parallel suite campaign backs all four figures. The counters
	// are shared across the campaign's scenarios; the per-field sums
	// are order-independent, so the snapshot is deterministic at any
	// parallelism.
	ctrs := &obs.EngineCounters{}
	var rs []BenchResult
	campaign, err := measure(func() error {
		eng, err := darco.NewEngine(darco.WithConfig(darco.DefaultConfig()), darco.WithObsCounters(ctrs))
		if err != nil {
			return err
		}
		rep, err := eng.RunCampaign(ctx, darco.SuiteScenarios(scale))
		if err != nil {
			return err
		}
		rs, err = BenchResults(rep)
		return err
	})
	if err != nil {
		return nil, err
	}
	cs := ctrs.Snapshot()
	campaign.Counters = &cs
	snap.Benches[perf.SuiteCampaignBench] = campaign

	// The figure rows are different views of the campaign above: they
	// carry their headline metrics and an explicit cost_shared marker
	// instead of a copy of the campaign's measured cost, so trend
	// lines and gates see one sample, not five.
	fig := func(name string, metrics map[string]float64) {
		snap.Benches[name] = perf.Bench{
			Metrics:    metrics,
			CostShared: perf.SuiteCampaignBench,
		}
	}

	sbm := func(r *BenchResult) float64 { _, _, s := r.Res.ModeShares(); return 100 * s }
	cost := func(r *BenchResult) float64 { return r.Res.EmulationCostSBM() }
	ov := func(r *BenchResult) float64 { return 100 * r.Res.TOLOverheadFrac() }
	avg := func(suite string, f func(*BenchResult) float64) float64 {
		var sum float64
		var n int
		for i := range rs {
			if rs[i].Profile.Suite == suite {
				sum += f(&rs[i])
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	fig("Fig4ModeDistribution", map[string]float64{
		"SBM%-INT":  avg(workload.SuiteINT, sbm),
		"SBM%-FP":   avg(workload.SuiteFP, sbm),
		"SBM%-Phys": avg(workload.SuitePhysics, sbm),
	})
	fig("Fig5EmulationCost", map[string]float64{
		"cost-INT":  avg(workload.SuiteINT, cost),
		"cost-FP":   avg(workload.SuiteFP, cost),
		"cost-Phys": avg(workload.SuitePhysics, cost),
	})
	fig("Fig6TOLOverhead", map[string]float64{
		"TOL%-INT":  avg(workload.SuiteINT, ov),
		"TOL%-FP":   avg(workload.SuiteFP, ov),
		"TOL%-Phys": avg(workload.SuitePhysics, ov),
	})
	f7 := Fig7(rs)
	var interp, bbt, sbt float64
	for _, r := range f7.Avgs {
		interp += r.Values[0]
		bbt += r.Values[1]
		sbt += r.Values[2]
	}
	if n := float64(len(f7.Avgs)); n > 0 {
		fig("Fig7OverheadBreakdown", map[string]float64{
			"interp%":  interp / n,
			"bbtrans%": bbt / n,
			"sbtrans%": sbt / n,
		})
	}
	return snap, nil
}
