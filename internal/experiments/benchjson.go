package experiments

import (
	"context"
	"fmt"
	"maps"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"slices"
	"time"

	darco "darco"
	"darco/export"
	"darco/internal/workload"
)

// BenchEntry is one measured benchmark in a snapshot. For the figure
// entries the cost fields are the shared suite-campaign cost (the four
// figures are different views of one campaign).
type BenchEntry struct {
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// BenchSnapshot is one BENCH_<n>.json: the perf trajectory point a PR
// leaves behind. Future PRs regenerate it with `darco-bench -json .`
// and compare against the committed history; absolute numbers are
// machine-dependent, ratios within one machine are the signal.
type BenchSnapshot struct {
	Schema    int                   `json:"schema"`
	CreatedAt string                `json:"created_at"`
	GoVersion string                `json:"go_version"`
	GOOS      string                `json:"goos"`
	GOARCH    string                `json:"goarch"`
	Scale     float64               `json:"scale"`
	Benches   map[string]BenchEntry `json:"benches"`
}

// BenchPipelineDepth is the timing-pipeline window depth the perf
// snapshots and speed benches measure (deep enough that the emulator
// rarely blocks on the timing drain, small enough to bound buffering).
const BenchPipelineDepth = 8

// measure runs f once and reports its wall time and allocation cost.
func measure(f func() error) (BenchEntry, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := f()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return BenchEntry{
		NsPerOp:     float64(wall.Nanoseconds()),
		AllocsPerOp: float64(after.Mallocs - before.Mallocs),
		BytesPerOp:  float64(after.TotalAlloc - before.TotalAlloc),
	}, err
}

// CollectBenchSnapshot measures the Table-Speed benches and the
// Figs. 4–7 suite campaign at the given workload scale.
func CollectBenchSnapshot(ctx context.Context, scale float64) (*BenchSnapshot, error) {
	snap := &BenchSnapshot{
		Schema:    1,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scale:     scale,
		Benches:   make(map[string]BenchEntry),
	}

	p, ok := workload.ByName("429.mcf")
	if !ok {
		return nil, fmt.Errorf("experiments: 429.mcf missing from roster")
	}
	im, err := workload.CachedImage(p.Scale(scale))
	if err != nil {
		return nil, err
	}

	speed := func(name string, timing bool, opts ...darco.Option) error {
		var res *darco.Result
		entry, err := measure(func() error {
			eng, err := darco.NewEngine(opts...)
			if err != nil {
				return err
			}
			res, err = eng.Run(ctx, im)
			return err
		})
		if err != nil {
			return err
		}
		if timing {
			entry.Metrics = map[string]float64{
				"guest-KIPS": res.GuestMIPS * 1000,
				"host-MIPS":  res.HostMIPS,
			}
		} else {
			entry.Metrics = map[string]float64{
				"guest-MIPS": res.GuestMIPS,
				"host-MIPS":  res.HostMIPS,
			}
		}
		snap.Benches[name] = entry
		return nil
	}
	if err := speed("TableSpeedFunctional", false, darco.WithConfig(darco.DefaultConfig())); err != nil {
		return nil, err
	}
	if err := speed("TableSpeedTiming", true, darco.WithConfig(darco.TimingConfig())); err != nil {
		return nil, err
	}
	// The decoupled timing pipeline at the default bench depth: counters
	// are bit-identical to TableSpeedTiming (the determinism harness pins
	// that), so the ns/op ratio between the two is the pipeline's win.
	if err := speed("TableSpeedTimingPipelined", true,
		darco.WithConfig(darco.TimingConfig()), darco.WithTimingPipeline(BenchPipelineDepth)); err != nil {
		return nil, err
	}

	// One parallel suite campaign backs all four figures.
	var rs []BenchResult
	campaign, err := measure(func() error {
		rep, err := SuiteCampaign(ctx, scale, darco.DefaultConfig())
		if err != nil {
			return err
		}
		rs, err = BenchResults(rep)
		return err
	})
	if err != nil {
		return nil, err
	}
	snap.Benches["SuiteCampaign"] = campaign

	fig := func(name string, metrics map[string]float64) {
		snap.Benches[name] = BenchEntry{
			NsPerOp:     campaign.NsPerOp,
			AllocsPerOp: campaign.AllocsPerOp,
			BytesPerOp:  campaign.BytesPerOp,
			Metrics:     metrics,
		}
	}

	sbm := func(r *BenchResult) float64 { _, _, s := r.Res.ModeShares(); return 100 * s }
	cost := func(r *BenchResult) float64 { return r.Res.EmulationCostSBM() }
	ov := func(r *BenchResult) float64 { return 100 * r.Res.TOLOverheadFrac() }
	avg := func(suite string, f func(*BenchResult) float64) float64 {
		var sum float64
		var n int
		for i := range rs {
			if rs[i].Profile.Suite == suite {
				sum += f(&rs[i])
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	fig("Fig4ModeDistribution", map[string]float64{
		"SBM%-INT":  avg(workload.SuiteINT, sbm),
		"SBM%-FP":   avg(workload.SuiteFP, sbm),
		"SBM%-Phys": avg(workload.SuitePhysics, sbm),
	})
	fig("Fig5EmulationCost", map[string]float64{
		"cost-INT":  avg(workload.SuiteINT, cost),
		"cost-FP":   avg(workload.SuiteFP, cost),
		"cost-Phys": avg(workload.SuitePhysics, cost),
	})
	fig("Fig6TOLOverhead", map[string]float64{
		"TOL%-INT":  avg(workload.SuiteINT, ov),
		"TOL%-FP":   avg(workload.SuiteFP, ov),
		"TOL%-Phys": avg(workload.SuitePhysics, ov),
	})
	f7 := Fig7(rs)
	var interp, bbt, sbt float64
	for _, r := range f7.Avgs {
		interp += r.Values[0]
		bbt += r.Values[1]
		sbt += r.Values[2]
	}
	if n := float64(len(f7.Avgs)); n > 0 {
		fig("Fig7OverheadBreakdown", map[string]float64{
			"interp%":  interp / n,
			"bbtrans%": bbt / n,
			"sbtrans%": sbt / n,
		})
	}
	return snap, nil
}

var benchFileRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NextBenchPath returns the path of the next BENCH_<n>.json in dir
// (1 + the highest existing snapshot number).
func NextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	next := 1
	for _, e := range entries {
		m := benchFileRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		var n int
		fmt.Sscanf(m[1], "%d", &n)
		if n >= next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

// WriteBenchSnapshot writes snap as the next BENCH_<n>.json in dir and
// returns the written path. The bytes come from export.EncodeJSON, the
// shared encoder for every darco JSON artifact (campaign exports and
// perf snapshots stay diff-friendly the same way).
func (s *BenchSnapshot) Write(dir string) (string, error) {
	path, err := NextBenchPath(dir)
	if err != nil {
		return "", err
	}
	data, err := export.EncodeJSON(s)
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// BenchNames lists the snapshot's benchmark names sorted, for stable
// reporting.
func (s *BenchSnapshot) BenchNames() []string {
	return slices.Sorted(maps.Keys(s.Benches))
}
