// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI). Each experiment returns structured rows; the
// darco-bench command prints them in the paper's format and the
// top-level benchmarks report them as metrics. EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	darco "darco"
	"darco/internal/tol"
	"darco/internal/workload"
	"darco/obs"
)

// BenchResult is one benchmark's full-stack measurement.
type BenchResult struct {
	Profile workload.Profile
	Res     *darco.Result
}

// RunSuites executes every paper benchmark at the given scale on the
// functional stack (no timing), the configuration used for Figs. 4–7.
// The benchmarks run as a parallel campaign on a full worker pool;
// per-scenario statistics are identical to a serial run.
func RunSuites(scale float64, cfg darco.Config) ([]BenchResult, error) {
	return RunSuitesContext(context.Background(), scale, cfg, 0)
}

// RunSuitesContext is RunSuites with cancellation and an explicit
// worker-pool width (parallelism < 1 = GOMAXPROCS).
func RunSuitesContext(ctx context.Context, scale float64, cfg darco.Config, parallelism int) ([]BenchResult, error) {
	rep, err := SuiteCampaign(ctx, scale, cfg, darco.WithParallelism(parallelism))
	if err != nil {
		return nil, err
	}
	return BenchResults(rep)
}

// SuiteCampaign runs the paper's benchmark roster as a campaign and
// returns the full report (per-scenario wall times, failures, pool
// utilisation) for callers that print or aggregate it.
func SuiteCampaign(ctx context.Context, scale float64, cfg darco.Config, opts ...darco.CampaignOption) (*darco.CampaignReport, error) {
	eng, err := darco.NewEngine(darco.WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return eng.RunCampaign(ctx, darco.SuiteScenarios(scale), opts...)
}

// BenchResults converts a campaign report into the per-benchmark rows
// the figure builders consume, failing on the first scenario error.
func BenchResults(rep *darco.CampaignReport) ([]BenchResult, error) {
	out := make([]BenchResult, 0, len(rep.Results))
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Err != nil {
			return nil, r.Err
		}
		out = append(out, BenchResult{Profile: r.Scenario.Profile, Res: r.Result})
	}
	return out, nil
}

// suiteAverage computes arithmetic means of a metric per suite, in the
// paper's suite order.
func suiteAverage(rs []BenchResult, f func(*BenchResult) float64) []Row {
	suites := []string{workload.SuiteINT, workload.SuiteFP, workload.SuitePhysics}
	var rows []Row
	for _, s := range suites {
		var sum float64
		var n int
		for i := range rs {
			if rs[i].Profile.Suite == s {
				sum += f(&rs[i])
				n++
			}
		}
		if n > 0 {
			rows = append(rows, Row{Name: s, Values: []float64{sum / float64(n)}})
		}
	}
	return rows
}

// Row is one labelled series entry.
type Row struct {
	Name   string
	Suite  string
	Values []float64
}

// Figure is one reproduced figure: named value columns per benchmark
// plus suite averages.
type Figure struct {
	Title   string
	Columns []string
	Rows    []Row
	Avgs    []Row // per-suite averages (single- or multi-column)
}

// Format renders the figure as an aligned text table.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-18s", "benchmark")
	for _, c := range f.Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-18s", r.Name)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%12.2f", v)
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat("-", 18+12*len(f.Columns)) + "\n")
	for _, r := range f.Avgs {
		fmt.Fprintf(&b, "%-18s", r.Name)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%12.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig4 reproduces "Dynamic x86 instruction distribution in IM, BBM and
// SBM" (percent).
func Fig4(rs []BenchResult) *Figure {
	f := &Figure{
		Title:   "Fig. 4: dynamic guest instruction distribution per mode (%)",
		Columns: []string{"IM", "BBM", "SBM"},
	}
	for i := range rs {
		im, bbm, sbm := rs[i].Res.ModeShares()
		f.Rows = append(f.Rows, Row{Name: rs[i].Profile.Name, Suite: rs[i].Profile.Suite,
			Values: []float64{100 * im, 100 * bbm, 100 * sbm}})
	}
	suites := []string{workload.SuiteINT, workload.SuiteFP, workload.SuitePhysics}
	for _, s := range suites {
		var a, b, c float64
		var n int
		for i := range rs {
			if rs[i].Profile.Suite != s {
				continue
			}
			im, bbm, sbm := rs[i].Res.ModeShares()
			a += im
			b += bbm
			c += sbm
			n++
		}
		if n > 0 {
			f.Avgs = append(f.Avgs, Row{Name: s,
				Values: []float64{100 * a / float64(n), 100 * b / float64(n), 100 * c / float64(n)}})
		}
	}
	return f
}

// Fig5 reproduces "Host instructions per x86 instruction in SBM".
func Fig5(rs []BenchResult) *Figure {
	f := &Figure{
		Title:   "Fig. 5: host instructions per guest instruction in SBM",
		Columns: []string{"host/guest"},
	}
	for i := range rs {
		f.Rows = append(f.Rows, Row{Name: rs[i].Profile.Name, Suite: rs[i].Profile.Suite,
			Values: []float64{rs[i].Res.EmulationCostSBM()}})
	}
	f.Avgs = suiteAverage(rs, func(r *BenchResult) float64 { return r.Res.EmulationCostSBM() })
	return f
}

// Fig6 reproduces "Overall host dynamic instruction distribution":
// TOL overhead vs application instructions (percent of host stream).
func Fig6(rs []BenchResult) *Figure {
	f := &Figure{
		Title:   "Fig. 6: TOL overhead share of the host dynamic instruction stream (%)",
		Columns: []string{"TOL", "App"},
	}
	for i := range rs {
		ov := 100 * rs[i].Res.TOLOverheadFrac()
		f.Rows = append(f.Rows, Row{Name: rs[i].Profile.Name, Suite: rs[i].Profile.Suite,
			Values: []float64{ov, 100 - ov}})
	}
	f.Avgs = suiteAverage(rs, func(r *BenchResult) float64 { return 100 * r.Res.TOLOverheadFrac() })
	return f
}

// Fig7 reproduces "Dynamic TOL Overhead Distribution" (percent of TOL
// overhead per category).
func Fig7(rs []BenchResult) *Figure {
	cats := []tol.OverheadCat{tol.OvInterp, tol.OvBBTrans, tol.OvSBTrans,
		tol.OvPrologue, tol.OvChaining, tol.OvLookup, tol.OvOther}
	f := &Figure{Title: "Fig. 7: TOL overhead breakdown (%)"}
	for _, c := range cats {
		f.Columns = append(f.Columns, c.String())
	}
	addRow := func(name string, ov *tol.Overhead) Row {
		total := float64(ov.Total())
		row := Row{Name: name}
		for _, c := range cats {
			v := 0.0
			if total > 0 {
				v = 100 * float64(ov.Cat[c]) / total
			}
			row.Values = append(row.Values, v)
		}
		return row
	}
	for i := range rs {
		row := addRow(rs[i].Profile.Name, &rs[i].Res.Overhead)
		row.Suite = rs[i].Profile.Suite
		f.Rows = append(f.Rows, row)
	}
	suites := []string{workload.SuiteINT, workload.SuiteFP, workload.SuitePhysics}
	for _, s := range suites {
		var agg tol.Overhead
		for i := range rs {
			if rs[i].Profile.Suite != s {
				continue
			}
			for c := range agg.Cat {
				agg.Cat[c] += rs[i].Res.Overhead.Cat[c]
			}
		}
		f.Avgs = append(f.Avgs, addRow(s, &agg))
	}
	return f
}

// SpeedRow is one row of the §VI-A speed table. Obs is non-nil only
// when the row ran with profiling counters attached (TableSpeedObs).
type SpeedRow struct {
	Config    string
	GuestMIPS float64
	HostMIPS  float64
	Wall      time.Duration
	Obs       *obs.EngineCountersSnapshot
}

// TableSpeed reproduces the §VI-A emulation/simulation speed table on a
// representative benchmark: guest and host instruction rates with the
// timing simulator off, on synchronously, and (when pipelineDepth > 0)
// on behind the decoupled timing pipeline at that window depth. The
// pipelined row's counters are bit-identical to the synchronous row's —
// only the wall-clock rates move.
func TableSpeed(ctx context.Context, p workload.Profile, scale float64, pipelineDepth int) ([]SpeedRow, error) {
	return tableSpeed(ctx, p, scale, pipelineDepth, false)
}

// TableSpeedObs is TableSpeed with a fresh set of hot-path profiling
// counters attached per configuration, so each row carries its own
// cache-hit and pipeline-traffic snapshot (darco-bench -obs).
func TableSpeedObs(ctx context.Context, p workload.Profile, scale float64, pipelineDepth int) ([]SpeedRow, error) {
	return tableSpeed(ctx, p, scale, pipelineDepth, true)
}

func tableSpeed(ctx context.Context, p workload.Profile, scale float64, pipelineDepth int, withObs bool) ([]SpeedRow, error) {
	im, err := workload.CachedImage(p.Scale(scale))
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name string
		opts []darco.Option
	}{
		{"functional emulation", []darco.Option{darco.WithConfig(darco.DefaultConfig())}},
		{"with timing simulator", []darco.Option{darco.WithConfig(darco.TimingConfig())}},
	}
	if pipelineDepth > 0 {
		configs = append(configs, struct {
			name string
			opts []darco.Option
		}{
			fmt.Sprintf("timing, pipelined (d=%d)", pipelineDepth),
			[]darco.Option{darco.WithConfig(darco.TimingConfig()), darco.WithTimingPipeline(pipelineDepth)},
		})
	}
	var rows []SpeedRow
	for _, cfg := range configs {
		opts := cfg.opts
		if withObs {
			opts = append(append([]darco.Option(nil), opts...),
				darco.WithObsCounters(&obs.EngineCounters{}))
		}
		eng, err := darco.NewEngine(opts...)
		if err != nil {
			return nil, err
		}
		res, err := eng.Run(ctx, im)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SpeedRow{Config: cfg.name,
			GuestMIPS: res.GuestMIPS, HostMIPS: res.HostMIPS, Wall: res.Wall, Obs: res.Obs})
	}
	return rows, nil
}

// SortRows orders figure rows in the paper's suite order (stable).
func SortRows(f *Figure) {
	order := map[string]int{workload.SuiteINT: 0, workload.SuiteFP: 1, workload.SuitePhysics: 2}
	sort.SliceStable(f.Rows, func(i, j int) bool {
		return order[f.Rows[i].Suite] < order[f.Rows[j].Suite]
	})
}
