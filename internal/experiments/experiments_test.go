package experiments

import (
	"context"
	"strings"
	"testing"

	darco "darco"
	"darco/internal/workload"
)

func runAll(t *testing.T) []BenchResult {
	t.Helper()
	rs, err := RunSuites(0.04, darco.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestFiguresWellFormed(t *testing.T) {
	rs := runAll(t)
	if len(rs) != 31 {
		t.Fatalf("results %d", len(rs))
	}
	for _, fig := range []*Figure{Fig4(rs), Fig5(rs), Fig6(rs), Fig7(rs)} {
		if len(fig.Rows) != 31 {
			t.Errorf("%s: %d rows", fig.Title, len(fig.Rows))
		}
		if len(fig.Avgs) != 3 {
			t.Errorf("%s: %d averages", fig.Title, len(fig.Avgs))
		}
		for _, r := range fig.Rows {
			if len(r.Values) != len(fig.Columns) {
				t.Errorf("%s: row %s has %d values for %d columns",
					fig.Title, r.Name, len(r.Values), len(fig.Columns))
			}
		}
		out := fig.Format()
		if !strings.Contains(out, "SPECINT2006") || !strings.Contains(out, "ragdoll") {
			t.Errorf("%s: formatting missing rows", fig.Title)
		}
	}
}

func TestFig4SharesSumTo100(t *testing.T) {
	rs := runAll(t)
	fig := Fig4(rs)
	for _, r := range append(fig.Rows, fig.Avgs...) {
		sum := r.Values[0] + r.Values[1] + r.Values[2]
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: mode shares sum to %.2f", r.Name, sum)
		}
	}
}

func TestFig6Complements(t *testing.T) {
	rs := runAll(t)
	fig := Fig6(rs)
	for _, r := range fig.Rows {
		if s := r.Values[0] + r.Values[1]; s < 99.9 || s > 100.1 {
			t.Errorf("%s: TOL+App = %.2f", r.Name, s)
		}
	}
}

func TestFig7BreakdownSums(t *testing.T) {
	rs := runAll(t)
	fig := Fig7(rs)
	for _, r := range fig.Rows {
		var sum float64
		for _, v := range r.Values {
			sum += v
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: overhead breakdown sums to %.2f", r.Name, sum)
		}
	}
}

func TestTableSpeed(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	rows, err := TableSpeed(context.Background(), p, 0.05, BenchPipelineDepth)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d, want functional + timing + pipelined", len(rows))
	}
	for _, r := range rows {
		if r.GuestMIPS <= 0 {
			t.Errorf("speeds: %+v", rows)
		}
	}
	// Timing simulation must be slower than pure functional emulation.
	if rows[1].GuestMIPS >= rows[0].GuestMIPS {
		t.Errorf("timing (%f) should be slower than functional (%f)",
			rows[1].GuestMIPS, rows[0].GuestMIPS)
	}

	// Depth 0 keeps the original two-row table.
	rows, err = TableSpeed(context.Background(), p, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d with pipeline off, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Obs != nil {
			t.Errorf("%s: counters attached without -obs", r.Config)
		}
	}
}

func TestTableSpeedObs(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	rows, err := TableSpeedObs(context.Background(), p, 0.05, BenchPipelineDepth)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Obs == nil {
			t.Fatalf("%s: no counter snapshot", r.Config)
		}
		if r.Obs.BlockHits+r.Obs.BlockMisses == 0 {
			t.Errorf("%s: no block-cache lookups recorded", r.Config)
		}
	}
	// Counters are per-configuration, and only the pipelined run pushes
	// through the timing pipeline.
	if rows[0].Obs.PipelinePushes != 0 {
		t.Errorf("functional row saw %d pipeline pushes", rows[0].Obs.PipelinePushes)
	}
	if rows[2].Obs.PipelinePushes == 0 {
		t.Error("pipelined row recorded no pipeline pushes")
	}
}

func TestSortRows(t *testing.T) {
	rs := runAll(t)
	fig := Fig4(rs)
	SortRows(fig)
	// INT first, Physics last.
	if fig.Rows[0].Suite != workload.SuiteINT || fig.Rows[30].Suite != workload.SuitePhysics {
		t.Errorf("sort order wrong: %s .. %s", fig.Rows[0].Suite, fig.Rows[30].Suite)
	}
}
