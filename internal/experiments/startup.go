package experiments

import (
	"context"

	darco "darco"
	"darco/internal/controller"
	"darco/internal/guest"
	"darco/internal/timing"
	"darco/internal/workload"
)

// Startup-delay study (§III, "Startup Delay"): the time taken for
// initial translations before executing translated/optimized native
// code dictates the response time of the system — the challenge that
// killed Transmeta Crusoe's interactive feel. This experiment measures
// host cycles to retire the first N guest instructions as the promotion
// thresholds vary: lower thresholds translate earlier (less slow
// interpretation) but spend more cycles translating cold code.

// StartupRow is one threshold configuration's startup measurement.
type StartupRow struct {
	BBThreshold uint32
	SBThreshold uint64
	Cycles      uint64  // host cycles to retire the first N guest insns
	CPGI        float64 // cycles per guest instruction over the window
	IMShare     float64 // fraction of the window interpreted
}

// StartupDelay measures time-to-first-N-instructions across threshold
// configurations on one benchmark.
func StartupDelay(ctx context.Context, p workload.Profile, window uint64, scale float64) ([]StartupRow, error) {
	im, err := p.Scale(scale).Generate()
	if err != nil {
		return nil, err
	}
	configs := []struct {
		bb uint32
		sb uint64
	}{
		{1, 10},    // translate almost immediately
		{5, 100},   // eager
		{10, 300},  // default
		{50, 2000}, // patient (Crusoe-like long interpretation)
	}
	var rows []StartupRow
	for _, c := range configs {
		row, err := startupOne(ctx, im, c.bb, c.sb, window)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func startupOne(ctx context.Context, im *guest.Image, bb uint32, sb uint64, window uint64) (*StartupRow, error) {
	cfg := darco.TimingConfig()
	cfg.TOL.BBThreshold = bb
	cfg.TOL.SBThreshold = sb
	ctl, core, err := attach(im, cfg)
	if err != nil {
		return nil, err
	}
	if err := ctl.RunContext(ctx, window); err != nil {
		return nil, err
	}
	core.AddTOL(ctl.CoD.Overhead.Total())
	st := &ctl.CoD.Stats
	g := st.GuestInsns()
	row := &StartupRow{BBThreshold: bb, SBThreshold: sb, Cycles: core.Stats.Cycles}
	if g > 0 {
		row.CPGI = float64(core.Stats.Cycles) / float64(g)
		row.IMShare = float64(st.GuestInsnsIM) / float64(g)
	}
	return row, nil
}

// attach builds a controller with a timing core wired to the retire
// stream (the facade runs to completion; startup needs budgeted runs).
func attach(im *guest.Image, cfg darco.Config) (*controller.Controller, *timing.Core, error) {
	ctl, err := controller.New(im, controller.Config{TOL: cfg.TOL})
	if err != nil {
		return nil, nil, err
	}
	core := timing.New(*cfg.Timing)
	ctl.CoD.VM.Retire = core.Consume
	return ctl, core, nil
}
