package experiments

import (
	"context"
	"fmt"
	"time"

	darco "darco"
	"darco/internal/workload"
	"darco/obs"
	"darco/perf"
)

// ABClosure builds the in-process closure darco-perf's paired harness
// runs: one full functional-stack run of 429.mcf at the given scale,
// reporting the run's wall/allocation cost and its engine-counter
// delta. The workload image is resolved up front so image construction
// never lands inside a measured repetition. slowdown injects a
// deliberate sleep into every repetition — the harness's built-in
// regression fixture (darco-perf ab -inject-slowdown) proving that a
// real slowdown is called out as one.
func ABClosure(scale float64, slowdown time.Duration) (perf.Closure, error) {
	p, ok := workload.ByName("429.mcf")
	if !ok {
		return nil, fmt.Errorf("experiments: 429.mcf missing from roster")
	}
	im, err := workload.CachedImage(p.Scale(scale))
	if err != nil {
		return nil, err
	}
	return func(ctx context.Context) (perf.Sample, error) {
		ctrs := &obs.EngineCounters{}
		var res *darco.Result
		entry, err := measure(func() error {
			eng, err := darco.NewEngine(darco.WithConfig(darco.DefaultConfig()), darco.WithObsCounters(ctrs))
			if err != nil {
				return err
			}
			res, err = eng.Run(ctx, im)
			if err == nil && slowdown > 0 {
				time.Sleep(slowdown)
			}
			return err
		})
		if err != nil {
			return perf.Sample{}, err
		}
		return perf.Sample{
			Ns:          entry.NsPerOp,
			AllocsPerOp: entry.AllocsPerOp,
			BytesPerOp:  entry.BytesPerOp,
			Counters:    res.Obs,
		}, nil
	}, nil
}
