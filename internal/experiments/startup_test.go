package experiments

import (
	"context"
	"testing"

	"darco/internal/workload"
)

func TestStartupDelay(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	rows, err := StartupDelay(context.Background(), p, 40_000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.Cycles == 0 || r.CPGI <= 0 {
			t.Errorf("config %d/%d produced no measurement", r.BBThreshold, r.SBThreshold)
		}
	}
	// The patient (Crusoe-like) configuration interprets far more of
	// the startup window than the eager one.
	if rows[3].IMShare <= rows[0].IMShare {
		t.Errorf("interpretation share should grow with the threshold: %f vs %f",
			rows[3].IMShare, rows[0].IMShare)
	}
	// And its startup is slower than the best configuration.
	best := rows[0].Cycles
	for _, r := range rows[1:3] {
		if r.Cycles < best {
			best = r.Cycles
		}
	}
	if rows[3].Cycles <= best {
		t.Errorf("long interpretation should hurt startup: %d vs best %d", rows[3].Cycles, best)
	}
}
