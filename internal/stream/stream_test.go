package stream

import (
	"testing"
)

// drainAvailable empties whatever is buffered on sub without blocking.
func drainAvailable(sub *Subscriber) []Event {
	var out []Event
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

// TestDroppedMarkerOnOverflow pins the explicit-loss contract: a
// subscriber that overflows its buffer receives a KindDropped marker
// carrying the gap size as soon as it has room again, instead of a
// silent skip.
func TestDroppedMarkerOnOverflow(t *testing.T) {
	b := NewBroadcaster(0)
	_, sub := b.Subscribe()

	const overflow = 3
	for i := 0; i < SubscriberBuffer+overflow; i++ {
		b.Publish("telemetry", i)
	}
	got := drainAvailable(sub)
	if len(got) != SubscriberBuffer {
		t.Fatalf("buffered %d frames, want %d", len(got), SubscriberBuffer)
	}
	for _, ev := range got {
		if ev.Kind == KindDropped {
			t.Fatal("marker arrived before the subscriber had lost anything it could know about")
		}
	}

	// Room again: the next publish owes the marker first, then itself.
	b.Publish("telemetry", "after")
	got = drainAvailable(sub)
	if len(got) != 2 {
		t.Fatalf("%d frames after recovery, want marker + event", len(got))
	}
	if got[0].Kind != KindDropped {
		t.Fatalf("first frame after recovery is %s, want %s", got[0].Kind, KindDropped)
	}
	if d := got[0].Data.(DroppedEvent); d.Count != overflow {
		t.Fatalf("marker count %d, want %d", d.Count, overflow)
	}
	if got[1].Kind != "telemetry" || got[1].Data != "after" {
		t.Fatalf("second frame after recovery: %+v", got[1])
	}
}

// TestReplayRing pins the late-subscriber contract: the ring replays
// everything while it fits and announces the evicted prefix with a
// dropped marker once it no longer reaches the stream's start.
func TestReplayRing(t *testing.T) {
	const limit = 8
	b := NewBroadcaster(limit)
	for i := 0; i < limit; i++ {
		b.Publish("scenario", i)
	}
	replay, sub := b.Subscribe()
	b.Unsubscribe(sub)
	if len(replay) != limit {
		t.Fatalf("replay of a full-but-unevicted ring: %d frames, want %d", len(replay), limit)
	}
	for i, ev := range replay {
		if ev.Data != i {
			t.Fatalf("replay[%d] = %v, out of publish order", i, ev.Data)
		}
	}

	// Push two frames out of the window.
	b.Publish("scenario", limit)
	b.Publish("scenario", limit+1)
	replay, sub = b.Subscribe()
	b.Unsubscribe(sub)
	if len(replay) != limit+1 {
		t.Fatalf("evicted-ring replay: %d frames, want marker + %d", len(replay), limit)
	}
	if replay[0].Kind != KindDropped || replay[0].Data.(DroppedEvent).Count != 2 {
		t.Fatalf("evicted-ring replay head: %+v", replay[0])
	}
	if replay[1].Data != 2 || replay[len(replay)-1].Data != limit+1 {
		t.Fatalf("evicted-ring replay window: first %v last %v", replay[1].Data, replay[len(replay)-1].Data)
	}

	// Replay survives close (terminal jobs): channel closed, history
	// intact.
	b.Close()
	replay, sub = b.Subscribe()
	if len(replay) != limit+1 {
		t.Fatalf("post-close replay: %d frames", len(replay))
	}
	if _, ok := <-sub.ch; ok {
		t.Fatal("post-close subscription channel not closed")
	}
}

// TestSeededReplay pins the restored-stream path: seeded history
// replays like published history, with the caller's evicted count
// surfacing as a marker.
func TestSeededReplay(t *testing.T) {
	b := NewBroadcaster(4)
	b.Seed([]Event{{Kind: "scenario", Data: "a"}, {Kind: "scenario", Data: "b"}}, 5)
	b.Close()
	replay, _ := b.Subscribe()
	if len(replay) != 3 || replay[0].Kind != KindDropped || replay[0].Data.(DroppedEvent).Count != 5 {
		t.Fatalf("seeded replay: %+v", replay)
	}
	if replay[1].Data != "a" || replay[2].Data != "b" {
		t.Fatalf("seeded replay order: %+v", replay)
	}
}

// TestTransientFramesStayOutOfReplay: PublishTransient frames reach
// live subscribers but are not recorded for late ones.
func TestTransientFramesStayOutOfReplay(t *testing.T) {
	b := NewBroadcaster(8)
	_, live := b.Subscribe()
	b.PublishTransient("state", "running")
	b.Publish("scenario", 0)
	got := drainAvailable(live)
	if len(got) != 2 || got[0].Kind != "state" || got[1].Kind != "scenario" {
		t.Fatalf("live subscriber frames: %+v", got)
	}
	replay, late := b.Subscribe()
	b.Unsubscribe(late)
	if len(replay) != 1 || replay[0].Kind != "scenario" {
		t.Fatalf("replay should hold only the recorded frame: %+v", replay)
	}
}
