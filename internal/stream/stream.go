// Package stream is the event fan-out core shared by the campaign
// daemons: a broadcaster that queues frames to any number of
// subscribers without ever blocking a publisher, a bounded replay ring
// so late subscribers receive the prefix they missed, explicit-loss
// markers for consumers that cannot keep up, and the HTTP framing
// (SSE or NDJSON) both darco-served and darco-sched stream through.
//
// The package deals in opaque frame kinds and payloads; the daemons
// define the wire-visible event vocabulary (state, scenario,
// telemetry) on top. The one kind owned here is KindDropped, the
// loss-marker frame the broadcaster itself emits.
package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// KindDropped is the frame kind of a loss marker: its payload is a
// DroppedEvent carrying how many frames are missing at that point of
// the stream — a subscriber that could not drain fast enough, or a
// replay window that no longer reaches back to the stream's start.
const KindDropped = "dropped"

// DroppedEvent is the payload of a dropped marker.
type DroppedEvent struct {
	Count uint64 `json:"dropped"`
}

// SubscriberBuffer is each subscriber's channel depth. A subscriber
// that cannot drain this many frames loses the newest ones, but the
// loss is explicit: the next frame it receives is a KindDropped marker
// carrying the gap size.
const SubscriberBuffer = 256

// DefaultReplayLimit bounds the replay history when the broadcaster's
// caller does not choose one.
const DefaultReplayLimit = 1024

// Subscriber is one stream consumer: its frame channel plus the count
// of frames dropped since it last kept up, owed to it as a marker.
type Subscriber struct {
	ch      chan Event
	dropped uint64
}

// C is the subscriber's receive channel; it closes when the
// broadcaster closes.
func (s *Subscriber) C() <-chan Event { return s.ch }

// Event is one frame queued for a broadcaster's subscribers.
type Event struct {
	Kind string
	Data any // immutable snapshot, shared across subscribers
}

// Broadcaster fans event frames out to any number of subscribers and
// keeps a bounded replay ring of everything published, so late
// subscribers receive the event prefix they missed instead of joining
// lossily mid-stream. Publishing never blocks on a slow subscriber.
type Broadcaster struct {
	mu     sync.Mutex
	subs   map[*Subscriber]struct{}
	closed bool

	// replay ring: history holds up to limit frames, oldest at start
	// (wrapping once full); evicted counts frames pushed out of the
	// window.
	limit   int
	history []Event
	start   int
	evicted uint64
}

// NewBroadcaster builds a broadcaster whose replay ring holds up to
// replayLimit frames (< 1 selects DefaultReplayLimit).
func NewBroadcaster(replayLimit int) *Broadcaster {
	if replayLimit < 1 {
		replayLimit = DefaultReplayLimit
	}
	return &Broadcaster{subs: make(map[*Subscriber]struct{}), limit: replayLimit}
}

// record pushes ev into the replay ring. Caller holds b.mu.
func (b *Broadcaster) record(ev Event) {
	if len(b.history) < b.limit {
		b.history = append(b.history, ev)
		return
	}
	b.history[b.start] = ev
	b.start = (b.start + 1) % b.limit
	b.evicted++
}

// replay snapshots the ring in publish order, preceded by a dropped
// marker when the window no longer reaches the stream's start. Caller
// holds b.mu.
func (b *Broadcaster) replay() []Event {
	out := make([]Event, 0, len(b.history)+1)
	if b.evicted > 0 {
		out = append(out, Event{Kind: KindDropped, Data: DroppedEvent{Count: b.evicted}})
	}
	out = append(out, b.history[b.start:]...)
	return append(out, b.history[:b.start]...)
}

// Seed pre-populates the replay ring with a restored stream's history;
// evicted is the count of events the caller already knows were trimmed
// before these.
func (b *Broadcaster) Seed(evs []Event, evicted uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.evicted += evicted
	for _, ev := range evs {
		b.record(ev)
	}
}

// Subscribe registers a new subscriber and returns the replay prefix
// it missed plus its live channel. On an already-closed broadcaster
// the channel comes back closed, so the consumer writes the replay and
// its drain loop ends immediately. The snapshot and the registration
// are atomic: no frame is ever in both, and none falls between them.
func (b *Broadcaster) Subscribe() ([]Event, *Subscriber) {
	sub := &Subscriber{ch: make(chan Event, SubscriberBuffer)}
	b.mu.Lock()
	defer b.mu.Unlock()
	replay := b.replay()
	if b.closed {
		close(sub.ch)
		return replay, sub
	}
	b.subs[sub] = struct{}{}
	return replay, sub
}

// Unsubscribe removes sub; safe after Close.
func (b *Broadcaster) Unsubscribe(sub *Subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs, sub)
}

// SubscriberCount reports the open subscription count (for /metrics).
func (b *Broadcaster) SubscriberCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Publish queues one frame to every subscriber and the replay ring. A
// subscriber whose buffer is full misses the frame, but the miss is
// owed to it: the next time its buffer has room it first receives a
// KindDropped marker carrying how many frames it lost.
func (b *Broadcaster) Publish(kind string, data any) {
	b.publish(Event{Kind: kind, Data: data}, true)
}

// PublishTransient queues one frame without recording it in the replay
// ring — for idempotent snapshot frames (job-state transitions) that
// every new stream re-derives anyway, where replaying stale copies
// would only make a late subscriber's view regress.
func (b *Broadcaster) PublishTransient(kind string, data any) {
	b.publish(Event{Kind: kind, Data: data}, false)
}

func (b *Broadcaster) publish(ev Event, record bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if record {
		b.record(ev)
	}
	for sub := range b.subs {
		if sub.dropped > 0 {
			select {
			case sub.ch <- Event{Kind: KindDropped, Data: DroppedEvent{Count: sub.dropped}}:
				sub.dropped = 0
			default:
				sub.dropped++
				continue
			}
		}
		select {
		case sub.ch <- ev:
		default: // slow subscriber: drop rather than stall the publisher
			sub.dropped++
		}
	}
}

// Close ends every subscriber's stream. The replay ring survives, so
// late subscribers still get the history. Publishing after Close is a
// no-op.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		close(sub.ch)
	}
	b.subs = nil
}

// WriteFrame writes one event frame in SSE framing ("event:"/"data:"
// lines and a blank-line terminator) or, when ndjson is set, as one
// {"event":...,"data":...} line.
func WriteFrame(w io.Writer, ndjson bool, kind string, data any) error {
	blob, err := json.Marshal(data)
	if err != nil {
		return err
	}
	if ndjson {
		_, err = fmt.Fprintf(w, "{\"event\":%q,\"data\":%s}\n", kind, blob)
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, blob)
	return err
}

// ServeStream is the HTTP half both daemons share: it streams b's
// frames to the client as SSE (default) or NDJSON (?format=ndjson).
// The stream opens with a fresh stateKind snapshot from state, then
// the replayed prefix the subscriber missed, then live frames; when
// the broadcaster closes, the final state is re-sent — so even a
// consumer whose buffer dropped the transition sees the outcome — and
// the handler returns.
func ServeStream(w http.ResponseWriter, r *http.Request, b *Broadcaster, stateKind string, state func() any) {
	flusher, canFlush := w.(http.Flusher)
	ndjson := r.URL.Query().Get("format") == "ndjson"
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	}
	flush := func() {
		if canFlush {
			flusher.Flush()
		}
	}

	// The replay snapshot and the live registration are atomic in the
	// broadcaster, so no frame is lost or duplicated between them;
	// state frames are idempotent snapshots, so the duplicate a
	// subscribe/transition race can produce is safe.
	replay, sub := b.Subscribe()
	defer b.Unsubscribe(sub)
	if err := WriteFrame(w, ndjson, stateKind, state()); err != nil {
		return
	}
	for _, ev := range replay {
		if err := WriteFrame(w, ndjson, ev.Kind, ev.Data); err != nil {
			return
		}
	}
	flush()
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				WriteFrame(w, ndjson, stateKind, state())
				flush()
				return
			}
			if err := WriteFrame(w, ndjson, ev.Kind, ev.Data); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}
