package darco_test

import (
	"context"
	"errors"
	"testing"
	"time"

	darco "darco"
	"darco/internal/guest"
	"darco/internal/host"
	"darco/internal/power"
	"darco/internal/timing"
	"darco/internal/tol"
	"darco/internal/workload"
)

func TestOptionApplication(t *testing.T) {
	tc := tol.DefaultConfig()
	tc.BBThreshold = 3
	tc.SBThreshold = 77
	tm := timing.DefaultConfig()
	tm.IssueWidth = 4
	eng, err := darco.NewEngine(
		darco.WithTOL(tc),
		darco.WithTiming(tm),
		darco.WithPower(power.DefaultEnergies(), 1500),
		darco.WithValidation(7),
		darco.WithMaxGuestInsns(123456),
		darco.WithCheckInterval(999),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := eng.Config()
	if cfg.TOL.BBThreshold != 3 || cfg.TOL.SBThreshold != 77 {
		t.Errorf("TOL thresholds not applied: %+v", cfg.TOL)
	}
	if cfg.Timing == nil || cfg.Timing.IssueWidth != 4 {
		t.Errorf("timing config not applied: %+v", cfg.Timing)
	}
	if cfg.Power == nil || cfg.FreqMHz != 1500 {
		t.Errorf("power config not applied: power=%v freq=%v", cfg.Power, cfg.FreqMHz)
	}
	if cfg.ValidateEveryNSyncs != 7 {
		t.Errorf("validation interval %d", cfg.ValidateEveryNSyncs)
	}
	if cfg.MaxGuestInsns != 123456 {
		t.Errorf("max guest insns %d", cfg.MaxGuestInsns)
	}
	if eng.CheckInterval() != 999 {
		t.Errorf("check interval %d", eng.CheckInterval())
	}
}

func TestOptionDefaultsMatchDefaultConfig(t *testing.T) {
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	cfg := eng.Config()
	want := darco.DefaultConfig()
	if cfg.TOL.BBThreshold != want.TOL.BBThreshold || cfg.TOL.SBThreshold != want.TOL.SBThreshold ||
		cfg.TOL.CacheSize != want.TOL.CacheSize || cfg.TOL.RunFuel != want.TOL.RunFuel {
		t.Errorf("zero-option engine TOL differs from DefaultConfig")
	}
	if cfg.ValidateEveryNSyncs != want.ValidateEveryNSyncs || cfg.Timing != nil || cfg.Power != nil {
		t.Errorf("zero-option engine config %+v", cfg)
	}
	if eng.CheckInterval() != darco.DefaultCheckInterval {
		t.Errorf("default check interval %d", eng.CheckInterval())
	}
}

func TestEngineImmutableAgainstOptionArgs(t *testing.T) {
	tm := timing.DefaultConfig()
	eng, err := darco.NewEngine(darco.WithTiming(tm), darco.WithPower(power.DefaultEnergies(), 1000))
	if err != nil {
		t.Fatal(err)
	}
	tm.IssueWidth = 99 // mutate the option argument after construction
	if got := eng.Config().Timing.IssueWidth; got == 99 {
		t.Errorf("engine shares timing config with caller")
	}
	cfg := eng.Config()
	cfg.Timing.FetchWidth = 77 // mutate through the returned copy
	cfg.Power.DRAMRead = 1e9
	if eng.Config().Timing.FetchWidth == 77 || eng.Config().Power.DRAMRead == 1e9 {
		t.Errorf("Config() shares pointers with the engine")
	}
	cfg.Timing.LatencyOverride = map[host.Op]int{host.ADD: 42}
	if eng.Config().Timing.LatencyOverride != nil {
		t.Errorf("Config() shares the latency-override map with the engine")
	}
}

func TestEngineConfigLatencyOverrideIsolated(t *testing.T) {
	tm := timing.DefaultConfig()
	tm.LatencyOverride = map[host.Op]int{host.ADD: 7}
	eng, err := darco.NewEngine(darco.WithTiming(tm))
	if err != nil {
		t.Fatal(err)
	}
	eng.Config().Timing.LatencyOverride[host.ADD] = 99
	if got := eng.Config().Timing.LatencyOverride[host.ADD]; got != 7 {
		t.Errorf("latency override mutated through Config(): %d", got)
	}
}

func TestDeprecatedRunLegacyPowerSemantics(t *testing.T) {
	p, _ := workload.ByName("470.lbm")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Power without timing was silently ignored.
	cfg := darco.DefaultConfig()
	e := power.DefaultEnergies()
	cfg.Power = &e
	res, err := darco.Run(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Power != nil {
		t.Error("power attached without timing")
	}
	// Power with timing but zero frequency used the model's default.
	cfg = darco.TimingConfig()
	cfg.Power = &e
	res, err = darco.Run(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Power == nil || res.Power.TotalJ <= 0 {
		t.Errorf("legacy zero-frequency power run broken: %+v", res.Power)
	}
}

func TestPowerRequiresTiming(t *testing.T) {
	if _, err := darco.NewEngine(darco.WithPower(power.DefaultEnergies(), 1000)); err == nil {
		t.Fatal("WithPower without WithTiming should fail")
	}
	if _, err := darco.NewEngine(darco.WithTiming(timing.DefaultConfig()),
		darco.WithPower(power.DefaultEnergies(), 0)); err == nil {
		t.Fatal("WithPower with zero frequency should fail")
	}
}

// endlessLoop is a guest program that runs ~4G instructions: far longer
// than any test budget, so only cancellation stops it.
const endlessLoop = `
.org 0x1000
.entry start
start:
    movri eax, 0
    movri ecx, 0
loop:
    addrr eax, ecx
    inc ecx
    cmpri ecx, 1000000000
    jl loop
    halt
`

func TestSessionCancellationIsPrompt(t *testing.T) {
	im, err := guest.Assemble(endlessLoop)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ses, err := eng.NewSession(im)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	start := time.Now()
	_, err = ses.Run(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// One check interval of guest instructions takes far less than
	// this; anything slower means cancellation is not being observed.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if ses.Done() {
		t.Error("cancelled session reports Done")
	}
	if ses.Err() != nil {
		t.Errorf("cancellation should not be terminal: %v", ses.Err())
	}
	// The partial state is still inspectable.
	if snap := ses.Snapshot(); snap.Stats.GuestInsns() == 0 {
		t.Error("cancelled session retired no instructions")
	}
}

func TestSessionResumesAfterCancellation(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ses, err := eng.NewSession(im)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ses.Run(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	res, err := ses.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !ses.Done() {
		t.Fatal("session not done after resumed run")
	}
	// The resumed run must match a clean one bit for bit.
	ref, err := eng.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != ref.Stats {
		t.Errorf("resumed stats differ:\n%+v\n%+v", res.Stats, ref.Stats)
	}
}

func TestSessionStepAndSnapshotIsolation(t *testing.T) {
	p, _ := workload.ByName("470.lbm")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine(darco.WithTiming(timing.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	ses, err := eng.NewSession(im)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := ses.Step(ctx, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if ses.Done() {
		t.Skip("workload too short for an incremental step")
	}
	g1 := first.Stats.GuestInsns()
	c1 := first.Timing.Cycles
	core1 := first.Core.Stats.Cycles
	if g1 == 0 || c1 == 0 {
		t.Fatalf("first step empty: %d insns, %d cycles", g1, c1)
	}

	// Drive the session to completion; the first snapshot must not move.
	final, err := ses.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.GuestInsns() != g1 || first.Timing.Cycles != c1 || first.Core.Stats.Cycles != core1 {
		t.Errorf("earlier snapshot mutated by later execution: %d/%d cycles now %d/%d",
			c1, core1, first.Timing.Cycles, first.Core.Stats.Cycles)
	}
	if final.Stats.GuestInsns() <= g1 {
		t.Errorf("no forward progress: %d -> %d", g1, final.Stats.GuestInsns())
	}
	if final.Timing.TOLInsns != final.Overhead.Total() {
		t.Errorf("TOL charge %d vs overhead %d", final.Timing.TOLInsns, final.Overhead.Total())
	}

	// Steps after completion return the final result without running.
	again, err := ses.Step(ctx, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats != final.Stats {
		t.Errorf("post-completion step changed stats")
	}
}

func TestSessionMatchesDeprecatedRun(t *testing.T) {
	p, _ := workload.ByName("458.sjeng")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := darco.Run(im, darco.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != ref.Stats || string(res.Output) != string(ref.Output) {
		t.Errorf("Engine.Run and deprecated Run diverge")
	}
}

func TestObserverStreams(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	var bbEvents, sbEvents, validations, syscalls, finals, ticks int
	eng, err := darco.NewEngine(
		darco.WithCheckInterval(10_000),
		darco.WithObserver(darco.ObserverFuncs{
			Translation: func(ev darco.TranslationEvent) {
				switch ev.Kind {
				case darco.TranslationBB:
					bbEvents++
				case darco.TranslationSB:
					sbEvents++
				}
			},
			Sync: func(ev darco.SyncEvent) {
				switch ev.Kind {
				case darco.SyncValidation:
					validations++
				case darco.SyncSyscall:
					syscalls++
				case darco.SyncFinal:
					finals++
				}
			},
			Progress: func(p darco.Progress) { ticks++ },
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(bbEvents) != res.Stats.BBTranslations {
		t.Errorf("BB events %d vs %d translations", bbEvents, res.Stats.BBTranslations)
	}
	if uint64(sbEvents) != res.Stats.SBTranslations {
		t.Errorf("SB events %d vs %d translations", sbEvents, res.Stats.SBTranslations)
	}
	if uint64(validations) != res.Validations {
		t.Errorf("validation events %d vs %d validations", validations, res.Validations)
	}
	if uint64(syscalls) != res.SyscallSyncs {
		t.Errorf("syscall events %d vs %d syncs", syscalls, res.SyscallSyncs)
	}
	if finals != 1 {
		t.Errorf("final events %d", finals)
	}
	if res.Stats.GuestInsns() > 20_000 && ticks == 0 {
		t.Errorf("no progress ticks over %d guest insns", res.Stats.GuestInsns())
	}
}

func TestMaxGuestInsnsIsTerminal(t *testing.T) {
	im, err := guest.Assemble(endlessLoop)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine(darco.WithMaxGuestInsns(20_000))
	if err != nil {
		t.Fatal(err)
	}
	ses, err := eng.NewSession(im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Run(context.Background()); err == nil {
		t.Fatal("runaway guest not aborted")
	}
	if ses.Err() == nil {
		t.Fatal("instruction-limit abort should be terminal")
	}
	if _, err := ses.Step(context.Background(), 1); err == nil {
		t.Fatal("terminal session accepted another step")
	}
}
