package darco_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	darco "darco"
	"darco/internal/workload"
)

func TestSuiteScenariosCoverRoster(t *testing.T) {
	scs := darco.SuiteScenarios(0.5)
	suites := workload.Suites()
	if len(scs) != len(suites) {
		t.Fatalf("%d scenarios for %d profiles", len(scs), len(suites))
	}
	for i, sc := range scs {
		if sc.Name != suites[i].Name || sc.Scale != 0.5 {
			t.Errorf("scenario %d: %q scale %v", i, sc.Name, sc.Scale)
		}
	}
}

// TestCampaignParallelMatchesSerial is the determinism acceptance test:
// the full workload roster executed on a parallel worker pool must
// produce per-scenario statistics identical to a serial execution.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	scs := darco.SuiteScenarios(0.03)

	serial, err := eng.RunCampaign(ctx, scs, darco.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := eng.RunCampaign(ctx, scs, darco.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Parallelism != 1 || parallel.Parallelism != 8 {
		t.Fatalf("pool widths %d / %d", serial.Parallelism, parallel.Parallelism)
	}
	if len(serial.Results) != len(scs) || len(parallel.Results) != len(scs) {
		t.Fatalf("result counts %d / %d", len(serial.Results), len(parallel.Results))
	}
	for i := range scs {
		s, p := &serial.Results[i], &parallel.Results[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s: serial err %v, parallel err %v", scs[i].Name, s.Err, p.Err)
		}
		if s.Scenario.Name != p.Scenario.Name {
			t.Fatalf("result order diverged at %d: %q vs %q", i, s.Scenario.Name, p.Scenario.Name)
		}
		if s.Result.Stats != p.Result.Stats {
			t.Errorf("%s: stats differ between serial and parallel execution:\n%+v\n%+v",
				scs[i].Name, s.Result.Stats, p.Result.Stats)
		}
		if string(s.Result.Output) != string(p.Result.Output) {
			t.Errorf("%s: outputs differ between serial and parallel execution", scs[i].Name)
		}
	}
}

func TestCampaignFailFast(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	mk := func(name string, opts ...darco.Option) darco.Scenario {
		return darco.Scenario{Name: name, Profile: p, Scale: 0.05, Options: opts}
	}
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	scs := []darco.Scenario{
		mk("doomed", darco.WithMaxGuestInsns(1000)), // aborts almost immediately
		mk("second"),
		mk("third"),
	}
	rep, err := eng.RunCampaign(context.Background(), scs,
		darco.WithParallelism(1), darco.WithFailFast())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Err == nil {
		t.Fatal("doomed scenario did not fail")
	}
	if !strings.Contains(rep.Results[0].Err.Error(), "doomed") {
		t.Errorf("error not labelled with scenario name: %v", rep.Results[0].Err)
	}
	if rep.Results[2].Err == nil || !errors.Is(rep.Results[2].Err, context.Canceled) {
		t.Errorf("fail-fast did not cancel pending scenarios: %v", rep.Results[2].Err)
	}
	if rep.Err() == nil {
		t.Error("report hides the failures")
	}
	if len(rep.Failed()) < 2 {
		t.Errorf("failed count %d", len(rep.Failed()))
	}
}

func TestCampaignCollectErrorsPolicy(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	scs := []darco.Scenario{
		{Name: "doomed", Profile: p, Scale: 0.05, Options: []darco.Option{darco.WithMaxGuestInsns(1000)}},
		{Name: "fine", Profile: p, Scale: 0.05},
	}
	rep, err := eng.RunCampaign(context.Background(), scs, darco.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Err == nil {
		t.Error("doomed scenario did not fail")
	}
	if rep.Results[1].Err != nil {
		t.Errorf("collect-errors policy cancelled a healthy scenario: %v", rep.Results[1].Err)
	}
	if rep.Results[1].Result == nil || rep.Results[1].Result.Stats.GuestInsns() == 0 {
		t.Error("healthy scenario produced no result")
	}
	if rep.Results[1].Wall <= 0 {
		t.Error("scenario wall time not recorded")
	}
	if rep.SerialWall() <= 0 {
		t.Error("serial-equivalent wall empty")
	}
}

func TestCampaignScenarioTimeout(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	scs := []darco.Scenario{{Name: "slow", Profile: p, Scale: 2}}
	rep, err := eng.RunCampaign(context.Background(), scs,
		darco.WithScenarioTimeout(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rep.Results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", rep.Results[0].Err)
	}
}

func TestCampaignParentCancellation(t *testing.T) {
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := eng.RunCampaign(ctx, darco.SuiteScenarios(0.05), darco.WithParallelism(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil || len(rep.Results) != len(workload.Suites()) {
		t.Fatal("report missing after parent cancellation")
	}
}

func TestCampaignReportFormat(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.RunCampaign(context.Background(),
		[]darco.Scenario{{Name: "429.mcf", Profile: p, Scale: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Format()
	for _, want := range []string{"scenario", "429.mcf", "workers", "0 failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
