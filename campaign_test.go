package darco_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	darco "darco"
	"darco/internal/power"
	"darco/internal/workload"
)

func TestSuiteScenariosCoverRoster(t *testing.T) {
	scs := darco.SuiteScenarios(0.5)
	suites := workload.Suites()
	if len(scs) != len(suites) {
		t.Fatalf("%d scenarios for %d profiles", len(scs), len(suites))
	}
	for i, sc := range scs {
		if sc.Name != suites[i].Name || sc.Scale != 0.5 {
			t.Errorf("scenario %d: %q scale %v", i, sc.Name, sc.Scale)
		}
	}
}

// TestCampaignParallelMatchesSerial is the determinism acceptance test:
// the full workload roster executed on a parallel worker pool must
// produce per-scenario statistics identical to a serial execution.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	scs := darco.SuiteScenarios(0.03)

	serial, err := eng.RunCampaign(ctx, scs, darco.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := eng.RunCampaign(ctx, scs, darco.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Parallelism != 1 || parallel.Parallelism != 8 {
		t.Fatalf("pool widths %d / %d", serial.Parallelism, parallel.Parallelism)
	}
	if len(serial.Results) != len(scs) || len(parallel.Results) != len(scs) {
		t.Fatalf("result counts %d / %d", len(serial.Results), len(parallel.Results))
	}
	for i := range scs {
		s, p := &serial.Results[i], &parallel.Results[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s: serial err %v, parallel err %v", scs[i].Name, s.Err, p.Err)
		}
		if s.Scenario.Name != p.Scenario.Name {
			t.Fatalf("result order diverged at %d: %q vs %q", i, s.Scenario.Name, p.Scenario.Name)
		}
		if s.Result.Stats != p.Result.Stats {
			t.Errorf("%s: stats differ between serial and parallel execution:\n%+v\n%+v",
				scs[i].Name, s.Result.Stats, p.Result.Stats)
		}
		if string(s.Result.Output) != string(p.Result.Output) {
			t.Errorf("%s: outputs differ between serial and parallel execution", scs[i].Name)
		}
	}
}

func TestCampaignFailFast(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	mk := func(name string, opts ...darco.Option) darco.Scenario {
		return darco.Scenario{Name: name, Profile: p, Scale: 0.05, Options: opts}
	}
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	scs := []darco.Scenario{
		mk("doomed", darco.WithMaxGuestInsns(1000)), // aborts almost immediately
		mk("second"),
		mk("third"),
	}
	rep, err := eng.RunCampaign(context.Background(), scs,
		darco.WithParallelism(1), darco.WithFailFast())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Err == nil {
		t.Fatal("doomed scenario did not fail")
	}
	if !strings.Contains(rep.Results[0].Err.Error(), "doomed") {
		t.Errorf("error not labelled with scenario name: %v", rep.Results[0].Err)
	}
	if rep.Results[2].Err == nil || !errors.Is(rep.Results[2].Err, context.Canceled) {
		t.Errorf("fail-fast did not cancel pending scenarios: %v", rep.Results[2].Err)
	}
	if rep.Err() == nil {
		t.Error("report hides the failures")
	}
	if len(rep.Failed()) < 2 {
		t.Errorf("failed count %d", len(rep.Failed()))
	}
}

func TestCampaignCollectErrorsPolicy(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	scs := []darco.Scenario{
		{Name: "doomed", Profile: p, Scale: 0.05, Options: []darco.Option{darco.WithMaxGuestInsns(1000)}},
		{Name: "fine", Profile: p, Scale: 0.05},
	}
	rep, err := eng.RunCampaign(context.Background(), scs, darco.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Err == nil {
		t.Error("doomed scenario did not fail")
	}
	if rep.Results[1].Err != nil {
		t.Errorf("collect-errors policy cancelled a healthy scenario: %v", rep.Results[1].Err)
	}
	if rep.Results[1].Result == nil || rep.Results[1].Result.Stats.GuestInsns() == 0 {
		t.Error("healthy scenario produced no result")
	}
	if rep.Results[1].Wall <= 0 {
		t.Error("scenario wall time not recorded")
	}
	if rep.SerialWall() <= 0 {
		t.Error("serial-equivalent wall empty")
	}
}

func TestCampaignScenarioTimeout(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	scs := []darco.Scenario{{Name: "slow", Profile: p, Scale: 2}}
	rep, err := eng.RunCampaign(context.Background(), scs,
		darco.WithScenarioTimeout(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rep.Results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", rep.Results[0].Err)
	}
}

func TestCampaignParentCancellation(t *testing.T) {
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := eng.RunCampaign(ctx, darco.SuiteScenarios(0.05), darco.WithParallelism(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil || len(rep.Results) != len(workload.Suites()) {
		t.Fatal("report missing after parent cancellation")
	}
}

// TestCampaignMidRunCancellation pins the contract the serve daemon's
// cancel endpoint depends on: cancelling the campaign context while
// scenarios are in flight stops the queued remainder promptly, and
// context.Canceled surfaces both from RunCampaign and from the
// report's joined scenario errors.
func TestCampaignMidRunCancellation(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	scs := make([]darco.Scenario, 6)
	for i := range scs {
		scs[i] = darco.Scenario{Name: p.Name, Profile: p, Scale: 0.05}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first := true
	rep, err := eng.RunCampaign(ctx, scs,
		darco.WithParallelism(1),
		darco.WithScenarioDone(func(i int, sr *darco.ScenarioResult) {
			if first {
				first = false
				cancel() // cancel mid-campaign, after the first scenario lands
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCampaign returned %v, want context.Canceled", err)
	}
	if !errors.Is(rep.Err(), context.Canceled) {
		t.Fatalf("report.Err() = %v, does not surface context.Canceled", rep.Err())
	}
	if rep.Results[0].Err != nil {
		t.Errorf("scenario completed before the cancel was marked failed: %v", rep.Results[0].Err)
	}
	for i := 1; i < len(scs); i++ {
		if !errors.Is(rep.Results[i].Err, context.Canceled) {
			t.Errorf("queued scenario %d not stopped by cancellation: %v", i, rep.Results[i].Err)
		}
	}
}

func TestCampaignScenarioSessionHook(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	scs := []darco.Scenario{
		{Name: "a", Profile: p, Scale: 0.05},
		{Name: "broken", Profile: p, Scale: 0.05,
			// Power without timing fails engine derivation, so no
			// session ever exists for this scenario.
			Options: []darco.Option{darco.WithPower(power.DefaultEnergies(), 1000)}},
		{Name: "c", Profile: p, Scale: 0.05},
	}
	var mu sync.Mutex
	retires := make(map[int]uint64)
	var secondHook int
	rep, err := eng.RunCampaign(context.Background(), scs, darco.WithParallelism(2),
		darco.WithScenarioSession(func(i int, sc *darco.Scenario, s *darco.Session) {
			// Hooks run concurrently on worker goroutines; the sink runs
			// on this scenario's session goroutine only.
			s.SubscribeRetires(func(b darco.RetireBatch) {
				mu.Lock()
				retires[i] += uint64(len(b.Events))
				mu.Unlock()
			})
		}),
		// The option composes: both hooks must fire for every session.
		darco.WithScenarioSession(func(i int, sc *darco.Scenario, s *darco.Session) {
			mu.Lock()
			secondHook++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[1].Err == nil {
		t.Fatal("broken scenario unexpectedly succeeded")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := retires[1]; ok {
		t.Error("session hook fired for a scenario whose engine derivation failed")
	}
	if secondHook != 2 {
		t.Errorf("composed session hook fired %d times, want 2", secondHook)
	}
	for _, i := range []int{0, 2} {
		if retires[i] == 0 {
			t.Errorf("scenario %d: session hook attached no live retire stream (0 events)", i)
		}
		if want := rep.Results[i].Result.HostAppInsns; retires[i] != want {
			t.Errorf("scenario %d: streamed %d retires, result reports %d host app insns", i, retires[i], want)
		}
	}
}

func TestCampaignReportFormat(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.RunCampaign(context.Background(),
		[]darco.Scenario{{Name: "429.mcf", Profile: p, Scale: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Format()
	for _, want := range []string{"scenario", "429.mcf", "workers", "0 failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
