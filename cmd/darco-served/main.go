// Command darco-served runs the DARCO campaign daemon: a long-running
// HTTP service that accepts campaign submissions, executes them on a
// bounded job queue and worker pool, streams live telemetry, and
// serves results in every export format.
//
// Usage:
//
//	darco-served -addr :8080
//	darco-served -addr :8080 -workers 2 -queue 32 -max-par 8
//	darco-served -addr :8080 -data /var/lib/darco
//
// Quickstart against a running daemon:
//
//	curl -s localhost:8080/api/v1/jobs -d '{"suite":{"scale":0.1}}'
//	curl -s localhost:8080/api/v1/jobs/job-1
//	curl -N localhost:8080/api/v1/jobs/job-1/events
//	curl -s localhost:8080/api/v1/jobs/job-1/export.csv
//
// With -data, every job's lifecycle is journaled to the durable
// campaign store in that directory: restarting the daemon over the
// same directory restores finished jobs (exports byte-identical to
// the pre-restart daemon's), re-queues jobs that were still waiting,
// and marks jobs that were mid-run as interrupted with their partial
// results preserved. -fsync picks the journal durability policy.
//
// SIGINT/SIGTERM shut the daemon down gracefully: submissions are
// rejected, running campaigns are cancelled, and the process exits
// once the workers drain (bounded by -grace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	darco "darco"
	"darco/serve"
	"darco/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 1, "concurrent campaign jobs")
		queue   = flag.Int("queue", 16, "job queue capacity (waiting jobs beyond it get 429)")
		maxPar  = flag.Int("max-par", 0, "per-job scenario parallelism cap (0 = GOMAXPROCS)")
		maxScen = flag.Int("max-scenarios", 0, "max scenarios per submission (0 = unlimited)")
		data    = flag.String("data", "", "durable store directory (empty = in-memory only)")
		fsync   = flag.String("fsync", "lifecycle", "journal fsync policy with -data: lifecycle, always or none")
		grace   = flag.Duration("grace", 30*time.Second, "graceful-shutdown budget")
		id      = flag.String("worker-id", "", "worker id reported in /healthz (default <hostname>-<pid>)")
		version = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("darco-served", darco.Version)
		return
	}

	logger := log.New(os.Stderr, "darco-served: ", log.LstdFlags)
	opts := serve.Options{
		Workers:        *workers,
		QueueCapacity:  *queue,
		MaxParallelism: *maxPar,
		MaxScenarios:   *maxScen,
		WorkerID:       *id,
		Logf:           logger.Printf,
	}
	if *data != "" {
		policy, err := fsyncPolicy(*fsync)
		if err != nil {
			logger.Fatal(err)
		}
		st, err := store.Open(*data, store.Options{Sync: policy, Logf: logger.Printf})
		if err != nil {
			logger.Fatalf("open store: %v", err)
		}
		defer st.Close()
		logger.Printf("store %s recovered: %s", *data, st.Recovery())
		opts.Store = st
	}
	srv := serve.New(opts)
	hs := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (%d workers, queue %d)", *addr, *workers, *queue)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("shutting down (grace %s)...", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain the job machinery first: cancelling the jobs is what ends
	// any open /events streams, and http.Server.Shutdown waits for
	// exactly those connections. New submissions get 503 meanwhile.
	// The store (the deferred Close above) outlives the drain, so the
	// cancelled jobs' terminal records reach the journal.
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Fatalf("job shutdown: %v", err)
	}
	if err := hs.Shutdown(shutCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("serve: %v", err)
	}
	fmt.Fprintln(os.Stderr, "darco-served: bye")
}

func fsyncPolicy(name string) (store.SyncPolicy, error) {
	switch name {
	case "lifecycle":
		return store.SyncLifecycle, nil
	case "always":
		return store.SyncAlways, nil
	case "none":
		return store.SyncNone, nil
	}
	return 0, fmt.Errorf("unknown -fsync policy %q (lifecycle, always or none)", name)
}
