// Command darco-served runs the DARCO campaign daemon: a long-running
// HTTP service that accepts campaign submissions, executes them on a
// bounded job queue and worker pool, streams live telemetry, and
// serves results in every export format.
//
// Usage:
//
//	darco-served -addr :8080
//	darco-served -addr :8080 -workers 2 -queue 32 -max-par 8
//	darco-served -addr :8080 -data /var/lib/darco
//
// Quickstart against a running daemon:
//
//	curl -s localhost:8080/api/v1/jobs -d '{"suite":{"scale":0.1}}'
//	curl -s localhost:8080/api/v1/jobs/job-1
//	curl -N localhost:8080/api/v1/jobs/job-1/events
//	curl -s localhost:8080/api/v1/jobs/job-1/export.csv
//	curl -s localhost:8080/api/v1/jobs/job-1/trace
//	curl -s localhost:8080/metrics
//
// With -data, every job's lifecycle is journaled to the durable
// campaign store in that directory: restarting the daemon over the
// same directory restores finished jobs (exports byte-identical to
// the pre-restart daemon's), re-queues jobs that were still waiting,
// and marks jobs that were mid-run as interrupted with their partial
// results preserved. -fsync picks the journal durability policy.
//
// -pprof mounts Go's net/http/pprof profiling handlers under
// /debug/pprof/ on the same listener (off by default: the handlers
// expose goroutine dumps and CPU profiles, so enable them only where
// the listener is trusted).
//
// SIGINT/SIGTERM shut the daemon down gracefully: submissions are
// rejected, running campaigns are cancelled, and the process exits
// once the workers drain (bounded by -grace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	darco "darco"
	"darco/obs"
	"darco/serve"
	"darco/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 1, "concurrent campaign jobs")
		queue   = flag.Int("queue", 16, "job queue capacity (waiting jobs beyond it get 429)")
		maxPar  = flag.Int("max-par", 0, "per-job scenario parallelism cap (0 = GOMAXPROCS)")
		maxScen = flag.Int("max-scenarios", 0, "max scenarios per submission (0 = unlimited)")
		data    = flag.String("data", "", "durable store directory (empty = in-memory only)")
		fsync   = flag.String("fsync", "lifecycle", "journal fsync policy with -data: lifecycle, always or none")
		grace   = flag.Duration("grace", 30*time.Second, "graceful-shutdown budget")
		id      = flag.String("worker-id", "", "worker id reported in /healthz (default <hostname>-<pid>)")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		version = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("darco-served", darco.Version)
		return
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("daemon", "darco-served")
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	opts := serve.Options{
		Workers:        *workers,
		QueueCapacity:  *queue,
		MaxParallelism: *maxPar,
		MaxScenarios:   *maxScen,
		WorkerID:       *id,
		Log:            logger,
	}
	if *data != "" {
		policy, err := fsyncPolicy(*fsync)
		if err != nil {
			fatal("bad flag", "err", err)
		}
		sm := &store.Metrics{
			AppendSeconds: obs.NewHistogram(obs.ExpBuckets(1e-6, 4, 10)),
			FsyncSeconds:  obs.NewHistogram(obs.ExpBuckets(1e-6, 4, 10)),
		}
		st, err := store.Open(*data, store.Options{
			Sync:    policy,
			Metrics: sm,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...), "component", "store")
			},
		})
		if err != nil {
			fatal("open store failed", "dir", *data, "err", err)
		}
		defer st.Close()
		logger.Info("store recovered", "dir", *data, "recovery", st.Recovery().String())
		opts.Store = st
		opts.StoreMetrics = sm
	}
	srv := serve.New(opts)
	hs := &http.Server{Addr: *addr, Handler: withPprof(*pprofOn, srv)}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queue, "pprof", *pprofOn)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("listen failed", "err", err)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "grace", grace.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain the job machinery first: cancelling the jobs is what ends
	// any open /events streams, and http.Server.Shutdown waits for
	// exactly those connections. New submissions get 503 meanwhile.
	// The store (the deferred Close above) outlives the drain, so the
	// cancelled jobs' terminal records reach the journal.
	if err := srv.Shutdown(shutCtx); err != nil {
		fatal("job shutdown failed", "err", err)
	}
	if err := hs.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("serve", "err", err)
	}
	logger.Info("bye")
}

// withPprof wraps the daemon handler with Go's pprof endpoints when
// enabled. Explicit handler registrations on a private mux — importing
// net/http/pprof's DefaultServeMux side effects would mount the
// handlers even with the flag off.
func withPprof(enabled bool, h http.Handler) http.Handler {
	if !enabled {
		return h
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

func fsyncPolicy(name string) (store.SyncPolicy, error) {
	switch name {
	case "lifecycle":
		return store.SyncLifecycle, nil
	case "always":
		return store.SyncAlways, nil
	case "none":
		return store.SyncNone, nil
	}
	return 0, fmt.Errorf("unknown -fsync policy %q (lifecycle, always or none)", name)
}
