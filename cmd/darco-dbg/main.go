// Command darco-dbg demonstrates DARCO's debug toolchain (§V-D): it runs
// a workload in lockstep with the authoritative emulator, validating the
// co-designed state after every TOL dispatch. With -inject it plants a
// translator bug (an Add corrupted into a Sub in large regions) and the
// debugger pinpoints the faulty region and the pipeline stage.
//
// Usage:
//
//	darco-dbg -bench 429.mcf -scale 0.05            # clean lockstep run
//	darco-dbg -bench 429.mcf -scale 0.05 -inject    # find the planted bug
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	darco "darco"
	"darco/internal/controller"
	"darco/internal/debug"
	"darco/internal/ir"
	"darco/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "429.mcf", "named workload to debug")
		scale     = flag.Float64("scale", 0.05, "workload scale factor (lockstep is slow)")
		inject    = flag.Bool("inject", false, "plant a translator bug to find")
		minLen    = flag.Int("inject-minlen", 40, "minimum region size the planted bug corrupts")
		listing   = flag.Bool("listing", false, "print the faulty region's IR and host code")
		version   = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("darco-dbg", darco.Version)
		return
	}

	p, ok := workload.ByName(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "darco-dbg: unknown workload %q\n", *benchName)
		os.Exit(1)
	}
	im, err := p.Scale(*scale).Generate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "darco-dbg: %v\n", err)
		os.Exit(1)
	}

	cfg := controller.DefaultConfig()
	if *inject {
		cfg.TOL.MutateRegion = func(r *ir.Region) {
			if len(r.Code) < *minLen {
				return
			}
			for i := range r.Code {
				in := &r.Code[i]
				if in.Op == ir.Add && in.A != 0 && in.B != 0 {
					in.Op = ir.Sub
					return
				}
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := debug.LocateContext(ctx, im, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "darco-dbg: %v\n", err)
		os.Exit(1)
	}
	if rep == nil {
		fmt.Println("lockstep run clean: every dispatch validated against the authoritative state")
		return
	}
	fmt.Println(rep)
	if *listing {
		fmt.Println(rep.Listing)
	}
	os.Exit(2)
}
