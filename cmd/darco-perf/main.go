// Command darco-perf is the repository's performance-observability
// tool: it answers "did this change make DARCO slower?" with evidence
// instead of cross-machine wall-clock folklore.
//
// Usage:
//
//	darco-perf ab                        # paired self-vs-self (must be inconclusive)
//	darco-perf ab -quick                 # CI-sized self-test
//	darco-perf ab -inject-slowdown 30ms  # fixture: must report "slower"
//	darco-perf ab -baseline v1.2.0       # paired A/B vs a git ref (worktree build)
//	darco-perf ab -baseline BENCH_4.json # snapshot baseline: deterministic gate compare
//	darco-perf gate -baseline BENCH_4.json [-candidate cand.json]
//	darco-perf trend -dir . -o perf-trend.html
//
// ab runs the paired interleaved harness: baseline and candidate
// repetitions alternate on the same machine (B,C / C,B / ...), so slow
// machine drift cancels out of the paired differences; the verdict —
// faster / slower / inconclusive — comes from a two-sided sign test
// plus a minimum-effect guard. A git-ref baseline is checked out into
// a temporary worktree and both trees run `go test -bench` alternately;
// with no -baseline the candidate is the tree itself (self-vs-self),
// which must land inconclusive on a healthy machine.
//
// gate compares a candidate BENCH snapshot (or a fresh in-process
// measurement) against a committed baseline snapshot: deterministic
// engine counters and Stats-derived figure metrics must match exactly,
// allocs/op within a small tolerance, while wall time is advisory —
// across machines raw ns/op is drift, not evidence. Exits 1 on failure.
//
// trend renders the committed BENCH_<n>.json history as a static HTML
// dashboard: per-bench wall and allocation series against a noise band,
// counter hit-rate series, and gate-verdict annotations.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	darco "darco"
	"darco/internal/experiments"
	"darco/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	switch os.Args[1] {
	case "ab":
		err = cmdAB(ctx, os.Args[2:])
	case "gate":
		err = cmdGate(ctx, os.Args[2:])
	case "trend":
		err = cmdTrend(os.Args[2:])
	case "-version", "version":
		fmt.Println("darco-perf", darco.Version)
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "darco-perf: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: darco-perf <command> [flags]

commands:
  ab      paired interleaved A/B comparison (self, git ref, or snapshot baseline)
  gate    deterministic regression gate against a committed BENCH snapshot
  trend   render the BENCH_<n>.json history as a static HTML dashboard

run "darco-perf <command> -h" for the command's flags`)
}

// errGateFailed distinguishes "the gate said no" (exit 1, report
// already printed) from operational errors.
var errGateFailed = fmt.Errorf("gate failed")

func cmdAB(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ab", flag.ExitOnError)
	var (
		baseline  = fs.String("baseline", "", "baseline: a git ref (paired worktree A/B) or a BENCH_<n>.json (gate compare); empty = self-vs-self")
		candidate = fs.String("candidate", ".", "candidate tree (git-ref mode); \".\" is the working tree")
		benchName = fs.String("bench", "TableSpeedFunctional", "benchmark to pair in git-ref mode (without the Benchmark prefix)")
		scale     = fs.Float64("scale", 0.5, "workload scale for in-process repetitions")
		reps      = fs.Int("reps", 10, "measured interleaved pairs")
		warmup    = fs.Int("warmup", 1, "unmeasured warmup pairs")
		alpha     = fs.Float64("alpha", 0.05, "sign-test significance level")
		minEffect = fs.Float64("min-effect", 0.02, "minimum |median ratio - 1| to call a verdict")
		quick     = fs.Bool("quick", false, "CI-sized self-test: scale 0.1, 7 reps, 5% effect floor")
		slowdown  = fs.Duration("inject-slowdown", 0, "inject a sleep into every candidate repetition (harness self-test fixture)")
	)
	fs.Parse(args)
	if *quick {
		// 7 reps keeps a clean sweep significant (the sign test needs 6)
		// with one repetition of slack; the 5% effect floor keeps tiny
		// scheduling ripples from ever crossing the verdict line in CI.
		*scale, *reps, *minEffect = 0.1, 7, 0.05
	}
	opt := perf.ABOptions{Warmup: *warmup, Reps: *reps, Alpha: *alpha, MinEffect: *minEffect}

	// Snapshot baseline: a BENCH file is data, not runnable code, so a
	// paired run is impossible — fall through to the deterministic gate
	// comparison, which is the honest subset.
	if strings.HasSuffix(*baseline, ".json") {
		fmt.Fprintln(os.Stderr, "baseline is a snapshot: paired A/B needs runnable code; comparing deterministic signals instead (wall advisory)")
		return gateAgainst(ctx, *baseline, "", perf.GatePolicy{}, false)
	}

	var base, cand perf.Closure
	var err error
	if *baseline == "" {
		// Self-vs-self: both arms are this tree. The only way the
		// verdict moves off inconclusive is the injected fixture.
		base, err = experiments.ABClosure(*scale, 0)
		if err != nil {
			return err
		}
		cand, err = experiments.ABClosure(*scale, *slowdown)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "paired self-vs-self at scale %.2f: %d warmup + %d measured pairs\n", *scale, opt.Warmup, opt.Reps)
	} else {
		baseDir, cleanup, err := worktreeFor(ctx, *baseline)
		if err != nil {
			return err
		}
		defer cleanup()
		candDir := *candidate
		if st, statErr := os.Stat(candDir); statErr != nil || !st.IsDir() {
			candDir, cleanup, err = worktreeFor(ctx, *candidate)
			if err != nil {
				return err
			}
			defer cleanup()
		}
		base = goBenchClosure(baseDir, *benchName)
		cand = goBenchClosure(candDir, *benchName)
		fmt.Fprintf(os.Stderr, "paired A/B: baseline %s vs candidate %s on Benchmark%s, %d warmup + %d measured pairs\n",
			*baseline, *candidate, *benchName, opt.Warmup, opt.Reps)
	}

	res, err := perf.RunAB(ctx, base, cand, opt)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

// worktreeFor checks a git ref out into a temporary worktree and
// returns its path plus a cleanup func.
func worktreeFor(ctx context.Context, ref string) (string, func(), error) {
	dir, err := os.MkdirTemp("", "darco-perf-ab-*")
	if err != nil {
		return "", nil, err
	}
	add := exec.CommandContext(ctx, "git", "worktree", "add", "--detach", dir, ref)
	add.Stderr = os.Stderr
	if err := add.Run(); err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("checking out baseline %q: %w", ref, err)
	}
	cleanup := func() {
		rm := exec.Command("git", "worktree", "remove", "--force", dir)
		if rm.Run() != nil {
			os.RemoveAll(dir)
		}
	}
	return dir, cleanup, nil
}

// goBenchClosure runs one unscaled repetition of a root benchmark in
// dir via `go test -benchtime 1x` and parses its cost. The first call
// pays the build; RunAB's warmup pairs absorb it.
func goBenchClosure(dir, bench string) perf.Closure {
	pattern := "^Benchmark" + regexp.QuoteMeta(bench) + "$"
	return func(ctx context.Context) (perf.Sample, error) {
		cmd := exec.CommandContext(ctx, "go", "test", "-run", "^$",
			"-bench", pattern, "-benchtime", "1x", "-count", "1", "-benchmem", ".")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			return perf.Sample{}, fmt.Errorf("go test in %s: %v\n%s", dir, err, out)
		}
		return parseGoBench(string(out), bench)
	}
}

// parseGoBench extracts ns/op, B/op and allocs/op from `go test -bench`
// output.
func parseGoBench(out, bench string) (perf.Sample, error) {
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "Benchmark"+bench) {
			continue
		}
		var s perf.Sample
		f := strings.Fields(line)
		for i := 1; i < len(f); i++ {
			v, err := strconv.ParseFloat(f[i-1], 64)
			if err != nil {
				continue
			}
			switch f[i] {
			case "ns/op":
				s.Ns = v
			case "B/op":
				s.BytesPerOp = v
			case "allocs/op":
				s.AllocsPerOp = v
			}
		}
		if s.Ns > 0 {
			return s, nil
		}
	}
	return perf.Sample{}, fmt.Errorf("no Benchmark%s result in go test output:\n%s", bench, out)
}

func cmdGate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	var (
		baseline  = fs.String("baseline", "", "baseline BENCH_<n>.json (required)")
		candidate = fs.String("candidate", "", "candidate BENCH_<n>.json; empty = measure this tree in-process at the baseline's scale")
		wallRatio = fs.Float64("wall-ratio", 1.5, "advisory candidate/baseline wall ratio")
		allocTol  = fs.Float64("alloc-tol", 0.01, "fractional allocs/op growth tolerated")
		strict    = fs.Bool("strict-wall", false, "promote wall-ratio breaches to hard failures (same-machine gating)")
		verbose   = fs.Bool("v", false, "print every check, not just failures and advisories")
	)
	fs.Parse(args)
	if *baseline == "" {
		return fmt.Errorf("gate: -baseline is required (the committed BENCH_<n>.json to gate against)")
	}
	pol := perf.GatePolicy{WallRatio: *wallRatio, AllocTol: *allocTol, StrictWall: *strict}
	return gateAgainst(ctx, *baseline, *candidate, pol, *verbose)
}

// gateAgainst loads the baseline snapshot, obtains the candidate
// (reading a file or measuring in-process), and prints the gate report.
func gateAgainst(ctx context.Context, basePath, candPath string, pol perf.GatePolicy, verbose bool) error {
	base, err := perf.ReadSnapshot(basePath)
	if err != nil {
		return err
	}
	var cand *perf.Snapshot
	if candPath != "" {
		if cand, err = perf.ReadSnapshot(candPath); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(os.Stderr, "measuring candidate in-process at scale %.2f (baseline %s)...\n", base.Scale, filepath.Base(basePath))
		start := time.Now()
		if cand, err = experiments.CollectBenchSnapshot(ctx, base.Scale); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "measured in %s\n", time.Since(start).Round(time.Millisecond))
	}
	r := perf.Gate(base, cand, pol)
	fmt.Print(r.Format(verbose))
	if !r.Pass() {
		return errGateFailed
	}
	return nil
}

func cmdTrend(args []string) error {
	fs := flag.NewFlagSet("trend", flag.ExitOnError)
	var (
		dir = fs.String("dir", ".", "directory holding the BENCH_<n>.json history")
		out = fs.String("o", "perf-trend.html", "output HTML path")
	)
	fs.Parse(args)
	hist, err := perf.LoadHistory(*dir)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := perf.WriteTrend(f, hist); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d snapshots)\n", *out, len(hist))
	return nil
}
