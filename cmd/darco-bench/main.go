// Command darco-bench regenerates the paper's evaluation (§VI): the
// emulation/simulation speed table, Figs. 4–7, and the warm-up case
// study. The 31-benchmark roster runs as a parallel campaign on a
// bounded worker pool; each experiment prints the same rows/series the
// paper reports, and -report prints the campaign's per-scenario timing.
//
// Usage:
//
//	darco-bench -exp all
//	darco-bench -exp fig4 -scale 1.0 -par 8
//	darco-bench -exp speed -obs
//	darco-bench -exp warmup -bench 429.mcf
//	darco-bench -json . -scale 0.5
//	darco-bench -exp fig4 -csv out.csv -html dash.html
//
// -json writes a BENCH_<n>.json perf-trajectory snapshot (schema 2:
// ns/op, allocs/op, the headline metrics, and the engine
// profiling-counter snapshot for the Table-Speed and Fig. 4–7 benches;
// the figure rows record cost_shared instead of duplicating the one
// measured campaign cost) into the given directory, numbered after the
// highest existing snapshot. Committing one per perf-relevant PR gives
// the repository the trajectory `darco-perf gate` and `darco-perf
// trend` consume.
//
// -csv, -ndjson and -html export the suite campaign through
// darco/export: -csv and -ndjson stream one row per benchmark as
// workers finish (scenario order, deterministic counters plus
// wall-clock columns), -html writes the self-contained static
// dashboard with the paper's Fig. 4–7 views.
package main

import (
	"context"
	"flag"
	"fmt"
	"maps"
	"os"
	"os/signal"
	"slices"
	"time"

	darco "darco"
	"darco/export"
	"darco/internal/experiments"
	"darco/internal/warmup"
	"darco/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: speed|fig4|fig5|fig6|fig7|warmup|startup|all")
		scale      = flag.Float64("scale", 1.0, "workload scale factor")
		benchName  = flag.String("bench", "429.mcf", "benchmark for speed/warmup experiments")
		par        = flag.Int("par", 0, "campaign worker-pool width (0 = GOMAXPROCS)")
		scenarioTO = flag.Duration("scenario-timeout", 0, "per-benchmark timeout (0 = none)")
		report     = flag.Bool("report", false, "print the campaign report (per-benchmark wall times)")
		pipeDepth  = flag.Int("timing-pipeline", experiments.BenchPipelineDepth,
			"timing-pipeline window depth for the speed table's pipelined row (0 = omit the row)")
		obsOn      = flag.Bool("obs", false, "attach profiling counters to the speed table and print cache/pipeline columns")
		jsonDir    = flag.String("json", "", "write a BENCH_<n>.json perf snapshot into this directory and exit")
		csvPath    = flag.String("csv", "", "stream the suite campaign as CSV to this file")
		ndjsonPath = flag.String("ndjson", "", "stream the suite campaign as NDJSON rows to this file")
		htmlPath   = flag.String("html", "", "write the suite campaign's static HTML dashboard to this file")
		version    = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("darco-bench", darco.Version)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *jsonDir != "" {
		fmt.Fprintf(os.Stderr, "collecting perf snapshot at scale %.2f...\n", *scale)
		snap, err := experiments.CollectBenchSnapshot(ctx, *scale)
		if err != nil {
			fatalf("snapshot: %v", err)
		}
		path, err := snap.Write(*jsonDir)
		if err != nil {
			fatalf("snapshot: %v", err)
		}
		for _, name := range snap.BenchNames() {
			e := snap.Benches[name]
			if e.SharesCost() {
				fmt.Printf("%-26s %25s", name, "cost shared w/ "+e.CostShared)
			} else {
				fmt.Printf("%-26s %12.0f ns/op %10.0f allocs/op", name, e.NsPerOp, e.AllocsPerOp)
			}
			if e.Counters != nil {
				fmt.Printf("  decode-hit %.2f%%  block-hit %.2f%%",
					100*e.Counters.DecodeHitRate(), 100*e.Counters.BlockHitRate())
			}
			for _, k := range slices.Sorted(maps.Keys(e.Metrics)) {
				fmt.Printf("  %s=%.2f", k, e.Metrics[k])
			}
			fmt.Println()
		}
		fmt.Printf("wrote %s\n", path)
		return
	}

	needFigs := false
	switch *exp {
	case "fig4", "fig5", "fig6", "fig7", "all":
		needFigs = true
	}
	needSuites := needFigs || *csvPath != "" || *ndjsonPath != "" || *htmlPath != ""

	var rs []experiments.BenchResult
	if needSuites {
		fmt.Fprintf(os.Stderr, "running %d benchmarks at scale %.2f...\n", len(workload.Suites()), *scale)
		copts := []darco.CampaignOption{darco.WithParallelism(*par)}
		if *scenarioTO > 0 {
			copts = append(copts, darco.WithScenarioTimeout(*scenarioTO))
		}
		// -csv streams: each row is written as its scenario finishes
		// (in scenario order), not after the whole campaign.
		var csvFile *os.File
		var csvStream *export.CSVStream
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				fatalf("csv: %v", err)
			}
			csvFile = f
			stream, err := export.NewCSVStream(f, len(workload.Suites()), export.WithWallTimes())
			if err != nil {
				fatalf("csv: %v", err)
			}
			csvStream = stream
			copts = append(copts, darco.WithScenarioDone(stream.Done))
		}
		// -ndjson streams the same way; both sinks can be active at
		// once (WithScenarioDone hooks compose).
		var ndjsonFile *os.File
		var ndjsonStream *export.NDJSONStream
		if *ndjsonPath != "" {
			f, err := os.Create(*ndjsonPath)
			if err != nil {
				fatalf("ndjson: %v", err)
			}
			ndjsonFile = f
			ndjsonStream = export.NewNDJSONStream(f, len(workload.Suites()), export.WithWallTimes())
			copts = append(copts, darco.WithScenarioDone(ndjsonStream.Done))
		}
		rep, err := experiments.SuiteCampaign(ctx, *scale, darco.DefaultConfig(), copts...)
		if err != nil {
			fatalf("suites: %v", err)
		}
		fmt.Fprintf(os.Stderr, "campaign: %s wall on %d workers (%s serial-equivalent)\n",
			rep.Wall.Round(time.Millisecond), rep.Parallelism, rep.SerialWall().Round(time.Millisecond))
		if csvStream != nil {
			if err := csvStream.Close(); err != nil {
				fatalf("csv: %v", err)
			}
			if err := csvFile.Close(); err != nil {
				fatalf("csv: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
		}
		if ndjsonStream != nil {
			if err := ndjsonStream.Close(); err != nil {
				fatalf("ndjson: %v", err)
			}
			if err := ndjsonFile.Close(); err != nil {
				fatalf("ndjson: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *ndjsonPath)
		}
		if *htmlPath != "" {
			f, err := os.Create(*htmlPath)
			if err != nil {
				fatalf("html: %v", err)
			}
			if err := export.WriteHTML(f, rep, export.WithWallTimes()); err != nil {
				fatalf("html: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("html: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *htmlPath)
		}
		if *report {
			fmt.Print(rep.Format(), "\n")
		}
		// Only the figure builders need the per-benchmark rows, and
		// only they treat a scenario error as fatal: an export-only run
		// records failed scenarios as error rows (the CSV status
		// column) and still succeeds.
		if needFigs {
			rs, err = experiments.BenchResults(rep)
			if err != nil {
				fatalf("suites: %v", err)
			}
		}
	}

	show := func(name string) bool { return *exp == name || *exp == "all" }

	if show("speed") {
		p, ok := workload.ByName(*benchName)
		if !ok {
			fatalf("unknown workload %q", *benchName)
		}
		table := experiments.TableSpeed
		if *obsOn {
			table = experiments.TableSpeedObs
		}
		rows, err := table(ctx, p, *scale, *pipeDepth)
		if err != nil {
			fatalf("speed: %v", err)
		}
		fmt.Println("Table (§VI-A): DARCO speed")
		fmt.Printf("%-24s%14s%14s%12s", "configuration", "guest MIPS", "host MIPS", "wall")
		if *obsOn {
			fmt.Printf("%12s%12s%10s%10s", "decode-hit%", "block-hit%", "flushes", "stalls")
		}
		fmt.Println()
		for _, r := range rows {
			fmt.Printf("%-24s%14.2f%14.2f%12s", r.Config, r.GuestMIPS, r.HostMIPS, r.Wall.Round(1e6))
			if r.Obs != nil {
				fmt.Printf("%12.2f%12.2f%10d%10d",
					100*r.Obs.DecodeHitRate(), 100*r.Obs.BlockHitRate(), r.Obs.CodeFlushes, r.Obs.PipelineStalls)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if show("fig4") {
		fmt.Print(experiments.Fig4(rs).Format(), "\n")
	}
	if show("fig5") {
		fmt.Print(experiments.Fig5(rs).Format(), "\n")
	}
	if show("fig6") {
		fmt.Print(experiments.Fig6(rs).Format(), "\n")
	}
	if show("fig7") {
		fmt.Print(experiments.Fig7(rs).Format(), "\n")
	}
	if show("startup") {
		p, ok := workload.ByName(*benchName)
		if !ok {
			fatalf("unknown workload %q", *benchName)
		}
		rows, err := experiments.StartupDelay(ctx, p, 100_000, *scale)
		if err != nil {
			fatalf("startup: %v", err)
		}
		fmt.Println("Startup delay (§III): host cycles to retire the first 100k guest instructions")
		fmt.Printf("%14s%14s%12s%12s%10s\n", "bb-threshold", "sb-threshold", "cycles", "CPGI", "IM %")
		for _, r := range rows {
			fmt.Printf("%14d%14d%12d%12.2f%10.1f\n", r.BBThreshold, r.SBThreshold, r.Cycles, r.CPGI, 100*r.IMShare)
		}
		fmt.Println()
	}
	if show("warmup") {
		p, ok := workload.ByName(*benchName)
		if !ok {
			fatalf("unknown workload %q", *benchName)
		}
		im, err := workload.CachedImage(p.Scale(*scale))
		if err != nil {
			fatalf("warmup: %v", err)
		}
		st, err := warmup.RunStudyContext(ctx, im, warmup.DefaultConfig())
		if err != nil {
			fatalf("warmup: %v", err)
		}
		fmt.Printf("Case study (§VI-E): warm-up methodology on %s (%d guest insns)\n", p.Name, st.TotalGuest)
		fmt.Printf("full detailed simulation: CPGI %.3f, cost %.0f insns\n", st.FullCPGI, st.FullCost)
		fmt.Printf("%8s%10s%10s%10s%12s%12s\n", "scale", "warm-len", "err %", "reduction", "similarity", "CPGI")
		for _, c := range st.Candidates {
			fmt.Printf("%8d%10d%10.2f%10.1fx%12.4f%12.3f\n",
				c.Scale, c.WarmLen, c.ErrorPct, c.Reduction, c.Similarity, c.CPGI)
		}
		fmt.Printf("heuristic pick: scale %d, warm-up %d -> %.2f%% error at %.1fx cost reduction\n",
			st.Chosen.Scale, st.Chosen.WarmLen, st.Chosen.ErrorPct, st.Chosen.Reduction)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "darco-bench: "+format+"\n", args...)
	os.Exit(1)
}
