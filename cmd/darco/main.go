// Command darco runs a guest program (a named benchmark or a GISA
// assembly file) on the full co-designed processor stack: TOL
// translation/optimization, state validation against the authoritative
// emulator, and optionally the timing and power simulators.
//
// Usage:
//
//	darco -bench 429.mcf                      # named workload, functional
//	darco -bench 470.lbm -timing -power       # with simulators
//	darco -asm prog.s -timing                 # assemble and run a file
//	darco -list                               # list available workloads
package main

import (
	"flag"
	"fmt"
	"os"

	darco "darco"
	"darco/internal/guest"
	"darco/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "", "named workload to run (see -list)")
		asmFile   = flag.String("asm", "", "GISA assembly file to assemble and run")
		scale     = flag.Float64("scale", 1.0, "workload dynamic-size scale factor")
		useTiming = flag.Bool("timing", false, "attach the timing simulator")
		usePower  = flag.Bool("power", false, "attach the power model (implies -timing)")
		validate  = flag.Int("validate", 1, "validate state every N synchronizations (0 = end only)")
		bbThresh  = flag.Uint("bb-threshold", 0, "override BBM promotion threshold")
		sbThresh  = flag.Uint64("sb-threshold", 0, "override SBM promotion threshold")
		list      = flag.Bool("list", false, "list available workloads and exit")
		showOut   = flag.Bool("output", false, "print the guest program's output bytes")
	)
	flag.Parse()

	if *list {
		for _, p := range workload.Suites() {
			fmt.Printf("%-18s %s\n", p.Name, p.Suite)
		}
		return
	}

	var im *guest.Image
	var err error
	switch {
	case *benchName != "":
		p, ok := workload.ByName(*benchName)
		if !ok {
			fatalf("unknown workload %q (try -list)", *benchName)
		}
		im, err = p.Scale(*scale).Generate()
	case *asmFile != "":
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			fatalf("read %s: %v", *asmFile, rerr)
		}
		im, err = guest.Assemble(string(src))
	default:
		fatalf("one of -bench or -asm is required (or -list)")
	}
	if err != nil {
		fatalf("build program: %v", err)
	}

	cfg := darco.DefaultConfig()
	if *usePower {
		cfg = darco.FullConfig()
	} else if *useTiming {
		cfg = darco.TimingConfig()
	}
	cfg.ValidateEveryNSyncs = *validate
	if *bbThresh > 0 {
		cfg.TOL.BBThreshold = uint32(*bbThresh)
	}
	if *sbThresh > 0 {
		cfg.TOL.SBThreshold = *sbThresh
	}

	res, err := darco.Run(im, cfg)
	if err != nil {
		fatalf("run: %v", err)
	}
	fmt.Print(res.Summary())
	fmt.Printf("validation    %d state comparisons, %d page transfers, %d syscall syncs\n",
		res.Validations, res.PageTransfers, res.SyscallSyncs)
	if *showOut {
		fmt.Printf("output        %x\n", res.Output)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "darco: "+format+"\n", args...)
	os.Exit(1)
}
