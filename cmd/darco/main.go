// Command darco runs a guest program (a named benchmark or a GISA
// assembly file) on the full co-designed processor stack: TOL
// translation/optimization, state validation against the authoritative
// emulator, and optionally the timing and power simulators. Ctrl-C (or
// -timeout) cancels the run cleanly.
//
// Usage:
//
//	darco -bench 429.mcf                      # named workload, functional
//	darco -bench 470.lbm -timing -power       # with simulators
//	darco -asm prog.s -timing                 # assemble and run a file
//	darco -bench 403.gcc -progress            # stream progress snapshots
//	darco -list                               # list available workloads
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	darco "darco"
	"darco/internal/guest"
	"darco/internal/power"
	"darco/internal/timing"
	"darco/internal/tol"
	"darco/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "", "named workload to run (see -list)")
		asmFile   = flag.String("asm", "", "GISA assembly file to assemble and run")
		scale     = flag.Float64("scale", 1.0, "workload dynamic-size scale factor")
		useTiming = flag.Bool("timing", false, "attach the timing simulator")
		usePower  = flag.Bool("power", false, "attach the power model (implies -timing)")
		validate  = flag.Int("validate", 1, "validate state every N synchronizations (0 = end only)")
		bbThresh  = flag.Uint("bb-threshold", 0, "override BBM promotion threshold")
		sbThresh  = flag.Uint64("sb-threshold", 0, "override SBM promotion threshold")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
		progress  = flag.Bool("progress", false, "stream progress snapshots to stderr")
		list      = flag.Bool("list", false, "list available workloads and exit")
		showOut   = flag.Bool("output", false, "print the guest program's output bytes")
		version   = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("darco", darco.Version)
		return
	}
	if *list {
		for _, p := range workload.Suites() {
			fmt.Printf("%-18s %s\n", p.Name, p.Suite)
		}
		return
	}

	var im *guest.Image
	var err error
	switch {
	case *benchName != "":
		p, ok := workload.ByName(*benchName)
		if !ok {
			fatalf("unknown workload %q (try -list)", *benchName)
		}
		im, err = p.Scale(*scale).Generate()
	case *asmFile != "":
		src, rerr := os.ReadFile(*asmFile)
		if rerr != nil {
			fatalf("read %s: %v", *asmFile, rerr)
		}
		im, err = guest.Assemble(string(src))
	default:
		fatalf("one of -bench or -asm is required (or -list)")
	}
	if err != nil {
		fatalf("build program: %v", err)
	}

	tolCfg := tol.DefaultConfig()
	if *bbThresh > 0 {
		tolCfg.BBThreshold = uint32(*bbThresh)
	}
	if *sbThresh > 0 {
		tolCfg.SBThreshold = *sbThresh
	}
	opts := []darco.Option{
		darco.WithTOL(tolCfg),
		darco.WithValidation(*validate),
	}
	if *useTiming || *usePower {
		opts = append(opts, darco.WithTiming(timing.DefaultConfig()))
	}
	if *usePower {
		opts = append(opts, darco.WithPower(power.DefaultEnergies(), 1000))
	}
	if *progress {
		opts = append(opts,
			darco.WithCheckInterval(1_000_000),
			darco.WithObserver(darco.ObserverFuncs{
				Progress: func(p darco.Progress) {
					fmt.Fprintf(os.Stderr, "progress: %d guest insns, %d+%d translations, %d syncs, %s\n",
						p.GuestInsns, p.BBTranslations, p.SBTranslations, p.SyscallSyncs,
						p.Wall.Round(time.Millisecond))
				},
			}))
	}

	eng, err := darco.NewEngine(opts...)
	if err != nil {
		fatalf("configure: %v", err)
	}
	ses, err := eng.NewSession(im)
	if err != nil {
		fatalf("launch: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := ses.Run(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "darco: run cancelled (%v); partial results:\n", err)
			fmt.Print(ses.Snapshot().Summary())
			os.Exit(130)
		}
		fatalf("run: %v", err)
	}
	fmt.Print(res.Summary())
	fmt.Printf("validation    %d state comparisons, %d page transfers, %d syscall syncs\n",
		res.Validations, res.PageTransfers, res.SyscallSyncs)
	if *showOut {
		fmt.Printf("output        %x\n", res.Output)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "darco: "+format+"\n", args...)
	os.Exit(1)
}
