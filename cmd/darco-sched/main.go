// Command darco-sched runs the DARCO fleet coordinator: an HTTP daemon
// that accepts the same campaign submissions as darco-served, shards
// them across a pool of darco-served workers, and merges the gathered
// results into exports byte-identical to a single-node run.
//
// Usage:
//
//	darco-sched -addr :9090 -worker http://node1:8080 -worker http://node2:8080
//	darco-sched -addr :9090 -retries 6 -probe 2s
//
// Quickstart against a running coordinator:
//
//	curl -s localhost:9090/api/v1/jobs -d '{"suite":{"scale":0.1}}'
//	curl -s localhost:9090/api/v1/jobs/job-1
//	curl -N localhost:9090/api/v1/jobs/job-1/events
//	curl -s localhost:9090/api/v1/jobs/job-1/export.csv
//	curl -s localhost:9090/api/v1/jobs/job-1/trace
//	curl -s localhost:9090/api/v1/workers
//
// Workers can also self-register at runtime:
//
//	curl -s localhost:9090/api/v1/workers -d '{"url":"http://node3:8080"}'
//
// Worker death mid-campaign is survived: the coordinator re-dispatches
// only the scenarios it has not yet gathered to the remaining workers,
// with capped exponential backoff. If the pool is exhausted the job
// ends in the terminal "degraded" state with the never-run scenarios
// marked as errors in its exports.
//
// With -data, the coordinator's own death is survived too: every
// federated job's lifecycle — submission, shard plan, placement
// leases, gathered rows — is journaled to the durable store, and a
// restarted coordinator re-adopts the still-running worker-side shard
// jobs by name instead of re-dispatching them, so federated exports
// stay byte-identical across the crash. -fsync picks the journal
// durability policy.
//
//	darco-sched -addr :9090 -data /var/lib/darco-sched -worker http://node1:8080
//
// A warm standby points -standby at the same data directory: it waits
// on the store's flock lease (which the kernel releases the instant
// the primary dies, SIGKILL included), then recovers and serves
// exactly like a restart. One flag, one lease, no consensus protocol.
//
//	darco-sched -addr :9091 -data /var/lib/darco-sched -standby -worker http://node1:8080
//
// -pprof mounts Go's net/http/pprof profiling handlers under
// /debug/pprof/ on the same listener (off by default: the handlers
// expose goroutine dumps and CPU profiles, so enable them only where
// the listener is trusted).
//
// SIGINT/SIGTERM shut the coordinator down gracefully: submissions are
// rejected, running federated jobs (and their worker-side shard jobs)
// are cancelled and journaled terminal, queued jobs are left journaled
// for the next start to re-queue, and — once the runners drain
// (bounded by -grace) — a clean-shutdown marker is journaled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	darco "darco"
	"darco/obs"
	"darco/sched"
	"darco/store"
)

// workerList collects repeatable -worker flags.
type workerList []string

func (l *workerList) String() string { return fmt.Sprint([]string(*l)) }
func (l *workerList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var workers workerList
	var (
		addr    = flag.String("addr", ":9090", "listen address")
		jobs    = flag.Int("jobs", 1, "concurrent federated campaigns")
		queue   = flag.Int("queue", 16, "job queue capacity (waiting jobs beyond it get 429)")
		maxScen = flag.Int("max-scenarios", 0, "max scenarios per submission (0 = unlimited)")
		shards  = flag.Int("max-shards", 0, "max shards per job (0 = one per healthy worker)")
		retries = flag.Int("retries", 4, "fruitless placement attempts per shard before the job degrades")
		probe   = flag.Duration("probe", 5*time.Second, "worker health-probe interval")
		grace   = flag.Duration("grace", 30*time.Second, "graceful-shutdown budget")
		data    = flag.String("data", "", "durable store directory (empty = in-memory only)")
		fsync   = flag.String("fsync", "lifecycle", "journal fsync policy with -data: lifecycle, always or none")
		standby = flag.Bool("standby", false, "with -data: wait for the directory's flock lease instead of failing when another coordinator holds it, then take over")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		version = flag.Bool("version", false, "print the version and exit")
	)
	flag.Var(&workers, "worker", "worker base URL (repeatable), e.g. http://node1:8080")
	flag.Parse()
	if *version {
		fmt.Println("darco-sched", darco.Version)
		return
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("daemon", "darco-sched")
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	var st *store.Store
	var sm *store.Metrics
	if *data != "" {
		policy, err := fsyncPolicy(*fsync)
		if err != nil {
			fatal("bad flag", "err", err)
		}
		sm = &store.Metrics{
			AppendSeconds: obs.NewHistogram(obs.ExpBuckets(1e-6, 4, 10)),
			FsyncSeconds:  obs.NewHistogram(obs.ExpBuckets(1e-6, 4, 10)),
		}
		opts := store.Options{Sync: policy, Metrics: sm, Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...), "component", "store")
		}}
		if *standby {
			// The standby blocks here until the primary's flock lease
			// frees — the kernel drops it the instant the primary dies,
			// SIGKILL included — then recovers and serves like any
			// restart. SIGINT/SIGTERM abort the wait.
			waitCtx, waitStop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			logger.Info("standby: waiting for the lease", "dir", *data)
			st, err = store.OpenWait(waitCtx, *data, opts)
			waitStop()
		} else {
			st, err = store.Open(*data, opts)
		}
		if err != nil {
			fatal("open store failed", "dir", *data, "err", err)
		}
		defer st.Close()
		logger.Info("store recovered", "dir", *data, "recovery", st.Recovery().String())
	} else if *standby {
		fatal("-standby requires -data")
	}

	coord, err := sched.New(sched.Options{
		Workers:       workers,
		Jobs:          *jobs,
		QueueCapacity: *queue,
		MaxScenarios:  *maxScen,
		MaxShards:     *shards,
		ShardRetries:  *retries,
		ProbeInterval: *probe,
		Store:         st,
		StoreMetrics:  sm,
		Log:           logger,
	})
	if err != nil {
		fatal("coordinator init failed", "err", err)
	}
	hs := &http.Server{Addr: *addr, Handler: withPprof(*pprofOn, coord)}

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers_registered", len(workers), "pprof", *pprofOn)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal("listen failed", "err", err)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "grace", grace.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain the federated jobs first — cancelling them ends any open
	// /events streams and cancels the worker-side shard jobs — then
	// close the listener.
	if err := coord.Shutdown(shutCtx); err != nil {
		fatal("job shutdown failed", "err", err)
	}
	if err := hs.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("serve", "err", err)
	}
	logger.Info("bye")
}

// withPprof wraps the daemon handler with Go's pprof endpoints when
// enabled. Explicit handler registrations on a private mux — importing
// net/http/pprof's DefaultServeMux side effects would mount the
// handlers even with the flag off.
func withPprof(enabled bool, h http.Handler) http.Handler {
	if !enabled {
		return h
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

func fsyncPolicy(name string) (store.SyncPolicy, error) {
	switch name {
	case "lifecycle":
		return store.SyncLifecycle, nil
	case "always":
		return store.SyncAlways, nil
	case "none":
		return store.SyncNone, nil
	}
	return 0, fmt.Errorf("unknown -fsync policy %q (lifecycle, always or none)", name)
}
