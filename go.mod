module darco

go 1.24
