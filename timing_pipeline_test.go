package darco_test

// The determinism harness for the pipelined timing simulator: whatever
// the window depth, a timing-mode run must produce byte-identical Stats
// (functional, overhead AND timing counters) and an identical retire
// stream to the synchronous depth-0 reference. The whole value of the
// pipeline is that it buys wall-clock speed without costing a single
// bit of the paper's figures.

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"testing"
	"time"

	darco "darco"

	"darco/internal/workload"
)

// pipelineDepths are the windows exercised against the synchronous
// reference in CI (depth 0 is the reference itself).
var pipelineDepths = []int{1, 8, 64}

// retireTrace folds a session's entire retire stream — instruction
// events and sync markers, with their delivery sequence numbers — into
// one running FNV-64a digest, so two runs can be compared event for
// event without retaining millions of events.
type retireTrace struct {
	digest     uint64
	events     uint64
	syncs      uint64
	deliveries uint64
}

func (tr *retireTrace) sink(b darco.RetireBatch) {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w64(tr.digest)
	w64(b.Seq)
	tr.deliveries++
	if b.Sync != nil {
		tr.syncs++
		w64(uint64(b.Sync.Kind))
		w64(b.Sync.GuestInsns)
		w64(b.Sync.GuestBBs)
		w64(uint64(b.Sync.Addr))
	}
	for i := range b.Events {
		ev := &b.Events[i]
		tr.events++
		flags := uint64(0)
		if ev.Taken {
			flags |= 1
		}
		if ev.Load {
			flags |= 2
		}
		if ev.Store {
			flags |= 4
		}
		w64(uint64(ev.Class)<<32 | uint64(ev.GuestPC))
		w64(uint64(ev.PC)<<32 | uint64(ev.Target))
		w64(uint64(ev.Addr)<<8 | flags)
		h.Write([]byte(ev.Op))
	}
	tr.digest = h.Sum64()
}

type pipelineOutcome struct {
	res   *darco.Result
	trace retireTrace
}

func runTimingAtDepth(t *testing.T, bench string, scale float64, depth int) pipelineOutcome {
	t.Helper()
	p, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown workload %s", bench)
	}
	im, err := workload.CachedImage(p.Scale(scale))
	if err != nil {
		t.Fatal(err)
	}
	var out pipelineOutcome
	eng, err := darco.NewEngine(
		darco.WithConfig(darco.TimingConfig()),
		darco.WithTimingPipeline(depth),
		darco.WithRetireStream(out.trace.sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	out.res = res
	return out
}

// requireSameOutcome asserts every deterministic counter and the full
// retire-stream digest match between a pipelined run and the reference.
func requireSameOutcome(t *testing.T, depth int, got, ref *pipelineOutcome) {
	t.Helper()
	if got.res.Stats != ref.res.Stats {
		t.Errorf("depth %d: guest Stats diverge from synchronous reference:\n got %+v\nwant %+v",
			depth, got.res.Stats, ref.res.Stats)
	}
	if got.res.Overhead != ref.res.Overhead {
		t.Errorf("depth %d: TOL overhead diverges", depth)
	}
	if got.res.HostAppInsns != ref.res.HostAppInsns {
		t.Errorf("depth %d: host app insns %d, reference %d", depth, got.res.HostAppInsns, ref.res.HostAppInsns)
	}
	if got.res.Timing == nil || ref.res.Timing == nil {
		t.Fatalf("depth %d: missing timing stats (got %v, ref %v)", depth, got.res.Timing, ref.res.Timing)
	}
	if *got.res.Timing != *ref.res.Timing {
		t.Errorf("depth %d: timing Stats diverge from synchronous reference:\n got %+v\nwant %+v",
			depth, *got.res.Timing, *ref.res.Timing)
	}
	if got.trace != ref.trace {
		t.Errorf("depth %d: retire stream diverges: got %+v, reference %+v", depth, got.trace, ref.trace)
	}
}

// TestTimingPipelineBitIdentical is the property test: 429.mcf and
// 433.milc at every CI depth against the synchronous reference.
func TestTimingPipelineBitIdentical(t *testing.T) {
	scale := 0.2
	if testing.Short() {
		scale = 0.1
	}
	for _, bench := range []string{"429.mcf", "433.milc"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			ref := runTimingAtDepth(t, bench, scale, 0)
			if ref.trace.events == 0 {
				t.Fatal("reference run produced no retire events")
			}
			for _, depth := range pipelineDepths {
				got := runTimingAtDepth(t, bench, scale, depth)
				requireSameOutcome(t, depth, &got, &ref)
			}
		})
	}
}

// TestTimingPipelineStepped drives a pipelined session through small
// Step budgets — every Step starts and drains the pipeline — and
// requires the final counters and retire stream to match a synchronous
// depth-0 session stepped identically (stepping itself changes the
// excursion cadence, and with it the stream's batch boundaries, so the
// reference must step the same way).
func TestTimingPipelineStepped(t *testing.T) {
	step := func(depth int) pipelineOutcome {
		t.Helper()
		p, _ := workload.ByName("429.mcf")
		im, err := workload.CachedImage(p.Scale(0.1))
		if err != nil {
			t.Fatal(err)
		}
		out := pipelineOutcome{}
		eng, err := darco.NewEngine(
			darco.WithConfig(darco.TimingConfig()),
			darco.WithTimingPipeline(depth),
			darco.WithRetireStream(out.trace.sink),
		)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := eng.NewSession(im)
		if err != nil {
			t.Fatal(err)
		}
		for !sess.Done() {
			out.res, err = sess.Step(context.Background(), 40_000)
			if err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	ref := step(0)
	got := step(8)
	requireSameOutcome(t, 8, &got, &ref)
}

// TestTimingPipelineCancelAndResume cancels a pipelined run mid-flight
// (the drain-on-cancel path), resumes it with a fresh context, and
// requires the completed run to match the synchronous reference — the
// pipeline must neither drop nor replay events across the interruption.
func TestTimingPipelineCancelAndResume(t *testing.T) {
	ref := runTimingAtDepth(t, "429.mcf", 0.1, 0)

	p, _ := workload.ByName("429.mcf")
	im, err := workload.CachedImage(p.Scale(0.1))
	if err != nil {
		t.Fatal(err)
	}
	var tr retireTrace
	// Same check interval as the reference: excursion boundaries flush
	// retire-stream batches, so the cadence is part of the stream shape
	// (cancellation itself must not add or move a single delivery).
	eng, err := darco.NewEngine(
		darco.WithConfig(darco.TimingConfig()),
		darco.WithTimingPipeline(8),
		darco.WithRetireStream(tr.sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(im)
	if err != nil {
		t.Fatal(err)
	}
	var res *darco.Result
	for !sess.Done() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		res, err = sess.Run(ctx)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				continue // cancelled mid-run: resume
			}
			t.Fatal(err)
		}
	}
	got := pipelineOutcome{res: res, trace: tr}
	requireSameOutcome(t, 8, &got, &ref)
}
