package darco_test

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestMarkdownLinks keeps README.md and ARCHITECTURE.md honest: every
// inline markdown link must be well-formed, relative targets must
// exist in the repository, and anchors must resolve to a heading in
// the target document. It is the CI link check (no network: http(s)
// URLs are only parsed, not fetched).
func TestMarkdownLinks(t *testing.T) {
	for _, file := range []string{"README.md", "ARCHITECTURE.md"} {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v (the docs overhaul ships both)", file, err)
		}
		for _, link := range mdLinks(string(data)) {
			checkLink(t, file, link)
		}
	}
}

type mdLink struct {
	text, target string
	line         int
}

var linkRE = regexp.MustCompile(`\[([^\]]*)\]\(([^)]*)\)`)

// mdLinks extracts inline links outside fenced code blocks.
func mdLinks(doc string) []mdLink {
	var out []mdLink
	inFence := false
	for i, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			out = append(out, mdLink{text: m[1], target: m[2], line: i + 1})
		}
	}
	return out
}

func checkLink(t *testing.T, file string, l mdLink) {
	t.Helper()
	where := fmt.Sprintf("%s:%d: [%s](%s)", file, l.line, l.text, l.target)
	if strings.TrimSpace(l.text) == "" {
		t.Errorf("%s: empty link text", where)
	}
	target := strings.TrimSpace(l.target)
	if target == "" {
		t.Errorf("%s: empty link target", where)
		return
	}
	if target != l.target || strings.ContainsAny(target, " \t") {
		t.Errorf("%s: link target contains whitespace", where)
		return
	}
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		return // external: parse-only, no network in tests
	}
	path, frag, _ := strings.Cut(target, "#")
	if path == "" {
		path = file // same-document anchor
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Errorf("%s: target does not exist", where)
		return
	}
	if frag == "" {
		return
	}
	if info.IsDir() || !strings.HasSuffix(path, ".md") {
		t.Errorf("%s: anchor on a non-markdown target", where)
		return
	}
	doc, err := os.ReadFile(path)
	if err != nil {
		t.Errorf("%s: %v", where, err)
		return
	}
	if !hasAnchor(string(doc), frag) {
		t.Errorf("%s: no heading matches anchor #%s", where, frag)
	}
}

// hasAnchor reports whether any heading in doc slugifies (GitHub
// style: lowercase, punctuation dropped, spaces to hyphens) to frag.
func hasAnchor(doc, frag string) bool {
	for _, line := range strings.Split(doc, "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if slugify(heading) == frag {
			return true
		}
	}
	return false
}

func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
