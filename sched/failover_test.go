package sched_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"darco/internal/testutil"
	"darco/sched"
	"darco/serve"
	"darco/store"
)

// crashBody is the standard crash-drill campaign: four scenarios whose
// middle-of-shard "slow" member keeps a worker-side shard job running
// long enough for the coordinator to die and come back around it.
// Parallelism 1 makes the slow scenario block its shard's later rows.
const crashBody = `{"name":"crashy","parallelism":1,"scenarios":[` +
	`{"profile":"429.mcf","scale":0.1},{"profile":"470.lbm","scale":0.1},` +
	`{"profile":"429.mcf","scale":5,"name":"slow"},{"profile":"470.lbm","scale":0.1}]}`

// openStore opens a coordinator store with a once-guarded closer that
// is also registered as a cleanup safety net. Register it BEFORE any
// newCoordinator over the same store: cleanups run LIFO, so the
// coordinator's Shutdown lands before the store closes.
func openStore(t *testing.T, dir string) (*store.Store, func()) {
	t.Helper()
	st, err := store.Open(dir, store.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	closeFn := func() {
		once.Do(func() {
			if err := st.Close(); err != nil {
				t.Errorf("store close: %v", err)
			}
		})
	}
	t.Cleanup(closeFn)
	return st, closeFn
}

// startCrashable is newCoordinator for a coordinator the test kills by
// hand: no graceful-shutdown cleanup, just an idempotent Halt safety
// net in case the test fails before the planned crash.
func startCrashable(t *testing.T, opts sched.Options) (*sched.Coordinator, *httptest.Server) {
	t.Helper()
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 200 * time.Millisecond
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 10 * time.Second
	}
	if opts.RetryBaseDelay == 0 {
		opts.RetryBaseDelay = 20 * time.Millisecond
	}
	if opts.Log == nil {
		opts.Log = testutil.Slogger(t)
	}
	c, err := sched.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c)
	t.Cleanup(func() {
		c.Halt()
		ts.Close()
	})
	return c, ts
}

// metricValue reads one un-labeled counter from /metrics.
func metricValue(t *testing.T, base, name string) int {
	t.Helper()
	for _, line := range strings.Split(string(fetch(t, base+"/metrics", http.StatusOK, "")), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// compareExports asserts every export format's bytes match want.
func compareExports(t *testing.T, jobBase string, want map[string][]byte) {
	t.Helper()
	for _, p := range exportPaths {
		got := fetch(t, jobBase+p, http.StatusOK, "")
		if !bytes.Equal(got, want[p]) {
			t.Errorf("%s differs:\n--- got ---\n%.400s\n--- want ---\n%.400s", p, got, want[p])
		}
	}
}

// TestCoordinatorKillMidCampaign is the tentpole drill: the coordinator
// is killed (Halt — journal frozen, worker-side shard jobs left
// running, no terminal records) in the middle of a two-worker federated
// campaign. A restarted coordinator over the same data dir must resume
// the job, re-adopt the still-running shard jobs by name, and end with
// all four export formats byte-identical to an uncrashed single-node
// run.
func TestCoordinatorKillMidCampaign(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		_, ts := newWorker(t, serve.Options{Workers: 2, QueueCapacity: 8})
		urls = append(urls, ts.URL)
	}
	dir := t.TempDir()

	st1, closeSt1 := openStore(t, dir)
	c1, ts1 := startCrashable(t, sched.Options{Workers: urls, Store: st1})
	job := submit(t, ts1.URL, crashBody, http.StatusAccepted)
	// Crash only after the fast shard's rows are journaled, so the
	// restart genuinely resumes mid-run state (submission, plan,
	// placement leases, gathered rows) instead of replaying a fresh job.
	waitState(t, ts1.URL, job.ID, func(s serve.JobStatus) bool { return s.Completed >= 2 })
	c1.Halt()
	ts1.Close()
	closeSt1()

	st2, _ := openStore(t, dir)
	_, coord := newCoordinator(t, sched.Options{Workers: urls, Store: st2})
	final := waitState(t, coord.URL, job.ID, func(s serve.JobStatus) bool { return s.State.Terminal() || s.State == sched.JobDegraded })
	if final.State != serve.JobDone {
		t.Fatalf("recovered job ended %s (%s)", final.State, final.Error)
	}
	if final.Completed != final.Scenarios || final.Failed != 0 {
		t.Fatalf("recovered counters: %+v", final)
	}

	want := runReference(t, crashBody, exportPaths)
	compareExports(t, coord.URL+"/api/v1/jobs/"+job.ID, want)

	// The replayed event stream carries each scenario frame exactly
	// once: journal-restored rows seed the ring, re-adopted gathers
	// dedupe against them.
	resp, err := http.Get(coord.URL + "/api/v1/jobs/" + job.ID + "/events?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	seen := make(map[int]bool)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f struct {
			Event string          `json:"event"`
			Data  json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		if f.Event != serve.EventScenario {
			continue
		}
		var ev serve.ScenarioEvent
		if err := json.Unmarshal(f.Data, &ev); err != nil {
			t.Fatal(err)
		}
		if seen[ev.Index] {
			t.Errorf("scenario frame for index %d replayed twice", ev.Index)
		}
		seen[ev.Index] = true
	}
	if len(seen) != final.Scenarios {
		t.Errorf("event stream replayed %d scenario frames, want %d", len(seen), final.Scenarios)
	}

	if v := metricValue(t, coord.URL, "darco_sched_recovery_resumed_jobs"); v != 1 {
		t.Errorf("resumed_jobs = %d, want 1", v)
	}
	if v := metricValue(t, coord.URL, "darco_sched_recovery_readopted_shards"); v < 1 {
		t.Errorf("readopted_shards = %d, want >= 1", v)
	}
	if v := metricValue(t, coord.URL, "darco_sched_recovery_backfilled_rows"); v < 1 {
		t.Errorf("backfilled_rows = %d, want >= 1", v)
	}
}

// TestStandbyTakeover exercises the failover lease: a standby's
// OpenWait blocks while the primary holds the data dir's flock, then
// acquires it the moment the primary dies, and the takeover coordinator
// resumes the campaign to byte-identical exports.
func TestStandbyTakeover(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		_, ts := newWorker(t, serve.Options{Workers: 2, QueueCapacity: 8})
		urls = append(urls, ts.URL)
	}
	dir := t.TempDir()

	st1, closeSt1 := openStore(t, dir)
	c1, ts1 := startCrashable(t, sched.Options{Workers: urls, Store: st1})
	job := submit(t, ts1.URL, crashBody, http.StatusAccepted)
	waitState(t, ts1.URL, job.ID, func(s serve.JobStatus) bool { return s.Completed >= 2 })

	type acquired struct {
		st  *store.Store
		err error
	}
	ch := make(chan acquired, 1)
	waitCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() {
		st, err := store.OpenWait(waitCtx, dir, store.Options{})
		ch <- acquired{st, err}
	}()
	// Primary alive: the standby must still be waiting on the lease.
	select {
	case r := <-ch:
		t.Fatalf("standby acquired the lease under a live primary (err %v)", r.err)
	case <-time.After(600 * time.Millisecond):
	}

	c1.Halt()
	ts1.Close()
	closeSt1() // the "kernel releases the dead primary's flock" moment

	r := <-ch
	if r.err != nil {
		t.Fatalf("standby takeover: %v", r.err)
	}
	st2 := r.st
	t.Cleanup(func() { st2.Close() })
	_, coord := newCoordinator(t, sched.Options{Workers: urls, Store: st2})
	final := waitState(t, coord.URL, job.ID, func(s serve.JobStatus) bool { return s.State.Terminal() || s.State == sched.JobDegraded })
	if final.State != serve.JobDone {
		t.Fatalf("takeover job ended %s (%s)", final.State, final.Error)
	}

	want := runReference(t, crashBody, exportPaths)
	compareExports(t, coord.URL+"/api/v1/jobs/"+job.ID, want)
	if v := metricValue(t, coord.URL, "darco_sched_recovery_resumed_jobs"); v != 1 {
		t.Errorf("resumed_jobs = %d, want 1", v)
	}
}

// TestCleanShutdownRequeuesQueued pins the graceful-stop contract: a
// running job is cancelled and journaled terminal (its exports stable
// across the restart), while a job still queued is left queued on disk
// and runs to completion on the next start.
func TestCleanShutdownRequeuesQueued(t *testing.T) {
	_, wts := newWorker(t, serve.Options{Workers: 2, QueueCapacity: 8})
	dir := t.TempDir()

	st1, closeSt1 := openStore(t, dir)
	c1, ts1 := startCrashable(t, sched.Options{Workers: []string{wts.URL}, Jobs: 1, Store: st1})
	running := submit(t, ts1.URL, `{"name":"doomed","scenarios":[{"profile":"429.mcf","scale":5}]}`, http.StatusAccepted)
	waitState(t, ts1.URL, running.ID, func(s serve.JobStatus) bool { return s.State == serve.JobRunning })
	queuedBody := `{"name":"patient","scenarios":[{"profile":"470.lbm","scale":0.1}]}`
	queued := submit(t, ts1.URL, queuedBody, http.StatusAccepted)

	shutCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c1.Shutdown(shutCtx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// Still serving until the listener closes: capture the cancelled
	// job's sealed exports for the byte-stability check.
	if st := getStatus(t, ts1.URL, running.ID); st.State != serve.JobCancelled {
		t.Fatalf("running job ended %s after graceful shutdown, want cancelled", st.State)
	}
	preCSV := fetch(t, ts1.URL+"/api/v1/jobs/"+running.ID+"/export.csv", http.StatusOK, "")
	ts1.Close()
	closeSt1()

	st2, _ := openStore(t, dir)
	_, coord := newCoordinator(t, sched.Options{Workers: []string{wts.URL}, Store: st2})
	if st := getStatus(t, coord.URL, running.ID); st.State != serve.JobCancelled {
		t.Errorf("restored running job is %s, want cancelled", st.State)
	}
	if got := fetch(t, coord.URL+"/api/v1/jobs/"+running.ID+"/export.csv", http.StatusOK, ""); !bytes.Equal(got, preCSV) {
		t.Errorf("cancelled job's export changed across the restart:\n--- got ---\n%.400s\n--- want ---\n%.400s", got, preCSV)
	}

	final := waitState(t, coord.URL, queued.ID, func(s serve.JobStatus) bool { return s.State.Terminal() || s.State == sched.JobDegraded })
	if final.State != serve.JobDone {
		t.Fatalf("re-queued job ended %s (%s)", final.State, final.Error)
	}
	want := runReference(t, queuedBody, exportPaths)
	compareExports(t, coord.URL+"/api/v1/jobs/"+queued.ID, want)

	if v := metricValue(t, coord.URL, "darco_sched_recovery_requeued_jobs"); v != 1 {
		t.Errorf("requeued_jobs = %d, want 1", v)
	}
	if v := metricValue(t, coord.URL, "darco_sched_recovery_resumed_jobs"); v != 0 {
		t.Errorf("resumed_jobs = %d, want 0 after a clean shutdown", v)
	}
}

// TestSchedJournalCorruption crashes the coordinator, damages the
// journal tail the way a torn write would, and requires the restart to
// salvage the intact prefix, finish the campaign to reference bytes,
// and serve identical bytes again after a further clean restart.
func TestSchedJournalCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"truncated-tail", func(data []byte) []byte { return data[:len(data)-5] }},
		{"crc-flip", func(data []byte) []byte {
			data[len(data)-3] ^= 0xFF
			return data
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, wts := newWorker(t, serve.Options{Workers: 2, QueueCapacity: 8})
			body := `{"name":"torn","parallelism":1,"scenarios":[` +
				`{"profile":"429.mcf","scale":0.1},{"profile":"429.mcf","scale":5,"name":"slow"},{"profile":"470.lbm","scale":0.1}]}`
			dir := t.TempDir()

			st1, closeSt1 := openStore(t, dir)
			c1, ts1 := startCrashable(t, sched.Options{Workers: []string{wts.URL}, Store: st1})
			job := submit(t, ts1.URL, body, http.StatusAccepted)
			waitState(t, ts1.URL, job.ID, func(s serve.JobStatus) bool { return s.Completed >= 1 })
			c1.Halt()
			ts1.Close()
			closeSt1()

			path := filepath.Join(dir, "journal.wal")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}

			st2, closeSt2 := openStore(t, dir)
			if rec := st2.Recovery(); rec.Corrupt == "" || rec.DiscardedBytes == 0 {
				t.Fatalf("corruption not detected: %+v", rec)
			}
			c2, ts2 := startCrashable(t, sched.Options{Workers: []string{wts.URL}, Store: st2})
			final := waitState(t, ts2.URL, job.ID, func(s serve.JobStatus) bool { return s.State.Terminal() || s.State == sched.JobDegraded })
			if final.State != serve.JobDone {
				t.Fatalf("salvaged job ended %s (%s)", final.State, final.Error)
			}
			want := runReference(t, body, exportPaths)
			compareExports(t, ts2.URL+"/api/v1/jobs/"+job.ID, want)
			if v := metricValue(t, ts2.URL, "darco_sched_recovery_salvage_discarded_bytes"); v == 0 {
				t.Errorf("salvage_discarded_bytes = 0, want > 0")
			}
			shutCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := c2.Shutdown(shutCtx); err != nil {
				t.Fatalf("post-salvage shutdown: %v", err)
			}
			ts2.Close()
			closeSt2()

			// A further restart serves the same bytes: the salvaged and
			// completed history is now snapshot-frozen.
			st3, _ := openStore(t, dir)
			_, coord := newCoordinator(t, sched.Options{Workers: []string{wts.URL}, Store: st3})
			compareExports(t, coord.URL+"/api/v1/jobs/"+job.ID, want)
		})
	}
}

// TestWorkerDeregistration covers the pool's DELETE endpoint (by
// worker_id and by host:port) and the idempotent re-register.
func TestWorkerDeregistration(t *testing.T) {
	_, w1 := newWorker(t, serve.Options{Workers: 1, QueueCapacity: 4})
	_, w2 := newWorker(t, serve.Options{Workers: 1, QueueCapacity: 4})
	_, coord := newCoordinator(t, sched.Options{Workers: []string{w1.URL, w2.URL}})

	listWorkers := func() []sched.WorkerInfo {
		t.Helper()
		var infos []sched.WorkerInfo
		if err := json.Unmarshal(fetch(t, coord.URL+"/api/v1/workers", http.StatusOK, "application/json"), &infos); err != nil {
			t.Fatal(err)
		}
		return infos
	}
	del := func(key string, want int) {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, coord.URL+"/api/v1/workers/"+key, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("DELETE %s: status %d, want %d", key, resp.StatusCode, want)
		}
	}

	infos := listWorkers()
	if len(infos) != 2 {
		t.Fatalf("%d workers registered, want 2", len(infos))
	}
	if infos[0].ID == "" {
		t.Fatalf("worker %s has no probed id: %+v", infos[0].URL, infos[0])
	}

	del(infos[0].ID, http.StatusOK) // by worker_id
	if infos = listWorkers(); len(infos) != 1 || infos[0].URL != w2.URL {
		t.Fatalf("after deregistration: %+v", infos)
	}
	del("unknown-worker", http.StatusNotFound)

	u, err := url.Parse(w2.URL)
	if err != nil {
		t.Fatal(err)
	}
	del(u.Host, http.StatusOK) // by host:port
	if infos = listWorkers(); len(infos) != 0 {
		t.Fatalf("pool not empty: %+v", infos)
	}

	// Registration is idempotent: first POST creates, the second
	// re-probes the same entry.
	reg := func(want int) {
		t.Helper()
		resp, err := http.Post(coord.URL+"/api/v1/workers", "application/json",
			strings.NewReader(`{"url":"`+w1.URL+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("register: status %d, want %d", resp.StatusCode, want)
		}
	}
	reg(http.StatusCreated)
	reg(http.StatusOK)
	if infos = listWorkers(); len(infos) != 1 || infos[0].URL != w1.URL {
		t.Fatalf("after re-registration: %+v", infos)
	}
}
