// Package sched is the fleet coordinator: an HTTP daemon that accepts
// the same campaign submissions as darco/serve, shards the scenario
// roster across a pool of darco-served workers, and merges the rows
// they stream back into exports that are byte-identical to a
// single-node run.
//
// # API
//
//	POST   /api/v1/jobs                submit a campaign (serve.SubmitRequest JSON) → 202 + JobStatus
//	GET    /api/v1/jobs                list jobs (?state=queued,running,... filters)
//	GET    /api/v1/jobs/{id}           one job's JobStatus
//	POST   /api/v1/jobs/{id}/cancel    stop a job (also DELETE /api/v1/jobs/{id})
//	GET    /api/v1/jobs/{id}/events    re-multiplexed live stream: SSE, or NDJSON with ?format=ndjson
//	GET    /api/v1/jobs/{id}/trace     stitched federated trace (coordinator + worker spans); ?format=chrome for Perfetto
//	GET    /api/v1/jobs/{id}/export.json|csv|ndjson|html
//	                                   merged results, same renderer as a worker
//	GET    /api/v1/workers             the worker pool with health and placement counters
//	POST   /api/v1/workers             register a worker ({"url": "http://host:port"})
//	GET    /healthz                    liveness + pool summary
//	GET    /metrics                    Prometheus-style exposition with per-worker counters
//
// # Why sharding preserves bytes
//
// Scenario rows carry only deterministic counters (darco's per-scenario
// Stats are pinned at any parallelism), and every export format is
// keyed on scenario order, not completion order. The coordinator
// expands the submission's roster exactly like a worker would, splits
// it into contiguous shards, and re-submits each shard as explicit
// profile × scale × name scenarios; the worker reproduces exactly the
// rows the same scenarios would have produced in one campaign. Merged
// through an export.Sequencer on global scenario index, the federated
// export.json, export.csv, export.ndjson, and export.html are
// byte-identical to the single-node bytes (the default, wall-stripped
// views; per-row wall metrics are not gathered, so ?wall=1 reports the
// coordinator's campaign wall with zero per-row columns).
//
// # Robustness
//
// Workers are health-probed (GET /healthz) in the background and on
// demand. A 429 from a worker's full queue backs the placement off
// without blacklisting it; a transport error marks the worker
// unhealthy until a probe sees it again. When a worker dies mid-shard
// — or a restarted worker reports the shard job interrupted — the
// coordinator re-dispatches only the scenarios whose rows it has not
// yet gathered, on the next worker, with capped exponential backoff.
// Rows from a shard that ended cancelled or interrupted are
// quarantined if they carry errors (a restarted daemon synthesizes
// error rows for never-finished scenarios; those must not leak into
// the merged export), while errorless rows count immediately — that is
// what "resuming from rows already gathered" means here. A shard that
// exhausts its retry budget degrades the job: the campaign ends in the
// coordinator-only "degraded" terminal state with synthesized error
// rows for the scenarios no worker could run.
package sched

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	darco "darco"
	"darco/export"
	"darco/obs"
	"darco/serve"
	"darco/store"
)

// Options configures a Coordinator. The zero value runs one federated
// campaign at a time over an empty pool (register workers via POST
// /api/v1/workers).
type Options struct {
	// Workers are the static worker base URLs ("http://host:port")
	// registered at startup; POST /api/v1/workers adds more at runtime.
	Workers []string

	// Jobs is how many federated campaigns run concurrently (min 1).
	Jobs int

	// QueueCapacity bounds how many accepted jobs may wait for a
	// runner (min 1); beyond it, submissions get 429.
	QueueCapacity int

	// MaxScenarios rejects submissions whose roster exceeds it (0 =
	// unlimited).
	MaxScenarios int

	// MaxShards caps how many shards one job fans out to (0 = one per
	// healthy worker at plan time).
	MaxShards int

	// ShardRetries is how many consecutive fruitless placement
	// attempts a shard survives before the job degrades (default 4;
	// attempts that gather new rows reset the budget).
	ShardRetries int

	// RetryBaseDelay/RetryMaxDelay bound the exponential backoff
	// between a shard's placement attempts (defaults 100ms and 5s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// ProbeInterval is the background health-probe period (default 5s).
	ProbeInterval time.Duration

	// RequestTimeout bounds every control-plane request to a worker —
	// submit, status, probe, harvest, cancel. Event streams are not
	// subject to it (default 15s).
	RequestTimeout time.Duration

	// ReplayBuffer bounds each federated job's event replay ring
	// (< 1 selects the stream package default).
	ReplayBuffer int

	// Store, when non-nil, is the coordinator's durable state: every
	// federated job's lifecycle — submission, shard plan, placement
	// leases, gathered rows at global indices, shard and job terminals
	// — is journaled through it, and its recovered histories are
	// restored (terminal jobs served, queued jobs re-queued, mid-run
	// jobs resumed by re-adopting their worker-side shard jobs) at
	// New. The caller owns the store and closes it after Shutdown.
	Store *store.Store

	// Client overrides the HTTP client used for worker control-plane
	// requests (tests). Event streams always use a timeout-free copy.
	Client *http.Client

	// Log receives structured operational log records (nil = discard).
	Log *slog.Logger

	// StoreMetrics, when non-nil, are the latency histograms the
	// caller's durable store reports into; the coordinator exposes them
	// on /metrics as darco_store_append_seconds / darco_store_fsync_seconds.
	StoreMetrics *store.Metrics
}

func (o Options) withDefaults() Options {
	if o.Jobs < 1 {
		o.Jobs = 1
	}
	if o.QueueCapacity < 1 {
		o.QueueCapacity = 16
	}
	if o.ShardRetries < 1 {
		o.ShardRetries = 4
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 100 * time.Millisecond
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = 5 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 15 * time.Second
	}
	return o
}

// Coordinator is the fleet daemon: an http.Handler plus the job queue,
// shard runners, and worker pool behind it. Create with New, serve it
// with any net/http server, stop it with Shutdown.
type Coordinator struct {
	opts    Options
	mux     *http.ServeMux
	jobs    *registry
	pool    *pool
	start   time.Time
	id      string // coordinator instance id for /healthz and trace spans
	log     *slog.Logger
	metrics *schedMetrics

	client       *http.Client // control plane; per-request timeouts via context
	streamClient *http.Client // event streams; no overall timeout

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	// halted simulates a crash (tests): once set, nothing more reaches
	// the journal and worker-side shard jobs are left untouched, so the
	// on-disk and worker-side state freeze exactly as SIGKILL would
	// leave them.
	halted atomic.Bool

	// recov counts what recovery did; exposed on /metrics.
	recov recoveryStats

	mu      sync.Mutex
	queue   chan *job
	closing bool
}

// recoveryStats are the darco_sched_recovery_* counters: what the last
// restore salvaged and how. Atomics because adoption updates them from
// concurrent shard gatherers.
type recoveryStats struct {
	resumedJobs      atomic.Uint64 // mid-run jobs resumed by re-adoption
	requeuedJobs     atomic.Uint64 // queued jobs re-queued
	readoptedShards  atomic.Uint64 // shard jobs re-attached on their worker
	backfilledRows   atomic.Uint64 // rows recovered through re-adoption
	redispatched     atomic.Uint64 // shards whose lease was dead → re-dispatch path
	salvageDiscarded atomic.Uint64 // journal bytes dropped by corruption salvage
}

// New builds a Coordinator over the static worker list, probes it
// once, and starts the runners and the background prober. It fails
// only on malformed worker URLs — unreachable workers are fine, the
// prober picks them up when they appear.
func New(opts Options) (*Coordinator, error) {
	c := &Coordinator{
		opts:  opts.withDefaults(),
		jobs:  newRegistry(),
		pool:  newPool(),
		start: time.Now(),
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "darco-sched"
	}
	c.id = fmt.Sprintf("%s-%d", host, os.Getpid())
	c.log = c.opts.Log
	if c.log == nil {
		c.log = slog.New(slog.DiscardHandler)
	}
	c.client = c.opts.Client
	if c.client == nil {
		c.client = &http.Client{}
	}
	// Streams must outlive any client-level timeout; copy the
	// transport but not the deadline.
	c.streamClient = &http.Client{Transport: c.client.Transport}
	for _, raw := range c.opts.Workers {
		if _, _, err := c.pool.add(raw); err != nil {
			return nil, err
		}
	}
	c.baseCtx, c.stop = context.WithCancel(context.Background())
	c.initMetrics()
	// Restore before the runners start: recovered jobs enter the queue
	// first, and the queue widens past the configured capacity if the
	// journal holds more live jobs than it (none may be dropped).
	// Submission capacity checks are against the configured capacity,
	// so a widened queue does not raise the operator's shed point.
	requeue := c.restoreJobs()
	capacity := c.opts.QueueCapacity
	if len(requeue) > capacity {
		capacity = len(requeue)
	}
	c.queue = make(chan *job, capacity)
	for _, j := range requeue {
		c.queue <- j
	}
	c.mux = c.routes()
	c.probeAll(c.baseCtx)
	for i := 0; i < c.opts.Jobs; i++ {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			for j := range c.queue {
				c.runJob(j)
			}
		}()
	}
	c.wg.Add(1)
	go c.prober()
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// Shutdown stops the coordinator gracefully: new submissions are
// rejected, running federated jobs are cancelled (their worker-side
// shard jobs cancelled best-effort) and journaled terminal, queued
// jobs are left queued in the journal for the next start to re-queue,
// and — once every runner has drained — a clean-shutdown marker is
// journaled so the next open can tell this stop from a crash.
// Idempotent; the marker only lands if the drain beat ctx.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	already := c.closing
	c.closing = true
	if !already {
		close(c.queue)
	}
	c.mu.Unlock()
	c.stop()
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Every gatherer and runner is stopped and its terminal
		// records are on disk; the marker is the last write, so its
		// presence certifies the whole drain.
		if !already {
			c.journal(store.Record{Kind: store.KindCleanShutdown})
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("sched: shutdown: %w", ctx.Err())
	}
}

// Halt simulates the coordinator dying (tests): journal writes,
// compaction, and worker-side shard cancels are suppressed, then the
// goroutines are drained. The data directory and the workers are left
// exactly as SIGKILL at this instant would leave them — no terminal
// records, no clean-shutdown marker, shard jobs still running.
func (c *Coordinator) Halt() {
	c.halted.Store(true)
	c.mu.Lock()
	already := c.closing
	c.closing = true
	if !already {
		close(c.queue)
	}
	c.mu.Unlock()
	c.stop()
	c.wg.Wait()
}

// journal appends one record to the durable store, if there is one.
// Journal failures never fail the job — the coordinator keeps serving
// from memory and the operator sees the log line. A halted (crashing)
// coordinator writes nothing.
func (c *Coordinator) journal(rec store.Record) {
	if c.opts.Store == nil || c.halted.Load() {
		return
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	if err := c.opts.Store.Append(rec); err != nil {
		c.log.Error("journal append failed", "kind", string(rec.Kind), "job_id", rec.Job, "err", err)
	}
}

// compact freezes a terminal job's journal records into its snapshot.
func (c *Coordinator) compact(id string) {
	if c.opts.Store == nil || c.halted.Load() {
		return
	}
	if err := c.opts.Store.CompactJob(id); err != nil {
		c.log.Error("snapshot compaction failed", "job_id", id, "err", err)
	}
}

// finishJob journals a job's terminal record, compacts its history
// into a snapshot, and returns the final status.
func (c *Coordinator) finishJob(j *job) serve.JobStatus {
	j.mu.Lock()
	fin := &store.FinishedRecord{
		State:       string(j.state),
		WallMS:      j.wallMS,
		Parallelism: len(j.shards),
	}
	if j.err != nil {
		fin.Error = j.err.Error()
	}
	when := j.finished
	j.mu.Unlock()
	c.journal(store.Record{Kind: store.KindFinished, Job: j.id, Time: when, Finished: fin})
	c.compact(j.id)
	return j.status()
}

// enqueue admits a validated job or reports why it cannot run now. The
// submitted record is journaled under the same lock that reserves the
// queue slot: it must land before a runner can pop the job (records
// stay in lifecycle order) and must not land at all for a rejected
// submission (a 429'd job re-queued after a restart would be a ghost).
func (c *Coordinator) enqueue(j *job) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closing {
		return errClosing
	}
	// Capacity is checked against the configured capacity, not the
	// channel's: a channel widened for a restored backlog must not
	// raise the shed point for new submissions.
	if len(c.queue) >= c.opts.QueueCapacity {
		return errQueueFull
	}
	c.journal(store.Record{Kind: store.KindSubmitted, Job: j.id, Time: j.submitted,
		Submitted: &store.SubmittedRecord{Name: j.name, Scenarios: len(j.roster), Request: j.raw,
			TraceID: j.traceID, ParentSpan: j.parentSpan}})
	c.queue <- j
	return nil
}

var (
	errClosing   = fmt.Errorf("coordinator is shutting down")
	errQueueFull = fmt.Errorf("job queue is full")
)

// runJob drives one federated campaign: plan shards over the healthy
// pool, gather each shard concurrently, then settle the terminal state
// and seal the merged row set. A resumed job re-enters here with its
// journaled plan and placement leases instead of planning afresh.
func (c *Coordinator) runJob(j *job) {
	// Release the job's context registration in baseCtx once terminal.
	defer j.cancel()
	if err := j.ctx.Err(); err != nil {
		j.mu.Lock()
		clientCancel := j.cancelRequested
		j.mu.Unlock()
		if !clientCancel {
			// The coordinator is stopping, not the client cancelling:
			// leave the job queued on disk (no terminal record) so the
			// next start re-queues it instead of failing it.
			j.events.Close()
			return
		}
		// Cancelled while queued: never started, every row synthesized
		// — mirroring the worker daemon's cancelled-while-queued
		// outcome.
		if j.markCancelled(fmt.Errorf("cancelled while queued: %w", err)) {
			c.sealJob(j, j.allIndices())
			c.finishSpans(j)
			j.events.PublishTransient(serve.EventState, c.finishJob(j))
		}
		j.events.Close()
		return
	}

	j.mu.Lock()
	j.state = serve.JobRunning
	if !j.resumed {
		j.started = time.Now()
	}
	j.runSpan = obs.NewSpanID()
	started := j.started
	submitted := j.submitted
	resumed := j.resumed
	j.mu.Unlock()
	j.events.PublishTransient(serve.EventState, j.status())
	if !resumed {
		c.metrics.queueWait.Observe(started.Sub(submitted).Seconds())
		c.startSpans(j, started)
	}

	if j.resumed {
		c.log.Info("job resumed", "job_id", j.id, "trace_id", j.traceID,
			"scenarios", len(j.roster), "shards", len(j.shards), "rows_recovered", j.status().Completed)
	} else {
		c.journal(store.Record{Kind: store.KindStarted, Job: j.id, Time: started})
		// Plan one shard per healthy worker (capped), so a fully-live
		// pool takes one shard each; zero healthy workers still plan a
		// single shard whose placement loop waits for the pool to come
		// up.
		healthy := c.pool.healthyCount()
		if healthy == 0 {
			healthy = c.probeAll(j.ctx)
		}
		k := healthy
		if c.opts.MaxShards > 0 && k > c.opts.MaxShards {
			k = c.opts.MaxShards
		}
		j.shards = planShards(len(j.roster), k)
		specs := make([]store.ShardSpec, len(j.shards))
		for i, sh := range j.shards {
			specs[i] = store.ShardSpec{Start: sh.indices[0], Count: len(sh.indices)}
		}
		c.journal(store.Record{Kind: store.KindShardPlan, Job: j.id,
			ShardPlan: &store.ShardPlanRecord{Shards: specs}})
		c.log.Info("job running", "job_id", j.id, "trace_id", j.traceID,
			"scenarios", len(j.roster), "shards", len(j.shards), "healthy_workers", healthy)
	}

	shardErrs := make([]error, len(j.shards))
	var wg sync.WaitGroup
	for i, sh := range j.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			shardStart := time.Now()
			shardErrs[i] = c.runShard(j, sh)
			c.shardSpan(j, sh, shardStart, time.Now(), shardErrs[i])
		}(i, sh)
	}
	wg.Wait()

	cancelled := j.ctx.Err() != nil
	if cancelled {
		for _, sh := range j.shards {
			c.cancelShard(sh)
		}
	}

	missing := j.missingOf(j.allIndices())
	j.mu.Lock()
	switch {
	case cancelled:
		if !terminal(j.state) { // cancel handler may have marked it already
			j.state = serve.JobCancelled
			if j.err == nil {
				j.err = fmt.Errorf("cancelled: %w", j.ctx.Err())
			}
		}
	case len(missing) > 0:
		j.state = JobDegraded
		for _, err := range shardErrs {
			if err != nil {
				j.err = fmt.Errorf("worker pool exhausted: %w", err)
				break
			}
		}
		if j.err == nil {
			j.err = fmt.Errorf("worker pool exhausted")
		}
	case j.failed > 0:
		j.state = serve.JobFailed
		j.err = fmt.Errorf("%d of %d scenarios failed", j.failed, len(j.roster))
	default:
		j.state = serve.JobDone
	}
	j.mu.Unlock()

	c.sealJob(j, missing)
	c.finishSpans(j)
	st := c.finishJob(j)
	c.log.Info("job finished", "job_id", j.id, "trace_id", j.traceID, "state", string(st.State),
		"completed", st.Completed, "scenarios", st.Scenarios, "failed", st.Failed)
	j.events.PublishTransient(serve.EventState, st)
	j.events.Close()
}

// sealJob synthesizes error rows for the scenarios no worker produced
// (carrying the job's terminal reason, like the worker daemon's
// interrupted/cancelled exports), closes the row sequencer, and marks
// the merged result exportable.
func (c *Coordinator) sealJob(j *job, missing []int) {
	j.mu.Lock()
	reason := j.err
	j.finished = time.Now()
	j.mu.Unlock()
	if reason == nil {
		reason = fmt.Errorf("scenario never ran")
	}
	for _, gi := range missing {
		row := export.NewRow(&darco.ScenarioResult{Scenario: j.roster[gi], Err: reason})
		j.commit(gi, row)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.seq.Close(); err != nil {
		// Unreachable by construction (missing covered every gap), but
		// a hole must not produce a silently-short export.
		c.log.Error("sealing merged rows failed", "job_id", j.id, "err", err)
	}
	if !j.started.IsZero() {
		j.wallMS = float64(j.finished.Sub(j.started).Nanoseconds()) / 1e6
	}
	j.ready = true
}

// allIndices returns 0..len(roster)-1.
func (j *job) allIndices() []int {
	out := make([]int, len(j.roster))
	for i := range out {
		out[i] = i
	}
	return out
}
