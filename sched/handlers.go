package sched

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	darco "darco"
	"darco/export"
	"darco/internal/stream"
	"darco/obs"
	"darco/serve"
	"darco/store"
)

// apiError is the JSON error envelope every non-2xx response carries —
// the same shape the worker daemon uses.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := export.EncodeJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (c *Coordinator) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", c.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", c.handleStatus)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", c.handleCancel)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/trace", c.handleTrace)
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.json", c.handleExport("json"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.csv", c.handleExport("csv"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.ndjson", c.handleExport("ndjson"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.html", c.handleExport("html"))
	mux.HandleFunc("GET /api/v1/workers", c.handleWorkers)
	mux.HandleFunc("POST /api/v1/workers", c.handleRegisterWorker)
	mux.HandleFunc("DELETE /api/v1/workers/{id}", c.handleDeregisterWorker)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

// maxSubmitBytes mirrors the worker daemon's submission-size bound.
const maxSubmitBytes = 1 << 20

// handleSubmit validates a campaign submission at the coordinator's
// edge — same SubmitRequest schema, same roster expansion, same engine
// validation a worker performs — then queues it for sharding. A bad
// submission never reaches a worker.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The body is buffered whole before parsing: the raw bytes are the
	// submission's durable representation — journaled with the job and
	// replayed through this same validator after a restart.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	var req *serve.SubmitRequest
	if err == nil {
		req, err = serve.ParseSubmit(bytes.NewReader(raw))
	}
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "%v", err)
		return
	}
	roster, err := req.Roster()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if limit := c.opts.MaxScenarios; limit > 0 && len(roster) > limit {
		writeError(w, http.StatusBadRequest, "%d scenarios exceed the coordinator limit of %d", len(roster), limit)
		return
	}
	if req.Parallelism < 0 {
		writeError(w, http.StatusBadRequest, "parallelism %d is negative", req.Parallelism)
		return
	}
	if req.ScenarioTimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "scenario_timeout_ms %d is negative", req.ScenarioTimeoutMS)
		return
	}
	// Validate the engine configuration here so a misconfigured sweep
	// fails the submit, not every shard placement.
	opts, err := req.Engine.Options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, err := darco.NewEngine(opts...); err != nil {
		writeError(w, http.StatusBadRequest, "engine configuration: %v", err)
		return
	}

	j := newJob(req, roster, c.baseCtx, c.opts.ReplayBuffer)
	j.raw = raw
	j.journal = c.journal
	// Adopt the caller's trace context (another coordinator, a CI
	// harness) or start a fresh federated trace here at the edge.
	traceID, parentSpan, ok := obs.ExtractTrace(r.Header)
	if !ok {
		traceID = obs.NewTraceID()
	}
	j.traceID, j.parentSpan, j.rootSpan = traceID, parentSpan, obs.NewSpanID()
	c.jobs.add(j)
	if err := c.enqueue(j); err != nil {
		j.cancel()
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
		} else {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	c.log.Info("job accepted", "job_id", j.id, "trace_id", j.traceID, "scenarios", len(roster))
	w.Header().Set("Location", "/api/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleList serves the federated job listing in submission order,
// with the same ?state= grammar as the worker daemon (including the
// coordinator-only "degraded").
func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	filter, err := serve.ParseStateFilter(r.URL.Query().Get("state"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobs := c.jobs.list()
	out := make([]serve.JobStatus, 0, len(jobs))
	for _, j := range jobs {
		if st := j.status(); filter.Match(st.State) {
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := c.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return nil, false
	}
	return j, true
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := c.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleCancel stops a federated job: its context cancels every shard
// gatherer, and the job runner then cancels the worker-side shard jobs
// best-effort. Asynchronous and idempotent, like the worker daemon's.
func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookup(w, r)
	if !ok {
		return
	}
	// The request is journaled before the context cancels: a
	// coordinator that dies in between must not re-queue a job its
	// client already cancelled. cancelRequested also distinguishes this
	// client cancel from the coordinator's own shutdown for a job still
	// in the queue.
	j.mu.Lock()
	first := !j.cancelRequested && !terminal(j.state)
	j.cancelRequested = true
	j.mu.Unlock()
	if first {
		c.journal(store.Record{Kind: store.KindCancelRequested, Job: j.id})
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status())
}

// handleExport renders the merged federated rows through the same
// renderer a worker daemon uses, so the default views are
// byte-identical to a single-node run of the same submission. Under
// ?wall=1 the campaign-level wall is the coordinator's measured wall
// and "parallelism" is the shard count; per-row wall columns are zero
// (workers stream wall-stripped rows — per-row wall would not survive
// re-dispatch deterministically anyway).
func (c *Coordinator) handleExport(format string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := c.lookup(w, r)
		if !ok {
			return
		}
		rows, wallMS, shards, err := j.resultRows()
		if err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		if err := serve.WriteExport(w, r, format, rows, wallMS, shards); err != nil {
			c.log.Error("export write failed", "format", format, "job_id", j.id, "err", err)
		}
	}
}

// handleEvents streams the federated job's re-multiplexed frames —
// scenario rows and telemetry windows gathered from every shard,
// re-indexed to global scenario positions — as SSE or NDJSON, with the
// same replay/loss-marker semantics as a worker's stream.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookup(w, r)
	if !ok {
		return
	}
	stream.ServeStream(w, r, j.events, serve.EventState, func() any { return j.status() })
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	workers := c.pool.list()
	out := make([]WorkerInfo, 0, len(workers))
	for _, wk := range workers {
		out = append(out, wk.info())
	}
	writeJSON(w, http.StatusOK, out)
}

// registerRequest is the POST /api/v1/workers body.
type registerRequest struct {
	URL string `json:"url"`
}

// handleRegisterWorker adds a worker to the pool at runtime and probes
// it immediately, so a freshly started daemon can self-register and be
// schedulable in one round trip. Re-registering an existing URL just
// re-probes it.
func (c *Coordinator) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	if req.URL == "" {
		writeError(w, http.StatusBadRequest, "missing \"url\"")
		return
	}
	wk, fresh, err := c.pool.add(req.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c.probe(c.baseCtx, wk)
	if fresh {
		c.log.Info("worker registered", "worker", wk.url)
		writeJSON(w, http.StatusCreated, wk.info())
		return
	}
	writeJSON(w, http.StatusOK, wk.info())
}

// handleDeregisterWorker removes a pool member by worker_id, full URL,
// or URL host:port. Shards already gathering from it run to completion
// on their own references; the worker is simply never placed again.
func (c *Coordinator) handleDeregisterWorker(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("id")
	wk, ok := c.pool.remove(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no such worker %q", key)
		return
	}
	c.log.Info("worker deregistered", "worker", wk.url)
	writeJSON(w, http.StatusOK, wk.info())
}

// Health is the coordinator's /healthz payload: liveness plus a pool
// summary. WorkerID follows the worker daemon's convention so fleet
// tooling can treat every darco daemon uniformly.
type Health struct {
	Status         string  `json:"status"`
	Version        string  `json:"version"`
	WorkerID       string  `json:"worker_id"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	WorkersTotal   int     `json:"workers_total"`
	WorkersHealthy int     `json:"workers_healthy"`
	QueueDepth     int     `json:"queue_depth"`
	QueueCapacity  int     `json:"queue_capacity"`
	Jobs           int     `json:"jobs"`
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:         "ok",
		Version:        darco.Version,
		WorkerID:       c.id,
		UptimeSeconds:  time.Since(c.start).Seconds(),
		WorkersTotal:   len(c.pool.list()),
		WorkersHealthy: c.pool.healthyCount(),
		QueueDepth:     len(c.queue),
		QueueCapacity:  c.opts.QueueCapacity,
		Jobs:           len(c.jobs.list()),
	})
}

// handleMetrics serves the coordinator's registry: federated jobs by
// state (including degraded), queue pressure, recovery counters,
// per-worker placement/gather/retry/rejection series keyed by worker
// URL, and the scheduling-latency histograms. State and per-worker
// families recompute on scrape (see metrics.go).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	c.metrics.reg.WritePrometheus(w)
}
