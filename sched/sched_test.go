package sched_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	darco "darco"
	"darco/internal/testutil"
	"darco/sched"
	"darco/serve"
)

// newWorker spins up one darco-served daemon behind httptest. The
// cleanup tolerates workers the test already crashed.
func newWorker(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("worker shutdown: %v", err)
		}
	})
	return s, ts
}

// crashWorker kills a worker the way SIGKILL looks from the
// coordinator: every open connection (event streams included) dies
// mid-frame and the endpoint stops accepting, with no graceful
// cancel/terminal records sent. The server machinery is then reaped so
// the test stays race- and goroutine-clean.
func crashWorker(t *testing.T, s *serve.Server, ts *httptest.Server) {
	t.Helper()
	ts.CloseClientConnections()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("post-crash reap: %v", err)
	}
}

// newCoordinator builds a Coordinator over the given worker URLs and
// serves it behind httptest.
func newCoordinator(t *testing.T, opts sched.Options) (*sched.Coordinator, *httptest.Server) {
	t.Helper()
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 200 * time.Millisecond
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 10 * time.Second
	}
	if opts.RetryBaseDelay == 0 {
		opts.RetryBaseDelay = 20 * time.Millisecond
	}
	if opts.Log == nil {
		opts.Log = testutil.Slogger(t)
	}
	c, err := sched.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := c.Shutdown(ctx); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
	})
	return c, ts
}

func submit(t *testing.T, base, body string, want int) serve.JobStatus {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("submit: status %d, want %d: %s", resp.StatusCode, want, raw)
	}
	var st serve.JobStatus
	if want == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("submit response: %v: %s", err, raw)
		}
	}
	return st
}

func getStatus(t *testing.T, base, id string) serve.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %d", id, resp.StatusCode)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, base, id string, pred func(serve.JobStatus) bool) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the wanted state (last: %+v)", id, getStatus(t, base, id))
	return serve.JobStatus{}
}

func fetch(t *testing.T, url string, wantCode int, wantType string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d: %s", url, resp.StatusCode, wantCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); wantType != "" && !strings.HasPrefix(ct, wantType) {
		t.Errorf("GET %s: content-type %q, want prefix %q", url, ct, wantType)
	}
	return body
}

// runReference runs the same submission on a standalone worker and
// returns its export bytes per format path.
func runReference(t *testing.T, body string, paths []string) map[string][]byte {
	t.Helper()
	_, ref := newWorker(t, serve.Options{Workers: 1, QueueCapacity: 4})
	st := submit(t, ref.URL, body, http.StatusAccepted)
	waitState(t, ref.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		out[p] = fetch(t, ref.URL+"/api/v1/jobs/"+st.ID+p, http.StatusOK, "")
	}
	return out
}

var exportPaths = []string{"/export.json", "/export.csv", "/export.ndjson", "/export.html"}

// TestFederatedExportsByteIdentical is the tentpole's golden test: a
// campaign sharded over three workers exports, in all four formats,
// exactly the bytes a single-node run of the same submission produces.
func TestFederatedExportsByteIdentical(t *testing.T) {
	body := `{"name":"golden","suite":{"scale":0.05},` +
		`"scenarios":[{"profile":"429.mcf","scale":0.2},{"profile":"470.lbm","scale":0.1,"name":"lbm-small"}]}`

	var urls []string
	for i := 0; i < 3; i++ {
		_, ts := newWorker(t, serve.Options{Workers: 2, QueueCapacity: 8})
		urls = append(urls, ts.URL)
	}
	_, coord := newCoordinator(t, sched.Options{Workers: urls})

	st := submit(t, coord.URL, body, http.StatusAccepted)
	if st.State != serve.JobQueued {
		t.Fatalf("accepted job state %s", st.State)
	}
	final := waitState(t, coord.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() || s.State == sched.JobDegraded })
	if final.State != serve.JobDone {
		t.Fatalf("federated job ended %s (%s)", final.State, final.Error)
	}
	if final.Completed != final.Scenarios || final.Failed != 0 {
		t.Fatalf("federated counters: %+v", final)
	}

	want := runReference(t, body, exportPaths)
	base := coord.URL + "/api/v1/jobs/" + st.ID
	for _, p := range exportPaths {
		testutil.RequireSameBytes(t, p+" federated vs single-node", fetch(t, base+p, http.StatusOK, ""), want[p])
	}

	// ?wall=1 carries the coordinator's campaign wall and the shard
	// count as the parallelism field (per-row wall columns are zero:
	// workers stream wall-stripped rows).
	var doc struct {
		WallMS  float64 `json:"wall_ms"`
		Workers int     `json:"parallelism"`
	}
	if err := json.Unmarshal(fetch(t, base+"/export.json?wall=1", http.StatusOK, "application/json"), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.WallMS <= 0 || doc.Workers != 3 {
		t.Errorf("?wall=1 campaign fields: wall_ms %g, parallelism %d (want >0, 3)", doc.WallMS, doc.Workers)
	}

	// The re-multiplexed event stream replays one scenario frame per
	// global index, each carrying the federated job id.
	resp, err := http.Get(base + "/events?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	seen := make(map[int]bool)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f struct {
			Event string          `json:"event"`
			Data  json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		if f.Event != serve.EventScenario {
			continue
		}
		var ev serve.ScenarioEvent
		if err := json.Unmarshal(f.Data, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Job != st.ID {
			t.Errorf("scenario frame for job %s, want %s", ev.Job, st.ID)
		}
		if seen[ev.Index] {
			t.Errorf("scenario frame for index %d replayed twice", ev.Index)
		}
		seen[ev.Index] = true
	}
	if len(seen) != final.Scenarios {
		t.Errorf("event stream replayed %d scenario frames, want %d", len(seen), final.Scenarios)
	}

	// Pool surfaces: every worker probed healthy, rows attributed.
	var infos []sched.WorkerInfo
	if err := json.Unmarshal(fetch(t, coord.URL+"/api/v1/workers", http.StatusOK, "application/json"), &infos); err != nil {
		t.Fatal(err)
	}
	var rows uint64
	for _, wi := range infos {
		if !wi.Healthy || wi.ID == "" || wi.Version != darco.Version {
			t.Errorf("worker info: %+v", wi)
		}
		rows += wi.RowsGathered
	}
	if int(rows) != final.Scenarios {
		t.Errorf("workers gathered %d rows, want %d", rows, final.Scenarios)
	}

	metrics := fetch(t, coord.URL+"/metrics", http.StatusOK, "text/plain")
	for _, needle := range []string{
		`darco_sched_jobs{state="done"} 1`,
		"darco_sched_worker_rows_gathered_total",
		"darco_sched_worker_up",
	} {
		if !strings.Contains(string(metrics), needle) {
			t.Errorf("metrics missing %q", needle)
		}
	}

	var h sched.Health
	if err := json.Unmarshal(fetch(t, coord.URL+"/healthz", http.StatusOK, "application/json"), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != darco.Version || h.WorkerID == "" || h.WorkersHealthy != 3 {
		t.Errorf("healthz: %+v", h)
	}
}

// TestFederatedFailureParity: genuinely failing scenarios (instruction
// budget exhausted on every worker, deterministically) federate like
// successes — the job ends failed and the merged exports carry the
// same error rows, byte-identical to a single-node run.
func TestFederatedFailureParity(t *testing.T) {
	body := `{"scenarios":[{"profile":"429.mcf","scale":0.1},{"profile":"470.lbm","scale":0.1},{"profile":"429.mcf","scale":0.1,"name":"again"}],` +
		`"engine":{"max_guest_insns":5000}}`

	var urls []string
	for i := 0; i < 2; i++ {
		_, ts := newWorker(t, serve.Options{Workers: 1, QueueCapacity: 4})
		urls = append(urls, ts.URL)
	}
	_, coord := newCoordinator(t, sched.Options{Workers: urls})

	st := submit(t, coord.URL, body, http.StatusAccepted)
	final := waitState(t, coord.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() || s.State == sched.JobDegraded })
	if final.State != serve.JobFailed {
		t.Fatalf("federated job ended %s (%s), want failed", final.State, final.Error)
	}
	if final.Failed != 3 {
		t.Fatalf("failed scenarios %d, want 3", final.Failed)
	}

	want := runReference(t, body, exportPaths)
	base := coord.URL + "/api/v1/jobs/" + st.ID
	for _, p := range exportPaths {
		testutil.RequireSameBytes(t, p+" federated vs single-node", fetch(t, base+p, http.StatusOK, ""), want[p])
	}
}

// shardJobOn finds the worker currently running a shard job whose name
// carries the given prefix, returning its pool index or -1.
func shardJobOn(t *testing.T, urls []string, prefix string) int {
	t.Helper()
	for i, u := range urls {
		resp, err := http.Get(u + "/api/v1/jobs?state=running")
		if err != nil {
			continue
		}
		var jobs []serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&jobs)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, j := range jobs {
			if strings.HasPrefix(j.Name, prefix) {
				return i
			}
		}
	}
	return -1
}

// TestWorkerKillMidCampaign is the acceptance e2e: two workers split a
// campaign, the worker holding the slow shard is SIGKILL-crashed while
// mid-scenario, the coordinator re-dispatches the missing scenarios to
// the survivor, and the merged CSV is still byte-identical to an
// unsharded run. Run under -race.
func TestWorkerKillMidCampaign(t *testing.T) {
	// Contiguous split over 2 workers: shard 0 = scenarios 0,1 (fast),
	// shard 1 = scenarios 2,3 with the slow scale-5 scenario first —
	// the kill window — serialized by parallelism 1.
	body := `{"name":"kill","parallelism":1,"scenarios":[` +
		`{"profile":"429.mcf","scale":0.1},{"profile":"470.lbm","scale":0.1},` +
		`{"profile":"429.mcf","scale":5,"name":"slow"},{"profile":"470.lbm","scale":0.1}]}`

	srvs := make([]*serve.Server, 2)
	tss := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i := range srvs {
		srvs[i], tss[i] = newWorker(t, serve.Options{Workers: 1, QueueCapacity: 4})
		urls[i] = tss[i].URL
	}
	_, coord := newCoordinator(t, sched.Options{Workers: urls, ShardRetries: 6})

	st := submit(t, coord.URL, body, http.StatusAccepted)

	// Find which worker shard 1 landed on, then crash it while its slow
	// scenario is grinding.
	victim := -1
	deadline := time.Now().Add(60 * time.Second)
	for victim < 0 && time.Now().Before(deadline) {
		victim = shardJobOn(t, urls, st.ID+"/shard-1#")
		if victim < 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if victim < 0 {
		t.Fatal("shard 1 never showed up running on a worker")
	}
	crashWorker(t, srvs[victim], tss[victim])
	t.Logf("crashed worker %d (%s) while shard 1 ran", victim, urls[victim])

	final := waitState(t, coord.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() || s.State == sched.JobDegraded })
	if final.State != serve.JobDone {
		t.Fatalf("federated job ended %s (%s), want done despite the crash", final.State, final.Error)
	}

	want := runReference(t, body, []string{"/export.csv"})
	testutil.RequireSameBytes(t, "merged CSV federated vs unsharded",
		fetch(t, coord.URL+"/api/v1/jobs/"+st.ID+"/export.csv", http.StatusOK, "text/csv"), want["/export.csv"])

	// The re-dispatch is visible in the pool counters: the victim is
	// unhealthy with a retry charged, and the survivor gathered rows.
	var infos []sched.WorkerInfo
	if err := json.Unmarshal(fetch(t, coord.URL+"/api/v1/workers", http.StatusOK, "application/json"), &infos); err != nil {
		t.Fatal(err)
	}
	for _, wi := range infos {
		if wi.URL == urls[victim] {
			if wi.Healthy || wi.Retries == 0 {
				t.Errorf("victim worker info: %+v", wi)
			}
		} else if wi.RowsGathered == 0 {
			t.Errorf("survivor gathered no rows: %+v", wi)
		}
	}
}

// TestPoolExhaustedDegrades: when every worker is gone and the retry
// budget runs out, the job ends in the coordinator-only degraded state
// — rows gathered before the death kept, never-run scenarios exported
// as error rows — and ?state=degraded finds it.
func TestPoolExhaustedDegrades(t *testing.T) {
	body := `{"parallelism":1,"scenarios":[` +
		`{"profile":"429.mcf","scale":0.1},{"profile":"429.mcf","scale":5,"name":"slow"}]}`

	srv, ts := newWorker(t, serve.Options{Workers: 1, QueueCapacity: 4})
	_, coord := newCoordinator(t, sched.Options{
		Workers:      []string{ts.URL},
		ShardRetries: 2,
	})

	st := submit(t, coord.URL, body, http.StatusAccepted)
	// Wait until the fast scenario's row is gathered, so the degraded
	// export proves gathered rows survive pool exhaustion.
	waitState(t, coord.URL, st.ID, func(s serve.JobStatus) bool { return s.Completed >= 1 })
	crashWorker(t, srv, ts)

	final := waitState(t, coord.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() || s.State == sched.JobDegraded })
	if final.State != sched.JobDegraded {
		t.Fatalf("job ended %s (%s), want degraded", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "worker pool exhausted") {
		t.Errorf("degraded error: %q", final.Error)
	}
	if final.Completed != 2 || final.Failed != 1 {
		t.Errorf("degraded counters: %+v", final)
	}

	csv := fetch(t, coord.URL+"/api/v1/jobs/"+st.ID+"/export.csv", http.StatusOK, "text/csv")
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != 3 {
		t.Fatalf("degraded CSV rows: %d lines:\n%s", len(lines), csv)
	}
	if strings.Contains(lines[1], "exhausted") {
		t.Errorf("gathered row poisoned by the degradation: %s", lines[1])
	}
	if !strings.Contains(lines[2], "worker pool exhausted") {
		t.Errorf("never-run scenario lacks the degradation error: %s", lines[2])
	}

	// The listing filter speaks the extended state grammar.
	var list []serve.JobStatus
	if err := json.Unmarshal(fetch(t, coord.URL+"/api/v1/jobs?state=degraded", http.StatusOK, "application/json"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("?state=degraded listing: %+v", list)
	}
	fetch(t, coord.URL+"/api/v1/jobs?state=bogus", http.StatusBadRequest, "")
}

// TestBackpressure429: a worker whose queue is full bounces the shard
// with 429; the coordinator notes the rejection, keeps the worker
// healthy, and retries until the queue drains.
func TestBackpressure429(t *testing.T) {
	_, ts := newWorker(t, serve.Options{Workers: 1, QueueCapacity: 1})
	// Fill the worker: one slow job running, one queued — the queue is
	// now full, so the shard submission must bounce.
	running := submit(t, ts.URL, `{"scenarios":[{"profile":"429.mcf","scale":3}]}`, http.StatusAccepted)
	waitState(t, ts.URL, running.ID, func(s serve.JobStatus) bool { return s.State == serve.JobRunning })
	submit(t, ts.URL, `{"scenarios":[{"profile":"429.mcf","scale":0.1}]}`, http.StatusAccepted)

	_, coord := newCoordinator(t, sched.Options{
		Workers:      []string{ts.URL},
		ShardRetries: 40,
	})
	st := submit(t, coord.URL, `{"scenarios":[{"profile":"470.lbm","scale":0.1}]}`, http.StatusAccepted)
	final := waitState(t, coord.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() || s.State == sched.JobDegraded })
	if final.State != serve.JobDone {
		t.Fatalf("job ended %s (%s), want done after the queue drained", final.State, final.Error)
	}

	var infos []sched.WorkerInfo
	if err := json.Unmarshal(fetch(t, coord.URL+"/api/v1/workers", http.StatusOK, "application/json"), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("pool: %+v", infos)
	}
	if infos[0].Rejections == 0 {
		t.Error("no 429 rejection was recorded")
	}
	if !infos[0].Healthy {
		t.Error("backpressure marked the worker unhealthy")
	}
}

// TestWorkerRegistration: a coordinator started with an empty pool
// accepts jobs, and a worker registered at runtime via POST
// /api/v1/workers picks them up.
func TestWorkerRegistration(t *testing.T) {
	_, coord := newCoordinator(t, sched.Options{ShardRetries: 60})
	st := submit(t, coord.URL, `{"scenarios":[{"profile":"429.mcf","scale":0.1}]}`, http.StatusAccepted)

	_, ts := newWorker(t, serve.Options{Workers: 1, QueueCapacity: 4})
	resp, err := http.Post(coord.URL+"/api/v1/workers", "application/json",
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, ts.URL)))
	if err != nil {
		t.Fatal(err)
	}
	var wi sched.WorkerInfo
	if err := json.NewDecoder(resp.Body).Decode(&wi); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || !wi.Healthy || wi.ID == "" {
		t.Fatalf("registration: status %d, info %+v", resp.StatusCode, wi)
	}

	final := waitState(t, coord.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() || s.State == sched.JobDegraded })
	if final.State != serve.JobDone {
		t.Fatalf("job ended %s (%s), want done via the registered worker", final.State, final.Error)
	}

	// Re-registering the same URL is idempotent: 200, same pool entry.
	resp, err = http.Post(coord.URL+"/api/v1/workers", "application/json",
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, ts.URL)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("duplicate registration: status %d, want 200", resp.StatusCode)
	}
	fetch(t, coord.URL+"/api/v1/workers", http.StatusOK, "application/json")
}

// TestCancelFederated: cancelling a running federated job cancels its
// worker-side shards and seals a partial result — gathered rows kept,
// never-run scenarios exported as cancelled error rows.
func TestCancelFederated(t *testing.T) {
	body := `{"parallelism":1,"scenarios":[` +
		`{"profile":"429.mcf","scale":0.1},{"profile":"429.mcf","scale":5,"name":"slow"}]}`
	_, ts := newWorker(t, serve.Options{Workers: 1, QueueCapacity: 4})
	_, coord := newCoordinator(t, sched.Options{Workers: []string{ts.URL}})

	st := submit(t, coord.URL, body, http.StatusAccepted)
	waitState(t, coord.URL, st.ID, func(s serve.JobStatus) bool { return s.Completed >= 1 })
	req, err := http.NewRequest(http.MethodDelete, coord.URL+"/api/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	final := waitState(t, coord.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() || s.State == sched.JobDegraded })
	if final.State != serve.JobCancelled {
		t.Fatalf("job ended %s (%s), want cancelled", final.State, final.Error)
	}
	csv := fetch(t, coord.URL+"/api/v1/jobs/"+st.ID+"/export.csv", http.StatusOK, "text/csv")
	if lines := strings.Split(strings.TrimSpace(string(csv)), "\n"); len(lines) != 3 {
		t.Errorf("cancelled CSV rows: %d lines:\n%s", len(lines), csv)
	}

	// The worker-side shard job was told to stop too.
	var workerJobs []serve.JobStatus
	if err := json.Unmarshal(fetch(t, ts.URL+"/api/v1/jobs", http.StatusOK, "application/json"), &workerJobs); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		live := 0
		for _, j := range workerJobs {
			if !j.State.Terminal() {
				live++
			}
		}
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker still running shard jobs after federated cancel: %+v", workerJobs)
		}
		time.Sleep(10 * time.Millisecond)
		json.Unmarshal(fetch(t, ts.URL+"/api/v1/jobs", http.StatusOK, "application/json"), &workerJobs)
	}
}

// TestSubmitValidation: bad submissions die at the coordinator's edge
// with 400 — no worker sees them.
func TestSubmitValidation(t *testing.T) {
	_, coord := newCoordinator(t, sched.Options{MaxScenarios: 2})
	for _, c := range []struct {
		name, body string
	}{
		{"unknown profile", `{"scenarios":[{"profile":"nope"}]}`},
		{"empty roster", `{}`},
		{"unknown field", `{"scenariosz":[]}`},
		{"negative parallelism", `{"parallelism":-1,"scenarios":[{"profile":"429.mcf"}]}`},
		{"negative timeout", `{"scenario_timeout_ms":-5,"scenarios":[{"profile":"429.mcf"}]}`},
		{"over scenario limit", `{"suite":{}}`},
		{"bad engine", `{"engine":{"validate_every_n_syncs":-1},"scenarios":[{"profile":"429.mcf"}]}`},
	} {
		submit(t, coord.URL, c.body, http.StatusBadRequest)
	}
}
