package sched_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"darco/internal/testutil"
	"darco/obs"
	"darco/sched"
	"darco/serve"
)

// fetchTrace GETs a job's trace document.
func fetchTrace(t *testing.T, base, id string) obs.TraceDoc {
	t.Helper()
	var doc obs.TraceDoc
	raw := fetch(t, base+"/api/v1/jobs/"+id+"/trace", http.StatusOK, "application/json")
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	return doc
}

// checkStitched asserts a federated trace is one stitched tree: every
// span (coordinator's and both workers') carries the same trace id,
// each worker contributed spans, and each worker's job root is parented
// under a coordinator shard span so the whole thing resolves to a
// single root.
func checkStitched(t *testing.T, doc obs.TraceDoc, workerIDs []string) {
	t.Helper()
	services := map[string]int{}
	shardSpans := map[string]bool{}
	for _, sp := range doc.Spans {
		if sp.TraceID != doc.TraceID {
			t.Errorf("span %s (service %s) carries trace %s, want %s", sp.Name, sp.Service, sp.TraceID, doc.TraceID)
		}
		services[sp.Service]++
		if strings.HasPrefix(sp.Name, "shard ") {
			shardSpans[sp.SpanID] = true
		}
	}
	for _, w := range workerIDs {
		if services[w] == 0 {
			t.Errorf("no spans from worker %s in federated trace (services: %v)", w, services)
		}
	}
	if len(shardSpans) < 2 {
		t.Errorf("trace has %d shard spans, want >= 2", len(shardSpans))
	}
	stitched := 0
	for _, sp := range doc.Spans {
		if strings.HasPrefix(sp.Name, "job job-") && shardSpans[sp.Parent] {
			stitched++
		}
	}
	if stitched < 2 {
		t.Errorf("%d worker job spans parent under shard spans, want >= 2", stitched)
	}
	if len(doc.Tree) != 1 {
		names := make([]string, 0, len(doc.Tree))
		for _, n := range doc.Tree {
			names = append(names, n.Service+"/"+n.Name)
		}
		t.Errorf("trace resolves to %d roots %v, want 1 stitched tree", len(doc.Tree), names)
	}
}

// TestFederatedTraceStitchedAcrossRestart is the observability
// acceptance drill: a two-worker federated campaign yields one trace
// whose coordinator and worker spans share a trace id, and the trace is
// still retrievable — and still stitched — from a fresh coordinator
// restarted over the same store.
func TestFederatedTraceStitchedAcrossRestart(t *testing.T) {
	workerIDs := []string{"trace-w1", "trace-w2"}
	var urls []string
	for _, id := range workerIDs {
		_, ts := newWorker(t, serve.Options{Workers: 2, QueueCapacity: 8, WorkerID: id})
		urls = append(urls, ts.URL)
	}
	dir := t.TempDir()

	st1, closeSt1 := openStore(t, dir)
	c1, ts1 := startCrashable(t, sched.Options{Workers: urls, Store: st1})
	body := `{"name":"traced","parallelism":1,"scenarios":[` +
		`{"profile":"429.mcf","scale":0.1},{"profile":"470.lbm","scale":0.1},` +
		`{"profile":"429.mcf","scale":0.1},{"profile":"470.lbm","scale":0.1}]}`
	job := submit(t, ts1.URL, body, http.StatusAccepted)
	final := waitState(t, ts1.URL, job.ID, func(s serve.JobStatus) bool { return s.State.Terminal() || s.State == sched.JobDegraded })
	if final.State != serve.JobDone {
		t.Fatalf("federated job ended %s (%s)", final.State, final.Error)
	}

	before := fetchTrace(t, ts1.URL, job.ID)
	checkStitched(t, before, workerIDs)

	// Kill the coordinator and restart over the same store. The trace
	// identity and the coordinator's own spans come back from the
	// journal; the worker spans are re-fetched live through the
	// placements the history preserves.
	c1.Halt()
	ts1.Close()
	closeSt1()
	st2, _ := openStore(t, dir)
	_, coord := newCoordinator(t, sched.Options{Workers: urls, Store: st2})

	after := fetchTrace(t, coord.URL, job.ID)
	if after.TraceID != before.TraceID {
		t.Fatalf("trace id changed across restart: %s -> %s", before.TraceID, after.TraceID)
	}
	checkStitched(t, after, workerIDs)

	// The Chrome rendering of the recovered trace carries every span.
	chrome := fetch(t, coord.URL+"/api/v1/jobs/"+job.ID+"/trace?format=chrome", http.StatusOK, "application/json")
	var cd struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &cd); err != nil {
		t.Fatal(err)
	}
	if len(cd.TraceEvents) != len(after.Spans) {
		t.Errorf("chrome trace has %d events, want %d", len(cd.TraceEvents), len(after.Spans))
	}

	// And the restarted coordinator's exposition is well-formed.
	raw := fetch(t, coord.URL+"/metrics", http.StatusOK, "")
	if err := testutil.ValidatePrometheus(raw); err != nil {
		t.Fatalf("/metrics exposition invalid: %v\n%s", err, raw)
	}
	for _, want := range []string{
		"darco_sched_jobs{state=\"done\"} 1",
		"darco_build_info{version=",
		"darco_sched_shard_placement_attempts_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
