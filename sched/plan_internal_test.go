package sched

import "testing"

// TestPlanShards pins the contiguity contract the harvest path relies
// on: shards cover 0..n-1 in order, near-evenly, with the remainder
// spread over the leading shards.
func TestPlanShards(t *testing.T) {
	cases := []struct {
		n, k  int
		sizes []int
	}{
		{n: 10, k: 3, sizes: []int{4, 3, 3}},
		{n: 6, k: 3, sizes: []int{2, 2, 2}},
		{n: 2, k: 5, sizes: []int{1, 1}}, // more workers than scenarios
		{n: 5, k: 1, sizes: []int{5}},
		{n: 3, k: 0, sizes: []int{3}}, // zero healthy workers still plans
		{n: 1, k: 1, sizes: []int{1}},
	}
	for _, c := range cases {
		shards := planShards(c.n, c.k)
		if len(shards) != len(c.sizes) {
			t.Errorf("planShards(%d, %d): %d shards, want %d", c.n, c.k, len(shards), len(c.sizes))
			continue
		}
		next := 0
		for i, sh := range shards {
			if sh.idx != i {
				t.Errorf("planShards(%d, %d): shard %d carries idx %d", c.n, c.k, i, sh.idx)
			}
			if len(sh.indices) != c.sizes[i] {
				t.Errorf("planShards(%d, %d): shard %d has %d scenarios, want %d", c.n, c.k, i, len(sh.indices), c.sizes[i])
			}
			for _, gi := range sh.indices {
				if gi != next {
					t.Fatalf("planShards(%d, %d): shard %d not contiguous: got %d, want %d", c.n, c.k, i, gi, next)
				}
				next++
			}
		}
		if next != c.n {
			t.Errorf("planShards(%d, %d): covered %d scenarios", c.n, c.k, next)
		}
	}
}

func TestNormalizeWorkerURL(t *testing.T) {
	if u, err := normalizeWorkerURL("http://host:8080/"); err != nil || u != "http://host:8080" {
		t.Errorf("trailing slash: %q, %v", u, err)
	}
	for _, bad := range []string{"host:8080", "ftp://host", "http://", ""} {
		if _, err := normalizeWorkerURL(bad); err == nil {
			t.Errorf("normalizeWorkerURL(%q) accepted", bad)
		}
	}
}
