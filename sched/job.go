package sched

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	darco "darco"
	"darco/export"
	"darco/internal/stream"
	"darco/obs"
	"darco/serve"
	"darco/store"
)

// JobDegraded is the coordinator-only terminal state: the worker pool
// was exhausted (every placement attempt for some shard failed, past
// the retry cap) and the federated campaign finished with synthesized
// error rows for the scenarios that were never gathered. It extends
// the serve.JobState lifecycle; serve.ParseStateFilter accepts it so
// one ?state= grammar covers both daemons.
const JobDegraded = serve.JobState("degraded")

// terminal reports whether st is final in the coordinator's extended
// lifecycle (the serve terminals plus degraded).
func terminal(st serve.JobState) bool {
	return st.Terminal() || st == JobDegraded
}

// job is a federated campaign: the parsed submission, its global
// scenario roster, the shard plan, and the merged result assembled
// from worker event streams. Row merging goes through an
// export.Sequencer keyed on global scenario index, so the coordinator
// emits rows in exactly the order a single-node campaign would —
// the byte-identity contract for every export format.
type job struct {
	id     string
	name   string
	req    *serve.SubmitRequest
	roster []darco.Scenario
	// raw is the submission body as received — the job's durable
	// representation, journaled with it and replayed through the same
	// validator after a restart.
	raw []byte

	// Trace identity, immutable after accept/restore: the federated
	// trace every coordinator and worker span of this campaign belongs
	// to (adopted from the X-Darco-Trace header when an upstream
	// submitted it, otherwise freshly generated), the upstream parent
	// span, and the id of the job's own root span — fixed up front so
	// child spans can reference it before the root records at finish.
	traceID    string
	parentSpan string
	rootSpan   string

	ctx    context.Context
	cancel context.CancelFunc
	events *stream.Broadcaster

	shards []*shard

	// journal appends one record to the coordinator's durable store
	// (nil when the coordinator runs without one). Set once before the
	// job is visible to any goroutine.
	journal func(store.Record)

	// resumed marks a job restored mid-run from the journal: its
	// started/plan records already exist and its shards carry adoption
	// leases instead of starting from scratch.
	resumed bool

	mu        sync.Mutex
	state     serve.JobState
	err       error
	completed int
	failed    int
	submitted time.Time
	started   time.Time
	finished  time.Time

	// cancelRequested distinguishes a client cancel from the
	// coordinator's own shutdown cancelling the context: only the
	// former is a durable fact about the job.
	cancelRequested bool

	// runSpan is the id of the current run span, set at runner pickup;
	// spans are the coordinator's recorded (finished) spans; placements
	// index every worker-side job this campaign ever placed, for trace
	// stitching.
	runSpan    string
	spans      []obs.Span
	placements map[string]placementRef

	// gathered marks global scenario indices whose row is committed;
	// rows is the scenario-order result the sequencer flushes into.
	// ready flips when the merged row set is complete and exportable.
	gathered []bool
	rows     []export.Row
	seq      *export.Sequencer
	ready    bool
	wallMS   float64
}

func newJob(req *serve.SubmitRequest, roster []darco.Scenario, parent context.Context, replayLimit int) *job {
	ctx, cancel := context.WithCancel(parent)
	n := len(roster)
	j := &job{
		name:      req.Name,
		req:       req,
		roster:    roster,
		ctx:       ctx,
		cancel:    cancel,
		events:    stream.NewBroadcaster(replayLimit),
		state:     serve.JobQueued,
		submitted: time.Now(),
		gathered:  make([]bool, n),
		rows:      make([]export.Row, n),
	}
	j.seq = export.NewSequencer("federated", n, func(i int, row *export.Row) error {
		j.rows[i] = *row
		return nil
	})
	return j
}

// commit delivers the row for global scenario index i, exactly once.
// It returns false if the index was already gathered (a duplicate from
// a reconnected stream or a harvest overlapping live events). On
// success the row enters the sequencer (flushing any now-contiguous
// prefix into rows), progress counters advance, and a scenario event
// is published on the federated stream.
func (j *job) commit(i int, row export.Row) bool {
	j.mu.Lock()
	if j.gathered[i] {
		j.mu.Unlock()
		return false
	}
	j.gathered[i] = true
	j.seq.Put(i, row)
	j.completed++
	if row.Error != "" {
		j.failed++
	}
	j.mu.Unlock()
	// Journaled at the global index before the event publishes: a
	// coordinator that dies between the two restores the row, and the
	// seeded replay ring re-publishes it.
	if j.journal != nil {
		j.journal(store.Record{Kind: store.KindRow, Job: j.id,
			Row: &store.RowRecord{Index: i, Row: row}})
	}
	j.events.Publish(serve.EventScenario, serve.ScenarioEvent{Job: j.id, Index: i, Row: row})
	return true
}

// restoreRow delivers a journaled row during recovery: the merge state
// advances exactly as commit would, but nothing is re-journaled and no
// live event publishes (the replay ring is seeded from the record
// history instead). Pre-concurrency: called only before the job is
// visible to runners.
func (j *job) restoreRow(i int, row export.Row) {
	if j.gathered[i] {
		return
	}
	j.gathered[i] = true
	j.seq.Put(i, row)
	j.completed++
	if row.Error != "" {
		j.failed++
	}
}

// missingOf filters indices down to those not yet gathered.
func (j *job) missingOf(indices []int) []int {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []int
	for _, i := range indices {
		if !j.gathered[i] {
			out = append(out, i)
		}
	}
	return out
}

// status snapshots the job under its lock.
func (j *job) status() serve.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := serve.JobStatus{
		ID:          j.id,
		Name:        j.name,
		State:       j.state,
		Scenarios:   len(j.roster),
		Completed:   j.completed,
		Failed:      j.failed,
		SubmittedAt: j.submitted,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// resultRows returns the merged scenario-order rows once the job is
// terminal, with the coordinator-measured campaign wall time and the
// shard count standing in for worker parallelism.
func (j *job) resultRows() (rows []export.Row, wallMS float64, shards int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.ready {
		return nil, 0, 0, fmt.Errorf("job %s is %s: no results yet", j.id, j.state)
	}
	return j.rows, j.wallMS, len(j.shards), nil
}

// markCancelled moves a not-yet-terminal job to cancelled; returns
// false if it was already terminal.
func (j *job) markCancelled(reason error) bool {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return false
	}
	j.state = serve.JobCancelled
	j.err = reason
	j.finished = time.Now()
	j.mu.Unlock()
	return true
}

// registry is the coordinator's concurrency-safe job index. Like the
// worker daemon's, it never evicts: results must stay fetchable.
type registry struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []*job
	next  int
}

func newRegistry() *registry {
	return &registry{jobs: make(map[string]*job)}
}

func (rg *registry) add(j *job) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	rg.next++
	j.id = fmt.Sprintf("job-%d", rg.next)
	rg.jobs[j.id] = j
	rg.order = append(rg.order, j)
}

// restore registers a recovered job under its journaled id, keeping
// the sequential counter ahead of every restored id so new submissions
// never collide with history.
func (rg *registry) restore(j *job) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	rg.jobs[j.id] = j
	rg.order = append(rg.order, j)
	if n, err := strconv.Atoi(strings.TrimPrefix(j.id, "job-")); err == nil && n > rg.next {
		rg.next = n
	}
}

func (rg *registry) get(id string) (*job, bool) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	j, ok := rg.jobs[id]
	return j, ok
}

func (rg *registry) list() []*job {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	out := make([]*job, len(rg.order))
	copy(out, rg.order)
	return out
}
