package sched

import (
	"runtime"
	"time"

	darco "darco"
	"darco/obs"
	"darco/serve"
)

// schedStates fixes the darco_sched_jobs exposition order (the serve
// order with the coordinator-only "degraded" appended).
var schedStates = []serve.JobState{
	serve.JobQueued, serve.JobRunning, serve.JobDone,
	serve.JobFailed, serve.JobCancelled, JobDegraded,
}

// schedMetrics is the coordinator's metrics surface: one obs.Registry
// behind GET /metrics. State and per-worker families are recomputed
// from the job registry and worker pool on every scrape — correct for
// live and restored jobs alike — while the histograms are fed directly
// by the scheduling paths.
type schedMetrics struct {
	reg *obs.Registry

	jobsByState        *obs.GaugeVec
	jobsTotal          *obs.Counter
	scenariosTotal     *obs.Counter
	scenariosCompleted *obs.Counter
	scenariosFailed    *obs.Counter
	subscribers        *obs.Gauge
	queueDepth         *obs.Gauge
	queueCapacity      *obs.Gauge
	uptime             *obs.Gauge
	goroutines         *obs.Gauge

	recovResumed      *obs.Counter
	recovRequeued     *obs.Counter
	recovReadopted    *obs.Counter
	recovBackfilled   *obs.Counter
	recovRedispatched *obs.Counter
	recovSalvage      *obs.Counter

	workerUp         *obs.GaugeVec
	workerActive     *obs.GaugeVec
	workerPlaced     *obs.CounterVec
	workerRows       *obs.CounterVec
	workerRetries    *obs.CounterVec
	workerRejections *obs.CounterVec
	// workerSeen remembers every worker URL that ever had series, so a
	// deregistered worker's gauges drop to 0 instead of freezing at
	// their last value (counter series keep their totals, as Prometheus
	// counters should).
	workerSeen map[string]bool

	queueWait         *obs.Histogram
	placementAttempts *obs.Histogram
}

// initMetrics builds the coordinator's registry. Called from New before
// restoreJobs so recovery runs with the registry in place.
func (c *Coordinator) initMetrics() {
	r := obs.NewRegistry()
	m := &schedMetrics{reg: r, workerSeen: make(map[string]bool)}

	m.jobsByState = r.GaugeVec("darco_sched_jobs", "Federated jobs by lifecycle state.", "state")
	for _, st := range schedStates {
		m.jobsByState.With(string(st))
	}
	m.jobsTotal = r.Counter("darco_sched_jobs_total", "Federated jobs ever accepted.")
	m.scenariosTotal = r.Counter("darco_sched_scenarios_total", "Scenarios enrolled across all federated jobs.")
	m.scenariosCompleted = r.Counter("darco_sched_scenarios_completed_total", "Scenario rows merged.")
	m.scenariosFailed = r.Counter("darco_sched_scenarios_failed_total", "Merged rows carrying an error.")
	m.subscribers = r.Gauge("darco_sched_event_subscribers", "Open federated event-stream subscriptions.")
	m.queueDepth = r.Gauge("darco_sched_queue_depth", "Federated jobs waiting for a runner.")
	m.queueCapacity = r.Gauge("darco_sched_queue_capacity", "Federated job queue capacity.")
	m.uptime = r.Gauge("darco_sched_uptime_seconds", "Coordinator uptime.")

	m.recovResumed = r.Counter("darco_sched_recovery_resumed_jobs", "Mid-run federated jobs resumed by the last restart.")
	m.recovRequeued = r.Counter("darco_sched_recovery_requeued_jobs", "Queued federated jobs re-queued by the last restart.")
	m.recovReadopted = r.Counter("darco_sched_recovery_readopted_shards", "Worker-side shard jobs re-adopted instead of re-dispatched.")
	m.recovBackfilled = r.Counter("darco_sched_recovery_backfilled_rows", "Scenario rows recovered through shard re-adoption.")
	m.recovRedispatched = r.Counter("darco_sched_recovery_redispatched_shards", "Restored shards whose placement lease was dead and fell back to re-dispatch.")
	m.recovSalvage = r.Counter("darco_sched_recovery_salvage_discarded_bytes", "Journal bytes dropped by corruption salvage at the last open.")

	m.workerUp = r.GaugeVec("darco_sched_worker_up", "Worker health from the last probe.", "worker")
	m.workerActive = r.GaugeVec("darco_sched_worker_active_shards", "Shards currently placed on the worker.", "worker")
	m.workerPlaced = r.CounterVec("darco_sched_worker_shards_placed_total", "Shard submissions the worker accepted.", "worker")
	m.workerRows = r.CounterVec("darco_sched_worker_rows_gathered_total", "Scenario rows gathered from the worker.", "worker")
	m.workerRetries = r.CounterVec("darco_sched_worker_retries_total", "Failed shard attempts on the worker.", "worker")
	m.workerRejections = r.CounterVec("darco_sched_worker_rejections_total", "Shard submissions the worker bounced with 429.", "worker")

	r.GaugeVec("darco_build_info", "Build identity; the value is always 1.", "version").
		With(darco.Version).Set(1)
	m.goroutines = r.Gauge("darco_goroutines", "Live goroutines in the daemon process.")

	m.queueWait = r.Histogram("darco_sched_job_queue_wait_seconds",
		"Time federated jobs spent queued before a runner picked them up.",
		obs.ExpBuckets(0.001, 4, 10))
	m.placementAttempts = r.Histogram("darco_sched_shard_placement_attempts",
		"Placement attempts each shard needed before its gather completed.",
		obs.LinearBuckets(1, 1, 8))

	if sm := c.opts.StoreMetrics; sm != nil {
		if sm.AppendSeconds != nil {
			r.RegisterHistogram("darco_store_append_seconds",
				"Durable-store record append latency.", sm.AppendSeconds)
		}
		if sm.FsyncSeconds != nil {
			r.RegisterHistogram("darco_store_fsync_seconds",
				"Durable-store journal fsync latency.", sm.FsyncSeconds)
		}
	}

	r.OnScrape(func() { c.scrape(m) })
	c.metrics = m
}

// scrape recomputes the state and per-worker families. Runs under the
// obs.Registry lock; it takes only job, registry and pool locks, none
// of which ever calls back into the metrics registry.
func (c *Coordinator) scrape(m *schedMetrics) {
	byState := make(map[serve.JobState]int, len(schedStates))
	var scenarios, completed, failed, subscribers int
	jobs := c.jobs.list()
	for _, j := range jobs {
		st := j.status()
		byState[st.State]++
		scenarios += st.Scenarios
		completed += st.Completed
		failed += st.Failed
		subscribers += j.events.SubscriberCount()
	}
	for _, st := range schedStates {
		m.jobsByState.With(string(st)).Set(float64(byState[st]))
	}
	m.jobsTotal.Set(uint64(len(jobs)))
	m.scenariosTotal.Set(uint64(scenarios))
	m.scenariosCompleted.Set(uint64(completed))
	m.scenariosFailed.Set(uint64(failed))
	m.subscribers.Set(float64(subscribers))
	m.queueDepth.Set(float64(len(c.queue)))
	m.queueCapacity.Set(float64(c.opts.QueueCapacity))
	m.uptime.Set(time.Since(c.start).Seconds())
	m.goroutines.Set(float64(runtime.NumGoroutine()))

	m.recovResumed.Set(c.recov.resumedJobs.Load())
	m.recovRequeued.Set(c.recov.requeuedJobs.Load())
	m.recovReadopted.Set(c.recov.readoptedShards.Load())
	m.recovBackfilled.Set(c.recov.backfilledRows.Load())
	m.recovRedispatched.Set(c.recov.redispatched.Load())
	m.recovSalvage.Set(c.recov.salvageDiscarded.Load())

	current := make(map[string]bool)
	for _, wk := range c.pool.list() {
		wi := wk.info()
		current[wi.URL] = true
		m.workerSeen[wi.URL] = true
		up := 0.0
		if wi.Healthy {
			up = 1
		}
		m.workerUp.With(wi.URL).Set(up)
		m.workerActive.With(wi.URL).Set(float64(wi.ActiveShards))
		m.workerPlaced.With(wi.URL).Set(wi.ShardsPlaced)
		m.workerRows.With(wi.URL).Set(wi.RowsGathered)
		m.workerRetries.With(wi.URL).Set(wi.Retries)
		m.workerRejections.With(wi.URL).Set(wi.Rejections)
	}
	for url := range m.workerSeen {
		if !current[url] {
			m.workerUp.With(url).Set(0)
			m.workerActive.With(url).Set(0)
		}
	}
}
