package sched

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	darco "darco"
	"darco/export"
	"darco/internal/stream"
	"darco/obs"
	"darco/serve"
	"darco/store"
)

// This file is the coordinator's recovery path: turning the durable
// store's journaled histories back into live jobs at New.
//
// Three fates, by journaled state:
//
//   - terminal ("done", "failed", "cancelled", "degraded",
//     "interrupted"): the job is rebuilt read-only from its journaled
//     rows — the bytes every export format serves are exactly the
//     pre-crash bytes.
//   - "queued": the raw submission is re-validated and the job
//     re-queued, unless the client had already cancelled it.
//   - "running": the job is *resumed*. Its shard plan and placement
//     leases come back from the journal, already-gathered rows reload
//     into the merge, and each live shard first tries to re-adopt its
//     worker-side job by name (see adoptShard) before falling back to
//     the ordinary missing-scenario re-dispatch path.
//
// The clean-shutdown marker (store-level KindCleanShutdown) is
// consumed here purely as a cross-check: a graceful stop journals a
// terminal record for everything it cancels and leaves queued jobs
// queued, so a "running" history after a marker means the marker's
// guarantee was violated — logged loudly, then resumed anyway, which
// is the safe direction.

// restoreJobs replays the store's histories into the registry and
// returns the jobs to enqueue — re-queued and resumed ones — in
// original submission order.
func (c *Coordinator) restoreJobs() []*job {
	if c.opts.Store == nil {
		return nil
	}
	rec := c.opts.Store.Recovery()
	c.recov.salvageDiscarded.Store(uint64(rec.DiscardedBytes))
	clean := false
	for _, m := range c.opts.Store.Meta() {
		if m.Kind == store.KindCleanShutdown {
			clean = true
		}
	}

	var requeue []*job
	restored := 0
	for _, h := range c.opts.Store.Jobs() {
		switch h.State {
		case string(serve.JobQueued):
			if h.CancelRequested {
				// The client cancelled while the job was queued and the
				// coordinator died before a runner observed it. The
				// rows mirror what the live cancelled-while-queued path
				// synthesizes.
				reason := fmt.Errorf("cancelled while queued: %w", context.Canceled)
				j := c.restoreTerminalJob(h, serve.JobCancelled, reason, reason)
				c.journalSynthesizedRows(j, h)
				c.journal(store.Record{Kind: store.KindFinished, Job: j.id,
					Finished: &store.FinishedRecord{State: string(serve.JobCancelled),
						Error: j.err.Error(), Parallelism: len(j.shards)}})
				c.compact(j.id)
				sealRestored(j, h)
				restored++
				c.log.Info("restored job cancelled while queued before the restart",
					"job_id", j.id, "trace_id", j.traceID)
				continue
			}
			j, err := c.rebuildJob(h)
			if err != nil {
				// The request passed validation once; failing now means
				// the restarted coordinator has stricter limits. The
				// job cannot run, and that is a terminal fact worth
				// journaling.
				jerr := fmt.Errorf("re-queue after restart: %v", err)
				j := c.restoreTerminalJob(h, serve.JobFailed, jerr, jerr)
				c.journalSynthesizedRows(j, h)
				c.journal(store.Record{Kind: store.KindFinished, Job: j.id,
					Finished: &store.FinishedRecord{State: string(serve.JobFailed),
						Error: j.err.Error(), Parallelism: len(j.shards)}})
				c.compact(j.id)
				sealRestored(j, h)
				restored++
				continue
			}
			c.jobs.restore(j)
			requeue = append(requeue, j)
			c.recov.requeuedJobs.Add(1)
			c.log.Info("job re-queued after restart", "job_id", j.id, "trace_id", j.traceID,
				"scenarios", len(j.roster))
		case string(serve.JobRunning):
			if clean {
				c.log.Warn("job journaled running despite a clean-shutdown marker; resuming it anyway",
					"job_id", h.ID)
			}
			j, err := c.rebuildJob(h)
			if err != nil {
				// Unrecoverable: the submission no longer parses, so
				// the roster (and with it the shard mapping) cannot be
				// rebuilt. The job lands interrupted with every
				// journaled row preserved — never silently vanished.
				reason := fmt.Errorf("interrupted: coordinator restarted and could not rebuild the job: %v", err)
				j := c.restoreTerminalJob(h, serve.JobInterrupted, reason, reason)
				c.journalSynthesizedRows(j, h)
				c.journal(store.Record{Kind: store.KindInterrupted, Job: j.id,
					Interrupted: &store.InterruptedRecord{Reason: reason.Error()}})
				c.compact(j.id)
				sealRestored(j, h)
				restored++
				continue
			}
			c.resumeJob(j, h)
			c.jobs.restore(j)
			requeue = append(requeue, j)
			c.recov.resumedJobs.Add(1)
			c.log.Info("job resuming mid-run", "job_id", j.id, "trace_id", j.traceID,
				"rows_journaled", len(h.Rows), "scenarios", h.Scenarios,
				"shards_terminal", len(h.ShardsDone), "shards", len(h.ShardPlan))
		default:
			var jerr error
			if h.Error != "" {
				jerr = errors.New(h.Error)
			}
			// A cleanly-finished job journaled every row, so the
			// placeholder reason is only a safety net.
			j := c.restoreTerminalJob(h, serve.JobState(h.State), jerr,
				fmt.Errorf("not gathered: job ended %s", h.State))
			sealRestored(j, h)
			restored++
		}
	}
	c.log.Info("recovery complete", "store", rec.String(),
		"restored_terminal", restored, "requeued", c.recov.requeuedJobs.Load(),
		"resumed", c.recov.resumedJobs.Load(), "clean_shutdown", clean)
	return requeue
}

// rebuildJob reconstructs a live (queued or running) job from its
// journaled raw submission, exactly as handleSubmit built it.
func (c *Coordinator) rebuildJob(h *store.JobHistory) (*job, error) {
	req, err := serve.ParseSubmit(bytes.NewReader(h.Request))
	if err != nil {
		return nil, err
	}
	roster, err := req.Roster()
	if err != nil {
		return nil, err
	}
	if len(roster) != h.Scenarios {
		return nil, fmt.Errorf("journaled roster has %d scenarios, submission expands to %d", h.Scenarios, len(roster))
	}
	j := newJob(req, roster, c.baseCtx, c.opts.ReplayBuffer)
	j.id = h.ID
	j.raw = h.Request
	j.submitted = h.SubmittedAt
	j.journal = c.journal
	// Re-adopt the journaled trace identity (fresh for pre-trace
	// histories) with a fresh root-span id: pre-crash spans referencing
	// the old root come back as orphans, which BuildTree renders as
	// additional roots — the partial trace, never a lost one.
	j.traceID, j.parentSpan = h.TraceID, h.ParentSpan
	if j.traceID == "" {
		j.traceID = obs.NewTraceID()
	}
	j.rootSpan = obs.NewSpanID()
	j.spans = append([]obs.Span(nil), h.Spans...)
	return j, nil
}

// resumeJob arms a rebuilt mid-run job for re-adoption: journaled rows
// reload into the merge (without re-journaling or re-publishing — the
// replay ring is seeded from the record history instead), and the
// shard plan comes back with each unfinished shard carrying its last
// placement lease for adoptShard to try first. A crash that beat the
// shard-plan record leaves the job to plan afresh like a first run.
func (c *Coordinator) resumeJob(j *job, h *store.JobHistory) {
	for i, rr := range h.Rows {
		if i >= 0 && i < len(j.roster) {
			j.restoreRow(i, rr.Row)
		}
	}
	j.started = h.StartedAt
	if len(h.ShardPlan) == 0 {
		// Died between "started" and the plan record: nothing was
		// placed, so a fresh plan (and a duplicate started record,
		// which replay tolerates) is correct.
		return
	}
	j.resumed = true
	for si, spec := range h.ShardPlan {
		indices := make([]int, spec.Count)
		for k := range indices {
			indices[k] = spec.Start + k
		}
		sh := &shard{idx: si, indices: indices}
		if pl, ok := h.Placements[si]; ok {
			sh.attempts = pl.Attempt
			sh.workerURL, sh.workerJob = pl.Worker, pl.WorkerJob
			// The journaled span id keeps the re-adopted shard (and the
			// worker-side job spans already parented under it) attached
			// to the same subtree of the federated trace.
			sh.span = pl.Span
			j.notePlacement(pl.Worker, pl.WorkerJob)
			if _, done := h.ShardsDone[si]; !done {
				lease := pl
				sh.adopt = &lease
			}
		}
		j.shards = append(j.shards, sh)
	}
	j.events.Seed(replayFederated(h), 0)
}

// restoreTerminalJob rebuilds one terminal job from its history:
// status, merged rows (journaled ones, with scenarios the journal has
// no outcome for synthesized from rowReason), and shard count for the
// ?wall=1 parallelism column.
func (c *Coordinator) restoreTerminalJob(h *store.JobHistory, state serve.JobState, jerr, rowReason error) *job {
	roster := rosterFor(h)
	rows := make([]export.Row, h.Scenarios)
	completed, failed := 0, 0
	for i := range rows {
		if rr, ok := h.Rows[i]; ok {
			rows[i] = rr.Row
			completed++
			if rr.Row.Error != "" {
				failed++
			}
			continue
		}
		rows[i] = export.NewRow(&darco.ScenarioResult{Scenario: roster[i], Err: rowReason})
	}
	shardCount := len(h.ShardPlan)
	if shardCount == 0 {
		shardCount = h.Parallelism
	}
	j := &job{
		id:         h.ID,
		name:       h.Name,
		roster:     roster,
		raw:        h.Request,
		traceID:    h.TraceID,
		parentSpan: h.ParentSpan,
		spans:      append([]obs.Span(nil), h.Spans...),
		state:      state,
		err:        jerr,
		completed:  completed,
		failed:     failed,
		submitted:  h.SubmittedAt,
		started:    h.StartedAt,
		finished:   h.FinishedAt,
		gathered:   make([]bool, h.Scenarios),
		rows:       rows,
		wallMS:     h.WallMS,
		ready:      true,
		shards:     make([]*shard, shardCount),
		events:     stream.NewBroadcaster(c.opts.ReplayBuffer),
		journal:    c.journal,
	}
	for i := range j.shards {
		j.shards[i] = &shard{idx: i}
	}
	// Journaled placements let the trace endpoint fetch worker-side
	// spans even for a job restored terminal.
	for _, pl := range h.Placements {
		j.notePlacement(pl.Worker, pl.WorkerJob)
	}
	if j.finished.IsZero() {
		j.finished = time.Now()
	}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.cancel() // terminal: nothing to cancel
	c.jobs.restore(j)
	return j
}

// journalSynthesizedRows journals the rows restoreTerminalJob
// synthesized for scenarios the history had no outcome for — a further
// restart then restores the same bytes instead of re-synthesizing them
// with a different reason.
func (c *Coordinator) journalSynthesizedRows(j *job, h *store.JobHistory) {
	for i := range j.rows {
		if _, ok := h.Rows[i]; !ok {
			c.journal(store.Record{Kind: store.KindRow, Job: j.id,
				Row: &store.RowRecord{Index: i, Row: j.rows[i]}})
		}
	}
}

// sealRestored seeds a restored terminal job's replay ring from its
// (by now fully journaled) record history and closes the stream, so a
// late subscriber sees the same frames however many restarts the
// history has been through.
func sealRestored(j *job, h *store.JobHistory) {
	j.events.Seed(replayFederated(h), 0)
	j.events.Close()
}

// rosterFor re-derives the scenario roster from the journaled
// submission, padded or truncated to the journaled scenario count so a
// history whose request no longer parses still yields labeled rows.
func rosterFor(h *store.JobHistory) []darco.Scenario {
	out := make([]darco.Scenario, h.Scenarios)
	for i := range out {
		out[i] = darco.Scenario{Name: fmt.Sprintf("scenario-%d", i)}
	}
	if req, err := serve.ParseSubmit(bytes.NewReader(h.Request)); err == nil {
		if roster, err := req.Roster(); err == nil {
			copy(out, roster)
		}
	}
	return out
}

// replayFederated rebuilds a restored job's event-stream history from
// its journal records, in append order, shaped exactly like the frames
// the live gather published (rows arrive at the coordinator already
// wall-stripped, so no stripping on replay either).
func replayFederated(h *store.JobHistory) []stream.Event {
	var evs []stream.Event
	for i := range h.Records {
		rec := &h.Records[i]
		switch rec.Kind {
		case store.KindRow:
			if rec.Row == nil {
				continue
			}
			evs = append(evs, stream.Event{Kind: serve.EventScenario, Data: serve.ScenarioEvent{
				Job:   h.ID,
				Index: rec.Row.Index,
				Row:   rec.Row.Row,
			}})
		case store.KindTelemetry:
			if rec.Telemetry == nil {
				continue
			}
			evs = append(evs, stream.Event{Kind: serve.EventTelemetry, Data: serve.TelemetryEvent{
				Job:      h.ID,
				Index:    rec.Telemetry.Index,
				Scenario: rec.Telemetry.Scenario,
				Window:   rec.Telemetry.Window,
			}})
		}
	}
	return evs
}
