package sched

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"darco/export"
	"darco/obs"
	"darco/serve"
	"darco/store"
)

// shard is one contiguous slice of a federated job's roster. Identity
// (idx, indices) is immutable; placement and attempt bookkeeping are
// guarded by mu.
type shard struct {
	idx     int
	indices []int // global scenario indices, ascending and contiguous

	// adopt is the journaled placement lease a restored shard tries to
	// re-attach to before any fresh dispatch; consumed (nilled) after
	// one attempt.
	adopt *store.ShardPlacedRecord

	// span is the shard's trace span id: generated (or restored from
	// the placement lease) before the first attempt, injected into
	// every worker submission's X-Darco-Trace header so the worker-side
	// job's spans parent under it. Written only by the shard's own
	// goroutine (or pre-concurrency during resume).
	span string

	mu        sync.Mutex
	workerURL string // current/most recent placement
	workerJob string // shard job id on that worker
	attempts  int
	lastErr   string
}

// takeAdoption consumes the shard's restored placement lease, if any.
func (sh *shard) takeAdoption() *store.ShardPlacedRecord {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	pl := sh.adopt
	sh.adopt = nil
	return pl
}

func (sh *shard) noteAttempt(workerURL string) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.attempts++
	sh.workerURL = workerURL
	sh.workerJob = ""
	return sh.attempts
}

func (sh *shard) setPlacement(workerURL, workerJob string) {
	sh.mu.Lock()
	sh.workerURL = workerURL
	sh.workerJob = workerJob
	sh.mu.Unlock()
}

func (sh *shard) placement() (workerURL, workerJob string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.workerURL, sh.workerJob
}

func (sh *shard) setErr(err error) {
	sh.mu.Lock()
	sh.lastErr = err.Error()
	sh.mu.Unlock()
}

// planShards splits n scenarios into k contiguous, near-even shards
// (the first n%k shards get the extra scenario). Contiguity keeps each
// worker's export.ndjson in global scenario order, so a harvested
// shard maps back positionally.
func planShards(n, k int) []*shard {
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	shards := make([]*shard, 0, k)
	base, extra := n/k, n%k
	next := 0
	for i := 0; i < k; i++ {
		size := base
		if i < extra {
			size++
		}
		indices := make([]int, size)
		for s := range indices {
			indices[s] = next
			next++
		}
		shards = append(shards, &shard{idx: i, indices: indices})
	}
	return shards
}

// errBusy marks a 429 from a worker: the worker is healthy but its
// queue is full, so the attempt should back off and re-place without
// counting against the worker's health.
var errBusy = errors.New("worker queue full (429)")

// shardBody builds the worker submission for one shard attempt: the
// missing scenarios spelled out explicitly (profile/scale/name as the
// coordinator's roster expansion produced them — the determinism
// contract that makes the worker reproduce exactly the rows a
// single-node run would), with the campaign knobs forwarded verbatim.
func (c *Coordinator) shardBody(j *job, sh *shard, missing []int, attempt int) ([]byte, error) {
	req := serve.SubmitRequest{
		Name:              fmt.Sprintf("%s/shard-%d#%d", j.id, sh.idx, attempt),
		Scenarios:         make([]serve.ScenarioSpec, 0, len(missing)),
		Parallelism:       j.req.Parallelism,
		ScenarioTimeoutMS: j.req.ScenarioTimeoutMS,
		FailFast:          j.req.FailFast,
		Engine:            j.req.Engine,
		Telemetry:         j.req.Telemetry,
	}
	for _, gi := range missing {
		sc := j.roster[gi]
		req.Scenarios = append(req.Scenarios, serve.ScenarioSpec{
			Profile: sc.Profile.Name,
			Scale:   sc.Scale,
			Name:    sc.Name,
		})
	}
	return json.Marshal(&req)
}

// runShard drives one shard to completion: place it on a worker,
// gather its rows from the live event stream, and on any failure
// re-dispatch only the still-missing scenarios to another worker with
// capped exponential backoff. Attempts that make progress (new rows
// gathered) reset the failure budget, so a shard only gives up after
// ShardRetries consecutive attempts that gathered nothing new.
func (c *Coordinator) runShard(j *job, sh *shard) error {
	if sh.span == "" {
		sh.span = obs.NewSpanID()
	}
	err := c.runShardAttempts(j, sh)
	sh.mu.Lock()
	attempts := sh.attempts
	sh.mu.Unlock()
	c.metrics.placementAttempts.Observe(float64(attempts))
	if err == nil {
		// The gather loop completed: every one of the shard's scenarios
		// has a committed row. Journaled so a restarted coordinator
		// skips the shard outright instead of re-probing its worker.
		c.journal(store.Record{Kind: store.KindShardTerminal, Job: j.id,
			ShardTerminal: &store.ShardTerminalRecord{Shard: sh.idx, State: string(serve.JobDone)}})
	}
	return err
}

func (c *Coordinator) runShardAttempts(j *job, sh *shard) error {
	failures := 0
	var last *worker
	var lastErr error
	for {
		missing := j.missingOf(sh.indices)
		if len(missing) == 0 {
			return nil
		}
		if err := j.ctx.Err(); err != nil {
			return err
		}

		// A restored shard first tries to re-adopt its journaled
		// placement: re-attach to the still-running (or finished)
		// worker-side job instead of re-dispatching its scenarios. A
		// dead lease falls through to the normal placement loop.
		if pl := sh.takeAdoption(); pl != nil {
			err := c.adoptShard(j, sh, pl)
			if err == nil {
				continue // recompute missing; normally empty now
			}
			if ctxErr := j.ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			c.recov.redispatched.Add(1)
			sh.setErr(err)
			c.log.Warn("shard re-adoption failed; re-dispatching", "job_id", j.id, "trace_id", j.traceID,
				"shard", sh.idx, "worker_job", pl.WorkerJob, "worker", pl.Worker, "err", err)
			continue
		}

		// Prefer a worker other than the one that just failed us; fall
		// back to it if it is the only healthy one.
		w := c.pool.pick(last)
		if w == nil && last != nil {
			w = c.pool.pick(nil)
		}
		if w == nil {
			if c.probeAll(j.ctx) > 0 {
				continue
			}
			failures++
			lastErr = fmt.Errorf("no healthy workers for shard %d (%d scenarios missing)", sh.idx, len(missing))
			if failures > c.opts.ShardRetries {
				return lastErr
			}
			if err := c.backoff(j.ctx, failures); err != nil {
				return err
			}
			continue
		}

		attempt := sh.noteAttempt(w.url)
		err := c.attemptShard(j, sh, w, missing, attempt)
		w.release()
		if err == nil {
			last = nil
			continue // recompute missing; normally empty now
		}
		if ctxErr := j.ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		w.noteRetry()
		sh.setErr(err)
		c.log.Warn("shard attempt failed", "job_id", j.id, "trace_id", j.traceID,
			"shard", sh.idx, "attempt", attempt, "worker", w.url, "err", err)
		lastErr = err
		last = w
		if after := len(j.missingOf(sh.indices)); after < len(missing) {
			failures = 0 // progress: rows were gathered before the failure
		} else {
			failures++
		}
		if failures > c.opts.ShardRetries {
			return fmt.Errorf("shard %d exhausted after %d fruitless attempts: %w", sh.idx, failures, lastErr)
		}
		if err := c.backoff(j.ctx, failures); err != nil {
			return err
		}
	}
}

// backoff sleeps base*2^(failures-1), capped, or returns early when
// ctx ends.
func (c *Coordinator) backoff(ctx context.Context, failures int) error {
	d := c.opts.RetryBaseDelay
	for i := 1; i < failures && d < c.opts.RetryMaxDelay; i++ {
		d *= 2
	}
	if d > c.opts.RetryMaxDelay {
		d = c.opts.RetryMaxDelay
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// attemptShard is one placement: submit the missing scenarios to w,
// then gather rows until the shard job reaches a terminal state.
func (c *Coordinator) attemptShard(j *job, sh *shard, w *worker, missing []int, attempt int) error {
	body, err := c.shardBody(j, sh, missing, attempt)
	if err != nil {
		return err
	}
	wid, err := c.submitShard(j.ctx, w, body, j.traceID, sh.span)
	if err != nil {
		return err
	}
	sh.setPlacement(w.url, wid)
	j.notePlacement(w.url, wid)
	w.notePlaced()
	// The lease is journaled with exactly the globals this submission
	// carried: the worker-side job's local scenario index i means
	// missing[i], and that positional mapping — not the shard's full
	// range — is what a re-adopting coordinator must decode the event
	// stream and harvest with.
	c.journal(store.Record{Kind: store.KindShardPlaced, Job: j.id,
		ShardPlaced: &store.ShardPlacedRecord{
			Shard:     sh.idx,
			Worker:    w.url,
			WorkerJob: wid,
			Attempt:   attempt,
			Scenarios: missing,
			Span:      sh.span,
		}})
	return c.gatherShard(j, w, wid, missing)
}

// adoptShard re-attaches to a journaled placement lease: confirm the
// worker still knows the shard job, then resume gathering from its
// event stream (the replay ring re-delivers rows the coordinator
// missed while down; commit dedupes ones it already journaled) or, for
// an already-finished shard job, harvest its export.ndjson directly.
// Rows recovered either way count as backfilled.
func (c *Coordinator) adoptShard(j *job, sh *shard, pl *store.ShardPlacedRecord) error {
	w, err := c.pool.ensure(pl.Worker)
	if err != nil {
		return err
	}
	w.reserve()
	defer w.release()
	st, err := c.shardStatus(j.ctx, w, pl.WorkerJob)
	if err != nil {
		w.markUnhealthy(err)
		return fmt.Errorf("adopt shard job %s: %w", pl.WorkerJob, err)
	}
	sh.setPlacement(w.url, pl.WorkerJob)
	j.notePlacement(w.url, pl.WorkerJob)
	before := len(j.missingOf(pl.Scenarios))
	switch st.State {
	case serve.JobDone, serve.JobFailed:
		// Finished while the coordinator was down: the worker's
		// export.ndjson is the complete, deterministic row set.
		err = c.harvestShard(j, w, pl.WorkerJob, pl.Scenarios)
	default:
		// Queued, running, or ended cancelled/interrupted: the gather
		// path handles all of them — errorless rows commit (from the
		// replay ring and then live), a terminal cancelled/interrupted
		// state comes back as an error and the remainder re-dispatches.
		err = c.gatherShard(j, w, pl.WorkerJob, pl.Scenarios)
	}
	if n := before - len(j.missingOf(pl.Scenarios)); n > 0 {
		c.recov.backfilledRows.Add(uint64(n))
	}
	if err != nil {
		return err
	}
	c.recov.readoptedShards.Add(1)
	c.log.Info("shard re-adopted", "job_id", j.id, "trace_id", j.traceID,
		"shard", sh.idx, "worker_job", pl.WorkerJob, "worker", w.url, "state", string(st.State))
	return nil
}

// submitShard POSTs one shard submission, stamping it with the job's
// trace context so the worker-side job's spans join the federated
// trace under the shard's span. A 429 comes back as errBusy (healthy
// worker, full queue); a transport error marks the worker unhealthy
// until the prober sees it again.
func (c *Coordinator) submitShard(ctx context.Context, w *worker, body []byte, traceID, parentSpan string) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.InjectTrace(req.Header, traceID, parentSpan)
	resp, err := c.client.Do(req)
	if err != nil {
		w.markUnhealthy(err)
		return "", fmt.Errorf("submit to %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var st serve.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return "", fmt.Errorf("submit to %s: decoding 202 body: %w", w.url, err)
		}
		return st.ID, nil
	case http.StatusTooManyRequests:
		w.noteRejected()
		return "", fmt.Errorf("submit to %s: %w", w.url, errBusy)
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("submit to %s: status %d: %s", w.url, resp.StatusCode, bytes.TrimSpace(msg))
	}
}

// gatherShard consumes the shard job's event stream until it reports a
// terminal state, committing rows into the federated merge as they
// arrive. Errored rows are quarantined until the shard ends done or
// failed: a shard that instead ends cancelled or interrupted (worker
// died, restarted daemon synthesized "interrupted" rows) must not leak
// those synthetic errors into the merged export — its missing
// scenarios get re-dispatched and only genuinely-produced rows count.
// A broken stream reconnects (the worker's replay ring resends the
// prefix; commit dedupes) before the attempt is abandoned.
func (c *Coordinator) gatherShard(j *job, w *worker, wid string, globals []int) error {
	pending := make(map[int]export.Row)
	for reconnects := 0; ; reconnects++ {
		final, streamErr := c.consumeStream(j, w, wid, globals, pending)
		if err := j.ctx.Err(); err != nil {
			return err
		}
		if final == "" {
			// Stream broke without a terminal frame. Ask the worker
			// directly; a dead worker fails the attempt.
			st, err := c.shardStatus(j.ctx, w, wid)
			if err != nil {
				w.markUnhealthy(err)
				return fmt.Errorf("shard job %s on %s: stream broke (%v) and status check failed: %w", wid, w.url, streamErr, err)
			}
			final = st.State
			if !st.State.Terminal() {
				if reconnects >= 3 {
					return fmt.Errorf("shard job %s on %s: stream broke %d times: %v", wid, w.url, reconnects+1, streamErr)
				}
				continue // job still live: reconnect and resume
			}
		}
		switch final {
		case serve.JobDone, serve.JobFailed:
			// The shard ran to completion; its errored rows are genuine
			// deterministic scenario failures, part of the campaign
			// result.
			for gi, row := range pending {
				if j.commit(gi, row) {
					w.noteRows(1)
				}
			}
			return c.harvestShard(j, w, wid, globals)
		default: // cancelled, interrupted
			return fmt.Errorf("shard job %s on %s ended %s", wid, w.url, final)
		}
	}
}

// streamFrame is one NDJSON event-stream line as the worker frames it.
type streamFrame struct {
	Event string          `json:"event"`
	Data  json.RawMessage `json:"data"`
}

// consumeStream reads one connection's worth of the shard job's NDJSON
// event stream, mapping shard-local scenario indices through globals
// into the federated job. It returns the terminal state if one was
// seen, or "" with the transport error when the stream broke first.
func (c *Coordinator) consumeStream(j *job, w *worker, wid string, globals []int, pending map[int]export.Row) (serve.JobState, error) {
	req, err := http.NewRequestWithContext(j.ctx, http.MethodGet,
		w.url+"/api/v1/jobs/"+wid+"/events?format=ndjson", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.streamClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("event stream for %s on %s: status %d", wid, w.url, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		var f streamFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return "", fmt.Errorf("event stream for %s on %s: bad frame: %v", wid, w.url, err)
		}
		switch f.Event {
		case serve.EventState:
			var st serve.JobStatus
			if err := json.Unmarshal(f.Data, &st); err != nil {
				return "", err
			}
			if st.State.Terminal() {
				return st.State, nil
			}
		case serve.EventScenario:
			var ev serve.ScenarioEvent
			if err := json.Unmarshal(f.Data, &ev); err != nil {
				return "", err
			}
			if ev.Index < 0 || ev.Index >= len(globals) {
				continue
			}
			gi := globals[ev.Index]
			if ev.Row.Error != "" {
				pending[gi] = ev.Row
			} else if j.commit(gi, ev.Row) {
				w.noteRows(1)
			}
		case serve.EventTelemetry:
			var ev serve.TelemetryEvent
			if err := json.Unmarshal(f.Data, &ev); err != nil {
				return "", err
			}
			if ev.Index < 0 || ev.Index >= len(globals) {
				continue
			}
			// Journaled at the global index (fsync-exempt under the
			// default lifecycle policy) so a restored job's replayed
			// event stream carries its telemetry history too.
			if j.journal != nil {
				j.journal(store.Record{Kind: store.KindTelemetry, Job: j.id,
					Telemetry: &store.TelemetryRecord{
						Index:    globals[ev.Index],
						Scenario: ev.Scenario,
						Window:   ev.Window,
					}})
			}
			j.events.Publish(serve.EventTelemetry, serve.TelemetryEvent{
				Job:      j.id,
				Index:    globals[ev.Index],
				Scenario: ev.Scenario,
				Window:   ev.Window,
			})
		}
		// Dropped markers need no handling here: the post-terminal
		// harvest fetches any rows the stream lost.
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// shardStatus fetches a shard job's JobStatus from its worker.
func (c *Coordinator) shardStatus(ctx context.Context, w *worker, wid string) (serve.JobStatus, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
	defer cancel()
	var st serve.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/api/v1/jobs/"+wid, nil)
	if err != nil {
		return st, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status for %s on %s: %d", wid, w.url, resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// harvestShard backfills rows the event stream may have lost (dropped
// frames under load) from the completed shard job's export.ndjson,
// whose lines are in shard scenario order — i.e. positionally aligned
// with globals. commit dedupes rows the stream already delivered.
func (c *Coordinator) harvestShard(j *job, w *worker, wid string, globals []int) error {
	if len(j.missingOf(globals)) == 0 {
		return nil
	}
	ctx, cancel := context.WithTimeout(j.ctx, c.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		w.url+"/api/v1/jobs/"+wid+"/export.ndjson", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("harvest %s from %s: %w", wid, w.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("harvest %s from %s: status %d", wid, w.url, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	k := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if k >= len(globals) {
			return fmt.Errorf("harvest %s from %s: more rows than the %d submitted scenarios", wid, w.url, len(globals))
		}
		var row export.Row
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return fmt.Errorf("harvest %s from %s: row %d: %v", wid, w.url, k, err)
		}
		if j.commit(globals[k], row) {
			w.noteRows(1)
		}
		k++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("harvest %s from %s: %w", wid, w.url, err)
	}
	if k != len(globals) {
		return fmt.Errorf("harvest %s from %s: %d rows for %d scenarios", wid, w.url, k, len(globals))
	}
	return nil
}

// cancelShard best-effort cancels the shard's current worker-side job,
// so a cancelled federated campaign stops burning worker CPU. Runs on
// a background context: the federated job's own context is already
// cancelled by the time this is called.
func (c *Coordinator) cancelShard(sh *shard) {
	if c.halted.Load() {
		// A "crashed" coordinator must leave worker-side jobs running —
		// that is precisely what re-adoption recovers.
		return
	}
	wurl, wid := sh.placement()
	if wurl == "" || wid == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, wurl+"/api/v1/jobs/"+wid+"/cancel", nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.log.Warn("shard cancel failed", "worker_job", wid, "worker", wurl, "err", err)
		return
	}
	resp.Body.Close()
}
