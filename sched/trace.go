package sched

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"darco/obs"
	"darco/store"
)

// The coordinator's half of a federated trace. Every federated job
// carries one trace: the coordinator records the job root, queue-wait,
// run, and per-shard spans, and stamps each shard submission with
// X-Darco-Trace (trace id + the shard's span id) so the worker-side
// job's spans land in the same trace, parented under the shard span.
// GET /api/v1/jobs/{id}/trace stitches both halves: the coordinator's
// own journaled spans plus the worker spans fetched live from every
// placement the job ever made.

// recordSpan appends one finished span to the job's trace and journals
// it, so the coordinator's half of the trace survives a restart.
func (c *Coordinator) recordSpan(j *job, sp obs.Span) {
	j.mu.Lock()
	j.spans = append(j.spans, sp)
	j.mu.Unlock()
	c.journal(store.Record{Kind: store.KindSpan, Job: j.id,
		Span: &store.SpanRecord{Span: sp}})
}

// startSpans records the queue-wait span when a runner picks the job
// up. The run-span id is set by the caller (runJob) under the job lock
// alongside the state transition.
func (c *Coordinator) startSpans(j *job, started time.Time) {
	j.mu.Lock()
	traceID := j.traceID
	root := j.rootSpan
	submitted := j.submitted
	j.mu.Unlock()
	c.recordSpan(j, obs.NewSpan(traceID, root, "queue-wait", c.id, submitted, started))
}

// shardSpan closes one shard's span: the window this coordinator spent
// driving the shard, carrying its final placement and attempt count.
// The span id is the one every worker-side submission for the shard was
// parented under, so the worker job spans attach here in the stitched
// tree.
func (c *Coordinator) shardSpan(j *job, sh *shard, start, end time.Time, err error) {
	j.mu.Lock()
	traceID := j.traceID
	parent := j.runSpan
	j.mu.Unlock()
	sp := obs.NewSpan(traceID, parent, fmt.Sprintf("shard %d", sh.idx), c.id, start, end)
	sp.SpanID = sh.span
	sp.SetAttr("scenarios", fmt.Sprintf("%d", len(sh.indices)))
	wurl, wid := sh.placement()
	if wurl != "" {
		sp.SetAttr("worker", wurl)
	}
	if wid != "" {
		sp.SetAttr("worker_job", wid)
	}
	sh.mu.Lock()
	attempts := sh.attempts
	sh.mu.Unlock()
	sp.SetAttr("attempts", fmt.Sprintf("%d", attempts))
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	c.recordSpan(j, sp)
}

// finishSpans records the spans only the terminal transition can close:
// the run span (runner pickup to completion, the parent of every shard
// span) and the job root span. A job cancelled while queued never ran,
// so it gets only the root.
func (c *Coordinator) finishSpans(j *job) {
	j.mu.Lock()
	traceID := j.traceID
	parentSpan := j.parentSpan
	root := j.rootSpan
	run := j.runSpan
	name := j.name
	state := j.state
	submitted := j.submitted
	started := j.started
	finished := j.finished
	j.mu.Unlock()
	if !started.IsZero() && run != "" {
		rs := obs.NewSpan(traceID, root, "run", c.id, started, finished)
		rs.SpanID = run
		c.recordSpan(j, rs)
	}
	js := obs.NewSpan(traceID, parentSpan, "job "+j.id, c.id, submitted, finished)
	js.SpanID = root
	js.SetAttr("job_id", j.id)
	js.SetAttr("state", string(state))
	if name != "" {
		js.SetAttr("name", name)
	}
	c.recordSpan(j, js)
}

// placementRef is one worker-side job the federated job ever placed —
// the address a stitched trace fetches worker spans from.
type placementRef struct {
	Worker    string
	WorkerJob string
}

// notePlacement remembers a placement for trace stitching. Idempotent;
// every attempt and adoption records the worker job it talked to.
func (j *job) notePlacement(worker, workerJob string) {
	if worker == "" || workerJob == "" {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	key := worker + "|" + workerJob
	if j.placements == nil {
		j.placements = make(map[string]placementRef)
	}
	j.placements[key] = placementRef{Worker: worker, WorkerJob: workerJob}
}

// workerSpans fetches one worker-side job's spans, keeping only those
// in the federated trace (a worker job placed before trace propagation
// existed carries its own trace id and is skipped).
func (c *Coordinator) workerSpans(r *http.Request, pl placementRef, traceID string) []obs.Span {
	ctx, cancel := context.WithTimeout(r.Context(), c.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		pl.Worker+"/api/v1/jobs/"+pl.WorkerJob+"/trace", nil)
	if err != nil {
		return nil
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.log.Warn("trace fetch failed; serving a partial trace",
			"worker", pl.Worker, "worker_job", pl.WorkerJob, "err", err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.log.Warn("trace fetch failed; serving a partial trace",
			"worker", pl.Worker, "worker_job", pl.WorkerJob, "status", resp.StatusCode)
		return nil
	}
	var doc obs.TraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		c.log.Warn("trace decode failed; serving a partial trace",
			"worker", pl.Worker, "worker_job", pl.WorkerJob, "err", err)
		return nil
	}
	out := doc.Spans[:0]
	for _, sp := range doc.Spans {
		if sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	return out
}

// handleTrace serves the stitched federated trace: the coordinator's
// own spans merged with the spans of every worker-side shard job the
// campaign placed, as a JSON tree (default) or the Chrome trace-event
// format Perfetto loads (?format=chrome). Unreachable workers degrade
// to a partial trace rather than an error.
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookup(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	traceID := j.traceID
	spans := append([]obs.Span(nil), j.spans...)
	placements := make([]placementRef, 0, len(j.placements))
	for _, pl := range j.placements {
		placements = append(placements, pl)
	}
	j.mu.Unlock()
	for _, pl := range placements {
		spans = append(spans, c.workerSpans(r, pl, traceID)...)
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteChromeTrace(w, spans); err != nil {
			c.log.Error("chrome trace write failed", "job_id", j.id, "err", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, obs.TraceDoc{
		TraceID: traceID,
		Job:     j.id,
		Spans:   spans,
		Tree:    obs.BuildTree(spans),
	})
}
