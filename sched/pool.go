package sched

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"darco/serve"
)

// worker is one pool member: a darco-served daemon the coordinator
// places shards on. Identity (URL) is immutable; everything observed
// about the worker — health, the id/version its /healthz reports,
// queue depth, and the coordinator-side placement counters — is
// guarded by mu.
type worker struct {
	url string // normalized base URL, no trailing slash

	mu        sync.Mutex
	id        string // worker_id from /healthz
	version   string
	healthy   bool
	lastErr   string
	lastProbe time.Time
	depth     int // queue_depth from the last probe

	active    int    // shards currently placed (or being placed) here
	placed    uint64 // shard submissions accepted (202)
	gathered  uint64 // scenario rows gathered from this worker
	retries   uint64 // shard attempts on this worker that failed
	rejected  uint64 // shard submissions bounced with 429
	probeFail uint64
}

// WorkerInfo is the wire representation of a pool member, served by
// GET /api/v1/workers and mirrored in /metrics.
type WorkerInfo struct {
	URL          string    `json:"url"`
	ID           string    `json:"worker_id,omitempty"`
	Version      string    `json:"version,omitempty"`
	Healthy      bool      `json:"healthy"`
	LastError    string    `json:"last_error,omitempty"`
	LastProbe    time.Time `json:"last_probe,omitempty"`
	QueueDepth   int       `json:"queue_depth"`
	ActiveShards int       `json:"active_shards"`
	ShardsPlaced uint64    `json:"shards_placed"`
	RowsGathered uint64    `json:"rows_gathered"`
	Retries      uint64    `json:"retries"`
	Rejections   uint64    `json:"rejections"`
}

func (w *worker) info() WorkerInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerInfo{
		URL:          w.url,
		ID:           w.id,
		Version:      w.version,
		Healthy:      w.healthy,
		LastError:    w.lastErr,
		LastProbe:    w.lastProbe,
		QueueDepth:   w.depth,
		ActiveShards: w.active,
		ShardsPlaced: w.placed,
		RowsGathered: w.gathered,
		Retries:      w.retries,
		Rejections:   w.rejected,
	}
}

// markUnhealthy records a failed interaction; the worker stays out of
// placement until a probe succeeds again.
func (w *worker) markUnhealthy(err error) {
	w.mu.Lock()
	w.healthy = false
	w.lastErr = err.Error()
	w.mu.Unlock()
}

func (w *worker) release() {
	w.mu.Lock()
	w.active--
	w.mu.Unlock()
}

// reserve claims a placement slot outside pick (adoption re-attaches
// to a specific worker rather than choosing one); released like any
// pick.
func (w *worker) reserve() {
	w.mu.Lock()
	w.active++
	w.mu.Unlock()
}

func (w *worker) notePlaced() {
	w.mu.Lock()
	w.placed++
	w.mu.Unlock()
}

func (w *worker) noteRejected() {
	w.mu.Lock()
	w.rejected++
	w.mu.Unlock()
}

func (w *worker) noteRetry() {
	w.mu.Lock()
	w.retries++
	w.mu.Unlock()
}

func (w *worker) noteRows(n int) {
	w.mu.Lock()
	w.gathered += uint64(n)
	w.mu.Unlock()
}

// pool is the registered worker set, in registration order. Static
// -worker members are added at New; POST /api/v1/workers adds more at
// runtime.
type pool struct {
	mu      sync.Mutex
	workers []*worker
	byURL   map[string]*worker
}

func newPool() *pool {
	return &pool{byURL: make(map[string]*worker)}
}

// normalizeWorkerURL validates and canonicalizes a worker base URL.
func normalizeWorkerURL(raw string) (string, error) {
	u, err := url.Parse(strings.TrimRight(raw, "/"))
	if err != nil {
		return "", fmt.Errorf("worker url %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("worker url %q: scheme must be http or https", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("worker url %q: missing host", raw)
	}
	return u.String(), nil
}

// add registers a worker URL, returning the (possibly pre-existing)
// entry and whether it was new.
func (p *pool) add(rawURL string) (*worker, bool, error) {
	u, err := normalizeWorkerURL(rawURL)
	if err != nil {
		return nil, false, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if w, ok := p.byURL[u]; ok {
		return w, false, nil
	}
	w := &worker{url: u}
	p.workers = append(p.workers, w)
	p.byURL[u] = w
	return w, true, nil
}

// remove deregisters a worker by worker_id (from its /healthz), exact
// URL, or URL host:port, returning the removed member. In-flight
// gathers against it finish on their own references; it is simply
// never picked again.
func (p *pool) remove(key string) (*worker, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, w := range p.workers {
		w.mu.Lock()
		id := w.id
		w.mu.Unlock()
		u, _ := url.Parse(w.url)
		if key != w.url && (key == "" || key != id) && (u == nil || key != u.Host) {
			continue
		}
		p.workers = append(p.workers[:i], p.workers[i+1:]...)
		delete(p.byURL, w.url)
		return w, true
	}
	return nil, false
}

// ensure returns the pool member for rawURL, registering it first if
// needed — re-adoption must be able to gather from a worker the
// restarted coordinator was not configured with (e.g. one that had
// self-registered at runtime).
func (p *pool) ensure(rawURL string) (*worker, error) {
	w, _, err := p.add(rawURL)
	return w, err
}

// list snapshots the pool in registration order.
func (p *pool) list() []*worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*worker, len(p.workers))
	copy(out, p.workers)
	return out
}

func (p *pool) healthyCount() int {
	n := 0
	for _, w := range p.list() {
		w.mu.Lock()
		if w.healthy {
			n++
		}
		w.mu.Unlock()
	}
	return n
}

// pick reserves the least-loaded healthy worker (fewest active shards,
// then shallowest reported queue, then registration order), excluding
// except. The reservation (active++) is atomic with the choice so
// concurrent placements spread across the pool; callers must release()
// the worker when the attempt ends.
func (p *pool) pick(except *worker) *worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *worker
	bestActive, bestDepth := 0, 0
	for _, w := range p.workers {
		if w == except {
			continue
		}
		w.mu.Lock()
		healthy, active, depth := w.healthy, w.active, w.depth
		w.mu.Unlock()
		if !healthy {
			continue
		}
		if best == nil || active < bestActive || (active == bestActive && depth < bestDepth) {
			best, bestActive, bestDepth = w, active, depth
		}
	}
	if best != nil {
		best.mu.Lock()
		best.active++
		best.mu.Unlock()
	}
	return best
}

// probe refreshes one worker's health from its /healthz.
func (c *Coordinator) probe(ctx context.Context, w *worker) bool {
	ctx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		w.markUnhealthy(err)
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		w.mu.Lock()
		w.healthy = false
		w.lastErr = err.Error()
		w.lastProbe = time.Now()
		w.probeFail++
		w.mu.Unlock()
		return false
	}
	defer resp.Body.Close()
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || resp.StatusCode != http.StatusOK || h.Status != "ok" {
		if err == nil {
			err = fmt.Errorf("healthz: status %d (%q)", resp.StatusCode, h.Status)
		}
		w.markUnhealthy(err)
		return false
	}
	w.mu.Lock()
	wasHealthy := w.healthy
	w.healthy = true
	w.lastErr = ""
	w.lastProbe = time.Now()
	w.id = h.WorkerID
	w.version = h.Version
	w.depth = h.QueueDepth
	w.mu.Unlock()
	if !wasHealthy {
		c.log.Info("worker healthy", "worker", w.url, "worker_id", h.WorkerID, "version", h.Version)
	}
	return true
}

// probeAll refreshes every pool member and reports how many are
// healthy afterwards.
func (c *Coordinator) probeAll(ctx context.Context) int {
	healthy := 0
	for _, w := range c.pool.list() {
		if c.probe(ctx, w) {
			healthy++
		}
	}
	return healthy
}

// prober is the background health loop: every ProbeInterval it
// refreshes the pool so placement sees worker deaths and recoveries
// without waiting for a shard to fail.
func (c *Coordinator) prober() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-ticker.C:
			c.probeAll(c.baseCtx)
		}
	}
}
