// Warm-up methodology walkthrough (the paper's §VI-E case study): show
// why sampling-based simulation of a co-designed processor must warm up
// the TOL state, and how downscaling the promotion thresholds during
// warm-up trades simulation cost against accuracy.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"darco/internal/warmup"
	"darco/internal/workload"
)

func main() {
	p, ok := workload.ByName("462.libquantum")
	if !ok {
		log.Fatal("workload missing")
	}
	im, err := p.Scale(0.4).Generate()
	if err != nil {
		log.Fatal(err)
	}

	// The study is long: Ctrl-C cancels it cleanly mid-candidate.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := warmup.DefaultConfig()
	st, err := warmup.RunStudyContext(ctx, im, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program: %s (%d dynamic guest instructions)\n", p.Name, st.TotalGuest)
	fmt.Printf("full detailed simulation: %.3f cycles/guest insn, cost %.0f simulated insns\n\n",
		st.FullCPGI, st.FullCost)

	fmt.Println("candidate (scale factor, warm-up length) configurations:")
	fmt.Printf("%8s%10s%10s%12s%12s\n", "scale", "warm-len", "error %", "reduction", "similarity")
	for _, c := range st.Candidates {
		fmt.Printf("%8d%10d%10.2f%11.1fx%12.4f\n",
			c.Scale, c.WarmLen, c.ErrorPct, c.Reduction, c.Similarity)
	}
	fmt.Printf("\nheuristic pick (best distribution match): scale %d, warm-up %d\n",
		st.Chosen.Scale, st.Chosen.WarmLen)
	fmt.Printf("-> %.2f%% error at %.1fx simulation-cost reduction\n",
		st.Chosen.ErrorPct, st.Chosen.Reduction)
	fmt.Println("\nA too-small scale factor leaves the TOL cold (code stuck below the")
	fmt.Println("promotion thresholds, inflating cycles); a too-aggressive one promotes")
	fmt.Println("code the authoritative run never optimized. The heuristic correlates")
	fmt.Println("basic-block execution distributions to pick the best match (§VI-E).")
}
