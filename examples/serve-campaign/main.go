// Serve-campaign: drive the campaign daemon end to end from a client's
// point of view. The example embeds a serve.Server on a loopback
// listener so it is self-contained, then talks to it purely over HTTP
// the way any external client would: submit a campaign, follow the
// live event stream (state transitions, per-scenario result rows,
// windowed instruction-mix telemetry), and fetch the finished
// campaign's CSV.
//
// Point it at an already-running daemon instead with -addr:
//
//	darco-served -addr :8080 &
//	go run ./examples/serve-campaign -addr http://localhost:8080
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"darco/serve"
)

func main() {
	addr := flag.String("addr", "", "daemon base URL (empty = start an embedded server)")
	flag.Parse()

	base := *addr
	if base == "" {
		// Self-contained mode: an in-process daemon on a loopback port.
		srv := serve.New(serve.Options{Workers: 1})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			hs.Shutdown(ctx)
		}()
		base = "http://" + ln.Addr().String()
		fmt.Printf("embedded daemon on %s\n", base)
	}

	// Submit: three benchmarks at a small scale, telemetry windowed
	// every 100k host instructions.
	req := serve.SubmitRequest{
		Name: "example",
		Scenarios: []serve.ScenarioSpec{
			{Profile: "429.mcf", Scale: 0.2},
			{Profile: "458.sjeng", Scale: 0.2},
			{Profile: "470.lbm", Scale: 0.2},
		},
		Telemetry: &serve.TelemetrySpec{IntervalInsns: 100_000},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		log.Fatal(err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	fmt.Printf("submitted %s: %d scenarios, state %s\n", st.ID, st.Scenarios, st.State)

	// Follow the live stream in NDJSON framing until the job is
	// terminal. (SSE framing is the default; ?format=ndjson is easier
	// to parse line-by-line.)
	events, err := http.Get(base + "/api/v1/jobs/" + st.ID + "/events?format=ndjson")
	if err != nil {
		log.Fatal(err)
	}
	defer events.Body.Close()
	var final serve.JobStatus
	windows := map[int]int{}
	sc := bufio.NewScanner(events.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var env struct {
			Event string          `json:"event"`
			Data  json.RawMessage `json:"data"`
		}
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			log.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		switch env.Event {
		case serve.EventState:
			if err := json.Unmarshal(env.Data, &final); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("state: %s (%d/%d scenarios)\n", final.State, final.Completed, final.Scenarios)
		case serve.EventScenario:
			var ev serve.ScenarioEvent
			if err := json.Unmarshal(env.Data, &ev); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("scenario %d %-12s guest=%d tol=%.1f%% (im/bbm/sbm %.1f/%.1f/%.1f)\n",
				ev.Index, ev.Row.Scenario, ev.Row.GuestInsns, ev.Row.TOLPct,
				ev.Row.IMPct, ev.Row.BBMPct, ev.Row.SBMPct)
		case serve.EventTelemetry:
			var ev serve.TelemetryEvent
			if err := json.Unmarshal(env.Data, &ev); err != nil {
				log.Fatal(err)
			}
			windows[ev.Index]++
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, n := range windows {
		total += n
	}
	fmt.Printf("telemetry: %d instruction-mix windows across %d scenarios\n", total, len(windows))

	// Fetch the finished campaign as CSV — deterministic bytes,
	// identical to an offline export of the same scenarios.
	csv, err := http.Get(base + "/api/v1/jobs/" + st.ID + "/export.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer csv.Body.Close()
	lines := 0
	csvScan := bufio.NewScanner(csv.Body)
	for csvScan.Scan() {
		lines++
		if lines <= 2 { // header + first row, as a taste
			fmt.Println(csvScan.Text())
		}
	}
	fmt.Printf("export.csv: %d lines, job ended %s\n", lines, final.State)
}
