// Timing and power study: run a floating-point workload on the attached
// timing simulator and event-energy power model, then sweep the issue
// width to explore the paper's "wide in-order or narrow out-of-order"
// design question (§III) from the in-order side.
package main

import (
	"fmt"
	"log"

	darco "darco"
	"darco/internal/workload"
)

func main() {
	p, ok := workload.ByName("470.lbm")
	if !ok {
		log.Fatal("workload missing")
	}
	im, err := p.Scale(0.4).Generate()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== 470.lbm on the default 2-wide in-order co-designed core ===")
	res, err := darco.Run(im, darco.FullConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())
	fmt.Println("\npower by component:")
	for _, comp := range []string{"frontend", "issue+regfile", "alu", "lsu", "l2", "dram", "tol"} {
		fmt.Printf("  %-14s %.4g J\n", comp, res.Power.ByComponent[comp])
	}

	fmt.Println("\n=== issue-width sweep (wide in-order trade-off) ===")
	fmt.Printf("%8s%12s%12s%14s%14s\n", "width", "cycles", "IPC", "avg power W", "energy J")
	for _, width := range []int{1, 2, 4, 8} {
		cfg := darco.FullConfig()
		cfg.Timing.FetchWidth = width
		cfg.Timing.IssueWidth = width
		cfg.Timing.SimpleUnits = width
		cfg.Timing.ComplexUnits = (width + 1) / 2
		cfg.Timing.MemReadPorts = (width + 1) / 2
		r, err := darco.Run(im, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d%12d%12.3f%14.3f%14.4g\n",
			width, r.Timing.Cycles, r.Timing.IPC(), r.Power.AvgPowerW, r.Power.TotalJ)
	}
}
