// Timing and power study: run a floating-point workload on the attached
// timing simulator and event-energy power model, then sweep the issue
// width to explore the paper's "wide in-order or narrow out-of-order"
// design question (§III) from the in-order side. The sweep runs as a
// parallel campaign: one scenario per issue width, each deriving its
// engine from width-specific options.
package main

import (
	"context"
	"fmt"
	"log"

	darco "darco"
	"darco/internal/power"
	"darco/internal/timing"
	"darco/internal/workload"
)

func main() {
	p, ok := workload.ByName("470.lbm")
	if !ok {
		log.Fatal("workload missing")
	}
	im, err := p.Scale(0.4).Generate()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("=== 470.lbm on the default 2-wide in-order co-designed core ===")
	eng, err := darco.NewEngine(
		darco.WithTiming(timing.DefaultConfig()),
		darco.WithPower(power.DefaultEnergies(), 1000),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(ctx, im)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Summary())
	fmt.Println("\npower by component:")
	for _, comp := range []string{"frontend", "issue+regfile", "alu", "lsu", "l2", "dram", "tol"} {
		fmt.Printf("  %-14s %.4g J\n", comp, res.Power.ByComponent[comp])
	}

	fmt.Println("\n=== issue-width sweep (wide in-order trade-off), parallel campaign ===")
	widths := []int{1, 2, 4, 8}
	var scenarios []darco.Scenario
	for _, width := range widths {
		tc := timing.DefaultConfig()
		tc.FetchWidth = width
		tc.IssueWidth = width
		tc.SimpleUnits = width
		tc.ComplexUnits = (width + 1) / 2
		tc.MemReadPorts = (width + 1) / 2
		scenarios = append(scenarios, darco.Scenario{
			Name:    fmt.Sprintf("470.lbm@%d-wide", width),
			Profile: p,
			Scale:   0.4,
			Options: []darco.Option{darco.WithTiming(tc)},
		})
	}
	rep, err := eng.RunCampaign(ctx, scenarios)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s%12s%12s%14s%14s\n", "width", "cycles", "IPC", "avg power W", "energy J")
	for i, sr := range rep.Results {
		r := sr.Result
		fmt.Printf("%8d%12d%12.3f%14.3f%14.4g\n",
			widths[i], r.Timing.Cycles, r.Timing.IPC(), r.Power.AvgPowerW, r.Power.TotalJ)
	}
	fmt.Printf("\nsweep: %s wall on %d workers (%s serial-equivalent)\n",
		rep.Wall, rep.Parallelism, rep.SerialWall())
}
