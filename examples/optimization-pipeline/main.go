// Optimization pipeline walkthrough: translate one hot region by hand
// and print the IR after each stage of the TOL's superblock optimizer —
// SSA construction, the forward pass, CSE, DCE, the DDG memory phase,
// list scheduling — and the final host code with its pinned-register
// writebacks, asserts and commit points.
package main

import (
	"context"
	"fmt"
	"log"

	darco "darco"
	"darco/internal/guest"
	"darco/internal/ir"
)

const program = `
.org 0x1000
.entry start
start:
    movri ebp, 0x10000
    movri ecx, 0
    movri ebx, 0
loop:
    loadx eax, [ebp+ecx<<2+0]   ; a[i]
    imulri eax, 3
    addri eax, 100
    addri eax, 28               ; constant folding fodder
    storex [ebp+ecx<<2+4096], eax
    loadx edx, [ebp+ecx<<2+0]   ; redundant load (same address)
    addrr ebx, edx
    inc ecx
    cmpri ecx, 5000
    jl loop
    movri eax, 1
    movri ebx, 0
    syscall
    halt
`

func main() {
	im, err := guest.Assemble(program)
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}

	// Run the program far enough that the loop reaches superblock mode,
	// then pull the hot region out of the code cache for inspection.
	eng, err := darco.NewEngine()
	if err != nil {
		log.Fatalf("engine: %v", err)
	}
	res, err := eng.Run(context.Background(), im)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Print(res.Summary(), "\n")

	// Rebuild the same region standalone to show the pipeline stages.
	loopPC := im.Labels["loop"]
	region := buildDemoRegion(loopPC)
	fmt.Println("=== IR as translated (SSA by construction, lazy flags) ===")
	fmt.Print(region.String())

	folded := region.ForwardPass()
	csed := region.CSE()
	dced := region.DCE()
	fmt.Printf("=== after forward pass (+%d folds), CSE (+%d), DCE (+%d) ===\n", folded, csed, dced)
	fmt.Print(region.String())

	mem := region.MemOpt()
	fmt.Printf("=== after DDG memory phase (RLE %d, dead stores %d) ===\n",
		mem.LoadsEliminated, mem.StoresEliminated)
	g := region.BuildDDG()
	sched := region.Schedule(g, 12)
	fmt.Printf("=== after list scheduling (makespan %d, %d speculative loads) ===\n",
		sched.Length, sched.SpecLoads)
	fmt.Print(region.String())

	alloc := region.Allocate()
	gen, err := region.Generate(alloc)
	if err != nil {
		log.Fatalf("codegen: %v", err)
	}
	fmt.Printf("=== host code (%d instructions, %d spills) ===\n", len(gen.Code), gen.Spills)
	for i := range gen.Code {
		fmt.Printf("  %3d: %s\n", i, gen.Code[i].String())
	}
}

// buildDemoRegion hand-constructs the IR the TOL frontend would emit for
// one iteration of the loop body with the branch converted to an assert
// (a single-entry single-exit superblock iteration).
func buildDemoRegion(entry uint32) *ir.Region {
	r := &ir.Region{Entry: entry, UseAsserts: true}
	v := func() ir.ValueID { return r.NewValue() }
	emit := func(in ir.Inst) ir.ValueID {
		if in.Dst == -1 {
			in.Dst = v()
		}
		r.Emit(in)
		return in.Dst
	}
	ebp := emit(ir.Inst{Op: ir.LiveIn, Dst: -1, Arch: ir.ArchEBP})
	ecx := emit(ir.Inst{Op: ir.LiveIn, Dst: -1, Arch: ir.ArchECX})
	ebx := emit(ir.Inst{Op: ir.LiveIn, Dst: -1, Arch: ir.ArchEBX})
	c2 := emit(ir.Inst{Op: ir.ConstI, Dst: -1, ImmU: 2})
	idx := emit(ir.Inst{Op: ir.Shl, Dst: -1, A: ecx, B: c2})
	ea := emit(ir.Inst{Op: ir.Add, Dst: -1, A: ebp, B: idx})
	a := emit(ir.Inst{Op: ir.Ld32, Dst: -1, A: ea})
	c3 := emit(ir.Inst{Op: ir.ConstI, Dst: -1, ImmU: 3})
	m := emit(ir.Inst{Op: ir.Mul, Dst: -1, A: a, B: c3})
	c100 := emit(ir.Inst{Op: ir.ConstI, Dst: -1, ImmU: 100})
	s1 := emit(ir.Inst{Op: ir.Add, Dst: -1, A: m, B: c100})
	c28 := emit(ir.Inst{Op: ir.ConstI, Dst: -1, ImmU: 28})
	s2 := emit(ir.Inst{Op: ir.Add, Dst: -1, A: s1, B: c28})
	emit(ir.Inst{Op: ir.St32, A: ea, Off: 4096, B: s2})
	a2 := emit(ir.Inst{Op: ir.Ld32, Dst: -1, A: ea}) // redundant load
	nbx := emit(ir.Inst{Op: ir.Add, Dst: -1, A: ebx, B: a2})
	c1 := emit(ir.Inst{Op: ir.ConstI, Dst: -1, ImmU: 1})
	ncx := emit(ir.Inst{Op: ir.Add, Dst: -1, A: ecx, B: c1})
	c5000 := emit(ir.Inst{Op: ir.ConstI, Dst: -1, ImmU: 5000})
	le := emit(ir.Inst{Op: ir.Slt, Dst: -1, A: ncx, B: c5000})
	emit(ir.Inst{Op: ir.Assert, A: le}) // speculated loop-back branch
	emit(ir.Inst{Op: ir.Exit, ImmU: entry, State: []ir.ArchVal{
		{Arch: ir.ArchECX, Val: ncx},
		{Arch: ir.ArchEBX, Val: nbx},
	}})
	return r
}
