// Retire-trace: subscribe to a session's retire stream and watch the
// co-designed component's host instruction mix evolve as the TOL
// promotes the workload from interpretation to optimized superblocks.
//
// The stream delivers batched retired host instructions interleaved —
// in retire order — with the synchronization events the controller
// mediates, on the session's own goroutine. The same feed drives the
// timing simulator; here it drives a live instruction-mix profile
// instead, the kind of telemetry a dashboard would plot.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	darco "darco"
	"darco/internal/workload"
)

func main() {
	p, ok := workload.ByName("429.mcf")
	if !ok {
		log.Fatal("workload missing")
	}
	im, err := p.Scale(0.1).Generate()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	ses, err := eng.NewSession(im)
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate the stream: a class histogram, memory/branch behavior,
	// and the interleaved synchronization markers.
	classes := map[darco.RetireClass]uint64{}
	var events, taken, branches uint64
	var syncLines []string
	ses.SubscribeRetires(func(b darco.RetireBatch) {
		if b.Sync != nil {
			if len(syncLines) < 8 {
				syncLines = append(syncLines, fmt.Sprintf("  seq %-4d %-13s @ %d guest insns",
					b.Seq, b.Sync.Kind, b.Sync.GuestInsns))
			}
			return
		}
		events += uint64(len(b.Events))
		for i := range b.Events {
			ev := &b.Events[i]
			classes[ev.Class]++
			if ev.Class == darco.RetireBranch {
				branches++
				if ev.Taken {
					taken++
				}
			}
		}
	}, darco.WithRetireBatchSize(8192))

	res, err := ses.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("retire stream of %s: %d host instructions in the application stream\n\n", p.Name, events)
	fmt.Println("instruction mix:")
	order := []darco.RetireClass{darco.RetireSimple, darco.RetireComplex, darco.RetireMemory,
		darco.RetireBranch, darco.RetireVector}
	for _, c := range order {
		n := classes[c]
		pct := 100 * float64(n) / float64(events)
		fmt.Printf("  %-8s %7.2f%%  %s\n", c, pct, strings.Repeat("#", int(pct/2)))
	}
	if branches > 0 {
		fmt.Printf("\nbranches: %d retired, %.1f%% taken\n", branches, 100*float64(taken)/float64(branches))
	}
	fmt.Println("\nfirst synchronization markers in the stream:")
	for _, l := range syncLines {
		fmt.Println(l)
	}
	fmt.Printf("\nsession: %d guest insns, %d app host insns (stream saw every one: %v)\n",
		res.Stats.GuestInsns(), res.HostAppInsns, events == res.HostAppInsns)
}
