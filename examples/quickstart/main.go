// Quickstart: assemble a small guest program, run it on the full
// co-designed stack through the Engine/Session API, and inspect what
// the TOL did with it — including the stream of translation events the
// Observer surfaces while the hot loop climbs the optimization modes.
package main

import (
	"context"
	"fmt"
	"log"

	darco "darco"
	"darco/internal/guest"
)

// A tiny guest program: sum the first 100000 integers, write the result
// through a system call, and exit. The hot loop is interpreted first,
// then promoted to a basic-block translation, and finally optimized into
// an unrolled superblock.
const program = `
.org 0x1000
.entry start
start:
    movri eax, 0          ; sum
    movri ecx, 1          ; i
loop:
    addrr eax, ecx
    inc ecx
    cmpri ecx, 100000
    jle loop

    movri ebp, 0x20000
    store [ebp+0], eax    ; stash the sum
    movri eax, 4          ; write(fd=1, buf, 4)
    movri ebx, 1
    movri ecx, 0x20000
    movri edx, 4
    syscall
    movri eax, 1          ; exit(0)
    movri ebx, 0
    syscall
    halt
`

func main() {
	im, err := guest.Assemble(program)
	if err != nil {
		log.Fatalf("assemble: %v", err)
	}

	// The engine is reusable configuration; the observer streams every
	// translation as the loop is promoted IM -> BBM -> SBM.
	eng, err := darco.NewEngine(
		darco.WithObserver(darco.ObserverFuncs{
			Translation: func(ev darco.TranslationEvent) {
				fmt.Printf("translated %-10s @%#x (%d guest -> %d host insns)\n",
					ev.Kind, ev.Entry, ev.GuestInsns, ev.HostInsns)
			},
		}),
	)
	if err != nil {
		log.Fatalf("engine: %v", err)
	}
	ses, err := eng.NewSession(im)
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	res, err := ses.Run(context.Background())
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Println()

	sum := uint32(res.Output[0]) | uint32(res.Output[1])<<8 |
		uint32(res.Output[2])<<16 | uint32(res.Output[3])<<24
	fmt.Printf("guest computed sum(1..100000) = %d\n\n", sum)
	fmt.Print(res.Summary())
	fmt.Printf("\nThe final state was validated against the authoritative emulator\n")
	fmt.Printf("(%d full comparisons, %d page transfers).\n", res.Validations, res.PageTransfers)
}
