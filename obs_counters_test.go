package darco_test

import (
	"context"
	"testing"

	darco "darco"
	"darco/internal/timing"
	"darco/internal/workload"
	"darco/obs"
)

// TestObsCountersAttached proves WithObsCounters populates the hot-path
// counters and surfaces a snapshot on Result, and that the counted
// events reconcile with the run's own statistics.
func TestObsCountersAttached(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	ctrs := &obs.EngineCounters{
		BatchOccupancy: obs.NewHistogram(obs.LinearBuckets(128, 128, 8)),
		BarrierStall:   obs.NewHistogram(obs.ExpBuckets(1e-6, 10, 6)),
	}
	eng, err := darco.NewEngine(
		darco.WithTiming(timing.DefaultConfig()),
		darco.WithTimingPipeline(4),
		darco.WithObsCounters(ctrs),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("Result.Obs nil with counters attached")
	}
	s := *res.Obs
	if s.DecodeHits == 0 || s.DecodeMisses == 0 {
		t.Errorf("decode counters empty: %+v", s)
	}
	if s.BlockHits == 0 || s.BlockMisses == 0 {
		t.Errorf("block counters empty: %+v", s)
	}
	// Every dispatch did exactly one block-cache lookup.
	if got := s.BlockHits + s.BlockMisses; got != res.Stats.Dispatches {
		t.Errorf("block lookups %d != dispatches %d", got, res.Stats.Dispatches)
	}
	if s.PipelinePushes == 0 || s.PipelineFlushes == 0 {
		t.Errorf("pipeline counters empty: %+v", s)
	}
	// The pipeline carries exactly the retired host instruction stream.
	if s.PipelinePushes != res.HostAppInsns {
		t.Errorf("pipeline pushes %d != host app insns %d", s.PipelinePushes, res.HostAppInsns)
	}
	if occ := ctrs.BatchOccupancy.Snapshot(); occ.Count != s.PipelineFlushes {
		t.Errorf("occupancy observations %d != flushes %d", occ.Count, s.PipelineFlushes)
	}
	if stall := ctrs.BarrierStall.Snapshot(); stall.Count == 0 {
		t.Errorf("no barrier-stall observations despite sync barriers")
	}
	if res.Phases.Emulate <= 0 {
		t.Errorf("emulate phase not measured: %+v", res.Phases)
	}
	if res.Phases.TimingDrain < 0 {
		t.Errorf("negative drain phase: %+v", res.Phases)
	}
}

// TestObsCountersDetached proves the default path carries no snapshot
// and a derived campaign engine inherits attached counters.
func TestObsCountersDetached(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs != nil {
		t.Fatalf("Result.Obs = %+v without WithObsCounters", res.Obs)
	}
}

// TestObsCountersInheritedByCampaign proves a campaign's derived
// per-scenario engines keep feeding the engine's counters instance.
func TestObsCountersInheritedByCampaign(t *testing.T) {
	ctrs := &obs.EngineCounters{}
	eng, err := darco.NewEngine(darco.WithObsCounters(ctrs))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := workload.ByName("429.mcf")
	scens := []darco.Scenario{
		{Name: "a", Profile: p, Scale: 0.05},
		{Name: "b", Profile: p, Scale: 0.05},
	}
	rep, err := eng.RunCampaign(context.Background(), scens, darco.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Result.Obs == nil {
			t.Fatalf("scenario %s result carries no counters snapshot", r.Scenario.Name)
		}
	}
	if ctrs.DecodeHits.Load()+ctrs.DecodeMisses.Load() == 0 {
		t.Error("campaign scenarios did not feed the shared counters")
	}
}
