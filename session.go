package darco

import (
	"context"
	"errors"
	"time"

	"darco/internal/controller"
	"darco/internal/guest"
	"darco/internal/hostvm"
	"darco/internal/power"
	"darco/internal/timing"
	"darco/internal/tol"
)

// Session is one guest program executing on an Engine's configuration.
// It is single-goroutine: drive it with Run (to completion) or Step
// (incrementally), and read snapshots between steps. A session whose
// context was cancelled stays consistent and can be resumed with a
// fresh context; any other error is terminal.
type Session struct {
	eng    *Engine
	ctl    *controller.Controller
	core   *timing.Core
	pipe   *timing.Pipeline // non-nil when the timing pipeline is enabled
	stream retireStream

	wall      time.Duration
	emulate   time.Duration // inside the controller's run loop
	drain     time.Duration // waiting on the timing pipeline at Step exit
	stepStart time.Time     // non-zero only while inside Step
	done      bool
	err       error // sticky terminal error
}

// NewSession launches the authoritative and co-designed components for
// im under the engine's configuration (the Initialization phase).
func (e *Engine) NewSession(im *guest.Image) (*Session, error) {
	s := &Session{eng: e}
	ctlCfg := controller.Config{
		TOL:                 e.cfg.TOL,
		ValidateEveryNSyncs: e.cfg.ValidateEveryNSyncs,
		MaxGuestInsns:       e.cfg.MaxGuestInsns,
		CheckInterval:       e.interval,
	}
	if obs := e.observer; obs != nil {
		ctlCfg.TOL.OnTranslation = func(ev tol.TranslationEvent) { obs.OnTranslation(translationEvent(ev)) }
		ctlCfg.OnSync = s.onSync
		ctlCfg.OnTick = func() { obs.OnProgress(s.progress()) }
	}
	ctl, err := controller.New(im, ctlCfg)
	if err != nil {
		return nil, err
	}
	s.ctl = ctl
	if e.cfg.Timing != nil {
		s.core = timing.New(*e.cfg.Timing)
		if e.cfg.TimingPipeline > 0 {
			s.pipe = timing.NewPipeline(s.core.Consume, e.cfg.TimingPipeline)
			s.pipe.SetObsCounters(e.cfg.TOL.Counters)
		}
	}
	s.installRetireHooks()
	for _, sub := range e.retireSinks {
		s.SubscribeRetires(sub.sink, sub.opts...)
	}
	return s, nil
}

// SubscribeRetires attaches sink to the session's retire stream: the
// co-designed component's retired host instructions delivered in
// batches, interleaved in retire order with the synchronization events
// the controller mediates. The returned function unsubscribes.
//
// Subscribe, unsubscribe and delivery all happen on the session's
// goroutine: subscribe before running, or between Steps, and the
// stream picks up (or stops) at that execution point. A session with
// no subscribers pays nothing on the retirement hot path — the VM's
// retire hook stays exactly what the timing configuration dictates.
func (s *Session) SubscribeRetires(sink RetireSink, opts ...RetireOption) (unsubscribe func()) {
	sub := s.stream.add(sink, opts...)
	s.installRetireHooks()
	return func() {
		s.stream.remove(sub)
		s.installRetireHooks()
	}
}

// installRetireHooks points the VM's retire slot and the controller's
// sync/excursion hooks at what the session currently needs: the timing
// feed (pipelined or synchronous, or nothing) when no retire subscriber
// is attached, the tee of timing feed and stream otherwise. With the
// pipeline enabled, every synchronization event is a pipeline barrier
// and every excursion boundary flushes the producer batch.
func (s *Session) installRetireHooks() {
	var timingFn func(hostvm.RetireEvent)
	switch {
	case s.pipe != nil:
		timingFn = s.pipe.Push
	case s.core != nil:
		timingFn = s.core.Consume
	}
	streamOn := s.stream.hasSubs()
	if streamOn {
		s.ctl.CoD.VM.Retire = hostvm.TeeRetire(timingFn, s.stream.push)
	} else {
		s.ctl.CoD.VM.Retire = timingFn
	}
	if s.pipe != nil || streamOn || s.eng.observer != nil {
		s.ctl.Cfg.OnSync = s.onSync
	} else {
		s.ctl.Cfg.OnSync = nil
	}
	switch {
	case s.pipe != nil && streamOn:
		s.ctl.Cfg.OnExcursion = func() { s.pipe.Flush(); s.stream.flush() }
	case s.pipe != nil:
		s.ctl.Cfg.OnExcursion = s.pipe.Flush
	case streamOn:
		s.ctl.Cfg.OnExcursion = s.stream.flush
	default:
		s.ctl.Cfg.OnExcursion = nil
	}
}

// onSync fans one controller synchronization event out to the engine's
// observer and the retire stream's subscribers. With the pipeline
// enabled it is a barrier first: the timing core consumes everything
// retired before the synchronization point before anyone observes the
// event — exactly where the synchronous path would be.
func (s *Session) onSync(ev controller.SyncEvent) {
	if s.pipe != nil {
		s.pipe.Barrier()
	}
	pub := syncEvent(ev)
	if obs := s.eng.observer; obs != nil {
		obs.OnSync(pub)
	}
	if s.stream.hasSubs() {
		s.stream.sync(pub)
	}
}

// Run drives the session to completion and returns the final result.
// Cancelling ctx stops the run within one check interval of guest
// instructions and returns the context's error; the session may be
// resumed afterwards.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	return s.Step(ctx, 0)
}

// Step advances the session by up to budget guest instructions (0 =
// run to completion) and returns a snapshot of everything produced so
// far. Once the guest has halted, further Steps return the final result
// without executing anything.
func (s *Session) Step(ctx context.Context, budget uint64) (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.done {
		return s.Snapshot(), nil
	}
	s.stepStart = time.Now()
	// The timing pipeline runs only while the controller does: Start
	// here, Stop (drain) on every way out — so cancellation and errors
	// leave the timing core caught up and consistent, Snapshot below
	// reads a quiescent core, and an abandoned session leaks no
	// goroutine.
	if s.pipe != nil {
		s.pipe.Start()
	}
	err := s.ctl.RunContext(ctx, budget)
	s.emulate += time.Since(s.stepStart)
	if s.pipe != nil {
		drainStart := time.Now()
		s.pipe.Stop()
		s.drain += time.Since(drainStart)
	}
	s.wall += time.Since(s.stepStart)
	s.stepStart = time.Time{}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Cancellation leaves the components consistent; resumable.
			return nil, err
		}
		s.err = err
		return nil, err
	}
	if s.ctl.CoD.Halted() {
		s.done = true
	}
	return s.Snapshot(), nil
}

// Done reports whether the guest program has run to completion.
func (s *Session) Done() bool { return s.done }

// Err reports the session's terminal error, if any (cancellation is not
// terminal).
func (s *Session) Err() error { return s.err }

// Snapshot captures the session's cumulative results without executing
// anything. The snapshot shares no mutable state with the session:
// stepping further never mutates a previously returned Result, and the
// attached timing core (if any) is a deep copy with the TOL overhead
// accumulated so far charged onto it.
func (s *Session) Snapshot() *Result {
	// The pipeline only runs inside Step, which stops (drains) it on
	// every path; this no-ops unless a future caller snapshots a
	// half-stepped session, in which case it drains first.
	if s.pipe != nil {
		s.pipe.Stop()
	}
	ctl := s.ctl
	res := &Result{
		Stats:         ctl.CoD.Stats,
		Overhead:      ctl.CoD.Overhead,
		HostAppInsns:  ctl.CoD.VM.AppInsns,
		Output:        append([]byte(nil), ctl.Output()...),
		ExitCode:      ctl.X86.Env.ExitCode,
		Wall:          s.wall,
		Validations:   ctl.Validations,
		PageTransfers: ctl.PageTransfers,
		SyscallSyncs:  ctl.SyscallSyncs,
	}
	res.HostInsns = res.HostAppInsns + res.Overhead.Total()
	res.Phases = PhaseTimings{Emulate: s.emulate, TimingDrain: s.drain}
	if c := s.eng.cfg.TOL.Counters; c != nil {
		snap := c.Snapshot()
		res.Obs = &snap
	}
	secs := res.Wall.Seconds()
	if secs > 0 {
		res.GuestMIPS = float64(res.Stats.GuestInsns()) / secs / 1e6
		res.HostMIPS = float64(res.HostInsns) / secs / 1e6
	}
	if s.core != nil {
		// Charge TOL overhead onto a deep copy: the live core keeps
		// consuming only application instructions, so snapshots stay
		// consistent and idempotent.
		core := s.core.Clone()
		core.AddTOL(res.Overhead.Total())
		st := core.Stats
		res.Timing = &st
		res.Core = core
		if s.eng.cfg.Power != nil {
			m := power.New(*s.eng.cfg.Power, s.eng.cfg.FreqMHz)
			res.Power = m.Analyze(core)
		}
	}
	return res
}

// progress builds the observer's periodic snapshot (cheap: no core
// clone, no output copy).
func (s *Session) progress() Progress {
	st := &s.ctl.CoD.Stats
	wall := s.wall
	if !s.stepStart.IsZero() {
		wall += time.Since(s.stepStart)
	}
	return Progress{
		GuestInsns:     st.GuestInsns(),
		HostAppInsns:   s.ctl.CoD.VM.AppInsns,
		TOLInsns:       s.ctl.CoD.Overhead.Total(),
		Dispatches:     st.Dispatches,
		BBTranslations: st.BBTranslations,
		SBTranslations: st.SBTranslations,
		Validations:    s.ctl.Validations,
		PageTransfers:  s.ctl.PageTransfers,
		SyscallSyncs:   s.ctl.SyscallSyncs,
		Wall:           wall,
	}
}
