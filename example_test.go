package darco_test

import (
	"context"
	"fmt"
	"log"

	darco "darco"
	"darco/internal/guest"
	"darco/internal/workload"
)

// sumProgram is a tiny guest program: sum the integers 1..1000, write
// the 4-byte result through a syscall, exit. Everything it retires is
// deterministic, which keeps these examples' outputs honest under
// `go test`.
const sumProgram = `
.org 0x1000
.entry start
start:
    movri eax, 0
    movri ecx, 1
loop:
    addrr eax, ecx
    inc ecx
    cmpri ecx, 1000
    jle loop

    movri ebp, 0x20000
    store [ebp+0], eax
    movri eax, 4          ; write(fd=1, buf, 4)
    movri ebx, 1
    movri ecx, 0x20000
    movri edx, 4
    syscall
    movri eax, 1          ; exit(0)
    movri ebx, 0
    syscall
    halt
`

// ExampleNewEngine runs one guest program on the default functional
// stack: a zero-option engine, one session, one result.
func ExampleNewEngine() {
	im, err := guest.Assemble(sumProgram)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(context.Background(), im)
	if err != nil {
		log.Fatal(err)
	}
	sum := uint32(res.Output[0]) | uint32(res.Output[1])<<8 |
		uint32(res.Output[2])<<16 | uint32(res.Output[3])<<24
	fmt.Println("sum(1..1000) =", sum)
	fmt.Println("exit code:", res.ExitCode)
	fmt.Println("validated against the authoritative emulator:", res.Validations > 0)
	// Output:
	// sum(1..1000) = 500500
	// exit code: 0
	// validated against the authoritative emulator: true
}

// ExampleEngine_RunCampaign sweeps a configuration point across
// workloads on a worker pool. Per-scenario statistics are
// deterministic at any parallelism.
func ExampleEngine_RunCampaign() {
	p1, _ := workload.ByName("429.mcf")
	p2, _ := workload.ByName("458.sjeng")
	scenarios := []darco.Scenario{
		{Name: "429.mcf", Profile: p1, Scale: 0.05},
		{Name: "458.sjeng", Profile: p2, Scale: 0.05},
	}
	eng, err := darco.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := eng.RunCampaign(context.Background(), scenarios, darco.WithParallelism(2))
	if err != nil {
		log.Fatal(err)
	}
	for _, sr := range rep.Results {
		fmt.Printf("%s: %d guest insns, %d superblocks\n",
			sr.Scenario.Name, sr.Result.Stats.GuestInsns(), sr.Result.Stats.SBTranslations)
	}
	// Output:
	// 429.mcf: 285791 guest insns, 39 superblocks
	// 458.sjeng: 234915 guest insns, 17 superblocks
}

// ExampleSession_SubscribeRetires streams the retired host
// instructions of a run, batched and interleaved with synchronization
// markers in retire order.
func ExampleSession_SubscribeRetires() {
	im, err := guest.Assemble(sumProgram)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	ses, err := eng.NewSession(im)
	if err != nil {
		log.Fatal(err)
	}
	var insns, branches, syncs uint64
	ses.SubscribeRetires(func(b darco.RetireBatch) {
		if b.Sync != nil {
			syncs++
			return
		}
		insns += uint64(len(b.Events))
		for i := range b.Events {
			if b.Events[i].Class == darco.RetireBranch {
				branches++
			}
		}
	})
	res, err := ses.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stream saw every app host instruction:", insns == res.HostAppInsns)
	fmt.Println("branches retired:", branches)
	fmt.Println("synchronization markers:", syncs)
	// Output:
	// stream saw every app host instruction: true
	// branches retired: 1463
	// synchronization markers: 7
}
