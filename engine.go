package darco

import (
	"context"
	"fmt"

	"darco/internal/guest"
	"darco/internal/host"
	"darco/internal/power"
	"darco/internal/timing"
	"darco/internal/tol"
	"darco/obs"
)

// DefaultCheckInterval is the default granularity, in guest
// instructions, at which a running session checks for cancellation and
// emits progress snapshots.
const DefaultCheckInterval = 50_000

// Option configures an Engine under construction.
type Option func(*Engine)

// WithConfig replaces the engine's whole base configuration. It exists
// to bridge code built around the legacy Config struct; later options
// refine the installed config.
func WithConfig(cfg Config) Option {
	return func(e *Engine) { e.cfg = cfg }
}

// WithTOL sets the Translation Optimization Layer configuration.
func WithTOL(cfg tol.Config) Option {
	return func(e *Engine) { e.cfg.TOL = cfg }
}

// WithTiming attaches the in-order timing simulator to the co-designed
// component's retired host instruction stream.
func WithTiming(cfg timing.Config) Option {
	return func(e *Engine) { e.cfg.Timing = &cfg }
}

// WithPower attaches the event-energy power model at the given core
// frequency. The power model analyzes the timing simulator's state, so
// it requires WithTiming.
func WithPower(en power.Energies, freqMHz float64) Option {
	return func(e *Engine) {
		e.cfg.Power = &en
		e.cfg.FreqMHz = freqMHz
	}
}

// WithTimingPipeline runs the timing simulator on its own goroutine,
// fed from the ordered retire stream through a bounded pipeline of
// depth batches (each timing.DefaultPipelineBatch instructions), so
// emulation runs ahead of timing instead of serializing behind it.
// Synchronization events and excursion boundaries are pipeline
// barriers, and Step/Snapshot drain the pipeline, so Stats — timing
// included — are bit-identical to the synchronous path at any depth.
// Depth 0 keeps today's synchronous reference path; the option is
// inert without WithTiming. Negative depths are rejected.
func WithTimingPipeline(depth int) Option {
	return func(e *Engine) { e.cfg.TimingPipeline = depth }
}

// WithObsCounters attaches hot-path profiling counters to every
// session the engine (and any engine a campaign derives from it)
// creates: decode-cache and block-cache hit/miss, code-cache flushes,
// timing-pipeline pushes/flushes/stalls. The caller owns c and may
// share one instance across engines — all updates are atomic — or
// allocate one per run for per-run attribution; Session.Snapshot
// surfaces the counter values as Result.Obs. Nil detaches (the
// default): the instrumented paths then cost one predictable branch,
// nothing more.
func WithObsCounters(c *obs.EngineCounters) Option {
	return func(e *Engine) { e.cfg.TOL.Counters = c }
}

// WithValidation compares co-designed vs authoritative state at every
// Nth synchronization in addition to the end of the application (0
// disables periodic validation).
func WithValidation(everyNSyncs int) Option {
	return func(e *Engine) { e.cfg.ValidateEveryNSyncs = everyNSyncs }
}

// WithMaxGuestInsns aborts runaway programs after n dynamic guest
// instructions (0 = unlimited).
func WithMaxGuestInsns(n uint64) Option {
	return func(e *Engine) { e.cfg.MaxGuestInsns = n }
}

// WithObserver streams translation events, synchronization events and
// periodic progress snapshots from every session to o.
func WithObserver(o Observer) Option {
	return func(e *Engine) { e.observer = o }
}

// WithRetireStream subscribes sink to the retire stream of every
// session the engine creates, as if Session.SubscribeRetires were
// called at session construction. Like observers, retire sinks are not
// inherited by the per-scenario engines a campaign derives: a sink
// shared across parallel sessions would have to be concurrency-safe,
// so scenarios must opt in through their own options.
func WithRetireStream(sink RetireSink, opts ...RetireOption) Option {
	return func(e *Engine) {
		e.retireSinks = append(e.retireSinks, retireSubscription{sink: sink, opts: opts})
	}
}

// WithCheckInterval sets how many guest instructions a session retires
// between cancellation checks and progress snapshots (0 = only at
// natural synchronization points). Lower values cancel faster but
// re-enter the dispatch loop more often.
func WithCheckInterval(guestInsns uint64) Option {
	return func(e *Engine) { e.interval = guestInsns }
}

// Engine is an immutable, reusable bundle of configuration: build one
// with NewEngine and spawn any number of Sessions (concurrently, if
// desired) from it. The zero options build the paper-default functional
// stack with per-syscall validation.
type Engine struct {
	cfg         Config
	observer    Observer
	retireSinks []retireSubscription
	interval    uint64
}

// NewEngine builds an engine from functional options. The resulting
// engine owns private copies of all configuration, so mutating option
// arguments afterwards does not affect it.
func NewEngine(opts ...Option) (*Engine, error) {
	e := &Engine{cfg: DefaultConfig(), interval: DefaultCheckInterval}
	for _, opt := range opts {
		opt(e)
	}
	// Detach from caller-held pointers so the engine is immutable.
	e.cfg.Timing = copyTiming(e.cfg.Timing)
	if e.cfg.Power != nil {
		pe := *e.cfg.Power
		e.cfg.Power = &pe
	}
	if e.cfg.Power != nil && e.cfg.Timing == nil {
		return nil, fmt.Errorf("darco: WithPower requires WithTiming (the power model analyzes the timing core)")
	}
	if e.cfg.Power != nil && e.cfg.FreqMHz <= 0 {
		return nil, fmt.Errorf("darco: WithPower requires a positive core frequency (got %g MHz)", e.cfg.FreqMHz)
	}
	if e.cfg.ValidateEveryNSyncs < 0 {
		return nil, fmt.Errorf("darco: negative validation interval %d", e.cfg.ValidateEveryNSyncs)
	}
	if e.cfg.TimingPipeline < 0 {
		return nil, fmt.Errorf("darco: negative timing-pipeline depth %d", e.cfg.TimingPipeline)
	}
	return e, nil
}

// Config returns a copy of the engine's effective configuration.
// Mutating the copy (including through its pointer fields) does not
// affect the engine.
func (e *Engine) Config() Config {
	cfg := e.cfg
	cfg.Timing = copyTiming(cfg.Timing)
	if cfg.Power != nil {
		pe := *cfg.Power
		cfg.Power = &pe
	}
	return cfg
}

// copyTiming deep-copies a timing configuration (nil-safe), including
// its latency-override map.
func copyTiming(in *timing.Config) *timing.Config {
	if in == nil {
		return nil
	}
	tc := *in
	if tc.LatencyOverride != nil {
		m := make(map[host.Op]int, len(tc.LatencyOverride))
		for k, v := range tc.LatencyOverride {
			m[k] = v
		}
		tc.LatencyOverride = m
	}
	return &tc
}

// CheckInterval reports the engine's cancellation/progress granularity
// in guest instructions.
func (e *Engine) CheckInterval() uint64 { return e.interval }

// Run builds a session for im and drives it to completion — the
// one-shot convenience over NewSession + Session.Run.
func (e *Engine) Run(ctx context.Context, im *guest.Image) (*Result, error) {
	s, err := e.NewSession(im)
	if err != nil {
		return nil, err
	}
	return s.Run(ctx)
}

// derive builds a new engine that starts from this engine's
// configuration (minus the observer and retire sinks, which scenario
// options must opt into explicitly — a shared sink across parallel
// sessions must be concurrency-safe) and layers opts on top.
func (e *Engine) derive(opts ...Option) (*Engine, error) {
	if len(opts) == 0 && e.observer == nil && len(e.retireSinks) == 0 {
		return e, nil
	}
	all := make([]Option, 0, len(opts)+2)
	all = append(all, WithConfig(e.Config()), WithCheckInterval(e.interval))
	all = append(all, opts...)
	return NewEngine(all...)
}
