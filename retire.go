package darco

import (
	"darco/internal/host"
	"darco/internal/hostvm"
)

// DefaultRetireBatchSize is how many retired host instructions a
// session buffers before delivering them as one RetireBatch when the
// subscriber does not choose a size.
const DefaultRetireBatchSize = 4096

// RetireClass coarsely classifies a retired host instruction by the
// execution resource it occupies, for stream consumers that aggregate
// rather than decode mnemonics.
type RetireClass uint8

// Retired-instruction classes.
const (
	RetireSimple  RetireClass = iota // 1-cycle integer ALU
	RetireComplex                    // multi-cycle integer and FP
	RetireMemory                     // loads and stores (incl. TOL spill slots)
	RetireBranch                     // control flow: branches, exits, chains
	RetireVector                     // SIMD
)

func (c RetireClass) String() string {
	switch c {
	case RetireSimple:
		return "simple"
	case RetireComplex:
		return "complex"
	case RetireMemory:
		return "memory"
	case RetireBranch:
		return "branch"
	case RetireVector:
		return "vector"
	}
	return "?"
}

// RetireEvent is one retired host instruction of the co-designed
// component's application stream — the same per-instruction feed the
// timing simulator consumes. PC and Target are synthetic host
// addresses (code-cache block id and instruction index packed);
// GuestPC is the guest instruction this host instruction emulates.
type RetireEvent struct {
	Op      string // host mnemonic
	Class   RetireClass
	GuestPC uint32
	PC      uint32
	Target  uint32 // branch target, valid when Taken
	Addr    uint32 // effective address, valid for loads and stores
	Taken   bool
	Load    bool
	Store   bool
}

// RetireBatch is one delivery on a session's retire stream: either a
// run of retired host instructions (Events non-empty, Sync nil) or a
// synchronization marker (Sync non-nil, Events nil) positioned exactly
// where it occurred in retire order. Seq numbers deliveries
// contiguously from 0 per session.
//
// The Events slice is reused between deliveries: it is valid only for
// the duration of the callback, so a sink that retains events must
// copy them out.
type RetireBatch struct {
	Seq    uint64
	Events []RetireEvent
	Sync   *SyncEvent
}

// RetireSink consumes retire-stream batches. Sinks run synchronously
// on the session's goroutine, in retire order; a slow sink slows the
// session rather than dropping events.
type RetireSink func(RetireBatch)

// RetireOption configures one retire-stream subscription.
type RetireOption func(*retireSubConfig)

type retireSubConfig struct {
	batchSize int
}

// WithRetireBatchSize sets how many instruction events accumulate
// before the subscription's session flushes a batch (values < 1 mean
// DefaultRetireBatchSize). A session with several subscribers batches
// at the smallest size any of them requested; every subscriber sees
// the same deliveries.
func WithRetireBatchSize(n int) RetireOption {
	return func(c *retireSubConfig) { c.batchSize = n }
}

// retireSubscription is a sink plus its options, recorded on the
// engine by WithRetireStream and replayed onto every new session.
type retireSubscription struct {
	sink RetireSink
	opts []RetireOption
}

// retireStream owns a session's retire-stream state: the active
// subscribers, the shared event buffer, and the delivery sequence.
// Everything runs on the session's goroutine.
type retireStream struct {
	subs  []*retireSub
	batch []RetireEvent
	limit int
	seq   uint64
}

type retireSub struct {
	sink      RetireSink
	batchSize int
	active    bool
}

// add registers a sink and returns its handle.
func (st *retireStream) add(sink RetireSink, opts ...RetireOption) *retireSub {
	cfg := retireSubConfig{batchSize: DefaultRetireBatchSize}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.batchSize < 1 {
		cfg.batchSize = DefaultRetireBatchSize
	}
	sub := &retireSub{sink: sink, batchSize: cfg.batchSize, active: true}
	st.subs = append(st.subs, sub)
	st.relimit()
	return sub
}

// remove deactivates a sink's subscription. The survivors go into a
// fresh slice — never compacted in place — because remove may run from
// inside a sink while deliver is ranging over the current one.
func (st *retireStream) remove(sub *retireSub) {
	if !sub.active {
		return
	}
	sub.active = false
	live := make([]*retireSub, 0, len(st.subs)-1)
	for _, s := range st.subs {
		if s.active {
			live = append(live, s)
		}
	}
	st.subs = live
	st.relimit()
}

// relimit recomputes the flush threshold (the smallest subscriber
// batch size) after a subscribe or unsubscribe.
func (st *retireStream) relimit() {
	st.limit = 0
	for _, s := range st.subs {
		if st.limit == 0 || s.batchSize < st.limit {
			st.limit = s.batchSize
		}
	}
}

func (st *retireStream) hasSubs() bool { return len(st.subs) > 0 }

// push converts one hostvm retire event to the public form and buffers
// it, flushing when the batch threshold is reached. It is the
// session's VM.Retire feed (tee'd with the timing simulator's), so it
// only runs at all when a subscriber is attached.
func (st *retireStream) push(ev hostvm.RetireEvent) {
	d := ev.Inst.Op.Desc()
	pub := RetireEvent{
		Op:      d.Name,
		Class:   retireClass(d.Class),
		GuestPC: ev.Inst.GPC,
		PC:      ev.PC,
		Target:  ev.Target,
		Addr:    ev.Addr,
		Taken:   ev.Taken,
		Load:    d.IsLoad,
		Store:   d.IsStore,
	}
	st.batch = append(st.batch, pub)
	if len(st.batch) >= st.limit {
		st.flush()
	}
}

// flush delivers the buffered instruction events as one batch and
// resets the buffer for reuse.
func (st *retireStream) flush() {
	if len(st.batch) == 0 {
		return
	}
	b := RetireBatch{Seq: st.seq, Events: st.batch}
	st.deliver(b)
	st.batch = st.batch[:0]
}

// sync flushes pending instruction events, then delivers ev as a
// marker batch, preserving retire order.
func (st *retireStream) sync(ev SyncEvent) {
	st.flush()
	st.deliver(RetireBatch{Seq: st.seq, Sync: &ev})
}

// deliver hands one batch to every active subscriber and advances the
// sequence. It iterates a snapshot of the subscriber list: a sink may
// subscribe or unsubscribe during the callback (both swap in fresh
// slices), and the active flag keeps a just-removed subscriber from
// hearing the rest of this batch's fan-out.
func (st *retireStream) deliver(b RetireBatch) {
	subs := st.subs
	for _, s := range subs {
		if s.active {
			s.sink(b)
		}
	}
	st.seq++
}

// retireClass maps the internal execution-resource class to the public
// one explicitly, so a reordered internal enum cannot silently
// mislabel public events.
func retireClass(c host.Class) RetireClass {
	switch c {
	case host.ClassSimple:
		return RetireSimple
	case host.ClassComplex:
		return RetireComplex
	case host.ClassMemory:
		return RetireMemory
	case host.ClassBranch:
		return RetireBranch
	case host.ClassVector:
		return RetireVector
	}
	return RetireSimple
}
