package darco_test

import (
	"context"
	"strings"
	"testing"

	darco "darco"
	"darco/internal/power"
	"darco/internal/timing"
	"darco/internal/tol"
	"darco/internal/workload"
)

func TestRunFunctional(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	im2, bbm, sbm := res.ModeShares()
	if s := im2 + bbm + sbm; s < 0.999 || s > 1.001 {
		t.Errorf("mode shares sum %f", s)
	}
	if res.HostAppInsns == 0 || res.Overhead.Total() == 0 {
		t.Errorf("instruction accounting empty")
	}
	if res.EmulationCostSBM() <= 1 {
		t.Errorf("emulation cost %f", res.EmulationCostSBM())
	}
	if f := res.TOLOverheadFrac(); f <= 0 || f >= 1 {
		t.Errorf("overhead fraction %f", f)
	}
	if len(res.Output) != 4 {
		t.Errorf("output %d bytes", len(res.Output))
	}
	if res.Timing != nil || res.Power != nil {
		t.Errorf("simulators attached without being requested")
	}
	sum := res.Summary()
	for _, want := range []string{"guest insns", "emulation", "translations", "speed"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestRunWithTimingAndPower(t *testing.T) {
	p, _ := workload.ByName("470.lbm")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine(
		darco.WithTiming(timing.DefaultConfig()),
		darco.WithPower(power.DefaultEnergies(), 1000),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing == nil || res.Power == nil || res.Core == nil {
		t.Fatal("simulators missing")
	}
	if res.Timing.Cycles == 0 || res.Timing.IPC() <= 0 {
		t.Errorf("timing: %+v", res.Timing)
	}
	if res.Timing.TOLInsns != res.Overhead.Total() {
		t.Errorf("TOL insns %d vs overhead %d", res.Timing.TOLInsns, res.Overhead.Total())
	}
	if res.Power.TotalJ <= 0 || res.Power.AvgPowerW <= 0 {
		t.Errorf("power: %+v", res.Power)
	}
	if !strings.Contains(res.Summary(), "timing") {
		t.Errorf("summary missing timing line")
	}
}

func TestRunDeterministicAcrossRuns(t *testing.T) {
	p, _ := workload.ByName("458.sjeng")
	im, err := p.Scale(0.05).Generate()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := darco.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if string(a.Output) != string(b.Output) {
		t.Errorf("outputs differ")
	}
}

func TestThresholdSweepShiftsModes(t *testing.T) {
	p, _ := workload.ByName("429.mcf")
	im, err := p.Scale(0.1).Generate()
	if err != nil {
		t.Fatal(err)
	}
	low := tol.DefaultConfig()
	low.SBThreshold = 20
	high := tol.DefaultConfig()
	high.SBThreshold = 100_000 // effectively never promote
	engLow, err := darco.NewEngine(darco.WithTOL(low))
	if err != nil {
		t.Fatal(err)
	}
	engHigh, err := darco.NewEngine(darco.WithTOL(high))
	if err != nil {
		t.Fatal(err)
	}
	rl, err := engLow.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := engHigh.Run(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	_, _, sbmLow := rl.ModeShares()
	_, _, sbmHigh := rh.ModeShares()
	if sbmLow <= sbmHigh {
		t.Errorf("lower promotion threshold should raise SBM share: %f vs %f", sbmLow, sbmHigh)
	}
	if sbmHigh != 0 {
		t.Errorf("unreachable threshold still promoted (%f)", sbmHigh)
	}
}
