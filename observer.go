package darco

import (
	"fmt"
	"time"

	"darco/internal/controller"
	"darco/internal/tol"
)

// Observer receives streaming events from a running Session: every
// translation the TOL performs, every synchronization the controller
// mediates, and periodic progress snapshots at the engine's check
// interval. Callbacks run on the session's goroutine; a session never
// runs on more than one goroutine at a time, but distinct sessions of
// the same engine may invoke a shared Observer concurrently.
type Observer interface {
	OnTranslation(TranslationEvent)
	OnSync(SyncEvent)
	OnProgress(Progress)
}

// TranslationKind classifies translation events.
type TranslationKind uint8

// Translation event kinds.
const (
	TranslationBB            TranslationKind = iota // basic block translated (IM -> BBM)
	TranslationSB                                   // superblock created (BBM -> SBM)
	TranslationAssertRebuild                        // superblock rebuilt without asserts
	TranslationSpecRebuild                          // superblock rebuilt without memory speculation
)

func (k TranslationKind) String() string {
	switch k {
	case TranslationBB:
		return "bb"
	case TranslationSB:
		return "superblock"
	case TranslationAssertRebuild:
		return "assert-rebuild"
	case TranslationSpecRebuild:
		return "spec-rebuild"
	}
	return "?"
}

// TranslationEvent describes one translation the TOL performed.
type TranslationEvent struct {
	Kind       TranslationKind
	Entry      uint32 // guest PC of the region's single entry
	GuestInsns int    // static guest instructions covered
	HostInsns  int    // emitted host instructions
	Unrolled   int    // loop unroll factor applied (0 or 1 = none)
}

// SyncKind classifies controller synchronization events.
type SyncKind uint8

// Synchronization event kinds.
const (
	SyncSyscall      SyncKind = iota // syscall executed authoritatively, state forwarded
	SyncValidation                   // full state comparison passed
	SyncPageTransfer                 // guest page copied on first co-designed touch
	SyncFinal                        // end of application, final validation passed
)

func (k SyncKind) String() string {
	switch k {
	case SyncSyscall:
		return "syscall"
	case SyncValidation:
		return "validation"
	case SyncPageTransfer:
		return "page-transfer"
	case SyncFinal:
		return "final"
	}
	return "?"
}

// SyncEvent describes one synchronization between the co-designed and
// authoritative components.
type SyncEvent struct {
	Kind       SyncKind
	GuestInsns uint64 // dynamic guest instructions retired so far
	GuestBBs   uint64 // dynamic guest basic blocks retired so far
	Addr       uint32 // page address (SyncPageTransfer only)
}

// Progress is a periodic snapshot of a running session, emitted every
// check interval of guest instructions.
type Progress struct {
	GuestInsns     uint64
	HostAppInsns   uint64
	TOLInsns       uint64
	Dispatches     uint64
	BBTranslations uint64
	SBTranslations uint64
	Validations    uint64
	PageTransfers  uint64
	SyscallSyncs   uint64
	Wall           time.Duration
}

// ObserverFuncs adapts free functions to the Observer interface; nil
// fields are skipped.
type ObserverFuncs struct {
	Translation func(TranslationEvent)
	Sync        func(SyncEvent)
	Progress    func(Progress)
}

// OnTranslation implements Observer.
func (o ObserverFuncs) OnTranslation(ev TranslationEvent) {
	if o.Translation != nil {
		o.Translation(ev)
	}
}

// OnSync implements Observer.
func (o ObserverFuncs) OnSync(ev SyncEvent) {
	if o.Sync != nil {
		o.Sync(ev)
	}
}

// OnProgress implements Observer.
func (o ObserverFuncs) OnProgress(p Progress) {
	if o.Progress != nil {
		o.Progress(p)
	}
}

// translationEvent converts a TOL-layer event to the public type. The
// kinds are mapped explicitly so a reordered or inserted internal kind
// cannot silently mislabel public events.
func translationEvent(ev tol.TranslationEvent) TranslationEvent {
	var kind TranslationKind
	switch ev.Kind {
	case tol.TransBB:
		kind = TranslationBB
	case tol.TransSB:
		kind = TranslationSB
	case tol.TransAssertRebuild:
		kind = TranslationAssertRebuild
	case tol.TransSpecRebuild:
		kind = TranslationSpecRebuild
	default:
		panic(fmt.Sprintf("darco: unmapped tol translation kind %d", ev.Kind))
	}
	return TranslationEvent{
		Kind:       kind,
		Entry:      ev.Entry,
		GuestInsns: ev.GuestInsns,
		HostInsns:  ev.HostInsns,
		Unrolled:   ev.Unrolled,
	}
}

// syncEvent converts a controller-layer event to the public type.
func syncEvent(ev controller.SyncEvent) SyncEvent {
	var kind SyncKind
	switch ev.Kind {
	case controller.SyncSyscall:
		kind = SyncSyscall
	case controller.SyncValidation:
		kind = SyncValidation
	case controller.SyncPageTransfer:
		kind = SyncPageTransfer
	case controller.SyncFinal:
		kind = SyncFinal
	default:
		panic(fmt.Sprintf("darco: unmapped controller sync kind %d", ev.Kind))
	}
	return SyncEvent{
		Kind:       kind,
		GuestInsns: ev.GuestInsns,
		GuestBBs:   ev.GuestBBs,
		Addr:       ev.Addr,
	}
}
