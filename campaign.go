package darco

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"darco/internal/workload"
)

// Scenario is one named workload × configuration point of a campaign.
type Scenario struct {
	// Name labels the scenario in the report; defaults to the profile
	// name.
	Name string
	// Profile is the synthetic workload to generate and run.
	Profile workload.Profile
	// Scale is the workload dynamic-size scale factor (0 = 1.0).
	Scale float64
	// Options refine the campaign engine's configuration for this
	// scenario only (e.g. a threshold sweep point or an attached timing
	// simulator).
	Options []Option
}

func (sc *Scenario) name() string {
	if sc.Name != "" {
		return sc.Name
	}
	return sc.Profile.Name
}

// SuiteScenarios returns the paper's full 31-benchmark roster
// (workload.Suites) as campaign scenarios at the given scale, each
// carrying the supplied per-scenario options.
func SuiteScenarios(scale float64, opts ...Option) []Scenario {
	var out []Scenario
	for _, p := range workload.Suites() {
		out = append(out, Scenario{Name: p.Name, Profile: p, Scale: scale, Options: opts})
	}
	return out
}

// CampaignOption configures a campaign execution.
type CampaignOption func(*campaignConfig)

type campaignConfig struct {
	parallelism int
	timeout     time.Duration
	failFast    bool
	onDone      []func(i int, sr *ScenarioResult)
	onSession   []func(i int, sc *Scenario, s *Session)
}

// WithParallelism bounds the campaign worker pool to n concurrent
// scenarios (default GOMAXPROCS; values < 1 mean the default).
func WithParallelism(n int) CampaignOption {
	return func(c *campaignConfig) { c.parallelism = n }
}

// WithScenarioTimeout cancels any single scenario that runs longer than
// d (0 = no per-scenario timeout).
func WithScenarioTimeout(d time.Duration) CampaignOption {
	return func(c *campaignConfig) { c.timeout = d }
}

// WithFailFast cancels the rest of the campaign — scenarios currently
// in flight and scenarios not yet started — as soon as one fails. The
// default policy runs every scenario and collects errors in the
// report.
func WithFailFast() CampaignOption {
	return func(c *campaignConfig) { c.failFast = true }
}

// WithScenarioDone streams per-scenario outcomes as workers finish:
// fn runs exactly once per scenario — including failed and
// never-started ones — with the scenario's index in the campaign's
// scenario order. Calls are serialized under a campaign-internal
// mutex, so fn need not be concurrency-safe, but they arrive in
// completion order; exporters that need scenario order (darco/export's
// streaming writers) reorder on the index. fn runs on worker
// goroutines: a slow callback stalls that worker's scenario pipeline.
// The option composes: every WithScenarioDone callback runs, in the
// order the options were given (darco-bench streams CSV and NDJSON
// from one campaign this way).
func WithScenarioDone(fn func(i int, sr *ScenarioResult)) CampaignOption {
	return func(c *campaignConfig) { c.onDone = append(c.onDone, fn) }
}

// WithScenarioSession installs fn as a per-scenario session hook: it
// runs after a scenario's Session is constructed and before the
// session executes, with the scenario's index in the campaign's
// scenario order. The hook is how long-lived consumers attach
// per-session state — most importantly Session.SubscribeRetires, which
// must be called on the session's goroutine before it runs (the serve
// daemon's live telemetry hangs off this hook). Unlike WithScenarioDone
// callbacks, hooks are NOT serialized: they run concurrently on the
// worker goroutines, so fn must be safe for concurrent calls. Scenarios
// that fail before a session exists (generation or configuration
// errors, campaign already cancelled) never invoke the hook. Like
// WithScenarioDone, the option composes: every hook runs, in the order
// the options were given.
func WithScenarioSession(fn func(i int, sc *Scenario, s *Session)) CampaignOption {
	return func(c *campaignConfig) { c.onSession = append(c.onSession, fn) }
}

// ScenarioResult is one scenario's outcome.
type ScenarioResult struct {
	Scenario Scenario
	Result   *Result // nil when Err is set
	Err      error
	Wall     time.Duration
}

// CampaignReport aggregates a campaign's outcomes, in scenario order
// regardless of completion order.
type CampaignReport struct {
	Results     []ScenarioResult
	Wall        time.Duration // wall time of the whole campaign
	Parallelism int
}

// Failed returns the scenarios that did not complete.
func (r *CampaignReport) Failed() []*ScenarioResult {
	var out []*ScenarioResult
	for i := range r.Results {
		if r.Results[i].Err != nil {
			out = append(out, &r.Results[i])
		}
	}
	return out
}

// Err joins every scenario error (nil when all scenarios completed).
func (r *CampaignReport) Err() error {
	var errs []error
	for i := range r.Results {
		if r.Results[i].Err != nil {
			errs = append(errs, r.Results[i].Err)
		}
	}
	return errors.Join(errs...)
}

// SerialWall reports the summed per-scenario wall time — what a serial
// run would roughly have cost — for comparison against Wall.
func (r *CampaignReport) SerialWall() time.Duration {
	var sum time.Duration
	for i := range r.Results {
		sum += r.Results[i].Wall
	}
	return sum
}

// Format renders the report as an aligned text table, slowest scenario
// first, with the aggregate line at the bottom.
func (r *CampaignReport) Format() string {
	idx := make([]int, len(r.Results))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return r.Results[idx[a]].Wall > r.Results[idx[b]].Wall })
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-14s %12s %14s  %s\n", "scenario", "suite", "wall", "guest insns", "status")
	for _, i := range idx {
		sr := &r.Results[i]
		status := "ok"
		var guest uint64
		if sr.Err != nil {
			status = "FAILED: " + sr.Err.Error()
		}
		if sr.Result != nil {
			guest = sr.Result.Stats.GuestInsns()
		}
		fmt.Fprintf(&b, "%-18s %-14s %12s %14d  %s\n",
			sr.Scenario.name(), sr.Scenario.Profile.Suite, sr.Wall.Round(time.Millisecond), guest, status)
	}
	fmt.Fprintf(&b, "%d scenarios on %d workers: %s wall (%s serial-equivalent), %d failed\n",
		len(r.Results), r.Parallelism, r.Wall.Round(time.Millisecond),
		r.SerialWall().Round(time.Millisecond), len(r.Failed()))
	return b.String()
}

// RunCampaign executes the scenarios across a bounded worker pool,
// deriving a per-scenario engine from this engine's configuration plus
// the scenario's options. Results keep scenario order. Per-scenario
// failures are recorded in the report (and, under WithFailFast, cancel
// the whole remaining campaign, in-flight scenarios included); the
// returned error is non-nil only when the campaign itself was cut
// short by ctx.
//
// Scenario execution is deterministic: a campaign's per-scenario Stats
// are identical whatever the parallelism, so the paper's figures can be
// regenerated on a full worker pool.
func (e *Engine) RunCampaign(ctx context.Context, scenarios []Scenario, opts ...CampaignOption) (*CampaignReport, error) {
	cc := campaignConfig{parallelism: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&cc)
	}
	if cc.parallelism < 1 {
		cc.parallelism = runtime.GOMAXPROCS(0)
	}
	if cc.parallelism > len(scenarios) && len(scenarios) > 0 {
		cc.parallelism = len(scenarios)
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	rep := &CampaignReport{Results: make([]ScenarioResult, len(scenarios)), Parallelism: cc.parallelism}
	jobs := make(chan int, len(scenarios))
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)

	start := time.Now()
	var wg sync.WaitGroup
	var doneMu sync.Mutex
	done := func(i int) {
		if len(cc.onDone) == 0 {
			return
		}
		doneMu.Lock()
		defer doneMu.Unlock()
		for _, fn := range cc.onDone {
			fn(i, &rep.Results[i])
		}
	}
	for w := 0; w < cc.parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					rep.Results[i] = ScenarioResult{Scenario: scenarios[i],
						Err: fmt.Errorf("%s: not started: %w", scenarios[i].name(), err)}
					done(i)
					continue
				}
				rep.Results[i] = e.runScenario(ctx, i, scenarios[i], &cc)
				if rep.Results[i].Err != nil && cc.failFast {
					cancel()
				}
				done(i)
			}
		}()
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	// Fail-fast cancellation is internal and reported through the
	// per-scenario errors; only the caller's own cancellation surfaces.
	if err := parent.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// runScenario generates the scenario's workload and runs it on a
// derived engine.
func (e *Engine) runScenario(ctx context.Context, i int, sc Scenario, cc *campaignConfig) (out ScenarioResult) {
	out = ScenarioResult{Scenario: sc}
	start := time.Now()
	defer func() { out.Wall = time.Since(start) }()

	// Workload generation is not context-aware, so a cancellation that
	// races the worker loop's check must be caught here — before the
	// potentially expensive Generate — for the campaign to stop
	// promptly (the serve daemon's cancel endpoint depends on it).
	if err := ctx.Err(); err != nil {
		out.Err = fmt.Errorf("%s: not started: %w", sc.name(), err)
		return out
	}
	scale := sc.Scale
	if scale == 0 {
		scale = 1
	}
	// Campaigns sweep configurations over a fixed workload roster;
	// memoizing generation by (profile, scale) means a suite rerun or a
	// threshold sweep pays workload.Generate once per distinct image.
	im, err := workload.CachedImage(sc.Profile.Scale(scale))
	if err != nil {
		out.Err = fmt.Errorf("%s: generate: %w", sc.name(), err)
		return out
	}
	eng, err := e.derive(sc.Options...)
	if err != nil {
		out.Err = fmt.Errorf("%s: %w", sc.name(), err)
		return out
	}
	if cc.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cc.timeout)
		defer cancel()
	}
	sess, err := eng.NewSession(im)
	if err != nil {
		out.Err = fmt.Errorf("%s: %w", sc.name(), err)
		return out
	}
	for _, fn := range cc.onSession {
		fn(i, &out.Scenario, sess)
	}
	res, err := sess.Run(ctx)
	if err != nil {
		out.Err = fmt.Errorf("%s: %w", sc.name(), err)
		return out
	}
	out.Result = res
	return out
}
