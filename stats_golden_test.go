package darco_test

import (
	"context"
	"testing"

	darco "darco"

	"darco/internal/tol"
	"darco/internal/workload"
)

// The hot-path overhaul (two-level guest memory, flat decode and
// interpreter-block caches, profile-entry consolidation, batched
// overhead accounting) must not change a single retired-instruction
// count: the paper's figures are derived from Stats. These goldens were
// captured from full runs on the unoptimized seed (commit e953460) and
// pin bit-identity, per-category overhead included.
var statsGoldens = []struct {
	bench    string
	scale    float64
	stats    tol.Stats
	overhead [tol.NumOverheadCats]uint64
	hostApp  uint64
}{
	{
		bench: "429.mcf", scale: 0.25,
		stats: tol.Stats{
			GuestInsnsIM: 9916, GuestInsnsBBM: 165252, GuestInsnsSBM: 1253739,
			GuestBBs: 162047, HostInsnsBBM: 669500, HostInsnsSBM: 4090569,
			Dispatches: 1640, BBTranslations: 74, SBTranslations: 85,
			AssertRebuilds: 27, SpecRebuilds: 3, SpecLoadsSched: 0,
			UnrolledLoops: 0, InterpBBs: 1146, Syscalls: 2, PageRequests: 9,
		},
		overhead: [tol.NumOverheadCats]uint64{515528, 219760, 690740, 26670, 21144, 27880, 74960},
		hostApp:  4867397,
	},
	{
		bench: "429.mcf", scale: 0.5,
		stats: tol.Stats{
			GuestInsnsIM: 9916, GuestInsnsBBM: 172857, GuestInsnsSBM: 2675029,
			GuestBBs: 324092, HostInsnsBBM: 690625, HostInsnsSBM: 9559799,
			Dispatches: 1668, BBTranslations: 74, SBTranslations: 85,
			AssertRebuilds: 27, SpecRebuilds: 3, SpecLoadsSched: 0,
			UnrolledLoops: 0, InterpBBs: 1146, Syscalls: 2, PageRequests: 9,
		},
		overhead: [tol.NumOverheadCats]uint64{515528, 219760, 690740, 27510, 22208, 28356, 75352},
		hostApp:  10367502,
	},
	{
		bench: "433.milc", scale: 0.25,
		stats: tol.Stats{
			GuestInsnsIM: 8836, GuestInsnsBBM: 124020, GuestInsnsSBM: 1155236,
			GuestBBs: 96722, HostInsnsBBM: 321042, HostInsnsSBM: 2519579,
			Dispatches: 1138, BBTranslations: 56, SBTranslations: 39,
			AssertRebuilds: 13, SpecRebuilds: 0, SpecLoadsSched: 9,
			UnrolledLoops: 0, InterpBBs: 734, Syscalls: 2, PageRequests: 10,
		},
		overhead: [tol.NumOverheadCats]uint64{459368, 220680, 335220, 16980, 17636, 19346, 67932},
		hostApp:  2898299,
	},
}

// TestStatsBitIdenticalToSeed runs the golden scenarios end to end
// (validation on, like the figure campaigns) and requires every counter
// to match the unoptimized seed exactly.
func TestStatsBitIdenticalToSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full emulation runs")
	}
	for _, g := range statsGoldens {
		g := g
		t.Run(g.bench, func(t *testing.T) {
			p, ok := workload.ByName(g.bench)
			if !ok {
				t.Fatalf("unknown workload %s", g.bench)
			}
			im, err := workload.CachedImage(p.Scale(g.scale))
			if err != nil {
				t.Fatal(err)
			}
			eng, err := darco.NewEngine()
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(context.Background(), im)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats != g.stats {
				t.Errorf("stats diverge from seed:\n got %+v\nwant %+v", res.Stats, g.stats)
			}
			if res.Overhead.Cat != g.overhead {
				t.Errorf("overhead diverges from seed:\n got %v\nwant %v", res.Overhead.Cat, g.overhead)
			}
			if res.HostAppInsns != g.hostApp {
				t.Errorf("host app insns %d, seed %d", res.HostAppInsns, g.hostApp)
			}
		})
	}
}

// TestStatsGoldenPipelinedTiming reruns the golden scenarios with the
// timing simulator attached, synchronous and pipelined: the functional
// counters must still match the unoptimized seed exactly (attaching a
// timing consumer — pipelined or not — must never perturb emulation),
// and the pipelined timing Stats must be bit-identical to the
// synchronous depth-0 reference at every CI depth.
func TestStatsGoldenPipelinedTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("full timing-mode emulation runs")
	}
	for _, g := range statsGoldens {
		g := g
		t.Run(g.bench, func(t *testing.T) {
			p, ok := workload.ByName(g.bench)
			if !ok {
				t.Fatalf("unknown workload %s", g.bench)
			}
			im, err := workload.CachedImage(p.Scale(g.scale))
			if err != nil {
				t.Fatal(err)
			}
			run := func(depth int) *darco.Result {
				eng, err := darco.NewEngine(
					darco.WithConfig(darco.TimingConfig()),
					darco.WithTimingPipeline(depth),
				)
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Run(context.Background(), im)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			ref := run(0)
			for _, res := range []*darco.Result{ref, run(1), run(8), run(64)} {
				if res.Stats != g.stats {
					t.Errorf("stats diverge from seed with timing attached:\n got %+v\nwant %+v", res.Stats, g.stats)
				}
				if res.Overhead.Cat != g.overhead {
					t.Errorf("overhead diverges from seed with timing attached")
				}
				if res.HostAppInsns != g.hostApp {
					t.Errorf("host app insns %d, seed %d", res.HostAppInsns, g.hostApp)
				}
				if res.Timing == nil {
					t.Fatal("timing stats missing")
				}
				if *res.Timing != *ref.Timing {
					t.Errorf("pipelined timing Stats diverge from synchronous reference:\n got %+v\nwant %+v",
						*res.Timing, *ref.Timing)
				}
			}
		})
	}
}

// TestRunRepeatable pins run-to-run determinism of the optimized stack:
// two fresh engines over the same image produce identical statistics.
func TestRunRepeatable(t *testing.T) {
	p, _ := workload.ByName("470.lbm")
	im, err := workload.CachedImage(p.Scale(0.2))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *darco.Result {
		eng, err := darco.NewEngine()
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(context.Background(), im)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Stats != b.Stats || a.Overhead != b.Overhead || a.HostAppInsns != b.HostAppInsns {
		t.Errorf("non-deterministic run:\n a %+v\n b %+v", a.Stats, b.Stats)
	}
}
