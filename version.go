package darco

// Version identifies this build of the DARCO toolkit. Every command
// reports it under -version, and the campaign daemons expose it in
// their /healthz payloads so a fleet coordinator (and its operator)
// can tell which build each pool member runs.
const Version = "0.6.0"
