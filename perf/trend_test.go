package perf

import (
	"strings"
	"testing"

	"darco/obs"
)

func trendHist(t *testing.T) []HistoryEntry {
	t.Helper()
	mk := func(ns, allocs float64, hits uint64) *Snapshot {
		ctrs := obs.EngineCountersSnapshot{
			DecodeHits: hits, DecodeMisses: 10,
			BlockHits: 400, BlockMisses: 6,
		}
		return &Snapshot{
			Schema: SchemaVersion,
			Scale:  0.5,
			Benches: map[string]Bench{
				"TableSpeedFunctional": {
					NsPerOp: ns, AllocsPerOp: allocs,
					Metrics:  map[string]float64{"guest-MIPS": 12},
					Counters: &ctrs,
				},
				SuiteCampaignBench: {NsPerOp: 10 * ns, AllocsPerOp: 50 * allocs},
				"Fig5EmulationCost": {
					Metrics:    map[string]float64{"cost-INT": 3.5},
					CostShared: SuiteCampaignBench,
				},
			},
		}
	}
	return []HistoryEntry{
		{N: 1, Path: "BENCH_1.json", Snap: mk(1e8, 20000, 1000)},
		{N: 2, Path: "BENCH_2.json", Snap: mk(1.05e8, 20000, 1000)},
		// Snapshot 3 drifts a deterministic counter: the trend must
		// surface a gate verdict and flag the point.
		{N: 3, Path: "BENCH_3.json", Snap: mk(1.02e8, 20000, 1400)},
	}
}

func TestWriteTrend(t *testing.T) {
	var b strings.Builder
	if err := WriteTrend(&b, trendHist(t)); err != nil {
		t.Fatal(err)
	}
	html := b.String()
	for _, want := range []string{
		"<svg",               // charts rendered
		"BENCH_1", "BENCH_3", // x labels
		"TableSpeedFunctional",         // measured series present
		"prefers-color-scheme: dark",   // dark variant
		"--series-1",                   // palette wiring
		"±15% drift band",              // wall noise band
		"shares SuiteCampaign",         // latest table marks shared rows
		"counters.decode_hits drifted", // gate verdict annotation
		"class=\"flagpt\"",             // flagged point styling
	} {
		if !strings.Contains(html, want) {
			t.Errorf("trend HTML missing %q", want)
		}
	}
	// The shared fig row must not contribute wall/alloc series: its
	// name appears in the latest-snapshot table but never as a legend
	// entry of the normalized cost charts (legend entries render as
	// ...</span>Name</span>).
	if n := strings.Count(html, "</span>Fig5EmulationCost</span>"); n != 0 {
		t.Errorf("shared-cost row plotted %d times in cost charts; must not be double-plotted", n)
	}
	if !strings.Contains(html, "<td>Fig5EmulationCost</td>") {
		t.Error("shared row missing from the latest-snapshot table")
	}
}

func TestWriteTrendEmptyHistory(t *testing.T) {
	var b strings.Builder
	if err := WriteTrend(&b, nil); err == nil {
		t.Fatal("empty history should error, not render an empty page")
	}
}

// TestWriteTrendCommittedHistory smoke-tests the dashboard over the
// real committed goldens, the same input CI renders.
func TestWriteTrendCommittedHistory(t *testing.T) {
	hist, err := LoadHistory("..")
	if err != nil || len(hist) == 0 {
		t.Skipf("no committed history: %v", err)
	}
	var b strings.Builder
	if err := WriteTrend(&b, hist); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "TableSpeedTiming") {
		t.Fatal("committed history render missing expected bench series")
	}
}
