package perf

import (
	"math"
	"sort"
)

// Median returns the sample median (0 on an empty sample). The input
// is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation from the median — the
// robust spread estimate the A/B summaries report (a single GC pause
// in one repetition should not widen the reported noise).
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// SignTest returns the two-sided exact binomial p-value for observing
// a pos/neg split of paired differences under the null hypothesis that
// either sign is equally likely. Ties are excluded by the caller.
// Zero trials return 1 (no evidence).
func SignTest(pos, neg int) float64 {
	n := pos + neg
	if n == 0 {
		return 1
	}
	k := pos
	if neg < k {
		k = neg
	}
	var p float64
	for i := 0; i <= k; i++ {
		p += binomPMF(n, i)
	}
	p *= 2
	if p > 1 {
		p = 1
	}
	return p
}

// binomPMF is C(n,k) / 2^n computed in log space so n up to a few
// thousand repetitions stays exact enough.
func binomPMF(n, k int) float64 {
	return math.Exp(lchoose(n, k) - float64(n)*math.Ln2)
}

func lchoose(n, k int) float64 {
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}
