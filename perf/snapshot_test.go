package perf

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// figRows are the Fig. 4–7 views of the one measured suite campaign.
var figRows = []string{
	"Fig4ModeDistribution", "Fig5EmulationCost",
	"Fig6TOLOverhead", "Fig7OverheadBreakdown",
}

// TestSchema1Goldens reads every committed schema-1 snapshot and checks
// the v1 normalization: the figure rows — which schema 1 stamped with a
// copy of the campaign's cost triple — come back marked CostShared, and
// the rows that really were measured do not.
func TestSchema1Goldens(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 4 {
		t.Fatalf("expected the committed BENCH_1–4 goldens, found %v", matches)
	}
	for _, path := range matches {
		snap, err := ReadSnapshot(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if snap.Schema > 1 {
			continue // schema-2 snapshots are exercised by round-trip below
		}
		t.Run(filepath.Base(path), func(t *testing.T) {
			cam, ok := snap.Benches[SuiteCampaignBench]
			if !ok {
				t.Fatal("golden missing SuiteCampaign row")
			}
			if cam.SharesCost() {
				t.Fatal("SuiteCampaign must own its measurement")
			}
			for _, name := range figRows {
				b, ok := snap.Benches[name]
				if !ok {
					t.Fatalf("golden missing %s", name)
				}
				if b.CostShared != SuiteCampaignBench {
					t.Errorf("%s: CostShared = %q, want %q (schema-1 duplicate not normalized)",
						name, b.CostShared, SuiteCampaignBench)
				}
			}
			for name, b := range snap.Benches {
				isFig := false
				for _, f := range figRows {
					isFig = isFig || f == name
				}
				if !isFig && b.SharesCost() {
					t.Errorf("%s: measured row wrongly marked as sharing %q", name, b.CostShared)
				}
			}
		})
	}
}

// TestSnapshotRoundTrip re-encodes each golden and decodes it back:
// the normalized in-memory form must be stable under a round trip.
func TestSnapshotRoundTrip(t *testing.T) {
	matches, _ := filepath.Glob(filepath.Join("..", "BENCH_*.json"))
	for _, path := range matches {
		snap, err := ReadSnapshot(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		data, err := snap.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", path, err)
		}
		again, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatalf("%s: re-decode: %v", path, err)
		}
		if !reflect.DeepEqual(snap, again) {
			t.Errorf("%s: snapshot not stable under encode/decode round trip", path)
		}
	}
}

func TestDecodeSnapshotRejectsFutureSchema(t *testing.T) {
	if _, err := DecodeSnapshot([]byte(`{"schema": 3, "benches": {}}`)); err == nil {
		t.Fatal("schema 3 accepted; reader must refuse snapshots it cannot interpret")
	}
}

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	p, err := NextBenchPath(dir)
	if err != nil || filepath.Base(p) != "BENCH_1.json" {
		t.Fatalf("empty dir: %v, %v", p, err)
	}
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = NextBenchPath(dir)
	if err != nil || filepath.Base(p) != "BENCH_11.json" {
		t.Fatalf("numbered dir: %v, %v", p, err)
	}
}

func TestLoadHistoryOrdersByNumber(t *testing.T) {
	dir := t.TempDir()
	write := func(n int, scale float64) {
		s := &Snapshot{Schema: 2, Scale: scale, Benches: map[string]Bench{"B": {NsPerOp: 1}}}
		data, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Written out of order; BENCH_10 sorts after BENCH_9 numerically,
	// not lexically.
	write(10, 0.3)
	write(2, 0.1)
	write(9, 0.2)
	hist, err := LoadHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ns []int
	for _, h := range hist {
		ns = append(ns, h.N)
	}
	if !reflect.DeepEqual(ns, []int{2, 9, 10}) {
		t.Fatalf("history order = %v, want [2 9 10]", ns)
	}
	if hist[2].Snap.Scale != 0.3 {
		t.Fatalf("BENCH_10 scale = %v, want 0.3", hist[2].Snap.Scale)
	}
}

func TestWriteAutoNumbers(t *testing.T) {
	dir := t.TempDir()
	s := &Snapshot{Schema: 2, Scale: 0.5, Benches: map[string]Bench{"B": {NsPerOp: 1}}}
	p1, err := s.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "BENCH_1.json" || filepath.Base(p2) != "BENCH_2.json" {
		t.Fatalf("wrote %s then %s", p1, p2)
	}
}
