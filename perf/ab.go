package perf

import (
	"context"
	"fmt"
	"strings"

	"darco/obs"
)

// Sample is one measured repetition of a benchmark closure.
type Sample struct {
	Ns          float64 // wall nanoseconds of the repetition
	AllocsPerOp float64 // heap allocations (0 when the runner can't see them)
	BytesPerOp  float64
	// Counters is the repetition's engine profiling-counter delta,
	// when the closure attaches obs.EngineCounters (nil otherwise).
	Counters *obs.EngineCountersSnapshot
}

// Closure runs one measured iteration of the benchmark under test.
// The harness calls it repeatedly; any per-process warmup (building
// workload images, JIT-style caches that should not be measured) must
// either happen on first call — the warmup pairs absorb it — or be
// hoisted before RunAB.
type Closure func(ctx context.Context) (Sample, error)

// Verdict is the A/B comparison's conclusion about the candidate.
type Verdict string

const (
	// VerdictFaster: the candidate is significantly faster than the
	// baseline and by at least the minimum effect size.
	VerdictFaster Verdict = "faster"
	// VerdictSlower: significantly slower by at least the minimum
	// effect size.
	VerdictSlower Verdict = "slower"
	// VerdictInconclusive: the paired differences are statistically
	// indistinguishable from noise, or the effect is below the
	// threshold that matters. Self-vs-self must land here.
	VerdictInconclusive Verdict = "inconclusive"
)

// ABOptions tune the paired harness. The zero value picks defaults
// suitable for a deliberate perf investigation; -quick in darco-perf
// shrinks them for a CI self-test.
type ABOptions struct {
	Warmup    int     // unmeasured warmup pairs before measuring (default 1)
	Reps      int     // measured interleaved pairs (default 10)
	Alpha     float64 // sign-test significance level (default 0.05)
	MinEffect float64 // minimum |median ratio - 1| to call a verdict (default 0.02)
}

func (o *ABOptions) withDefaults() ABOptions {
	out := *o
	if out.Warmup <= 0 {
		out.Warmup = 1
	}
	if out.Reps <= 0 {
		out.Reps = 10
	}
	if out.Alpha <= 0 {
		out.Alpha = 0.05
	}
	if out.MinEffect <= 0 {
		out.MinEffect = 0.02
	}
	return out
}

// Arm summarizes one side of the comparison.
type Arm struct {
	Name        string
	Ns          []float64 // per-repetition wall times, in run order
	MedianNs    float64
	MADNs       float64
	AllocsPerOp float64 // median across repetitions
	// Counters is the last repetition's counter delta (deterministic
	// fields are identical across repetitions of deterministic code).
	Counters *obs.EngineCountersSnapshot
}

// ABResult is the paired comparison's full outcome.
type ABResult struct {
	Baseline  Arm
	Candidate Arm

	// Ratio is candidate median / baseline median; Effect is Ratio-1
	// (the signed fractional slowdown of the candidate).
	Ratio  float64
	Effect float64

	// Sign-test evidence over the paired per-repetition differences.
	CandWins int // repetitions where the candidate was strictly faster
	BaseWins int
	Ties     int
	PValue   float64

	Verdict Verdict

	// CountersDiverge is set when both arms carried engine counters
	// and their deterministic fields differ. Across different code
	// versions that is expected (and worth reading); in a self-vs-self
	// run it means the workload itself went nondeterministic.
	CountersDiverge bool
}

// Decide turns the paired evidence into a verdict: significance (the
// sign-test p-value at or below alpha) AND a material effect size
// (|ratio-1| at or above MinEffect) are both required, so pure noise
// and real-but-negligible deltas land inconclusive.
func Decide(ratio, pValue float64, opt ABOptions) Verdict {
	opt = opt.withDefaults()
	if pValue <= opt.Alpha {
		if ratio <= 1-opt.MinEffect {
			return VerdictFaster
		}
		if ratio >= 1+opt.MinEffect {
			return VerdictSlower
		}
	}
	return VerdictInconclusive
}

// RunAB runs the paired interleaved A/B harness: Warmup unmeasured
// pairs, then Reps measured pairs with the within-pair order
// alternating (B,C / C,B / ...) so slow machine drift — thermal
// throttling, a neighbour VM waking up — cancels out of the paired
// differences instead of masquerading as a regression. Repetition i of
// each arm forms one paired difference; the verdict comes from a
// two-sided sign test plus a minimum-effect guard (Decide).
func RunAB(ctx context.Context, baseline, candidate Closure, opt ABOptions) (*ABResult, error) {
	opt = opt.withDefaults()
	run := func(c Closure, arm *Arm) (Sample, error) {
		s, err := c(ctx)
		if err != nil {
			return s, fmt.Errorf("perf: %s repetition %d: %w", arm.Name, len(arm.Ns), err)
		}
		return s, nil
	}
	res := &ABResult{
		Baseline:  Arm{Name: "baseline"},
		Candidate: Arm{Name: "candidate"},
	}
	var baseAllocs, candAllocs []float64
	pair := func(i int, measured bool) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		first, second := &res.Baseline, &res.Candidate
		firstC, secondC := baseline, candidate
		if i%2 == 1 {
			first, second = second, first
			firstC, secondC = secondC, firstC
		}
		s1, err := run(firstC, first)
		if err != nil {
			return err
		}
		s2, err := run(secondC, second)
		if err != nil {
			return err
		}
		if !measured {
			return nil
		}
		record := func(arm *Arm, s Sample, allocs *[]float64) {
			arm.Ns = append(arm.Ns, s.Ns)
			*allocs = append(*allocs, s.AllocsPerOp)
			if s.Counters != nil {
				arm.Counters = s.Counters
			}
		}
		if first == &res.Baseline {
			record(&res.Baseline, s1, &baseAllocs)
			record(&res.Candidate, s2, &candAllocs)
		} else {
			record(&res.Candidate, s1, &candAllocs)
			record(&res.Baseline, s2, &baseAllocs)
		}
		return nil
	}
	for i := range opt.Warmup {
		if err := pair(i, false); err != nil {
			return nil, err
		}
	}
	for i := range opt.Reps {
		if err := pair(i, true); err != nil {
			return nil, err
		}
	}

	res.Baseline.MedianNs = Median(res.Baseline.Ns)
	res.Baseline.MADNs = MAD(res.Baseline.Ns)
	res.Baseline.AllocsPerOp = Median(baseAllocs)
	res.Candidate.MedianNs = Median(res.Candidate.Ns)
	res.Candidate.MADNs = MAD(res.Candidate.Ns)
	res.Candidate.AllocsPerOp = Median(candAllocs)

	for i := range res.Baseline.Ns {
		switch d := res.Candidate.Ns[i] - res.Baseline.Ns[i]; {
		case d < 0:
			res.CandWins++
		case d > 0:
			res.BaseWins++
		default:
			res.Ties++
		}
	}
	res.PValue = SignTest(res.CandWins, res.BaseWins)
	if res.Baseline.MedianNs > 0 {
		res.Ratio = res.Candidate.MedianNs / res.Baseline.MedianNs
	} else {
		res.Ratio = 1
	}
	res.Effect = res.Ratio - 1
	res.Verdict = Decide(res.Ratio, res.PValue, opt)
	if res.Baseline.Counters != nil && res.Candidate.Counters != nil {
		res.CountersDiverge = !res.Baseline.Counters.EqualDeterministic(*res.Candidate.Counters)
	}
	return res, nil
}

// Format renders the result as the human-readable block darco-perf
// prints; the last line is the grep-stable verdict.
func (r *ABResult) Format() string {
	var b strings.Builder
	arm := func(a *Arm) {
		fmt.Fprintf(&b, "%-10s median %14.0f ns  ±%.0f MAD  n=%d", a.Name, a.MedianNs, a.MADNs, len(a.Ns))
		if a.AllocsPerOp > 0 {
			fmt.Fprintf(&b, "  %10.0f allocs/op", a.AllocsPerOp)
		}
		if a.Counters != nil {
			fmt.Fprintf(&b, "  decode-hit %.2f%%  block-hit %.2f%%",
				100*a.Counters.DecodeHitRate(), 100*a.Counters.BlockHitRate())
		}
		b.WriteByte('\n')
	}
	arm(&r.Baseline)
	arm(&r.Candidate)
	fmt.Fprintf(&b, "paired: candidate faster %d / slower %d / tied %d, sign-test p=%.4f\n",
		r.CandWins, r.BaseWins, r.Ties, r.PValue)
	if r.CountersDiverge {
		b.WriteString("note: deterministic engine counters diverge between the arms\n")
	}
	fmt.Fprintf(&b, "verdict: %s (candidate/baseline median %.3fx, effect %+.1f%%)\n",
		r.Verdict, r.Ratio, 100*r.Effect)
	return b.String()
}
