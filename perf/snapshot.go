package perf

import (
	"encoding/json"
	"fmt"
	"maps"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"sort"

	"darco/export"
	"darco/obs"
)

// SchemaVersion is the BENCH snapshot schema this package writes.
// Schema 1 (BENCH_1–4) carried ns/allocs/bytes and headline metrics
// only; schema 2 adds per-bench engine-counter snapshots and an
// explicit cost-sharing marker for the figure rows that are different
// views of one measured campaign.
const SchemaVersion = 2

// SuiteCampaignBench is the snapshot row holding the one measured
// suite-campaign cost that the Fig. 4–7 rows share.
const SuiteCampaignBench = "SuiteCampaign"

// Bench is one benchmark row of a snapshot.
type Bench struct {
	// Wall and allocation cost of the measured run. Zero (and omitted
	// from the JSON) when CostShared names the row that was actually
	// measured — schema 1 instead duplicated the shared values, which
	// made one sample look like five on a trend line.
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`

	// Metrics are the row's headline values (figure averages,
	// emulation speeds). Keys containing "MIPS" or "KIPS" are
	// wall-derived and machine-dependent; everything else derives from
	// bit-identical Stats and is gated exactly.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// CostShared names the bench whose measured ns/allocs/bytes this
	// row reuses ("" = this row was measured itself).
	CostShared string `json:"cost_shared,omitempty"`

	// Counters is the engine profiling-counter snapshot of the
	// measured run (schema 2; nil on schema-1 rows and on rows that
	// share another row's measurement).
	Counters *obs.EngineCountersSnapshot `json:"counters,omitempty"`
}

// SharesCost reports whether the row reuses another row's measured
// cost, so trend lines and gates skip its duplicate ns/allocs/bytes.
func (b *Bench) SharesCost() bool { return b.CostShared != "" }

// Snapshot is one BENCH_<n>.json: the perf trajectory point a PR
// leaves behind. Future PRs regenerate it with `darco-bench -json .`
// and gate against the committed history with `darco-perf gate`;
// absolute wall numbers are machine-dependent, the counters and
// figure metrics are not.
type Snapshot struct {
	Schema    int              `json:"schema"`
	CreatedAt string           `json:"created_at"`
	GoVersion string           `json:"go_version"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	Scale     float64          `json:"scale"`
	Benches   map[string]Bench `json:"benches"`
}

// BenchNames lists the snapshot's benchmark names sorted, for stable
// reporting.
func (s *Snapshot) BenchNames() []string {
	return slices.Sorted(maps.Keys(s.Benches))
}

// DecodeSnapshot parses a BENCH snapshot, accepting schema 1 and 2.
// Schema-1 documents are normalized in memory: rows whose cost triple
// is byte-identical to the SuiteCampaign row's (the Fig. 4–7 views of
// the one measured campaign) get CostShared set, so downstream
// consumers never double-count the shared sample. The Schema field
// keeps the value read from disk for provenance.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perf: decoding snapshot: %w", err)
	}
	switch s.Schema {
	case 1:
		s.normalizeV1()
	case 2:
	default:
		return nil, fmt.Errorf("perf: unsupported BENCH schema %d", s.Schema)
	}
	return &s, nil
}

// ReadSnapshot reads and decodes one BENCH_<n>.json file.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func (s *Snapshot) normalizeV1() {
	cam, ok := s.Benches[SuiteCampaignBench]
	if !ok {
		return
	}
	for name, b := range s.Benches {
		if name == SuiteCampaignBench || b.CostShared != "" {
			continue
		}
		if b.NsPerOp == cam.NsPerOp && b.AllocsPerOp == cam.AllocsPerOp && b.BytesPerOp == cam.BytesPerOp {
			b.CostShared = SuiteCampaignBench
			s.Benches[name] = b
		}
	}
}

// Encode marshals the snapshot the way every darco JSON artifact is
// written (two-space indent, trailing newline) so the committed files
// stay diff-friendly.
func (s *Snapshot) Encode() ([]byte, error) {
	return export.EncodeJSON(s)
}

// Write writes the snapshot as the next BENCH_<n>.json in dir and
// returns the written path.
func (s *Snapshot) Write(dir string) (string, error) {
	path, err := NextBenchPath(dir)
	if err != nil {
		return "", err
	}
	data, err := s.Encode()
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

var benchFileRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NextBenchPath returns the path of the next BENCH_<n>.json in dir
// (1 + the highest existing snapshot number).
func NextBenchPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	next := 1
	for _, e := range entries {
		m := benchFileRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		var n int
		fmt.Sscanf(m[1], "%d", &n)
		if n >= next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}

// HistoryEntry is one snapshot of the committed trajectory.
type HistoryEntry struct {
	N    int // the <n> of BENCH_<n>.json
	Path string
	Snap *Snapshot
}

// LoadHistory reads every BENCH_<n>.json in dir, ordered by n. A
// directory with no snapshots returns an empty history, not an error;
// an unreadable or unparseable snapshot does.
func LoadHistory(dir string) ([]HistoryEntry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var hist []HistoryEntry
	for _, e := range entries {
		m := benchFileRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		var n int
		fmt.Sscanf(m[1], "%d", &n)
		path := filepath.Join(dir, e.Name())
		snap, err := ReadSnapshot(path)
		if err != nil {
			return nil, err
		}
		hist = append(hist, HistoryEntry{N: n, Path: path, Snap: snap})
	}
	sort.Slice(hist, func(i, j int) bool { return hist[i].N < hist[j].N })
	return hist, nil
}
