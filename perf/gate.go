package perf

import (
	"fmt"
	"maps"
	"math"
	"slices"
	"strings"

	"darco/obs"
)

// GatePolicy tunes the regression gate. The zero value picks the
// defaults darco-perf and CI use.
type GatePolicy struct {
	// WallRatio is the advisory candidate/baseline wall-time ratio
	// above which the gate warns (default 1.5). Wall time is never a
	// hard failure unless StrictWall is set: across machines raw ns/op
	// is drift, not evidence — that is the paired A/B harness's job.
	WallRatio float64
	// AllocTol is the fractional allocs/op increase tolerated before a
	// hard failure (default 0.01). Allocation counts are near-exact
	// but MemStats deltas can see a handful of background-goroutine
	// allocations.
	AllocTol float64
	// StrictWall promotes wall-ratio breaches to hard failures (for
	// same-machine gating, where wall actually is comparable).
	StrictWall bool
}

func (p GatePolicy) withDefaults() GatePolicy {
	if p.WallRatio <= 1 {
		p.WallRatio = 1.5
	}
	if p.AllocTol <= 0 {
		p.AllocTol = 0.01
	}
	return p
}

// CheckClass says how a signal is compared.
type CheckClass string

const (
	// ClassExact signals are machine-independent and must match
	// exactly: engine counters and Stats-derived figure metrics. A
	// mismatch means the code's deterministic behavior changed — if
	// that was intended, the fix is committing a fresh BENCH snapshot,
	// not loosening the gate.
	ClassExact CheckClass = "exact"
	// ClassTolerance signals are deterministic up to measurement slop
	// (allocs/op, bytes/op); they fail only on a regression beyond the
	// policy tolerance.
	ClassTolerance CheckClass = "tolerance"
	// ClassAdvisory signals are machine- or scheduling-dependent (wall
	// time, pipeline stalls); breaches are reported, never fatal
	// unless StrictWall.
	ClassAdvisory CheckClass = "advisory"
)

// GateCheck is one signal comparison.
type GateCheck struct {
	Bench  string
	Signal string
	Class  CheckClass
	Base   float64
	Cand   float64
	OK     bool
	Note   string
}

// GateResult is the gate's full report.
type GateResult struct {
	Checks     []GateCheck
	Failures   int // hard failures (exact/tolerance breaches, missing benches)
	Advisories int // advisory breaches (reported, non-fatal)
}

// Pass reports whether the candidate clears the gate.
func (r *GateResult) Pass() bool { return r.Failures == 0 }

func (r *GateResult) add(c GateCheck) {
	r.Checks = append(r.Checks, c)
	if !c.OK {
		if c.Class == ClassAdvisory {
			r.Advisories++
		} else {
			r.Failures++
		}
	}
}

// wallDerived reports whether a metric key is computed from wall time
// (emulation speeds) and therefore machine-dependent.
func wallDerived(key string) bool {
	return strings.Contains(key, "MIPS") || strings.Contains(key, "KIPS")
}

// counterSignals maps the deterministic counter fields compared
// exactly. PipelineStalls is deliberately absent: a stall count
// records the emulator blocking on timing back-pressure, which is
// scheduler weather, not code behavior — it is compared advisorily.
var counterSignals = []struct {
	name string
	get  func(*obs.EngineCountersSnapshot) float64
}{
	{"counters.decode_hits", func(c *obs.EngineCountersSnapshot) float64 { return float64(c.DecodeHits) }},
	{"counters.decode_misses", func(c *obs.EngineCountersSnapshot) float64 { return float64(c.DecodeMisses) }},
	{"counters.block_hits", func(c *obs.EngineCountersSnapshot) float64 { return float64(c.BlockHits) }},
	{"counters.block_misses", func(c *obs.EngineCountersSnapshot) float64 { return float64(c.BlockMisses) }},
	{"counters.code_flushes", func(c *obs.EngineCountersSnapshot) float64 { return float64(c.CodeFlushes) }},
	{"counters.pipeline_pushes", func(c *obs.EngineCountersSnapshot) float64 { return float64(c.PipelinePushes) }},
	{"counters.pipeline_flushes", func(c *obs.EngineCountersSnapshot) float64 { return float64(c.PipelineFlushes) }},
}

// Gate compares a candidate snapshot against a baseline signal by
// signal. Hard failures: a baseline bench missing from the candidate,
// any deterministic-counter or figure-metric drift (exact), and
// allocs/op growth beyond AllocTol. Advisory: wall-time ratio beyond
// WallRatio, pipeline-stall drift, bytes/op growth. Benches only the
// candidate has (new coverage) are ignored; rows marked CostShared
// skip the cost signals entirely so one measured campaign is gated
// once, not five times. Both snapshots should be at the same workload
// scale — the gate flags a scale mismatch as a failure up front.
func Gate(base, cand *Snapshot, pol GatePolicy) *GateResult {
	pol = pol.withDefaults()
	r := &GateResult{}
	if base.Scale != cand.Scale {
		r.add(GateCheck{Bench: "-", Signal: "scale", Class: ClassExact,
			Base: base.Scale, Cand: cand.Scale, OK: false,
			Note: "snapshots measured at different workload scales are not comparable"})
		return r
	}
	for _, name := range base.BenchNames() {
		bb := base.Benches[name]
		cb, ok := cand.Benches[name]
		if !ok {
			r.add(GateCheck{Bench: name, Signal: "present", Class: ClassExact, OK: false,
				Note: "bench missing from candidate snapshot (coverage regression)"})
			continue
		}

		// Deterministic engine counters: exact.
		if bb.Counters != nil && cb.Counters != nil {
			for _, sig := range counterSignals {
				b, c := sig.get(bb.Counters), sig.get(cb.Counters)
				chk := GateCheck{Bench: name, Signal: sig.name, Class: ClassExact, Base: b, Cand: c, OK: b == c}
				if !chk.OK {
					chk.Note = "deterministic counter drift; if intended, commit a fresh BENCH snapshot"
				}
				r.add(chk)
			}
			b, c := float64(bb.Counters.PipelineStalls), float64(cb.Counters.PipelineStalls)
			r.add(GateCheck{Bench: name, Signal: "counters.pipeline_stalls", Class: ClassAdvisory,
				Base: b, Cand: c, OK: b == c, Note: "scheduling-dependent; informational only"})
		}

		// Stats-derived figure metrics: exact (a relative epsilon
		// absorbs decimal round-tripping through JSON, nothing more).
		for _, key := range sortedKeys(bb.Metrics) {
			if wallDerived(key) {
				continue
			}
			cv, ok := cb.Metrics[key]
			if !ok {
				r.add(GateCheck{Bench: name, Signal: "metrics." + key, Class: ClassExact, Base: bb.Metrics[key],
					OK: false, Note: "metric missing from candidate"})
				continue
			}
			bv := bb.Metrics[key]
			chk := GateCheck{Bench: name, Signal: "metrics." + key, Class: ClassExact, Base: bv, Cand: cv,
				OK: relEq(bv, cv, 1e-9)}
			if !chk.OK {
				chk.Note = "Stats-derived metric drift: emulation behavior changed"
			}
			r.add(chk)
		}

		// Cost signals: skip rows that share another row's measurement.
		if bb.SharesCost() || cb.SharesCost() {
			continue
		}
		if bb.AllocsPerOp > 0 {
			growth := cb.AllocsPerOp/bb.AllocsPerOp - 1
			chk := GateCheck{Bench: name, Signal: "allocs_per_op", Class: ClassTolerance,
				Base: bb.AllocsPerOp, Cand: cb.AllocsPerOp, OK: growth <= pol.AllocTol}
			if !chk.OK {
				chk.Note = fmt.Sprintf("allocs/op grew %.2f%% (tolerance %.2f%%)", 100*growth, 100*pol.AllocTol)
			} else if growth < -pol.AllocTol {
				chk.Note = "allocs/op improved; consider refreshing the snapshot"
			}
			r.add(chk)
		}
		if bb.BytesPerOp > 0 {
			growth := cb.BytesPerOp/bb.BytesPerOp - 1
			chk := GateCheck{Bench: name, Signal: "bytes_per_op", Class: ClassAdvisory,
				Base: bb.BytesPerOp, Cand: cb.BytesPerOp, OK: growth <= pol.AllocTol}
			if !chk.OK {
				chk.Note = fmt.Sprintf("bytes/op grew %.2f%%", 100*growth)
			}
			r.add(chk)
		}
		if bb.NsPerOp > 0 {
			ratio := cb.NsPerOp / bb.NsPerOp
			class := ClassAdvisory
			if pol.StrictWall {
				class = ClassTolerance
			}
			chk := GateCheck{Bench: name, Signal: "ns_per_op", Class: class,
				Base: bb.NsPerOp, Cand: cb.NsPerOp, OK: ratio <= pol.WallRatio}
			if !chk.OK {
				chk.Note = fmt.Sprintf("wall %.2fx baseline (threshold %.2fx); cross-machine wall is advisory — confirm with darco-perf ab", ratio, pol.WallRatio)
			}
			r.add(chk)
		}
	}
	return r
}

func relEq(a, b, eps float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= eps*scale
}

func sortedKeys(m map[string]float64) []string {
	return slices.Sorted(maps.Keys(m))
}

// Format renders the gate report: failures and advisories in detail
// (or every check when verbose), then a one-line summary.
func (r *GateResult) Format(verbose bool) string {
	var b strings.Builder
	for _, c := range r.Checks {
		if c.OK && !verbose && c.Note == "" {
			continue
		}
		status := "ok  "
		if !c.OK {
			if c.Class == ClassAdvisory {
				status = "warn"
			} else {
				status = "FAIL"
			}
		}
		fmt.Fprintf(&b, "%s  %-28s %-32s %-10s base=%v cand=%v", status, c.Bench, c.Signal, c.Class, c.Base, c.Cand)
		if c.Note != "" {
			fmt.Fprintf(&b, "  (%s)", c.Note)
		}
		b.WriteByte('\n')
	}
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "gate: %s — %d checks, %d failures, %d advisories\n",
		verdict, len(r.Checks), r.Failures, r.Advisories)
	return b.String()
}
