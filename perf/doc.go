// Package perf makes performance a first-class, continuously observed
// quantity. It carries the three pillars the darco-perf command drives:
//
//   - The paired interleaved A/B harness (RunAB): baseline and
//     candidate benchmark closures run alternately on the same machine
//     — warmup pairs, N interleaved repetitions, median/MAD summaries,
//     and a sign-test verdict (faster / slower / inconclusive) with an
//     effect size. Interleaving cancels the slow machine drift that
//     makes cross-run wall-clock comparisons lie; the BENCH_3 episode
//     (a phantom "10-16% regression" that was pure VM drift between
//     snapshot machines) is exactly what this harness exists to
//     prevent.
//
//   - Deterministic regression gates (Gate): two BENCH snapshots are
//     compared signal by signal, and the machine-independent signals —
//     engine profiling counters (decode/block-cache traffic, code-cache
//     flushes, pipeline pushes/flushes) and the figure metrics derived
//     from bit-identical Stats — must match exactly. Allocations get a
//     small tolerance (MemStats deltas see background-goroutine noise);
//     wall time is held only to a generous advisory ratio, because raw
//     ns/op across machines is not evidence.
//
//   - The perf-trend dashboard (WriteTrend): every committed
//     BENCH_<n>.json rendered as a static light/dark HTML trajectory —
//     per-bench wall series normalized to first appearance with a
//     machine-drift noise band, deterministic allocation and
//     cache-hit-rate series, and gate-verdict annotations on the points
//     where a machine-independent signal moved.
//
// The package also owns the BENCH_<n>.json snapshot schema (Snapshot,
// Bench): schema 2 records per-bench engine-counter snapshots and
// marks figure rows that share one measured campaign cost, and
// ReadSnapshot transparently normalizes the committed schema-1 files.
package perf
