package perf

import (
	"math"
	"testing"
)

func TestMedianAndMAD(t *testing.T) {
	if got := Median(nil); got != 0 {
		t.Fatalf("Median(nil) = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even = %v, want 2.5", got)
	}
	// Median must not mutate its input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[2] != 5 {
		t.Fatalf("Median mutated input: %v", in)
	}
	// MAD is robust: one wild outlier barely moves it.
	if got := MAD([]float64{10, 10, 10, 10, 1000}); got != 0 {
		t.Fatalf("MAD with outlier = %v, want 0", got)
	}
	if got := MAD([]float64{1, 2, 3, 4, 5}); got != 1 {
		t.Fatalf("MAD uniform = %v, want 1", got)
	}
}

func TestSignTest(t *testing.T) {
	if p := SignTest(0, 0); p != 1 {
		t.Fatalf("SignTest(0,0) = %v, want 1", p)
	}
	// Balanced evidence: no signal.
	if p := SignTest(5, 5); p < 0.99 {
		t.Fatalf("SignTest(5,5) = %v, want ~1", p)
	}
	// A clean 10/0 sweep: p = 2 * 0.5^10.
	want := 2 * math.Pow(0.5, 10)
	if p := SignTest(10, 0); math.Abs(p-want) > 1e-12 {
		t.Fatalf("SignTest(10,0) = %v, want %v", p, want)
	}
	// Symmetry.
	if SignTest(3, 7) != SignTest(7, 3) {
		t.Fatal("sign test is not symmetric")
	}
	// 6/0 is the smallest sweep significant at 0.05 (2·0.5⁶ ≈ 0.031);
	// at 5 reps even a clean sweep cannot reach significance — the
	// -quick rep count must stay above this floor.
	if p := SignTest(6, 0); p > 0.05 {
		t.Fatalf("SignTest(6,0) = %v, want <= 0.05", p)
	}
	if p := SignTest(5, 0); p <= 0.05 {
		t.Fatalf("SignTest(5,0) = %v, want > 0.05", p)
	}
}

func TestDecideVerdicts(t *testing.T) {
	opt := ABOptions{Alpha: 0.05, MinEffect: 0.02}
	cases := []struct {
		ratio, p float64
		want     Verdict
	}{
		{0.80, 0.001, VerdictFaster},
		{1.30, 0.001, VerdictSlower},
		{1.30, 0.50, VerdictInconclusive},   // big effect, no significance
		{1.005, 0.001, VerdictInconclusive}, // significant, negligible effect
		{0.995, 0.001, VerdictInconclusive},
		{1.00, 1.00, VerdictInconclusive},
	}
	for _, c := range cases {
		if got := Decide(c.ratio, c.p, opt); got != c.want {
			t.Errorf("Decide(ratio=%v, p=%v) = %v, want %v", c.ratio, c.p, got, c.want)
		}
	}
}
