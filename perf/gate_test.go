package perf

import (
	"strings"
	"testing"

	"darco/obs"
)

func gateSnap() *Snapshot {
	ctrs := obs.EngineCountersSnapshot{
		DecodeHits: 1000, DecodeMisses: 10,
		BlockHits: 500, BlockMisses: 5,
		CodeFlushes: 2, PipelinePushes: 300, PipelineFlushes: 4,
		PipelineStalls: 7,
	}
	return &Snapshot{
		Schema: SchemaVersion,
		Scale:  0.5,
		Benches: map[string]Bench{
			"Speed": {
				NsPerOp: 1e8, AllocsPerOp: 20000, BytesPerOp: 5e6,
				Metrics:  map[string]float64{"guest-MIPS": 12.5, "SBM%": 95.2},
				Counters: &ctrs,
			},
			SuiteCampaignBench: {
				NsPerOp: 2e9, AllocsPerOp: 1e6, BytesPerOp: 8e8,
			},
			"Fig": {
				Metrics:    map[string]float64{"cost-INT": 3.4},
				CostShared: SuiteCampaignBench,
			},
		},
	}
}

func TestGateIdenticalPasses(t *testing.T) {
	r := Gate(gateSnap(), gateSnap(), GatePolicy{})
	if !r.Pass() || r.Failures != 0 || r.Advisories != 0 {
		t.Fatalf("identical snapshots: %s", r.Format(true))
	}
}

func TestGateCounterDriftFails(t *testing.T) {
	cand := gateSnap()
	b := cand.Benches["Speed"]
	c := *b.Counters
	c.BlockMisses++
	b.Counters = &c
	cand.Benches["Speed"] = b
	r := Gate(gateSnap(), cand, GatePolicy{})
	if r.Pass() {
		t.Fatalf("deterministic counter drift passed:\n%s", r.Format(true))
	}
	if !strings.Contains(r.Format(false), "counters.block_misses") {
		t.Fatalf("failure does not name the drifted counter:\n%s", r.Format(false))
	}
}

func TestGateStallDriftIsAdvisory(t *testing.T) {
	cand := gateSnap()
	b := cand.Benches["Speed"]
	c := *b.Counters
	c.PipelineStalls += 100
	b.Counters = &c
	cand.Benches["Speed"] = b
	r := Gate(gateSnap(), cand, GatePolicy{})
	if !r.Pass() {
		t.Fatalf("stall drift must not hard-fail:\n%s", r.Format(true))
	}
	if r.Advisories == 0 {
		t.Fatal("stall drift should still be reported as an advisory")
	}
}

func TestGateMetricDriftFails(t *testing.T) {
	cand := gateSnap()
	b := cand.Benches["Speed"]
	b.Metrics = map[string]float64{"guest-MIPS": 12.5, "SBM%": 95.3}
	cand.Benches["Speed"] = b
	if r := Gate(gateSnap(), cand, GatePolicy{}); r.Pass() {
		t.Fatalf("Stats-derived metric drift passed:\n%s", r.Format(true))
	}
}

func TestGateWallDerivedMetricsIgnored(t *testing.T) {
	cand := gateSnap()
	b := cand.Benches["Speed"]
	b.Metrics = map[string]float64{"guest-MIPS": 9.1, "SBM%": 95.2}
	cand.Benches["Speed"] = b
	if r := Gate(gateSnap(), cand, GatePolicy{}); !r.Pass() {
		t.Fatalf("MIPS drift is machine weather, must not fail:\n%s", r.Format(true))
	}
}

func TestGateAllocTolerance(t *testing.T) {
	grow := func(frac float64) *GateResult {
		cand := gateSnap()
		b := cand.Benches["Speed"]
		b.AllocsPerOp *= 1 + frac
		cand.Benches["Speed"] = b
		return Gate(gateSnap(), cand, GatePolicy{})
	}
	if r := grow(0.005); !r.Pass() {
		t.Fatalf("0.5%% alloc growth within the 1%% tolerance failed:\n%s", r.Format(true))
	}
	if r := grow(0.02); r.Pass() {
		t.Fatalf("2%% alloc growth passed the 1%% tolerance:\n%s", r.Format(true))
	}
	if r := grow(-0.10); !r.Pass() {
		t.Fatalf("alloc improvement must never fail:\n%s", r.Format(true))
	}
}

func TestGateWallAdvisoryAndStrict(t *testing.T) {
	cand := gateSnap()
	b := cand.Benches["Speed"]
	b.NsPerOp *= 2
	cand.Benches["Speed"] = b
	r := Gate(gateSnap(), cand, GatePolicy{})
	if !r.Pass() {
		t.Fatalf("2x wall must be advisory by default:\n%s", r.Format(true))
	}
	if r.Advisories == 0 {
		t.Fatal("2x wall should be reported")
	}
	if r := Gate(gateSnap(), cand, GatePolicy{StrictWall: true}); r.Pass() {
		t.Fatalf("StrictWall: 2x wall must hard-fail:\n%s", r.Format(true))
	}
}

func TestGateSharedCostRowsSkipCostSignals(t *testing.T) {
	// The fig row shares the campaign's measurement; even wildly
	// different (stale) cost values on the candidate row must not
	// produce cost checks — only the campaign row is gated on cost.
	cand := gateSnap()
	b := cand.Benches["Fig"]
	b.NsPerOp, b.AllocsPerOp = 9e12, 9e12
	cand.Benches["Fig"] = b
	r := Gate(gateSnap(), cand, GatePolicy{})
	if !r.Pass() {
		t.Fatalf("shared-cost row was gated on cost:\n%s", r.Format(true))
	}
	for _, c := range r.Checks {
		if c.Bench == "Fig" && (c.Signal == "ns_per_op" || c.Signal == "allocs_per_op") {
			t.Fatalf("cost check emitted for shared row: %+v", c)
		}
	}
}

func TestGateScaleMismatchFails(t *testing.T) {
	cand := gateSnap()
	cand.Scale = 0.25
	r := Gate(gateSnap(), cand, GatePolicy{})
	if r.Pass() {
		t.Fatal("snapshots at different scales compared")
	}
	if len(r.Checks) != 1 || r.Checks[0].Signal != "scale" {
		t.Fatalf("scale mismatch should short-circuit: %+v", r.Checks)
	}
}

func TestGateMissingBenchFails(t *testing.T) {
	cand := gateSnap()
	delete(cand.Benches, "Speed")
	if r := Gate(gateSnap(), cand, GatePolicy{}); r.Pass() {
		t.Fatal("coverage regression (missing bench) passed")
	}
	// New coverage on the candidate side is fine.
	cand = gateSnap()
	cand.Benches["Brand New"] = Bench{NsPerOp: 1}
	if r := Gate(gateSnap(), cand, GatePolicy{}); !r.Pass() {
		t.Fatalf("new candidate-only bench failed the gate:\n%s", r.Format(true))
	}
}

// TestGateHeadVsCommittedBaseline is the in-repo version of the CI
// perf job: the latest two committed goldens gate cleanly against each
// other on deterministic signals... except where a real drift was
// committed. BENCH_3→BENCH_4 added a bench, which is new coverage and
// must pass in the forward direction.
func TestGateCommittedGoldens(t *testing.T) {
	b3, err := ReadSnapshot("../BENCH_3.json")
	if err != nil {
		t.Skipf("goldens unavailable: %v", err)
	}
	b4, err := ReadSnapshot("../BENCH_4.json")
	if err != nil {
		t.Skipf("goldens unavailable: %v", err)
	}
	r := Gate(b3, b4, GatePolicy{})
	// Schema-1 goldens carry no counters and their shared fig rows are
	// normalized, so only measured rows' metrics/allocs are compared.
	if !r.Pass() {
		t.Fatalf("BENCH_3 → BENCH_4 should gate clean:\n%s", r.Format(true))
	}
}
