package perf

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"strings"
)

// Trend dashboard palette: the validated reference categorical order
// with its dark-surface steps, shared with the export dashboard so the
// two documents read as one system. Series beyond seven cycle.
var (
	trendSeriesLight = []string{"#2a78d6", "#eb6834", "#1baf7a", "#eda100", "#e87ba4", "#008300", "#4a3aa7"}
	trendSeriesDark  = []string{"#3987e5", "#d95926", "#199e70", "#c98500", "#d55181", "#008300", "#9085e9"}
)

// chart geometry (pixels)
const (
	trendGutterW = 64  // left gutter for y tick labels
	trendPlotW   = 560 // plot width
	trendPlotH   = 170 // plot height
	trendTopPad  = 10
	trendAxisH   = 30 // bottom axis band for BENCH_<n> labels
)

type trendPt struct {
	X, Y    float64
	Title   string
	Flagged bool // a gate verdict fired at this point
}

type trendSeries struct {
	Name   string
	Color  int // 1-based palette slot
	Path   string
	Pts    []trendPt
	Single bool // one point only: marker-only series
}

type trendTick struct {
	X, Y  float64
	Label string
}

type trendChart struct {
	Title     string
	Subtitle  string
	W, H      int
	PlotX     float64
	PlotW     float64
	PlotRight float64
	AxisY     float64
	Series    []trendSeries
	XTicks    []trendTick
	YTicks    []trendTick
	// Noise band (normalized charts): the ±drift zone where moves are
	// machine weather, not signal.
	BandY, BandH float64
	HasBand      bool
	BandLabel    string
}

// rawSeries is a series in data space: snapshot index -> value.
type rawSeries struct {
	name  string
	pts   map[int]float64
	flags map[int]string // snapshot index -> gate-failure annotation
}

// buildLineChart maps raw series into SVG space. xLabels carries one
// label per snapshot; band, when non-nil, is the [lo,hi] data-space
// noise zone to shade.
func buildLineChart(title, subtitle string, series []rawSeries, xLabels []string,
	band *[2]float64, bandLabel string, yFmt func(float64) string) *trendChart {
	c := &trendChart{
		Title: title, Subtitle: subtitle,
		W:     trendGutterW + trendPlotW + 24,
		H:     trendTopPad + trendPlotH + trendAxisH,
		PlotX: trendGutterW, PlotW: trendPlotW,
		PlotRight: trendGutterW + trendPlotW,
		AxisY:     trendTopPad + trendPlotH,
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, v := range s.pts {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
			any = true
		}
	}
	if !any {
		return nil
	}
	if band != nil {
		lo, hi = math.Min(lo, band[0]), math.Max(hi, band[1])
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.08
	lo, hi = lo-pad, hi+pad

	n := len(xLabels)
	xAt := func(i int) float64 {
		if n <= 1 {
			return trendGutterW + trendPlotW/2
		}
		return trendGutterW + float64(i)/float64(n-1)*trendPlotW
	}
	yAt := func(v float64) float64 {
		return trendTopPad + (hi-v)/(hi-lo)*trendPlotH
	}

	for i, lbl := range xLabels {
		c.XTicks = append(c.XTicks, trendTick{X: xAt(i), Y: c.AxisY + 16, Label: lbl})
	}
	for i := 0; i <= 4; i++ {
		v := lo + (hi-lo)*float64(i)/4
		c.YTicks = append(c.YTicks, trendTick{X: trendGutterW - 8, Y: yAt(v), Label: yFmt(v)})
	}
	if band != nil {
		c.HasBand = true
		c.BandY = yAt(band[1])
		c.BandH = yAt(band[0]) - yAt(band[1])
		c.BandLabel = bandLabel
	}

	for si, s := range series {
		ts := trendSeries{Name: s.name, Color: si%len(trendSeriesLight) + 1}
		var path strings.Builder
		count := 0
		for i := range n {
			v, ok := s.pts[i]
			if !ok {
				continue
			}
			x, y := xAt(i), yAt(v)
			if count == 0 {
				fmt.Fprintf(&path, "M%.1f,%.1f", x, y)
			} else {
				fmt.Fprintf(&path, " L%.1f,%.1f", x, y)
			}
			count++
			pt := trendPt{X: x, Y: y, Title: fmt.Sprintf("%s @ %s: %s", s.name, xLabels[i], yFmt(v))}
			if note, bad := s.flags[i]; bad {
				pt.Flagged = true
				pt.Title += " — " + note
			}
			ts.Pts = append(ts.Pts, pt)
		}
		if count == 0 {
			continue
		}
		ts.Path = path.String()
		ts.Single = count == 1
		c.Series = append(c.Series, ts)
	}
	if len(c.Series) == 0 {
		return nil
	}
	return c
}

type trendStat struct {
	Value string
	Name  string
}

type trendDoc struct {
	Title       string
	SeriesLight template.CSS
	SeriesDark  template.CSS
	Stats       []trendStat
	Charts      []*trendChart
	Verdicts    []string // gate-failure annotations, newest first
	Header      []string
	Records     [][]string
	Latest      string
}

// WriteTrend renders the perf-trend dashboard over the snapshot
// history: per-bench wall-time and allocation series normalized to
// each bench's first appearance (with the ±15% machine-drift band),
// absolute cache-hit-rate series from the schema-2 engine counters,
// and gate-verdict annotations wherever a machine-independent signal
// moved between adjacent snapshots. Rows that share another row's
// measured cost (the Fig. 4–7 views of the one campaign) are plotted
// once, through the row that owns the measurement.
func WriteTrend(w io.Writer, hist []HistoryEntry) error {
	if len(hist) == 0 {
		return fmt.Errorf("perf: no BENCH snapshots to plot")
	}
	xLabels := make([]string, len(hist))
	for i, h := range hist {
		xLabels[i] = fmt.Sprintf("BENCH_%d", h.N)
	}

	// Union of bench names, first-appearance order by snapshot then name.
	var names []string
	seen := map[string]bool{}
	for _, h := range hist {
		for _, n := range h.Snap.BenchNames() {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}

	// Adjacent-snapshot gate verdicts for annotations: only hard
	// failures of deterministic signals annotate a point.
	flags := make([]map[string]string, len(hist))
	var verdicts []string
	for i := 1; i < len(hist); i++ {
		flags[i] = map[string]string{}
		gr := Gate(hist[i-1].Snap, hist[i].Snap, GatePolicy{})
		for _, chk := range gr.Checks {
			if chk.OK || chk.Class == ClassAdvisory {
				continue
			}
			note := fmt.Sprintf("%s: %s drifted (%v → %v)", chk.Bench, chk.Signal, chk.Base, chk.Cand)
			if prev := flags[i][chk.Bench]; prev == "" {
				flags[i][chk.Bench] = note
			}
			verdicts = append(verdicts, fmt.Sprintf("%s → %s: %s", xLabels[i-1], xLabels[i], note))
		}
	}

	costOwned := func(b *Bench) bool { return !b.SharesCost() }
	series := func(value func(*Bench) (float64, bool), withFlags bool) []rawSeries {
		var out []rawSeries
		for _, name := range names {
			rs := rawSeries{name: name, pts: map[int]float64{}, flags: map[int]string{}}
			for i, h := range hist {
				b, ok := h.Snap.Benches[name]
				if !ok {
					continue
				}
				if v, ok := value(&b); ok {
					rs.pts[i] = v
					if withFlags && flags[i] != nil {
						if note, bad := flags[i][name]; bad {
							rs.flags[i] = note
						}
					}
				}
			}
			if len(rs.pts) > 0 {
				out = append(out, rs)
			}
		}
		return out
	}
	normalize := func(ss []rawSeries) []rawSeries {
		for _, s := range ss {
			var base float64
			for i := range len(hist) {
				if v, ok := s.pts[i]; ok {
					base = v
					break
				}
			}
			if base == 0 {
				continue
			}
			for i, v := range s.pts {
				s.pts[i] = v / base
			}
		}
		return ss
	}

	band := [2]float64{0.85, 1.15}
	ratioFmt := func(v float64) string { return fmt.Sprintf("%.2fx", v) }
	pctFmt := func(v float64) string { return fmt.Sprintf("%.1f%%", v) }

	var charts []*trendChart
	if c := buildLineChart(
		"Wall time, relative to first appearance",
		"per-bench ns/op ÷ the bench's first snapshot; the shaded band is ±15% cross-machine drift — within it, wall moves are weather, not signal",
		normalize(series(func(b *Bench) (float64, bool) { return b.NsPerOp, costOwned(b) && b.NsPerOp > 0 }, true)),
		xLabels, &band, "±15% drift band", ratioFmt); c != nil {
		charts = append(charts, c)
	}
	if c := buildLineChart(
		"Allocations, relative to first appearance",
		"per-bench allocs/op ÷ the bench's first snapshot; deterministic — flat lines are the expectation, steps are code changes",
		normalize(series(func(b *Bench) (float64, bool) { return b.AllocsPerOp, costOwned(b) && b.AllocsPerOp > 0 }, true)),
		xLabels, nil, "", ratioFmt); c != nil {
		charts = append(charts, c)
	}
	if c := buildLineChart(
		"Decode-cache hit rate",
		"per-page predecode cache hits ÷ lookups, from the schema-2 engine counters (deterministic)",
		series(func(b *Bench) (float64, bool) {
			if b.Counters == nil || b.Counters.DecodeHits+b.Counters.DecodeMisses == 0 {
				return 0, false
			}
			return 100 * b.Counters.DecodeHitRate(), true
		}, false),
		xLabels, nil, "", pctFmt); c != nil {
		charts = append(charts, c)
	}
	if c := buildLineChart(
		"Block-cache hit rate",
		"translated-region lookups served from cache in the TOL dispatch loop (deterministic)",
		series(func(b *Bench) (float64, bool) {
			if b.Counters == nil || b.Counters.BlockHits+b.Counters.BlockMisses == 0 {
				return 0, false
			}
			return 100 * b.Counters.BlockHitRate(), true
		}, false),
		xLabels, nil, "", pctFmt); c != nil {
		charts = append(charts, c)
	}

	latest := hist[len(hist)-1]
	doc := trendDoc{
		Title:       "DARCO perf trend",
		SeriesLight: trendCSS(trendSeriesLight),
		SeriesDark:  trendCSS(trendSeriesDark),
		Charts:      charts,
		Verdicts:    verdicts,
		Latest:      xLabels[len(xLabels)-1],
	}
	doc.Stats = append(doc.Stats,
		trendStat{Value: fmt.Sprintf("%d", len(hist)), Name: "snapshots"},
		trendStat{Value: fmt.Sprintf("%d", len(names)), Name: "benches tracked"},
	)
	if b, ok := latest.Snap.Benches["TableSpeedFunctional"]; ok && b.NsPerOp > 0 {
		doc.Stats = append(doc.Stats, trendStat{Value: fmt.Sprintf("%.1fms", b.NsPerOp/1e6), Name: "functional run, latest"})
		if b.Counters != nil {
			doc.Stats = append(doc.Stats, trendStat{
				Value: fmt.Sprintf("%.2f%%", 100*b.Counters.DecodeHitRate()), Name: "decode hit rate"})
		}
	}

	doc.Header = []string{"bench", "ns/op", "allocs/op", "decode-hit%", "block-hit%", "cost"}
	for _, name := range latest.Snap.BenchNames() {
		b := latest.Snap.Benches[name]
		rec := []string{name, "", "", "", "", "measured"}
		if b.SharesCost() {
			rec[5] = "shares " + b.CostShared
		} else {
			rec[1] = fmt.Sprintf("%.0f", b.NsPerOp)
			rec[2] = fmt.Sprintf("%.0f", b.AllocsPerOp)
		}
		if b.Counters != nil {
			rec[3] = fmt.Sprintf("%.2f", 100*b.Counters.DecodeHitRate())
			rec[4] = fmt.Sprintf("%.2f", 100*b.Counters.BlockHitRate())
		}
		doc.Records = append(doc.Records, rec)
	}
	return trendTmpl.Execute(w, &doc)
}

func trendCSS(colors []string) template.CSS {
	var b strings.Builder
	for i, c := range colors {
		fmt.Fprintf(&b, "--series-%d:%s;", i+1, c)
	}
	return template.CSS(b.String())
}

var trendTmpl = template.Must(template.New("trend").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{{.Title}}</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --surface-2: #f0efec;
  --grid: #e3e2de;
  --band: rgba(42,120,214,0.08);
  --flag: #b42318;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  {{.SeriesLight}}
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --surface-2: #262625;
    --grid: #383835;
    --band: rgba(57,135,229,0.12);
    --flag: #f97066;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    {{.SeriesDark}}
  }
}
body { margin: 0; }
.viz-root {
  background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  padding: 24px 32px 48px;
  max-width: 860px;
  margin: 0 auto;
}
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
.stats { display: flex; gap: 12px; flex-wrap: wrap; margin-bottom: 28px; }
.tile { background: var(--surface-2); border-radius: 8px; padding: 12px 18px; min-width: 120px; }
.tile .v { font-size: 24px; font-weight: 600; }
.tile .n { color: var(--text-secondary); font-size: 12px; }
figure { margin: 0 0 36px; }
figcaption { margin-bottom: 2px; }
figcaption .t { font-weight: 600; }
figcaption .s { color: var(--text-secondary); font-size: 12px; }
.legend { display: flex; gap: 14px; flex-wrap: wrap; margin: 6px 0 4px; font-size: 12px; color: var(--text-secondary); }
.legend .sw { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
svg { display: block; max-width: 100%; height: auto; }
svg text { fill: var(--text-secondary); font: 11px system-ui, sans-serif; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .line { fill: none; stroke-width: 2; stroke-linejoin: round; stroke-linecap: round; }
svg .flagpt { fill: var(--flag); }
.verdicts { background: var(--surface-2); border-radius: 8px; padding: 10px 16px; margin: 0 0 28px; font-size: 13px; }
.verdicts li { margin: 2px 0; }
table { border-collapse: collapse; font-size: 12px; width: 100%; }
th, td { text-align: right; padding: 3px 8px; border-bottom: 1px solid var(--grid); white-space: nowrap; }
th:first-child, td:first-child, th:last-child, td:last-child { text-align: left; }
th { color: var(--text-secondary); font-weight: 500; }
h2 { font-size: 15px; margin: 36px 0 8px; }
</style>
</head>
<body>
<div class="viz-root">
<h1>{{.Title}}</h1>
<p class="sub">the committed BENCH trajectory &mdash; deterministic signals exact, wall time read through the drift band</p>
<div class="stats">
{{range .Stats}}  <div class="tile"><div class="v">{{.Value}}</div><div class="n">{{.Name}}</div></div>
{{end}}</div>
{{if .Verdicts}}<div class="verdicts"><strong>Gate verdicts along the trajectory</strong><ul>
{{range .Verdicts}}<li>{{.}}</li>
{{end}}</ul></div>{{end}}
{{range .Charts}}<figure>
<figcaption><span class="t">{{.Title}}</span><br><span class="s">{{.Subtitle}}</span></figcaption>
<div class="legend">{{range .Series}}<span><span class="sw" style="background:var(--series-{{.Color}})"></span>{{.Name}}</span>{{end}}</div>
<svg viewBox="0 0 {{.W}} {{.H}}" width="{{.W}}" height="{{.H}}" role="img" aria-label="{{.Title}}">
{{$c := .}}{{if .HasBand}}  <rect x="{{.PlotX}}" y="{{.BandY}}" width="{{.PlotW}}" height="{{.BandH}}" fill="var(--band)"><title>{{.BandLabel}}</title></rect>
{{end}}{{range .YTicks}}  <line class="grid" x1="{{$c.PlotX}}" y1="{{.Y}}" x2="{{$c.PlotRight}}" y2="{{.Y}}"></line>
  <text x="{{.X}}" y="{{.Y}}" text-anchor="end" dominant-baseline="middle">{{.Label}}</text>
{{end}}{{range .XTicks}}  <text x="{{.X}}" y="{{.Y}}" text-anchor="middle">{{.Label}}</text>
{{end}}{{range .Series}}{{$s := .}}{{if not .Single}}  <path class="line" d="{{.Path}}" stroke="var(--series-{{.Color}})"></path>
{{end}}{{range .Pts}}  <circle cx="{{.X}}" cy="{{.Y}}" r="{{if .Flagged}}4.5{{else}}3{{end}}"{{if .Flagged}} class="flagpt"{{else}} fill="var(--series-{{$s.Color}})"{{end}}><title>{{.Title}}</title></circle>
{{end}}{{end}}</svg>
</figure>
{{end}}
<h2>Latest snapshot ({{.Latest}})</h2>
<table>
<thead><tr>{{range .Header}}<th>{{.}}</th>{{end}}</tr></thead>
<tbody>
{{range .Records}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>
{{end}}</tbody>
</table>
</div>
</body>
</html>
`))
