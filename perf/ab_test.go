package perf

import (
	"context"
	"errors"
	"strings"
	"testing"

	"darco/obs"
)

// synthetic builds a closure that replays a fixed sequence of wall
// times (cycling), recording the order it was called in.
func synthetic(ns []float64, calls *[]string, tag string) Closure {
	i := 0
	return func(ctx context.Context) (Sample, error) {
		v := ns[i%len(ns)]
		i++
		if calls != nil {
			*calls = append(*calls, tag)
		}
		return Sample{Ns: v}, nil
	}
}

func TestRunABClearLoss(t *testing.T) {
	// Candidate consistently 50% slower: must be called out.
	res, err := RunAB(context.Background(),
		synthetic([]float64{100}, nil, "b"),
		synthetic([]float64{150}, nil, "c"),
		ABOptions{Reps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictSlower {
		t.Fatalf("verdict = %v, want slower\n%s", res.Verdict, res.Format())
	}
	if res.BaseWins != 10 || res.CandWins != 0 {
		t.Fatalf("wins = %d/%d, want 0/10", res.CandWins, res.BaseWins)
	}
	if res.Ratio != 1.5 {
		t.Fatalf("ratio = %v, want 1.5", res.Ratio)
	}
	if !strings.Contains(res.Format(), "verdict: slower") {
		t.Fatalf("Format missing grep-stable verdict line:\n%s", res.Format())
	}
}

func TestRunABClearWin(t *testing.T) {
	res, err := RunAB(context.Background(),
		synthetic([]float64{100}, nil, "b"),
		synthetic([]float64{80}, nil, "c"),
		ABOptions{Reps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictFaster {
		t.Fatalf("verdict = %v, want faster\n%s", res.Verdict, res.Format())
	}
}

func TestRunABPureNoise(t *testing.T) {
	// Arms draw from the same jitter distribution, phase-shifted so the
	// candidate wins half the repetitions and loses the other half: the
	// sign test must read that as noise.
	res, err := RunAB(context.Background(),
		synthetic([]float64{100, 104}, nil, "b"),
		synthetic([]float64{104, 100}, nil, "c"),
		ABOptions{Reps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictInconclusive {
		t.Fatalf("verdict = %v, want inconclusive\n%s", res.Verdict, res.Format())
	}
	if res.PValue < 0.99 {
		t.Fatalf("p = %v, want ~1 for balanced wins", res.PValue)
	}
}

func TestRunABSmallEffectIsInconclusive(t *testing.T) {
	// A perfectly consistent 1% slowdown is significant but below the
	// 2% default effect floor: still inconclusive.
	res, err := RunAB(context.Background(),
		synthetic([]float64{1000}, nil, "b"),
		synthetic([]float64{1010}, nil, "c"),
		ABOptions{Reps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 0.05 {
		t.Fatalf("p = %v, expected significance", res.PValue)
	}
	if res.Verdict != VerdictInconclusive {
		t.Fatalf("verdict = %v, want inconclusive (effect below floor)", res.Verdict)
	}
}

func TestRunABInterleavesAndAlternates(t *testing.T) {
	var calls []string
	_, err := RunAB(context.Background(),
		synthetic([]float64{100}, &calls, "b"),
		synthetic([]float64{100}, &calls, "c"),
		ABOptions{Warmup: 1, Reps: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Warmup pair (i=0) then measured pairs i=0..3, alternating
	// within-pair order each i.
	want := "bc" + "bc" + "cb" + "bc" + "cb"
	if got := strings.Join(calls, ""); got != want {
		t.Fatalf("call order = %q, want %q", got, want)
	}
}

func TestRunABErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := RunAB(context.Background(),
		synthetic([]float64{100}, nil, "b"),
		func(ctx context.Context) (Sample, error) { return Sample{}, boom },
		ABOptions{Reps: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunABContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAB(ctx,
		synthetic([]float64{100}, nil, "b"),
		synthetic([]float64{100}, nil, "c"),
		ABOptions{Reps: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunABCounterDivergence(t *testing.T) {
	withCtrs := func(ns float64, cs obs.EngineCountersSnapshot) Closure {
		return func(ctx context.Context) (Sample, error) {
			c := cs
			return Sample{Ns: ns, Counters: &c}, nil
		}
	}
	same := obs.EngineCountersSnapshot{DecodeHits: 10, BlockHits: 5}
	res, err := RunAB(context.Background(),
		withCtrs(100, same), withCtrs(100, same), ABOptions{Reps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.CountersDiverge {
		t.Fatal("identical counters reported as diverging")
	}
	// Stall drift alone is scheduling weather, not divergence.
	stally := same
	stally.PipelineStalls = 99
	res, err = RunAB(context.Background(),
		withCtrs(100, same), withCtrs(100, stally), ABOptions{Reps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.CountersDiverge {
		t.Fatal("stall-only drift reported as divergence")
	}
	diff := same
	diff.DecodeHits = 11
	res, err = RunAB(context.Background(),
		withCtrs(100, same), withCtrs(100, diff), ABOptions{Reps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CountersDiverge {
		t.Fatal("deterministic counter drift not reported")
	}
	if !strings.Contains(res.Format(), "counters diverge") {
		t.Fatalf("Format missing divergence note:\n%s", res.Format())
	}
}
