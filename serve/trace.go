package serve

import (
	"net/http"
	"time"

	darco "darco"
	"darco/obs"
	"darco/store"
)

// recordSpan appends one finished span to the job's trace and journals
// it, so the trace survives a daemon restart alongside the rest of the
// job's history.
func (s *Server) recordSpan(j *job, sp obs.Span) {
	j.mu.Lock()
	j.spans = append(j.spans, sp)
	j.mu.Unlock()
	s.journal(store.Record{Kind: store.KindSpan, Job: j.id,
		Span: &store.SpanRecord{Span: sp}})
}

// startSpans records the spans a job's start pins down: the queue-wait
// span (submission to worker pickup) and the identity of the run span
// every scenario will parent on.
func (s *Server) startSpans(j *job, started time.Time) {
	j.mu.Lock()
	j.runSpan = obs.NewSpanID()
	traceID := j.traceID
	root := j.rootSpan
	submitted := j.submitted
	j.mu.Unlock()
	s.recordSpan(j, obs.NewSpan(traceID, root, "queue-wait", s.opts.WorkerID, submitted, started))
}

// scenarioSpans records one finished scenario's span and its phase
// children. The scenario span covers the scenario's own wall window
// ending now; the phases partition it front-to-back: warmup (image
// generation and session construction — everything before emulation),
// emulate (the controller's run loop), and timing-drain (waiting for
// the timing pipeline on Step exit).
func (s *Server) scenarioSpans(j *job, sr *darco.ScenarioResult, end time.Time) {
	j.mu.Lock()
	traceID := j.traceID
	parent := j.runSpan
	j.mu.Unlock()
	start := end.Add(-sr.Wall)
	name := sr.Scenario.Name
	if name == "" {
		name = sr.Scenario.Profile.Name
	}
	sp := obs.NewSpan(traceID, parent, "scenario "+name, s.opts.WorkerID, start, end)
	sp.SetAttr("profile", sr.Scenario.Profile.Name)
	if sr.Err != nil {
		sp.SetAttr("error", sr.Err.Error())
	}
	s.recordSpan(j, sp)
	if sr.Result == nil {
		return
	}
	cursor := start
	phase := func(name string, d time.Duration) {
		if d <= 0 {
			return
		}
		s.recordSpan(j, obs.NewSpan(traceID, sp.SpanID, name, s.opts.WorkerID, cursor, cursor.Add(d)))
		cursor = cursor.Add(d)
	}
	phase("warmup", sr.Wall-sr.Result.Wall)
	phase("emulate", sr.Result.Phases.Emulate)
	phase("timing-drain", sr.Result.Phases.TimingDrain)
}

// finishSpans records the spans only the terminal transition can close:
// the run span (worker pickup to completion, the parent of every
// scenario span) and the job root span. A job cancelled while queued
// never ran, so it gets only the root.
func (s *Server) finishSpans(j *job) {
	j.mu.Lock()
	traceID := j.traceID
	parentSpan := j.parentSpan
	root := j.rootSpan
	run := j.runSpan
	name := j.name
	state := j.state
	submitted := j.submitted
	started := j.started
	finished := j.finished
	j.mu.Unlock()
	if !started.IsZero() {
		rs := obs.NewSpan(traceID, root, "run", s.opts.WorkerID, started, finished)
		rs.SpanID = run
		s.recordSpan(j, rs)
	}
	js := obs.NewSpan(traceID, parentSpan, "job "+j.id, s.opts.WorkerID, submitted, finished)
	js.SpanID = root
	js.SetAttr("job_id", j.id)
	js.SetAttr("state", string(state))
	if name != "" {
		js.SetAttr("name", name)
	}
	s.recordSpan(j, js)
}

// handleTrace serves a job's trace: the flat span list plus the
// resolved tree (default JSON document), or the Chrome trace-event
// format Perfetto loads directly (?format=chrome). The trace grows
// while the job runs — fetching early yields the spans closed so far.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	traceID := j.traceID
	spans := append([]obs.Span(nil), j.spans...)
	j.mu.Unlock()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteChromeTrace(w, spans); err != nil {
			s.log.Error("chrome trace write failed", "job_id", j.id, "err", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, obs.TraceDoc{
		TraceID: traceID,
		Job:     j.id,
		Spans:   spans,
		Tree:    obs.BuildTree(spans),
	})
}
