package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"darco/export"
	"darco/internal/stream"
	"darco/obs"
)

// JobState is a campaign job's lifecycle state. Jobs move
// queued → running → one of the terminal states (done, failed,
// cancelled, interrupted); there are no other transitions.
type JobState string

// Job lifecycle states.
const (
	// JobQueued: accepted and waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing the campaign.
	JobRunning JobState = "running"
	// JobDone: every scenario completed successfully.
	JobDone JobState = "done"
	// JobFailed: the campaign finished but at least one scenario
	// failed; the report (with per-scenario errors) is retained and
	// exportable.
	JobFailed JobState = "failed"
	// JobCancelled: the job was stopped by a cancel request or server
	// shutdown. A partially-run campaign's report is retained.
	JobCancelled JobState = "cancelled"
	// JobInterrupted: the job was mid-run when the daemon died; a
	// restarted daemon restored it from the durable store with the
	// scenario rows that completed before the crash preserved, and
	// never-finished scenarios marked interrupted in its exports.
	JobInterrupted JobState = "interrupted"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled || s == JobInterrupted
}

// JobStatus is the wire representation of a job's current state — what
// the status and list endpoints return and what state events carry.
type JobStatus struct {
	ID    string   `json:"id"`
	Name  string   `json:"name,omitempty"`
	State JobState `json:"state"`

	// Scenarios is the campaign's total scenario count; Completed and
	// Failed advance as workers finish them (Failed counts scenarios,
	// not jobs, and is included in Completed).
	Scenarios int `json:"scenarios"`
	Completed int `json:"completed_scenarios"`
	Failed    int `json:"failed_scenarios,omitempty"`

	// Error summarizes why the job failed or was cancelled.
	Error string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// job is the server-side job record. Mutable fields are guarded by mu;
// the identity fields are immutable after submit. A job restored from
// the durable store in a terminal state carries no spec — only its
// identity, status and result rows.
type job struct {
	id        string
	name      string
	scenarios int
	spec      *jobSpec // nil for terminal restored jobs
	raw       []byte   // the submission body as journaled

	// Trace identity, immutable after submit: the trace this job's
	// spans belong to (adopted from the X-Darco-Trace header when a
	// coordinator submitted it, otherwise freshly generated), the
	// upstream parent span, and the id of the job's own root span —
	// fixed up front so child spans can reference it before the root
	// itself is recorded at finish.
	traceID    string
	parentSpan string
	rootSpan   string

	ctx    context.Context
	cancel context.CancelFunc
	events *stream.Broadcaster

	mu        sync.Mutex
	state     JobState
	err       error
	completed int
	failed    int
	submitted time.Time
	started   time.Time
	finished  time.Time
	runSpan   string     // id of the run span, set at worker pickup
	spans     []obs.Span // the job's recorded (finished) spans

	// Terminal result: the full scenario-order row set with wall
	// metrics included (the superset every export view derives from),
	// plus the campaign-level wall fields.
	rows        []export.Row
	wallMS      float64
	parallelism int
}

// status snapshots the job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		Name:        j.name,
		State:       j.state,
		Scenarios:   j.scenarios,
		Completed:   j.completed,
		Failed:      j.failed,
		SubmittedAt: j.submitted,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// resultRows returns the stored result rows (wall metrics included)
// and campaign wall fields, or an error while the job has not produced
// them yet.
func (j *job) resultRows() (rows []export.Row, wallMS float64, parallelism int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rows == nil {
		return nil, 0, 0, fmt.Errorf("job %s is %s: no results yet", j.id, j.state)
	}
	return j.rows, j.wallMS, j.parallelism, nil
}

// markCancelled moves a not-yet-terminal job to JobCancelled with the
// given reason; returns false if it was already terminal.
func (j *job) markCancelled(reason error) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = JobCancelled
	j.err = reason
	j.finished = time.Now()
	j.mu.Unlock()
	return true
}

// registry is the concurrency-safe job index. Jobs are never evicted:
// a campaign daemon's job count is human-scale, and results must stay
// fetchable after completion.
type registry struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []*job
	next  int
}

func newRegistry() *registry {
	return &registry{jobs: make(map[string]*job)}
}

// add registers j under a fresh sequential id ("job-1", "job-2", ...).
func (rg *registry) add(j *job) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	rg.next++
	j.id = fmt.Sprintf("job-%d", rg.next)
	rg.jobs[j.id] = j
	rg.order = append(rg.order, j)
}

// restore registers a recovered job under its journaled id, keeping
// the sequential counter ahead of every restored id so new submissions
// never collide with history.
func (rg *registry) restore(j *job) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	rg.jobs[j.id] = j
	rg.order = append(rg.order, j)
	if n, err := strconv.Atoi(strings.TrimPrefix(j.id, "job-")); err == nil && n > rg.next {
		rg.next = n
	}
}

func (rg *registry) get(id string) (*job, bool) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	j, ok := rg.jobs[id]
	return j, ok
}

// list returns every job in submission order.
func (rg *registry) list() []*job {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	out := make([]*job, len(rg.order))
	copy(out, rg.order)
	return out
}
