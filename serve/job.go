package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	darco "darco"
)

// JobState is a campaign job's lifecycle state. Jobs move
// queued → running → one of the terminal states (done, failed,
// cancelled); there are no other transitions.
type JobState string

// Job lifecycle states.
const (
	// JobQueued: accepted and waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing the campaign.
	JobRunning JobState = "running"
	// JobDone: every scenario completed successfully.
	JobDone JobState = "done"
	// JobFailed: the campaign finished but at least one scenario
	// failed; the report (with per-scenario errors) is retained and
	// exportable.
	JobFailed JobState = "failed"
	// JobCancelled: the job was stopped by a cancel request or server
	// shutdown. A partially-run campaign's report is retained.
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobStatus is the wire representation of a job's current state — what
// the status and list endpoints return and what state events carry.
type JobStatus struct {
	ID    string   `json:"id"`
	Name  string   `json:"name,omitempty"`
	State JobState `json:"state"`

	// Scenarios is the campaign's total scenario count; Completed and
	// Failed advance as workers finish them (Failed counts scenarios,
	// not jobs, and is included in Completed).
	Scenarios int `json:"scenarios"`
	Completed int `json:"completed_scenarios"`
	Failed    int `json:"failed_scenarios,omitempty"`

	// Error summarizes why the job failed or was cancelled.
	Error string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// job is the server-side job record. Mutable fields are guarded by mu;
// the spec and id are immutable after submit.
type job struct {
	id   string
	spec *jobSpec

	ctx    context.Context
	cancel context.CancelFunc
	events *broadcaster

	mu        sync.Mutex
	state     JobState
	err       error
	report    *darco.CampaignReport
	completed int
	failed    int
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// status snapshots the job under its lock.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		Name:        j.spec.name,
		State:       j.state,
		Scenarios:   len(j.spec.scenarios),
		Completed:   j.completed,
		Failed:      j.failed,
		SubmittedAt: j.submitted,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// result returns the stored campaign report, or an error while the job
// has not produced one yet.
func (j *job) result() (*darco.CampaignReport, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.report == nil {
		return nil, fmt.Errorf("job %s is %s: no results yet", j.id, j.state)
	}
	return j.report, nil
}

// store is the concurrency-safe job registry. Jobs are never evicted:
// a campaign daemon's job count is human-scale, and results must stay
// fetchable after completion.
type store struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []*job
	next  int
}

func newStore() *store {
	return &store{jobs: make(map[string]*job)}
}

// add registers j under a fresh sequential id ("job-1", "job-2", ...).
func (st *store) add(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	j.id = fmt.Sprintf("job-%d", st.next)
	st.jobs[j.id] = j
	st.order = append(st.order, j)
}

func (st *store) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// list returns every job in submission order.
func (st *store) list() []*job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*job, len(st.order))
	copy(out, st.order)
	return out
}
