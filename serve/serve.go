// Package serve is the long-running campaign service: an HTTP API that
// accepts campaign submissions, runs them on a bounded job queue and
// worker pool layered over Engine.RunCampaign, and serves results in
// every darco/export format plus a live event stream per job.
//
// # API
//
//	POST   /api/v1/jobs                submit a campaign (SubmitRequest JSON) → 202 + JobStatus
//	GET    /api/v1/jobs                list jobs (JobStatus array)
//	GET    /api/v1/jobs/{id}           one job's JobStatus
//	POST   /api/v1/jobs/{id}/cancel    stop a queued or running job (also DELETE /api/v1/jobs/{id})
//	GET    /api/v1/jobs/{id}/events    live stream: SSE, or NDJSON with ?format=ndjson
//	GET    /api/v1/jobs/{id}/export.json|csv|ndjson|html
//	                                   results rendered on demand (?wall=1 adds wall-clock metrics)
//	GET    /api/v1/jobs/{id}/trace     the job's trace: span tree JSON, or ?format=chrome for Perfetto
//	GET    /api/v1/profiles            the workload roster submissions can name
//	GET    /healthz                    liveness + queue depth
//	GET    /metrics                    Prometheus text exposition (darco/obs registry)
//
// Exports are rendered from the job's stored scenario rows with
// darco/export defaults, so fetching export.json or export.csv for a
// completed job yields bytes identical to an offline export of the
// same scenarios — whether the job ran under this process or was
// restored from the durable store after a restart.
//
// # Jobs and backpressure
//
// A submission is validated, assigned an id, and placed on a bounded
// queue (JobQueued). Workers — Options.Workers campaigns at a time,
// each itself a parallel scenario pool — pop jobs in submission order
// and run them (JobRunning) to a terminal state: JobDone, JobFailed
// (some scenarios errored; the report is retained), JobCancelled, or —
// only ever assigned by a restarted daemon — JobInterrupted. When the
// queue is full, submissions are rejected with 429 so load sheds at
// the edge instead of accumulating unbounded state.
//
// # Durability
//
// With Options.Store set, every job's lifecycle is journaled as it
// happens: the accepted submission body, the start transition, each
// scenario's deterministic export row (wall metrics included), each
// telemetry window, and the terminal state. A daemon restarted over
// the same store directory replays that history: terminal jobs come
// back with byte-identical exports, jobs that were still queued are
// re-validated and re-queued, and jobs that were mid-run are marked
// JobInterrupted with the rows that completed before the crash
// preserved. Terminal jobs are compacted into immutable per-job
// snapshot files as they finish. Without a store the daemon runs
// in-memory, as before.
//
// # Live streams
//
// Every job carries an event broadcaster with a bounded replay ring.
// Streams open with a JobStatus snapshot frame, then the replayed
// prefix of everything the subscriber missed (for restored jobs, the
// journaled history), then live frames: scenario-completion rows (the
// deterministic export.Row), instruction-mix telemetry windows
// (darco/telemetry, attached per scenario through
// darco.WithScenarioSession), and state transitions; the stream ends
// with a final state frame once the job is terminal. Slow consumers
// lose intermediate frames, but the loss is explicit — an EventDropped
// marker carries the gap size — and the terminal state is always
// re-sent.
//
// # Shutdown
//
// Shutdown rejects new submissions (503), cancels the context under
// every queued and running campaign (running scenarios stop within one
// engine check interval and queued ones are marked cancelled), closes
// all event streams, and waits for the workers to drain. The store —
// owned by the caller — is closed after Shutdown returns, so every
// terminal record lands in the journal first.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	darco "darco"
	"darco/export"
	"darco/internal/stream"
	"darco/obs"
	"darco/store"
	"darco/telemetry"
)

// Options configures a Server. The zero value serves with sensible
// defaults: one campaign at a time, a 16-deep queue, campaign
// parallelism capped at GOMAXPROCS, no persistence.
type Options struct {
	// Workers is how many campaign jobs run concurrently (min 1).
	// Scenario-level parallelism multiplies under it, so the total CPU
	// footprint is roughly Workers × MaxParallelism.
	Workers int

	// QueueCapacity bounds how many accepted jobs may wait for a
	// worker (min 1); beyond it, submissions get 429. On recovery the
	// queue is widened if the journal holds more re-queued jobs than
	// this, so no accepted job is ever dropped.
	QueueCapacity int

	// MaxParallelism caps any job's scenario worker pool (0 =
	// GOMAXPROCS). Submissions asking for more (or for the default)
	// are clamped to it.
	MaxParallelism int

	// MaxScenarios rejects submissions with more scenarios than this
	// (0 = unlimited).
	MaxScenarios int

	// Store, when non-nil, is the durable campaign store: job
	// lifecycles are journaled through it and its recovered histories
	// are restored into the server at New. The caller owns the store
	// and closes it after Shutdown.
	Store *store.Store

	// ReplayBuffer bounds each job's event replay ring (0 = 1024
	// frames). Late stream subscribers receive up to this many
	// historical frames before live ones.
	ReplayBuffer int

	// WorkerID identifies this daemon instance in its /healthz payload
	// so a fleet coordinator (darco-sched) and operators can tell pool
	// members apart. Empty derives "<hostname>-<pid>".
	WorkerID string

	// Log, when non-nil, receives the server's structured log records
	// (job transitions with job_id/trace_id attrs, journal failures,
	// stream errors). The daemon wires a text handler on stderr; nil
	// runs silent, which is what tests want.
	Log *slog.Logger

	// StoreMetrics, when non-nil, are the latency histograms the
	// durable store observes (the same instance passed to store.Open);
	// the server registers them into its /metrics exposition.
	StoreMetrics *store.Metrics
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueCapacity < 1 {
		o.QueueCapacity = 16
	}
	if o.MaxParallelism < 1 {
		o.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if o.WorkerID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "darco"
		}
		o.WorkerID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	return o
}

// Server is the campaign daemon: an http.Handler plus the job queue
// and worker pool behind it. Create with New, serve it with any
// net/http server, and stop it with Shutdown.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	jobs    *registry
	start   time.Time
	log     *slog.Logger
	metrics *serverMetrics

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu      sync.Mutex
	queue   chan *job
	closing bool
}

// New builds a Server, restores any history found in Options.Store,
// and starts its workers.
func New(opts Options) *Server {
	s := &Server{
		opts:  opts.withDefaults(),
		jobs:  newRegistry(),
		start: time.Now(),
	}
	s.log = s.opts.Log
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	// Metrics exist before recovery: restored re-queued submissions are
	// re-validated through buildSpec, which hands obs-enabled jobs the
	// registry's shared engine counters.
	s.initMetrics()
	requeue := s.restoreJobs()
	capacity := s.opts.QueueCapacity
	if len(requeue) > capacity {
		capacity = len(requeue)
	}
	s.queue = make(chan *job, capacity)
	for _, j := range requeue {
		s.queue <- j
	}
	s.mux = s.routes()
	for w := 0; w < s.opts.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown stops the service: new submissions are rejected, every
// queued and running job is cancelled, and the call waits — up to
// ctx — for the workers to finish. It is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()
	// Cancel the context under every job: running campaigns return
	// within one check interval, and queued jobs drained by the
	// workers are marked cancelled without starting.
	s.stop()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// journal appends one record to the durable store, if there is one.
// Journal failures never fail the job — the daemon keeps serving from
// memory and the operator sees the log line.
func (s *Server) journal(rec store.Record) {
	if s.opts.Store == nil {
		return
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	if err := s.opts.Store.Append(rec); err != nil {
		s.log.Error("journal append failed", "kind", string(rec.Kind), "job_id", rec.Job, "err", err)
	}
}

// compact freezes a terminal job's journal records into its snapshot.
func (s *Server) compact(id string) {
	if s.opts.Store == nil {
		return
	}
	if err := s.opts.Store.CompactJob(id); err != nil {
		s.log.Error("snapshot compaction failed", "job_id", id, "err", err)
	}
}

// restoreJobs replays the durable store's histories into the registry:
// terminal jobs come back served from their journaled rows, mid-run
// jobs are marked interrupted (and journaled as such), and queued jobs
// are re-validated for re-queueing. Returns the jobs to enqueue, in
// original submission order.
func (s *Server) restoreJobs() []*job {
	if s.opts.Store == nil {
		return nil
	}
	var requeue []*job
	for _, h := range s.opts.Store.Jobs() {
		switch h.State {
		case string(JobQueued):
			if h.CancelRequested {
				// The client cancelled while the job was queued and the
				// daemon died before a worker observed it. The rows
				// mirror what the live cancelled-while-queued path
				// synthesizes.
				reason := fmt.Errorf("cancelled while queued: %w", context.Canceled)
				j := s.restoreTerminal(h, JobCancelled, reason, reason)
				s.journalSynthesizedRows(j, h)
				s.journal(store.Record{Kind: store.KindFinished, Job: j.id,
					Finished: &store.FinishedRecord{State: string(JobCancelled), Error: j.err.Error()}})
				s.compact(j.id)
				sealRestored(j, h)
				s.log.Info("job cancelled while queued before the restart", "job_id", j.id, "trace_id", j.traceID)
				continue
			}
			spec, err := s.decodeSubmit(bytes.NewReader(h.Request))
			if err != nil {
				// The request passed validation once; failing now means
				// the restarted server has stricter limits. The job
				// cannot run, and that is a terminal fact worth
				// journaling.
				jerr := fmt.Errorf("re-queue after restart: %v", err)
				j := s.restoreTerminal(h, JobFailed, jerr, jerr)
				s.journalSynthesizedRows(j, h)
				s.journal(store.Record{Kind: store.KindFinished, Job: j.id,
					Finished: &store.FinishedRecord{State: string(JobFailed), Error: j.err.Error()}})
				s.compact(j.id)
				sealRestored(j, h)
				continue
			}
			j := &job{
				id:        h.ID,
				name:      spec.name,
				scenarios: len(spec.scenarios),
				spec:      spec,
				raw:       h.Request,
				state:     JobQueued,
				submitted: h.SubmittedAt,
				// The journaled trace identity is readopted; the root
				// span id is fresh because a queued job never recorded
				// any span that could reference the old one.
				traceID:    h.TraceID,
				parentSpan: h.ParentSpan,
				rootSpan:   obs.NewSpanID(),
				events:     stream.NewBroadcaster(s.opts.ReplayBuffer),
			}
			j.ctx, j.cancel = context.WithCancel(s.baseCtx)
			s.jobs.restore(j)
			requeue = append(requeue, j)
			s.log.Info("job re-queued after restart", "job_id", j.id, "trace_id", j.traceID, "scenarios", j.scenarios)
		case string(JobRunning):
			reason := fmt.Errorf("interrupted: daemon restarted mid-run")
			j := s.restoreTerminal(h, JobInterrupted, reason, reason)
			s.journalSynthesizedRows(j, h)
			s.journal(store.Record{Kind: store.KindInterrupted, Job: j.id,
				Interrupted: &store.InterruptedRecord{Reason: reason.Error()}})
			s.compact(j.id)
			sealRestored(j, h)
			s.log.Info("job interrupted by restart", "job_id", j.id, "trace_id", j.traceID,
				"preserved_rows", len(h.Rows), "scenarios", h.Scenarios)
		default:
			var err error
			if h.Error != "" {
				err = errors.New(h.Error)
			}
			// A cleanly-finished job journaled every row, so the
			// placeholder reason is only a safety net.
			j := s.restoreTerminal(h, JobState(h.State), err,
				fmt.Errorf("not started: %s", h.State))
			sealRestored(j, h)
		}
	}
	return requeue
}

// restoreTerminal rebuilds one terminal job from its history: status,
// result rows (journaled ones, with scenarios the journal has no
// outcome for marked with rowReason), and the seeded event replay
// ring.
func (s *Server) restoreTerminal(h *store.JobHistory, state JobState, jerr, rowReason error) *job {
	rows, completed, failed := s.restoredRows(h, rowReason)
	j := &job{
		id:          h.ID,
		name:        h.Name,
		scenarios:   h.Scenarios,
		raw:         h.Request,
		state:       state,
		err:         jerr,
		completed:   completed,
		failed:      failed,
		submitted:   h.SubmittedAt,
		started:     h.StartedAt,
		finished:    h.FinishedAt,
		traceID:     h.TraceID,
		parentSpan:  h.ParentSpan,
		spans:       append([]obs.Span(nil), h.Spans...),
		rows:        rows,
		wallMS:      h.WallMS,
		parallelism: h.Parallelism,
		events:      stream.NewBroadcaster(s.opts.ReplayBuffer),
	}
	if j.finished.IsZero() {
		j.finished = time.Now()
	}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.cancel() // terminal: nothing to cancel
	s.jobs.restore(j)
	return j
}

// sealRestored seeds a restored job's replay ring from its (by now
// fully journaled) record history and closes the stream. Called after
// any recovery-synthesized records are appended, so the replayed
// stream is the same however many restarts the history has been
// through.
func sealRestored(j *job, h *store.JobHistory) {
	j.events.Seed(replayEvents(h), 0)
	j.events.Close()
}

// journalSynthesizedRows journals the rows restoreTerminal synthesized
// for scenarios the history had no outcome for — a further restart
// then restores the same bytes instead of re-synthesizing them with a
// different reason.
func (s *Server) journalSynthesizedRows(j *job, h *store.JobHistory) {
	for i := range j.rows {
		if _, ok := h.Rows[i]; !ok {
			s.journal(store.Record{Kind: store.KindRow, Job: j.id,
				Row: &store.RowRecord{Index: i, Row: j.rows[i]}})
		}
	}
}

// restoredRows assembles a restored job's full scenario-order row set
// from its journaled rows, synthesizing a reason-carrying error row
// for every scenario the journal has no outcome for (it never
// finished before the crash). Counters mirror the live path:
// completed counts journaled rows, failed the errored ones among them.
func (s *Server) restoredRows(h *store.JobHistory, reason error) (rows []export.Row, completed, failed int) {
	roster := rosterForHistory(h)
	rows = make([]export.Row, h.Scenarios)
	for i := range rows {
		if rr, ok := h.Rows[i]; ok {
			rows[i] = rr.Row
			completed++
			if rr.Row.Error != "" {
				failed++
			}
			continue
		}
		sc := darco.Scenario{Name: fmt.Sprintf("scenario-%d", i)}
		if i < len(roster) {
			sc = roster[i]
		}
		rows[i] = export.NewRow(&darco.ScenarioResult{Scenario: sc, Err: reason})
	}
	return rows, completed, failed
}

// rosterForHistory re-derives the scenario roster from the journaled
// submission, for labeling synthesized rows. Best effort: a roster
// that no longer parses yields nil and the rows fall back to indexed
// placeholders.
func rosterForHistory(h *store.JobHistory) []darco.Scenario {
	req, err := ParseSubmit(bytes.NewReader(h.Request))
	if err != nil {
		return nil
	}
	roster, err := req.Roster()
	if err != nil {
		return nil
	}
	return roster
}

// replayEvents rebuilds a restored job's event-stream history from its
// journal records, in append order, shaped exactly like the frames the
// live run published.
func replayEvents(h *store.JobHistory) []stream.Event {
	var evs []stream.Event
	for i := range h.Records {
		rec := &h.Records[i]
		switch rec.Kind {
		case store.KindRow:
			if rec.Row == nil {
				continue
			}
			evs = append(evs, stream.Event{Kind: EventScenario, Data: ScenarioEvent{
				Job:   h.ID,
				Index: rec.Row.Index,
				Row:   export.StripWallRow(rec.Row.Row),
			}})
		case store.KindTelemetry:
			if rec.Telemetry == nil {
				continue
			}
			evs = append(evs, stream.Event{Kind: EventTelemetry, Data: TelemetryEvent{
				Job:      h.ID,
				Index:    rec.Telemetry.Index,
				Scenario: rec.Telemetry.Scenario,
				Window:   rec.Telemetry.Window,
			}})
		}
	}
	return evs
}

// submit validates a request body and enqueues the job, reporting
// queue-full and shutting-down conditions distinctly.
var (
	errQueueFull = fmt.Errorf("job queue is full")
	errClosing   = fmt.Errorf("server is shutting down")
)

func (s *Server) submit(spec *jobSpec, raw []byte, traceID, parentSpan string) (*job, error) {
	j := &job{
		name:       spec.name,
		scenarios:  len(spec.scenarios),
		spec:       spec,
		raw:        raw,
		state:      JobQueued,
		submitted:  time.Now(),
		traceID:    traceID,
		parentSpan: parentSpan,
		rootSpan:   obs.NewSpanID(),
		events:     stream.NewBroadcaster(s.opts.ReplayBuffer),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, errClosing
	}
	// Capacity is checked before the job becomes visible: a rejected
	// submission leaves no trace (the client owns the retry) and ids
	// stay sequential in accepted-submission order. The check is
	// against the configured capacity, not the channel's — a channel
	// widened for a restored backlog must not raise the operator's
	// shed point for new submissions. The send cannot block — s.mu
	// serializes all senders, the channel is at least the configured
	// capacity, and the depth was just checked; workers only receive.
	if len(s.queue) >= s.opts.QueueCapacity {
		return nil, errQueueFull
	}
	// The cancellable context is derived only for accepted jobs — a
	// child of baseCtx stays registered there until cancelled, so
	// rejected submissions must not create one (a client retry-looping
	// against a full queue would leak a context per attempt).
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	s.jobs.add(j)
	// Journaled before the worker can pop it: a daemon that dies right
	// here re-queues the job instead of forgetting the accepted 202.
	s.journal(store.Record{Kind: store.KindSubmitted, Job: j.id, Time: j.submitted,
		Submitted: &store.SubmittedRecord{Name: j.name, Scenarios: j.scenarios, Request: raw,
			TraceID: j.traceID, ParentSpan: j.parentSpan}})
	s.queue <- j
	return j, nil
}

// runJob executes one campaign job to a terminal state.
func (s *Server) runJob(j *job) {
	// Release the job's context registration in baseCtx once terminal;
	// a long-running daemon would otherwise pin one child context per
	// job ever run. The cancel endpoint's extra calls are no-ops.
	defer j.cancel()
	// A job cancelled (or a server stopping) while queued never starts.
	if err := j.ctx.Err(); err != nil {
		if j.markCancelled(fmt.Errorf("cancelled while queued: %w", err)) {
			j.mu.Lock()
			j.rows = make([]export.Row, 0, len(j.spec.scenarios))
			for _, sc := range j.spec.scenarios {
				j.rows = append(j.rows, export.NewRow(&darco.ScenarioResult{Scenario: sc, Err: j.err}))
			}
			// Counters mirror the mid-run cancel path, where the
			// campaign's done hook counts never-started scenarios as
			// completed-with-error — and what a restore would count
			// from the journaled rows.
			j.completed = len(j.rows)
			j.failed = len(j.rows)
			rows := j.rows
			j.mu.Unlock()
			// Synthesized rows are journaled and published like
			// campaign-produced ones, so both a restart and a live
			// stream subscriber see the same outcome rows.
			for i := range rows {
				s.journal(store.Record{Kind: store.KindRow, Job: j.id,
					Row: &store.RowRecord{Index: i, Row: rows[i]}})
				j.events.Publish(EventScenario, ScenarioEvent{
					Job:   j.id,
					Index: i,
					Row:   export.StripWallRow(rows[i]),
				})
			}
			j.events.PublishTransient(EventState, s.finishJob(j))
		}
		j.events.Close()
		return
	}
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	started := j.started
	waited := started.Sub(j.submitted)
	j.mu.Unlock()
	s.metrics.queueWait.Observe(waited.Seconds())
	s.startSpans(j, started)
	s.log.Info("job running", "job_id", j.id, "trace_id", j.traceID,
		"scenarios", len(j.spec.scenarios), "parallelism", j.spec.parallelism)
	s.journal(store.Record{Kind: store.KindStarted, Job: j.id, Time: started})
	j.events.PublishTransient(EventState, j.status())

	copts := []darco.CampaignOption{
		darco.WithParallelism(j.spec.parallelism),
		darco.WithScenarioDone(s.scenarioDone(j)),
	}
	if j.spec.scenarioTimeout > 0 {
		copts = append(copts, darco.WithScenarioTimeout(j.spec.scenarioTimeout))
	}
	if j.spec.failFast {
		copts = append(copts, darco.WithFailFast())
	}
	var winds *windowers
	if !j.spec.telemetryOff {
		winds = newWindowers(s, j)
		copts = append(copts,
			darco.WithScenarioSession(winds.attach),
			darco.WithScenarioDone(winds.flush))
	}

	rep, err := j.spec.eng.RunCampaign(j.ctx, j.spec.scenarios, copts...)

	j.mu.Lock()
	j.rows = export.Rows(rep, export.WithWallTimes())
	j.wallMS = float64(rep.Wall.Nanoseconds()) / 1e6
	j.parallelism = rep.Parallelism
	j.finished = time.Now()
	switch {
	case err != nil:
		// Only the job context cuts a campaign short: a cancel request
		// or server shutdown.
		j.state = JobCancelled
		j.err = err
	case rep.Err() != nil:
		j.state = JobFailed
		j.err = rep.Err()
	default:
		j.state = JobDone
	}
	j.mu.Unlock()
	st := s.finishJob(j)
	s.log.Info("job finished", "job_id", j.id, "trace_id", j.traceID, "state", string(st.State),
		"completed", st.Completed, "scenarios", st.Scenarios, "failed", st.Failed)
	j.events.PublishTransient(EventState, st)
	j.events.Close()
}

// finishJob records the job's closing spans, journals its terminal
// record, compacts its history into a snapshot, and returns the final
// status.
func (s *Server) finishJob(j *job) JobStatus {
	s.finishSpans(j)
	j.mu.Lock()
	fin := &store.FinishedRecord{
		State:       string(j.state),
		WallMS:      j.wallMS,
		Parallelism: j.parallelism,
	}
	if j.err != nil {
		fin.Error = j.err.Error()
	}
	when := j.finished
	j.mu.Unlock()
	s.journal(store.Record{Kind: store.KindFinished, Job: j.id, Time: when, Finished: fin})
	s.compact(j.id)
	return j.status()
}

// scenarioDone builds the job's scenario-completion hook: progress
// counters, the journaled wall-inclusive row, and a live export.Row
// frame. RunCampaign serializes scenario-done callbacks, so the
// counter updates need only the job lock.
func (s *Server) scenarioDone(j *job) func(i int, sr *darco.ScenarioResult) {
	return func(i int, sr *darco.ScenarioResult) {
		j.mu.Lock()
		j.completed++
		if sr.Err != nil {
			j.failed++
		}
		j.mu.Unlock()
		s.metrics.scenarioWall.Observe(sr.Wall.Seconds())
		s.scenarioSpans(j, sr, time.Now())
		row := export.NewRow(sr, export.WithWallTimes())
		s.journal(store.Record{Kind: store.KindRow, Job: j.id,
			Row: &store.RowRecord{Index: i, Row: row}})
		j.events.Publish(EventScenario, ScenarioEvent{
			Job:   j.id,
			Index: i,
			Row:   export.StripWallRow(row),
		})
	}
}

// windowers owns one job's per-scenario telemetry state: a
// darco/telemetry windower per in-flight session, attached through the
// campaign's session hook and flushed from its scenario-done hook.
// Session hooks run concurrently on the campaign's worker goroutines,
// so the map is locked; each windower itself stays single-goroutine
// (its scenario's session goroutine, which is also the goroutine its
// scenario-done callback runs on).
type windowers struct {
	s  *Server
	j  *job
	mu sync.Mutex
	m  map[int]*telemetry.Windower
}

func newWindowers(s *Server, j *job) *windowers {
	return &windowers{s: s, j: j, m: make(map[int]*telemetry.Windower)}
}

// attach is the darco.WithScenarioSession hook.
func (ws *windowers) attach(i int, sc *darco.Scenario, sess *darco.Session) {
	name := sc.Name
	if name == "" {
		name = sc.Profile.Name
	}
	wd := telemetry.NewWindower(ws.j.spec.telemetryInterval, func(w telemetry.Window) {
		ws.s.journal(store.Record{Kind: store.KindTelemetry, Job: ws.j.id,
			Telemetry: &store.TelemetryRecord{Index: i, Scenario: name, Window: w}})
		ws.j.events.Publish(EventTelemetry, TelemetryEvent{
			Job:      ws.j.id,
			Index:    i,
			Scenario: name,
			Window:   w,
		})
	})
	sess.SubscribeRetires(wd.Sink)
	ws.mu.Lock()
	ws.m[i] = wd
	ws.mu.Unlock()
}

// flush is a darco.WithScenarioDone hook: it emits the scenario's
// final partial window once the session is finished. Scenarios that
// never built a session (generation failures, cancelled before start)
// have no windower.
func (ws *windowers) flush(i int, sr *darco.ScenarioResult) {
	ws.mu.Lock()
	wd := ws.m[i]
	delete(ws.m, i)
	ws.mu.Unlock()
	if wd != nil {
		wd.Flush()
	}
}
