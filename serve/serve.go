// Package serve is the long-running campaign service: an HTTP API that
// accepts campaign submissions, runs them on a bounded job queue and
// worker pool layered over Engine.RunCampaign, and serves results in
// every darco/export format plus a live event stream per job.
//
// # API
//
//	POST   /api/v1/jobs                submit a campaign (SubmitRequest JSON) → 202 + JobStatus
//	GET    /api/v1/jobs                list jobs (JobStatus array)
//	GET    /api/v1/jobs/{id}           one job's JobStatus
//	POST   /api/v1/jobs/{id}/cancel    stop a queued or running job (also DELETE /api/v1/jobs/{id})
//	GET    /api/v1/jobs/{id}/events    live stream: SSE, or NDJSON with ?format=ndjson
//	GET    /api/v1/jobs/{id}/export.json|csv|ndjson|html
//	                                   results rendered on demand (?wall=1 adds wall-clock metrics)
//	GET    /api/v1/profiles            the workload roster submissions can name
//	GET    /healthz                    liveness + queue depth
//
// Exports are rendered from the stored CampaignReport with darco/export
// defaults, so fetching export.json or export.csv for a completed job
// yields bytes identical to an offline export of the same scenarios.
//
// # Jobs and backpressure
//
// A submission is validated, assigned an id, and placed on a bounded
// queue (JobQueued). Workers — Options.Workers campaigns at a time,
// each itself a parallel scenario pool — pop jobs in submission order
// and run them (JobRunning) to a terminal state: JobDone, JobFailed
// (some scenarios errored; the report is retained) or JobCancelled.
// When the queue is full, submissions are rejected with 429 so load
// sheds at the edge instead of accumulating unbounded state.
//
// # Live streams
//
// Every job carries an event broadcaster. Streams open with a
// JobStatus snapshot frame, then interleave scenario-completion rows
// (the deterministic export.Row), instruction-mix telemetry windows
// (darco/telemetry, attached per scenario through
// darco.WithScenarioSession), and state transitions; the stream ends
// with a final state frame once the job is terminal. Slow consumers
// lose intermediate frames rather than stalling emulation.
//
// # Shutdown
//
// Shutdown rejects new submissions (503), cancels the context under
// every queued and running campaign (running scenarios stop within one
// engine check interval and queued ones are marked cancelled), closes
// all event streams, and waits for the workers to drain.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	darco "darco"
	"darco/export"
	"darco/telemetry"
)

// Options configures a Server. The zero value serves with sensible
// defaults: one campaign at a time, a 16-deep queue, campaign
// parallelism capped at GOMAXPROCS.
type Options struct {
	// Workers is how many campaign jobs run concurrently (min 1).
	// Scenario-level parallelism multiplies under it, so the total CPU
	// footprint is roughly Workers × MaxParallelism.
	Workers int

	// QueueCapacity bounds how many accepted jobs may wait for a
	// worker (min 1); beyond it, submissions get 429.
	QueueCapacity int

	// MaxParallelism caps any job's scenario worker pool (0 =
	// GOMAXPROCS). Submissions asking for more (or for the default)
	// are clamped to it.
	MaxParallelism int

	// MaxScenarios rejects submissions with more scenarios than this
	// (0 = unlimited).
	MaxScenarios int

	// Logf, when non-nil, receives server-side log lines (job
	// transitions, stream failures). The daemon wires it to log.Printf;
	// nil runs silent, which is what tests want.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.QueueCapacity < 1 {
		o.QueueCapacity = 16
	}
	if o.MaxParallelism < 1 {
		o.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Server is the campaign daemon: an http.Handler plus the job queue
// and worker pool behind it. Create with New, serve it with any
// net/http server, and stop it with Shutdown.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	jobs  *store
	start time.Time

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu      sync.Mutex
	queue   chan *job
	closing bool
}

// New builds a Server and starts its workers.
func New(opts Options) *Server {
	s := &Server{
		opts:  opts.withDefaults(),
		jobs:  newStore(),
		start: time.Now(),
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	s.queue = make(chan *job, s.opts.QueueCapacity)
	s.mux = s.routes()
	for w := 0; w < s.opts.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown stops the service: new submissions are rejected, every
// queued and running job is cancelled, and the call waits — up to
// ctx — for the workers to finish. It is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()
	// Cancel the context under every job: running campaigns return
	// within one check interval, and queued jobs drained by the
	// workers are marked cancelled without starting.
	s.stop()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// submit validates a request body and enqueues the job, reporting
// queue-full and shutting-down conditions distinctly.
var (
	errQueueFull = fmt.Errorf("job queue is full")
	errClosing   = fmt.Errorf("server is shutting down")
)

func (s *Server) submit(spec *jobSpec) (*job, error) {
	j := &job{
		spec:      spec,
		state:     JobQueued,
		submitted: time.Now(),
		events:    newBroadcaster(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, errClosing
	}
	// Capacity is checked before the job becomes visible: a rejected
	// submission leaves no trace (the client owns the retry) and ids
	// stay sequential in accepted-submission order. The send cannot
	// block — s.mu serializes all senders and the capacity was just
	// checked; workers only ever receive.
	if len(s.queue) == cap(s.queue) {
		return nil, errQueueFull
	}
	// The cancellable context is derived only for accepted jobs — a
	// child of baseCtx stays registered there until cancelled, so
	// rejected submissions must not create one (a client retry-looping
	// against a full queue would leak a context per attempt).
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	s.jobs.add(j)
	s.queue <- j
	return j, nil
}

// markCancelled moves a not-yet-terminal job to JobCancelled with the
// given reason; returns false if it was already terminal.
func (j *job) markCancelled(reason error) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = JobCancelled
	j.err = reason
	j.finished = time.Now()
	j.mu.Unlock()
	return true
}

// runJob executes one campaign job to a terminal state.
func (s *Server) runJob(j *job) {
	// Release the job's context registration in baseCtx once terminal;
	// a long-running daemon would otherwise pin one child context per
	// job ever run. The cancel endpoint's extra calls are no-ops.
	defer j.cancel()
	// A job cancelled (or a server stopping) while queued never starts.
	if err := j.ctx.Err(); err != nil {
		if j.markCancelled(fmt.Errorf("cancelled while queued: %w", err)) {
			j.events.publish(EventState, j.status())
		}
		j.events.close()
		return
	}
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.logf("serve: %s running: %d scenarios, parallelism %d", j.id, len(j.spec.scenarios), j.spec.parallelism)
	j.events.publish(EventState, j.status())

	copts := []darco.CampaignOption{
		darco.WithParallelism(j.spec.parallelism),
		darco.WithScenarioDone(s.scenarioDone(j)),
	}
	if j.spec.scenarioTimeout > 0 {
		copts = append(copts, darco.WithScenarioTimeout(j.spec.scenarioTimeout))
	}
	if j.spec.failFast {
		copts = append(copts, darco.WithFailFast())
	}
	var winds *windowers
	if !j.spec.telemetryOff {
		winds = newWindowers(j)
		copts = append(copts,
			darco.WithScenarioSession(winds.attach),
			darco.WithScenarioDone(winds.flush))
	}

	rep, err := j.spec.eng.RunCampaign(j.ctx, j.spec.scenarios, copts...)

	j.mu.Lock()
	j.report = rep
	j.finished = time.Now()
	switch {
	case err != nil:
		// Only the job context cuts a campaign short: a cancel request
		// or server shutdown.
		j.state = JobCancelled
		j.err = err
	case rep.Err() != nil:
		j.state = JobFailed
		j.err = rep.Err()
	default:
		j.state = JobDone
	}
	j.mu.Unlock()
	st := j.status()
	s.logf("serve: %s %s: %d/%d scenarios, %d failed", j.id, st.State, st.Completed, st.Scenarios, st.Failed)
	j.events.publish(EventState, st)
	j.events.close()
}

// scenarioDone builds the job's scenario-completion hook: progress
// counters and a live export.Row frame. RunCampaign serializes
// scenario-done callbacks, so the counter updates need only the job
// lock.
func (s *Server) scenarioDone(j *job) func(i int, sr *darco.ScenarioResult) {
	return func(i int, sr *darco.ScenarioResult) {
		j.mu.Lock()
		j.completed++
		if sr.Err != nil {
			j.failed++
		}
		j.mu.Unlock()
		j.events.publish(EventScenario, ScenarioEvent{
			Job:   j.id,
			Index: i,
			Row:   export.NewRow(sr),
		})
	}
}

// windowers owns one job's per-scenario telemetry state: a
// darco/telemetry windower per in-flight session, attached through the
// campaign's session hook and flushed from its scenario-done hook.
// Session hooks run concurrently on the campaign's worker goroutines,
// so the map is locked; each windower itself stays single-goroutine
// (its scenario's session goroutine, which is also the goroutine its
// scenario-done callback runs on).
type windowers struct {
	j  *job
	mu sync.Mutex
	m  map[int]*telemetry.Windower
}

func newWindowers(j *job) *windowers {
	return &windowers{j: j, m: make(map[int]*telemetry.Windower)}
}

// attach is the darco.WithScenarioSession hook.
func (ws *windowers) attach(i int, sc *darco.Scenario, sess *darco.Session) {
	name := sc.Name
	if name == "" {
		name = sc.Profile.Name
	}
	wd := telemetry.NewWindower(ws.j.spec.telemetryInterval, func(w telemetry.Window) {
		ws.j.events.publish(EventTelemetry, TelemetryEvent{
			Job:      ws.j.id,
			Index:    i,
			Scenario: name,
			Window:   w,
		})
	})
	sess.SubscribeRetires(wd.Sink)
	ws.mu.Lock()
	ws.m[i] = wd
	ws.mu.Unlock()
}

// flush is a darco.WithScenarioDone hook: it emits the scenario's
// final partial window once the session is finished. Scenarios that
// never built a session (generation failures, cancelled before start)
// have no windower.
func (ws *windowers) flush(i int, sr *darco.ScenarioResult) {
	ws.mu.Lock()
	wd := ws.m[i]
	delete(ws.m, i)
	ws.mu.Unlock()
	if wd != nil {
		wd.Flush()
	}
}
