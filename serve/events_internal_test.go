package serve

import (
	"testing"
)

// drainAvailable empties whatever is buffered on sub without blocking.
func drainAvailable(sub *subscriber) []event {
	var out []event
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

// TestDroppedMarkerOnOverflow pins the explicit-loss contract: a
// subscriber that overflows its buffer receives an EventDropped marker
// carrying the gap size as soon as it has room again, instead of a
// silent skip.
func TestDroppedMarkerOnOverflow(t *testing.T) {
	b := newBroadcaster(0)
	_, sub := b.subscribe()

	const overflow = 3
	for i := 0; i < subscriberBuffer+overflow; i++ {
		b.publish(EventTelemetry, i)
	}
	got := drainAvailable(sub)
	if len(got) != subscriberBuffer {
		t.Fatalf("buffered %d frames, want %d", len(got), subscriberBuffer)
	}
	for _, ev := range got {
		if ev.kind == EventDropped {
			t.Fatal("marker arrived before the subscriber had lost anything it could know about")
		}
	}

	// Room again: the next publish owes the marker first, then itself.
	b.publish(EventTelemetry, "after")
	got = drainAvailable(sub)
	if len(got) != 2 {
		t.Fatalf("%d frames after recovery, want marker + event", len(got))
	}
	if got[0].kind != EventDropped {
		t.Fatalf("first frame after recovery is %s, want %s", got[0].kind, EventDropped)
	}
	if d := got[0].data.(DroppedEvent); d.Count != overflow {
		t.Fatalf("marker count %d, want %d", d.Count, overflow)
	}
	if got[1].kind != EventTelemetry || got[1].data != "after" {
		t.Fatalf("second frame after recovery: %+v", got[1])
	}
}

// TestReplayRing pins the late-subscriber contract: the ring replays
// everything while it fits and announces the evicted prefix with a
// dropped marker once it no longer reaches the stream's start.
func TestReplayRing(t *testing.T) {
	const limit = 8
	b := newBroadcaster(limit)
	for i := 0; i < limit; i++ {
		b.publish(EventScenario, i)
	}
	replay, sub := b.subscribe()
	b.unsubscribe(sub)
	if len(replay) != limit {
		t.Fatalf("replay of a full-but-unevicted ring: %d frames, want %d", len(replay), limit)
	}
	for i, ev := range replay {
		if ev.data != i {
			t.Fatalf("replay[%d] = %v, out of publish order", i, ev.data)
		}
	}

	// Push two frames out of the window.
	b.publish(EventScenario, limit)
	b.publish(EventScenario, limit+1)
	replay, sub = b.subscribe()
	b.unsubscribe(sub)
	if len(replay) != limit+1 {
		t.Fatalf("evicted-ring replay: %d frames, want marker + %d", len(replay), limit)
	}
	if replay[0].kind != EventDropped || replay[0].data.(DroppedEvent).Count != 2 {
		t.Fatalf("evicted-ring replay head: %+v", replay[0])
	}
	if replay[1].data != 2 || replay[len(replay)-1].data != limit+1 {
		t.Fatalf("evicted-ring replay window: first %v last %v", replay[1].data, replay[len(replay)-1].data)
	}

	// Replay survives close (terminal jobs): channel closed, history
	// intact.
	b.close()
	replay, sub = b.subscribe()
	if len(replay) != limit+1 {
		t.Fatalf("post-close replay: %d frames", len(replay))
	}
	if _, ok := <-sub.ch; ok {
		t.Fatal("post-close subscription channel not closed")
	}
}

// TestSeededReplay pins the restored-job path: seeded history replays
// like published history, with the caller's evicted count surfacing as
// a marker.
func TestSeededReplay(t *testing.T) {
	b := newBroadcaster(4)
	b.seed([]event{{kind: EventScenario, data: "a"}, {kind: EventScenario, data: "b"}}, 5)
	b.close()
	replay, _ := b.subscribe()
	if len(replay) != 3 || replay[0].kind != EventDropped || replay[0].data.(DroppedEvent).Count != 5 {
		t.Fatalf("seeded replay: %+v", replay)
	}
	if replay[1].data != "a" || replay[2].data != "b" {
		t.Fatalf("seeded replay order: %+v", replay)
	}
}
