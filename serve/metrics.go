package serve

import (
	"runtime"
	"time"

	darco "darco"
	"darco/obs"
)

// metricsStates fixes the darco_jobs exposition order so scrapes diff
// cleanly and smoke tests can assert exact lines.
var metricsStates = []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled, JobInterrupted}

// serverMetrics is the daemon's metrics surface: one obs.Registry
// behind GET /metrics. Families fall in two groups — live instruments
// the request paths feed directly (the histograms, the engine hot-path
// counters), and state families recomputed from the job registry on
// every scrape so they are correct however the jobs got there (live
// runs and restored history alike, exactly like the handler they
// replace).
type serverMetrics struct {
	reg *obs.Registry

	jobsByState        *obs.GaugeVec
	jobsTotal          *obs.Counter
	scenariosTotal     *obs.Counter
	scenariosCompleted *obs.Counter
	scenariosFailed    *obs.Counter
	subscribers        *obs.Gauge
	queueDepth         *obs.Gauge
	queueCapacity      *obs.Gauge
	workers            *obs.Gauge
	uptime             *obs.Gauge
	goroutines         *obs.Gauge

	queueWait    *obs.Histogram
	scenarioWall *obs.Histogram

	// engCtrs is the daemon's shared engine profiling instance: jobs
	// whose submission sets engine.obs attach it, and the scrape hook
	// mirrors its counters into the darco_engine_* families.
	engCtrs     *obs.EngineCounters
	decodeHits  *obs.Counter
	decodeMiss  *obs.Counter
	blockHits   *obs.Counter
	blockMiss   *obs.Counter
	codeFlushes *obs.Counter
	pipePushes  *obs.Counter
	pipeFlushes *obs.Counter
	pipeStalls  *obs.Counter
}

// initMetrics builds the server's registry. Called from New before any
// submission can be validated — buildSpec hands engCtrs to opted-in
// jobs — and before restoreJobs, so restored re-queued jobs see it too.
func (s *Server) initMetrics() {
	r := obs.NewRegistry()
	m := &serverMetrics{reg: r}

	m.jobsByState = r.GaugeVec("darco_jobs", "Campaign jobs by lifecycle state.", "state")
	for _, st := range metricsStates {
		m.jobsByState.With(string(st))
	}
	m.jobsTotal = r.Counter("darco_jobs_total", "Jobs ever registered (restored history included).")
	m.scenariosTotal = r.Counter("darco_scenarios_total", "Scenarios enrolled across all jobs.")
	m.scenariosCompleted = r.Counter("darco_scenarios_completed_total", "Scenarios finished across all jobs.")
	m.scenariosFailed = r.Counter("darco_scenarios_failed_total", "Scenarios finished with an error.")
	m.subscribers = r.Gauge("darco_event_subscribers", "Open event-stream subscriptions.")
	m.queueDepth = r.Gauge("darco_queue_depth", "Jobs waiting for a worker.")
	m.queueCapacity = r.Gauge("darco_queue_capacity", "Job queue capacity.")
	m.workers = r.Gauge("darco_workers", "Concurrent campaign workers.")
	m.uptime = r.Gauge("darco_uptime_seconds", "Daemon uptime.")
	r.GaugeVec("darco_build_info", "Build identity; the value is always 1.", "version").
		With(darco.Version).Set(1)
	m.goroutines = r.Gauge("darco_goroutines", "Live goroutines in the daemon process.")

	m.queueWait = r.Histogram("darco_job_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.",
		obs.ExpBuckets(0.001, 4, 10))
	m.scenarioWall = r.Histogram("darco_scenario_wall_seconds",
		"Per-scenario wall time, generation through final drain.",
		obs.ExpBuckets(0.01, 4, 10))

	m.engCtrs = &obs.EngineCounters{
		BatchOccupancy: obs.NewHistogram(obs.LinearBuckets(128, 128, 8)),
		BarrierStall:   obs.NewHistogram(obs.ExpBuckets(1e-6, 10, 7)),
	}
	m.decodeHits = r.Counter("darco_engine_decode_cache_hits_total", "Decode-cache hits across obs-enabled jobs.")
	m.decodeMiss = r.Counter("darco_engine_decode_cache_misses_total", "Decode-cache misses across obs-enabled jobs.")
	m.blockHits = r.Counter("darco_engine_block_cache_hits_total", "Block-cache dispatch hits across obs-enabled jobs.")
	m.blockMiss = r.Counter("darco_engine_block_cache_misses_total", "Block-cache dispatch misses across obs-enabled jobs.")
	m.codeFlushes = r.Counter("darco_engine_code_cache_flushes_total", "Code-cache insertions that forced a full flush.")
	m.pipePushes = r.Counter("darco_engine_pipeline_pushes_total", "Retired instructions pushed through the timing pipeline.")
	m.pipeFlushes = r.Counter("darco_engine_pipeline_flushes_total", "Timing-pipeline batch hand-offs.")
	m.pipeStalls = r.Counter("darco_engine_pipeline_stalls_total", "Timing-pipeline pushes that blocked on a full window.")
	r.RegisterHistogram("darco_timing_pipeline_batch_occupancy",
		"Events per timing-pipeline batch at hand-off.", m.engCtrs.BatchOccupancy)
	r.RegisterHistogram("darco_timing_pipeline_barrier_stall_seconds",
		"Time synchronization barriers waited for the timing drain.", m.engCtrs.BarrierStall)

	if sm := s.opts.StoreMetrics; sm != nil {
		if sm.AppendSeconds != nil {
			r.RegisterHistogram("darco_store_append_seconds",
				"Durable-store record append latency.", sm.AppendSeconds)
		}
		if sm.FsyncSeconds != nil {
			r.RegisterHistogram("darco_store_fsync_seconds",
				"Durable-store journal fsync latency.", sm.FsyncSeconds)
		}
	}

	r.OnScrape(func() { s.scrape(m) })
	s.metrics = m
}

// scrape recomputes the state families from the live job registry.
// Runs under the obs.Registry lock; it takes only the job and registry
// locks, neither of which ever calls back into the metrics registry.
func (s *Server) scrape(m *serverMetrics) {
	byState := make(map[JobState]int, len(metricsStates))
	var scenarios, completed, failed, subscribers int
	jobs := s.jobs.list()
	for _, j := range jobs {
		st := j.status()
		byState[st.State]++
		scenarios += st.Scenarios
		completed += st.Completed
		failed += st.Failed
		subscribers += j.events.SubscriberCount()
	}
	for _, st := range metricsStates {
		m.jobsByState.With(string(st)).Set(float64(byState[st]))
	}
	m.jobsTotal.Set(uint64(len(jobs)))
	m.scenariosTotal.Set(uint64(scenarios))
	m.scenariosCompleted.Set(uint64(completed))
	m.scenariosFailed.Set(uint64(failed))
	m.subscribers.Set(float64(subscribers))
	m.queueDepth.Set(float64(len(s.queue)))
	m.queueCapacity.Set(float64(s.opts.QueueCapacity))
	m.workers.Set(float64(s.opts.Workers))
	m.uptime.Set(time.Since(s.start).Seconds())
	m.goroutines.Set(float64(runtime.NumGoroutine()))

	c := m.engCtrs.Snapshot()
	m.decodeHits.Set(c.DecodeHits)
	m.decodeMiss.Set(c.DecodeMisses)
	m.blockHits.Set(c.BlockHits)
	m.blockMiss.Set(c.BlockMisses)
	m.codeFlushes.Set(c.CodeFlushes)
	m.pipePushes.Set(c.PipelinePushes)
	m.pipeFlushes.Set(c.PipelineFlushes)
	m.pipeStalls.Set(c.PipelineStalls)
}
