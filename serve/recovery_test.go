package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"darco/serve"
	"darco/store"
)

// crashServer tears a daemon down the way SIGKILL would look to the
// store: the journal is frozen exactly as appended (the store closes
// first, so no terminal records land), then the process machinery is
// reaped so the test stays goroutine- and race-clean.
func crashServer(t *testing.T, st *store.Store, srv *serve.Server, ts *httptest.Server) {
	t.Helper()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("post-crash reap: %v", err)
	}
}

// TestKillAndRestartE2E is the acceptance scenario: a daemon dies over
// a durable store with one finished job, one mid-run job, and one
// queued job; the restarted daemon serves the finished job's exports
// byte-identical to the pre-crash bytes, preserves the mid-run job's
// completed rows under the interrupted state, re-queues and runs the
// queued job, and keeps the id sequence. Run under -race.
func TestKillAndRestartE2E(t *testing.T) {
	dir := t.TempDir()
	opts := serve.Options{Workers: 1, MaxParallelism: 1, QueueCapacity: 4}

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o1 := opts
	o1.Store = st1
	srv1 := serve.New(o1)
	ts1 := httptest.NewServer(srv1)

	// Job 1 runs to completion before the crash; its exports are the
	// bytes the restarted daemon must reproduce.
	j1 := submit(t, ts1.URL, `{"name":"survivor","scenarios":[
		{"profile":"429.mcf","scale":0.05},{"profile":"470.lbm","scale":0.05}]}`,
		http.StatusAccepted)
	final := waitState(t, ts1.URL, j1.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if final.State != serve.JobDone {
		t.Fatalf("job 1 ended %s (%s)", final.State, final.Error)
	}
	base1 := ts1.URL + "/api/v1/jobs/" + j1.ID
	paths := []string{"/export.json", "/export.csv", "/export.ndjson", "/export.html", "/export.json?wall=1", "/export.csv?wall=1"}
	want := make(map[string][]byte, len(paths))
	for _, p := range paths {
		want[p] = fetch(t, base1+p, 200, "")
	}

	// Job 2 is mid-run at the crash: one quick scenario (its row must
	// survive), then long ones the daemon dies inside.
	j2 := submit(t, ts1.URL, `{"scenarios":[
		{"profile":"429.mcf","scale":0.05},{"profile":"429.mcf","scale":1},
		{"profile":"429.mcf","scale":1},{"profile":"429.mcf","scale":1}]}`,
		http.StatusAccepted)
	waitState(t, ts1.URL, j2.ID, func(s serve.JobStatus) bool {
		return s.State == serve.JobRunning && s.Completed >= 1
	})

	// Job 3 never gets a worker before the crash.
	j3 := submit(t, ts1.URL, `{"scenarios":[{"profile":"470.lbm","scale":0.05}]}`, http.StatusAccepted)
	if st := getStatus(t, ts1.URL, j3.ID); st.State != serve.JobQueued {
		t.Fatalf("job 3 is %s before the crash, want queued", st.State)
	}

	crashServer(t, st1, srv1, ts1)

	// Restart over the same directory.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o2 := opts
	o2.Store = st2
	srv2 := serve.New(o2)
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv2.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := st2.Close(); err != nil {
			t.Errorf("store close: %v", err)
		}
	})

	var list []serve.JobStatus
	if err := json.Unmarshal(fetch(t, ts2.URL+"/api/v1/jobs", 200, ""), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 || list[0].ID != j1.ID || list[1].ID != j2.ID || list[2].ID != j3.ID {
		t.Fatalf("restored listing: %+v", list)
	}

	// Job 1: done, timestamps preserved, every export byte-identical.
	re1 := getStatus(t, ts2.URL, j1.ID)
	if re1.State != serve.JobDone || re1.Name != "survivor" || re1.Completed != 2 {
		t.Fatalf("restored job 1: %+v", re1)
	}
	if re1.StartedAt == nil || !re1.SubmittedAt.Equal(final.SubmittedAt) || !re1.StartedAt.Equal(*final.StartedAt) {
		t.Errorf("restored job 1 timestamps: %+v vs %+v", re1, final)
	}
	for _, p := range paths {
		if got := fetch(t, ts2.URL+"/api/v1/jobs/"+j1.ID+p, 200, ""); !bytes.Equal(got, want[p]) {
			t.Errorf("%s differs across restart:\n%s\nvs pre-crash:\n%s", p, got, want[p])
		}
	}

	// Job 2: interrupted, the pre-crash row preserved, the rest marked.
	re2 := getStatus(t, ts2.URL, j2.ID)
	if re2.State != serve.JobInterrupted || re2.Completed < 1 || re2.Completed >= 4 {
		t.Fatalf("restored job 2: %+v", re2)
	}
	if !strings.Contains(re2.Error, "interrupted") {
		t.Errorf("restored job 2 error: %q", re2.Error)
	}
	csv2 := fetch(t, ts2.URL+"/api/v1/jobs/"+j2.ID+"/export.csv", 200, "text/csv")
	lines := strings.Split(strings.TrimRight(string(csv2), "\n"), "\n")
	if len(lines) != 5 { // header + 4 scenarios
		t.Fatalf("interrupted export has %d lines:\n%s", len(lines), csv2)
	}
	if !strings.Contains(lines[1], ",ok,") {
		t.Errorf("first pre-crash row did not survive: %s", lines[1])
	}
	if !strings.Contains(lines[4], "interrupted: daemon restarted") {
		t.Errorf("never-run scenario not marked interrupted: %s", lines[4])
	}

	// Job 2's stream replays the journaled prefix, then ends terminal.
	frames := readStream(t, ts2.URL+"/api/v1/jobs/"+j2.ID+"/events", false)
	var sawRow0 bool
	for _, f := range frames {
		if f.kind == serve.EventScenario {
			var ev serve.ScenarioEvent
			if err := json.Unmarshal(f.data, &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Index == 0 && ev.Row.Scenario == "429.mcf" {
				sawRow0 = true
			}
		}
	}
	if !sawRow0 {
		t.Error("interrupted job's stream did not replay the surviving scenario row")
	}
	var last serve.JobStatus
	if err := json.Unmarshal(frames[len(frames)-1].data, &last); err != nil {
		t.Fatal(err)
	}
	if last.State != serve.JobInterrupted {
		t.Errorf("interrupted job's stream ended in state %s", last.State)
	}

	// Job 3: re-queued, runs to completion on the new daemon.
	re3 := waitState(t, ts2.URL, j3.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if re3.State != serve.JobDone {
		t.Fatalf("re-queued job ended %s (%s)", re3.State, re3.Error)
	}
	if got := fetch(t, ts2.URL+"/api/v1/jobs/"+j3.ID+"/export.csv", 200, ""); !strings.Contains(string(got), "470.lbm") {
		t.Errorf("re-queued job export:\n%s", got)
	}

	// The id sequence continues past restored history.
	j4 := submit(t, ts2.URL, `{"scenarios":[{"profile":"429.mcf","scale":0.05}]}`, http.StatusAccepted)
	if j4.ID != "job-4" {
		t.Errorf("post-restart submission got id %s, want job-4", j4.ID)
	}
	waitState(t, ts2.URL, j4.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
}

// TestCancelledQueuedJobSurvivesRestart: a cancel issued while a job
// is still deep in the queue is journaled immediately, so a daemon
// that dies before any worker observes it restores the job as
// cancelled instead of re-running it.
func TestCancelledQueuedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := serve.Options{Workers: 1, MaxParallelism: 1, QueueCapacity: 4}

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o1 := opts
	o1.Store = st1
	srv1 := serve.New(o1)
	ts1 := httptest.NewServer(srv1)

	// Occupy the only worker, then queue and cancel a second job.
	blocker := submit(t, ts1.URL, `{"scenarios":[
		{"profile":"429.mcf","scale":1},{"profile":"429.mcf","scale":1},
		{"profile":"429.mcf","scale":1}]}`, http.StatusAccepted)
	waitState(t, ts1.URL, blocker.ID, func(s serve.JobStatus) bool { return s.State == serve.JobRunning })
	queued := submit(t, ts1.URL, `{"scenarios":[{"profile":"470.lbm","scale":0.05}]}`, http.StatusAccepted)
	fetchCancel(t, ts1.URL, queued.ID)
	if st := getStatus(t, ts1.URL, queued.ID); st.State != serve.JobQueued {
		t.Fatalf("cancelled-but-unpopped job is %s, want still queued", st.State)
	}

	crashServer(t, st1, srv1, ts1)

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o2 := opts
	o2.Store = st2
	srv2 := serve.New(o2)
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv2.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := st2.Close(); err != nil {
			t.Errorf("store close: %v", err)
		}
	})

	re := getStatus(t, ts2.URL, queued.ID)
	if re.State != serve.JobCancelled {
		t.Fatalf("restored cancelled-while-queued job is %s", re.State)
	}
	if !strings.Contains(re.Error, "cancelled while queued") {
		t.Errorf("restored error: %q", re.Error)
	}
	csv := fetch(t, ts2.URL+"/api/v1/jobs/"+queued.ID+"/export.csv", 200, "")
	if !strings.Contains(string(csv), "cancelled while queued: context canceled") {
		t.Errorf("restored rows miss the live-path cancellation reason:\n%s", csv)
	}
}

// TestSecondRestartStaysByteIdentical: recovery journals the rows it
// synthesizes (interrupted placeholders), so an interrupted job's
// exports survive any number of further restarts unchanged — not just
// the first one.
func TestSecondRestartStaysByteIdentical(t *testing.T) {
	dir := t.TempDir()
	opts := serve.Options{Workers: 1, MaxParallelism: 1}

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Store = st1
	srv1 := serve.New(o)
	ts1 := httptest.NewServer(srv1)
	j := submit(t, ts1.URL, `{"scenarios":[
		{"profile":"429.mcf","scale":0.05},{"profile":"429.mcf","scale":1},
		{"profile":"429.mcf","scale":1}]}`, http.StatusAccepted)
	waitState(t, ts1.URL, j.ID, func(s serve.JobStatus) bool {
		return s.State == serve.JobRunning && s.Completed >= 1
	})
	crashServer(t, st1, srv1, ts1)

	var want []byte
	for restart := 1; restart <= 2; restart++ {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Store = st
		srv := serve.New(o)
		ts := httptest.NewServer(srv)
		if got := getStatus(t, ts.URL, j.ID); got.State != serve.JobInterrupted {
			t.Fatalf("restart %d: job is %s", restart, got.State)
		}
		csv := fetch(t, ts.URL+"/api/v1/jobs/"+j.ID+"/export.csv", 200, "")
		if restart == 1 {
			want = csv
			if !strings.Contains(string(csv), "interrupted: daemon restarted") {
				t.Fatalf("restart 1 export misses the interruption reason:\n%s", csv)
			}
		} else if !bytes.Equal(csv, want) {
			t.Errorf("export.csv changed between restarts:\n%s\nvs:\n%s", csv, want)
		}
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestartAfterGracefulShutdown: the quieter durability path — a
// clean shutdown followed by a restart serves the same history from
// the compacted snapshots.
func TestRestartAfterGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := serve.New(serve.Options{Store: st1})
	ts1 := httptest.NewServer(srv1)
	j1 := submit(t, ts1.URL, `{"scenarios":[{"profile":"429.mcf","scale":0.05}]}`, http.StatusAccepted)
	waitState(t, ts1.URL, j1.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	wantCSV := fetch(t, ts1.URL+"/api/v1/jobs/"+j1.ID+"/export.csv", 200, "")
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec := st2.Recovery(); rec.SnapshotJobs != 1 || rec.Jobs != 1 {
		t.Fatalf("recovery after graceful shutdown: %+v", rec)
	}
	srv2 := serve.New(serve.Options{Store: st2})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	defer srv2.Shutdown(context.Background())
	if got := fetch(t, ts2.URL+"/api/v1/jobs/"+j1.ID+"/export.csv", 200, ""); !bytes.Equal(got, wantCSV) {
		t.Errorf("export differs across graceful restart:\n%s\nvs:\n%s", got, wantCSV)
	}
}

// TestLateSubscriberReplay: a subscriber joining a live job after its
// first scenario finished still receives that scenario's frame — the
// replay ring closes the gap the lossy stream used to have.
func TestLateSubscriberReplay(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{MaxParallelism: 1})
	st := submit(t, ts.URL, `{"scenarios":[
		{"profile":"429.mcf","scale":0.05},{"profile":"429.mcf","scale":1}]}`,
		http.StatusAccepted)
	waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.Completed >= 1 })

	frames := readStream(t, ts.URL+"/api/v1/jobs/"+st.ID+"/events", true)
	var indices []int
	for _, f := range frames {
		if f.kind != serve.EventScenario {
			continue
		}
		var ev serve.ScenarioEvent
		if err := json.Unmarshal(f.data, &ev); err != nil {
			t.Fatal(err)
		}
		indices = append(indices, ev.Index)
	}
	// Both rows arrive — index 0 from replay (it finished before the
	// subscription), index 1 live — in that order.
	if len(indices) != 2 || indices[0] != 0 || indices[1] != 1 {
		t.Fatalf("late subscriber saw scenario indices %v, want [0 1]", indices)
	}
	var last serve.JobStatus
	if err := json.Unmarshal(frames[len(frames)-1].data, &last); err != nil {
		t.Fatal(err)
	}
	if last.State != serve.JobDone {
		t.Errorf("stream ended in state %s", last.State)
	}
}

// TestMetricsEndpoint pins the exposition's load-bearing series.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{QueueCapacity: 7})
	st := submit(t, ts.URL, `{"scenarios":[
		{"profile":"429.mcf","scale":0.05},{"profile":"470.lbm","scale":0.05}]}`,
		http.StatusAccepted)
	waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })

	body := string(fetch(t, ts.URL+"/metrics", 200, "text/plain"))
	for _, line := range []string{
		`darco_jobs{state="done"} 1`,
		`darco_jobs{state="queued"} 0`,
		`darco_jobs{state="interrupted"} 0`,
		"darco_jobs_total 1",
		"darco_scenarios_total 2",
		"darco_scenarios_completed_total 2",
		"darco_scenarios_failed_total 0",
		"darco_event_subscribers 0",
		"darco_queue_depth 0",
		"darco_queue_capacity 7",
		"darco_workers 1",
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("metrics exposition missing %q:\n%s", line, body)
		}
	}
}
