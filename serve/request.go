package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	darco "darco"
	"darco/internal/power"
	"darco/internal/timing"
	"darco/internal/workload"
	"darco/telemetry"
)

// SubmitRequest is the JSON body of POST /api/v1/jobs: the scenario
// roster (a whole-suite sweep, an explicit scenario list, or both
// concatenated — suite first), campaign execution knobs, and optional
// engine and telemetry configuration. Unknown fields are rejected so a
// typo'd knob fails the submit instead of silently running defaults.
type SubmitRequest struct {
	// Name labels the job in statuses and listings.
	Name string `json:"name,omitempty"`

	// Suite, when non-nil, enrolls the paper's full 31-benchmark
	// roster at the given scale.
	Suite *SuiteSpec `json:"suite,omitempty"`

	// Scenarios enrolls explicit workload × scale points.
	Scenarios []ScenarioSpec `json:"scenarios,omitempty"`

	// Parallelism bounds the campaign's worker pool (0 = server
	// default; the server additionally caps it at its configured
	// per-job maximum).
	Parallelism int `json:"parallelism,omitempty"`

	// ScenarioTimeoutMS cancels any single scenario running longer
	// than this many milliseconds (0 = none).
	ScenarioTimeoutMS int64 `json:"scenario_timeout_ms,omitempty"`

	// FailFast cancels the rest of the campaign when one scenario
	// fails.
	FailFast bool `json:"fail_fast,omitempty"`

	Engine    *EngineSpec    `json:"engine,omitempty"`
	Telemetry *TelemetrySpec `json:"telemetry,omitempty"`
}

// SuiteSpec enrolls the full benchmark roster at one scale.
type SuiteSpec struct {
	// Scale is the workload dynamic-size factor (0 = 1.0).
	Scale float64 `json:"scale,omitempty"`
}

// ScenarioSpec is one workload × configuration point.
type ScenarioSpec struct {
	// Profile names a workload from the paper's roster (e.g.
	// "429.mcf"); see GET /api/v1/profiles for the list.
	Profile string `json:"profile"`
	// Scale is the workload dynamic-size factor (0 = 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Name labels the scenario in results (default: the profile name).
	Name string `json:"name,omitempty"`
}

// EngineSpec selects the engine configuration for every scenario of
// the job. Nil/zero fields keep the paper defaults, so {} (or omitting
// the whole object) runs the stock functional stack.
type EngineSpec struct {
	// BBThreshold / SBThreshold are the TOL promotion thresholds
	// (interpretations before BB translation, BBM executions before
	// superblock promotion).
	BBThreshold *uint32 `json:"bb_threshold,omitempty"`
	SBThreshold *uint64 `json:"sb_threshold,omitempty"`

	// DisableChaining and EagerFlags are the paper's ablation toggles.
	DisableChaining bool `json:"disable_chaining,omitempty"`
	EagerFlags      bool `json:"eager_flags,omitempty"`

	// ValidateEveryNSyncs compares co-designed vs authoritative state
	// at every Nth synchronization (nil = paper default of 1, 0
	// disables periodic validation).
	ValidateEveryNSyncs *int `json:"validate_every_n_syncs,omitempty"`

	// MaxGuestInsns aborts runaway scenarios (0 = unlimited).
	MaxGuestInsns uint64 `json:"max_guest_insns,omitempty"`

	// Timing attaches the in-order timing simulator; Power
	// additionally attaches the power model (implies Timing) at
	// FreqMHz (0 = 1000).
	Timing  bool    `json:"timing,omitempty"`
	Power   bool    `json:"power,omitempty"`
	FreqMHz float64 `json:"freq_mhz,omitempty"`

	// Obs attaches the daemon's shared hot-path profiling counters
	// (decode/block cache hits, code-cache flushes, timing-pipeline
	// pressure) to the job's engine; they surface in the daemon's
	// /metrics under darco_engine_*. Off by default — the instrumented
	// paths then cost one predictable branch per site.
	Obs bool `json:"obs,omitempty"`
}

// TelemetrySpec configures the live instruction-mix stream. Telemetry
// is on by default; it costs a retire-stream subscription per running
// scenario, so heavy sweeps that do not watch /events can disable it.
type TelemetrySpec struct {
	Disable bool `json:"disable,omitempty"`
	// IntervalInsns is the window length in retired host instructions
	// (0 = telemetry.DefaultInterval).
	IntervalInsns uint64 `json:"interval_insns,omitempty"`
}

// jobSpec is a validated submission: everything a worker needs to run
// the campaign.
type jobSpec struct {
	name              string
	scenarios         []darco.Scenario
	eng               *darco.Engine
	parallelism       int
	scenarioTimeout   time.Duration
	failFast          bool
	telemetryOff      bool
	telemetryInterval uint64
}

// ParseSubmit decodes a submission body without validating it against
// any server's limits — the syntactic half of decodeSubmit, shared
// with the recovery path (which re-derives scenario rosters from
// journaled submissions) and with the sched coordinator (which
// validates a federated submission before sharding it).
func ParseSubmit(r io.Reader) (*SubmitRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid request body: %w", err)
	}
	// Exactly one JSON value: trailing garbage would parse here but
	// poison the journaled raw body (a json.RawMessage must be valid
	// JSON), so it is rejected before the job can be accepted.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("invalid request body: trailing data after the JSON object")
	}
	return &req, nil
}

// Roster expands the request's suite and explicit scenario list into
// the campaign roster, in campaign (scenario) order, validating
// profiles and scales. The sched coordinator shards this same
// expansion, so a scenario's position here is its global index in a
// federated run — the order every export format is keyed on.
func (req *SubmitRequest) Roster() ([]darco.Scenario, error) {
	var out []darco.Scenario
	if req.Suite != nil {
		if req.Suite.Scale < 0 {
			return nil, fmt.Errorf("suite scale %g is negative", req.Suite.Scale)
		}
		out = append(out, darco.SuiteScenarios(req.Suite.Scale)...)
	}
	for i, sc := range req.Scenarios {
		p, ok := workload.ByName(sc.Profile)
		if !ok {
			return nil, fmt.Errorf("scenario %d: unknown profile %q", i, sc.Profile)
		}
		if sc.Scale < 0 {
			return nil, fmt.Errorf("scenario %d: scale %g is negative", i, sc.Scale)
		}
		out = append(out, darco.Scenario{Name: sc.Name, Profile: p, Scale: sc.Scale})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenarios: set \"suite\" and/or \"scenarios\"")
	}
	return out, nil
}

// decodeSubmit parses and validates a submission body against the
// server's limits.
func (s *Server) decodeSubmit(r io.Reader) (*jobSpec, error) {
	req, err := ParseSubmit(r)
	if err != nil {
		return nil, err
	}
	return s.buildSpec(req)
}

// buildSpec validates a submission and compiles it to scenarios plus a
// ready engine.
func (s *Server) buildSpec(req *SubmitRequest) (*jobSpec, error) {
	spec := &jobSpec{name: req.Name}
	var err error
	if spec.scenarios, err = req.Roster(); err != nil {
		return nil, err
	}
	if limit := s.opts.MaxScenarios; limit > 0 && len(spec.scenarios) > limit {
		return nil, fmt.Errorf("%d scenarios exceed the server limit of %d", len(spec.scenarios), limit)
	}

	if req.Parallelism < 0 {
		return nil, fmt.Errorf("parallelism %d is negative", req.Parallelism)
	}
	spec.parallelism = req.Parallelism
	if limit := s.opts.MaxParallelism; limit > 0 && (spec.parallelism == 0 || spec.parallelism > limit) {
		spec.parallelism = limit
	}
	if req.ScenarioTimeoutMS < 0 {
		return nil, fmt.Errorf("scenario_timeout_ms %d is negative", req.ScenarioTimeoutMS)
	}
	spec.scenarioTimeout = time.Duration(req.ScenarioTimeoutMS) * time.Millisecond
	spec.failFast = req.FailFast

	if t := req.Telemetry; t != nil {
		spec.telemetryOff = t.Disable
		spec.telemetryInterval = t.IntervalInsns
	}
	if spec.telemetryInterval == 0 {
		spec.telemetryInterval = telemetry.DefaultInterval
	}

	opts, err := req.Engine.Options()
	if err != nil {
		return nil, err
	}
	// The obs opt-in binds to this server's shared counter instance, so
	// it is applied here rather than in the server-agnostic Options.
	if req.Engine != nil && req.Engine.Obs {
		opts = append(opts, darco.WithObsCounters(s.metrics.engCtrs))
	}
	eng, err := darco.NewEngine(opts...)
	if err != nil {
		return nil, fmt.Errorf("engine configuration: %w", err)
	}
	spec.eng = eng
	return spec, nil
}

// Options compiles the spec (nil = all defaults) to engine options.
// Exported so the sched coordinator can validate a submission's engine
// configuration at its own edge before fanning shards out to workers.
func (e *EngineSpec) Options() ([]darco.Option, error) {
	if e == nil {
		return nil, nil
	}
	tc := darco.DefaultConfig().TOL
	if e.BBThreshold != nil {
		tc.BBThreshold = *e.BBThreshold
	}
	if e.SBThreshold != nil {
		tc.SBThreshold = *e.SBThreshold
	}
	tc.DisableChaining = e.DisableChaining
	tc.EagerFlags = e.EagerFlags
	opts := []darco.Option{darco.WithTOL(tc)}

	if e.ValidateEveryNSyncs != nil {
		if *e.ValidateEveryNSyncs < 0 {
			return nil, fmt.Errorf("validate_every_n_syncs %d is negative", *e.ValidateEveryNSyncs)
		}
		opts = append(opts, darco.WithValidation(*e.ValidateEveryNSyncs))
	}
	if e.MaxGuestInsns > 0 {
		opts = append(opts, darco.WithMaxGuestInsns(e.MaxGuestInsns))
	}
	if e.Timing || e.Power {
		opts = append(opts, darco.WithTiming(timing.DefaultConfig()))
	}
	if e.Power {
		freq := e.FreqMHz
		if freq == 0 {
			freq = 1000
		}
		opts = append(opts, darco.WithPower(power.DefaultEnergies(), freq))
	}
	return opts, nil
}
