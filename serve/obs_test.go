package serve_test

import (
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"darco/internal/testutil"
	"darco/obs"
	"darco/serve"
)

var hexTraceID = regexp.MustCompile(`^[0-9a-f]{32}$`)

// TestTraceEndpoint drives one campaign to completion and checks the
// trace it leaves behind: a single tree rooted at the job span, with
// queue-wait and run children, a scenario span per scenario, and phase
// spans partitioning each scenario.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{})
	body := `{"name":"traced","scenarios":[
		{"profile":"429.mcf","scale":0.05},
		{"profile":"470.lbm","scale":0.05}]}`
	st := submit(t, ts.URL, body, http.StatusAccepted)
	final := waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if final.State != serve.JobDone {
		t.Fatalf("job finished %s (%s), want done", final.State, final.Error)
	}

	var doc obs.TraceDoc
	raw := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/trace", http.StatusOK, "application/json")
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	if !hexTraceID.MatchString(doc.TraceID) {
		t.Fatalf("trace id %q is not 32 hex digits", doc.TraceID)
	}
	names := map[string]int{}
	for _, sp := range doc.Spans {
		if sp.TraceID != doc.TraceID {
			t.Errorf("span %s carries trace %s, want %s", sp.Name, sp.TraceID, doc.TraceID)
		}
		if sp.End < sp.Start {
			t.Errorf("span %s ends before it starts", sp.Name)
		}
		key := sp.Name
		if strings.HasPrefix(key, "scenario ") {
			key = "scenario"
		}
		names[key]++
	}
	for name, want := range map[string]int{
		"job " + st.ID: 1, "queue-wait": 1, "run": 1, "scenario": 2, "emulate": 2,
	} {
		if names[name] != want {
			t.Errorf("trace has %d %q spans, want %d (all: %v)", names[name], name, want, names)
		}
	}

	// One tree, rooted at the job span, with the run span under it and
	// both scenarios under the run.
	if len(doc.Tree) != 1 {
		t.Fatalf("trace has %d roots, want 1", len(doc.Tree))
	}
	root := doc.Tree[0]
	if root.Name != "job "+st.ID {
		t.Fatalf("root span is %q, want the job span", root.Name)
	}
	var run *obs.SpanNode
	for _, c := range root.Children {
		if c.Name == "run" {
			run = c
		}
	}
	if run == nil {
		t.Fatal("job span has no run child")
	}
	scen := 0
	for _, c := range run.Children {
		if strings.HasPrefix(c.Name, "scenario ") {
			scen++
			if len(c.Children) == 0 {
				t.Errorf("scenario span %q has no phase children", c.Name)
			}
		}
	}
	if scen != 2 {
		t.Errorf("run span has %d scenario children, want 2", scen)
	}

	// The Chrome trace-event rendering carries the same spans as
	// complete ("X") events.
	chrome := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/trace?format=chrome", http.StatusOK, "application/json")
	var cd struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &cd); err != nil {
		t.Fatalf("chrome trace decode: %v", err)
	}
	if len(cd.TraceEvents) != len(doc.Spans) {
		t.Errorf("chrome trace has %d events, want %d", len(cd.TraceEvents), len(doc.Spans))
	}
	for _, ev := range cd.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
	}
}

// TestTraceHeaderAdoption submits with an X-Darco-Trace header and
// checks the job joins that trace, with its root span parented under
// the caller's span — the stitching contract the sched coordinator
// relies on.
func TestTraceHeaderAdoption(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{})
	traceID, parent := obs.NewTraceID(), obs.NewSpanID()
	req, err := http.NewRequest("POST", ts.URL+"/api/v1/jobs",
		strings.NewReader(`{"scenarios":[{"profile":"429.mcf","scale":0.05}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	obs.InjectTrace(req.Header, traceID, parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })

	var doc obs.TraceDoc
	raw := fetch(t, ts.URL+"/api/v1/jobs/"+st.ID+"/trace", http.StatusOK, "application/json")
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != traceID {
		t.Fatalf("job trace id %s, want adopted %s", doc.TraceID, traceID)
	}
	found := false
	for _, sp := range doc.Spans {
		if sp.Name == "job "+st.ID {
			found = true
			if sp.Parent != parent {
				t.Errorf("job span parent %s, want caller's span %s", sp.Parent, parent)
			}
		}
	}
	if !found {
		t.Error("no job root span in trace")
	}
}

// TestMetricsExpositionValid runs the daemon's /metrics output — after
// real traffic, so histograms carry observations — through the
// exposition parser.
func TestMetricsExpositionValid(t *testing.T) {
	_, ts := newTestServer(t, serve.Options{})
	st := submit(t, ts.URL, `{"scenarios":[{"profile":"429.mcf","scale":0.05}]}`, http.StatusAccepted)
	waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })

	raw := fetch(t, ts.URL+"/metrics", http.StatusOK, "")
	if err := testutil.ValidatePrometheus(raw); err != nil {
		t.Fatalf("/metrics exposition invalid: %v\n%s", err, raw)
	}
	for _, want := range []string{
		"darco_jobs{state=\"done\"} 1",
		"darco_build_info{version=",
		"darco_goroutines ",
		"darco_scenario_wall_seconds_bucket{le=\"+Inf\"} 1",
		"darco_job_queue_wait_seconds_count 1",
		"darco_engine_pipeline_pushes_total",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
