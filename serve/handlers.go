package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"darco/export"
	"darco/internal/workload"
	"darco/store"
)

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := export.EncodeJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.json", s.handleExport("json"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.csv", s.handleExport("csv"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.ndjson", s.handleExport("ndjson"))
	mux.HandleFunc("GET /api/v1/jobs/{id}/export.html", s.handleExport("html"))
	mux.HandleFunc("GET /api/v1/profiles", s.handleProfiles)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// maxSubmitBytes bounds a submission body: load must shed at the edge
// before a request is buffered, not after MaxScenarios is parsed.
const maxSubmitBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The body is buffered whole before parsing: the raw bytes are the
	// submission's durable representation — journaled with the job and
	// replayed through this same validator after a restart.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	var spec *jobSpec
	if err == nil {
		spec, err = s.decodeSubmit(bytes.NewReader(raw))
	}
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "%v", err)
		return
	}
	j, err := s.submit(spec, raw)
	switch {
	case errors.Is(err, errQueueFull):
		// Backpressure: the queue is bounded so load sheds at the
		// edge; clients retry with the advertised delay.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, errClosing):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.list()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

// lookup resolves the {id} path value, writing the 404 itself when the
// job does not exist.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleCancel stops a queued or running job. Cancelling is
// asynchronous — the response reports the state observed after the
// cancel was issued, which may still be "running" until the campaign
// observes its context (within one engine check interval) — and
// idempotent: cancelling a terminal job changes nothing.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if !j.status().State.Terminal() {
		// Journaled before the cancel takes effect: if the daemon dies
		// before the job observes its context (it may still be deep in
		// the queue), the restarted daemon must not re-run a job the
		// client already cancelled.
		s.journal(store.Record{Kind: store.KindCancelRequested, Job: j.id})
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status())
}

// handleExport renders a terminal job's stored scenario rows in the
// requested format, with darco/export's deterministic defaults:
// export.json and export.csv bytes for a completed job match an
// offline export of the same scenarios, and a job restored from the
// durable store serves the same bytes the pre-restart daemon would
// have. ?wall=1 opts into wall-clock metrics (served from the stored
// wall-inclusive rows).
func (s *Server) handleExport(format string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.lookup(w, r)
		if !ok {
			return
		}
		rows, wallMS, parallelism, err := j.resultRows()
		if err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		var opts []export.Option
		if r.URL.Query().Get("wall") == "1" {
			opts = append(opts, export.WithWallTimes())
		} else {
			rows = export.StripWall(rows)
		}
		switch format {
		case "json":
			doc := export.NewRowReport(rows)
			if len(opts) > 0 {
				doc.WallMS = wallMS
				doc.Workers = parallelism
			}
			w.Header().Set("Content-Type", "application/json")
			err = export.WriteReport(w, doc)
		case "csv":
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			err = export.WriteCSVRows(w, rows, opts...)
		case "ndjson":
			w.Header().Set("Content-Type", "application/x-ndjson")
			err = export.WriteNDJSONRows(w, rows)
		case "html":
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			err = export.WriteHTMLRows(w, rows, opts...)
		}
		if err != nil {
			// Headers are gone; all we can do is drop the connection.
			s.logf("export %s for %s: %v", format, j.id, err)
		}
	}
}

// handleEvents streams a job's frames as SSE (default) or NDJSON
// (?format=ndjson). The stream opens with a state snapshot, then the
// replayed prefix of frames the subscriber missed (bounded by the
// replay ring — a ring that no longer reaches the start is announced
// with an EventDropped marker), then live scenario/telemetry/state
// frames while the job runs, ending with a final state frame once the
// job is terminal.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	ndjson := r.URL.Query().Get("format") == "ndjson"
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	}
	flush := func() {
		if canFlush {
			flusher.Flush()
		}
	}

	// The replay snapshot and the live registration are atomic in the
	// broadcaster, so no frame is lost or duplicated between them;
	// state frames are idempotent snapshots, so the duplicate a
	// subscribe/transition race can produce is safe.
	replay, sub := j.events.subscribe()
	defer j.events.unsubscribe(sub)
	if err := writeFrame(w, ndjson, EventState, j.status()); err != nil {
		return
	}
	for _, ev := range replay {
		if err := writeFrame(w, ndjson, ev.kind, ev.data); err != nil {
			return
		}
	}
	flush()
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				// Terminal: re-send the final status so even a consumer
				// whose buffer dropped the transition sees the outcome.
				writeFrame(w, ndjson, EventState, j.status())
				flush()
				return
			}
			if err := writeFrame(w, ndjson, ev.kind, ev.data); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// ProfileInfo describes one submittable workload.
type ProfileInfo struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	var out []ProfileInfo
	for _, p := range workload.Suites() {
		out = append(out, ProfileInfo{Name: p.Name, Suite: p.Suite})
	}
	writeJSON(w, http.StatusOK, out)
}

// Health is the /healthz payload.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Jobs          int     `json:"jobs"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.opts.Workers,
		QueueDepth:    len(s.queue),
		QueueCapacity: s.opts.QueueCapacity,
		Jobs:          len(s.jobs.list()),
	})
}

// handleMetrics serves a Prometheus-style plain-text exposition of the
// daemon's operational state: jobs by state, queue pressure, scenario
// throughput, and stream fan-out. No client library — the format is
// lines of `name{labels} value`, which fmt writes fine.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	states := []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled, JobInterrupted}
	byState := make(map[JobState]int, len(states))
	var scenarios, completed, failed, subscribers int
	jobs := s.jobs.list()
	for _, j := range jobs {
		st := j.status()
		byState[st.State]++
		scenarios += st.Scenarios
		completed += st.Completed
		failed += st.Failed
		subscribers += j.events.subscriberCount()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP darco_jobs Campaign jobs by lifecycle state.\n# TYPE darco_jobs gauge\n")
	for _, st := range states {
		fmt.Fprintf(w, "darco_jobs{state=%q} %d\n", st, byState[st])
	}
	fmt.Fprintf(w, "# HELP darco_jobs_total Jobs ever registered (restored history included).\n# TYPE darco_jobs_total counter\ndarco_jobs_total %d\n", len(jobs))
	fmt.Fprintf(w, "# HELP darco_scenarios_total Scenarios enrolled across all jobs.\n# TYPE darco_scenarios_total counter\ndarco_scenarios_total %d\n", scenarios)
	fmt.Fprintf(w, "# HELP darco_scenarios_completed_total Scenarios finished across all jobs.\n# TYPE darco_scenarios_completed_total counter\ndarco_scenarios_completed_total %d\n", completed)
	fmt.Fprintf(w, "# HELP darco_scenarios_failed_total Scenarios finished with an error.\n# TYPE darco_scenarios_failed_total counter\ndarco_scenarios_failed_total %d\n", failed)
	fmt.Fprintf(w, "# HELP darco_event_subscribers Open event-stream subscriptions.\n# TYPE darco_event_subscribers gauge\ndarco_event_subscribers %d\n", subscribers)
	fmt.Fprintf(w, "# HELP darco_queue_depth Jobs waiting for a worker.\n# TYPE darco_queue_depth gauge\ndarco_queue_depth %d\n", len(s.queue))
	fmt.Fprintf(w, "# HELP darco_queue_capacity Job queue capacity.\n# TYPE darco_queue_capacity gauge\ndarco_queue_capacity %d\n", s.opts.QueueCapacity)
	fmt.Fprintf(w, "# HELP darco_workers Concurrent campaign workers.\n# TYPE darco_workers gauge\ndarco_workers %d\n", s.opts.Workers)
	fmt.Fprintf(w, "# HELP darco_uptime_seconds Daemon uptime.\n# TYPE darco_uptime_seconds gauge\ndarco_uptime_seconds %g\n", time.Since(s.start).Seconds())
}

// logf reports server-side failures that have no HTTP channel left
// (mid-stream export errors); silent unless Options.Logf is set.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}
